/**
 * @file
 * Quickstart: monitor a 4-thread LU-like application with the
 * TaintCheck lifeguard on the ParaLog parallel monitoring platform and
 * print what happened.
 */

#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"

using namespace paralog;

int
main()
{
    setQuiet(true);

    ExperimentOptions opt;
    opt.scale = 4000;

    std::printf("ParaLog quickstart: TaintCheck on LU, 4 app threads\n\n");

    // Baseline: the application running alone on 8 cores.
    RunResult base = runExperiment(WorkloadKind::kLu,
                                   LifeguardKind::kTaintCheck,
                                   MonitorMode::kNoMonitoring, 4, opt);

    // ParaLog: 4 app cores + 4 lifeguard cores.
    RunResult mon = runExperiment(WorkloadKind::kLu,
                                  LifeguardKind::kTaintCheck,
                                  MonitorMode::kParallel, 4, opt);

    std::printf("no monitoring:      %12llu cycles\n",
                (unsigned long long)base.totalCycles);
    std::printf("parallel monitoring:%12llu cycles (%.2fx overhead)\n",
                (unsigned long long)mon.totalCycles,
                (double)mon.totalCycles / (double)base.totalCycles);
    std::printf("records processed:  %12llu\n",
                (unsigned long long)[&] {
                    std::uint64_t n = 0;
                    for (auto &l : mon.lifeguard)
                        n += l.recordsProcessed;
                    return n;
                }());
    std::printf("events handled:     %12llu (after accelerators)\n",
                (unsigned long long)mon.eventsHandledTotal());
    std::printf("violations:         %12llu\n",
                (unsigned long long)mon.violationCount);
    return 0;
}
