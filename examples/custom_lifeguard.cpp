/**
 * @file
 * Writing your own lifeguard against the ParaLog API: a heap
 * write-set profiler ("HeatCheck") that maintains one metadata bit per
 * application byte recording "has ever been written", and reports how
 * much of each allocation was actually used. The porting effort the
 * paper advertises: the lifeguard contains *no* synchronization or
 * ordering code — it declares its properties in a policy and the
 * platform does the rest.
 */

#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"

using namespace paralog;

namespace {

class HeatCheck : public Lifeguard
{
  public:
    explicit HeatCheck(std::uint32_t num_threads)
        : Lifeguard(num_threads, 1)
    {
    }

    const char *name() const override { return "HeatCheck"; }

    LifeguardPolicy
    policy() const override
    {
        LifeguardPolicy p;
        p.usesIt = false;
        p.usesIf = false; // every write matters: checks aren't idempotent
        p.usesMtlb = true;
        p.wantsRegOps = false;
        p.wantsJumps = false;
        p.heapOnly = true; // only heap accesses are profiled
        p.caOnMalloc = true;
        p.caOnFree = true;
        p.caOnSyscall = false;
        p.metadataBitsPerByte = 1;
        return p;
    }

    void
    handle(const LgEvent &ev, LgContext &ctx) override
    {
        switch (ev.type) {
          case LgEventType::kStore:
            // Mark the written bytes hot. Writes map to metadata
            // writes and reads to metadata reads (condition 2 of
            // section 5.3 holds), so no handler locking is needed.
            ctx.storeMeta(ev.addr, ev.size,
                          (ev.size >= 64) ? ~0ULL
                                          : ((1ULL << ev.size) - 1));
            ctx.charge(2);
            break;

          case LgEventType::kMalloc:
            ctx.fillMeta(ev.range, 0);
            ++allocs_;
            break;

          case LgEventType::kFree: {
            // On free, measure how much of the block was ever written.
            std::uint64_t written = 0;
            for (Addr a = ev.range.begin; a < ev.range.end; ++a)
                written += shadow_.read(a);
            ctx.charge(4);
            totalBytes_ += ev.range.size();
            writtenBytes_ += written;
            break;
          }

          default:
            ctx.charge(1);
            break;
        }
    }

    double
    utilization() const
    {
        return totalBytes_ ? static_cast<double>(writtenBytes_) /
                                 static_cast<double>(totalBytes_)
                           : 0.0;
    }

    std::uint64_t allocs() const { return allocs_; }

  private:
    std::uint64_t allocs_ = 0;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t writtenBytes_ = 0;
};

} // namespace

int
main()
{
    setQuiet(true);
    PlatformConfig cfg;
    cfg.sim = SimConfig::forAppThreads(4);
    cfg.sim.mode = MonitorMode::kParallel;
    cfg.workload = WorkloadKind::kSwaptions;
    cfg.scale = 30000;
    HeatCheck *heat = nullptr;
    cfg.customLifeguard = [&heat](std::uint32_t threads) {
        auto lg = std::make_unique<HeatCheck>(threads);
        heat = lg.get();
        return lg;
    };

    Platform p(cfg);
    RunResult r = p.run();

    std::printf("HeatCheck: custom lifeguard on SWAPTIONS (4 threads)\n");
    std::printf("  cycles:            %llu\n",
                (unsigned long long)r.totalCycles);
    std::printf("  allocations seen:  %llu\n",
                (unsigned long long)heat->allocs());
    std::printf("  buffer utilization at free: %.1f%%\n",
                100.0 * heat->utilization());
    std::printf("\n(a whole-program profiler in ~60 lines of handler "
                "code, parallel for free)\n");
    return heat->allocs() > 0 ? 0 : 1;
}
