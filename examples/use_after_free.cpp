/**
 * @file
 * Memory-bug scenario: a producer thread frees a shared buffer while a
 * consumer thread still holds a dangling pointer and later dereferences
 * it. Parallel AddrCheck — ordered by ConflictAlert barriers around the
 * free — flags the use-after-free.
 */

#include <cstdio>
#include <deque>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "lifeguard/addrcheck.hpp"

using namespace paralog;

namespace {

class DanglingPointerApp : public Workload
{
  public:
    const char *name() const override { return "dangling-pointer"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<Thread>(tid, env);
    }

  private:
    class Thread : public ThreadProgram
    {
      public:
        Thread(ThreadId tid, const WorkloadEnv &env)
            : tid_(tid), env_(env)
        {
        }

        std::optional<Inst>
        next(ThreadContext &tc) override
        {
            if (!queue_.empty()) {
                Inst i = queue_.front();
                queue_.pop_front();
                return i;
            }
            switch (phase_++) {
              case 0:
                if (tid_ == 0) {
                    // Producer: allocate, publish, fill.
                    queue_.push_back(Inst::malloc(1, 128));
                    queue_.push_back(Inst::store(env_.globalBase, 1, 8));
                    queue_.push_back(Inst::movImm(2, 0x1234));
                    queue_.push_back(Inst::storeInd(1, 0, 2, 8));
                }
                queue_.push_back(
                    Inst::barrier(env_.barrierAddr(0), env_.numThreads));
                break;
              case 1:
                if (tid_ == 1) {
                    // Consumer: grab the pointer, read the data (legal).
                    queue_.push_back(Inst::load(3, env_.globalBase, 8));
                    queue_.push_back(Inst::loadInd(4, 3, 0, 8));
                }
                queue_.push_back(
                    Inst::barrier(env_.barrierAddr(0), env_.numThreads));
                break;
              case 2:
                if (tid_ == 0) {
                    // Producer frees the buffer...
                    queue_.push_back(Inst::freeReg(1));
                }
                queue_.push_back(
                    Inst::barrier(env_.barrierAddr(0), env_.numThreads));
                break;
              case 3:
                if (tid_ == 1) {
                    // ...but the consumer still dereferences the stale
                    // pointer in r3: use-after-free.
                    queue_.push_back(Inst::loadInd(5, 3, 64, 8));
                }
                break;
              default:
                return std::nullopt;
            }
            if (queue_.empty())
                return next(tc);
            Inst i = queue_.front();
            queue_.pop_front();
            return i;
        }

      private:
        ThreadId tid_;
        WorkloadEnv env_;
        std::deque<Inst> queue_;
        int phase_ = 0;
    };
};

} // namespace

int
main()
{
    setQuiet(true);
    PlatformConfig cfg;
    cfg.sim = SimConfig::forAppThreads(2);
    cfg.sim.mode = MonitorMode::kParallel;
    cfg.lifeguard = LifeguardKind::kAddrCheck;
    cfg.customWorkload = std::make_shared<DanglingPointerApp>();

    Platform p(cfg);
    RunResult r = p.run();
    auto &ac = static_cast<AddrCheck &>(p.lifeguard());

    std::printf("dangling-pointer app monitored by parallel AddrCheck\n");
    std::printf("  cycles:               %llu\n",
                (unsigned long long)r.totalCycles);
    std::printf("  ConflictAlerts:       %llu\n",
                (unsigned long long)p.caManager().issued());
    std::printf("  violations detected:  %zu\n", ac.violations.count());
    for (const Violation &v : ac.violations.all()) {
        if (v.kind == Violation::Kind::kUnallocatedAccess) {
            std::printf("  -> USE AFTER FREE: thread %u touched %#llx "
                        "(record %llu)\n",
                        v.tid, (unsigned long long)v.addr,
                        (unsigned long long)v.rid);
        }
    }
    bool ok =
        ac.violations.count(Violation::Kind::kUnallocatedAccess) == 1;
    std::printf(ok ? "\nuse-after-free detected, exactly once.\n"
                   : "\nERROR: expected exactly one violation!\n");
    return ok ? 0 : 1;
}
