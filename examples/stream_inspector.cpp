/**
 * @file
 * Event-stream inspector: runs a tiny two-thread workload with trace
 * capture on, then pretty-prints the captured streams — record types,
 * dependence arcs, ConflictAlert barriers, compression — and validates
 * happens-before completeness. A debugging companion for anyone
 * extending the capture pipeline.
 */

#include <cstdio>

#include "capture/validator.hpp"
#include "common/logging.hpp"
#include "core/experiment.hpp"

using namespace paralog;

int
main()
{
    setQuiet(true);
    ExperimentOptions opt;
    opt.scale = 1200;
    PlatformConfig cfg = makeConfig(WorkloadKind::kSwaptions,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, opt);
    cfg.traceCapture = true;
    Platform p(cfg);
    p.run();

    const auto &trace = p.trace().records();
    std::printf("captured %zu records; first 60 in capture order:\n\n",
                trace.size());
    std::printf("%6s %3s %6s  %-14s %-14s %s\n", "seq", "tid", "rid",
                "type", "addr/range", "annotations");

    std::size_t shown = 0;
    for (const TracedRecord &tr : trace) {
        if (shown++ >= 60)
            break;
        const EventRecord &r = tr.rec;
        char where[64] = "";
        if (r.isMemAccess()) {
            std::snprintf(where, sizeof(where), "%#llx",
                          (unsigned long long)r.addr);
        } else if (!r.range.empty()) {
            std::snprintf(where, sizeof(where), "[%#llx,+%llu)",
                          (unsigned long long)r.range.begin,
                          (unsigned long long)r.range.size());
        } else if (r.addr) {
            std::snprintf(where, sizeof(where), "%#llx",
                          (unsigned long long)r.addr);
        }
        std::printf("%6llu %3u %6llu  %-14s %-14s",
                    (unsigned long long)tr.globalSeq, r.tid,
                    (unsigned long long)r.rid, toString(r.type), where);
        for (const DepArc &a : r.arcs) {
            std::printf(" arc(%u,%llu)", a.tid,
                        (unsigned long long)a.rid);
        }
        if (r.caSeq != kNoCaSeq)
            std::printf(" CA#%llu", (unsigned long long)r.caSeq);
        if (r.type == EventType::kCaBegin || r.type == EventType::kCaEnd)
            std::printf(" ca#%llu", (unsigned long long)r.value);
        std::printf("\n");
    }

    // Compression summary (the LBA "<1 byte per record" claim).
    std::printf("\ncompression:\n");
    for (ThreadId t = 0; t < 2; ++t) {
        auto &c = p.capture(t).compressor();
        std::printf("  thread %u: %llu records, %.2f B/record\n", t,
                    (unsigned long long)c.totalRecords(),
                    c.averageBytes());
    }

    // Happens-before completeness of the captured arcs.
    HappensBeforeValidator v(2);
    auto result = v.validate(trace);
    std::printf("\nhappens-before validation: %zu conflicting pairs, "
                "%llu by arcs, %llu by alerts, %zu UNORDERED\n",
                (std::size_t)result.conflictingPairs,
                (unsigned long long)result.orderedByArcs,
                (unsigned long long)result.orderedByAlerts,
                result.violations.size());
    return result.ok() ? 0 : 1;
}
