/**
 * @file
 * TSO support walkthrough (section 5.5): runs the same lock-heavy
 * workload under SC and TSO and reports the non-SC conflicts detected
 * and the versioned-metadata traffic that keeps TaintCheck exact.
 */

#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"

using namespace paralog;

namespace {

PlatformConfig
baseConfig(MemoryModel model)
{
    PlatformConfig cfg;
    cfg.sim = SimConfig::forAppThreads(4);
    cfg.sim.mode = MonitorMode::kParallel;
    cfg.sim.memoryModel = model;
    cfg.lifeguard = LifeguardKind::kTaintCheck;
    cfg.workload = WorkloadKind::kLu;
    cfg.scale = 60000;
    return cfg;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("LU + TaintCheck, 4 app threads\n\n");

    {
        Platform p(baseConfig(MemoryModel::kSC));
        RunResult r = p.run();
        std::printf("SC:  %llu cycles, sc_violations=%llu\n",
                    (unsigned long long)r.totalCycles,
                    (unsigned long long)p.memory().stats.get(
                        "sc_violations"));
    }
    {
        Platform p(baseConfig(MemoryModel::kTSO));
        RunResult r = p.run();
        std::printf("TSO: %llu cycles, sc_violations=%llu, versions "
                    "produced=%llu consumed=%llu\n",
                    (unsigned long long)r.totalCycles,
                    (unsigned long long)p.memory().stats.get(
                        "sc_violations"),
                    (unsigned long long)p.versions().stats.get(
                        "produced"),
                    (unsigned long long)p.versions().stats.get(
                        "consumed"));
    }

    std::printf("\nUnder TSO, non-SC R->W conflicts are reversed into "
                "W->R by snapshotting\npre-overwrite metadata; every "
                "produced version is consumed exactly once,\nso the "
                "dependence graph stays acyclic and the lifeguards "
                "stay exact.\n");
    return 0;
}
