/**
 * @file
 * Differential tests for the host-parallel *live* monitoring engine
 * (`--lg-threads` without `--replay`, core/platform_concurrent.cpp):
 * for every lifeguard × memory model × core count × thread count, a
 * live run with the lifeguard cores on host threads must reach exactly
 * the serial scheduler's analysis conclusions — shadow fingerprint and
 * distinct-violation set — while timing-derived columns are relaxed.
 *
 * The equality contract here is deliberately *narrower* than the
 * replay-engine differential (test_concurrent_replay.cpp): live, the
 * application's timing feedback differs between the engines (the
 * serial app waits for record *consumption* at drain points, the
 * parallel app for *publication*), so per-stream record counts and
 * TSO version counts are legitimately different executions of the
 * same program — only the analysis conclusions are invariant.
 *
 * Also covers: --record composing with the live engine (the journal
 * replays result-exact through the concurrent replay engine, selected
 * implicitly by the kCfgLiveParallel header bit), delivery batch-size
 * invariance under ring-mode consumers, the seal-protocol stall
 * watchdog (fault point "seal.stall"), and failure containment for
 * consumer-thread panics (fault point "lg.fail"), standalone and
 * through runMatrix.
 *
 * The whole suite runs under -fsanitize=thread in CI (`tsan` label):
 * the differential matrix doubles as the data-race proof for the
 * online publication seal, the producer/consumer ring hand-off, and
 * the shared delivery/analysis structures in live-concurrent mode.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.hpp"
#include "core/replay.hpp"
#include "harness/paralog_test.hpp"

namespace paralog {
namespace {

using test::QuietTest;

class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
        : path_(::testing::TempDir() + "paralog_live_" + tag + "_" +
                std::to_string(::getpid()) + ".trace")
    {
    }
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** One live run plus the shadow fingerprint plain runs leave unset. */
struct LiveRun
{
    RunResult result;
    std::uint64_t shadowFp = 0;
};

LiveRun
runLive(WorkloadKind w, LifeguardKind lg, std::uint32_t cores,
        MemoryModel mm, std::uint64_t scale, std::uint32_t lg_threads,
        std::uint32_t shards = 0)
{
    ExperimentOptions opt = test::makeOptions(scale);
    opt.memoryModel = mm;
    opt.lgThreads = lg_threads;
    opt.shadowShards = shards;
    PlatformConfig cfg =
        makeConfig(w, lg, MonitorMode::kParallel, cores, opt);
    Platform p(std::move(cfg));
    LiveRun run;
    run.result = p.run();
    const ShadowMemory &s = p.lifeguard().shadow();
    run.shadowFp =
        shadowFingerprint(s, AddressLayout::kHeapBase, 1 << 20) ^
        shadowFingerprint(s, AddressLayout::kGlobalBase, 1 << 16);
    return run;
}

/** The analysis-conclusion equality the live engine guarantees. See
 *  the file comment for why everything else (timing, per-stream record
 *  counts, version counters, violation *report* counts) is relaxed. */
void
expectSameAnalysis(const LiveRun &conc, const LiveRun &serial)
{
    EXPECT_EQ(conc.shadowFp, serial.shadowFp);
    EXPECT_EQ(conc.result.violationFingerprint,
              serial.result.violationFingerprint);
    EXPECT_EQ(conc.result.violationCount == 0,
              serial.result.violationCount == 0);
}

// ------------------------------------------- differential matrix ----

struct LiveCell
{
    LifeguardKind lifeguard;
    MemoryModel memoryModel;
    std::uint32_t cores;
};

class LiveConcurrentMatchesSerial
    : public test::QuietTestWithParam<LiveCell>
{
};

TEST_P(LiveConcurrentMatchesSerial, AnalysisConclusionsIdentical)
{
    const LiveCell &cell = GetParam();
    LiveRun serial = runLive(WorkloadKind::kLu, cell.lifeguard,
                             cell.cores, cell.memoryModel, 400, 0);
    ASSERT_NE(serial.shadowFp, 0u);

    // lgThreads beyond the core count exercises the min(lgThreads, k)
    // consumer clamp (every cell at cores=1 runs a single consumer).
    for (std::uint32_t threads : {2u, 4u}) {
        LiveRun conc = runLive(WorkloadKind::kLu, cell.lifeguard,
                               cell.cores, cell.memoryModel, 400,
                               threads);
        expectSameAnalysis(conc, serial);
    }
}

std::vector<LiveCell>
allLiveCells()
{
    std::vector<LiveCell> cells;
    for (LifeguardKind lg :
         {LifeguardKind::kAddrCheck, LifeguardKind::kTaintCheck,
          LifeguardKind::kMemCheck, LifeguardKind::kLockSet}) {
        for (MemoryModel mm : {MemoryModel::kSC, MemoryModel::kTSO}) {
            for (std::uint32_t cores : {1u, 2u, 4u})
                cells.push_back(LiveCell{lg, mm, cores});
        }
    }
    return cells;
}

INSTANTIATE_TEST_SUITE_P(
    LifeguardsModelsCores, LiveConcurrentMatchesSerial,
    ::testing::ValuesIn(allLiveCells()),
    [](const ::testing::TestParamInfo<LiveCell> &info) {
        return std::string(toString(info.param.lifeguard)) + "_" +
               toString(info.param.memoryModel) + "_" +
               std::to_string(info.param.cores) + "c";
    });

class LiveConcurrentModes : public QuietTest
{
};

TEST_F(LiveConcurrentModes, ShardCountInvariance)
{
    // The sharded shadow memory must reach the same fingerprint under
    // live-concurrent delivery for any shard count.
    LiveRun serial = runLive(WorkloadKind::kOcean,
                             LifeguardKind::kTaintCheck, 4,
                             MemoryModel::kSC, 400, 0);
    for (std::uint32_t shards : {1u, 4u}) {
        LiveRun conc = runLive(WorkloadKind::kOcean,
                               LifeguardKind::kTaintCheck, 4,
                               MemoryModel::kSC, 400, 4, shards);
        expectSameAnalysis(conc, serial);
    }
}

TEST_F(LiveConcurrentModes, ZeroAndOneThreadSelectTheSerialEngine)
{
    for (std::uint32_t threads : {0u, 1u}) {
        ExperimentOptions opt = test::makeOptions(300);
        opt.lgThreads = threads;
        PlatformConfig cfg =
            makeConfig(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                       MonitorMode::kParallel, 2, opt);
        Platform p(std::move(cfg));
        EXPECT_FALSE(p.concurrentLive());
        RunResult result = p.run();
        EXPECT_GT(result.totalCycles, 0u);
    }
    // And the engine is parallel-monitoring-only: the no-monitoring
    // baseline has no lifeguard cores to thread.
    ExperimentOptions opt = test::makeOptions(300);
    opt.lgThreads = 4;
    PlatformConfig cfg =
        makeConfig(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                   MonitorMode::kNoMonitoring, 2, opt);
    Platform p(std::move(cfg));
    EXPECT_FALSE(p.concurrentLive());
}

TEST_F(LiveConcurrentModes, RepeatedConcurrentRunsAreStable)
{
    // Host-thread scheduling varies run to run; analysis conclusions
    // must not. Repeats under the most protocol-heavy cell (TSO +
    // ConflictAlerts + LockSet's serialized read-side metadata writes).
    LiveRun serial = runLive(WorkloadKind::kLu, LifeguardKind::kLockSet,
                             4, MemoryModel::kTSO, 400, 0);
    for (int i = 0; i < 3; ++i) {
        LiveRun conc = runLive(WorkloadKind::kLu,
                               LifeguardKind::kLockSet, 4,
                               MemoryModel::kTSO, 400, 4);
        expectSameAnalysis(conc, serial);
    }
}

TEST_F(LiveConcurrentModes, DeliveryBatchSizeInvariance)
{
    // Ring-mode consumers deliver in solo-horizon batches; the batch
    // boundary must never leak into analysis conclusions. TSO makes
    // this load-bearing: version consume/produce ops interleave with
    // deliveries inside one batch.
    LiveRun serial = runLive(WorkloadKind::kLu,
                             LifeguardKind::kTaintCheck, 4,
                             MemoryModel::kTSO, 400, 0);
    for (const char *batch : {"1", "16"}) {
        ::setenv("PARALOG_DELIVER_BATCH", batch, 1);
        LiveRun conc = runLive(WorkloadKind::kLu,
                               LifeguardKind::kTaintCheck, 4,
                               MemoryModel::kTSO, 400, 4);
        ::unsetenv("PARALOG_DELIVER_BATCH");
        expectSameAnalysis(conc, serial);
    }
}

// ------------------------------------ record / replay composition ----

class LiveRecordReplay : public QuietTest
{
};

TEST_F(LiveRecordReplay, LiveParallelRecordingReplaysResultExact)
{
    // --record composed with --lg-threads: the journal carries the
    // kCfgLiveParallel header bit, and a same-lifeguard replay selects
    // the concurrent replay engine implicitly (the journal has no
    // lifeguard-step stamps for the serial scheduler to reproduce).
    // The replay self-checks its results against the recorded footer
    // and panics on divergence, so a clean run() *is* the proof.
    TempTrace tmp("rec");
    RunSpec rec;
    rec.workload = WorkloadKind::kLu;
    rec.lifeguard = LifeguardKind::kTaintCheck;
    rec.mode = MonitorMode::kParallel;
    rec.cores = 4;
    rec.opt = test::makeOptions(400);
    rec.opt.memoryModel = MemoryModel::kTSO;
    rec.opt.lgThreads = 2;
    rec.recordPath = tmp.path();
    RunResult live = recordExperiment(rec);
    ASSERT_NE(live.shadowFingerprint, 0u);

    // Implicit engine selection: no --lg-threads on the replay side.
    {
        ReplayConfig cfg;
        cfg.path = tmp.path();
        ReplayPlatform rp(std::move(cfg));
        EXPECT_TRUE(rp.recordedLiveParallel());
        EXPECT_TRUE(rp.recordedConfig().liveParallel);
        EXPECT_TRUE(rp.concurrent());
        RunResult result = rp.run();
        EXPECT_EQ(result.shadowFingerprint, live.shadowFingerprint);
        EXPECT_EQ(result.violationFingerprint,
                  live.violationFingerprint);
    }
    // Explicit thread counts compose with the implicit selection.
    {
        ReplayConfig cfg;
        cfg.path = tmp.path();
        cfg.lgThreads = 4;
        ReplayPlatform rp(std::move(cfg));
        EXPECT_TRUE(rp.concurrent());
        RunResult result = rp.run();
        EXPECT_EQ(result.shadowFingerprint, live.shadowFingerprint);
    }
    // Cross-lifeguard re-monitoring of a live-parallel journal keeps
    // the serial engine (approximate, no footer check): the implicit
    // selection is a same-lifeguard exactness contract only.
    {
        ReplayConfig cfg;
        cfg.path = tmp.path();
        cfg.lifeguardOverride = true;
        cfg.lifeguard = LifeguardKind::kAddrCheck;
        ReplayPlatform rp(std::move(cfg));
        EXPECT_TRUE(rp.recordedLiveParallel());
        EXPECT_FALSE(rp.concurrent());
        RunResult result = rp.run();
        EXPECT_GT(result.totalCycles, 0u);
    }
}

TEST_F(LiveRecordReplay, SerialRecordingsKeepTheHeaderBitClear)
{
    // Serial recordings must not grow the header bit (replay keeps its
    // bit-identical serial self-check, and the committed trace corpus
    // stays valid).
    TempTrace tmp("serial");
    RunSpec rec;
    rec.workload = WorkloadKind::kLu;
    rec.lifeguard = LifeguardKind::kAddrCheck;
    rec.mode = MonitorMode::kParallel;
    rec.cores = 2;
    rec.opt = test::makeOptions(300);
    rec.recordPath = tmp.path();
    recordExperiment(rec);

    ReplayConfig cfg;
    cfg.path = tmp.path();
    ReplayPlatform rp(std::move(cfg));
    EXPECT_FALSE(rp.recordedLiveParallel());
    EXPECT_FALSE(rp.concurrent());
}

// ----------------------------- watchdog + failure containment ----

class LiveConcurrentFailures : public QuietTest
{
};

TEST_F(LiveConcurrentFailures, SealStallTripsTheWatchdogWithDump)
{
    // Fault point "seal.stall" suppresses publication for one stream:
    // its consumer starves, global progress freezes, and the live
    // watchdog must catch the stall (joining the workers before it
    // panics, so the throw below crosses no live threads).
    ExperimentOptions opt = test::makeOptions(400);
    opt.lgThreads = 2;
    PlatformConfig cfg =
        makeConfig(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                   MonitorMode::kParallel, 2, opt);
    cfg.stallWatchdogIters = 20'000;

    armFault("seal.stall", 0);
    bool prev = setPanicThrows(true);
    std::string message;
    try {
        Platform p(std::move(cfg));
        p.run();
    } catch (const SimPanicError &e) {
        message = e.what();
    }
    setPanicThrows(prev);
    clearFault("seal.stall");
    EXPECT_NE(message.find("watchdog"), std::string::npos) << message;
}

TEST_F(LiveConcurrentFailures, ConsumerThreadPanicSurfacesOnOwningThread)
{
    // Fault point "lg.fail" (legacy PARALOG_FAIL_LG) panics on the
    // consumer thread that owns the named lifeguard stream. The engine
    // must capture it, abort the other workers, join everything, and
    // rethrow at the join point on the cell-owning thread.
    ExperimentOptions opt = test::makeOptions(300);
    opt.lgThreads = 2;

    armFault("lg.fail", 1);
    bool prev = setPanicThrows(true);
    try {
        EXPECT_THROW(
            {
                runExperiment(WorkloadKind::kLu,
                              LifeguardKind::kTaintCheck,
                              MonitorMode::kParallel, 2, opt);
            },
            SimPanicError);
    } catch (...) {
    }
    setPanicThrows(prev);
    clearFault("lg.fail");

    // The injected failure must not wedge later runs in this process.
    RunResult result =
        runExperiment(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                      MonitorMode::kParallel, 2, opt);
    EXPECT_GT(result.totalCycles, 0u);
}

TEST_F(LiveConcurrentFailures, FailedLiveCellIsContainedByRunMatrix)
{
    // runMatrix's panic-throw scope + the engine's capture-and-rethrow:
    // a live cell whose consumer thread panics comes back `failed` with
    // the message, and the remaining cells still run.
    std::vector<RunSpec> specs;
    for (int i = 0; i < 3; ++i) {
        RunSpec s;
        s.workload = WorkloadKind::kLu;
        s.lifeguard = LifeguardKind::kAddrCheck;
        s.mode = MonitorMode::kParallel;
        s.cores = 2;
        s.opt = test::makeOptions(300);
        s.opt.lgThreads = 2;
        specs.push_back(s);
    }

    armFault("lg.fail", 0);
    std::vector<CellResult> cells = runMatrix(specs, 1);
    clearFault("lg.fail");
    ASSERT_EQ(cells.size(), 3u);
    for (const CellResult &cell : cells) {
        EXPECT_TRUE(cell.failed);
        EXPECT_NE(cell.error.find("lg.fail"), std::string::npos)
            << cell.error;
    }

    // Without the fault armed, the same specs run clean at jobs > 1
    // (live-concurrent cells nest inside matrix host threads).
    cells = runMatrix(specs, 2);
    ASSERT_EQ(cells.size(), 3u);
    for (const CellResult &cell : cells)
        EXPECT_FALSE(cell.failed) << cell.error;
}

} // namespace
} // namespace paralog
