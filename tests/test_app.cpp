/** @file Unit tests for the application runtime: heap, sync, interpreter. */

#include <gtest/gtest.h>

#include <vector>

#include "app/interpreter.hpp"
#include "mem/memory_system.hpp"

namespace paralog {
namespace {

TEST(Heap, AllocateAndRelease)
{
    Heap h(0x1000000, 1 << 20);
    Addr a = h.allocate(100);
    ASSERT_NE(a, 0u);
    EXPECT_TRUE(h.isLive(a));
    EXPECT_GE(h.blockSize(a), 100u);
    h.release(a);
    EXPECT_FALSE(h.isLive(a));
}

TEST(Heap, DistinctBlocks)
{
    Heap h(0x1000000, 1 << 20);
    Addr a = h.allocate(64);
    Addr b = h.allocate(64);
    EXPECT_NE(a, b);
    // Payloads must not overlap.
    EXPECT_TRUE(a + 64 <= b || b + 64 <= a);
}

TEST(Heap, ReuseAfterFree)
{
    Heap h(0x1000000, 1 << 20);
    Addr a = h.allocate(64);
    h.release(a);
    Addr b = h.allocate(64);
    EXPECT_EQ(a, b); // first-fit reuses the freed block
}

TEST(Heap, CoalescingAvoidsFragmentation)
{
    Heap h(0x1000000, 4096);
    std::vector<Addr> blocks;
    Addr a = 0;
    while ((a = h.allocate(64)) != 0)
        blocks.push_back(a);
    EXPECT_GT(blocks.size(), 10u);
    for (Addr b : blocks)
        h.release(b);
    // After freeing everything, a large block must fit again.
    EXPECT_NE(h.allocate(2048), 0u);
}

TEST(Heap, ExhaustionReturnsZero)
{
    Heap h(0x1000000, 1024);
    EXPECT_EQ(h.allocate(4096), 0u);
}

TEST(Heap, PerThreadArenasSeparate)
{
    Heap h(0x1000000, 1 << 20, 4);
    Addr a0 = h.allocate(64, 0);
    Addr a1 = h.allocate(64, 1);
    EXPECT_NE(h.arenaOf(a0), h.arenaOf(a1));
    EXPECT_NE(h.lockAddr(0), h.lockAddr(1));
}

TEST(Heap, ArenaFallbackOnExhaustion)
{
    Heap h(0x1000000, 4096, 2);
    // Exhaust arena 0.
    while (true) {
        Addr a = h.allocate(256, 0);
        if (a == 0)
            break;
        if (h.arenaOf(a) != 0)
            break; // fell back: done
    }
    EXPECT_GE(h.stats.get("arena_fallbacks"), 1u);
}

TEST(Heap, HeaderPrecedesPayload)
{
    Heap h(0x1000000, 1 << 20);
    Addr a = h.allocate(64);
    EXPECT_EQ(Heap::headerAddr(a), a - Heap::kHeaderBytes);
}

TEST(LockManager, AcquireRelease)
{
    LockManager lm;
    EXPECT_TRUE(lm.tryAcquire(0x100, 0));
    EXPECT_FALSE(lm.tryAcquire(0x100, 1));
    EXPECT_EQ(lm.owner(0x100), 0u);
    lm.release(0x100, 0);
    EXPECT_TRUE(lm.tryAcquire(0x100, 1));
}

TEST(LockManager, IndependentLocks)
{
    LockManager lm;
    EXPECT_TRUE(lm.tryAcquire(0x100, 0));
    EXPECT_TRUE(lm.tryAcquire(0x200, 1));
}

TEST(BarrierManager, ReleaseOnLastArrival)
{
    BarrierManager bm;
    EXPECT_FALSE(bm.arrive(0x100, 0, 3));
    EXPECT_FALSE(bm.isReleased(0x100, 0));
    EXPECT_FALSE(bm.arrive(0x100, 1, 3));
    EXPECT_TRUE(bm.arrive(0x100, 2, 3)); // last arriver releases
    EXPECT_TRUE(bm.isReleased(0x100, 0));
    EXPECT_TRUE(bm.isReleased(0x100, 1));
    EXPECT_TRUE(bm.isReleased(0x100, 2));
}

TEST(BarrierManager, Generations)
{
    BarrierManager bm;
    bm.arrive(0x100, 0, 2);
    bm.arrive(0x100, 1, 2);
    bm.depart(0x100, 0);
    bm.depart(0x100, 1);
    // Second generation: not released until both arrive again.
    bm.arrive(0x100, 0, 2);
    EXPECT_FALSE(bm.isReleased(0x100, 0));
    bm.arrive(0x100, 1, 2);
    EXPECT_TRUE(bm.isReleased(0x100, 0));
}

// ----- interpreter -----

class NullHooks : public PlatformHooks
{
  public:
    bool lifeguardDrained(ThreadId) override { return true; }
};

/** Fixed instruction list program. */
class ListProgram : public ThreadProgram
{
  public:
    explicit ListProgram(std::vector<Inst> insts)
        : insts_(std::move(insts))
    {
    }

    std::optional<Inst>
    next(ThreadContext &) override
    {
        if (pos_ >= insts_.size())
            return std::nullopt;
        return insts_[pos_++];
    }

  private:
    std::vector<Inst> insts_;
    std::size_t pos_ = 0;
};

class InterpTest : public ::testing::Test
{
  protected:
    InterpTest()
        : cfg(SimConfig::forAppThreads(1)), mem(cfg, 2),
          heap(0x1000000, 1 << 20), dp(mem),
          interp(cfg, dp, mem, heap, locks, barriers, hooks)
    {
    }

    /** Run one thread's program to completion; returns its records. */
    std::vector<EventRecord>
    runThread(std::vector<Inst> insts, ThreadId tid = 0)
    {
        ThreadContext tc(tid, std::make_unique<ListProgram>(insts));
        std::vector<EventRecord> records;
        Cycle now = 0;
        for (int guard = 0; guard < 100000; ++guard) {
            auto out = interp.step(tc, 0, now);
            if (out.kind == Interpreter::StepOutcome::Kind::kDone)
                break;
            now += out.latency;
            if (out.kind == Interpreter::StepOutcome::Kind::kRetired) {
                ++tc.retired;
                if (out.event.record.type != EventType::kNone)
                    records.push_back(out.event.record);
            }
        }
        lastTc_ = tc.regs;
        return records;
    }

    SimConfig cfg;
    MemorySystem mem;
    Heap heap;
    LockManager locks;
    BarrierManager barriers;
    NullHooks hooks;
    ScDataPath dp;
    Interpreter interp;
    std::array<std::uint64_t, kNumRegs> lastTc_{};
};

TEST_F(InterpTest, DataFlowThroughMemory)
{
    auto recs = runThread({
        Inst::movImm(1, 0xABCD),
        Inst::store(0x2000, 1, 8),
        Inst::load(2, 0x2000, 8),
        Inst::done(),
    });
    EXPECT_EQ(lastTc_[2], 0xABCDu);
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].type, EventType::kMovImm);
    EXPECT_EQ(recs[1].type, EventType::kStore);
    EXPECT_EQ(recs[2].type, EventType::kLoad);
    EXPECT_EQ(recs[3].type, EventType::kThreadDone);
}

TEST_F(InterpTest, IndirectAddressing)
{
    auto recs = runThread({
        Inst::movImm(1, 0x3000),   // r1 = pointer
        Inst::movImm(2, 77),
        Inst::storeInd(1, 8, 2, 8), // mem[r1+8] = 77
        Inst::loadInd(3, 1, 8, 8),  // r3 = mem[r1+8]
        Inst::done(),
    });
    EXPECT_EQ(lastTc_[3], 77u);
    EXPECT_EQ(recs[2].addr, 0x3008u); // record logs the effective addr
}

TEST_F(InterpTest, MallocExpandsToWrapperSequence)
{
    auto recs = runThread({
        Inst::malloc(1, 128),
        Inst::done(),
    });
    // Expect: lock-acquire, movImm(pointer), header load/store,
    // malloc_end, lock-release, done.
    std::vector<EventType> types;
    for (const auto &r : recs)
        types.push_back(r.type);
    EXPECT_EQ(types,
              (std::vector<EventType>{
                  EventType::kLockAcquire, EventType::kMovImm,
                  EventType::kLoad, EventType::kStore,
                  EventType::kMallocEnd, EventType::kLockRelease,
                  EventType::kThreadDone}));
    // The malloc_end record carries the allocated range.
    EXPECT_EQ(recs[4].range.size(), 128u);
    EXPECT_EQ(recs[4].range.begin, lastTc_[1]);
}

TEST_F(InterpTest, FreeCarriesRange)
{
    auto recs = runThread({
        Inst::malloc(1, 64),
        Inst::freeReg(1),
        Inst::done(),
    });
    bool found = false;
    for (const auto &r : recs) {
        if (r.type == EventType::kFreeBegin) {
            found = true;
            EXPECT_EQ(r.range.size(), 64u);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(heap.liveBlocks(), 0u);
}

TEST_F(InterpTest, FreeOnlyTouchesHeaders)
{
    // The paper's logical race: free() must not touch payload interior.
    auto recs = runThread({
        Inst::malloc(1, 1024),
        Inst::freeReg(1),
        Inst::done(),
    });
    Addr payload = lastTc_[1];
    for (const auto &r : recs) {
        if (!r.isMemAccess())
            continue;
        // No access may fall inside the payload interior.
        EXPECT_FALSE(r.addr >= payload && r.addr < payload + 1024)
            << "wrapper touched payload at " << std::hex << r.addr;
    }
}

TEST_F(InterpTest, SyscallReadFillsBufferAndEmitsRange)
{
    auto recs = runThread({
        Inst::syscallRead(0x4000, 64),
        Inst::load(1, 0x4000, 8),
        Inst::done(),
    });
    bool begin = false, end = false;
    for (const auto &r : recs) {
        if (r.type == EventType::kSyscallBegin) {
            begin = true;
            EXPECT_EQ(r.syscall, SyscallKind::kRead);
            EXPECT_EQ(r.range, (AddrRange{0x4000, 0x4040}));
        }
        if (r.type == EventType::kSyscallEnd)
            end = true;
    }
    EXPECT_TRUE(begin);
    EXPECT_TRUE(end);
    EXPECT_NE(lastTc_[1], 0u); // kernel wrote data
}

TEST_F(InterpTest, AluImmEmitsNoRecord)
{
    auto recs = runThread({
        Inst::movImm(1, 5),
        Inst::aluImm(1, 3),
        Inst::done(),
    });
    EXPECT_EQ(lastTc_[1], 8u);
    // mov_imm + thread_done only: aluImm is metadata-invisible.
    EXPECT_EQ(recs.size(), 2u);
}

TEST_F(InterpTest, JumpEmitsRecordWithValue)
{
    auto recs = runThread({
        Inst::movImm(1, 0x5000),
        Inst::jumpReg(1),
        Inst::done(),
    });
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[1].type, EventType::kJump);
    EXPECT_EQ(recs[1].value, 0x5000u);
}

TEST_F(InterpTest, LockBlocksUntilReleased)
{
    // Thread 1 holds the lock; thread 0 must block.
    ASSERT_TRUE(locks.tryAcquire(0x100, 1));
    ThreadContext tc(0, std::make_unique<ListProgram>(std::vector<Inst>{
                            Inst::lock(0x100), Inst::done()}));
    auto out = interp.step(tc, 0, 0);
    EXPECT_EQ(out.kind, Interpreter::StepOutcome::Kind::kBlocked);
    EXPECT_EQ(tc.blockReason, BlockReason::kLock);
    locks.release(0x100, 1);
    out = interp.step(tc, 0, 100);
    EXPECT_EQ(out.kind, Interpreter::StepOutcome::Kind::kRetired);
    EXPECT_EQ(out.event.record.type, EventType::kLockAcquire);
}

TEST_F(InterpTest, AluLatencyModelsFp)
{
    ThreadContext tc(0, std::make_unique<ListProgram>(std::vector<Inst>{
                            Inst::alu(1, 2), Inst::done()}));
    auto out = interp.step(tc, 0, 0);
    EXPECT_EQ(out.latency, cfg.aluLatency);
}

} // namespace
} // namespace paralog
