/**
 * @file
 * Parameterized workload tests: every benchmark must run to completion
 * under every lifeguard and thread count, deterministically, without
 * emitting internal micro-ops from programs.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/experiment.hpp"

namespace paralog {
namespace {

using GridParam = std::tuple<WorkloadKind, std::uint32_t>;

class WorkloadGrid : public ::testing::TestWithParam<GridParam>
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }
};

TEST_P(WorkloadGrid, RunsUnmonitored)
{
    auto [w, threads] = GetParam();
    ExperimentOptions o;
    o.scale = 6000;
    RunResult r = runExperiment(w, LifeguardKind::kTaintCheck,
                                MonitorMode::kNoMonitoring, threads, o);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.retiredTotal(), 500u);
}

TEST_P(WorkloadGrid, RunsUnderTaintCheck)
{
    auto [w, threads] = GetParam();
    ExperimentOptions o;
    o.scale = 6000;
    RunResult r = runExperiment(w, LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, threads, o);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_EQ(r.violationCount, 0u) << "unexpected taint violation";
}

TEST_P(WorkloadGrid, RunsUnderAddrCheck)
{
    auto [w, threads] = GetParam();
    ExperimentOptions o;
    o.scale = 6000;
    RunResult r = runExperiment(w, LifeguardKind::kAddrCheck,
                                MonitorMode::kParallel, threads, o);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_EQ(r.violationCount, 0u) << "unexpected AddrCheck violation";
}

TEST_P(WorkloadGrid, StrongScalingHoldsWorkConstant)
{
    auto [w, threads] = GetParam();
    if (threads == 1)
        GTEST_SUCCEED();
    ExperimentOptions o;
    o.scale = 6000;
    RunResult r1 = runExperiment(w, LifeguardKind::kTaintCheck,
                                 MonitorMode::kNoMonitoring, 1, o);
    RunResult rk = runExperiment(w, LifeguardKind::kTaintCheck,
                                 MonitorMode::kNoMonitoring, threads, o);
    // Total retired work should be within 2.5x across thread counts
    // (wrapper/synchronization overhead may add instructions).
    double ratio = static_cast<double>(rk.retiredTotal()) /
                   static_cast<double>(r1.retiredTotal());
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadGrid,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        std::string name = toString(std::get<0>(info.param));
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(WorkloadRegistry, AllKindsConstruct)
{
    for (WorkloadKind w : allWorkloads()) {
        auto wl = makeWorkload(w);
        ASSERT_NE(wl, nullptr);
        EXPECT_NE(wl->name(), nullptr);
        WorkloadEnv env;
        env.numThreads = 2;
        env.scale = 100;
        env.globalBase = 0x100000;
        env.lockBase = 0x200000;
        env.barrierBase = 0x210000;
        env.heapBase = 0x400000;
        env.heapBytes = 1 << 20;
        auto prog = wl->makeThread(0, env);
        EXPECT_NE(prog, nullptr);
    }
}

TEST(WorkloadRegistry, EightBenchmarks)
{
    EXPECT_EQ(allWorkloads().size(), 8u);
}

TEST(WorkloadRegistry, ProgramsEmitNoInternalOps)
{
    WorkloadEnv env;
    env.numThreads = 1;
    env.scale = 2000;
    env.globalBase = 0x100000;
    env.lockBase = 0x200000;
    env.barrierBase = 0x210000;
    env.heapBase = 0x400000;
    env.heapBytes = 1 << 20;
    for (WorkloadKind w : allWorkloads()) {
        auto wl = makeWorkload(w);
        auto prog = wl->makeThread(0, env);
        ThreadContext tc(0, nullptr);
        // Drive the generator directly (without executing) for a while;
        // register-dependent generators just see zeros, which is fine
        // for this structural check.
        for (int i = 0; i < 500; ++i) {
            auto inst = prog->next(tc);
            if (!inst)
                break;
            EXPECT_FALSE(isInternalOp(inst->op)) << toString(w);
        }
    }
}

} // namespace
} // namespace paralog
