/** @file Unit tests for the common utility module. */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/interval_set.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace paralog {
namespace {

TEST(Bitops, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(65));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
}

TEST(Bitops, Align)
{
    EXPECT_EQ(alignDown(70, 64), 64u);
    EXPECT_EQ(alignUp(70, 64), 128u);
    EXPECT_EQ(alignUp(64, 64), 64u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(IntervalSet, InsertAndContains)
{
    IntervalSet s;
    s.insert(10, 20);
    EXPECT_TRUE(s.contains(10));
    EXPECT_TRUE(s.contains(19));
    EXPECT_FALSE(s.contains(20));
    EXPECT_FALSE(s.contains(9));
}

TEST(IntervalSet, MergeAdjacent)
{
    IntervalSet s;
    s.insert(10, 20);
    s.insert(20, 30);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.covers(10, 30));
}

TEST(IntervalSet, MergeOverlapping)
{
    IntervalSet s;
    s.insert(10, 25);
    s.insert(20, 40);
    s.insert(5, 12);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.covers(5, 40));
    EXPECT_EQ(s.coveredBytes(), 35u);
}

TEST(IntervalSet, EraseSplits)
{
    IntervalSet s;
    s.insert(0, 100);
    s.erase(40, 60);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(39));
    EXPECT_FALSE(s.contains(40));
    EXPECT_FALSE(s.contains(59));
    EXPECT_TRUE(s.contains(60));
}

TEST(IntervalSet, EraseAcrossRanges)
{
    IntervalSet s;
    s.insert(0, 10);
    s.insert(20, 30);
    s.insert(40, 50);
    s.erase(5, 45);
    EXPECT_EQ(s.coveredBytes(), 10u);
    EXPECT_TRUE(s.covers(0, 5));
    EXPECT_TRUE(s.covers(45, 50));
}

TEST(IntervalSet, Overlaps)
{
    IntervalSet s;
    s.insert(100, 200);
    EXPECT_TRUE(s.overlaps(150, 160));
    EXPECT_TRUE(s.overlaps(50, 101));
    EXPECT_TRUE(s.overlaps(199, 300));
    EXPECT_FALSE(s.overlaps(200, 300));
    EXPECT_FALSE(s.overlaps(0, 100));
}

TEST(Stats, CounterBasics)
{
    StatSet s("x");
    s.counter("a").inc();
    s.counter("a").inc(4);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
    s.reset();
    EXPECT_EQ(s.get("a"), 0u);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h;
    h.sample(0);
    h.sample(1);
    h.sample(100);
    h.sample(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1101.0 / 4.0);
}

TEST(SampleSummary, MinMedianMax)
{
    SampleSummary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.median(), 0u);
    EXPECT_EQ(s.max(), 0u);
    EXPECT_TRUE(s.allEqual());

    s.add(30);
    s.add(10);
    s.add(20);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.min(), 10u);
    EXPECT_EQ(s.median(), 20u);
    EXPECT_EQ(s.max(), 30u);
    EXPECT_FALSE(s.allEqual());

    // Even count: the lower middle, exact and integer-valued.
    s.add(40);
    EXPECT_EQ(s.median(), 20u);
}

TEST(SampleSummary, OrderInvariant)
{
    // The --repeat aggregation contract: any completion order of the
    // same samples yields the same summary.
    const std::uint64_t vals[] = {7, 3, 3, 9, 5};
    std::uint64_t perm_min = 0, perm_med = 0, perm_max = 0;
    for (int rot = 0; rot < 5; ++rot) {
        SampleSummary s;
        for (int i = 0; i < 5; ++i)
            s.add(vals[(i + rot) % 5]);
        if (rot == 0) {
            perm_min = s.min();
            perm_med = s.median();
            perm_max = s.max();
        }
        EXPECT_EQ(s.min(), perm_min);
        EXPECT_EQ(s.median(), perm_med);
        EXPECT_EQ(s.max(), perm_max);
    }
    EXPECT_EQ(perm_min, 3u);
    EXPECT_EQ(perm_med, 5u);
    EXPECT_EQ(perm_max, 9u);
}

TEST(SampleSummary, AllEqualAndInterleavedReads)
{
    SampleSummary s;
    s.add(4);
    EXPECT_EQ(s.median(), 4u); // read ...
    s.add(4);                  // ... then mutate again
    s.add(4);
    EXPECT_TRUE(s.allEqual());
    EXPECT_EQ(s.min(), 4u);
    EXPECT_EQ(s.max(), 4u);

    WallClockSummary w;
    w.add(2.5);
    w.add(1.5);
    EXPECT_DOUBLE_EQ(w.min(), 1.5);
    EXPECT_DOUBLE_EQ(w.median(), 1.5);
    EXPECT_DOUBLE_EQ(w.max(), 2.5);
}

TEST(AddrRange, Basics)
{
    AddrRange r{100, 200};
    EXPECT_EQ(r.size(), 100u);
    EXPECT_TRUE(r.contains(100));
    EXPECT_FALSE(r.contains(200));
    EXPECT_TRUE(r.overlaps(AddrRange{150, 250}));
    EXPECT_FALSE(r.overlaps(AddrRange{200, 250}));
    EXPECT_TRUE(AddrRange{}.empty());
}

} // namespace
} // namespace paralog
