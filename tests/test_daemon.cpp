/**
 * @file
 * End-to-end tests for paralogd (daemon/daemon.hpp): a daemon instance
 * runs on a background thread in-process, real clients talk to it over
 * its Unix-domain socket, and the acceptance bar of the service is
 * asserted directly —
 *
 *   - a submitted recording re-monitors to the SAME shadow fingerprint
 *     as an offline `--replay` of the same file;
 *   - one misbehaving client (corrupt CRC, mid-upload disconnect,
 *     slow-loris, garbage magic, trailing bytes) poisons only its own
 *     session and is accounted in the metrics taxonomy;
 *   - admission control rejects/sheds with a reason instead of
 *     blocking; worker panics are contained to their job;
 *   - a chaos mix of concurrent well- and ill-behaved clients leaves
 *     the books balanced and the daemon drains to exit code 0.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.hpp"
#include "daemon/client.hpp"
#include "daemon/daemon.hpp"
#include "daemon/protocol.hpp"
#include "harness/paralog_test.hpp"
#include "trace/format.hpp"

namespace paralog::daemon {
namespace {

using test::QuietTest;

std::string
hexU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

/**
 * One recorded trace shared by the whole suite (recording is the slow
 * part), plus the offline-replay fingerprints every daemon answer must
 * reproduce.
 */
struct SharedTrace
{
    std::string path;
    std::uint64_t shadowFp = 0;
    std::uint64_t violationFp = 0;
};

const SharedTrace &
sharedTrace()
{
    static const SharedTrace t = [] {
        SharedTrace s;
        s.path = ::testing::TempDir() + "paralogd_shared_" +
                 std::to_string(::getpid()) + ".trace";
        RunSpec spec;
        spec.workload = WorkloadKind::kLu;
        spec.lifeguard = LifeguardKind::kTaintCheck;
        spec.mode = MonitorMode::kParallel;
        spec.cores = 2;
        spec.opt = test::makeOptions(600);
        spec.recordPath = s.path;
        recordExperiment(spec);

        RunSpec replay = spec;
        replay.recordPath.clear();
        replay.replayPath = s.path;
        RunResult r = replayExperiment(replay);
        s.shadowFp = r.shadowFingerprint;
        s.violationFp = r.violationFingerprint;
        return s;
    }();
    return t;
}

/** In-process daemon on a background thread, torn down by dtor. */
class DaemonHarness
{
  public:
    explicit DaemonHarness(const std::string &tag, DaemonConfig cfg = {})
    {
        cfg.socketPath = ::testing::TempDir() + "pld_" + tag + "_" +
                         std::to_string(::getpid()) + ".sock";
        cfg.quiet = true;
        if (cfg.heartbeatMs == 500)
            cfg.heartbeatMs = 100; // fast heartbeats for short tests
        cfg_ = cfg;
        daemon_ = std::make_unique<Daemon>(cfg_);
        started_ = daemon_->start();
        if (started_)
            thread_ = std::thread([this] { rc_ = daemon_->run(); });
    }

    ~DaemonHarness()
    {
        stop();
        std::remove(cfg_.socketPath.c_str());
        ::rmdir((cfg_.socketPath + ".spool").c_str());
    }

    /** Request drain, join, return the daemon's exit code. */
    int
    stop()
    {
        if (thread_.joinable()) {
            daemon_->requestStop();
            thread_.join();
        }
        return rc_;
    }

    bool started() const { return started_; }
    const std::string &socket() const { return cfg_.socketPath; }
    MetricRegistry &metrics() { return daemon_->metrics(); }

    SubmitOptions
    submitOpts() const
    {
        SubmitOptions opt;
        opt.socketPath = cfg_.socketPath;
        return opt;
    }

  private:
    DaemonConfig cfg_;
    std::unique_ptr<Daemon> daemon_;
    std::thread thread_;
    bool started_ = false;
    int rc_ = -1;
};

/** Spin until @p pred holds (the event loop runs on its own clock). */
bool
waitFor(const std::function<bool()> &pred, int timeout_ms = 10000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
}

/** Raw protocol client: send @p bytes, half-close, read the answer. */
std::string
rawExchange(const std::string &socket_path, const std::string &bytes)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    ::shutdown(fd, SHUT_WR);
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

class DaemonTest : public QuietTest
{
  protected:
    void TearDown() override { clearAllFaults(); }

    static std::string
    fingerprintField(std::uint64_t fp)
    {
        return "\"shadowFingerprint\":\"" + hexU64(fp) + "\"";
    }
};

// ------------------------------------------------------------ happy path

TEST_F(DaemonTest, SubmitMatchesOfflineReplay)
{
    DaemonHarness h("e2e");
    ASSERT_TRUE(h.started());

    SubmitResult r = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status(), "ok") << r.responseJson;
    // The acceptance bar: the daemon's re-monitoring run reproduces the
    // offline `--replay` fingerprints bit-identically.
    EXPECT_NE(r.responseJson.find(fingerprintField(sharedTrace().shadowFp)),
              std::string::npos)
        << r.responseJson;
    EXPECT_NE(r.responseJson.find("\"violationFingerprint\":\"" +
                                  hexU64(sharedTrace().violationFp) +
                                  "\""),
              std::string::npos)
        << r.responseJson;
    EXPECT_NE(r.responseJson.find("\"selfCheck\":true"),
              std::string::npos);
    EXPECT_EQ(h.stop(), 0);
}

TEST_F(DaemonTest, SubmitUnderMultipleLifeguards)
{
    DaemonHarness h("multi");
    ASSERT_TRUE(h.started());

    SubmitOptions opt = h.submitOpts();
    opt.lifeguards = {LifeguardKind::kTaintCheck,
                      LifeguardKind::kAddrCheck};
    SubmitResult r = submitTrace(sharedTrace().path, opt);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status(), "ok") << r.responseJson;
    EXPECT_NE(r.responseJson.find("\"lifeguard\":\"TaintCheck\""),
              std::string::npos);
    EXPECT_NE(r.responseJson.find("\"lifeguard\":\"AddrCheck\""),
              std::string::npos);
    // The same-kind run self-checks; the cross-kind run is the
    // approximate re-monitoring mode.
    EXPECT_NE(r.responseJson.find("\"selfCheck\":true"),
              std::string::npos);
    EXPECT_NE(r.responseJson.find("\"selfCheck\":false"),
              std::string::npos);
}

TEST_F(DaemonTest, StatsEndpointRendersMetrics)
{
    DaemonHarness h("stats");
    ASSERT_TRUE(h.started());

    SubmitResult r = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(r.ok) << r.error;

    std::string text, err;
    ASSERT_TRUE(fetchStats(h.socket(), text, err)) << err;
    EXPECT_NE(text.find("counter daemon.conns.accepted"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("counter daemon.jobs.completed 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("gauge daemon.uptime-ms"), std::string::npos);
    EXPECT_NE(text.find("meter daemon.lg.TaintCheck.ms"),
              std::string::npos);
}

// -------------------------------------------- ill-behaved clients

TEST_F(DaemonTest, CorruptCrcClientPoisonsOnlyItsSession)
{
    DaemonHarness h("crc");
    ASSERT_TRUE(h.started());

    SubmitOptions bad = h.submitOpts();
    bad.corruptByteOffset =
        static_cast<long>(trace::kHeaderBytes) + 16 + 2; // payload byte
    SubmitResult r = submitTrace(sharedTrace().path, bad);
    ASSERT_TRUE(r.ok) << r.error; // transport fine; verdict is not
    EXPECT_EQ(r.status(), "failed") << r.responseJson;
    EXPECT_NE(r.responseJson.find("crc-mismatch"), std::string::npos)
        << r.responseJson;
    EXPECT_GE(h.metrics().counterValue("daemon.ingest.failed.crc-mismatch"),
              1u);

    // The daemon is unharmed: a clean submit still round-trips.
    SubmitResult good = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.status(), "ok") << good.responseJson;
    EXPECT_EQ(h.stop(), 0);
}

TEST_F(DaemonTest, DaemonSideCrcFaultHitsOneSession)
{
    DaemonHarness h("crcfault");
    ASSERT_TRUE(h.started());

    armFault("daemon.corrupt-crc", 0); // first session's upload
    SubmitResult r = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status(), "failed") << r.responseJson;
    EXPECT_NE(r.responseJson.find("crc-mismatch"), std::string::npos);
    clearFault("daemon.corrupt-crc");

    SubmitResult good = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.status(), "ok") << good.responseJson;
}

TEST_F(DaemonTest, MidUploadDisconnectIsAccountedTruncated)
{
    DaemonHarness h("dc");
    ASSERT_TRUE(h.started());

    SubmitOptions bad = h.submitOpts();
    bad.disconnectAfterFraction = 0.5;
    bad.chunkBytes = 4096;
    SubmitResult r = submitTrace(sharedTrace().path, bad);
    EXPECT_FALSE(r.ok); // we hung up on purpose

    EXPECT_TRUE(waitFor([&] {
        return h.metrics().counterValue(
                   "daemon.ingest.failed.truncated") >= 1;
    }));
    SubmitResult good = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.status(), "ok") << good.responseJson;
}

TEST_F(DaemonTest, HeaderOnlyUploadIsTruncated)
{
    DaemonHarness h("hdronly");
    ASSERT_TRUE(h.started());

    std::vector<std::uint8_t> bytes = slurp(sharedTrace().path);
    ASSERT_GT(bytes.size(), trace::kHeaderBytes);
    bytes.resize(trace::kHeaderBytes);
    std::string stub = ::testing::TempDir() + "pld_hdronly_" +
                       std::to_string(::getpid()) + ".trace";
    spit(stub, bytes);

    SubmitResult r = submitTrace(stub, h.submitOpts());
    std::remove(stub.c_str());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status(), "failed") << r.responseJson;
    EXPECT_NE(r.responseJson.find("truncated"), std::string::npos)
        << r.responseJson;
}

TEST_F(DaemonTest, TrailingBytesAfterFooterAreRejected)
{
    DaemonHarness h("trail");
    ASSERT_TRUE(h.started());

    std::vector<std::uint8_t> bytes = slurp(sharedTrace().path);
    bytes.push_back(0x42);
    std::string stub = ::testing::TempDir() + "pld_trail_" +
                       std::to_string(::getpid()) + ".trace";
    spit(stub, bytes);

    SubmitResult r = submitTrace(stub, h.submitOpts());
    std::remove(stub.c_str());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status(), "failed") << r.responseJson;
    EXPECT_NE(r.responseJson.find("trailing-data"), std::string::npos)
        << r.responseJson;
}

TEST_F(DaemonTest, GarbageMagicIsRejected)
{
    DaemonHarness h("magic");
    ASSERT_TRUE(h.started());

    std::string answer = rawExchange(h.socket(), "NOTAPROT");
    EXPECT_NE(answer.find("\"status\":\"rejected\""), std::string::npos)
        << answer;
    EXPECT_NE(answer.find("bad-request-magic"), std::string::npos);
    EXPECT_GE(h.metrics().counterValue("daemon.sessions.rejected"), 1u);
}

TEST_F(DaemonTest, SlowLorisHitsIdleTimeout)
{
    DaemonConfig cfg;
    cfg.idleTimeoutMs = 200;
    DaemonHarness h("loris", cfg);
    ASSERT_TRUE(h.started());

    SubmitOptions slow = h.submitOpts();
    slow.chunkBytes = 512;
    slow.interChunkDelayMs = 800; // way past the idle clock
    slow.timeoutMs = 20000;
    SubmitResult r = submitTrace(sharedTrace().path, slow);
    // The daemon answers "failed"/idle-timeout and closes; depending on
    // timing the client sees that response or a send failure.
    if (r.ok) {
        EXPECT_EQ(r.status(), "failed") << r.responseJson;
    }
    EXPECT_TRUE(waitFor([&] {
        return h.metrics().counterValue("daemon.idle-timeouts") >= 1;
    }));

    SubmitResult good = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.status(), "ok") << good.responseJson;
}

TEST_F(DaemonTest, DroppedConnectionFaultLeavesDaemonServing)
{
    DaemonHarness h("drop");
    ASSERT_TRUE(h.started());

    armFault("daemon.drop-conn", 0); // first accepted connection
    SubmitResult r = submitTrace(sharedTrace().path, h.submitOpts());
    EXPECT_FALSE(r.ok); // peer vanished before answering
    clearFault("daemon.drop-conn");
    EXPECT_EQ(h.metrics().counterValue("daemon.conns.dropped"), 1u);

    SubmitResult good = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.status(), "ok") << good.responseJson;
}

// ------------------------------------------- admission and containment

TEST_F(DaemonTest, OverSessionCapIsRejectedNotBlocked)
{
    DaemonConfig cfg;
    cfg.maxSessions = 1;
    DaemonHarness h("cap", cfg);
    ASSERT_TRUE(h.started());

    // Occupy the one session slot with an idle connection.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, h.socket().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(waitFor([&] {
        return h.metrics().counterValue("daemon.conns.accepted") >= 1;
    }));

    SubmitResult r = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(r.ok) << r.error; // answered immediately, not queued
    EXPECT_EQ(r.status(), "rejected") << r.responseJson;
    EXPECT_NE(r.responseJson.find("too-many-sessions"),
              std::string::npos);
    ::close(fd);
}

TEST_F(DaemonTest, FullQueueShedsInsteadOfBlocking)
{
    DaemonConfig cfg;
    cfg.workers = 1;
    cfg.maxQueuedJobs = 1;
    DaemonHarness h("shed", cfg);
    ASSERT_TRUE(h.started());

    armFault("daemon.stall-worker", 600); // hold the one worker busy

    constexpr int kClients = 4;
    std::vector<SubmitResult> results(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            results[i] = submitTrace(sharedTrace().path, h.submitOpts());
        });
    for (std::thread &t : clients)
        t.join();
    clearFault("daemon.stall-worker");

    int ok = 0, shed = 0;
    for (const SubmitResult &r : results) {
        ASSERT_TRUE(r.ok) << r.error; // every client got an answer
        if (r.status() == "ok")
            ++ok;
        else if (r.status() == "shed") {
            ++shed;
            EXPECT_NE(r.responseJson.find("queue-full"),
                      std::string::npos)
                << r.responseJson;
        }
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(shed, 1);
    EXPECT_EQ(ok + shed, kClients);
    EXPECT_EQ(h.metrics().counterValue("daemon.jobs.shed"),
              static_cast<std::uint64_t>(shed));
}

TEST_F(DaemonTest, WorkerPanicIsContainedToItsJob)
{
    DaemonHarness h("panic");
    ASSERT_TRUE(h.started());

    armFault("job.fail", 0); // first job panics in its worker
    SubmitResult r = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status(), "failed") << r.responseJson;
    EXPECT_NE(r.responseJson.find("injected failure"),
              std::string::npos)
        << r.responseJson;
    clearFault("job.fail");

    // Same worker pool, next job: unharmed.
    SubmitResult good = submitTrace(sharedTrace().path, h.submitOpts());
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.status(), "ok") << good.responseJson;
    EXPECT_GE(h.metrics().counterValue("daemon.jobs.failed"), 1u);
    EXPECT_GE(h.metrics().counterValue("daemon.jobs.completed"), 1u);
    EXPECT_EQ(h.stop(), 0);
}

TEST_F(DaemonTest, DrainFinishesRunningJobAndExitsZero)
{
    DaemonHarness h("drain");
    ASSERT_TRUE(h.started());

    armFault("daemon.stall-worker", 500);
    SubmitResult r;
    std::thread client([&] {
        r = submitTrace(sharedTrace().path, h.submitOpts());
    });
    // Wait until the job is accepted (and promptly picked up by an
    // idle worker), then start the drain under it.
    ASSERT_TRUE(waitFor([&] {
        return h.metrics().counterValue("daemon.jobs.accepted") >= 1;
    }));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int rc = h.stop();
    client.join();
    clearFault("daemon.stall-worker");

    EXPECT_EQ(rc, 0);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status(), "ok") << r.responseJson;
    EXPECT_GE(r.heartbeats, 1) << "no PLHB while the worker stalled";
}

// ------------------------------------------------------------ chaos mix

TEST_F(DaemonTest, ChaosMixDrainsCleanWithBalancedBooks)
{
    DaemonConfig cfg;
    cfg.workers = 2;
    cfg.maxQueuedJobs = 16; // well-behaved clients must not be shed
    DaemonHarness h("chaos", cfg);
    ASSERT_TRUE(h.started());

    const std::string &trace_path = sharedTrace().path;
    std::string expect_fp = fingerprintField(sharedTrace().shadowFp);

    // Stub files for the structurally-broken clients.
    std::vector<std::uint8_t> bytes = slurp(trace_path);
    std::vector<std::uint8_t> header_only(
        bytes.begin(), bytes.begin() + trace::kHeaderBytes);
    std::string stub = ::testing::TempDir() + "pld_chaos_stub_" +
                       std::to_string(::getpid()) + ".trace";
    spit(stub, header_only);

    constexpr int kGood = 6;
    std::vector<SubmitResult> good(kGood);
    SubmitResult corrupt, vanisher, slow, headerOnly;
    std::vector<std::thread> clients;

    for (int i = 0; i < kGood; ++i)
        clients.emplace_back([&, i] {
            SubmitOptions opt = h.submitOpts();
            if (i == 0)
                opt.lifeguards = {LifeguardKind::kTaintCheck,
                                  LifeguardKind::kAddrCheck};
            if (i % 2)
                opt.chunkBytes = 1536; // ragged send sizes
            good[i] = submitTrace(trace_path, opt);
        });
    clients.emplace_back([&] {
        SubmitOptions opt = h.submitOpts();
        opt.corruptByteOffset =
            static_cast<long>(trace::kHeaderBytes) + 16 + 5;
        corrupt = submitTrace(trace_path, opt);
    });
    clients.emplace_back([&] {
        SubmitOptions opt = h.submitOpts();
        opt.disconnectAfterFraction = 0.4;
        opt.chunkBytes = 4096;
        vanisher = submitTrace(trace_path, opt);
    });
    clients.emplace_back([&] {
        SubmitOptions opt = h.submitOpts();
        opt.chunkBytes = 16 * 1024;
        opt.interChunkDelayMs = 5; // slow but inside the idle budget
        slow = submitTrace(trace_path, opt);
    });
    clients.emplace_back(
        [&] { headerOnly = submitTrace(stub, h.submitOpts()); });
    clients.emplace_back([&] { // stats poller riding along
        for (int i = 0; i < 10; ++i) {
            std::string text, err;
            fetchStats(h.socket(), text, err);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });

    for (std::thread &t : clients)
        t.join();
    std::remove(stub.c_str());

    // Every well-behaved client got the offline-replay fingerprint.
    for (int i = 0; i < kGood; ++i) {
        ASSERT_TRUE(good[i].ok) << i << ": " << good[i].error;
        EXPECT_EQ(good[i].status(), "ok") << good[i].responseJson;
        EXPECT_NE(good[i].responseJson.find(expect_fp),
                  std::string::npos)
            << good[i].responseJson;
    }
    ASSERT_TRUE(slow.ok) << slow.error;
    EXPECT_EQ(slow.status(), "ok");
    EXPECT_NE(slow.responseJson.find(expect_fp), std::string::npos);

    // Every ill-behaved client was answered (or cut off) and accounted.
    ASSERT_TRUE(corrupt.ok) << corrupt.error;
    EXPECT_EQ(corrupt.status(), "failed");
    EXPECT_FALSE(vanisher.ok);
    ASSERT_TRUE(headerOnly.ok) << headerOnly.error;
    EXPECT_EQ(headerOnly.status(), "failed");

    MetricRegistry &m = h.metrics();
    EXPECT_GE(m.counterValue("daemon.ingest.failed.crc-mismatch"), 1u);
    EXPECT_TRUE(waitFor([&] {
        return m.counterValue("daemon.ingest.failed.truncated") >= 2;
    })) << "disconnect + header-only not accounted";

    // Books balance: all accepted jobs ran to a verdict, nothing stuck.
    EXPECT_TRUE(waitFor([&] {
        return m.counterValue("daemon.jobs.accepted") ==
               m.counterValue("daemon.jobs.completed");
    }));
    EXPECT_EQ(m.counterValue("daemon.jobs.accepted"),
              static_cast<std::uint64_t>(kGood) + 1); // good + slow

    EXPECT_EQ(h.stop(), 0) << "chaos left the daemon unable to drain";
}

} // namespace
} // namespace paralog::daemon
