/**
 * @file
 * Unit suite for the lock-free SPSC ring that carries event records
 * between the concurrent replay engine's producer and each lifeguard
 * consumer thread (common/spsc_ring.hpp), plus the watchdog
 * stall-signature sampling contract: everything the concurrent
 * supervisor reads cross-thread must be an atomic, so these tests run
 * under -fsanitize=thread in CI (the `tsan` ctest label).
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/spsc_ring.hpp"
#include "common/stats.hpp"
#include "core/platform.hpp"
#include "deliver/progress_table.hpp"

namespace paralog {
namespace {

TEST(SpscRing, StartsEmpty)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.front(), nullptr);
    EXPECT_TRUE(ring.consumerEmpty());
    EXPECT_EQ(ring.published(), 0u);
    EXPECT_EQ(ring.popped(), 0u);
    EXPECT_EQ(ring.pushed(), 0u);
    EXPECT_EQ(ring.freeSpace(), 4u);
}

TEST(SpscRing, StagedPushesAreInvisibleUntilPublish)
{
    SpscRing<int> ring(8);
    EXPECT_TRUE(ring.tryPush(1));
    EXPECT_TRUE(ring.tryPush(2));
    EXPECT_EQ(ring.pushed(), 2u);
    // The batch horizon: nothing is visible until publish().
    EXPECT_EQ(ring.front(), nullptr);
    EXPECT_EQ(ring.published(), 0u);

    ring.publish();
    EXPECT_EQ(ring.published(), 2u);
    ASSERT_NE(ring.front(), nullptr);
    EXPECT_EQ(*ring.front(), 1);
    ring.pop();
    ASSERT_NE(ring.front(), nullptr);
    EXPECT_EQ(*ring.front(), 2);
    ring.pop();
    EXPECT_EQ(ring.front(), nullptr);
    EXPECT_EQ(ring.popped(), 2u);
}

TEST(SpscRing, PublishMakesTheWholeBatchVisibleAtOnce)
{
    // A ConflictAlert arrival and its bookkeeping record must appear to
    // the consumer atomically: publish after staging both.
    SpscRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ring.tryPush(int(i)));
    EXPECT_EQ(ring.front(), nullptr);
    ring.publish();
    for (int i = 0; i < 5; ++i) {
        ASSERT_NE(ring.front(), nullptr);
        EXPECT_EQ(*ring.front(), i);
        ring.pop();
    }
    EXPECT_EQ(ring.front(), nullptr);
}

TEST(SpscRing, FullBoundary)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(int(i)));
    // Full: the next push fails until the consumer frees a slot.
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.freeSpace(), 0u);
    ring.publish();

    ASSERT_NE(ring.front(), nullptr);
    ring.pop();
    EXPECT_TRUE(ring.tryPush(4));
    EXPECT_FALSE(ring.tryPush(99));
    ring.publish();

    int expect = 1;
    while (ring.front() != nullptr) {
        EXPECT_EQ(*ring.front(), expect++);
        ring.pop();
    }
    EXPECT_EQ(expect, 5);
}

TEST(SpscRing, WraparoundPreservesFifoOrder)
{
    // Many times the capacity, odd batch sizes: every slot index wraps
    // repeatedly and order must survive.
    SpscRing<std::uint64_t> ring(8);
    std::uint64_t next_push = 0, next_pop = 0;
    const std::uint64_t total = 1000;
    while (next_pop < total) {
        for (int b = 0; b < 3 && next_push < total; ++b) {
            if (!ring.tryPush(std::uint64_t(next_push)))
                break;
            ++next_push;
        }
        ring.publish();
        while (std::uint64_t *v = ring.front()) {
            ASSERT_EQ(*v, next_pop);
            ring.pop();
            ++next_pop;
        }
    }
    EXPECT_EQ(ring.popped(), total);
    EXPECT_EQ(ring.published(), total);
}

TEST(SpscRing, FrontPointerStableAcrossRepeatedCalls)
{
    SpscRing<int> ring(4);
    ASSERT_TRUE(ring.tryPush(7));
    ring.publish();
    int *a = ring.front();
    int *b = ring.front();
    EXPECT_EQ(a, b);
    EXPECT_EQ(*a, 7);
}

TEST(SpscRing, CrossThreadStressKeepsOrderAndCounts)
{
    // Producer stages in irregular batches and publishes; consumer spins
    // on front(). Under TSan this doubles as the data-race proof for
    // the hand-off protocol (release publish / acquire front).
    SpscRing<std::uint64_t> ring(16);
    const std::uint64_t total = 200'000;

    std::thread producer([&] {
        std::uint64_t v = 0;
        while (v < total) {
            std::uint64_t staged = 0;
            while (staged < 1 + (v % 7) && v < total &&
                   ring.tryPush(std::uint64_t(v))) {
                ++v;
                ++staged;
            }
            if (staged > 0)
                ring.publish();
            else
                std::this_thread::yield();
        }
    });

    std::uint64_t expect = 0;
    std::uint64_t spins = 0;
    while (expect < total) {
        std::uint64_t *v = ring.front();
        if (!v) {
            if ((++spins & 0xFFF) == 0)
                std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(*v, expect);
        ring.pop();
        ++expect;
    }
    producer.join();
    EXPECT_EQ(ring.published(), total);
    EXPECT_EQ(ring.popped(), total);
    EXPECT_EQ(ring.front(), nullptr);
}

TEST(SpscRing, CountersReadableFromAThirdThread)
{
    // published()/popped() are the supervisor's stall-signature inputs:
    // a third thread hammers them while the SPSC pair runs. TSan
    // verifies the contract that they are safe from either side (and,
    // in effect, from a watchdog thread that owns neither role).
    SpscRing<std::uint64_t> ring(8);
    const std::uint64_t total = 50'000;
    std::atomic<bool> stop{false};

    std::thread watcher([&] {
        std::uint64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            std::uint64_t pub = ring.published();
            std::uint64_t pop = ring.popped();
            // Monotone, and consumption never overtakes publication.
            EXPECT_LE(pop, pub);
            EXPECT_GE(pub + pop, last);
            last = pub + pop;
            std::this_thread::yield();
        }
    });

    std::thread producer([&] {
        std::uint64_t v = 0;
        while (v < total) {
            if (ring.tryPush(std::uint64_t(v))) {
                ring.publish();
                ++v;
            } else {
                std::this_thread::yield();
            }
        }
    });

    std::uint64_t got = 0;
    while (got < total) {
        if (ring.front()) {
            ring.pop();
            ++got;
        }
    }
    producer.join();
    stop.store(true, std::memory_order_release);
    watcher.join();
    EXPECT_EQ(ring.published(), total);
    EXPECT_EQ(ring.popped(), total);
}

// ------------------------------------------------------- watchdog ----

TEST(WatchdogSignature, FiresOnlyWhenAtomicProgressStops)
{
    // The concurrent supervisor samples a signature built purely from
    // atomics (Counter, ProgressTable::done, ring published/popped)
    // while worker threads mutate them. This is the satellite-fix
    // contract: sampled cross-thread state must be relaxed-atomic, so
    // this test is TSan-covered. The watchdog must stay quiet while
    // anything moves and fire promptly once everything is still.
    Counter produced;
    ProgressTable progress(2);
    SpscRing<int> ring(8);
    std::atomic<bool> stop{false};

    std::thread worker([&] {
        RecordId done = 0;
        while (!stop.load(std::memory_order_acquire)) {
            produced.inc();
            progress.publish(0, ++done);
            if (ring.tryPush(1)) {
                ring.publish();
            }
            if (ring.front())
                ring.pop();
        }
    });

    auto signature = [&] {
        return produced.value() + progress.done(0) + progress.done(1) +
               ring.published() + ring.popped();
    };

    ProgressWatchdog watchdog(100);
    bool fired = false;
    // While the worker runs, a poll that observes a changed signature
    // resets the idle count; with real forward progress the watchdog
    // cannot accumulate 100 *consecutive* idle polls... but a slow
    // worker thread makes that racy to assert strictly, so only the
    // post-stop behavior is checked hard.
    for (int i = 0; i < 1000; ++i)
        watchdog.poll(signature());
    stop.store(true, std::memory_order_release);
    worker.join();

    ProgressWatchdog still(10);
    std::uint64_t sig = signature();
    EXPECT_EQ(sig, signature()) << "signature must be stable once idle";
    for (int i = 0; i < 20 && !fired; ++i)
        fired = still.poll(signature());
    EXPECT_TRUE(fired);
    EXPECT_GE(still.idlePolls(), 10u);
}

TEST(WatchdogSignature, ProgressResetsIdleCount)
{
    ProgressWatchdog watchdog(3);
    EXPECT_FALSE(watchdog.poll(1));
    EXPECT_FALSE(watchdog.poll(1));
    EXPECT_FALSE(watchdog.poll(2)); // progress: idle count resets
    EXPECT_EQ(watchdog.idlePolls(), 0u);
    EXPECT_FALSE(watchdog.poll(2));
    EXPECT_FALSE(watchdog.poll(2));
    EXPECT_TRUE(watchdog.poll(2));
}

} // namespace
} // namespace paralog
