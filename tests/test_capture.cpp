/** @file Unit tests for event capture: log buffer, reduction, filters. */

#include <gtest/gtest.h>

#include "capture/capture_unit.hpp"

namespace paralog {
namespace {

EventRecord
rec(EventType type, RecordId rid, Addr addr = 0)
{
    EventRecord r;
    r.type = type;
    r.rid = rid;
    r.addr = addr;
    r.size = 8;
    return r;
}

TEST(LogBuffer, FifoOrder)
{
    LogBuffer buf(1024);
    buf.append(rec(EventType::kLoad, 0));
    buf.append(rec(EventType::kStore, 1));
    EXPECT_EQ(buf.pop().rid, 0u);
    EXPECT_EQ(buf.pop().rid, 1u);
    EXPECT_TRUE(buf.empty());
}

TEST(LogBuffer, ByteAccountingAndFull)
{
    LogBuffer buf(4); // tiny: 4 bytes
    EXPECT_FALSE(buf.full());
    buf.append(rec(EventType::kLoad, 0));  // 1 byte
    buf.append(rec(EventType::kLoad, 1));
    buf.append(rec(EventType::kLoad, 2));
    EXPECT_FALSE(buf.full());
    buf.append(rec(EventType::kLoad, 3));
    EXPECT_TRUE(buf.full());
    buf.pop();
    EXPECT_FALSE(buf.full());
}

TEST(LogBuffer, CompressedSizesByType)
{
    EXPECT_EQ(rec(EventType::kLoad, 0).compressedBytes(), 1u);
    EXPECT_EQ(rec(EventType::kMallocEnd, 0).compressedBytes(), 8u);
    EventRecord r = rec(EventType::kLoad, 0);
    r.arcs.push_back(DepArc{1, 5});
    EXPECT_EQ(r.compressedBytes(), 5u); // 1 + 4 per arc
}

TEST(LogBuffer, VisibilityLimitHidesRecords)
{
    LogBuffer buf(1024);
    buf.append(rec(EventType::kLoad, 5));
    EXPECT_EQ(buf.peek(5), nullptr);    // rid 5 >= limit 5: hidden
    EXPECT_NE(buf.peek(6), nullptr);    // limit 6: visible
    EXPECT_NE(buf.peek(), nullptr);     // unlimited
}

TEST(LogBuffer, FindByRid)
{
    LogBuffer buf(1024);
    buf.append(rec(EventType::kLoad, 2));
    buf.append(rec(EventType::kStore, 7));
    EXPECT_EQ(buf.findByRid(2)->type, EventType::kLoad);
    EXPECT_EQ(buf.findByRid(7)->type, EventType::kStore);
    EXPECT_EQ(buf.findByRid(5), nullptr);
}

TEST(LogBuffer, FindByRidPreferMemAccessSkipsSameRidCaRecord)
{
    // CA records reuse the retire counter, so a CA record may share
    // the racing load's rid and precede it; the consume-version
    // annotation must land on the load.
    LogBuffer buf(1024);
    buf.append(rec(EventType::kCaBegin, 5));
    buf.append(rec(EventType::kLoad, 5));
    ASSERT_NE(buf.findByRidPreferMemAccess(5), nullptr);
    EXPECT_EQ(buf.findByRidPreferMemAccess(5)->type, EventType::kLoad);
    // With no mem access sharing the rid, any same-rid record is
    // returned (the lifeguard core's discard path handles it).
    LogBuffer buf2(1024);
    buf2.append(rec(EventType::kBarrierPass, 7));
    ASSERT_NE(buf2.findByRidPreferMemAccess(7), nullptr);
    EXPECT_EQ(buf2.findByRidPreferMemAccess(7)->type,
              EventType::kBarrierPass);
    EXPECT_EQ(buf2.findByRidPreferMemAccess(8), nullptr);
}

TEST(LogBuffer, InsertBefore)
{
    LogBuffer buf(1024);
    buf.append(rec(EventType::kLoad, 2));
    buf.append(rec(EventType::kStore, 7));
    buf.insertBefore(7, rec(EventType::kProduceVersion, 6));
    EXPECT_EQ(buf.pop().rid, 2u);
    EXPECT_EQ(buf.pop().type, EventType::kProduceVersion);
    EXPECT_EQ(buf.pop().rid, 7u);
}

TEST(ArcReducer, DropsDominatedArcs)
{
    ArcReducer red;
    EXPECT_TRUE(red.shouldRecord(RawArc{1, 10, false}));
    EXPECT_FALSE(red.shouldRecord(RawArc{1, 10, false})); // duplicate
    EXPECT_FALSE(red.shouldRecord(RawArc{1, 5, false}));  // dominated
    EXPECT_TRUE(red.shouldRecord(RawArc{1, 11, false}));  // new info
    EXPECT_TRUE(red.shouldRecord(RawArc{2, 1, false}));   // other thread
    EXPECT_EQ(red.kept, 3u);
    EXPECT_EQ(red.dropped, 2u);
}

class CaptureUnitTest : public ::testing::Test
{
  protected:
    CaptureUnitTest() : cfg(SimConfig::forAppThreads(2)) {}

    AppEvent
    appEvent(EventType type, RecordId rid, Addr addr = 0)
    {
        AppEvent ev;
        ev.record = rec(type, rid, addr);
        ev.record.tid = 0;
        return ev;
    }

    SimConfig cfg;
};

TEST_F(CaptureUnitTest, AppendsWantedRecords)
{
    CaptureUnit cu(0, cfg, EventFilter{});
    EXPECT_TRUE(cu.append(appEvent(EventType::kLoad, 0)));
    EXPECT_FALSE(cu.consumerEmpty());
    EXPECT_EQ(cu.pop().type, EventType::kLoad);
}

TEST_F(CaptureUnitTest, FilterDropsRegOps)
{
    EventFilter f;
    f.regOps = false;
    CaptureUnit cu(0, cfg, f);
    EXPECT_FALSE(cu.append(appEvent(EventType::kMovRR, 0)));
    EXPECT_TRUE(cu.append(appEvent(EventType::kLoad, 1)));
}

TEST_F(CaptureUnitTest, HeapOnlyFilter)
{
    EventFilter f;
    f.heapOnly = true;
    f.heapArena = AddrRange{0x1000, 0x2000};
    CaptureUnit cu(0, cfg, f);
    EXPECT_TRUE(cu.append(appEvent(EventType::kLoad, 0, 0x1800)));
    EXPECT_FALSE(cu.append(appEvent(EventType::kLoad, 1, 0x3000)));
    // High-level events always pass.
    EXPECT_TRUE(cu.append(appEvent(EventType::kMallocEnd, 2)));
}

TEST_F(CaptureUnitTest, ArcReductionAppliedOnAppend)
{
    CaptureUnit cu(0, cfg, EventFilter{});
    AppEvent ev = appEvent(EventType::kLoad, 0);
    ev.arcs.push_back(RawArc{1, 10, false});
    ev.arcs.push_back(RawArc{1, 8, false}); // dominated by the first
    cu.append(ev);
    EventRecord r = cu.pop();
    ASSERT_EQ(r.arcs.size(), 1u);
    EXPECT_EQ(r.arcs[0].rid, 10u);
}

TEST_F(CaptureUnitTest, ArcsOnFilteredRecordCarryForward)
{
    EventFilter f;
    f.regOps = true;
    f.loads = false; // loads filtered out
    CaptureUnit cu(0, cfg, f);
    AppEvent load = appEvent(EventType::kLoad, 0);
    load.arcs.push_back(RawArc{1, 42, false});
    EXPECT_FALSE(cu.append(load)); // filtered, arc pending
    EXPECT_TRUE(cu.append(appEvent(EventType::kMovRR, 1)));
    EventRecord r = cu.pop();
    // The ordering survived on the next captured record.
    ASSERT_EQ(r.arcs.size(), 1u);
    EXPECT_EQ(r.arcs[0].tid, 1u);
    EXPECT_EQ(r.arcs[0].rid, 42u);
}

TEST_F(CaptureUnitTest, ProgressCeilingTracksStream)
{
    CaptureUnit cu(0, cfg, EventFilter{});
    cu.setRetired(10);
    // Empty stream: everything retired is complete once consumed.
    EXPECT_EQ(cu.progressCeiling(), 10u);
    cu.append(appEvent(EventType::kLoad, 4));
    // A pending record at rid 4 caps the ceiling.
    EXPECT_EQ(cu.progressCeiling(), 4u);
    cu.pop();
    EXPECT_EQ(cu.progressCeiling(), 10u);
}

TEST_F(CaptureUnitTest, VisibilityLimitCapsCeiling)
{
    CaptureUnit cu(0, cfg, EventFilter{});
    cu.setRetired(20);
    cu.setVisibilityLimit(15);
    EXPECT_EQ(cu.progressCeiling(), 15u);
}

TEST_F(CaptureUnitTest, ConsumeAnnotation)
{
    CaptureUnit cu(0, cfg, EventFilter{});
    cu.append(appEvent(EventType::kLoad, 3, 0x100));
    VersionTag v{1, 99};
    EXPECT_TRUE(cu.annotateConsume(3, v));
    const EventRecord *r = cu.peek();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->consumesVersion);
    EXPECT_EQ(r->version, v);
    // Annotating a consumed record reports failure (benign).
    cu.pop();
    EXPECT_FALSE(cu.annotateConsume(3, v));
}

TEST_F(CaptureUnitTest, DuplicateConsumeAnnotationReportsFalse)
{
    // A line-crossing conflict raises one version request per cache
    // line with the identical tag; the second annotation must not
    // trigger a second produce record.
    CaptureUnit cu(0, cfg, EventFilter{});
    cu.append(appEvent(EventType::kLoad, 3, 0x100));
    VersionTag v{1, 99};
    EXPECT_TRUE(cu.annotateConsume(3, v));
    EXPECT_FALSE(cu.annotateConsume(3, v));
    EXPECT_EQ(cu.stats.get("consume_versions"), 1u);
}

TEST_F(CaptureUnitTest, ProduceInsertion)
{
    CaptureUnit cu(0, cfg, EventFilter{});
    cu.append(appEvent(EventType::kStore, 5, 0x100));
    cu.insertProduceBefore(5, VersionTag{2, 7}, 0x100, 8);
    EXPECT_EQ(cu.pop().type, EventType::kProduceVersion);
    EXPECT_EQ(cu.pop().type, EventType::kStore);
}

TEST_F(CaptureUnitTest, ProduceInsertionMovesStoreArcsAndStampsStoreRid)
{
    CaptureUnit cu(0, cfg, EventFilter{});
    AppEvent store = appEvent(EventType::kStore, 5, 0x100);
    store.arcs.push_back(RawArc{1, 42, false});
    cu.append(store);
    cu.insertProduceBefore(5, VersionTag{2, 7}, 0x100, 8);

    // The snapshot must wait for every remote handler the store itself
    // is ordered after: the produce record inherits the drain-time
    // arcs, and carries the store's rid for writerDone tracking.
    EventRecord produce = cu.pop();
    ASSERT_EQ(produce.type, EventType::kProduceVersion);
    EXPECT_EQ(produce.rid, 5u);
    EXPECT_EQ(produce.value, 5u);
    ASSERT_EQ(produce.arcs.size(), 1u);
    EXPECT_EQ(produce.arcs[0], (DepArc{1, 42}));
    EXPECT_TRUE(cu.pop().arcs.empty());
}

TEST_F(CaptureUnitTest, ProduceInsertionAfterSameRidCaRecordStaysSorted)
{
    // CA records reuse the retire counter as their rid, so a CA record
    // with the store's own rid can sit just in front of it. The
    // produce insert lands between them and must keep the stream
    // rid-sorted (it shares the store's rid): a smaller rid there
    // corrupts every lower_bound-based lookup that follows.
    CaptureUnit cu(0, cfg, EventFilter{});
    cu.append(appEvent(EventType::kLoad, 8, 0x100));
    cu.setRetired(10);
    EventRecord ca;
    ca.type = EventType::kCaBegin;
    ca.value = 0;
    cu.appendCa(ca); // rid 10, same as the upcoming store
    cu.append(appEvent(EventType::kStore, 10, 0x200));

    cu.insertProduceBefore(10, VersionTag{1, 33}, 0x200, 8);
    // The pending store must still be findable (a second version
    // request for the same store depends on it) ...
    ASSERT_NE(cu.buffer().findStoreByRid(10), nullptr);
    cu.insertProduceBefore(10, VersionTag{2, 44}, 0x200, 8);

    // ... and delivery order is load, CA, both produces, store.
    EXPECT_EQ(cu.pop().type, EventType::kLoad);
    EXPECT_EQ(cu.pop().type, EventType::kCaBegin);
    EXPECT_EQ(cu.pop().type, EventType::kProduceVersion);
    EXPECT_EQ(cu.pop().type, EventType::kProduceVersion);
    EXPECT_EQ(cu.pop().type, EventType::kStore);
    EXPECT_TRUE(cu.consumerEmpty());
}

// ------------------------- trace write classification (validator) ---

/**
 * The full classification table of traceIsWrite, audited against the
 * interpreter's data-path operations: stores and lock RMWs write;
 * barrier *arrival* (value 0) RMWs the barrier word while the *exit*
 * phase (value 1) only reads it; malloc/free and read()-style syscalls
 * write their range, write()-style syscalls only read the output
 * buffer. This is the single table the happens-before validator
 * consumes — TraceSink and the validator cannot disagree.
 */
TEST(TraceClassification, IsWriteTable)
{
    auto classify = [](EventType type, std::uint64_t value = 0,
                       SyscallKind sys = SyscallKind::kNone) {
        EventRecord r;
        r.type = type;
        r.value = value;
        r.syscall = sys;
        return traceIsWrite(r);
    };

    // Store-like.
    EXPECT_TRUE(classify(EventType::kStore));
    EXPECT_TRUE(classify(EventType::kLockAcquire));
    EXPECT_TRUE(classify(EventType::kLockRelease));
    EXPECT_TRUE(classify(EventType::kMallocEnd));
    EXPECT_TRUE(classify(EventType::kFreeBegin));
    // Barrier: arrival (value 0) is the RMW; exit (value 1) reads.
    EXPECT_TRUE(classify(EventType::kBarrierPass, 0));
    EXPECT_FALSE(classify(EventType::kBarrierPass, 1));
    // Syscalls: the kernel writes the buffer of a read(), reads the
    // buffer of a write().
    EXPECT_TRUE(classify(EventType::kSyscallEnd, 0, SyscallKind::kRead));
    EXPECT_FALSE(
        classify(EventType::kSyscallEnd, 0, SyscallKind::kWrite));
    EXPECT_FALSE(classify(EventType::kSyscallBegin, 0,
                          SyscallKind::kRead));
    // Read-like / bookkeeping.
    EXPECT_FALSE(classify(EventType::kLoad));
    EXPECT_FALSE(classify(EventType::kMovRR));
    EXPECT_FALSE(classify(EventType::kMovImm));
    EXPECT_FALSE(classify(EventType::kAlu));
    EXPECT_FALSE(classify(EventType::kJump));
    EXPECT_FALSE(classify(EventType::kCaBegin));
    EXPECT_FALSE(classify(EventType::kCaEnd));
    EXPECT_FALSE(classify(EventType::kThreadDone));
    EXPECT_FALSE(classify(EventType::kProduceVersion));
}

TEST(TraceClassification, SinkAppliesTheSharedTable)
{
    TraceSink sink;
    EventRecord arrival;
    arrival.type = EventType::kBarrierPass;
    arrival.value = 0;
    sink.append(arrival);
    EventRecord exit_rec;
    exit_rec.type = EventType::kBarrierPass;
    exit_rec.value = 1;
    sink.append(exit_rec);

    ASSERT_EQ(sink.size(), 2u);
    EXPECT_TRUE(sink.records()[0].isWrite);
    EXPECT_FALSE(sink.records()[1].isWrite);
    EXPECT_EQ(sink.records()[0].globalSeq, 0u);
    EXPECT_EQ(sink.records()[1].globalSeq, 1u);
}

} // namespace
} // namespace paralog
