/**
 * @file
 * Randomized differential TSO matrix: every lifeguard x {SC, TSO} x
 * {1, 2, 4, 8} cores at small scales. For each cell the TSO run must
 * (a) terminate (the previously deadlocking lockset+tso and grinding
 * addrcheck+tso combinations included), (b) reach the same final
 * analysis conclusions as the SC run (shadow fingerprint), and (c)
 * drain the version store completely (checked in the fixture
 * teardown). Also unit-tests VersionStore semantics and the platform
 * progress watchdog that turns any future protocol stall into a
 * diagnosable panic instead of a hang.
 */

#include <gtest/gtest.h>

#include "harness/paralog_test.hpp"
#include "lifeguard/version_store.hpp"
#include "workloads/script_program.hpp"

namespace paralog {
namespace {

using test::PlatformRunTest;

// ---------------------------------------------- VersionStore semantics

TEST(VersionStore, ProduceAvailableConsume)
{
    VersionStore vs;
    VersionTag v{2, 41};
    EXPECT_FALSE(vs.available(v));
    EXPECT_TRUE(vs.produce(v, {0xABCD, 0x1000, 8, false}));
    ASSERT_TRUE(vs.available(v));
    EXPECT_EQ(vs.size(), 1u);

    VersionStore::Versioned got = vs.consume(v);
    EXPECT_EQ(got.bits, 0xABCDu);
    EXPECT_EQ(got.addr, 0x1000u);
    EXPECT_EQ(got.size, 8u);
    EXPECT_FALSE(got.writerDone);
    EXPECT_FALSE(vs.available(v));
    EXPECT_EQ(vs.size(), 0u);
    EXPECT_EQ(vs.stats.get("produced"), 1u);
    EXPECT_EQ(vs.stats.get("consumed"), 1u);
}

TEST(VersionStore, HashCollidingTagsStayDistinct)
{
    // TagHash folds (tid << 48) ^ rid: these two tags collide exactly,
    // so correctness must come from key equality, not the hash.
    VersionStore vs;
    VersionTag a{0, 0x5};
    VersionTag b{1, 0x5ULL ^ (1ULL << 48)};
    ASSERT_EQ((static_cast<std::uint64_t>(a.tid) << 48) ^ a.rid,
              (static_cast<std::uint64_t>(b.tid) << 48) ^ b.rid);

    EXPECT_TRUE(vs.produce(a, {1, 0x10, 1, false}));
    EXPECT_TRUE(vs.produce(b, {2, 0x20, 2, false}));
    EXPECT_EQ(vs.size(), 2u);
    EXPECT_EQ(vs.consume(a).bits, 1u);
    ASSERT_TRUE(vs.available(b));
    EXPECT_EQ(vs.consume(b).bits, 2u);
    EXPECT_EQ(vs.size(), 0u);
}

TEST(VersionStore, StaleReproduceAfterConsumeIsDropped)
{
    // A second conflicting store may re-produce a tag after its reader
    // consumed it; the entry would leak (each record is visited once).
    VersionStore vs;
    VersionTag v{3, 100};
    EXPECT_TRUE(vs.produce(v, {1, 0, 1, false}));
    vs.consume(v);
    EXPECT_FALSE(vs.produce(v, {2, 0, 1, false}));
    EXPECT_EQ(vs.size(), 0u);
    EXPECT_EQ(vs.stats.get("produced_stale"), 1u);
    // Earlier rids of the same consumer thread are equally dead ...
    EXPECT_FALSE(vs.produce(VersionTag{3, 99}, {2, 0, 1, false}));
    // ... later rids and other threads are not.
    EXPECT_TRUE(vs.produce(VersionTag{3, 101}, {2, 0, 1, false}));
    EXPECT_TRUE(vs.produce(VersionTag{4, 100}, {2, 0, 1, false}));
}

TEST(VersionStore, DuplicateProduceKeepsFirstSnapshotAndBalance)
{
    // One version request per cache line of a line-crossing conflict
    // can produce the same tag twice before the consumer runs: the
    // first (closest to pre-overwrite) snapshot wins, and 'produced'
    // must stay equal to what the single consume will balance.
    VersionStore vs;
    VersionTag v{2, 10};
    EXPECT_TRUE(vs.produce(v, {0x11, 0x100, 8, false}));
    EXPECT_FALSE(vs.produce(v, {0x22, 0x100, 8, false}));
    EXPECT_EQ(vs.stats.get("produced"), 1u);
    EXPECT_EQ(vs.stats.get("produced_duplicate"), 1u);
    EXPECT_EQ(vs.consume(v).bits, 0x11u);
    EXPECT_EQ(vs.stats.get("produced"), vs.stats.get("consumed"));
}

TEST(VersionStore, MarkWriterDoneOnlyReachesPendingEntries)
{
    VersionStore vs;
    VersionTag v{1, 7};
    vs.markWriterDone(v); // absent: no-op
    EXPECT_TRUE(vs.produce(v, {0, 0, 1, false}));
    vs.markWriterDone(v);
    EXPECT_TRUE(vs.consume(v).writerDone);
    vs.markWriterDone(v); // consumed: no-op, must not recreate
    EXPECT_EQ(vs.size(), 0u);
}

TEST(VersionStore, ForEachVisitsLiveEntries)
{
    VersionStore vs;
    EXPECT_TRUE(vs.produce(VersionTag{0, 1}, {1, 0x10, 1, false}));
    EXPECT_TRUE(vs.produce(VersionTag{1, 2}, {2, 0x20, 1, false}));
    std::size_t n = 0;
    std::uint64_t bits = 0;
    vs.forEach([&](const VersionTag &, const VersionStore::Versioned &d) {
        ++n;
        bits += d.bits;
    });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(bits, 3u);
}

// ------------------------------------------------- progress watchdog

TEST(ProgressWatchdog, FiresOnlyAfterLimitIdlePolls)
{
    ProgressWatchdog wd(3);
    EXPECT_FALSE(wd.poll(7)); // first sighting
    EXPECT_FALSE(wd.poll(7)); // idle 1
    EXPECT_FALSE(wd.poll(7)); // idle 2
    EXPECT_TRUE(wd.poll(7));  // idle 3 = limit
    EXPECT_FALSE(wd.poll(8)); // progress resets
    EXPECT_EQ(wd.idlePolls(), 0u);
    EXPECT_FALSE(wd.poll(8));
    EXPECT_EQ(wd.idlePolls(), 1u);
}

/** Thread 0 takes the lock and exits holding it; thread 1 then spins
 *  on it forever: a genuine application deadlock no protocol can
 *  resolve, which the platform watchdog must turn into a panic. */
class DeadlockWorkload : public Workload
{
  public:
    const char *name() const override { return "deadlock"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        class Prog : public ScriptProgram
        {
          public:
            Prog(ThreadId tid, Addr lock) : tid_(tid), lock_(lock) {}

          protected:
            bool
            refill(ThreadContext &) override
            {
                if (emitted_)
                    return false;
                emitted_ = true;
                if (tid_ == 0) {
                    emit(Inst::lock(lock_));
                    return true; // exits still holding the lock
                }
                // Give thread 0 time to win the lock.
                for (int i = 0; i < 64; ++i)
                    emit(Inst::movImm(1, i));
                emit(Inst::lock(lock_)); // spins forever
                return true;
            }

          private:
            ThreadId tid_;
            Addr lock_;
            bool emitted_ = false;
        };
        return std::make_unique<Prog>(tid, env.lockBase);
    }
};

TEST(ProgressWatchdogDeath, StallPanicsWithDiagnosableDump)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setQuiet(true);
    PlatformConfig cfg;
    cfg.sim = SimConfig::forAppThreads(2);
    cfg.sim.mode = MonitorMode::kParallel;
    cfg.lifeguard = LifeguardKind::kAddrCheck;
    cfg.customWorkload = std::make_shared<DeadlockWorkload>();
    cfg.stallWatchdogIters = 50'000; // fire fast; default is 2M
    EXPECT_DEATH(
        {
            Platform p(cfg);
            p.run();
        },
        "progress watchdog");
}

// ------------------------------------- randomized differential matrix

struct MatrixCell
{
    LifeguardKind lifeguard;
    std::uint32_t cores;
};

std::string
cellName(const ::testing::TestParamInfo<MatrixCell> &info)
{
    return std::string(toString(info.param.lifeguard)) + "_" +
           std::to_string(info.param.cores) + "c";
}

class TsoMatrix : public PlatformRunTest,
                  public ::testing::WithParamInterface<MatrixCell>
{
};

TEST_P(TsoMatrix, TsoMatchesScAcrossWorkloadsAndSeeds)
{
    const MatrixCell cell = GetParam();
    // Small scales keep the full matrix CTest-friendly while the seeds
    // vary the interleavings (and with them the store-drain conflicts
    // that exercise the versioning protocol).
    const struct
    {
        WorkloadKind workload;
        std::uint64_t scale;
    } kWorkloads[] = {
        {WorkloadKind::kLu, 500},
        {WorkloadKind::kOcean, 400},
        {WorkloadKind::kFluidanimate, 500},
    };
    for (const auto &w : kWorkloads) {
        for (std::uint64_t seed : {1ull, 7ull}) {
            ExperimentOptions o;
            o.scale = w.scale;
            o.seed = seed;

            o.memoryModel = MemoryModel::kSC;
            RunResult sc = run(makeConfig(w.workload, cell.lifeguard,
                                          MonitorMode::kParallel,
                                          cell.cores, o));
            std::uint64_t sc_fp = lastFingerprint();
            EXPECT_EQ(sc.versionsProduced, 0u);

            o.memoryModel = MemoryModel::kTSO;
            RunResult tso = run(makeConfig(w.workload, cell.lifeguard,
                                           MonitorMode::kParallel,
                                           cell.cores, o));
            std::uint64_t tso_fp = lastFingerprint();

            EXPECT_GT(tso.totalCycles, 0u);
            EXPECT_EQ(sc_fp, tso_fp)
                << toString(w.workload) << "/"
                << toString(cell.lifeguard) << "/" << cell.cores
                << " cores/seed " << seed
                << ": TSO analysis conclusions diverged from SC";
            EXPECT_EQ(tso.versionsProduced, tso.versionsConsumed);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lifeguards, TsoMatrix,
    ::testing::Values(
        MatrixCell{LifeguardKind::kAddrCheck, 1},
        MatrixCell{LifeguardKind::kAddrCheck, 2},
        MatrixCell{LifeguardKind::kAddrCheck, 4},
        MatrixCell{LifeguardKind::kAddrCheck, 8},
        MatrixCell{LifeguardKind::kTaintCheck, 1},
        MatrixCell{LifeguardKind::kTaintCheck, 2},
        MatrixCell{LifeguardKind::kTaintCheck, 4},
        MatrixCell{LifeguardKind::kTaintCheck, 8},
        MatrixCell{LifeguardKind::kMemCheck, 1},
        MatrixCell{LifeguardKind::kMemCheck, 2},
        MatrixCell{LifeguardKind::kMemCheck, 4},
        MatrixCell{LifeguardKind::kMemCheck, 8},
        MatrixCell{LifeguardKind::kLockSet, 1},
        MatrixCell{LifeguardKind::kLockSet, 2},
        MatrixCell{LifeguardKind::kLockSet, 4},
        MatrixCell{LifeguardKind::kLockSet, 8}),
    cellName);

// ------------------------------ previously refused / grinding combos

class LiftedCombos : public PlatformRunTest
{
};

TEST_F(LiftedCombos, LockSetTsoCompletesAtScale400)
{
    // ROADMAP item: this exact combination used to deadlock (LockSet's
    // read-handler metadata writes never satisfied the version waits).
    for (std::uint32_t cores : {2u, 4u, 8u}) {
        ExperimentOptions o;
        o.scale = 400;
        o.memoryModel = MemoryModel::kTSO;
        RunResult r = run(makeConfig(WorkloadKind::kLu,
                                     LifeguardKind::kLockSet,
                                     MonitorMode::kParallel, cores, o));
        EXPECT_GT(r.totalCycles, 0u);
    }
}

TEST_F(LiftedCombos, AddrCheckTsoCompletesAtScale400)
{
    // ROADMAP item: >= 2 cores used to grind for minutes (the writer's
    // lifeguard never produced the snapshot, so consumers starved
    // until the cycle-count watchdog).
    for (std::uint32_t cores : {2u, 4u, 8u}) {
        ExperimentOptions o;
        o.scale = 400;
        o.memoryModel = MemoryModel::kTSO;
        RunResult r = run(makeConfig(WorkloadKind::kLu,
                                     LifeguardKind::kAddrCheck,
                                     MonitorMode::kParallel, cores, o));
        EXPECT_GT(r.totalCycles, 0u);
        // "Completes" means promptly: the paper-scale run is tiny, so
        // a protocol regression shows up as a cycle-count explosion
        // long before it becomes a hang.
        EXPECT_LT(r.totalCycles, 10'000'000u);
    }
}

TEST_F(LiftedCombos, LockSetTsoViolationCountMatchesSc)
{
    // The versioned (pre-overwrite) Eraser states must lead LockSet to
    // the same verdicts under TSO as under SC — here, zero races on a
    // properly locked workload (false positives are regressions too).
    ExperimentOptions sc;
    sc.scale = 2000;
    RunResult r_sc = run(makeConfig(WorkloadKind::kFluidanimate,
                                    LifeguardKind::kLockSet,
                                    MonitorMode::kParallel, 4, sc));
    ExperimentOptions tso = sc;
    tso.memoryModel = MemoryModel::kTSO;
    RunResult r_tso = run(makeConfig(WorkloadKind::kFluidanimate,
                                     LifeguardKind::kLockSet,
                                     MonitorMode::kParallel, 4, tso));
    EXPECT_EQ(r_sc.violationCount, r_tso.violationCount);
}

} // namespace
} // namespace paralog
