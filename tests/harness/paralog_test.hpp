/**
 * @file
 * Shared test harness: the quiet-logging fixtures, ExperimentOptions /
 * PlatformConfig shorthands, and the shadow-memory fingerprint used by
 * the cross-configuration equivalence suites. Every integration suite
 * was repeating these; new suites should start from here.
 */

#ifndef PARALOG_TESTS_HARNESS_PARALOG_TEST_HPP
#define PARALOG_TESTS_HARNESS_PARALOG_TEST_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "lifeguard/shadow_memory.hpp"

namespace paralog::test {

/** ExperimentOptions with just the scale set — the common case. */
inline ExperimentOptions
makeOptions(std::uint64_t scale = 8000)
{
    ExperimentOptions o;
    o.scale = scale;
    return o;
}

/** makeConfig() shorthand taking a bare scale instead of options. */
inline PlatformConfig
makeScaledConfig(WorkloadKind workload, LifeguardKind lifeguard,
                 MonitorMode mode, std::uint32_t threads,
                 std::uint64_t scale = 8000)
{
    return makeConfig(workload, lifeguard, mode, threads,
                      makeOptions(scale));
}

/**
 * FNV-1a hash of the shadow metadata over [base, base + bytes): the
 * canonical "did two configurations reach the same analysis
 * conclusions?" fingerprint. Works for any lifeguard via
 * Lifeguard::shadow(). (Now shared with the src tree — the trace
 * record/replay self-check uses the same hash.)
 */
using paralog::shadowFingerprint;

/** Base fixture: silences warn()/inform() for the whole suite. */
class QuietTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }

    static ExperimentOptions
    opts(std::uint64_t scale = 8000)
    {
        return makeOptions(scale);
    }
};

/**
 * Fixture for full platform runs: every Platform executed through
 * run() is re-checked at fixture teardown for TSO versioning-protocol
 * leaks — all produced snapshots consumed and the VersionStore empty.
 * (Trivially true under SC; load-bearing for every TSO suite.)
 */
class PlatformRunTest : public QuietTest
{
  protected:
    /** Run @p cfg to completion on an owned Platform. The platform
     *  stays alive (inspect shadow state) until the test ends. */
    RunResult
    run(PlatformConfig cfg)
    {
        platforms_.push_back(
            std::make_unique<Platform>(std::move(cfg)));
        return platforms_.back()->run();
    }

    Platform &lastPlatform() { return *platforms_.back(); }

    /** Fingerprint of the analysis conclusions of the last run:
     *  heap-arena + global-segment shadow state. */
    std::uint64_t
    lastFingerprint()
    {
        const ShadowMemory &s = lastPlatform().lifeguard().shadow();
        return shadowFingerprint(s, AddressLayout::kHeapBase, 1 << 20) ^
               shadowFingerprint(s, AddressLayout::kGlobalBase, 1 << 16);
    }

    void
    TearDown() override
    {
        for (const auto &p : platforms_) {
            EXPECT_EQ(p->versions().size(), 0u)
                << "leaked TSO version snapshots";
            EXPECT_EQ(p->versions().stats.get("produced"),
                      p->versions().stats.get("consumed"))
                << "produced snapshots never consumed";
        }
        platforms_.clear();
    }

  private:
    std::vector<std::unique_ptr<Platform>> platforms_;
};

/** Parameterized variant of QuietTest. */
template <typename Param>
class QuietTestWithParam : public ::testing::TestWithParam<Param>
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }

    static ExperimentOptions
    opts(std::uint64_t scale = 8000)
    {
        return makeOptions(scale);
    }
};

} // namespace paralog::test

#endif // PARALOG_TESTS_HARNESS_PARALOG_TEST_HPP
