/**
 * @file
 * Property-based tests: randomized inputs checked against independent
 * oracles.
 *
 *  - Random single-thread programs: the platform's TaintCheck shadow
 *    state must equal a straight-line reference taint interpreter, with
 *    accelerators on AND off (accelerator transparency).
 *  - Heap: random alloc/free sequences never hand out overlapping
 *    blocks and never lose bytes.
 *  - ShadowMemory: random writes match a std::map reference.
 *  - IntervalSet: random insert/erase matches a per-byte reference.
 *  - Multi-thread runs are deterministic across repeats for every
 *    workload (parameterized sweep).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/interval_set.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "lifeguard/taintcheck.hpp"

namespace paralog {
namespace {

// ---------- random program vs reference taint oracle ----------

struct RandomProgram : public Workload
{
    explicit RandomProgram(std::uint64_t seed) : seed_(seed) {}

    const char *name() const override { return "random"; }

    /** Generate the instruction list once so the oracle and the
     *  simulated thread see the identical program. */
    static std::vector<Inst>
    generate(std::uint64_t seed, const WorkloadEnv &env)
    {
        Rng rng(seed);
        std::vector<Inst> prog;
        // A small pool of data addresses, 8-byte aligned.
        std::vector<Addr> pool;
        for (int i = 0; i < 24; ++i)
            pool.push_back(env.globalBase + 8 * i);

        // Taint source: read() into the first third of the pool.
        prog.push_back(Inst::syscallRead(env.globalBase, 64));

        for (int i = 0; i < 400; ++i) {
            switch (rng.below(6)) {
              case 0:
                prog.push_back(Inst::load(
                    static_cast<RegId>(rng.below(8)),
                    pool[rng.below(pool.size())], 8));
                break;
              case 1:
                prog.push_back(Inst::store(
                    pool[rng.below(pool.size())],
                    static_cast<RegId>(rng.below(8)), 8));
                break;
              case 2:
                prog.push_back(
                    Inst::movRR(static_cast<RegId>(rng.below(8)),
                                static_cast<RegId>(rng.below(8))));
                break;
              case 3:
                prog.push_back(Inst::movImm(
                    static_cast<RegId>(rng.below(8)), rng.next()));
                break;
              case 4:
                prog.push_back(
                    Inst::alu(static_cast<RegId>(rng.below(8)),
                              static_cast<RegId>(rng.below(8))));
                break;
              case 5:
                prog.push_back(
                    Inst::jumpReg(static_cast<RegId>(rng.below(8))));
                break;
            }
        }
        return prog;
    }

    ThreadProgramPtr
    makeThread(ThreadId, const WorkloadEnv &env) const override
    {
        return std::make_unique<Thread>(generate(seed_, env));
    }

    struct Thread : public ThreadProgram
    {
        explicit Thread(std::vector<Inst> insts)
            : insts_(std::move(insts))
        {
        }

        std::optional<Inst>
        next(ThreadContext &) override
        {
            if (pos_ >= insts_.size())
                return std::nullopt;
            return insts_[pos_++];
        }

        std::vector<Inst> insts_;
        std::size_t pos_ = 0;
    };

    std::uint64_t seed_;
};

/** Straight-line reference taint semantics. */
struct TaintOracle
{
    std::map<Addr, bool> mem;  // per 8-byte slot (aligned pool)
    std::array<bool, kNumRegs> regs{};
    std::size_t taintedJumps = 0;

    void
    run(const std::vector<Inst> &prog)
    {
        for (const Inst &inst : prog) {
            switch (inst.op) {
              case Op::kSyscallRead:
                for (Addr a = inst.addr; a < inst.addr + inst.size;
                     a += 8)
                    mem[a] = true;
                break;
              case Op::kLoad:
                regs[inst.dst] = mem.count(inst.addr) && mem[inst.addr];
                break;
              case Op::kStore:
                mem[inst.addr] = regs[inst.src];
                break;
              case Op::kMovRR:
                regs[inst.dst] = regs[inst.src];
                break;
              case Op::kMovImm:
                regs[inst.dst] = false;
                break;
              case Op::kAlu:
                regs[inst.dst] = regs[inst.dst] || regs[inst.src];
                break;
              case Op::kJumpReg:
                if (regs[inst.src])
                    ++taintedJumps;
                break;
              default:
                break;
            }
        }
    }
};

class RandomTaintProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }
};

TEST_P(RandomTaintProperty, PlatformMatchesOracle)
{
    const std::uint64_t seed = GetParam();
    for (bool accel : {true, false}) {
        PlatformConfig cfg;
        cfg.sim = SimConfig::forAppThreads(1);
        cfg.sim.mode = MonitorMode::kParallel;
        if (!accel) {
            cfg.sim.accel.inheritanceTracking = false;
            cfg.sim.accel.idempotentFilter = false;
            cfg.sim.accel.metadataTlb = false;
        }
        cfg.lifeguard = LifeguardKind::kTaintCheck;
        cfg.customWorkload = std::make_shared<RandomProgram>(seed);
        Platform p(cfg);
        p.run();
        auto &taint = static_cast<TaintCheck &>(p.lifeguard());

        TaintOracle oracle;
        oracle.run(RandomProgram::generate(seed, p.env()));

        for (const auto &kv : oracle.mem) {
            EXPECT_EQ(taint.isTainted(kv.first, 8), kv.second)
                << "seed " << seed << " accel " << accel << " addr "
                << std::hex << kv.first;
        }
        EXPECT_EQ(
            taint.violations.count(Violation::Kind::kTaintedJump),
            oracle.taintedJumps)
            << "seed " << seed << " accel " << accel;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTaintProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------- heap properties ----------

class HeapProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HeapProperty, NoOverlapNoLeak)
{
    Rng rng(GetParam());
    Heap heap(0x1000000, 1 << 18, 2);
    std::map<Addr, std::uint64_t> live; // payload -> size requested

    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.chance(0.55)) {
            std::uint64_t bytes = rng.range(8, 2048);
            Addr a = heap.allocate(bytes, rng.below(2));
            if (a == 0)
                continue; // exhausted: acceptable
            // In-arena and non-overlapping with every live block.
            ASSERT_TRUE(heap.arena().contains(a));
            ASSERT_GE(heap.blockSize(a), bytes);
            auto next = live.lower_bound(a);
            if (next != live.end()) {
                ASSERT_LE(a + bytes, next->first);
            }
            if (next != live.begin()) {
                auto prev = std::prev(next);
                ASSERT_LE(prev->first + prev->second, a);
            }
            live.emplace(a, bytes);
        } else {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            heap.release(it->first);
            live.erase(it);
        }
    }
    EXPECT_EQ(heap.liveBlocks(), live.size());
    // Free everything: a large allocation must then succeed
    // (coalescing conserved the arena).
    for (auto &kv : live)
        heap.release(kv.first);
    EXPECT_NE(heap.allocate((1 << 18) / 4, 0), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- shadow memory vs map reference ----------

class ShadowProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t>>
{
};

TEST_P(ShadowProperty, MatchesMapReference)
{
    auto [bpb, seed] = GetParam();
    Rng rng(seed);
    ShadowMemory shadow(bpb);
    std::map<Addr, std::uint8_t> ref;
    std::uint8_t mask = static_cast<std::uint8_t>((1u << bpb) - 1);

    for (int step = 0; step < 4000; ++step) {
        Addr a = 0x10000 + rng.below(1 << 16);
        if (rng.chance(0.5)) {
            std::uint8_t v = static_cast<std::uint8_t>(rng.next()) & mask;
            shadow.write(a, v);
            ref[a] = v;
        } else {
            std::uint8_t expect = ref.count(a) ? ref[a] : 0;
            ASSERT_EQ(shadow.read(a), expect) << std::hex << a;
        }
    }
    for (const auto &kv : ref)
        ASSERT_EQ(shadow.read(kv.first), kv.second);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShadowProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(11ull, 22ull, 33ull)));

// ---------- interval set vs per-byte reference ----------

class IntervalProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IntervalProperty, MatchesByteSetReference)
{
    Rng rng(GetParam());
    IntervalSet set;
    std::set<Addr> ref;

    for (int step = 0; step < 600; ++step) {
        Addr begin = rng.below(512);
        Addr end = begin + rng.range(1, 64);
        if (rng.chance(0.6)) {
            set.insert(begin, end);
            for (Addr a = begin; a < end; ++a)
                ref.insert(a);
        } else {
            set.erase(begin, end);
            for (Addr a = begin; a < end; ++a)
                ref.erase(a);
        }
        // Spot-check membership and totals.
        for (int probe = 0; probe < 8; ++probe) {
            Addr a = rng.below(600);
            ASSERT_EQ(set.contains(a), ref.count(a) > 0)
                << "step " << step << " addr " << a;
        }
        ASSERT_EQ(set.coveredBytes(), ref.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalProperty,
                         ::testing::Values(101, 202, 303, 404));

// ---------- cross-mode determinism sweep ----------

using DetParam = std::tuple<WorkloadKind, MemoryModel>;

class DeterminismSweep : public ::testing::TestWithParam<DetParam>
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }
};

TEST_P(DeterminismSweep, RepeatRunsIdentical)
{
    auto [w, model] = GetParam();
    ExperimentOptions o;
    o.scale = 5000;
    o.memoryModel = model;
    RunResult a = runExperiment(w, LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 4, o);
    RunResult b = runExperiment(w, LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 4, o);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.eventsHandledTotal(), b.eventsHandledTotal());
    EXPECT_EQ(a.violationCount, b.violationCount);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismSweep,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Values(MemoryModel::kSC,
                                         MemoryModel::kTSO)),
    [](const ::testing::TestParamInfo<DetParam> &info) {
        std::string name = toString(std::get<0>(info.param));
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_" +
               (std::get<1>(info.param) == MemoryModel::kSC ? "SC"
                                                            : "TSO");
    });

} // namespace
} // namespace paralog
