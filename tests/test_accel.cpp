/**
 * @file
 * Unit tests for the accelerators: IT (including the Figure 3 scenario
 * and delayed advertising), IF, and the M-TLB.
 */

#include <gtest/gtest.h>

#include "accel/accel_unit.hpp"

namespace paralog {
namespace {

EventRecord
rec(EventType type, RecordId rid)
{
    EventRecord r;
    r.type = type;
    r.tid = 0;
    r.rid = rid;
    return r;
}

EventRecord
loadRec(RegId dst, Addr addr, RecordId rid, std::uint8_t size = 8)
{
    EventRecord r = rec(EventType::kLoad, rid);
    r.dst = dst;
    r.addr = addr;
    r.size = size;
    return r;
}

EventRecord
storeRec(RegId src, Addr addr, RecordId rid, std::uint8_t size = 8)
{
    EventRecord r = rec(EventType::kStore, rid);
    r.src = src;
    r.addr = addr;
    r.size = size;
    return r;
}

EventRecord
movRec(RegId dst, RegId src, RecordId rid)
{
    EventRecord r = rec(EventType::kMovRR, rid);
    r.dst = dst;
    r.src = src;
    return r;
}

// ---------- ItTable ----------

TEST(ItTable, Figure3Scenario)
{
    // i:   mov %eax <- A       (absorbed; row eax = {A, i})
    // i+1: mov %ebx <- %eax    (absorbed; row ebx = {A, i})
    // i+2: mov B <- %ebx       (delivers mem_to_mem(B, A))
    ItTable it;
    std::vector<LgEvent> out;
    EXPECT_TRUE(it.process(loadRec(1, 0xA00, 100), out));
    EXPECT_TRUE(it.process(movRec(2, 1, 101), out));
    EXPECT_TRUE(out.empty());

    EXPECT_EQ(it.row(1).src[0].addr, 0xA00u);
    EXPECT_EQ(it.row(2).src[0].rid, 100u); // rid copied with the row

    EXPECT_TRUE(it.process(storeRec(2, 0xB00, 102), out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, LgEventType::kMemToMem);
    EXPECT_EQ(out[0].addr, 0xB00u);
    EXPECT_EQ(out[0].srcs[0].addr, 0xA00u);
}

TEST(ItTable, DelayedAdvertisingMinRid)
{
    // Figure 3(b): progress is the minimum RID held in the table.
    ItTable it;
    std::vector<LgEvent> out;
    EXPECT_EQ(it.minRid(), kInvalidRecord);
    it.process(loadRec(1, 0xA00, 100), out); // eax <- A at rid 100
    it.process(movRec(2, 1, 101), out);      // ebx inherits rid 100
    it.process(loadRec(1, 0xC00, 103), out); // eax <- C at rid 103
    EXPECT_EQ(it.minRid(), 100u); // ebx still pins rid 100
    it.process(loadRec(2, 0xD00, 104), out); // ebx overwritten
    EXPECT_EQ(it.minRid(), 103u); // now the C load is the oldest
}

TEST(ItTable, MovImmTracksConstant)
{
    ItTable it;
    std::vector<LgEvent> out;
    EventRecord mi = rec(EventType::kMovImm, 1);
    mi.dst = 3;
    EXPECT_TRUE(it.process(mi, out));
    EXPECT_EQ(it.row(3).state, ItTable::RowState::kConst);
    // Store of a constant register: set-const event.
    EXPECT_TRUE(it.process(storeRec(3, 0xE00, 2), out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, LgEventType::kMemSetConst);
}

TEST(ItTable, AluMergesSources)
{
    ItTable it;
    std::vector<LgEvent> out;
    it.process(loadRec(1, 0xA00, 1), out);
    it.process(loadRec(2, 0xB00, 2), out);
    EventRecord alu = rec(EventType::kAlu, 3);
    alu.dst = 1;
    alu.src = 2;
    EXPECT_TRUE(it.process(alu, out));
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(it.row(1).nsrc, 2u);
    // Store delivers both inherits-from addresses.
    it.process(storeRec(1, 0xC00, 4), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].nsrcs, 2u);
}

TEST(ItTable, AluSourceOverflowFlushes)
{
    ItTable it;
    std::vector<LgEvent> out;
    // Merge kItMaxSources distinct addresses into r1 ...
    it.process(loadRec(1, 0x100, 1), out);
    for (unsigned i = 1; i < kItMaxSources; ++i) {
        it.process(loadRec(2, 0x100 + 0x100 * i, 1 + i), out);
        EventRecord alu = rec(EventType::kAlu, 10 + i);
        alu.dst = 1;
        alu.src = 2;
        ASSERT_TRUE(it.process(alu, out));
    }
    EXPECT_EQ(it.row(1).nsrc, kItMaxSources);
    // ... the next distinct source overflows and falls back.
    it.process(loadRec(2, 0x900, 50), out);
    EventRecord alu = rec(EventType::kAlu, 51);
    alu.dst = 1;
    alu.src = 2;
    out.clear();
    EXPECT_FALSE(it.process(alu, out));
    EXPECT_GE(out.size(), 2u); // both rows flushed as inherit events
}

TEST(ItTable, LocalConflictFlushesOtherRows)
{
    // A store overwriting an inherits-from address must flush rows that
    // reference it (sequential-setting rule, section 4.1).
    ItTable it;
    std::vector<LgEvent> out;
    it.process(loadRec(1, 0xA00, 1), out);
    it.process(loadRec(2, 0xB00, 2), out);
    // Store through r2 to 0xA00 conflicts with r1's row.
    it.process(storeRec(2, 0xA00, 3), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, LgEventType::kRegInheritMem); // r1 flushed
    EXPECT_EQ(out[0].dst, 1);
    EXPECT_EQ(out[1].type, LgEventType::kMemToMem);
    EXPECT_EQ(it.row(1).state, ItTable::RowState::kInvalid);
}

TEST(ItTable, SelfRmwKeepsRow)
{
    // Read-modify-write through the stored register itself is exempt:
    // meta(A) after mem_to_mem(A, {A}) equals the row's state.
    ItTable it;
    std::vector<LgEvent> out;
    it.process(loadRec(1, 0xA00, 1), out);
    it.process(storeRec(1, 0xA00, 2), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, LgEventType::kMemToMem);
    EXPECT_EQ(it.row(1).state, ItTable::RowState::kAddr); // row survives
}

TEST(ItTable, VersionedLoadDeliversAndFlushes)
{
    // Section 5.5: IT cannot differentiate metadata versions.
    ItTable it;
    std::vector<LgEvent> out;
    it.process(loadRec(1, 0xA00, 1), out);
    EventRecord vload = loadRec(2, 0xA00, 5);
    vload.consumesVersion = true;
    vload.version = VersionTag{1, 3};
    EXPECT_FALSE(it.process(vload, out)); // delivered, not absorbed
    ASSERT_EQ(out.size(), 1u);            // r1's pending state flushed
    EXPECT_EQ(out[0].type, LgEventType::kRegInheritMem);
}

TEST(ItTable, FlushOlderThanIsSelective)
{
    ItTable it;
    std::vector<LgEvent> out;
    it.process(loadRec(1, 0xA00, 10), out);
    it.process(loadRec(2, 0xB00, 500), out);
    it.flushOlderThan(100, out);
    EXPECT_EQ(out.size(), 1u); // only the stale row
    EXPECT_EQ(it.row(1).state, ItTable::RowState::kInvalid);
    EXPECT_EQ(it.row(2).state, ItTable::RowState::kAddr);
}

TEST(ItTable, JumpThroughTrackedRegister)
{
    ItTable it;
    std::vector<LgEvent> out;
    it.process(loadRec(1, 0xA00, 1), out);
    EventRecord jmp = rec(EventType::kJump, 2);
    jmp.src = 1;
    EXPECT_TRUE(it.process(jmp, out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, LgEventType::kJumpMem);
    EXPECT_EQ(out[0].srcs[0].addr, 0xA00u);
}

TEST(ItTable, JumpThroughConstantAbsorbed)
{
    ItTable it;
    std::vector<LgEvent> out;
    EventRecord mi = rec(EventType::kMovImm, 1);
    mi.dst = 1;
    it.process(mi, out);
    EventRecord jmp = rec(EventType::kJump, 2);
    jmp.src = 1;
    EXPECT_TRUE(it.process(jmp, out));
    EXPECT_TRUE(out.empty()); // provably safe, never delivered
}

// ---------- IdempotentFilter ----------

TEST(IdempotentFilter, AbsorbsRepeatedChecks)
{
    IdempotentFilter f(16);
    EXPECT_FALSE(f.checkAndInsert(0x100, 8, false, 1)); // first: miss
    EXPECT_TRUE(f.checkAndInsert(0x100, 8, false, 2));  // repeat: hit
    EXPECT_FALSE(f.checkAndInsert(0x100, 8, true, 3));  // writes differ
    EXPECT_TRUE(f.checkAndInsert(0x100, 8, true, 4));
}

TEST(IdempotentFilter, InvalidateAllOnHighLevelEvent)
{
    IdempotentFilter f(16);
    f.checkAndInsert(0x100, 8, false, 1);
    f.invalidateAll();
    EXPECT_FALSE(f.checkAndInsert(0x100, 8, false, 2)); // miss again
}

TEST(IdempotentFilter, InvalidateOverlappingOnly)
{
    IdempotentFilter f(16);
    f.checkAndInsert(0x100, 8, false, 1);
    f.checkAndInsert(0x200, 8, false, 2);
    f.invalidateOverlapping(0x100, 8);
    EXPECT_FALSE(f.checkAndInsert(0x100, 8, false, 3));
    EXPECT_TRUE(f.checkAndInsert(0x200, 8, false, 4));
}

TEST(IdempotentFilter, LruEviction)
{
    IdempotentFilter f(2);
    f.checkAndInsert(0x100, 8, false, 1);
    f.checkAndInsert(0x200, 8, false, 2);
    f.checkAndInsert(0x100, 8, false, 3); // refresh 0x100
    f.checkAndInsert(0x300, 8, false, 4); // evicts 0x200
    EXPECT_TRUE(f.checkAndInsert(0x100, 8, false, 5));
    EXPECT_FALSE(f.checkAndInsert(0x200, 8, false, 6));
}

TEST(IdempotentFilter, VersionedAccessInvalidatesStaleChecks)
{
    // A consume-version access proves a concurrent conflicting writer:
    // cached checks of those bytes predate the conflict and must not
    // absorb later ones.
    IdempotentFilter f(16);
    f.checkAndInsert(0x100, 8, false, 1);
    f.checkAndInsert(0x200, 8, false, 2);
    f.invalidateVersioned(0x100, 8);
    EXPECT_FALSE(f.checkAndInsert(0x100, 8, false, 3)); // re-checked
    EXPECT_TRUE(f.checkAndInsert(0x200, 8, false, 4));  // untouched
    EXPECT_EQ(f.stats.get("version_invalidations"), 1u);
}

TEST(IdempotentFilter, MinRidForDelayedAdvertising)
{
    IdempotentFilter f(16);
    EXPECT_EQ(f.minRid(), kInvalidRecord);
    f.checkAndInsert(0x100, 8, false, 10);
    f.checkAndInsert(0x200, 8, false, 20);
    EXPECT_EQ(f.minRid(), 10u);
    f.invalidateOverlapping(0x100, 8);
    EXPECT_EQ(f.minRid(), 20u);
}

// ---------- MetadataTlb ----------

TEST(Mtlb, HitAfterMiss)
{
    MetadataTlb tlb(16, true);
    EXPECT_EQ(tlb.lookupCost(0x1000), MetadataTlb::kMissCost);
    EXPECT_EQ(tlb.lookupCost(0x1008), MetadataTlb::kHitCost); // same page
    EXPECT_EQ(tlb.lookupCost(0x2000), MetadataTlb::kMissCost);
}

TEST(Mtlb, DisabledAlwaysPaysWalk)
{
    MetadataTlb tlb(16, false);
    tlb.lookupCost(0x1000);
    EXPECT_EQ(tlb.lookupCost(0x1000), MetadataTlb::kMissCost);
}

TEST(Mtlb, FlushRange)
{
    MetadataTlb tlb(16, true);
    tlb.lookupCost(0x1000);
    tlb.lookupCost(0x5000);
    tlb.flushRange(AddrRange{0x1000, 0x1800});
    EXPECT_EQ(tlb.lookupCost(0x1000), MetadataTlb::kMissCost);
    EXPECT_EQ(tlb.lookupCost(0x5000), MetadataTlb::kHitCost);
}

TEST(Mtlb, LruCapacity)
{
    MetadataTlb tlb(2, true);
    tlb.lookupCost(0x1000);
    tlb.lookupCost(0x2000);
    tlb.lookupCost(0x3000); // evicts 0x1000
    EXPECT_EQ(tlb.lookupCost(0x2000), MetadataTlb::kHitCost);
    EXPECT_EQ(tlb.lookupCost(0x1000), MetadataTlb::kMissCost);
}

// ---------- AccelUnit integration ----------

class AccelUnitTest : public ::testing::Test
{
  protected:
    AccelUnitTest() : cfg(SimConfig::forAppThreads(2))
    {
        policy.usesIt = true;
        policy.usesIf = false;
        policy.usesMtlb = true;
    }

    SimConfig cfg;
    LifeguardPolicy policy;
};

TEST_F(AccelUnitTest, CaRecordFlushesItState)
{
    AccelUnit au(cfg, policy);
    std::vector<LgEvent> out;
    au.process(loadRec(1, 0xA00, 1), false, out);
    EXPECT_TRUE(out.empty());
    EXPECT_NE(au.delayedMinRid(), kInvalidRecord);

    EventRecord ca = rec(EventType::kCaBegin, 2);
    ca.caKind = HighLevelKind::kFreeBegin;
    ca.range = AddrRange{0xA00, 0xB00};
    au.process(ca, false, out);
    EXPECT_EQ(au.delayedMinRid(), kInvalidRecord); // flushed
    // The flush delivered the pending inherit plus the CA flush event.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, LgEventType::kRegInheritMem);
    EXPECT_EQ(out[1].type, LgEventType::kCaFlush);
}

TEST_F(AccelUnitTest, DisabledAcceleratorsDeliverEverything)
{
    SimConfig off = cfg;
    off.accel.inheritanceTracking = false;
    off.accel.idempotentFilter = false;
    off.accel.metadataTlb = false;
    AccelUnit au(off, policy);
    std::vector<LgEvent> out;
    au.process(loadRec(1, 0xA00, 1), false, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, LgEventType::kLoad);
}

TEST_F(AccelUnitTest, RacesSyscallStampedOnMemEvents)
{
    AccelUnit au(cfg, policy);
    std::vector<LgEvent> out;
    au.process(loadRec(1, 0xA00, 1), true, out);   // absorbed anyway
    au.process(storeRec(1, 0xB00, 2), true, out);  // mem_to_mem
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].racesSyscall);
}

TEST_F(AccelUnitTest, ThresholdFlushRefreshesProgress)
{
    AccelUnit au(cfg, policy);
    std::vector<LgEvent> out;
    au.process(loadRec(1, 0xA00, 1), false, out);
    au.maybeThresholdFlush(1 + cfg.accel.advertiseThreshold + 1, out);
    EXPECT_EQ(au.delayedMinRid(), kInvalidRecord);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, LgEventType::kRegInheritMem);
}

TEST_F(AccelUnitTest, StallFlushDeliversState)
{
    AccelUnit au(cfg, policy);
    std::vector<LgEvent> out;
    au.process(loadRec(1, 0xA00, 1), false, out);
    au.onStall(out);
    EXPECT_EQ(au.delayedMinRid(), kInvalidRecord);
    EXPECT_EQ(out.size(), 1u);
}

TEST_F(AccelUnitTest, IfAbsorbsForAddrCheckStylePolicy)
{
    LifeguardPolicy p;
    p.usesIt = false;
    p.usesIf = true;
    AccelUnit au(cfg, p);
    std::vector<LgEvent> out;
    au.process(loadRec(1, 0xA00, 1), false, out);
    ASSERT_EQ(out.size(), 1u); // first check delivered
    out.clear();
    au.process(loadRec(1, 0xA00, 2), false, out);
    EXPECT_TRUE(out.empty()); // idempotent repeat absorbed
    // malloc CA invalidates the filter.
    EventRecord ca = rec(EventType::kCaEnd, 3);
    ca.caKind = HighLevelKind::kMallocEnd;
    au.process(ca, false, out);
    out.clear();
    au.process(loadRec(1, 0xA00, 4), false, out);
    EXPECT_EQ(out.size(), 1u); // delivered again
}

} // namespace
} // namespace paralog
