/**
 * @file
 * Tests for the streaming `paralog-trace-v1` validator
 * (trace/stream_ingest.hpp): a complete stream is accepted no matter
 * how it is split across feed() calls — including a split at every
 * structural boundary — and every way a stream can be wrong (bad
 * magic/version/header, corrupt chunk CRC, truncation at any depth,
 * trailing bytes, size budgets) maps to the right IngestError, sticks,
 * and never affects anything but that validator instance.
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/paralog_test.hpp"
#include "trace/format.hpp"
#include "trace/stream_ingest.hpp"
#include "trace/trace_writer.hpp"

namespace paralog::trace {
namespace {

/**
 * Build a small, fully valid trace in memory via the real writer: a
 * few op chunks on two threads, a latency chunk, and a footer. The
 * ingest layer never decodes payloads, so arbitrary op bytes do.
 */
std::vector<std::uint8_t>
makeTraceBytes(std::size_t ops_per_thread = 600)
{
    std::string path = ::testing::TempDir() + "paralog_ingest_" +
                       std::to_string(::getpid()) + ".trace";
    TraceConfig cfg;
    cfg.appThreads = 2;
    {
        TraceWriter w(path, cfg);
        EXPECT_TRUE(w.ok()) << w.error();
        std::vector<std::uint8_t> op = {1, 2, 3, 4, 5, 6, 7};
        for (std::size_t i = 0; i < ops_per_thread; ++i) {
            for (ThreadId t = 0; t < cfg.appThreads; ++t) {
                w.appendOpBytes(t, op);
                w.noteOp(t, i % 3 == 0);
            }
            w.appendMetaLatency(0, 4 + (i % 5));
        }
        TraceFooter footer;
        footer.app.resize(cfg.appThreads);
        footer.lifeguard.resize(cfg.appThreads);
        footer.totalCycles = 1234;
        EXPECT_TRUE(w.finalize(footer)) << w.error();
    }
    std::vector<std::uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_GT(bytes.size(), kHeaderBytes + 16u);
    return bytes;
}

/** Every structural boundary in @p bytes: header end, each chunk
 *  header end, each payload end — the offsets where the validator
 *  changes state. */
std::vector<std::size_t>
structuralBoundaries(const std::vector<std::uint8_t> &bytes)
{
    std::vector<std::size_t> at;
    std::size_t off = kHeaderBytes;
    at.push_back(off);
    while (off + 16 <= bytes.size()) {
        std::uint32_t payload = get32le(bytes.data() + off + 8);
        at.push_back(off + 16);           // after the chunk header
        off += 16 + payload;
        at.push_back(std::min(off, bytes.size())); // after the payload
        if (off >= bytes.size())
            break;
    }
    return at;
}

void
feedSplit(StreamIngest &in, const std::vector<std::uint8_t> &bytes,
          std::size_t split)
{
    ASSERT_LE(split, bytes.size());
    in.feed(bytes.data(), split);
    in.feed(bytes.data() + split, bytes.size() - split);
}

TEST(StreamIngest, AcceptsWholeStream)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes();
    StreamIngest in;
    EXPECT_TRUE(in.feed(bytes.data(), bytes.size()));
    EXPECT_TRUE(in.complete());
    EXPECT_TRUE(in.finish());
    EXPECT_FALSE(in.failed());
    EXPECT_EQ(in.errorCode(), IngestError::kNone);
    EXPECT_EQ(in.bytesConsumed(), bytes.size());
    EXPECT_GE(in.chunksValidated(), 3u); // ops x2 threads + footer
    EXPECT_TRUE(in.headerDone());
    EXPECT_EQ(in.header().cfg.appThreads, 2u);
}

TEST(StreamIngest, AcceptsByteAtATime)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(60);
    StreamIngest in;
    for (std::uint8_t b : bytes)
        ASSERT_TRUE(in.feed(&b, 1));
    EXPECT_TRUE(in.finish());
    EXPECT_TRUE(in.complete());
}

TEST(StreamIngest, AcceptsSplitAtEveryStructuralBoundary)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes();
    // Split exactly at, one before and one after every state change —
    // the off-by-one surface of the incremental parser.
    std::vector<std::size_t> splits = {0, 1, kHeaderBytes - 1};
    for (std::size_t b : structuralBoundaries(bytes)) {
        if (b > 0)
            splits.push_back(b - 1);
        splits.push_back(b);
        if (b < bytes.size())
            splits.push_back(b + 1);
    }
    for (std::size_t split : splits) {
        StreamIngest in;
        feedSplit(in, bytes, split);
        EXPECT_TRUE(in.finish()) << "split at " << split << ": "
                                 << in.error();
        EXPECT_TRUE(in.complete()) << "split at " << split;
    }
}

TEST(StreamIngest, RejectsBadMagic)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(40);
    bytes[0] ^= 0xFF;
    StreamIngest in;
    EXPECT_FALSE(in.feed(bytes.data(), bytes.size()));
    EXPECT_EQ(in.errorCode(), IngestError::kBadMagic);
    EXPECT_FALSE(in.complete());
}

TEST(StreamIngest, RejectsBadVersion)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(40);
    put32le(bytes.data() + 8, 99);
    StreamIngest in;
    EXPECT_FALSE(in.feed(bytes.data(), bytes.size()));
    EXPECT_EQ(in.errorCode(), IngestError::kBadVersion);
}

TEST(StreamIngest, RejectsCorruptHeader)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(40);
    bytes[33] ^= 0x01; // config byte: fingerprint no longer matches
    StreamIngest in;
    EXPECT_FALSE(in.feed(bytes.data(), bytes.size()));
    EXPECT_EQ(in.errorCode(), IngestError::kBadHeader);
}

TEST(StreamIngest, RejectsCorruptChunkCrcMidStream)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes();
    // Flip a byte inside the first chunk's payload.
    bytes[kHeaderBytes + 16 + 3] ^= 0x01;
    StreamIngest in;
    EXPECT_FALSE(in.feed(bytes.data(), bytes.size()));
    EXPECT_EQ(in.errorCode(), IngestError::kCrcMismatch);
    // Errors are sticky: more bytes don't resurrect the stream.
    std::uint8_t extra = 0;
    EXPECT_FALSE(in.feed(&extra, 1));
    EXPECT_EQ(in.errorCode(), IngestError::kCrcMismatch);
    EXPECT_FALSE(in.finish());
}

TEST(StreamIngest, TruncationAtEveryStructuralBoundary)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(60);
    std::vector<std::size_t> cuts = {0, 1, kHeaderBytes - 1,
                                     kHeaderBytes};
    for (std::size_t b : structuralBoundaries(bytes)) {
        if (b < bytes.size())
            cuts.push_back(b);
        if (b + 1 < bytes.size())
            cuts.push_back(b + 1);
    }
    cuts.push_back(bytes.size() - 1);
    for (std::size_t cut : cuts) {
        StreamIngest in;
        in.feed(bytes.data(), cut);
        EXPECT_FALSE(in.finish()) << "cut at " << cut;
        EXPECT_EQ(in.errorCode(), IngestError::kTruncated)
            << "cut at " << cut;
        EXPECT_FALSE(in.complete());
    }
}

TEST(StreamIngest, HeaderOnlyIsTruncated)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(40);
    StreamIngest in;
    EXPECT_TRUE(in.feed(bytes.data(), kHeaderBytes));
    EXPECT_TRUE(in.headerDone());
    EXPECT_FALSE(in.complete());
    EXPECT_FALSE(in.finish());
    EXPECT_EQ(in.errorCode(), IngestError::kTruncated);
    EXPECT_NE(in.error().find("footer"), std::string::npos);
}

TEST(StreamIngest, RejectsTrailingBytesAfterFooter)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(40);
    StreamIngest in;
    EXPECT_TRUE(in.feed(bytes.data(), bytes.size()));
    EXPECT_TRUE(in.complete());
    std::uint8_t extra = 0x42;
    EXPECT_FALSE(in.feed(&extra, 1));
    EXPECT_EQ(in.errorCode(), IngestError::kTrailingData);
    // complete() stays true — the stream WAS complete; the session
    // layer decides what a trailing-data violation means.
    EXPECT_TRUE(in.complete());
}

TEST(StreamIngest, EnforcesTotalByteBudget)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes();
    StreamIngest::Limits limits;
    limits.maxTotalBytes = bytes.size() / 2;
    StreamIngest in(limits);
    EXPECT_FALSE(in.feed(bytes.data(), bytes.size()));
    EXPECT_EQ(in.errorCode(), IngestError::kTooLarge);
}

TEST(StreamIngest, EnforcesChunkByteBudget)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes();
    StreamIngest::Limits limits;
    limits.maxChunkBytes = 8; // every real chunk is bigger
    StreamIngest in(limits);
    EXPECT_FALSE(in.feed(bytes.data(), bytes.size()));
    EXPECT_EQ(in.errorCode(), IngestError::kBadChunk);
}

TEST(StreamIngest, RejectsEmptyChunk)
{
    std::vector<std::uint8_t> bytes = makeTraceBytes(40);
    put32le(bytes.data() + kHeaderBytes + 8, 0); // payloadBytes = 0
    StreamIngest in;
    EXPECT_FALSE(in.feed(bytes.data(), bytes.size()));
    EXPECT_EQ(in.errorCode(), IngestError::kBadChunk);
}

TEST(StreamIngest, ErrorNamesAreStable)
{
    EXPECT_STREQ(ingestErrorName(IngestError::kNone), "none");
    EXPECT_STREQ(ingestErrorName(IngestError::kBadMagic), "bad-magic");
    EXPECT_STREQ(ingestErrorName(IngestError::kBadVersion),
                 "bad-version");
    EXPECT_STREQ(ingestErrorName(IngestError::kBadHeader),
                 "bad-header");
    EXPECT_STREQ(ingestErrorName(IngestError::kBadChunk), "bad-chunk");
    EXPECT_STREQ(ingestErrorName(IngestError::kCrcMismatch),
                 "crc-mismatch");
    EXPECT_STREQ(ingestErrorName(IngestError::kTooLarge), "too-large");
    EXPECT_STREQ(ingestErrorName(IngestError::kTrailingData),
                 "trailing-data");
    EXPECT_STREQ(ingestErrorName(IngestError::kTruncated), "truncated");
}

TEST(Crc32Incremental, MatchesOneShotForAnySplit)
{
    std::vector<std::uint8_t> data(1997);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 131 + 7);
    std::uint32_t expect = crc32(data.data(), data.size());
    for (std::size_t split : {std::size_t(0), std::size_t(1),
                              std::size_t(96), std::size_t(1000),
                              data.size() - 1, data.size()}) {
        Crc32 crc;
        crc.update(data.data(), split);
        crc.update(data.data() + split, data.size() - split);
        EXPECT_EQ(crc.value(), expect) << "split " << split;
    }
    Crc32 reset_check;
    reset_check.update(data.data(), 10);
    reset_check.reset();
    reset_check.update(data.data(), data.size());
    EXPECT_EQ(reset_check.value(), expect);
}

} // namespace
} // namespace paralog::trace
