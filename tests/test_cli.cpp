/**
 * @file
 * Tests for the `paralog` scenario-matrix CLI: flag parsing units
 * (args.cpp is linked in directly), in-process runMatrix() coverage of
 * the multi-threaded scenario runner (determinism across job counts,
 * in-order emission, failure containment — the suite ThreadSanitizer CI
 * exercises), plus end-to-end subprocess runs of the built driver
 * binary, located via the PARALOG_CLI environment variable that CMake
 * sets on this test.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "cli/args.hpp"
#include "common/logging.hpp"
#include "core/experiment.hpp"

namespace paralog::cli {
namespace {

ParseResult
parse(std::initializer_list<std::string_view> args)
{
    return parseArgs(std::vector<std::string_view>(args));
}

TEST(CliParse, DefaultsToSingleTaintcheckParallelRun)
{
    ParseResult r = parse({});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    auto scenarios = r.options.scenarios();
    ASSERT_EQ(scenarios.size(), 1u);
    EXPECT_EQ(scenarios[0].workload, WorkloadKind::kLu);
    EXPECT_EQ(scenarios[0].lifeguard, LifeguardKind::kTaintCheck);
    EXPECT_EQ(scenarios[0].mode, MonitorMode::kParallel);
    EXPECT_EQ(scenarios[0].cores, 4u);
    EXPECT_FALSE(r.options.csv);
}

TEST(CliParse, HelpShortCircuits)
{
    EXPECT_EQ(parse({"--help"}).status, ParseStatus::kHelp);
    EXPECT_EQ(parse({"-h"}).status, ParseStatus::kHelp);
    EXPECT_EQ(parse({"--workload=lu", "--help"}).status,
              ParseStatus::kHelp);
}

TEST(CliParse, UnknownFlagRejected)
{
    ParseResult r = parse({"--bogus=1"});
    ASSERT_EQ(r.status, ParseStatus::kError);
    EXPECT_NE(r.error.find("unknown flag"), std::string::npos);
    EXPECT_EQ(parse({"positional"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--csvv"}).status, ParseStatus::kError);
}

TEST(CliParse, ExistingFlagMisuseGetsSpecificError)
{
    // A valued flag without '=' must not claim the flag is unknown.
    ParseResult missing = parse({"--workload"});
    ASSERT_EQ(missing.status, ParseStatus::kError);
    EXPECT_NE(missing.error.find("requires a value"), std::string::npos);
    // A no-value flag with '=' likewise.
    ParseResult extra = parse({"--csv=on"});
    ASSERT_EQ(extra.status, ParseStatus::kError);
    EXPECT_NE(extra.error.find("takes no value"), std::string::npos);
}

TEST(CliParse, ValueParsers)
{
    WorkloadKind w;
    EXPECT_TRUE(parseWorkload("ocean", w));
    EXPECT_EQ(w, WorkloadKind::kOcean);
    EXPECT_FALSE(parseWorkload("OCEAN", w));
    EXPECT_FALSE(parseWorkload("", w));

    LifeguardKind lg;
    EXPECT_TRUE(parseLifeguard("lockset", lg));
    EXPECT_EQ(lg, LifeguardKind::kLockSet);
    EXPECT_FALSE(parseLifeguard("valgrind", lg));

    MonitorMode m;
    EXPECT_TRUE(parseMode("none", m));
    EXPECT_EQ(m, MonitorMode::kNoMonitoring);
    EXPECT_TRUE(parseMode("timesliced", m));
    EXPECT_EQ(m, MonitorMode::kTimesliced);

    bool b;
    EXPECT_TRUE(parseBool("on", b));
    EXPECT_TRUE(b);
    EXPECT_TRUE(parseBool("0", b));
    EXPECT_FALSE(b);
    EXPECT_FALSE(parseBool("maybe", b));
}

TEST(CliParse, CommaListsAndAll)
{
    ParseResult r = parse({"--workload=lu,ocean", "--lifeguard=all",
                           "--mode=none,parallel", "--cores=1,2,4,8"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    EXPECT_EQ(r.options.workloads.size(), 2u);
    EXPECT_EQ(r.options.lifeguards.size(), 4u);
    EXPECT_EQ(r.options.modes.size(), 2u);
    EXPECT_EQ(r.options.cores.size(), 4u);
    // Full cross product for parallel (2 * 4 * 4 = 32), but the
    // no-monitoring baseline runs once per (workload, cores), not once
    // per lifeguard: + 2 * 4 = 8.
    EXPECT_EQ(r.options.scenarios().size(), 40u);

    // Duplicates collapse.
    ParseResult dup = parse({"--workload=lu,lu,lu"});
    ASSERT_EQ(dup.status, ParseStatus::kOk);
    EXPECT_EQ(dup.options.workloads.size(), 1u);
}

TEST(CliParse, NoMonitoringScenariosNotRepeatedPerLifeguard)
{
    ParseResult r = parse({"--lifeguard=all", "--mode=none"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    // One baseline run, not four identical ones.
    EXPECT_EQ(r.options.scenarios().size(), 1u);
}

TEST(CliParse, BadListValuesRejected)
{
    EXPECT_EQ(parse({"--workload=lu,bogus"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--workload="}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--workload=lu,"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--cores=0"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--cores=17"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--cores=two"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--scale=0"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--scale=-5"}).status, ParseStatus::kError);
}

TEST(CliParse, PlatformKnobs)
{
    ParseResult r = parse({"--accel=off", "--dep-tracking=per-core",
                           "--memory-model=tso", "--conflict-alerts=off",
                           "--scale=1234", "--seed=7",
                           "--log-buffer=4096", "--csv"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    ExperimentOptions o = r.options.experimentOptions();
    EXPECT_FALSE(o.accelerators);
    EXPECT_EQ(o.depTracking, DepTracking::kPerCore);
    EXPECT_EQ(o.memoryModel, MemoryModel::kTSO);
    EXPECT_FALSE(o.conflictAlerts);
    EXPECT_EQ(o.scale, 1234u);
    EXPECT_EQ(o.seed, 7u);
    EXPECT_EQ(o.logBufferBytes, 4096u);
    EXPECT_TRUE(r.options.csv);
}

TEST(CliParse, TimeslicedTsoComboRejected)
{
    ParseResult r =
        parse({"--mode=timesliced", "--memory-model=tso"});
    ASSERT_EQ(r.status, ParseStatus::kError);
    EXPECT_NE(r.error.find("incompatible"), std::string::npos);
    // ... even when timesliced arrives via a list or `all`.
    EXPECT_EQ(parse({"--mode=all", "--memory-model=tso"}).status,
              ParseStatus::kError);
    // Parallel TSO stays legal.
    EXPECT_EQ(parse({"--mode=parallel", "--memory-model=tso"}).status,
              ParseStatus::kOk);
}

TEST(CliParse, SeedListSweeps)
{
    ParseResult r = parse({"--seed=3,5,7"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    EXPECT_EQ(r.options.seeds, (std::vector<std::uint64_t>{3, 5, 7}));
    EXPECT_TRUE(r.options.sweepColumns());
    // First seed backs the shared ExperimentOptions.
    EXPECT_EQ(r.options.experimentOptions().seed, 3u);

    // Duplicates collapse; a scalar seed keeps the legacy schema.
    ParseResult dup = parse({"--seed=5,5,5"});
    ASSERT_EQ(dup.status, ParseStatus::kOk);
    EXPECT_EQ(dup.options.seeds.size(), 1u);
    EXPECT_FALSE(dup.options.sweepColumns());

    EXPECT_EQ(parse({"--seed="}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--seed=1,x"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--seed=all"}).status, ParseStatus::kError);
}

TEST(CliParse, MatrixExecutionFlags)
{
    ParseResult r = parse({"--jobs=4", "--repeat=3", "--shadow-shards=8",
                           "--max-cycles=123456"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    EXPECT_EQ(r.options.jobs, 4u);
    EXPECT_EQ(r.options.repeat, 3u);
    EXPECT_EQ(r.options.shadowShards, 8u);
    EXPECT_EQ(r.options.maxCycles, 123456u);
    EXPECT_TRUE(r.options.sweepColumns()); // repeat > 1
    ExperimentOptions o = r.options.experimentOptions();
    EXPECT_EQ(o.shadowShards, 8u);
    EXPECT_EQ(o.maxCycles, 123456u);

    EXPECT_EQ(parse({"--jobs=0"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--jobs=65"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--repeat=0"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--shadow-shards=3"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--shadow-shards=512"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--max-cycles=0"}).status, ParseStatus::kError);
    // 0 = auto is legal for shards.
    EXPECT_EQ(parse({"--shadow-shards=0"}).status, ParseStatus::kOk);
}

TEST(CliParse, CsvAndJsonAreMutuallyExclusive)
{
    EXPECT_EQ(parse({"--json"}).status, ParseStatus::kOk);
    ParseResult r = parse({"--csv", "--json"});
    ASSERT_EQ(r.status, ParseStatus::kError);
    EXPECT_NE(r.error.find("mutually exclusive"), std::string::npos);
}

TEST(CliParse, RecordFlagRequiresASingleParallelCell)
{
    ParseResult r = parse({"--record=/tmp/x.trace"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    EXPECT_EQ(r.options.recordPath, "/tmp/x.trace");
    ASSERT_EQ(r.options.runSpecs().size(), 1u);
    EXPECT_EQ(r.options.runSpecs()[0].recordPath, "/tmp/x.trace");

    EXPECT_EQ(parse({"--record="}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--record=/tmp/x", "--mode=none"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--record=/tmp/x", "--mode=timesliced"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--record=/tmp/x", "--cores=1,2"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--record=/tmp/x", "--workload=all"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--record=/tmp/x", "--seed=1,2"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--record=/tmp/x", "--repeat=2"}).status,
              ParseStatus::kError);
    // A fully-pinned single cell is fine, TSO included.
    EXPECT_EQ(parse({"--record=/tmp/x", "--workload=ocean", "--cores=8",
                     "--memory-model=tso", "--seed=9"})
                  .status,
              ParseStatus::kOk);
}

TEST(CliParse, ReplayTakesAxesFromTheRecording)
{
    ParseResult r = parse({"--replay=/tmp/x.trace"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    EXPECT_EQ(r.options.replayPath, "/tmp/x.trace");

    // Only the lifeguard (and output/execution flags) may combine.
    EXPECT_EQ(parse({"--replay=/tmp/x", "--lifeguard=all"}).status,
              ParseStatus::kOk);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--jobs=4", "--repeat=2",
                     "--json", "--shadow-shards=8"})
                  .status,
              ParseStatus::kOk);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--workload=lu"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--cores=2"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--seed=2"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--memory-model=tso"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--scale=100"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--record=/tmp/y"}).status,
              ParseStatus::kError);
}

TEST(CliParse, LgThreadsAppliesLiveAndReplay)
{
    // --lg-threads selects the host threading of the lifeguard cores,
    // live or replay, and flows through to the run specs.
    ParseResult r = parse({"--replay=/tmp/x.trace", "--lg-threads=4"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    EXPECT_EQ(r.options.lgThreads, 4u);
    ASSERT_EQ(r.options.runSpecs().size(), 1u);
    EXPECT_EQ(r.options.runSpecs()[0].opt.lgThreads, 4u);

    // 0/1 explicitly select the serial engine.
    EXPECT_EQ(parse({"--replay=/tmp/x", "--lg-threads=0"}).status,
              ParseStatus::kOk);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--lg-threads=1"}).status,
              ParseStatus::kOk);

    // Live runs use the live host-parallel engine.
    ParseResult live = parse({"--lg-threads=2"});
    ASSERT_EQ(live.status, ParseStatus::kOk);
    ASSERT_EQ(live.options.runSpecs().size(), 1u);
    EXPECT_EQ(live.options.runSpecs()[0].opt.lgThreads, 2u);

    // --record composes: the journal carries the live-parallel header
    // bit and replays result-exact through the concurrent engine.
    ParseResult rec =
        parse({"--record=/tmp/x.trace", "--lg-threads=2"});
    ASSERT_EQ(rec.status, ParseStatus::kOk);
    EXPECT_EQ(rec.options.runSpecs()[0].opt.lgThreads, 2u);
    EXPECT_EQ(parse({"--record=/tmp/x", "--lg-threads=0"}).status,
              ParseStatus::kOk);

    // The one hard conflict: the concurrent engines rely on the
    // ConflictAlert barriers for cross-stream ordering.
    ParseResult noca =
        parse({"--lg-threads=2", "--conflict-alerts=off"});
    EXPECT_EQ(noca.status, ParseStatus::kError);
    EXPECT_NE(noca.error.find("--conflict-alerts"), std::string::npos);
    EXPECT_EQ(
        parse({"--lg-threads=1", "--conflict-alerts=off"}).status,
        ParseStatus::kOk);

    // Value validation.
    EXPECT_EQ(parse({"--replay=/tmp/x", "--lg-threads=nope"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--lg-threads=9999"}).status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--replay=/tmp/x", "--lg-threads"}).status,
              ParseStatus::kError);
}

TEST(CliParse, RunSpecsExpandScenariosSeedsRepeats)
{
    ParseResult r = parse({"--workload=lu,ocean", "--cores=1,2",
                           "--seed=1,2,3", "--repeat=2"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    // 2 workloads x 2 cores = 4 scenarios, x 3 seeds x 2 repeats.
    auto specs = r.options.runSpecs();
    ASSERT_EQ(specs.size(), 24u);
    // Consecutive groups of `repeat` specs share scenario and seed (the
    // output-cell grouping contract).
    for (std::size_t i = 0; i < specs.size(); i += 2) {
        EXPECT_EQ(specs[i].workload, specs[i + 1].workload);
        EXPECT_EQ(specs[i].cores, specs[i + 1].cores);
        EXPECT_EQ(specs[i].opt.seed, specs[i + 1].opt.seed);
    }
    // Seeds vary fastest (per scenario), in flag order.
    EXPECT_EQ(specs[0].opt.seed, 1u);
    EXPECT_EQ(specs[2].opt.seed, 2u);
    EXPECT_EQ(specs[4].opt.seed, 3u);
    EXPECT_EQ(specs[6].opt.seed, 1u);
}

TEST(CliParse, LockSetTsoComboAccepted)
{
    // The versioning protocol now orders read-side metadata writers,
    // so the historical lockset+tso refusal is gone: the full
    // lifeguard x memory-model matrix parses.
    EXPECT_EQ(parse({"--lifeguard=lockset", "--memory-model=tso"}).status,
              ParseStatus::kOk);
    EXPECT_EQ(parse({"--lifeguard=all", "--memory-model=tso"}).status,
              ParseStatus::kOk);
    EXPECT_EQ(parse({"--lifeguard=lockset", "--memory-model=sc"}).status,
              ParseStatus::kOk);
}

TEST(CliParse, SubmitNeedsSocketAndViceVersa)
{
    ParseResult ok = parse({"--submit=/tmp/x.trace",
                            "--socket=/tmp/paralogd.sock"});
    ASSERT_EQ(ok.status, ParseStatus::kOk);
    EXPECT_EQ(ok.options.submitPath, "/tmp/x.trace");
    EXPECT_EQ(ok.options.socketPath, "/tmp/paralogd.sock");
    EXPECT_FALSE(ok.options.daemonStats);

    ParseResult no_sock = parse({"--submit=/tmp/x.trace"});
    ASSERT_EQ(no_sock.status, ParseStatus::kError);
    EXPECT_NE(no_sock.error.find("need --socket"), std::string::npos);

    ParseResult sock_alone = parse({"--socket=/tmp/paralogd.sock"});
    ASSERT_EQ(sock_alone.status, ParseStatus::kError);
    EXPECT_NE(sock_alone.error.find("--socket does nothing"),
              std::string::npos);
}

TEST(CliParse, DaemonStatsParsesAndExcludesSubmit)
{
    ParseResult ok =
        parse({"--daemon-stats", "--socket=/tmp/paralogd.sock"});
    ASSERT_EQ(ok.status, ParseStatus::kOk);
    EXPECT_TRUE(ok.options.daemonStats);
    EXPECT_EQ(ok.options.socketPath, "/tmp/paralogd.sock");

    EXPECT_EQ(parse({"--daemon-stats"}).status, ParseStatus::kError);

    ParseResult both = parse({"--submit=/tmp/x.trace", "--daemon-stats",
                              "--socket=/tmp/paralogd.sock"});
    ASSERT_EQ(both.status, ParseStatus::kError);
    EXPECT_NE(both.error.find("mutually exclusive"), std::string::npos);
}

TEST(CliParse, SubmitExcludesLocalRecordReplayAndMatrixAxes)
{
    // The daemon does the re-monitoring; local record/replay flags and
    // matrix axes contradict that. Only --lifeguard may ride along.
    ParseResult rec = parse({"--submit=/tmp/x.trace", "--socket=/tmp/s",
                             "--record=/tmp/y.trace"});
    ASSERT_EQ(rec.status, ParseStatus::kError);
    EXPECT_NE(rec.error.find("mutually exclusive with --record"),
              std::string::npos);
    EXPECT_EQ(parse({"--submit=/tmp/x.trace", "--socket=/tmp/s",
                     "--replay=/tmp/y.trace"})
                  .status,
              ParseStatus::kError);

    ParseResult axis = parse({"--submit=/tmp/x.trace", "--socket=/tmp/s",
                              "--workload=ocean"});
    ASSERT_EQ(axis.status, ParseStatus::kError);
    EXPECT_NE(axis.error.find("only --lifeguard"), std::string::npos);
    EXPECT_EQ(parse({"--submit=/tmp/x.trace", "--socket=/tmp/s",
                     "--cores=2"})
                  .status,
              ParseStatus::kError);
    EXPECT_EQ(parse({"--submit=/tmp/x.trace", "--socket=/tmp/s",
                     "--scale=1000"})
                  .status,
              ParseStatus::kError);

    ParseResult lg = parse({"--submit=/tmp/x.trace", "--socket=/tmp/s",
                            "--lifeguard=addrcheck,lockset"});
    ASSERT_EQ(lg.status, ParseStatus::kOk);
    ASSERT_EQ(lg.options.lifeguards.size(), 2u);
    EXPECT_EQ(lg.options.lifeguards[0], LifeguardKind::kAddrCheck);
}

// ------------------------------------------- in-process matrix runner

/** Small deterministic spec list covering distinct scenarios. */
std::vector<RunSpec>
smallSpecs(std::uint32_t repeat = 1)
{
    ParseResult r = parse({"--workload=lu,swaptions", "--cores=1,2",
                           "--scale=600",
                           "--repeat=" + std::to_string(repeat)});
    EXPECT_EQ(r.status, ParseStatus::kOk);
    return r.options.runSpecs();
}

TEST(RunMatrix, JobCountDoesNotChangeResults)
{
    setQuiet(true);
    std::vector<RunSpec> specs = smallSpecs();
    std::vector<CellResult> seq = runMatrix(specs, 1);
    std::vector<CellResult> par = runMatrix(specs, 4);
    ASSERT_EQ(seq.size(), specs.size());
    ASSERT_EQ(par.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_FALSE(seq[i].failed) << seq[i].error;
        ASSERT_FALSE(par[i].failed) << par[i].error;
        EXPECT_EQ(seq[i].result.totalCycles, par[i].result.totalCycles);
        EXPECT_EQ(seq[i].result.retiredTotal(),
                  par[i].result.retiredTotal());
        EXPECT_EQ(seq[i].result.eventsHandledTotal(),
                  par[i].result.eventsHandledTotal());
        EXPECT_EQ(seq[i].result.violationCount,
                  par[i].result.violationCount);
    }
}

TEST(RunMatrix, EmitsCellsInSpecOrder)
{
    setQuiet(true);
    std::vector<RunSpec> specs = smallSpecs(2);
    std::vector<std::size_t> emitted;
    runMatrix(specs, 4, [&](std::size_t i, const CellResult &cell) {
        EXPECT_FALSE(cell.failed);
        emitted.push_back(i);
    });
    ASSERT_EQ(emitted.size(), specs.size());
    for (std::size_t i = 0; i < emitted.size(); ++i)
        EXPECT_EQ(emitted[i], i);
}

TEST(RunMatrix, InjectedFailureIsContainedToItsCell)
{
    setQuiet(true);
    std::vector<RunSpec> specs = smallSpecs();
    ASSERT_GE(specs.size(), 3u);
    setenv("PARALOG_FAIL_CELL", "1", 1);
    std::vector<CellResult> res = runMatrix(specs, 2);
    unsetenv("PARALOG_FAIL_CELL");

    ASSERT_EQ(res.size(), specs.size());
    EXPECT_FALSE(res[0].failed);
    ASSERT_TRUE(res[1].failed);
    EXPECT_NE(res[1].error.find("injected failure"), std::string::npos);
    for (std::size_t i = 2; i < res.size(); ++i)
        EXPECT_FALSE(res[i].failed) << res[i].error;

    // Panic-throw mode was restored: panics abort again by default.
    EXPECT_FALSE(setPanicThrows(false));
}

TEST(RunMatrix, RealPanicIsContainedToItsCell)
{
    setQuiet(true);
    std::vector<RunSpec> specs = smallSpecs();
    // Rig cell 0 to trip the simulated-time watchdog almost instantly.
    specs[0].opt.maxCycles = 50;
    std::vector<CellResult> res = runMatrix(specs, 2);
    ASSERT_TRUE(res[0].failed);
    EXPECT_NE(res[0].error.find("watchdog"), std::string::npos);
    for (std::size_t i = 1; i < res.size(); ++i)
        EXPECT_FALSE(res[i].failed) << res[i].error;
    EXPECT_FALSE(setPanicThrows(false));
}

TEST(RunMatrix, PreCancelledMatrixSkipsEveryCell)
{
    setQuiet(true);
    std::vector<RunSpec> specs = smallSpecs();
    std::atomic<bool> cancel{true};
    std::vector<std::size_t> emitted;
    std::vector<CellResult> res = runMatrix(
        specs, 2,
        [&](std::size_t i, const CellResult &) { emitted.push_back(i); },
        &cancel);
    ASSERT_EQ(res.size(), specs.size());
    for (const CellResult &cell : res) {
        EXPECT_TRUE(cell.skipped);
        EXPECT_FALSE(cell.failed);
    }
    // Skipped cells still stream in order — partial output depends on it.
    ASSERT_EQ(emitted.size(), specs.size());
    for (std::size_t i = 0; i < emitted.size(); ++i)
        EXPECT_EQ(emitted[i], i);
}

TEST(RunMatrix, MidRunCancelSkipsTheTailOnly)
{
    setQuiet(true);
    std::vector<RunSpec> specs = smallSpecs(2);
    std::atomic<bool> cancel{false};
    // Cancel from inside the first emission, as a SIGINT would
    // mid-matrix: already-finished cells keep their results, the tail
    // comes back skipped.
    std::vector<CellResult> res = runMatrix(
        specs, 1,
        [&](std::size_t, const CellResult &) { cancel.store(true); },
        &cancel);
    ASSERT_EQ(res.size(), specs.size());
    EXPECT_FALSE(res.front().skipped);
    EXPECT_FALSE(res.front().failed);
    EXPECT_TRUE(res.back().skipped);
    std::size_t skipped = 0;
    for (const CellResult &cell : res)
        skipped += cell.skipped ? 1 : 0;
    EXPECT_GE(skipped, 1u);
    EXPECT_LT(skipped, specs.size());
}

// ------------------------------------------------------- end-to-end runs

/** Run the built driver; returns its exit code, fills @p output.
 *  @p env_prefix, when set, is prepended to the shell command
 *  (e.g. "PARALOG_FAIL_CELL=0"). */
int
runCli(const std::string &flags, std::string &output,
       const std::string &env_prefix = "")
{
    const char *bin = std::getenv("PARALOG_CLI");
    if (!bin) {
        ADD_FAILURE() << "PARALOG_CLI not set";
        return -1;
    }
    std::string cmd = (env_prefix.empty() ? "" : env_prefix + " ") + "'" +
                      std::string(bin) + "' " + flags + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return -1;
    }
    output.clear();
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliEndToEnd : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!std::getenv("PARALOG_CLI"))
            GTEST_SKIP() << "PARALOG_CLI not set (run under CTest)";
    }
};

TEST_F(CliEndToEnd, CsvRunPrintsHeaderAndRow)
{
    std::string out;
    int rc = runCli("--workload=lu --lifeguard=taintcheck "
                    "--mode=parallel --cores=2 --scale=3000 --csv",
                    out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("workload,lifeguard,mode,cores"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("violations,versions_produced,versions_consumed,"
                       "version_stalls"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("lu,taintcheck,parallel,2,on,per-block,sc,3000"),
              std::string::npos)
        << out;
}

TEST_F(CliEndToEnd, LockSetTsoRunsToCompletion)
{
    // End-to-end proof of the lifted gate: the once-deadlocking
    // combination completes through the driver in well under the test
    // timeout, and reports its versioning-protocol counters.
    std::string out;
    int rc = runCli("--workload=lu --lifeguard=lockset --mode=parallel "
                    "--memory-model=tso --cores=4 --scale=400",
                    out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("total cycles"), std::string::npos) << out;
    EXPECT_NE(out.find("versions:"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, TextRunPrintsStats)
{
    std::string out;
    int rc = runCli("--workload=blackscholes --mode=none --cores=1 "
                    "--scale=3000",
                    out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("total cycles"), std::string::npos) << out;
    EXPECT_NE(out.find("blackscholes"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, HelpExitsZeroWithUsage)
{
    std::string out;
    EXPECT_EQ(runCli("--help", out), 0);
    EXPECT_NE(out.find("Usage: paralog"), std::string::npos);
}

TEST_F(CliEndToEnd, InvalidFlagExitsNonZeroWithUsage)
{
    std::string out;
    int rc = runCli("--workload=nosuchbench", out);
    EXPECT_EQ(rc, 2) << out;
    EXPECT_NE(out.find("Usage: paralog"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, InvalidComboExitsNonZeroWithUsage)
{
    std::string out;
    int rc = runCli("--mode=timesliced --memory-model=tso", out);
    EXPECT_EQ(rc, 2) << out;
    EXPECT_NE(out.find("incompatible"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, LiveLgThreadsRunsAndComposesWithRecord)
{
    // The lifted flag contract, end to end: --lg-threads now drives the
    // live host-parallel engine, and composes with --record — the
    // recording replays result-exact (footer self-check, so a zero
    // replay exit is the equivalence proof at this level).
    std::string trace_path = ::testing::TempDir() +
                             "paralog_cli_liverec_" +
                             std::to_string(::getpid()) + ".trace";
    std::string out;
    int rc = runCli("--workload=lu --lifeguard=taintcheck "
                    "--mode=parallel --cores=4 --scale=400 "
                    "--lg-threads=2 --record=" +
                        trace_path,
                    out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("total cycles"), std::string::npos) << out;

    rc = runCli("--replay=" + trace_path, out);
    EXPECT_EQ(rc, 0) << out;
    std::remove(trace_path.c_str());

    // The one remaining hard conflict: the concurrent engines need the
    // ConflictAlert barriers.
    rc = runCli("--lg-threads=2 --conflict-alerts=off", out);
    EXPECT_EQ(rc, 2) << out;
    EXPECT_NE(out.find("--conflict-alerts"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, ReplayWithLgThreadsRunsConcurrently)
{
    // Record through the driver, replay concurrently through the
    // driver. The concurrent engine self-checks its analysis results
    // against the recorded footer and panics on divergence, so a zero
    // exit *is* the serial-equivalence proof at this level.
    std::string trace_path = ::testing::TempDir() + "paralog_cli_lg_" +
                             std::to_string(::getpid()) + ".trace";
    std::string out;
    int rc = runCli("--workload=lu --lifeguard=taintcheck "
                    "--mode=parallel --cores=4 --scale=400 --record=" +
                        trace_path,
                    out);
    ASSERT_EQ(rc, 0) << out;

    rc = runCli("--replay=" + trace_path + " --lg-threads=4", out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("total cycles"), std::string::npos) << out;

    // Serial selection via the same flag (0 = serial engine).
    rc = runCli("--replay=" + trace_path + " --lg-threads=0", out);
    EXPECT_EQ(rc, 0) << out;
    std::remove(trace_path.c_str());
}

// -------------------------------------- matrix features, end to end

/** Occurrences of @p needle in @p text. */
std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size()))
        ++n;
    return n;
}

/** Split @p text into lines. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

/** The comma-separated fields of the first CSV data row whose line
 *  starts with @p prefix. */
std::vector<std::string>
csvRow(const std::string &out, const std::string &prefix)
{
    for (const std::string &line : splitLines(out)) {
        if (line.rfind(prefix, 0) != 0)
            continue;
        std::vector<std::string> fields;
        std::size_t pos = 0;
        while (pos <= line.size()) {
            std::size_t comma = line.find(',', pos);
            if (comma == std::string::npos)
                comma = line.size();
            fields.push_back(line.substr(pos, comma - pos));
            pos = comma + 1;
        }
        return fields;
    }
    return {};
}

/** Value of `"name": {"min": a, "median": b, "max": c}` in @p json
 *  (the median), or "" when absent. Also checks min == max == median:
 *  deterministic repeats must collapse. */
std::string
jsonMedian(const std::string &json, const std::string &name)
{
    std::size_t at = json.find("\"" + name + "\": {\"min\": ");
    if (at == std::string::npos)
        return "";
    std::size_t min_at = json.find("\"min\": ", at) + 7;
    std::size_t med_at = json.find("\"median\": ", at) + 10;
    std::size_t max_at = json.find("\"max\": ", at) + 7;
    auto num = [&](std::size_t p) {
        std::size_t end = json.find_first_of(",}", p);
        return json.substr(p, end - p);
    };
    EXPECT_EQ(num(min_at), num(med_at)) << name;
    EXPECT_EQ(num(max_at), num(med_at)) << name;
    return num(med_at);
}

/** Strip host-dependent lines (wall clock, job count) so outputs of
 *  different --jobs runs are comparable. */
std::string
stripHostLines(const std::string &out)
{
    std::string kept;
    for (const std::string &line : splitLines(out)) {
        if (line.find("wall_ms") != std::string::npos ||
            line.find("\"jobs\":") != std::string::npos)
            continue;
        kept += line;
        kept += '\n';
    }
    return kept;
}

TEST_F(CliEndToEnd, JsonRoundTripsAgainstCsv)
{
    const std::string flags = "--workload=lu --lifeguard=addrcheck "
                              "--mode=parallel --cores=2 --scale=2000";
    std::string json, csv;
    ASSERT_EQ(runCli(flags + " --json", json), 0) << json;
    ASSERT_EQ(runCli(flags + " --csv", csv), 0) << csv;

    // Structural sanity: one cell, ok, balanced output.
    EXPECT_NE(json.find("\"schema\": \"paralog-matrix-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"cells_failed\": 0"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));

    // Value round-trip: every CSV stat column equals the JSON median.
    std::vector<std::string> header = csvRow(csv, "workload,");
    std::vector<std::string> row = csvRow(csv, "lu,addrcheck,");
    ASSERT_EQ(header.size(), 20u) << csv;
    ASSERT_EQ(row.size(), header.size()) << csv;
    for (std::size_t col = 8; col < header.size(); ++col) {
        EXPECT_EQ(jsonMedian(json, header[col]), row[col])
            << header[col];
    }
}

TEST_F(CliEndToEnd, SeedSweepCellsAreIndependentDeterministic)
{
    // swaptions consumes the seed, so cells differ across seeds — and
    // the seed=7 cell of a sweep must be identical to a solo seed=7
    // run (cells share nothing).
    const std::string base = "--workload=swaptions --cores=2 "
                             "--scale=1500 --csv";
    std::string solo, sweep;
    ASSERT_EQ(runCli(base + " --seed=7", solo), 0) << solo;
    ASSERT_EQ(runCli(base + " --seed=3,7", sweep), 0) << sweep;

    std::vector<std::string> solo_row = csvRow(solo, "swaptions,");
    ASSERT_EQ(solo_row.size(), 20u) << solo;

    // Sweep rows carry trailing seed,repeats columns; find seed 7.
    std::vector<std::string> sweep_lines;
    for (const std::string &line : splitLines(sweep)) {
        if (line.rfind("swaptions,", 0) == 0)
            sweep_lines.push_back(line);
    }
    ASSERT_EQ(sweep_lines.size(), 2u) << sweep;
    EXPECT_NE(sweep_lines[0], sweep_lines[1]) << "seed ignored?";
    bool found = false;
    for (const std::string &line : sweep_lines) {
        std::vector<std::string> f = csvRow(line + "\n", "swaptions,");
        ASSERT_EQ(f.size(), 22u) << line;
        if (f[20] != "7")
            continue;
        found = true;
        EXPECT_EQ(f[21], "1"); // one repeat
        for (std::size_t col = 0; col < 20; ++col)
            EXPECT_EQ(f[col], solo_row[col]) << "col " << col;
    }
    EXPECT_TRUE(found) << sweep;
}

TEST_F(CliEndToEnd, RepeatAggregationIsJobCountInvariant)
{
    const std::string flags = "--workload=lu,swaptions --cores=1,2 "
                              "--scale=1000 --seed=1,2 --repeat=3 "
                              "--json";
    std::string seq, par;
    ASSERT_EQ(runCli(flags + " --jobs=1", seq), 0) << seq;
    ASSERT_EQ(runCli(flags + " --jobs=4", par), 0) << par;
    EXPECT_EQ(stripHostLines(seq), stripHostLines(par));
    EXPECT_NE(seq.find("\"repeats\": 3"), std::string::npos);
}

TEST_F(CliEndToEnd, FailedCellIsMarkedAndExitCodeNonzero)
{
    // Injected failure in cell 0 of a 2-cell matrix: the failed cell
    // is marked, the healthy cell still reports, and the driver exits
    // 1 (regression: it used to exit 0 no matter what).
    const std::string flags = "--workload=lu --mode=none,parallel "
                              "--cores=1 --scale=1000";
    std::string csv;
    EXPECT_EQ(runCli(flags + " --csv", csv, "PARALOG_FAIL_CELL=0"), 1)
        << csv;
    EXPECT_NE(csv.find("\"failed: injected failure"), std::string::npos)
        << csv;
    EXPECT_NE(csv.find("lu,taintcheck,parallel,1,"), std::string::npos)
        << csv;

    std::string text;
    EXPECT_EQ(runCli(flags, text, "PARALOG_FAIL_CELL=0"), 1) << text;
    EXPECT_NE(text.find("FAILED: injected failure"), std::string::npos)
        << text;
    EXPECT_NE(text.find("total cycles"), std::string::npos)
        << "healthy cell missing: " << text;

    std::string json;
    EXPECT_EQ(runCli(flags + " --json", json, "PARALOG_FAIL_CELL=1"), 1)
        << json;
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"cells_failed\": 1"), std::string::npos)
        << json;
}

TEST_F(CliEndToEnd, RealPanicMidMatrixExitsNonzero)
{
    // A genuine simulator panic (simulated-time watchdog) — not just
    // the injection hook — must also be contained and propagated.
    std::string out;
    int rc = runCli("--workload=lu --cores=2 --scale=50000 "
                    "--max-cycles=5000",
                    out);
    EXPECT_EQ(rc, 1) << out;
    EXPECT_NE(out.find("FAILED: simulation watchdog"), std::string::npos)
        << out;
}

// ------------------------------------------------- record / replay

/** Self-deleting temp trace path for subprocess runs. */
class CliTraceFile
{
  public:
    explicit CliTraceFile(const char *tag)
        : path_("/tmp/paralog_cli_" + std::string(tag) + "_" +
                std::to_string(::getpid()) + ".trace")
    {
    }
    ~CliTraceFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST_F(CliEndToEnd, RecordReplayRoundTripIsJobCountInvariant)
{
    // Record one cell, replay it under all four lifeguards at --jobs=1
    // and --jobs=4: the JSON documents must be byte-identical modulo
    // the host-side wall_ms/jobs lines — including the per-cell shadow
    // fingerprints — and the recorded-lifeguard cell is additionally
    // self-checked bit-identical inside the driver.
    CliTraceFile trace("roundtrip");
    std::string rec;
    ASSERT_EQ(runCli("--workload=lu --lifeguard=taintcheck --cores=2 "
                     "--scale=800 --record=" +
                         trace.path(),
                     rec),
              0)
        << rec;
    EXPECT_NE(rec.find("shadow fingerprint"), std::string::npos) << rec;

    const std::string flags =
        "--replay=" + trace.path() + " --lifeguard=all --json";
    std::string seq, par;
    ASSERT_EQ(runCli(flags + " --jobs=1", seq), 0) << seq;
    ASSERT_EQ(runCli(flags + " --jobs=4", par), 0) << par;
    EXPECT_EQ(stripHostLines(seq), stripHostLines(par));
    EXPECT_EQ(std::count(seq.begin(), seq.end(), '{'),
              std::count(seq.begin(), seq.end(), '}'));
    // Four replay cells, each carrying a fingerprint; the scenario
    // axes come from the recording.
    EXPECT_NE(seq.find("\"replay\":"), std::string::npos) << seq;
    EXPECT_EQ(countOccurrences(seq, "\"fingerprint\": \"0x"), 4u) << seq;
    EXPECT_EQ(countOccurrences(seq, "\"workload\": \"lu\""), 4u) << seq;
    EXPECT_EQ(countOccurrences(seq, "\"cores\": 2"), 4u) << seq;
    EXPECT_NE(seq.find("\"cells_failed\": 0"), std::string::npos) << seq;
}

TEST_F(CliEndToEnd, ReplayedFingerprintMatchesTheRecording)
{
    // The recorded run prints its fingerprint; the replay of the same
    // lifeguard must print the identical one (and pass its internal
    // bit-identical self-check to even get there).
    CliTraceFile trace("fp");
    std::string rec, rep;
    ASSERT_EQ(runCli("--workload=fmm --lifeguard=memcheck --cores=2 "
                     "--scale=600 --memory-model=tso --record=" +
                         trace.path(),
                     rec),
              0)
        << rec;
    ASSERT_EQ(runCli("--replay=" + trace.path(), rep), 0) << rep;

    auto fingerprint = [](const std::string &out) {
        std::size_t at = out.find("shadow fingerprint: ");
        return at == std::string::npos ? std::string()
                                       : out.substr(at, 38);
    };
    ASSERT_FALSE(fingerprint(rec).empty()) << rec;
    EXPECT_EQ(fingerprint(rec), fingerprint(rep)) << rec << rep;
}

TEST_F(CliEndToEnd, ReplayOfMissingOrBogusFileFailsCleanly)
{
    std::string out;
    EXPECT_EQ(runCli("--replay=/nonexistent/paralog.trace", out), 2)
        << out;
    EXPECT_NE(out.find("--replay"), std::string::npos) << out;

    // A file that is not a trace is rejected by the magic check.
    CliTraceFile bogus("bogus");
    std::FILE *f = std::fopen(bogus.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 8; ++i)
        std::fputs("this is not a paralog trace file at all.....", f);
    std::fclose(f);
    EXPECT_EQ(runCli("--replay=" + bogus.path(), out), 2) << out;
    EXPECT_NE(out.find("magic"), std::string::npos) << out;
}

// --------------------------------------------- interrupts and daemon

TEST_F(CliEndToEnd, SigintEmitsPartialCsvAndExits130)
{
    // First Ctrl-C mid-matrix: the cells already running finish, the
    // tail is skipped, the CSV carries an `# interrupted` marker, and
    // the driver exits 130. A big sequential matrix guarantees the
    // signal lands while most cells are still queued.
    const char *bin = std::getenv("PARALOG_CLI");
    ASSERT_NE(bin, nullptr);
    std::string cmd =
        std::string("'") + bin +
        "' --csv --workload=all --lifeguard=all --cores=2,4 "
        "--scale=1000000 --jobs=1 2>/dev/null & pid=$!; sleep 1; "
        "kill -INT $pid; wait $pid; echo \"EXIT:$?\"";
    FILE *pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, n);
    pclose(pipe);

    EXPECT_NE(out.find("EXIT:130"), std::string::npos) << out;
    EXPECT_NE(out.find("# interrupted:"), std::string::npos) << out;
    EXPECT_NE(out.find("cells skipped"), std::string::npos) << out;
    // The header still printed — the partial CSV is parseable.
    EXPECT_NE(out.find("workload,lifeguard,mode,cores"),
              std::string::npos)
        << out;
}

TEST_F(CliEndToEnd, SubmitWithoutDaemonFailsCleanly)
{
    // The client flags end to end, with no daemon listening: a clear
    // connect error on stderr and a non-zero exit, not a hang.
    CliTraceFile trace("nodaemon");
    std::FILE *f = std::fopen(trace.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("irrelevant: never read, connect fails first", f);
    std::fclose(f);

    std::string out;
    int rc = runCli("--submit=" + trace.path() +
                        " --socket=/nonexistent/paralogd.sock",
                    out);
    EXPECT_EQ(rc, 1) << out;
    EXPECT_NE(out.find("--submit"), std::string::npos) << out;
    EXPECT_NE(out.find("connect"), std::string::npos) << out;

    rc = runCli("--daemon-stats --socket=/nonexistent/paralogd.sock",
                out);
    EXPECT_EQ(rc, 1) << out;
    EXPECT_NE(out.find("--daemon-stats"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, ShadowShardsAreResultInvariant)
{
    // The sharded chunk table is invisible to simulated results: CSV
    // output is bit-identical for any shard count.
    const std::string flags = "--workload=lu --lifeguard=memcheck "
                              "--cores=2 --scale=2000 --csv";
    std::string one, eight;
    ASSERT_EQ(runCli(flags + " --shadow-shards=1", one), 0) << one;
    ASSERT_EQ(runCli(flags + " --shadow-shards=8", eight), 0) << eight;
    EXPECT_EQ(one, eight);
}

} // namespace
} // namespace paralog::cli
