/**
 * @file
 * Tests for the `paralog` scenario-matrix CLI: flag parsing units
 * (args.cpp is linked in directly) plus end-to-end subprocess runs of
 * the built driver binary, located via the PARALOG_CLI environment
 * variable that CMake sets on this test.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "cli/args.hpp"

namespace paralog::cli {
namespace {

ParseResult
parse(std::initializer_list<std::string_view> args)
{
    return parseArgs(std::vector<std::string_view>(args));
}

TEST(CliParse, DefaultsToSingleTaintcheckParallelRun)
{
    ParseResult r = parse({});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    auto scenarios = r.options.scenarios();
    ASSERT_EQ(scenarios.size(), 1u);
    EXPECT_EQ(scenarios[0].workload, WorkloadKind::kLu);
    EXPECT_EQ(scenarios[0].lifeguard, LifeguardKind::kTaintCheck);
    EXPECT_EQ(scenarios[0].mode, MonitorMode::kParallel);
    EXPECT_EQ(scenarios[0].cores, 4u);
    EXPECT_FALSE(r.options.csv);
}

TEST(CliParse, HelpShortCircuits)
{
    EXPECT_EQ(parse({"--help"}).status, ParseStatus::kHelp);
    EXPECT_EQ(parse({"-h"}).status, ParseStatus::kHelp);
    EXPECT_EQ(parse({"--workload=lu", "--help"}).status,
              ParseStatus::kHelp);
}

TEST(CliParse, UnknownFlagRejected)
{
    ParseResult r = parse({"--bogus=1"});
    ASSERT_EQ(r.status, ParseStatus::kError);
    EXPECT_NE(r.error.find("unknown flag"), std::string::npos);
    EXPECT_EQ(parse({"positional"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--csvv"}).status, ParseStatus::kError);
}

TEST(CliParse, ExistingFlagMisuseGetsSpecificError)
{
    // A valued flag without '=' must not claim the flag is unknown.
    ParseResult missing = parse({"--workload"});
    ASSERT_EQ(missing.status, ParseStatus::kError);
    EXPECT_NE(missing.error.find("requires a value"), std::string::npos);
    // A no-value flag with '=' likewise.
    ParseResult extra = parse({"--csv=on"});
    ASSERT_EQ(extra.status, ParseStatus::kError);
    EXPECT_NE(extra.error.find("takes no value"), std::string::npos);
}

TEST(CliParse, ValueParsers)
{
    WorkloadKind w;
    EXPECT_TRUE(parseWorkload("ocean", w));
    EXPECT_EQ(w, WorkloadKind::kOcean);
    EXPECT_FALSE(parseWorkload("OCEAN", w));
    EXPECT_FALSE(parseWorkload("", w));

    LifeguardKind lg;
    EXPECT_TRUE(parseLifeguard("lockset", lg));
    EXPECT_EQ(lg, LifeguardKind::kLockSet);
    EXPECT_FALSE(parseLifeguard("valgrind", lg));

    MonitorMode m;
    EXPECT_TRUE(parseMode("none", m));
    EXPECT_EQ(m, MonitorMode::kNoMonitoring);
    EXPECT_TRUE(parseMode("timesliced", m));
    EXPECT_EQ(m, MonitorMode::kTimesliced);

    bool b;
    EXPECT_TRUE(parseBool("on", b));
    EXPECT_TRUE(b);
    EXPECT_TRUE(parseBool("0", b));
    EXPECT_FALSE(b);
    EXPECT_FALSE(parseBool("maybe", b));
}

TEST(CliParse, CommaListsAndAll)
{
    ParseResult r = parse({"--workload=lu,ocean", "--lifeguard=all",
                           "--mode=none,parallel", "--cores=1,2,4,8"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    EXPECT_EQ(r.options.workloads.size(), 2u);
    EXPECT_EQ(r.options.lifeguards.size(), 4u);
    EXPECT_EQ(r.options.modes.size(), 2u);
    EXPECT_EQ(r.options.cores.size(), 4u);
    // Full cross product for parallel (2 * 4 * 4 = 32), but the
    // no-monitoring baseline runs once per (workload, cores), not once
    // per lifeguard: + 2 * 4 = 8.
    EXPECT_EQ(r.options.scenarios().size(), 40u);

    // Duplicates collapse.
    ParseResult dup = parse({"--workload=lu,lu,lu"});
    ASSERT_EQ(dup.status, ParseStatus::kOk);
    EXPECT_EQ(dup.options.workloads.size(), 1u);
}

TEST(CliParse, NoMonitoringScenariosNotRepeatedPerLifeguard)
{
    ParseResult r = parse({"--lifeguard=all", "--mode=none"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    // One baseline run, not four identical ones.
    EXPECT_EQ(r.options.scenarios().size(), 1u);
}

TEST(CliParse, BadListValuesRejected)
{
    EXPECT_EQ(parse({"--workload=lu,bogus"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--workload="}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--workload=lu,"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--cores=0"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--cores=17"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--cores=two"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--scale=0"}).status, ParseStatus::kError);
    EXPECT_EQ(parse({"--scale=-5"}).status, ParseStatus::kError);
}

TEST(CliParse, PlatformKnobs)
{
    ParseResult r = parse({"--accel=off", "--dep-tracking=per-core",
                           "--memory-model=tso", "--conflict-alerts=off",
                           "--scale=1234", "--seed=7",
                           "--log-buffer=4096", "--csv"});
    ASSERT_EQ(r.status, ParseStatus::kOk);
    ExperimentOptions o = r.options.experimentOptions();
    EXPECT_FALSE(o.accelerators);
    EXPECT_EQ(o.depTracking, DepTracking::kPerCore);
    EXPECT_EQ(o.memoryModel, MemoryModel::kTSO);
    EXPECT_FALSE(o.conflictAlerts);
    EXPECT_EQ(o.scale, 1234u);
    EXPECT_EQ(o.seed, 7u);
    EXPECT_EQ(o.logBufferBytes, 4096u);
    EXPECT_TRUE(r.options.csv);
}

TEST(CliParse, TimeslicedTsoComboRejected)
{
    ParseResult r =
        parse({"--mode=timesliced", "--memory-model=tso"});
    ASSERT_EQ(r.status, ParseStatus::kError);
    EXPECT_NE(r.error.find("incompatible"), std::string::npos);
    // ... even when timesliced arrives via a list or `all`.
    EXPECT_EQ(parse({"--mode=all", "--memory-model=tso"}).status,
              ParseStatus::kError);
    // Parallel TSO stays legal.
    EXPECT_EQ(parse({"--mode=parallel", "--memory-model=tso"}).status,
              ParseStatus::kOk);
}

TEST(CliParse, LockSetTsoComboAccepted)
{
    // The versioning protocol now orders read-side metadata writers,
    // so the historical lockset+tso refusal is gone: the full
    // lifeguard x memory-model matrix parses.
    EXPECT_EQ(parse({"--lifeguard=lockset", "--memory-model=tso"}).status,
              ParseStatus::kOk);
    EXPECT_EQ(parse({"--lifeguard=all", "--memory-model=tso"}).status,
              ParseStatus::kOk);
    EXPECT_EQ(parse({"--lifeguard=lockset", "--memory-model=sc"}).status,
              ParseStatus::kOk);
}

// ------------------------------------------------------- end-to-end runs

/** Run the built driver; returns its exit code, fills @p output. */
int
runCli(const std::string &flags, std::string &output)
{
    const char *bin = std::getenv("PARALOG_CLI");
    if (!bin) {
        ADD_FAILURE() << "PARALOG_CLI not set";
        return -1;
    }
    std::string cmd = "'" + std::string(bin) + "' " + flags + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return -1;
    }
    output.clear();
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliEndToEnd : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!std::getenv("PARALOG_CLI"))
            GTEST_SKIP() << "PARALOG_CLI not set (run under CTest)";
    }
};

TEST_F(CliEndToEnd, CsvRunPrintsHeaderAndRow)
{
    std::string out;
    int rc = runCli("--workload=lu --lifeguard=taintcheck "
                    "--mode=parallel --cores=2 --scale=3000 --csv",
                    out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("workload,lifeguard,mode,cores"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("violations,versions_produced,versions_consumed,"
                       "version_stalls"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("lu,taintcheck,parallel,2,on,per-block,sc,3000"),
              std::string::npos)
        << out;
}

TEST_F(CliEndToEnd, LockSetTsoRunsToCompletion)
{
    // End-to-end proof of the lifted gate: the once-deadlocking
    // combination completes through the driver in well under the test
    // timeout, and reports its versioning-protocol counters.
    std::string out;
    int rc = runCli("--workload=lu --lifeguard=lockset --mode=parallel "
                    "--memory-model=tso --cores=4 --scale=400",
                    out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("total cycles"), std::string::npos) << out;
    EXPECT_NE(out.find("versions:"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, TextRunPrintsStats)
{
    std::string out;
    int rc = runCli("--workload=blackscholes --mode=none --cores=1 "
                    "--scale=3000",
                    out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("total cycles"), std::string::npos) << out;
    EXPECT_NE(out.find("blackscholes"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, HelpExitsZeroWithUsage)
{
    std::string out;
    EXPECT_EQ(runCli("--help", out), 0);
    EXPECT_NE(out.find("Usage: paralog"), std::string::npos);
}

TEST_F(CliEndToEnd, InvalidFlagExitsNonZeroWithUsage)
{
    std::string out;
    int rc = runCli("--workload=nosuchbench", out);
    EXPECT_EQ(rc, 2) << out;
    EXPECT_NE(out.find("Usage: paralog"), std::string::npos) << out;
}

TEST_F(CliEndToEnd, InvalidComboExitsNonZeroWithUsage)
{
    std::string out;
    int rc = runCli("--mode=timesliced --memory-model=tso", out);
    EXPECT_EQ(rc, 2) << out;
    EXPECT_NE(out.find("incompatible"), std::string::npos) << out;
}

} // namespace
} // namespace paralog::cli
