/**
 * @file
 * Analysis-equivalence tests: for race-free workloads, the lifeguard's
 * final metadata conclusions must be *identical* across every platform
 * configuration — parallel vs timesliced, accelerators on vs off,
 * per-block vs per-core dependence tracking, SC vs TSO. The mechanisms
 * under test are transparent to the analysis; only performance may
 * differ.
 */

#include <gtest/gtest.h>

#include "harness/paralog_test.hpp"
#include "lifeguard/taintcheck.hpp"

namespace paralog {
namespace {

/** Hash the tainted state over the workload's global data region. */
std::uint64_t
taintFingerprint(const TaintCheck &lg, Addr base, std::uint64_t bytes)
{
    return test::shadowFingerprint(lg.shadow(), base, bytes);
}

struct RunCfg
{
    MonitorMode mode;
    bool accel;
    DepTracking dep;
    MemoryModel mem;
    const char *label;
};

class EquivalenceTest : public test::QuietTestWithParam<WorkloadKind>
{
  protected:
    std::uint64_t
    runFingerprint(const RunCfg &s)
    {
        ExperimentOptions o;
        o.scale = 6000;
        o.accelerators = s.accel;
        o.depTracking = s.dep;
        o.memoryModel = s.mem;
        PlatformConfig cfg = makeConfig(GetParam(),
                                        LifeguardKind::kTaintCheck,
                                        s.mode, 4, o);
        if (s.mode == MonitorMode::kTimesliced) {
            cfg.sim.memoryModel = MemoryModel::kSC;
            Timesliced ts(cfg);
            ts.run();
            auto &lg = static_cast<TaintCheck &>(ts.lifeguard());
            return taintFingerprint(lg, AddressLayout::kGlobalBase,
                                    1 << 18);
        }
        Platform p(cfg);
        p.run();
        auto &lg = static_cast<TaintCheck &>(p.lifeguard());
        return taintFingerprint(lg, AddressLayout::kGlobalBase, 1 << 18);
    }
};

TEST_P(EquivalenceTest, AllConfigurationsAgree)
{
    const RunCfg setups[] = {
        {MonitorMode::kParallel, true, DepTracking::kPerBlock,
         MemoryModel::kSC, "parallel+accel"},
        {MonitorMode::kParallel, false, DepTracking::kPerBlock,
         MemoryModel::kSC, "parallel-accel"},
        {MonitorMode::kParallel, true, DepTracking::kPerCore,
         MemoryModel::kSC, "parallel+percore"},
        {MonitorMode::kTimesliced, true, DepTracking::kPerBlock,
         MemoryModel::kSC, "timesliced"},
    };
    std::uint64_t reference = runFingerprint(setups[0]);
    for (const RunCfg &s : setups) {
        EXPECT_EQ(runFingerprint(s), reference)
            << toString(GetParam()) << " config " << s.label
            << " diverged from parallel+accel";
    }
}

// Deterministic, race-free workloads only: racy benchmarks (BARNES's
// force write-backs) legitimately produce interleaving-dependent
// metadata, and TSO reorders rack-free... LU/OCEAN/BLACKSCHOLES have a
// unique data-race-free outcome.
INSTANTIATE_TEST_SUITE_P(
    RaceFree, EquivalenceTest,
    ::testing::Values(WorkloadKind::kLu, WorkloadKind::kOcean,
                      WorkloadKind::kBlackscholes),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        std::string name = toString(info.param);
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(EquivalenceTso, RaceFreeWorkloadsAgreeUnderTso)
{
    setQuiet(true);
    for (WorkloadKind w :
         {WorkloadKind::kLu, WorkloadKind::kBlackscholes}) {
        std::uint64_t fp[2];
        int i = 0;
        for (MemoryModel m : {MemoryModel::kSC, MemoryModel::kTSO}) {
            ExperimentOptions o;
            o.scale = 6000;
            o.memoryModel = m;
            PlatformConfig cfg = makeConfig(w, LifeguardKind::kTaintCheck,
                                            MonitorMode::kParallel, 4, o);
            Platform p(cfg);
            p.run();
            auto &lg = static_cast<TaintCheck &>(p.lifeguard());
            fp[i++] = taintFingerprint(lg, AddressLayout::kGlobalBase,
                                       1 << 18);
        }
        EXPECT_EQ(fp[0], fp[1]) << toString(w) << ": TSO diverged";
    }
}

} // namespace
} // namespace paralog
