/** @file Unit tests for the stream compressor model and its byte codec
 *  (encode through StreamCompressor, decode through the trace-layer
 *  RecordDecoder; the modeled sizes and the emitted bytes come from one
 *  code path, and decode(encode(r)) must reproduce r exactly). */

#include <gtest/gtest.h>

#include "capture/compressor.hpp"
#include "common/rng.hpp"
#include "trace/codec.hpp"

namespace paralog {
namespace {

EventRecord
loadAt(Addr addr)
{
    EventRecord r;
    r.type = EventType::kLoad;
    r.addr = addr;
    r.size = 8;
    return r;
}

TEST(Compressor, StridedLoadsApproachOneByte)
{
    StreamCompressor c;
    for (Addr a = 0x1000; a < 0x1000 + 8 * 1000; a += 8)
        c.encode(loadAt(a));
    // After the predictor locks on, every strided load is 1 byte.
    EXPECT_LT(c.averageBytes(), 1.1);
}

TEST(Compressor, RegisterOpsAreOneByte)
{
    StreamCompressor c;
    EventRecord r;
    r.type = EventType::kMovRR;
    EXPECT_EQ(c.encode(r), 1u);
    r.type = EventType::kAlu;
    EXPECT_EQ(c.encode(r), 1u);
}

TEST(Compressor, RandomAddressesCostMore)
{
    StreamCompressor strided, random;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        strided.encode(loadAt(0x1000 + 8 * i));
        random.encode(loadAt(rng.next() & 0xFFFFFFFFF8ULL));
    }
    EXPECT_GT(random.averageBytes(), strided.averageBytes() + 1.0);
}

TEST(Compressor, ArcsAddBytes)
{
    StreamCompressor c;
    EventRecord plain = loadAt(0x1000);
    std::uint32_t base = c.encode(plain);
    EventRecord with_arc = loadAt(0x1008);
    with_arc.arcs.push_back(DepArc{1, 100});
    EXPECT_GT(c.encode(with_arc), base - 1); // arc payload present
    EventRecord strided = loadAt(0x1010);
    std::uint32_t after = c.encode(strided);
    EXPECT_LT(after, 3u); // predictor state survived the arc record
}

TEST(Compressor, HighLevelRecordsCarryRanges)
{
    StreamCompressor c;
    EventRecord m;
    m.type = EventType::kMallocEnd;
    m.range = AddrRange{0x10000, 0x10400};
    EXPECT_GT(c.encode(m), 2u);
}

TEST(Compressor, DeterministicAcrossInstances)
{
    StreamCompressor a, b;
    Rng rng(42);
    for (int i = 0; i < 500; ++i) {
        EventRecord r = loadAt(0x1000 + (rng.next() & 0xFFF8));
        EXPECT_EQ(a.encode(r), b.encode(r));
    }
    EXPECT_EQ(a.totalBytes(), b.totalBytes());
}

TEST(Compressor, ResetClearsState)
{
    StreamCompressor c;
    c.encode(loadAt(0x1000));
    c.reset();
    EXPECT_EQ(c.totalRecords(), 0u);
    EXPECT_EQ(c.totalBytes(), 0u);
}

// ----------------------- encode/decode round trip (trace codec) -----

/** Field-by-field equality (EventRecord has no operator==). */
void
expectRecordEq(const EventRecord &got, const EventRecord &want,
               const std::string &ctx)
{
    EXPECT_EQ(got.type, want.type) << ctx;
    EXPECT_EQ(got.rid, want.rid) << ctx;
    EXPECT_EQ(got.dst, want.dst) << ctx;
    EXPECT_EQ(got.src, want.src) << ctx;
    EXPECT_EQ(got.size, want.size) << ctx;
    EXPECT_EQ(got.addr, want.addr) << ctx;
    EXPECT_EQ(got.value, want.value) << ctx;
    EXPECT_EQ(got.range, want.range) << ctx;
    EXPECT_EQ(got.syscall, want.syscall) << ctx;
    EXPECT_EQ(got.caKind, want.caKind) << ctx;
    EXPECT_EQ(got.caSeq, want.caSeq) << ctx;
    EXPECT_EQ(got.arcs, want.arcs) << ctx;
    EXPECT_EQ(got.version, want.version) << ctx;
    EXPECT_EQ(got.consumesVersion, want.consumesVersion) << ctx;
    EXPECT_EQ(got.wrapper, want.wrapper) << ctx;
}

/**
 * Round-trip a stream of records: encode each through one
 * StreamCompressor (payload bytes + sideband), decode through one
 * RecordDecoder, and additionally run an encoder WITHOUT a sink to
 * prove the emitted byte counts equal the legacy modeled sizes.
 */
void
roundTripStream(const std::vector<EventRecord> &stream)
{
    StreamCompressor enc, legacy;
    trace::RecordDecoder dec;
    RecordId enc_last_rid = 0;
    std::uint64_t decoded_bytes = 0;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const EventRecord &rec = stream[i];
        std::string ctx = std::string("record ") + std::to_string(i) +
                          " (" + toString(rec.type) + ")";

        std::vector<std::uint8_t> bytes;
        trace::encodeSideband(rec, enc_last_rid, bytes);
        std::size_t sideband_len = bytes.size();
        std::uint32_t emitted = enc.encode(rec, &bytes);
        std::uint32_t modeled = legacy.encode(rec);

        // The emitted payload is exactly the modeled size.
        EXPECT_EQ(emitted, modeled) << ctx;
        ASSERT_EQ(bytes.size() - sideband_len, modeled) << ctx;

        EventRecord back;
        ByteCursor c(bytes.data(), bytes.size());
        ASSERT_TRUE(dec.decode(c, emitted, back)) << ctx;
        EXPECT_TRUE(c.atEnd()) << ctx;
        expectRecordEq(back, rec, ctx);
        decoded_bytes += emitted;
    }
    EXPECT_EQ(decoded_bytes, legacy.totalBytes());
    EXPECT_EQ(enc.totalBytes(), legacy.totalBytes());
}

/** A representative record of @p type at @p addr with rich fields. */
EventRecord
recordOf(EventType type, Addr addr, RecordId rid)
{
    EventRecord r;
    r.type = type;
    r.tid = 0;
    r.rid = rid;
    r.addr = 0;
    switch (type) {
      case EventType::kLoad:
      case EventType::kStore:
        r.addr = addr;
        r.size = 8;
        r.dst = 3;
        r.src = 5;
        break;
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
        r.addr = addr;
        break;
      case EventType::kBarrierPass:
        r.addr = addr;
        r.value = rid & 1; // both phases
        break;
      case EventType::kMallocEnd:
      case EventType::kFreeBegin:
        r.range = AddrRange{addr, addr + 256};
        r.caSeq = 11;
        break;
      case EventType::kSyscallBegin:
      case EventType::kSyscallEnd:
        r.range = AddrRange{addr, addr + 64};
        r.syscall = SyscallKind::kRead;
        break;
      case EventType::kCaBegin:
      case EventType::kCaEnd:
        r.range = AddrRange{addr, addr + 128};
        r.value = 9; // CA sequence
        r.caKind = HighLevelKind::kFreeBegin;
        break;
      case EventType::kProduceVersion:
        r.addr = addr;
        r.size = 4;
        r.value = 17; // producing store rid
        r.version = VersionTag{1, 17};
        break;
      case EventType::kMovImm:
      case EventType::kThreadSwitch:
        r.value = 42;
        break;
      case EventType::kJump:
        r.src = 7;
        r.value = 0xBEEF;
        break;
      default:
        break;
    }
    return r;
}

TEST(CodecRoundTrip, EveryEventTypeHitAndMiss)
{
    // For every type: a cold predictor (miss, raw addr), a second
    // access establishing the stride, and a third hitting it — plus
    // the no-address types riding along. One shared stream, so the
    // decoder predictors track the encoder's across all of it.
    std::vector<EventRecord> stream;
    RecordId rid = 0;
    for (unsigned t = static_cast<unsigned>(EventType::kLoad);
         t <= static_cast<unsigned>(EventType::kProduceVersion); ++t) {
        EventType type = static_cast<EventType>(t);
        for (Addr step = 0; step < 3; ++step)
            stream.push_back(
                recordOf(type, 0x40000 + 0x1000 * t + 64 * step, rid++));
    }
    roundTripStream(stream);
}

TEST(CodecRoundTrip, ArcsVersionsAndFlags)
{
    std::vector<EventRecord> stream;
    EventRecord ld = recordOf(EventType::kLoad, 0x1000, 5);
    ld.arcs.push_back(DepArc{1, 100});
    ld.arcs.push_back(DepArc{3, 70000}); // multi-byte varint rid
    ld.consumesVersion = true;
    ld.version = VersionTag{2, 1234};
    stream.push_back(ld);

    EventRecord st = recordOf(EventType::kStore, 0x2000, 6);
    st.wrapper = true;
    stream.push_back(st);

    EventRecord sys = recordOf(EventType::kSyscallEnd, 0x3000, 7);
    sys.syscall = SyscallKind::kWrite;
    stream.push_back(sys);

    // CA records share the rid of the preceding record (delta 0).
    EventRecord ca = recordOf(EventType::kCaBegin, 0x3100, 7);
    stream.push_back(ca);

    roundTripStream(stream);
}

TEST(CodecRoundTrip, RandomizedStream)
{
    Rng rng(1234);
    std::vector<EventRecord> stream;
    RecordId rid = 0;
    for (int i = 0; i < 2000; ++i) {
        unsigned t = static_cast<unsigned>(EventType::kLoad) +
                     static_cast<unsigned>(
                         rng.next() %
                         static_cast<unsigned>(EventType::kProduceVersion));
        rid += rng.next() % 3;
        EventRecord r = recordOf(static_cast<EventType>(t),
                                 rng.next() & 0xFFFFF8, rid);
        if (rng.next() % 4 == 0)
            r.arcs.push_back(
                DepArc{static_cast<ThreadId>(rng.next() % 8),
                       rng.next() % 100000});
        stream.push_back(r);
    }
    roundTripStream(stream);
}

TEST(Compressor, RealisticMixUnderTwoBytes)
{
    // The LBA claim: ~1 byte per record on average for real streams.
    // A realistic mix (strided loads/stores, register ops) must stay
    // well under 2 bytes per record.
    StreamCompressor c;
    for (int i = 0; i < 2000; ++i) {
        c.encode(loadAt(0x1000 + 8 * (i % 64)));
        EventRecord alu;
        alu.type = EventType::kAlu;
        c.encode(alu);
        EventRecord st;
        st.type = EventType::kStore;
        st.addr = 0x8000 + 8 * (i % 64);
        st.size = 8;
        c.encode(st);
        EventRecord mov;
        mov.type = EventType::kMovRR;
        c.encode(mov);
    }
    EXPECT_LT(c.averageBytes(), 1.6);
}

} // namespace
} // namespace paralog
