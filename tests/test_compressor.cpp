/** @file Unit tests for the stream compressor model. */

#include <gtest/gtest.h>

#include "capture/compressor.hpp"
#include "common/rng.hpp"

namespace paralog {
namespace {

EventRecord
loadAt(Addr addr)
{
    EventRecord r;
    r.type = EventType::kLoad;
    r.addr = addr;
    r.size = 8;
    return r;
}

TEST(Compressor, StridedLoadsApproachOneByte)
{
    StreamCompressor c;
    for (Addr a = 0x1000; a < 0x1000 + 8 * 1000; a += 8)
        c.encode(loadAt(a));
    // After the predictor locks on, every strided load is 1 byte.
    EXPECT_LT(c.averageBytes(), 1.1);
}

TEST(Compressor, RegisterOpsAreOneByte)
{
    StreamCompressor c;
    EventRecord r;
    r.type = EventType::kMovRR;
    EXPECT_EQ(c.encode(r), 1u);
    r.type = EventType::kAlu;
    EXPECT_EQ(c.encode(r), 1u);
}

TEST(Compressor, RandomAddressesCostMore)
{
    StreamCompressor strided, random;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        strided.encode(loadAt(0x1000 + 8 * i));
        random.encode(loadAt(rng.next() & 0xFFFFFFFFF8ULL));
    }
    EXPECT_GT(random.averageBytes(), strided.averageBytes() + 1.0);
}

TEST(Compressor, ArcsAddBytes)
{
    StreamCompressor c;
    EventRecord plain = loadAt(0x1000);
    std::uint32_t base = c.encode(plain);
    EventRecord with_arc = loadAt(0x1008);
    with_arc.arcs.push_back(DepArc{1, 100});
    EXPECT_GT(c.encode(with_arc), base - 1); // arc payload present
    EventRecord strided = loadAt(0x1010);
    std::uint32_t after = c.encode(strided);
    EXPECT_LT(after, 3u); // predictor state survived the arc record
}

TEST(Compressor, HighLevelRecordsCarryRanges)
{
    StreamCompressor c;
    EventRecord m;
    m.type = EventType::kMallocEnd;
    m.range = AddrRange{0x10000, 0x10400};
    EXPECT_GT(c.encode(m), 2u);
}

TEST(Compressor, DeterministicAcrossInstances)
{
    StreamCompressor a, b;
    Rng rng(42);
    for (int i = 0; i < 500; ++i) {
        EventRecord r = loadAt(0x1000 + (rng.next() & 0xFFF8));
        EXPECT_EQ(a.encode(r), b.encode(r));
    }
    EXPECT_EQ(a.totalBytes(), b.totalBytes());
}

TEST(Compressor, ResetClearsState)
{
    StreamCompressor c;
    c.encode(loadAt(0x1000));
    c.reset();
    EXPECT_EQ(c.totalRecords(), 0u);
    EXPECT_EQ(c.totalBytes(), 0u);
}

TEST(Compressor, RealisticMixUnderTwoBytes)
{
    // The LBA claim: ~1 byte per record on average for real streams.
    // A realistic mix (strided loads/stores, register ops) must stay
    // well under 2 bytes per record.
    StreamCompressor c;
    for (int i = 0; i < 2000; ++i) {
        c.encode(loadAt(0x1000 + 8 * (i % 64)));
        EventRecord alu;
        alu.type = EventType::kAlu;
        c.encode(alu);
        EventRecord st;
        st.type = EventType::kStore;
        st.addr = 0x8000 + 8 * (i % 64);
        st.size = 8;
        c.encode(st);
        EventRecord mov;
        mov.type = EventType::kMovRR;
        c.encode(mov);
    }
    EXPECT_LT(c.averageBytes(), 1.6);
}

} // namespace
} // namespace paralog
