/**
 * @file
 * Integration tests: the full ParaLog platform running real workloads,
 * checking both performance-model sanity and monitoring correctness
 * (shadow state consistency, ordering, ConflictAlert effects).
 */

#include <gtest/gtest.h>

#include "harness/paralog_test.hpp"
#include "lifeguard/addrcheck.hpp"
#include "lifeguard/taintcheck.hpp"

namespace paralog {
namespace {

class PlatformTest : public test::QuietTest
{
};

TEST_F(PlatformTest, NoMonitoringCompletes)
{
    RunResult r = runExperiment(WorkloadKind::kLu,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kNoMonitoring, 2, opts());
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_EQ(r.lifeguard.size(), 0u);
    EXPECT_GT(r.retiredTotal(), 1000u);
}

TEST_F(PlatformTest, ParallelMonitoringCompletesAndConsumesAll)
{
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, opts());
    Platform p(cfg);
    RunResult r = p.run();
    EXPECT_GT(r.totalCycles, 0u);
    ASSERT_EQ(r.lifeguard.size(), 2u);
    for (ThreadId t = 0; t < 2; ++t) {
        EXPECT_TRUE(p.capture(t).consumerEmpty())
            << "lifeguard " << t << " left records unprocessed";
    }
    // Lifeguards must have seen the thread-done records.
    for (const auto &l : r.lifeguard)
        EXPECT_GT(l.recordsProcessed, 100u);
}

TEST_F(PlatformTest, MonitoringDoesNotPerturbApplication)
{
    // The application must compute the same thing with and without
    // monitoring: same program instruction counts.
    RunResult none = runExperiment(WorkloadKind::kOcean,
                                   LifeguardKind::kTaintCheck,
                                   MonitorMode::kNoMonitoring, 2, opts());
    RunResult mon = runExperiment(WorkloadKind::kOcean,
                                  LifeguardKind::kTaintCheck,
                                  MonitorMode::kParallel, 2, opts());
    EXPECT_EQ(none.retiredTotal(), mon.retiredTotal());
}

TEST_F(PlatformTest, MonitoringAddsBoundedOverhead)
{
    RunResult none = runExperiment(WorkloadKind::kLu,
                                   LifeguardKind::kTaintCheck,
                                   MonitorMode::kNoMonitoring, 2, opts());
    RunResult mon = runExperiment(WorkloadKind::kLu,
                                  LifeguardKind::kTaintCheck,
                                  MonitorMode::kParallel, 2, opts());
    EXPECT_GE(mon.totalCycles, none.totalCycles);
    EXPECT_LT(mon.totalCycles, none.totalCycles * 5);
}

TEST_F(PlatformTest, ParallelScalesWithThreads)
{
    ExperimentOptions o = opts(20000);
    RunResult r1 = runExperiment(WorkloadKind::kBlackscholes,
                                 LifeguardKind::kTaintCheck,
                                 MonitorMode::kParallel, 1, o);
    RunResult r4 = runExperiment(WorkloadKind::kBlackscholes,
                                 LifeguardKind::kTaintCheck,
                                 MonitorMode::kParallel, 4, o);
    // Strong scaling: 4 threads should be at least 2x faster.
    EXPECT_LT(r4.totalCycles * 2, r1.totalCycles);
}

TEST_F(PlatformTest, TaintPropagatesAcrossThreads)
{
    // LU: thread 0's syscallRead taints row 0; elimination propagates
    // pivot-row data into other rows via other threads, so taint must
    // appear in memory written by threads other than 0.
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, opts());
    Platform p(cfg);
    p.run();
    auto &taint = static_cast<TaintCheck &>(p.lifeguard());
    // The first matrix row was tainted by the syscall...
    EXPECT_TRUE(taint.isTainted(AddressLayout::kGlobalBase, 64));
    // ...and elimination pass 0 copies pivot row 0 into rows > 0,
    // which are updated by *both* threads.
    std::uint64_t n = 96;
    bool propagated = false;
    for (std::uint64_t i = 1; i < 8 && !propagated; ++i) {
        Addr row_i = AddressLayout::kGlobalBase + i * n * 8;
        propagated = taint.isTainted(row_i + 8, 8 * 16);
    }
    EXPECT_TRUE(propagated);
}

TEST_F(PlatformTest, AddrCheckShadowMatchesHeap)
{
    PlatformConfig cfg = makeConfig(WorkloadKind::kSwaptions,
                                    LifeguardKind::kAddrCheck,
                                    MonitorMode::kParallel, 2, opts());
    Platform p(cfg);
    p.run();
    auto &ac = static_cast<AddrCheck &>(p.lifeguard());
    // No violations on a correct program.
    EXPECT_EQ(ac.violations.count(), 0u);
    // Final shadow state: allocated bytes marked, freed bytes cleared.
    Heap &heap = p.heap();
    EXPECT_GT(heap.stats.get("allocs"), 10u);
}

TEST_F(PlatformTest, CorrectProgramsRaiseNoViolations)
{
    for (WorkloadKind w : {WorkloadKind::kOcean, WorkloadKind::kFmm,
                           WorkloadKind::kRadiosity}) {
        RunResult r = runExperiment(w, LifeguardKind::kAddrCheck,
                                    MonitorMode::kParallel, 2, opts());
        EXPECT_EQ(r.violationCount, 0u) << toString(w);
    }
}

TEST_F(PlatformTest, ConflictAlertsIssuedForSwaptions)
{
    PlatformConfig cfg = makeConfig(WorkloadKind::kSwaptions,
                                    LifeguardKind::kAddrCheck,
                                    MonitorMode::kParallel, 2, opts());
    Platform p(cfg);
    p.run();
    // Every malloc and free broadcasts (AddrCheck subscribes to both).
    std::uint64_t pairs = p.heap().stats.get("allocs") +
                          p.heap().stats.get("frees");
    EXPECT_EQ(p.caManager().issued(), pairs);
    EXPECT_EQ(p.caManager().liveBroadcasts(), 0u); // all retired
}

TEST_F(PlatformTest, AddrCheckSkipsSyscallAlerts)
{
    // AddrCheck's policy does not subscribe to syscall CAs; LU issues a
    // syscall but no malloc/frees, so no broadcasts at all.
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kAddrCheck,
                                    MonitorMode::kParallel, 2, opts());
    Platform p(cfg);
    p.run();
    EXPECT_EQ(p.caManager().issued(), 0u);
}

TEST_F(PlatformTest, DeterministicAcrossRuns)
{
    RunResult a = runExperiment(WorkloadKind::kBarnes,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 2, opts());
    RunResult b = runExperiment(WorkloadKind::kBarnes,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 2, opts());
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.retiredTotal(), b.retiredTotal());
    EXPECT_EQ(a.eventsHandledTotal(), b.eventsHandledTotal());
}

TEST_F(PlatformTest, SeedChangesExecution)
{
    ExperimentOptions o1 = opts();
    ExperimentOptions o2 = opts();
    o2.seed = 99;
    RunResult a = runExperiment(WorkloadKind::kBarnes,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 2, o1);
    RunResult b = runExperiment(WorkloadKind::kBarnes,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 2, o2);
    EXPECT_NE(a.totalCycles, b.totalCycles);
}

TEST_F(PlatformTest, AcceleratorsReduceDeliveredEvents)
{
    ExperimentOptions with = opts();
    ExperimentOptions without = opts();
    without.accelerators = false;
    RunResult r_with = runExperiment(WorkloadKind::kLu,
                                     LifeguardKind::kTaintCheck,
                                     MonitorMode::kParallel, 2, with);
    RunResult r_without = runExperiment(WorkloadKind::kLu,
                                        LifeguardKind::kTaintCheck,
                                        MonitorMode::kParallel, 2,
                                        without);
    EXPECT_LT(r_with.eventsHandledTotal() * 2,
              r_without.eventsHandledTotal());
    EXPECT_LT(r_with.totalCycles, r_without.totalCycles);
}

TEST_F(PlatformTest, AcceleratorsPreserveAnalysisResults)
{
    // Metadata conclusions must be identical with and without the
    // accelerators (they are transparent optimizations).
    for (bool accel : {true, false}) {
        ExperimentOptions o = opts();
        o.accelerators = accel;
        PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                        LifeguardKind::kTaintCheck,
                                        MonitorMode::kParallel, 2, o);
        Platform p(cfg);
        RunResult r = p.run();
        auto &taint = static_cast<TaintCheck &>(p.lifeguard());
        EXPECT_TRUE(taint.isTainted(AddressLayout::kGlobalBase, 64));
        EXPECT_EQ(r.violationCount, 0u);
    }
}

TEST_F(PlatformTest, PerCoreTrackingStillCorrect)
{
    ExperimentOptions o = opts();
    o.depTracking = DepTracking::kPerCore;
    RunResult r = runExperiment(WorkloadKind::kOcean,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 4, o);
    EXPECT_EQ(r.violationCount, 0u);
    EXPECT_GT(r.totalCycles, 0u);
}

TEST_F(PlatformTest, LogBufferBackpressure)
{
    // A tiny log buffer forces application stalls but not incorrectness.
    ExperimentOptions o = opts(4000);
    o.logBufferBytes = 256;
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, o);
    Platform p(cfg);
    RunResult r = p.run();
    Cycle log_stall = 0;
    for (const auto &a : r.app)
        log_stall += a.logFullStall;
    EXPECT_GT(log_stall, 0u);
    auto &taint = static_cast<TaintCheck &>(p.lifeguard());
    EXPECT_TRUE(taint.isTainted(AddressLayout::kGlobalBase, 64));
}

TEST_F(PlatformTest, MemCheckRunsCleanOnInitializingWorkload)
{
    PlatformConfig cfg = makeConfig(WorkloadKind::kFmm,
                                    LifeguardKind::kMemCheck,
                                    MonitorMode::kParallel, 2, opts());
    Platform p(cfg);
    RunResult r = p.run();
    // FMM initializes its particle arrays before reading them.
    EXPECT_EQ(r.violationCount, 0u);
}

TEST_F(PlatformTest, LockSetCleanOnLockedWorkload)
{
    // Fluidanimate guards every shared cell access with its cell lock.
    PlatformConfig cfg = makeConfig(WorkloadKind::kFluidanimate,
                                    LifeguardKind::kLockSet,
                                    MonitorMode::kParallel, 2, opts());
    Platform p(cfg);
    RunResult r = p.run();
    EXPECT_EQ(r.violationCount, 0u);
}

TEST_F(PlatformTest, LockSetFlagsRacyWorkload)
{
    // Barnes performs intentionally racy force write-backs.
    PlatformConfig cfg = makeConfig(WorkloadKind::kBarnes,
                                    LifeguardKind::kLockSet,
                                    MonitorMode::kParallel, 4, opts());
    Platform p(cfg);
    RunResult r = p.run();
    EXPECT_GT(r.violationCount, 0u);
}

} // namespace
} // namespace paralog
