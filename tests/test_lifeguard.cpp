/**
 * @file
 * Unit tests for the lifeguards: shadow memory, TaintCheck propagation,
 * AddrCheck allocation tracking, MemCheck, LockSet.
 */

#include <gtest/gtest.h>

#include "lifeguard/addrcheck.hpp"
#include "lifeguard/lockset.hpp"
#include "lifeguard/memcheck.hpp"
#include "lifeguard/taintcheck.hpp"

namespace paralog {
namespace {

// ---------- ShadowMemory ----------

class ShadowParam : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ShadowParam, ReadWriteRoundTrip)
{
    ShadowMemory s(GetParam());
    std::uint8_t max = static_cast<std::uint8_t>((1u << GetParam()) - 1);
    s.write(0x1000, max);
    EXPECT_EQ(s.read(0x1000), max);
    EXPECT_EQ(s.read(0x1001), 0u); // neighbour untouched
    s.write(0x1000, 0);
    EXPECT_EQ(s.read(0x1000), 0u);
}

TEST_P(ShadowParam, PackedAccess)
{
    ShadowMemory s(GetParam());
    for (unsigned i = 0; i < 8; ++i)
        s.write(0x2000 + i, (i % 2) ? 1 : 0);
    std::uint64_t bits = s.readPacked(0x2000, 8);
    for (unsigned i = 0; i < 8; ++i) {
        std::uint64_t field =
            (bits >> (i * GetParam())) & ((1u << GetParam()) - 1);
        EXPECT_EQ(field, (i % 2) ? 1u : 0u);
    }
    s.writePacked(0x2000, 8, 0);
    EXPECT_TRUE(s.rangeAll(AddrRange{0x2000, 0x2008}, 0));
}

TEST_P(ShadowParam, RangeOps)
{
    ShadowMemory s(GetParam());
    s.fill(AddrRange{0x100, 0x200}, 1);
    EXPECT_TRUE(s.rangeAll(AddrRange{0x100, 0x200}, 1));
    EXPECT_FALSE(s.rangeAll(AddrRange{0x100, 0x201}, 1));
    EXPECT_EQ(s.rangeFindNot(AddrRange{0x100, 0x210}, 1), 0x200u);
}

TEST_P(ShadowParam, ChunkBoundary)
{
    ShadowMemory s(GetParam());
    Addr b = ShadowMemory::kChunkAppBytes;
    s.fill(AddrRange{b - 4, b + 4}, 1);
    EXPECT_TRUE(s.rangeAll(AddrRange{b - 4, b + 4}, 1));
    EXPECT_GE(s.chunkCount(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ShadowParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ShadowMemory, MetaAddrLayoutAvoidsBitRaces)
{
    // Condition 3 of section 5.3: metadata of different 64-byte lines
    // never shares a byte.
    ShadowMemory s(1);
    Addr line_a = 0x1000, line_b = 0x1040;
    EXPECT_NE(s.metaAddr(line_a) , s.metaAddr(line_b));
    EXPECT_GE(s.metaAddr(line_b) - s.metaAddr(line_a), 8u);
}

// ---------- Handler-driving helpers ----------

struct LgHarness
{
    explicit LgHarness(std::uint32_t bpb, Lifeguard &lg)
        : mtlb(64, true), ctx(lg.shadow(), mtlb, versions, nullptr, 0)
    {
        (void)bpb;
    }

    MetadataTlb mtlb;
    VersionStore versions;
    LgContext ctx;
};

LgEvent
ev(LgEventType type, ThreadId tid = 0, RecordId rid = 0)
{
    LgEvent e;
    e.type = type;
    e.tid = tid;
    e.rid = rid;
    return e;
}

// ---------- TaintCheck ----------

class TaintTest : public ::testing::Test
{
  protected:
    TaintTest() : lg(2), h(2, lg) {}

    void
    run(LgEvent e)
    {
        h.ctx.beginEvent();
        lg.handle(e, h.ctx);
    }

    TaintCheck lg;
    LgHarness h;
};

TEST_F(TaintTest, SyscallReadTaintsBuffer)
{
    LgEvent e = ev(LgEventType::kSyscallEnd);
    e.syscall = SyscallKind::kRead;
    e.range = AddrRange{0x1000, 0x1040};
    run(e);
    EXPECT_TRUE(lg.isTainted(0x1000, 8));
    EXPECT_TRUE(lg.isTainted(0x103F, 1));
    EXPECT_FALSE(lg.isTainted(0x1040, 1));
}

TEST_F(TaintTest, LoadStorePropagation)
{
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kTainted);

    LgEvent load = ev(LgEventType::kLoad);
    load.dst = 1;
    load.addr = 0x1000;
    load.size = 8;
    run(load);
    EXPECT_TRUE(lg.regTainted(0, 1));

    LgEvent store = ev(LgEventType::kStore);
    store.src = 1;
    store.addr = 0x2000;
    store.size = 8;
    run(store);
    EXPECT_TRUE(lg.isTainted(0x2000, 8));
}

TEST_F(TaintTest, RegisterOps)
{
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kTainted);
    LgEvent load = ev(LgEventType::kLoad);
    load.dst = 1;
    load.addr = 0x1000;
    load.size = 8;
    run(load);

    LgEvent mov = ev(LgEventType::kMovRR);
    mov.dst = 2;
    mov.src = 1;
    run(mov);
    EXPECT_TRUE(lg.regTainted(0, 2));

    LgEvent alu = ev(LgEventType::kAlu);
    alu.dst = 3;
    alu.src = 2;
    run(alu); // r3 (untainted) |= r2 (tainted)
    EXPECT_TRUE(lg.regTainted(0, 3));

    LgEvent imm = ev(LgEventType::kMovImm);
    imm.dst = 2;
    run(imm);
    EXPECT_FALSE(lg.regTainted(0, 2));
}

TEST_F(TaintTest, MemToMemUnionOfSources)
{
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kTainted);
    LgEvent m = ev(LgEventType::kMemToMem);
    m.addr = 0x3000;
    m.size = 8;
    m.nsrcs = 2;
    m.srcs[0] = MetaSrc{0x2000, 8}; // clean
    m.srcs[1] = MetaSrc{0x1000, 8}; // tainted
    run(m);
    EXPECT_TRUE(lg.isTainted(0x3000, 8));
}

TEST_F(TaintTest, TaintedJumpViolation)
{
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kTainted);
    LgEvent load = ev(LgEventType::kLoad);
    load.dst = 1;
    load.addr = 0x1000;
    load.size = 8;
    run(load);
    LgEvent jmp = ev(LgEventType::kJumpReg);
    jmp.src = 1;
    run(jmp);
    EXPECT_EQ(lg.violations.count(Violation::Kind::kTaintedJump), 1u);
}

TEST_F(TaintTest, CleanJumpNoViolation)
{
    LgEvent jmp = ev(LgEventType::kJumpReg);
    jmp.src = 1;
    run(jmp);
    EXPECT_EQ(lg.violations.count(), 0u);
}

TEST_F(TaintTest, MallocClearsTaint)
{
    lg.shadow().fill(AddrRange{0x1000, 0x1100}, TaintCheck::kTainted);
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1100};
    run(m);
    EXPECT_FALSE(lg.isTainted(0x1000, 0x100));
}

TEST_F(TaintTest, RacingSyscallLoadConservativelyTainted)
{
    LgEvent load = ev(LgEventType::kLoad);
    load.dst = 1;
    load.addr = 0x5000;
    load.size = 8;
    load.racesSyscall = true;
    run(load);
    EXPECT_TRUE(lg.regTainted(0, 1));
    EXPECT_EQ(lg.conservativeTaints, 1u);
}

TEST_F(TaintTest, PerThreadRegisterMetadata)
{
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kTainted);
    LgEvent load = ev(LgEventType::kLoad, /*tid=*/1);
    load.dst = 1;
    load.addr = 0x1000;
    load.size = 8;
    run(load);
    EXPECT_TRUE(lg.regTainted(1, 1));
    EXPECT_FALSE(lg.regTainted(0, 1)); // other thread unaffected
}

TEST_F(TaintTest, VersionedLoadReadsSnapshot)
{
    // Writer-side lifeguard snapshots the old (tainted) metadata...
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kTainted);
    LgEvent prod = ev(LgEventType::kProduceVersion, 1);
    prod.addr = 0x1000;
    prod.size = 8;
    prod.version = VersionTag{0, 50};
    run(prod);
    // ...the memory is then overwritten with clean data...
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kUntainted);
    // ...but the versioned reader still sees the tainted snapshot.
    LgEvent load = ev(LgEventType::kLoad, 0, 50);
    load.dst = 1;
    load.addr = 0x1000;
    load.size = 8;
    load.consumesVersion = true;
    load.version = VersionTag{0, 50};
    run(load);
    EXPECT_TRUE(lg.regTainted(0, 1));
}

TEST_F(TaintTest, TaintedOutputDetected)
{
    lg.shadow().fill(AddrRange{0x1000, 0x1008}, TaintCheck::kTainted);
    LgEvent out = ev(LgEventType::kSyscallBegin);
    out.syscall = SyscallKind::kWrite;
    out.range = AddrRange{0x1000, 0x1008};
    run(out);
    EXPECT_EQ(lg.violations.count(Violation::Kind::kTaintedOutput), 1u);
}

// ---------- AddrCheck ----------

class AddrTest : public ::testing::Test
{
  protected:
    AddrTest() : lg(2), h(1, lg) {}

    void
    run(LgEvent e)
    {
        h.ctx.beginEvent();
        lg.handle(e, h.ctx);
    }

    AddrCheck lg;
    LgHarness h;
};

TEST_F(AddrTest, AccessToUnallocatedViolates)
{
    LgEvent load = ev(LgEventType::kLoad);
    load.addr = 0x1000;
    load.size = 8;
    run(load);
    EXPECT_EQ(lg.violations.count(Violation::Kind::kUnallocatedAccess),
              1u);
}

TEST_F(AddrTest, MallocThenAccessOk)
{
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1040};
    run(m);
    LgEvent load = ev(LgEventType::kLoad);
    load.addr = 0x1000;
    load.size = 8;
    run(load);
    EXPECT_EQ(lg.violations.count(), 0u);
}

TEST_F(AddrTest, UseAfterFreeDetected)
{
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1040};
    run(m);
    LgEvent f = ev(LgEventType::kFree);
    f.range = AddrRange{0x1000, 0x1040};
    run(f);
    LgEvent store = ev(LgEventType::kStore);
    store.addr = 0x1020;
    store.size = 8;
    run(store);
    EXPECT_EQ(lg.violations.count(Violation::Kind::kUnallocatedAccess),
              1u);
}

TEST_F(AddrTest, PartialOverlapViolates)
{
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1004};
    run(m);
    LgEvent load = ev(LgEventType::kLoad);
    load.addr = 0x1000;
    load.size = 8; // spills past the allocation
    run(load);
    EXPECT_EQ(lg.violations.count(Violation::Kind::kUnallocatedAccess),
              1u);
}

TEST_F(AddrTest, InvalidFreeReported)
{
    LgEvent f = ev(LgEventType::kFree);
    f.range = AddrRange{}; // wrapper found no live block
    run(f);
    EXPECT_EQ(lg.violations.count(Violation::Kind::kInvalidFree), 1u);
}

// ---------- MemCheck ----------

class MemCheckTest : public ::testing::Test
{
  protected:
    MemCheckTest() : lg(2), h(1, lg)
    {
        lg.setCheckedRange(AddrRange{0x1000, 0x2000});
    }

    void
    run(LgEvent e)
    {
        h.ctx.beginEvent();
        lg.handle(e, h.ctx);
    }

    MemCheck lg;
    LgHarness h;
};

TEST_F(MemCheckTest, UninitReadAfterMalloc)
{
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1040};
    run(m);
    LgEvent load = ev(LgEventType::kLoad);
    load.dst = 1;
    load.addr = 0x1000;
    load.size = 8;
    run(load);
    EXPECT_EQ(lg.violations.count(Violation::Kind::kUninitRead), 1u);
}

TEST_F(MemCheckTest, StoreInitializes)
{
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1040};
    run(m);
    LgEvent store = ev(LgEventType::kStore);
    store.src = 1; // registers start initialized
    store.addr = 0x1000;
    store.size = 8;
    run(store);
    LgEvent load = ev(LgEventType::kLoad);
    load.dst = 2;
    load.addr = 0x1000;
    load.size = 8;
    run(load);
    EXPECT_EQ(lg.violations.count(), 0u);
    EXPECT_TRUE(lg.isInitialized(0x1000, 8));
}

TEST_F(MemCheckTest, UninitPropagatesThroughRegisters)
{
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1040};
    run(m);
    LgEvent load = ev(LgEventType::kLoad);
    load.dst = 1;
    load.addr = 0x1008, load.size = 8;
    run(load); // r1 now undefined (and one violation)
    LgEvent store = ev(LgEventType::kStore);
    store.src = 1;
    store.addr = 0x1010;
    store.size = 8;
    run(store);
    EXPECT_FALSE(lg.isInitialized(0x1010, 8));
}

TEST_F(MemCheckTest, SyscallReadInitializes)
{
    LgEvent m = ev(LgEventType::kMalloc);
    m.range = AddrRange{0x1000, 0x1040};
    run(m);
    LgEvent sys = ev(LgEventType::kSyscallEnd);
    sys.syscall = SyscallKind::kRead;
    sys.range = AddrRange{0x1000, 0x1040};
    run(sys);
    EXPECT_TRUE(lg.isInitialized(0x1000, 0x40));
}

// ---------- LockSet ----------

class LockSetTest : public ::testing::Test
{
  protected:
    LockSetTest() : lg(3), h(2, lg) {}

    void
    run(LgEvent e)
    {
        h.ctx.beginEvent();
        lg.handle(e, h.ctx);
    }

    void
    access(ThreadId tid, Addr addr, bool write)
    {
        LgEvent e = ev(write ? LgEventType::kStore : LgEventType::kLoad,
                       tid);
        e.addr = addr;
        e.size = 8;
        run(e);
    }

    void
    lock(ThreadId tid, Addr l)
    {
        LgEvent e = ev(LgEventType::kLockAcquire, tid);
        e.addr = l;
        run(e);
    }

    void
    unlock(ThreadId tid, Addr l)
    {
        LgEvent e = ev(LgEventType::kLockRelease, tid);
        e.addr = l;
        run(e);
    }

    LockSet lg;
    LgHarness h;
};

TEST_F(LockSetTest, ExclusiveThenSharedStates)
{
    access(0, 0x1000, true);
    EXPECT_EQ(lg.state(0x1000), LockSet::kExclusive);
    access(1, 0x1000, false);
    EXPECT_EQ(lg.state(0x1000), LockSet::kShared);
}

TEST_F(LockSetTest, ProperLockingNoRace)
{
    for (ThreadId t : {0u, 1u, 2u}) {
        lock(t, 0x100);
        access(t, 0x1000, true);
        unlock(t, 0x100);
    }
    EXPECT_EQ(lg.violations.count(Violation::Kind::kDataRace), 0u);
}

TEST_F(LockSetTest, UnlockedSharedWriteRaces)
{
    access(0, 0x1000, true);
    access(1, 0x1000, true); // second thread, no common lock
    EXPECT_GE(lg.violations.count(Violation::Kind::kDataRace), 1u);
}

TEST_F(LockSetTest, DisjointLocksRace)
{
    lock(0, 0x100);
    access(0, 0x1000, true);
    unlock(0, 0x100);
    lock(1, 0x200);
    access(1, 0x1000, true);
    unlock(1, 0x200);
    EXPECT_GE(lg.violations.count(Violation::Kind::kDataRace), 1u);
}

TEST_F(LockSetTest, FastPathAfterRefinement)
{
    lock(0, 0x100);
    access(0, 0x1000, false);
    unlock(0, 0x100);
    lock(1, 0x100);
    access(1, 0x1000, false);
    std::uint64_t slow_before = lg.slowPathEntries;
    access(1, 0x1000, false); // repeated read: sync-free fast path
    unlock(1, 0x100);
    EXPECT_GT(lg.fastPathHits, 0u);
    EXPECT_EQ(lg.slowPathEntries, slow_before);
}

TEST_F(LockSetTest, VersionedReadDecidesOnSnapshotGranuleState)
{
    // TSO: writer (thread 1) owns the granule exclusively; the
    // conflicting store is granule-*interior* (0x1004), so the
    // produce handler must snapshot from the granule base — the
    // store's own byte range misses the state byte and the consumer
    // would silently decide on post-overwrite live metadata.
    access(1, 0x1000, true);
    ASSERT_EQ(lg.state(0x1000), LockSet::kExclusive);

    VersionTag tag{0, 33};
    LgEvent prod = ev(LgEventType::kProduceVersion, 1);
    prod.addr = 0x1004;
    prod.size = 4;
    prod.version = tag;
    run(prod);
    ASSERT_TRUE(h.versions.available(tag));

    // Live state moves on before the versioned reader is processed.
    access(2, 0x1000, false);
    ASSERT_EQ(lg.state(0x1000), LockSet::kShared);

    std::uint64_t slow_before = lg.slowPathEntries;
    LgEvent load = ev(LgEventType::kLoad, 0, 33);
    load.addr = 0x1004;
    load.size = 8;
    load.consumesVersion = true;
    load.version = tag;
    run(load);

    // The snapshot's kExclusive state forces the slow path (live
    // kShared with an empty-refinement would have hit the fast path),
    // and the version was consumed exactly once.
    EXPECT_GT(lg.slowPathEntries, slow_before);
    EXPECT_FALSE(h.versions.available(tag));
    EXPECT_EQ(h.versions.size(), 0u);
}

TEST_F(LockSetTest, WriterDoneSuppressesLateConsumerWriteback)
{
    // Read-side-writer rule: when the conflicting store's handler
    // already ran (writerDone), the late versioned reader keeps its
    // snapshot-based decision but must not overwrite the newer state.
    access(1, 0x1000, true);
    VersionTag tag{0, 50};
    LgEvent prod = ev(LgEventType::kProduceVersion, 1);
    prod.addr = 0x1000;
    prod.size = 8;
    prod.version = tag;
    run(prod);
    access(1, 0x1000, true); // the producing store's own handler
    h.versions.markWriterDone(tag);

    LgEvent load = ev(LgEventType::kLoad, 2, 50);
    load.addr = 0x1000;
    load.size = 8;
    load.consumesVersion = true;
    load.version = tag;
    run(load);

    // Without suppression the reader (other thread, exclusive state)
    // would have escalated the live state to kShared.
    EXPECT_EQ(lg.state(0x1000), LockSet::kExclusive);
    EXPECT_EQ(h.versions.size(), 0u);
}

TEST_F(LockSetTest, SuppressedWritebackStillReportsExclusiveWriteRace)
{
    // Suppression only covers the metadata *write*; the race decision
    // itself must still run. Foreign unlocked write to an exclusively
    // owned granule = data race, with or without write-back.
    access(1, 0x1000, true); // exclusive, owner 1
    VersionTag tag{2, 60};
    LgEvent prod = ev(LgEventType::kProduceVersion, 1);
    prod.addr = 0x1000;
    prod.size = 8;
    prod.version = tag;
    run(prod);
    h.versions.markWriterDone(tag);

    std::size_t races_before =
        lg.violations.count(Violation::Kind::kDataRace);
    LgEvent store = ev(LgEventType::kStore, 2, 60);
    store.addr = 0x1000;
    store.size = 8;
    store.consumesVersion = true;
    store.version = tag;
    run(store);

    EXPECT_EQ(lg.violations.count(Violation::Kind::kDataRace),
              races_before + 1);
    EXPECT_EQ(lg.state(0x1000), LockSet::kExclusive); // write suppressed
}

TEST_F(LockSetTest, GranuleCrossingProduceCoversBothStateBytes)
{
    // An unaligned store can span two granules; both state bytes must
    // be in the snapshot or the consumer silently falls back to
    // post-overwrite live metadata for the second granule.
    access(1, 0x1000, true);
    access(1, 0x1008, true);
    VersionTag tag{0, 70};
    LgEvent prod = ev(LgEventType::kProduceVersion, 1);
    prod.addr = 0x1004; // spans granules 0x1000 and 0x1008
    prod.size = 8;
    prod.version = tag;
    run(prod);

    // Live state of the *second* granule moves on.
    access(2, 0x1008, false);
    ASSERT_EQ(lg.state(0x1008), LockSet::kShared);

    std::uint64_t slow_before = lg.slowPathEntries;
    LgEvent load = ev(LgEventType::kLoad, 0, 70);
    load.addr = 0x1008;
    load.size = 4;
    load.consumesVersion = true;
    load.version = tag;
    run(load);

    // Snapshot said kExclusive for 0x1008: slow path, not the live
    // kShared fast path.
    EXPECT_GT(lg.slowPathEntries, slow_before);
    EXPECT_EQ(h.versions.size(), 0u);
}

} // namespace
} // namespace paralog
