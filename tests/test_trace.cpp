/**
 * @file
 * Tests for the `paralog-trace-v1` record/replay subsystem: on-disk
 * format round trip (header, chunk CRCs, footer), recording
 * determinism, corruption rejection, and — the core property — that
 * replaying a recording reproduces the live run bit-identically
 * (results, stats, shadow fingerprint) for every lifeguard under SC
 * and TSO, independent of host-side knobs. Cross-lifeguard
 * re-monitoring is covered as the approximate mode it is.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "harness/paralog_test.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace paralog {
namespace {

using test::QuietTest;

/** Unique-enough temp path per test (removed at scope exit). */
class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
        : path_(::testing::TempDir() + "paralog_" + tag + "_" +
                std::to_string(::getpid()) + ".trace")
    {
    }
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

RunSpec
makeSpec(WorkloadKind w, LifeguardKind lg, std::uint32_t cores,
         MemoryModel mm, std::uint64_t scale, const std::string &record,
         const std::string &replay = "")
{
    RunSpec spec;
    spec.workload = w;
    spec.lifeguard = lg;
    spec.mode = MonitorMode::kParallel;
    spec.cores = cores;
    spec.opt = test::makeOptions(scale);
    spec.opt.memoryModel = mm;
    spec.recordPath = record;
    spec.replayPath = replay;
    return spec;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

void
expectSameRun(const RunResult &replayed, const RunResult &live)
{
    EXPECT_EQ(replayed.totalCycles, live.totalCycles);
    EXPECT_EQ(replayed.violationCount, live.violationCount);
    EXPECT_EQ(replayed.versionsProduced, live.versionsProduced);
    EXPECT_EQ(replayed.versionsConsumed, live.versionsConsumed);
    EXPECT_EQ(replayed.versionStallRetries, live.versionStallRetries);
    EXPECT_EQ(replayed.shadowFingerprint, live.shadowFingerprint);
    EXPECT_EQ(replayed.retiredTotal(), live.retiredTotal());
    EXPECT_EQ(replayed.appExecTotal(), live.appExecTotal());
    ASSERT_EQ(replayed.lifeguard.size(), live.lifeguard.size());
    for (std::size_t i = 0; i < live.lifeguard.size(); ++i) {
        const LifeguardThreadStats &r = replayed.lifeguard[i];
        const LifeguardThreadStats &l = live.lifeguard[i];
        EXPECT_EQ(r.usefulCycles, l.usefulCycles) << "lg " << i;
        EXPECT_EQ(r.depStall, l.depStall) << "lg " << i;
        EXPECT_EQ(r.caStall, l.caStall) << "lg " << i;
        EXPECT_EQ(r.versionStall, l.versionStall) << "lg " << i;
        EXPECT_EQ(r.appStall, l.appStall) << "lg " << i;
        EXPECT_EQ(r.recordsProcessed, l.recordsProcessed) << "lg " << i;
        EXPECT_EQ(r.eventsHandled, l.eventsHandled) << "lg " << i;
        EXPECT_EQ(r.doneAt, l.doneAt) << "lg " << i;
    }
}

// ------------------------------------------------- file format tests

class TraceFormatTest : public QuietTest
{
};

TEST_F(TraceFormatTest, HeaderFooterRoundTrip)
{
    TempTrace tmp("roundtrip");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, MemoryModel::kSC, 400, tmp.path());
    RunResult live = recordExperiment(spec);

    trace::TraceReader reader(tmp.path());
    ASSERT_TRUE(reader.ok()) << reader.error();
    const trace::TraceConfig &tc = reader.config();
    EXPECT_EQ(tc.workload, WorkloadKind::kLu);
    EXPECT_EQ(tc.lifeguard, LifeguardKind::kTaintCheck);
    EXPECT_EQ(tc.mode, MonitorMode::kParallel);
    EXPECT_EQ(tc.memoryModel, MemoryModel::kSC);
    EXPECT_EQ(tc.appThreads, 2u);
    EXPECT_EQ(tc.scale, 400u);
    EXPECT_EQ(tc.seed, 1u);
    EXPECT_NE(reader.configFingerprint(), 0u);

    const trace::TraceFooter &f = reader.footer();
    EXPECT_EQ(f.totalCycles, live.totalCycles);
    EXPECT_EQ(f.violations, live.violationCount);
    EXPECT_EQ(f.shadowFingerprint, live.shadowFingerprint);
    ASSERT_EQ(f.app.size(), 2u);
    EXPECT_EQ(f.app[0].retired + f.app[1].retired, live.retiredTotal());
    ASSERT_EQ(f.lifeguard.size(), 2u);
    EXPECT_EQ(f.lifeguard[0].recordsProcessed,
              live.lifeguard[0].recordsProcessed);

    // The journal carries every retire tick plus the appends.
    EXPECT_GE(reader.totalOps(), live.retiredTotal());
    EXPECT_GT(reader.totalRecords(), 0u);
    EXPECT_LT(reader.totalRecords(), reader.totalOps());
}

TEST_F(TraceFormatTest, RecordingIsDeterministic)
{
    TempTrace a("det_a"), b("det_b");
    RunSpec spec = makeSpec(WorkloadKind::kFmm, LifeguardKind::kMemCheck,
                            2, MemoryModel::kSC, 300, a.path());
    recordExperiment(spec);
    spec.recordPath = b.path();
    recordExperiment(spec);
    EXPECT_EQ(slurp(a.path()), slurp(b.path()))
        << "same spec must produce byte-identical recordings";
}

TEST_F(TraceFormatTest, RecordingIsCrashSafe)
{
    // The writer stages everything in `<path>.tmp` and only a
    // successful finalize() fsync+renames it into place: a recording
    // killed mid-write leaves either nothing at the requested name, or
    // a `.tmp` leftover the reader rejects — never a plausible-looking
    // truncated trace.
    TempTrace tmp("crashsafe");
    const std::string side = tmp.path() + ".tmp";

    // Simulate a hard kill: a child process records past several chunk
    // flushes and exits without finalize (no destructor cleanup).
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        trace::TraceConfig cfg;
        cfg.appThreads = 1;
        trace::TraceWriter w(tmp.path(), cfg);
        std::vector<std::uint8_t> op(64, 0xAB);
        for (int i = 0; i < 4000; ++i) {
            w.appendOpBytes(0, op);
            w.noteOp(0, false);
        }
        ::_exit(0); // dies mid-recording
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    // The requested name never appeared; the leftover temp file is
    // rejected (no footer, header still marked unfinalized).
    EXPECT_TRUE(slurp(tmp.path()).empty());
    ASSERT_FALSE(slurp(side).empty());
    EXPECT_FALSE(trace::TraceReader(side).ok());
    std::remove(side.c_str());

    // An abandoned writer in-process (destructor, no finalize) cleans
    // up its temp file and publishes nothing.
    {
        trace::TraceConfig cfg;
        cfg.appThreads = 1;
        trace::TraceWriter w(tmp.path(), cfg);
        w.appendOpBytes(0, {1, 2, 3});
        w.noteOp(0, true);
    }
    EXPECT_TRUE(slurp(tmp.path()).empty());
    EXPECT_TRUE(slurp(side).empty());

    // A completed recording publishes atomically: valid final file, no
    // temp residue.
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            1, MemoryModel::kSC, 300, tmp.path());
    recordExperiment(spec);
    EXPECT_TRUE(trace::TraceReader(tmp.path()).ok());
    EXPECT_TRUE(slurp(side).empty());
}

TEST_F(TraceFormatTest, RejectsBadMagicTruncationAndCorruption)
{
    TempTrace tmp("corrupt");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                            1, MemoryModel::kSC, 300, tmp.path());
    recordExperiment(spec);
    std::vector<std::uint8_t> good = slurp(tmp.path());
    ASSERT_GT(good.size(), 200u);

    // Bad magic.
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    spit(tmp.path(), bad);
    EXPECT_FALSE(trace::TraceReader(tmp.path()).ok());

    // Truncation (drops the footer chunk).
    bad = good;
    bad.resize(bad.size() / 2);
    spit(tmp.path(), bad);
    EXPECT_FALSE(trace::TraceReader(tmp.path()).ok());

    // Header corruption: the config fingerprint catches it.
    bad = good;
    bad[30] ^= 0x01; // filter bits
    spit(tmp.path(), bad);
    EXPECT_FALSE(trace::TraceReader(tmp.path()).ok());

    // Payload corruption inside the first chunk: the CRC catches it.
    bad = good;
    bad[trace::kHeaderBytes + 16 + 3] ^= 0x40;
    spit(tmp.path(), bad);
    trace::TraceReader reader(tmp.path());
    if (reader.ok()) {
        trace::TraceOp op;
        auto stream = reader.opStream(0);
        while (stream.next(op)) {
        }
        EXPECT_FALSE(reader.ok()) << "corrupt chunk not detected";
    }
    EXPECT_NE(reader.error().find("trace"), std::string::npos);
}

TEST_F(TraceFormatTest, TruncationAtEveryStructuralBoundary)
{
    // A recording cut short at *any* structural boundary — mid-header,
    // at a chunk boundary, mid-chunk-header, at the payload start, mid
    // payload, one byte short of a payload end — must come back as a
    // clean reader error at construction time (the chunk index now
    // checks payload extents against the file size), never as stale
    // buffer bytes reaching a decoder. The footer is written last, so
    // every proper prefix is missing it at minimum.
    TempTrace tmp("bound");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, MemoryModel::kSC, 300, tmp.path());
    recordExperiment(spec);
    std::vector<std::uint8_t> good = slurp(tmp.path());
    ASSERT_GT(good.size(), trace::kHeaderBytes + 16u);

    auto get32at = [&good](std::size_t off) {
        return static_cast<std::uint32_t>(good[off]) |
               static_cast<std::uint32_t>(good[off + 1]) << 8 |
               static_cast<std::uint32_t>(good[off + 2]) << 16 |
               static_cast<std::uint32_t>(good[off + 3]) << 24;
    };

    // Walk the chunk list to find every boundary.
    std::vector<std::size_t> cuts{0, trace::kHeaderBytes / 2,
                                  trace::kHeaderBytes - 1};
    std::size_t off = trace::kHeaderBytes;
    std::size_t chunks = 0;
    while (off + 16 <= good.size()) {
        std::size_t payload = get32at(off + 8);
        cuts.push_back(off);           // at the chunk boundary
        cuts.push_back(off + 8);       // mid chunk header
        cuts.push_back(off + 16);      // payload start
        if (payload > 1) {
            cuts.push_back(off + 16 + payload / 2); // mid payload
            cuts.push_back(off + 16 + payload - 1); // one byte short
        }
        off += 16 + payload;
        ++chunks;
    }
    ASSERT_EQ(off, good.size()) << "chunk walk out of sync";
    ASSERT_GE(chunks, 2u) << "need data chunks and a footer chunk";

    for (std::size_t cut : cuts) {
        if (cut >= good.size())
            continue;
        std::vector<std::uint8_t> bad = good;
        bad.resize(cut);
        spit(tmp.path(), bad);
        trace::TraceReader reader(tmp.path());
        EXPECT_FALSE(reader.ok()) << "cut at byte " << cut << " of "
                                  << good.size() << " was accepted";
        EXPECT_FALSE(reader.error().empty()) << "cut at byte " << cut;
    }
}

TEST_F(TraceFormatTest, MidChunkEofIsDiagnosedNotDecoded)
{
    // Rewrite a data chunk's header to claim a payload running past
    // EOF: the reader must refuse with a diagnosis naming the problem,
    // and the op stream must yield nothing (no decode of stale bytes).
    TempTrace tmp("midchunk");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                            1, MemoryModel::kSC, 300, tmp.path());
    recordExperiment(spec);
    std::vector<std::uint8_t> good = slurp(tmp.path());
    ASSERT_GT(good.size(), trace::kHeaderBytes + 16u);

    std::vector<std::uint8_t> bad = good;
    std::size_t len_off = trace::kHeaderBytes + 8;
    bad[len_off] = 0xFF; // inflate the first chunk's payload length
    bad[len_off + 1] = 0xFF;
    bad[len_off + 2] = 0xFF;
    spit(tmp.path(), bad);

    trace::TraceReader reader(tmp.path());
    EXPECT_FALSE(reader.ok());
    EXPECT_NE(reader.error().find("past end of file"), std::string::npos)
        << reader.error();
    trace::TraceOp op;
    auto stream = reader.opStream(0);
    EXPECT_FALSE(stream.next(op))
        << "a failed reader must not hand records to the decoder";
}

TEST_F(TraceFormatTest, RejectsParallelFooterWithoutLifeguardStats)
{
    // The header's config fingerprint does not cover the footer, so a
    // footer whose per-core lifeguard list disagrees with the header's
    // thread count — the empty list being the degenerate case — can sit
    // behind an intact header. The reader must reject it at open, not
    // let replay's footer self-check trip an assertion later.
    TempTrace src("nolg_src"), bad("nolg");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, MemoryModel::kSC, 300, src.path());
    recordExperiment(spec);

    trace::TraceReader reader(src.path());
    ASSERT_TRUE(reader.ok()) << reader.error();
    ASSERT_EQ(reader.config().mode, MonitorMode::kParallel);
    ASSERT_EQ(reader.footer().lifeguard.size(), 2u);

    // Rewrite the recording with the lifeguard stats stripped — the
    // same journal bytes behind a tampered footer.
    trace::TraceWriter writer(bad.path(), reader.config());
    writer.opCount = reader.footer().opCount;
    writer.recordCount = reader.footer().recordCount;
    writer.setTotals(reader.totalOps(), reader.totalRecords());
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < reader.chunkCount(); ++i) {
        std::uint32_t kind = reader.chunkKind(i);
        if (kind != trace::kChunkOps && kind != trace::kChunkMetaLatency)
            continue;
        ASSERT_TRUE(reader.chunkPayload(i, payload)) << reader.error();
        if (kind == trace::kChunkOps)
            writer.writeOpsChunk(reader.chunkTid(i), payload);
        else
            writer.writeLatencyChunk(reader.chunkTid(i), payload);
    }
    trace::TraceFooter tampered = reader.footer();
    tampered.lifeguard.clear();
    ASSERT_TRUE(writer.finalize(tampered)) << writer.error();

    trace::TraceReader check(bad.path());
    EXPECT_FALSE(check.ok())
        << "an empty lifeguard list in a 2-core parallel recording "
        << "must not be accepted";
    EXPECT_NE(check.error().find("lifeguard stats for 0 cores"),
              std::string::npos)
        << check.error();
}

// -------------------------------------------- replay determinism ----

struct ReplayCell
{
    LifeguardKind lifeguard;
    MemoryModel memoryModel;
    std::uint32_t cores;
};

class ReplayBitIdentical : public test::QuietTestWithParam<ReplayCell>
{
};

TEST_P(ReplayBitIdentical, ReplayReproducesTheLiveRun)
{
    const ReplayCell &cell = GetParam();
    TempTrace tmp("replay");
    RunSpec spec =
        makeSpec(WorkloadKind::kLu, cell.lifeguard, cell.cores,
                 cell.memoryModel, 400, tmp.path());
    RunResult live = recordExperiment(spec);
    EXPECT_NE(live.shadowFingerprint, 0u);

    // replayExperiment self-checks against the footer (panics on any
    // divergence); compare the assembled RunResult here as well.
    RunSpec replay = makeSpec(WorkloadKind::kLu, cell.lifeguard,
                              cell.cores, cell.memoryModel, 400, "",
                              tmp.path());
    RunResult replayed = replayExperiment(replay);
    expectSameRun(replayed, live);
}

/** The full acceptance matrix: lifeguard × {SC,TSO} × {1,2,4} cores. */
std::vector<ReplayCell>
allReplayCells()
{
    std::vector<ReplayCell> cells;
    for (LifeguardKind lg :
         {LifeguardKind::kAddrCheck, LifeguardKind::kTaintCheck,
          LifeguardKind::kMemCheck, LifeguardKind::kLockSet}) {
        for (MemoryModel mm : {MemoryModel::kSC, MemoryModel::kTSO}) {
            for (std::uint32_t cores : {1u, 2u, 4u})
                cells.push_back(ReplayCell{lg, mm, cores});
        }
    }
    return cells;
}

INSTANTIATE_TEST_SUITE_P(
    LifeguardsModelsCores, ReplayBitIdentical,
    ::testing::ValuesIn(allReplayCells()),
    [](const ::testing::TestParamInfo<ReplayCell> &info) {
        return std::string(toString(info.param.lifeguard)) + "_" +
               toString(info.param.memoryModel) + "_" +
               std::to_string(info.param.cores) + "c";
    });

class ReplayModes : public QuietTest
{
};

TEST_F(ReplayModes, ShardCountInvariance)
{
    TempTrace tmp("shards");
    RunSpec spec = makeSpec(WorkloadKind::kOcean,
                            LifeguardKind::kTaintCheck, 2,
                            MemoryModel::kSC, 400, tmp.path());
    RunResult live = recordExperiment(spec);

    for (std::uint32_t shards : {1u, 4u}) {
        ReplayConfig cfg;
        cfg.path = tmp.path();
        cfg.shadowShards = shards;
        ReplayPlatform rp(cfg);
        RunResult replayed = rp.run();
        expectSameRun(replayed, live);
    }
}

TEST_F(ReplayModes, CrossLifeguardReMonitoring)
{
    // Record once under TaintCheck (the widest event filter), replay
    // under AddrCheck: the ReplayCore re-filters the stream for the
    // new monitor, so the heap-only AddrCheck sees the records its own
    // capture would have kept and reaches its native conclusions.
    TempTrace tmp("cross"), tmp_native("cross_native");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, MemoryModel::kSC, 400, tmp.path());
    recordExperiment(spec);

    RunSpec native = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                              2, MemoryModel::kSC, 400,
                              tmp_native.path());
    RunResult native_live = recordExperiment(native);

    ReplayConfig cfg;
    cfg.path = tmp.path();
    cfg.lifeguardOverride = true;
    cfg.lifeguard = LifeguardKind::kAddrCheck;
    ReplayPlatform rp(std::move(cfg));
    EXPECT_FALSE(rp.replaysRecordedLifeguard());
    RunResult remon = rp.run();

    // Analysis conclusions (violations, shadow state) match the native
    // run; timing is approximate by design and not compared.
    EXPECT_EQ(remon.violationCount, native_live.violationCount);
    EXPECT_EQ(remon.shadowFingerprint, native_live.shadowFingerprint);
}

TEST_F(ReplayModes, CrossLifeguardReMonitoringUnderTso)
{
    // The TSO journal carries drain-time arc attachment and version
    // annotations; a cross-lifeguard replay must keep the arcs of
    // records its re-filter drops (carried to the next surviving
    // record, as a live capture of the new lifeguard would) so
    // delivery ordering stays conservative. AddrCheck's conclusions
    // from the re-filtered TaintCheck recording must match its native
    // run.
    TempTrace tmp("cross_tso"), tmp_native("cross_tso_native");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            4, MemoryModel::kTSO, 400, tmp.path());
    recordExperiment(spec);

    RunSpec native = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                              4, MemoryModel::kTSO, 400,
                              tmp_native.path());
    RunResult native_live = recordExperiment(native);

    ReplayConfig cfg;
    cfg.path = tmp.path();
    cfg.lifeguardOverride = true;
    cfg.lifeguard = LifeguardKind::kAddrCheck;
    ReplayPlatform rp(std::move(cfg));
    RunResult remon = rp.run();
    EXPECT_EQ(remon.violationCount, native_live.violationCount);
    EXPECT_EQ(remon.shadowFingerprint, native_live.shadowFingerprint);
}

TEST_F(ReplayModes, ReplayThroughRunMatrixIsJobCountInvariant)
{
    // One recording replayed as four matrix cells (one per lifeguard)
    // must produce identical results at any job count — the matrix
    // determinism contract extends to replay cells.
    TempTrace tmp("matrix");
    RunSpec rec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                           2, MemoryModel::kSC, 400, tmp.path());
    recordExperiment(rec);

    std::vector<RunSpec> specs;
    for (LifeguardKind lg :
         {LifeguardKind::kAddrCheck, LifeguardKind::kTaintCheck,
          LifeguardKind::kMemCheck, LifeguardKind::kLockSet})
        specs.push_back(makeSpec(WorkloadKind::kLu, lg, 2,
                                 MemoryModel::kSC, 400, "", tmp.path()));

    std::vector<CellResult> seq = runMatrix(specs, 1);
    std::vector<CellResult> par = runMatrix(specs, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        ASSERT_FALSE(seq[i].failed) << seq[i].error;
        ASSERT_FALSE(par[i].failed) << par[i].error;
        expectSameRun(par[i].result, seq[i].result);
    }
}

TEST_F(ReplayModes, RecordingLeavesResultsUntouched)
{
    // A recorded run and a plain run of the same spec report identical
    // simulated results: recording only taps the streams.
    TempTrace tmp("untouched");
    RunSpec spec = makeSpec(WorkloadKind::kSwaptions,
                            LifeguardKind::kLockSet, 2, MemoryModel::kSC,
                            400, tmp.path());
    RunResult recorded = recordExperiment(spec);

    RunSpec plain = spec;
    plain.recordPath.clear();
    // Canonical single-pop delivery is what recording pins; batching is
    // result-invariant, so the default-batched run must match too.
    RunResult live = runSpecExperiment(plain);
    live.shadowFingerprint = recorded.shadowFingerprint; // not computed
    expectSameRun(live, recorded);
}

} // namespace
} // namespace paralog
