#!/bin/sh
# Regenerate the committed trace corpus and its paralog-dump goldens.
#
#   tests/corpus/generate.sh [BUILD_DIR]        (default: ./build)
#
# The corpus pins the on-disk trace formats across releases: every
# lifeguard x {SC, TSO}, recorded in both the v1 and v2 containers, at
# a small fixed scale. Recordings are byte-deterministic for a given
# spec, so regenerating on any machine reproduces the same files —
# test_corpus replays each one against its recorded footer and diffs
# paralog-dump output against the goldens.
#
# Only rerun this after a DELIBERATE, documented format change (see
# README.md in this directory), and commit the resulting diff in the
# same change that motivates it.

set -eu

BUILD_DIR="${1:-build}"
CORPUS_DIR="$(cd "$(dirname "$0")" && pwd)"
PARALOG="$BUILD_DIR/paralog"
DUMP="$BUILD_DIR/paralog-dump"

[ -x "$PARALOG" ] || { echo "error: $PARALOG not built" >&2; exit 1; }
[ -x "$DUMP" ] || { echo "error: $DUMP not built" >&2; exit 1; }

mkdir -p "$CORPUS_DIR/golden"

for lg in addrcheck taintcheck memcheck lockset; do
    for mm in sc tso; do
        for fmt in v1 v2; do
            stem="${lg}_${mm}_${fmt}"
            out="$CORPUS_DIR/$stem.trace"
            "$PARALOG" --workload=lu --lifeguard="$lg" --mode=parallel \
                --cores=2 --scale=300 --seed=1 --memory-model="$mm" \
                --trace-format="$fmt" --record="$out" > /dev/null
            "$DUMP" --ops=3 "$out" > "$CORPUS_DIR/golden/$stem.dump"
            echo "  $stem.trace ($(wc -c < "$out") bytes)"
        done
    done
done
echo "corpus regenerated under $CORPUS_DIR"
