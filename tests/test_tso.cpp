/**
 * @file
 * TSO support tests (section 5.5): store buffers, forwarding, the
 * produce/consume versioned-metadata protocol, and end-to-end TSO runs.
 */

#include <gtest/gtest.h>

#include "capture/store_buffer.hpp"
#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "lifeguard/taintcheck.hpp"

namespace paralog {
namespace {

class RecordingHooks : public TsoHooks
{
  public:
    struct Violation
    {
        ThreadId writerTid;
        RecordId writerRid;
        Addr addr;
        VersionRequest reader;
    };

    void
    attachArcsToPending(ThreadId tid, RecordId rid,
                        const std::vector<RawArc> &arcs) override
    {
        for (const RawArc &a : arcs)
            attached.push_back({tid, rid, a});
    }

    void
    onScViolation(ThreadId writer_tid, RecordId writer_rid, Addr addr,
                  std::uint8_t, const VersionRequest &reader) override
    {
        violations.push_back({writer_tid, writer_rid, addr, reader});
    }

    void
    setVisibilityLimit(ThreadId tid, RecordId limit) override
    {
        limits[tid] = limit;
    }

    struct Attached
    {
        ThreadId tid;
        RecordId rid;
        RawArc arc;
    };

    std::vector<Attached> attached;
    std::vector<Violation> violations;
    std::map<ThreadId, RecordId> limits;
};

class TsoTest : public ::testing::Test
{
  protected:
    TsoTest() : cfg(makeCfg()), mem(cfg, 2), dp(cfg, mem, hooks, 2)
    {
        mem.bindThread(0, 0);
        mem.bindThread(1, 1);
    }

    static SimConfig
    makeCfg()
    {
        SimConfig c = SimConfig::forAppThreads(1);
        c.memoryModel = MemoryModel::kTSO;
        c.storeBufferEntries = 4;
        c.storeDrainDelay = 10;
        return c;
    }

    SimConfig cfg;
    RecordingHooks hooks;
    MemorySystem mem;
    TsoDataPath dp;
};

TEST_F(TsoTest, StoreBuffersAndDrains)
{
    dp.store(0, 0x1000, 8, 42, AccessTag{0, 1, 100});
    EXPECT_EQ(dp.depth(0), 1u);
    EXPECT_EQ(mem.memory().read(0x1000, 8), 0u); // not yet visible
    dp.pump(0, 105);                             // before readyAt: no-op
    EXPECT_EQ(dp.depth(0), 1u);
    dp.pump(0, 110);
    EXPECT_EQ(dp.depth(0), 0u);
    EXPECT_EQ(mem.memory().read(0x1000, 8), 42u);
}

TEST_F(TsoTest, LoadForwardsFromOwnBuffer)
{
    dp.store(0, 0x1000, 8, 0xBEEF, AccessTag{0, 1, 100});
    auto lr = dp.load(0, 0x1000, 8, AccessTag{0, 2, 101});
    EXPECT_EQ(lr.value, 0xBEEFu);
    EXPECT_EQ(dp.depth(0), 1u); // still buffered
}

TEST_F(TsoTest, LoadSeesStaleRemoteValue)
{
    mem.memory().write(0x1000, 8, 1);
    dp.store(1, 0x1000, 8, 2, AccessTag{1, 1, 100}); // buffered in core 1
    auto lr = dp.load(0, 0x1000, 8, AccessTag{0, 1, 101});
    EXPECT_EQ(lr.value, 1u); // TSO: old value visible
}

TEST_F(TsoTest, FenceDrainsAll)
{
    dp.store(0, 0x1000, 8, 1, AccessTag{0, 1, 100});
    dp.store(0, 0x1008, 8, 2, AccessTag{0, 2, 100});
    Cycle lat = dp.fence(0);
    EXPECT_GT(lat, 0u);
    EXPECT_EQ(dp.depth(0), 0u);
    EXPECT_EQ(mem.memory().read(0x1008, 8), 2u);
}

TEST_F(TsoTest, StoreSpaceBounded)
{
    for (unsigned i = 0; i < cfg.storeBufferEntries; ++i)
        dp.store(0, 0x1000 + 64 * i, 8, i, AccessTag{0, i, 100});
    EXPECT_FALSE(dp.storeSpace(0));
    dp.fence(0);
    EXPECT_TRUE(dp.storeSpace(0));
}

TEST_F(TsoTest, VisibilityTracksOldestStore)
{
    dp.store(0, 0x1000, 8, 1, AccessTag{0, 7, 100});
    dp.store(0, 0x1040, 8, 2, AccessTag{0, 9, 100});
    EXPECT_EQ(hooks.limits[0], 7u);
    dp.pump(0, 1000); // drains the first store
    EXPECT_EQ(hooks.limits[0], 9u);
    dp.pump(0, 2000);
    EXPECT_EQ(hooks.limits[0], kInvalidRecord);
}

TEST_F(TsoTest, ScViolationDetectedAtDrain)
{
    // Reader (thread 0) reads 0x1000 at retire cycle 200; the writer's
    // store retired at cycle 100 but drains at 110 < 200... the read
    // retired AFTER the write retired yet saw the old value: non-SC.
    mem.access(0, 0x1000, 8, false, AccessTag{0, 5, 200}, true);
    dp.store(1, 0x1000, 8, 9, AccessTag{1, 3, 100});
    dp.pump(1, 500);
    ASSERT_EQ(hooks.violations.size(), 1u);
    EXPECT_EQ(hooks.violations[0].writerTid, 1u);
    EXPECT_EQ(hooks.violations[0].writerRid, 3u);
    EXPECT_EQ(hooks.violations[0].reader.readerTid, 0u);
    EXPECT_EQ(hooks.violations[0].reader.readerRid, 5u);
}

TEST_F(TsoTest, DrainArcsAttachToPendingStore)
{
    // Plain WAR (read retired before write): arc attached to the
    // writer's pending record.
    mem.access(0, 0x1000, 8, false, AccessTag{0, 5, 50}, true);
    dp.store(1, 0x1000, 8, 9, AccessTag{1, 3, 100});
    dp.pump(1, 500);
    ASSERT_EQ(hooks.attached.size(), 1u);
    EXPECT_EQ(hooks.attached[0].tid, 1u);
    EXPECT_EQ(hooks.attached[0].rid, 3u);
    EXPECT_EQ(hooks.attached[0].arc.rid, 5u);
}

// ---------- end-to-end TSO runs ----------

class TsoEndToEnd : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }

    ExperimentOptions
    opts()
    {
        ExperimentOptions o;
        o.scale = 8000;
        o.memoryModel = MemoryModel::kTSO;
        return o;
    }
};

TEST_F(TsoEndToEnd, WorkloadsCompleteUnderTso)
{
    for (WorkloadKind w : {WorkloadKind::kLu, WorkloadKind::kOcean,
                           WorkloadKind::kFluidanimate,
                           WorkloadKind::kSwaptions}) {
        RunResult r = runExperiment(w, LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 4, opts());
        EXPECT_GT(r.totalCycles, 0u) << toString(w);
    }
}

TEST_F(TsoEndToEnd, AllLifeguardsCompleteUnderTso)
{
    // The lifted combinations: LockSet+TSO used to deadlock and
    // AddrCheck+TSO used to quasi-livelock at >= 2 cores; both (and
    // the rest of the lifeguard axis) must now just run. The deeper
    // differential checks live in test_tso_matrix.
    for (LifeguardKind lg :
         {LifeguardKind::kAddrCheck, LifeguardKind::kTaintCheck,
          LifeguardKind::kMemCheck, LifeguardKind::kLockSet}) {
        RunResult r = runExperiment(WorkloadKind::kLu, lg,
                                    MonitorMode::kParallel, 4, opts());
        EXPECT_GT(r.totalCycles, 0u) << toString(lg);
        EXPECT_EQ(r.versionsProduced, r.versionsConsumed)
            << toString(lg);
    }
}

TEST_F(TsoEndToEnd, AnalysisStillCorrectUnderTso)
{
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 4, opts());
    Platform p(cfg);
    RunResult r = p.run();
    auto &taint = static_cast<TaintCheck &>(p.lifeguard());
    EXPECT_TRUE(taint.isTainted(AddressLayout::kGlobalBase, 64));
    EXPECT_EQ(r.violationCount, 0u);
}

TEST_F(TsoEndToEnd, VersionStoreDrained)
{
    // Every produced version must eventually be consumed (no leaks).
    PlatformConfig cfg = makeConfig(WorkloadKind::kFluidanimate,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 4, opts());
    Platform p(cfg);
    p.run();
    EXPECT_EQ(p.versions().stats.get("produced"),
              p.versions().stats.get("consumed"));
    EXPECT_EQ(p.versions().size(), 0u);
}

TEST_F(TsoEndToEnd, TsoCostsNoMoreThanBoundedOverhead)
{
    ExperimentOptions sc;
    sc.scale = 8000;
    RunResult r_sc = runExperiment(WorkloadKind::kOcean,
                                   LifeguardKind::kTaintCheck,
                                   MonitorMode::kParallel, 4, sc);
    RunResult r_tso = runExperiment(WorkloadKind::kOcean,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 4, opts());
    // TSO should be in the same ballpark as SC (store buffering may
    // even help); a 2x blowup would indicate an enforcement bug.
    EXPECT_LT(r_tso.totalCycles, r_sc.totalCycles * 2);
}

} // namespace
} // namespace paralog
