/**
 * @file
 * The cross-version trace-corpus regression gate. `tests/corpus/` holds
 * committed mini recordings — every lifeguard x {SC, TSO}, in both the
 * v1 and v2 containers — made by `tests/corpus/generate.sh`. This suite
 * replays each one against the footer it was recorded with: any change
 * to the trace formats, the record codec, delivery ordering, or the
 * lifeguards that would break replay of *existing* recordings fails
 * here, before it ships. It also pins `paralog-dump`'s output against
 * committed goldens (PARALOG_DUMP points at the built inspector).
 *
 * CMake sets PARALOG_CORPUS to the committed corpus directory. A
 * missing corpus file is a hard failure, not a skip — the gate only
 * works if the corpus stays in the tree.
 *
 * Re-baselining (after a deliberate, documented format change) is
 * `tests/corpus/generate.sh <build-dir>`; see tests/corpus/README.md
 * for the policy.
 */

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "harness/paralog_test.hpp"
#include "trace/trace_reader.hpp"

namespace paralog {
namespace {

struct CorpusEntry
{
    LifeguardKind lifeguard;
    MemoryModel memoryModel;
    std::uint32_t format; // 1 or 2

    std::string
    stem() const
    {
        std::string lg;
        switch (lifeguard) {
          case LifeguardKind::kAddrCheck:  lg = "addrcheck"; break;
          case LifeguardKind::kTaintCheck: lg = "taintcheck"; break;
          case LifeguardKind::kMemCheck:   lg = "memcheck"; break;
          case LifeguardKind::kLockSet:    lg = "lockset"; break;
        }
        return lg +
               (memoryModel == MemoryModel::kSC ? "_sc" : "_tso") +
               "_v" + std::to_string(format);
    }
};

std::vector<CorpusEntry>
allEntries()
{
    std::vector<CorpusEntry> entries;
    for (LifeguardKind lg :
         {LifeguardKind::kAddrCheck, LifeguardKind::kTaintCheck,
          LifeguardKind::kMemCheck, LifeguardKind::kLockSet}) {
        for (MemoryModel mm : {MemoryModel::kSC, MemoryModel::kTSO}) {
            for (std::uint32_t fmt : {1u, 2u})
                entries.push_back(CorpusEntry{lg, mm, fmt});
        }
    }
    return entries;
}

std::string
corpusDir()
{
    const char *dir = std::getenv("PARALOG_CORPUS");
    return dir ? dir : "";
}

std::string
slurpText(const std::string &path)
{
    std::string text;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** Scoped panic-throw so a replay divergence fails the test instead of
 *  aborting the whole suite. */
class PanicThrowScope
{
  public:
    PanicThrowScope() : prev_(setPanicThrows(true)) {}
    ~PanicThrowScope() { setPanicThrows(prev_); }

  private:
    bool prev_;
};

class CorpusGate : public test::QuietTest
{
  protected:
    void
    SetUp() override
    {
        if (corpusDir().empty())
            GTEST_SKIP() << "PARALOG_CORPUS not set (run under CTest)";
    }

    std::string
    tracePath(const CorpusEntry &e) const
    {
        return corpusDir() + "/" + e.stem() + ".trace";
    }

    /** Replay @p path under its recorded lifeguard. The serial engine
     *  self-checks every stat against the footer (panics — here,
     *  throws — on divergence). */
    RunResult
    replay(const std::string &path, std::uint32_t lg_threads = 0,
           std::uint32_t decode_jobs = 1)
    {
        ReplayConfig cfg;
        cfg.path = path;
        cfg.lgThreads = lg_threads;
        cfg.decodeJobs = decode_jobs;
        ReplayPlatform rp(std::move(cfg));
        return rp.run();
    }
};

TEST_F(CorpusGate, CorpusIsCompleteAndWellFormed)
{
    for (const CorpusEntry &e : allEntries()) {
        std::string path = tracePath(e);
        struct stat st;
        ASSERT_EQ(::stat(path.c_str(), &st), 0)
            << path << " is missing — the corpus must stay committed "
            << "(tests/corpus/generate.sh regenerates it)";
        trace::TraceReader reader(path);
        ASSERT_TRUE(reader.ok()) << path << ": " << reader.error();
        EXPECT_EQ(reader.formatVersion(), e.format) << path;
        EXPECT_EQ(reader.config().lifeguard, e.lifeguard) << path;
        EXPECT_EQ(reader.config().memoryModel, e.memoryModel) << path;
        EXPECT_EQ(reader.config().mode, MonitorMode::kParallel) << path;
        EXPECT_TRUE(reader.footer().hasViolationFingerprint) << path;
    }
}

TEST_F(CorpusGate, SerialReplayMatchesEveryRecordedFooter)
{
    PanicThrowScope throws;
    for (const CorpusEntry &e : allEntries()) {
        std::string path = tracePath(e);
        trace::TraceReader reader(path);
        ASSERT_TRUE(reader.ok()) << path << ": " << reader.error();
        const trace::TraceFooter footer = reader.footer();

        RunResult result;
        try {
            result = replay(path);
        } catch (const std::exception &ex) {
            FAIL() << path << " diverged from its recorded footer: "
                   << ex.what();
        }
        EXPECT_EQ(result.shadowFingerprint, footer.shadowFingerprint)
            << path;
        EXPECT_EQ(result.violationCount, footer.violations) << path;
        EXPECT_EQ(result.violationFingerprint,
                  footer.violationFingerprint)
            << path;
        EXPECT_EQ(result.totalCycles, footer.totalCycles) << path;
    }
}

TEST_F(CorpusGate, V1AndV2PairsReplayIdentically)
{
    PanicThrowScope throws;
    for (const CorpusEntry &e : allEntries()) {
        if (e.format != 1)
            continue;
        CorpusEntry twin = e;
        twin.format = 2;
        RunResult from1, from2;
        try {
            from1 = replay(tracePath(e));
            from2 = replay(tracePath(twin));
        } catch (const std::exception &ex) {
            FAIL() << e.stem() << "/" << twin.stem() << ": "
                   << ex.what();
        }
        EXPECT_EQ(from1.totalCycles, from2.totalCycles) << e.stem();
        EXPECT_EQ(from1.shadowFingerprint, from2.shadowFingerprint)
            << e.stem();
        EXPECT_EQ(from1.violationFingerprint, from2.violationFingerprint)
            << e.stem();
        EXPECT_EQ(from1.violationCount, from2.violationCount)
            << e.stem();
        EXPECT_EQ(from1.retiredTotal(), from2.retiredTotal())
            << e.stem();
    }
}

TEST_F(CorpusGate, ConcurrentReplayAndParallelDecodeAgree)
{
    // The host-parallel engine (lg-threads=2) plus the v2 reader's
    // eager parallel chunk decode, over committed recordings — the
    // combination the tsan CI label exists for.
    PanicThrowScope throws;
    for (const CorpusEntry &e : allEntries()) {
        if (e.format != 2)
            continue;
        std::string path = tracePath(e);
        trace::TraceReader reader(path);
        ASSERT_TRUE(reader.ok()) << path << ": " << reader.error();
        const trace::TraceFooter footer = reader.footer();

        RunResult result;
        try {
            result = replay(path, /*lg_threads=*/2, /*decode_jobs=*/3);
        } catch (const std::exception &ex) {
            FAIL() << path << ": " << ex.what();
        }
        EXPECT_EQ(result.shadowFingerprint, footer.shadowFingerprint)
            << path;
        EXPECT_EQ(result.violationFingerprint,
                  footer.violationFingerprint)
            << path;
    }
}

// --------------------------------------------- paralog-dump goldens

class DumpGoldens : public test::QuietTest
{
  protected:
    void
    SetUp() override
    {
        if (corpusDir().empty() || !std::getenv("PARALOG_DUMP"))
            GTEST_SKIP()
                << "PARALOG_CORPUS/PARALOG_DUMP not set (run under "
                   "CTest)";
    }

    /** Run the built inspector; returns its exit code, fills @p out. */
    int
    runDump(const std::string &flags_and_path, std::string &out)
    {
        std::string cmd = "'" + std::string(std::getenv("PARALOG_DUMP")) +
                          "' " + flags_and_path + " 2>&1";
        FILE *pipe = popen(cmd.c_str(), "r");
        if (!pipe) {
            ADD_FAILURE() << "popen failed for: " << cmd;
            return -1;
        }
        out.clear();
        char buf[4096];
        std::size_t n;
        while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
            out.append(buf, n);
        int status = pclose(pipe);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
};

TEST_F(DumpGoldens, EveryCorpusFileMatchesItsGolden)
{
    for (const CorpusEntry &e : allEntries()) {
        std::string trace = corpusDir() + "/" + e.stem() + ".trace";
        std::string golden_path =
            corpusDir() + "/golden/" + e.stem() + ".dump";
        std::string golden = slurpText(golden_path);
        ASSERT_FALSE(golden.empty())
            << golden_path << " is missing — regenerate with "
            << "tests/corpus/generate.sh";

        std::string out;
        int rc = runDump("--ops=3 '" + trace + "'", out);
        EXPECT_EQ(rc, 0) << out;
        EXPECT_EQ(out, golden)
            << e.stem() << ": paralog-dump output drifted from its "
            << "golden — if the change is deliberate, regenerate "
            << "tests/corpus/";
    }
}

TEST_F(DumpGoldens, HeapReadPathPrintsTheSameDump)
{
    // --no-mmap exercises the reader's heap fallback end to end; the
    // bytes printed must not depend on how the file was loaded.
    CorpusEntry e{LifeguardKind::kTaintCheck, MemoryModel::kTSO, 2};
    std::string trace = corpusDir() + "/" + e.stem() + ".trace";
    std::string a, b;
    EXPECT_EQ(runDump("--ops=3 '" + trace + "'", a), 0);
    EXPECT_EQ(runDump("--no-mmap --ops=3 '" + trace + "'", b), 0);
    EXPECT_EQ(a, b);
}

TEST_F(DumpGoldens, RejectsGarbageWithAnError)
{
    std::string bad = ::testing::TempDir() + "paralog_dump_garbage_" +
                      std::to_string(::getpid()) + ".trace";
    std::FILE *f = std::fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 200; ++i)
        std::fputc(0x5A, f);
    std::fclose(f);
    std::string out;
    EXPECT_EQ(runDump("'" + bad + "'", out), 1);
    EXPECT_NE(out.find("bad magic"), std::string::npos) << out;
    std::remove(bad.c_str());
}

} // namespace
} // namespace paralog
