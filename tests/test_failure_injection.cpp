/**
 * @file
 * Failure-injection tests: disable or distort individual ParaLog
 * mechanisms and check both that the system stays sound where it must,
 * and that the mechanisms are observably load-bearing.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/fault_injection.hpp"
#include "harness/paralog_test.hpp"
#include "lifeguard/addrcheck.hpp"

namespace paralog {
namespace {

class FailureInjection : public test::QuietTest
{
};

TEST_F(FailureInjection, DisablingConflictAlertsSkipsBarriers)
{
    // With CA disabled the platform issues no broadcasts; with CA
    // enabled swaptions issues one per malloc/free. The barrier time
    // disappears with them — quantifying what the mechanism costs.
    ExperimentOptions on;
    on.scale = 8000;
    ExperimentOptions off = on;
    off.conflictAlerts = false;

    PlatformConfig cfg_on = makeConfig(WorkloadKind::kSwaptions,
                                       LifeguardKind::kAddrCheck,
                                       MonitorMode::kParallel, 4, on);
    Platform p_on(cfg_on);
    RunResult r_on = p_on.run();
    EXPECT_GT(p_on.caManager().issued(), 0u);

    PlatformConfig cfg_off = makeConfig(WorkloadKind::kSwaptions,
                                        LifeguardKind::kAddrCheck,
                                        MonitorMode::kParallel, 4, off);
    Platform p_off(cfg_off);
    RunResult r_off = p_off.run();
    EXPECT_EQ(p_off.caManager().issued(), 0u);

    Cycle ca_on = 0, ca_off = 0;
    for (const auto &l : r_on.lifeguard)
        ca_on += l.caStall;
    for (const auto &l : r_off.lifeguard)
        ca_off += l.caStall;
    EXPECT_GT(ca_on, 0u);
    EXPECT_EQ(ca_off, 0u);
}

TEST_F(FailureInjection, LogicalRaceInvisibleToCoherence)
{
    // The premise of section 4.3: the allocator only touches block
    // headers, so a free() and an access to the payload interior live
    // on disjoint cache lines and no coherence message links them.
    Heap heap(0x1000000, 1 << 20);
    Addr a = heap.allocate(512);
    Addr hdr = Heap::headerAddr(a);
    Addr interior = a + 256;
    EXPECT_GT(interior - hdr, 64u); // different 64-byte lines
    heap.release(a);

    // And through the memory system: thread 0 touches the header line,
    // thread 1 loads the interior — no arc is generated.
    SimConfig cfg = SimConfig::forAppThreads(2);
    MemorySystem mem(cfg, 2);
    mem.bindThread(0, 0);
    mem.bindThread(1, 1);
    mem.access(0, hdr, 8, true, AccessTag{0, 1, 0}, true);
    AccessResult r =
        mem.access(1, interior, 8, false, AccessTag{1, 1, 1}, true);
    EXPECT_TRUE(r.arcs.empty());
}

TEST_F(FailureInjection, CaOrderingKeepsAddrCheckSound)
{
    // With the full mechanism, the malloc/free-heavy workload produces
    // no false AddrCheck violations: the CA barrier orders every free's
    // metadata update against remote accesses even where no dependence
    // arc connects them.
    ExperimentOptions o;
    o.scale = 8000;
    RunResult r = runExperiment(WorkloadKind::kSwaptions,
                                LifeguardKind::kAddrCheck,
                                MonitorMode::kParallel, 4, o);
    EXPECT_EQ(r.violationCount, 0u);
}

TEST_F(FailureInjection, WatchdogCatchesRunaway)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ExperimentOptions o;
    o.scale = 8000;
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, o);
    cfg.maxCycles = 10; // absurdly small: must trip the watchdog
    EXPECT_DEATH(
        {
            Platform p(cfg);
            p.run();
        },
        "watchdog");
}

TEST_F(FailureInjection, TinyLogBufferStillCorrect)
{
    ExperimentOptions o;
    o.scale = 4000;
    o.logBufferBytes = 64; // pathological back-pressure
    RunResult r = runExperiment(WorkloadKind::kOcean,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kParallel, 2, o);
    EXPECT_EQ(r.violationCount, 0u);
}

TEST_F(FailureInjection, ZeroThresholdStillCorrect)
{
    // advertiseThreshold = 0 forces constant accelerator flushing:
    // slower, but never wrong.
    ExperimentOptions o;
    o.scale = 4000;
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, o);
    cfg.sim.accel.advertiseThreshold = 0;
    Platform p(cfg);
    RunResult r = p.run();
    EXPECT_EQ(r.violationCount, 0u);
}

// ----------------------------------------- the fault-injection registry

/** Registry unit tests run with a scrubbed environment and no
 *  programmatic arms left behind. */
class FaultRegistry : public test::QuietTest
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("PARALOG_FAULT");
        ::unsetenv("PARALOG_FAIL_CELL");
        ::unsetenv("PARALOG_FAIL_LG");
        clearAllFaults();
    }
    void TearDown() override { SetUp(); }
};

TEST_F(FaultRegistry, UnarmedPointIsSilent)
{
    EXPECT_FALSE(faultValue("cell.fail").has_value());
    EXPECT_FALSE(faultHits("cell.fail", 0));
}

TEST_F(FaultRegistry, ProgrammaticArmAndClear)
{
    armFault("daemon.stall-worker", 25);
    ASSERT_TRUE(faultValue("daemon.stall-worker").has_value());
    EXPECT_EQ(*faultValue("daemon.stall-worker"), 25u);
    EXPECT_TRUE(faultHits("daemon.stall-worker", 25));
    EXPECT_FALSE(faultHits("daemon.stall-worker", 24));
    clearFault("daemon.stall-worker");
    EXPECT_FALSE(faultValue("daemon.stall-worker").has_value());
}

TEST_F(FaultRegistry, EnvSpecParsesEntriesAndBareNames)
{
    ::setenv("PARALOG_FAULT", "cell.fail=3;daemon.stall-worker=50,job.fail",
             1);
    EXPECT_EQ(*faultValue("cell.fail"), 3u);
    EXPECT_EQ(*faultValue("daemon.stall-worker"), 50u);
    EXPECT_EQ(*faultValue("job.fail"), 0u); // bare name arms with 0
    EXPECT_FALSE(faultValue("lg.fail").has_value());
}

TEST_F(FaultRegistry, LegacyAliasesStillArmTheNewNames)
{
    ::setenv("PARALOG_FAIL_CELL", "2", 1);
    ::setenv("PARALOG_FAIL_LG", "1", 1);
    EXPECT_EQ(*faultValue("cell.fail"), 2u);
    EXPECT_EQ(*faultValue("lg.fail"), 1u);

    // An explicit PARALOG_FAULT entry wins over the alias...
    ::setenv("PARALOG_FAULT", "cell.fail=5", 1);
    EXPECT_EQ(*faultValue("cell.fail"), 5u);
    // ...and a programmatic arm wins over both.
    armFault("cell.fail", 9);
    EXPECT_EQ(*faultValue("cell.fail"), 9u);
}

TEST_F(FaultRegistry, ArmedCellFailIsContainedByRunMatrix)
{
    // The registry path end-to-end: arm cell.fail programmatically (no
    // environment involved) and watch the matrix contain exactly that
    // cell.
    armFault("cell.fail", 0);
    std::vector<RunSpec> specs(2);
    for (RunSpec &s : specs) {
        s.workload = WorkloadKind::kLu;
        s.lifeguard = LifeguardKind::kTaintCheck;
        s.mode = MonitorMode::kParallel;
        s.cores = 2;
        s.opt = opts(2000);
    }
    std::vector<CellResult> cells = runMatrix(specs, 1);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_TRUE(cells[0].failed);
    EXPECT_NE(cells[0].error.find("injected failure"),
              std::string::npos);
    EXPECT_FALSE(cells[1].failed);
}

TEST_F(FailureInjection, OneEntryStoreBufferStillCorrectUnderTso)
{
    ExperimentOptions o;
    o.scale = 4000;
    o.memoryModel = MemoryModel::kTSO;
    PlatformConfig cfg = makeConfig(WorkloadKind::kOcean,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, o);
    cfg.sim.storeBufferEntries = 1;
    Platform p(cfg);
    RunResult r = p.run();
    EXPECT_EQ(r.violationCount, 0u);
}

} // namespace
} // namespace paralog
