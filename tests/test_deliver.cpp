/**
 * @file
 * Unit tests for order enforcement: progress table, dependence arcs,
 * ConflictAlert barrier halves, version stalls, range table, and the
 * batched delivery fast path (must match single-pop exactly).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "deliver/order_enforce.hpp"
#include "lifeguard/version_store.hpp"

namespace paralog {
namespace {

TEST(ProgressTable, PublishMonotonic)
{
    ProgressTable pt(2);
    pt.publish(0, 10);
    pt.publish(0, 5); // may not move backwards
    EXPECT_EQ(pt.done(0), 10u);
    pt.publish(0, 20);
    EXPECT_EQ(pt.done(0), 20u);
}

TEST(ProgressTable, ArcSatisfaction)
{
    ProgressTable pt(2);
    pt.publish(1, 10);
    EXPECT_TRUE(pt.satisfied(DepArc{1, 9}));
    EXPECT_FALSE(pt.satisfied(DepArc{1, 10}));
    EXPECT_FALSE(pt.satisfied(DepArc{1, 11}));
}

TEST(ProgressTable, FinishIsInfinite)
{
    ProgressTable pt(2);
    pt.finish(1);
    EXPECT_TRUE(pt.satisfied(DepArc{1, 1ULL << 60}));
}

TEST(RangeTable, DetectsOverlap)
{
    RangeTable rt;
    rt.insert(3, AddrRange{0x1000, 0x1100});
    EXPECT_TRUE(rt.races(0x1000, 8));
    EXPECT_TRUE(rt.races(0x10F8, 8));
    EXPECT_FALSE(rt.races(0x1100, 8));
    rt.remove(3);
    EXPECT_FALSE(rt.races(0x1000, 8));
}

TEST(RangeTable, OneEntryPerIssuer)
{
    RangeTable rt;
    rt.insert(1, AddrRange{0x1000, 0x1100});
    rt.insert(1, AddrRange{0x2000, 0x2100}); // replaces
    EXPECT_FALSE(rt.races(0x1000, 8));
    EXPECT_TRUE(rt.races(0x2000, 8));
}

class EnforceTest : public ::testing::Test
{
  protected:
    EnforceTest()
        : cfg(SimConfig::forAppThreads(2)), progress(2), ca(2),
          unit0(0, cfg, EventFilter{}), unit1(1, cfg, EventFilter{}),
          enf0(0, unit0, progress, ca,
               [this](const VersionTag &v) {
                   return versions.available(v);
               }),
          enf1(1, unit1, progress, ca, [this](const VersionTag &v) {
              return versions.available(v);
          })
    {
    }

    AppEvent
    load(ThreadId tid, RecordId rid, Addr addr = 0x100)
    {
        AppEvent ev;
        ev.record.type = EventType::kLoad;
        ev.record.tid = tid;
        ev.record.rid = rid;
        ev.record.addr = addr;
        ev.record.size = 8;
        return ev;
    }

    SimConfig cfg;
    ProgressTable progress;
    CaManager ca;
    VersionStore versions;
    CaptureUnit unit0;
    CaptureUnit unit1;
    OrderEnforcer enf0;
    OrderEnforcer enf1;
};

TEST_F(EnforceTest, EmptyStream)
{
    OrderEnforcer::Delivery d;
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kEmpty);
}

TEST_F(EnforceTest, DeliversWithoutArc)
{
    unit0.append(load(0, 0));
    OrderEnforcer::Delivery d;
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kDelivered);
    EXPECT_EQ(d.rec.rid, 0u);
}

TEST_F(EnforceTest, ArcStallsUntilProgress)
{
    AppEvent ev = load(0, 0);
    ev.arcs.push_back(RawArc{1, 5, false});
    unit0.append(ev);
    OrderEnforcer::Delivery d;
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kDepStall);
    progress.publish(1, 5); // done=5 means rid 5 NOT yet complete
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kDepStall);
    progress.publish(1, 6);
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kDelivered);
}

TEST_F(EnforceTest, VersionStallUntilProduced)
{
    AppEvent ev = load(0, 0);
    ev.record.consumesVersion = true;
    ev.record.version = VersionTag{1, 7};
    unit0.append(ev);
    OrderEnforcer::Delivery d;
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kVersionStall);
    versions.produce(VersionTag{1, 7}, VersionStore::Versioned{1, 0x100, 8});
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kDelivered);
}

TEST_F(EnforceTest, CaBarrierBothHalves)
{
    // Thread 0 issues a free at rid 10 with a CA broadcast.
    unit0.setRetired(10);
    AppEvent freeEv;
    freeEv.record.type = EventType::kFreeBegin;
    freeEv.record.tid = 0;
    freeEv.record.rid = 10;
    freeEv.record.range = AddrRange{0x1000, 0x1040};
    unit0.append(freeEv);

    unit1.setRetired(4); // thread 1 has retired 4 records
    unit1.append(load(1, 2));

    std::vector<CaptureUnit *> units{&unit0, &unit1};
    std::vector<bool> alive{true, true};
    ca.broadcast(0, 10, HighLevelKind::kFreeBegin,
                 AddrRange{0x1000, 0x1040}, units, alive);
    unit0.buffer().findByRid(10)->caSeq = 0;

    // Issuer half: thread 0's lifeguard may not process the free until
    // thread 1 consumed everything before its CA record (arrival = 4).
    OrderEnforcer::Delivery d;
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kCaStall);

    // Thread 1 processes its pre-CA record and the CA record itself.
    EXPECT_EQ(enf1.tryDeliver(d), DeliverStatus::kDelivered); // the load
    progress.publish(1, 4);
    EXPECT_EQ(enf1.tryDeliver(d), DeliverStatus::kDelivered); // CA record
    EXPECT_EQ(d.rec.type, EventType::kCaBegin);

    // Waiter half: thread 1 now stalls until the issuer processed the
    // free...
    EXPECT_EQ(enf1.tryDeliver(d), DeliverStatus::kCaStall);

    // ...which it now can, since thread 1 arrived.
    EXPECT_EQ(enf0.tryDeliver(d), DeliverStatus::kDelivered);
    EXPECT_EQ(d.rec.type, EventType::kFreeBegin);
    progress.publish(0, 11);

    // And thread 1 resumes.
    unit1.append(load(1, 5));
    EXPECT_EQ(enf1.tryDeliver(d), DeliverStatus::kDelivered);
    EXPECT_EQ(ca.liveBroadcasts(), 0u); // broadcast retired
}

TEST_F(EnforceTest, SyscallCaMaintainsRangeTable)
{
    unit0.setRetired(1);
    std::vector<CaptureUnit *> units{&unit0, &unit1};
    std::vector<bool> alive{true, true};

    // Thread 0 issues a syscall-begin CA over [0x4000, 0x4040).
    ca.broadcast(0, 0, HighLevelKind::kSyscallBegin,
                 AddrRange{0x4000, 0x4040}, units, alive);
    progress.publish(0, 1); // issuer already processed the begin

    OrderEnforcer::Delivery d;
    ASSERT_EQ(enf1.tryDeliver(d), DeliverStatus::kDelivered);
    EXPECT_EQ(d.rec.type, EventType::kCaBegin);

    // A load racing the in-flight syscall range is flagged.
    unit1.append(load(1, 1, 0x4010));
    ASSERT_EQ(enf1.tryDeliver(d), DeliverStatus::kDelivered);
    EXPECT_TRUE(d.racesSyscall);

    // After CA-End the flag clears.
    ca.broadcast(0, 1, HighLevelKind::kSyscallEnd,
                 AddrRange{0x4000, 0x4040}, units, alive);
    progress.publish(0, 2);
    ASSERT_EQ(enf1.tryDeliver(d), DeliverStatus::kDelivered); // CA-End
    unit1.append(load(1, 2, 0x4010));
    ASSERT_EQ(enf1.tryDeliver(d), DeliverStatus::kDelivered);
    EXPECT_FALSE(d.racesSyscall);
}

TEST_F(EnforceTest, CaSkipsDeadThreads)
{
    unit0.setRetired(5);
    std::vector<CaptureUnit *> units{&unit0, &unit1};
    std::vector<bool> alive{true, false}; // thread 1 exited
    ca.broadcast(0, 5, HighLevelKind::kFreeBegin, AddrRange{0, 64},
                 units, alive);
    const CaBroadcast *b = ca.find(0);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->arrivalRid[1], kInvalidRecord);
    EXPECT_TRUE(unit1.consumerEmpty()); // no CA record inserted
}

TEST_F(EnforceTest, BatchMatchesSinglePop)
{
    // Identical streams on both units: plain loads with a satisfied arc
    // in the middle and an unsatisfiable arc near the end.
    progress.publish(1, 3);
    progress.publish(0, 3);
    auto build = [this](CaptureUnit &unit, ThreadId tid,
                        ThreadId arc_tid) {
        for (RecordId r = 0; r < 12; ++r) {
            AppEvent ev = load(tid, r, 0x100 + 8 * r);
            if (r == 5)
                ev.arcs.push_back(RawArc{arc_tid, 2, false}); // satisfied
            if (r == 9)
                ev.arcs.push_back(RawArc{arc_tid, 50, false}); // stalls
            unit.append(ev);
        }
    };
    build(unit0, 0, 1);
    build(unit1, 1, 0);

    // Drain unit0 single-pop, unit1 via the batch fast path.
    std::vector<RecordId> single, batched;
    OrderEnforcer::Delivery d;
    while (enf0.tryDeliver(d) == DeliverStatus::kDelivered)
        single.push_back(d.rec.rid);

    OrderEnforcer::BatchItem item;
    bool continuation = false;
    while (enf1.tryDeliverBatch(item, continuation) ==
           DeliverStatus::kDelivered) {
        batched.push_back(item.rec->rid);
        enf1.commitDelivered();
        continuation = true;
    }

    EXPECT_EQ(single, batched);
    EXPECT_EQ(single.size(), 9u); // rids 0..8; rid 9 stalls on its arc
    // Identical delivery accounting and progress-publish inputs: the
    // value a lifeguard would publish is the unit's progress ceiling.
    EXPECT_EQ(enf0.stats.get("delivered"), enf1.stats.get("delivered"));
    EXPECT_EQ(unit0.progressCeiling(), unit1.progressCeiling());
    // The batch ended on the unsatisfied arc without accounting a
    // modelled stall; the authoritative (first, non-continuation) check
    // is the one that records it.
    EXPECT_EQ(enf1.stats.get("dep_stalls"), 0u);
    EXPECT_EQ(enf1.tryDeliverBatch(item, false), DeliverStatus::kDepStall);
    EXPECT_EQ(enf1.stats.get("dep_stalls"), 1u);
}

TEST(BatchDeliveryEquivalence, RunsIdenticalAcrossBatchSizes)
{
    // End-to-end guarantee of the batched fast path: every simulated
    // statistic is bit-identical for any deliverBatchMax, including the
    // published progress interleavings it amortizes.
    setQuiet(true);
    ExperimentOptions opt;
    opt.scale = 6000;
    auto run = [&](const char *batch, WorkloadKind w, MonitorMode m) {
        setenv("PARALOG_DELIVER_BATCH", batch, 1);
        RunResult r = runExperiment(w, LifeguardKind::kAddrCheck, m, 2,
                                    opt);
        unsetenv("PARALOG_DELIVER_BATCH");
        return r;
    };
    for (WorkloadKind w : {WorkloadKind::kSwaptions, WorkloadKind::kFmm}) {
        for (MonitorMode m :
             {MonitorMode::kParallel, MonitorMode::kTimesliced}) {
            RunResult a = run("1", w, m);
            RunResult b = run("64", w, m);
            EXPECT_EQ(a.totalCycles, b.totalCycles);
            EXPECT_EQ(a.violationCount, b.violationCount);
            ASSERT_EQ(a.lifeguard.size(), b.lifeguard.size());
            for (std::size_t i = 0; i < a.lifeguard.size(); ++i) {
                EXPECT_EQ(a.lifeguard[i].usefulCycles,
                          b.lifeguard[i].usefulCycles);
                EXPECT_EQ(a.lifeguard[i].depStall,
                          b.lifeguard[i].depStall);
                EXPECT_EQ(a.lifeguard[i].appStall,
                          b.lifeguard[i].appStall);
                EXPECT_EQ(a.lifeguard[i].recordsProcessed,
                          b.lifeguard[i].recordsProcessed);
                EXPECT_EQ(a.lifeguard[i].eventsHandled,
                          b.lifeguard[i].eventsHandled);
                EXPECT_EQ(a.lifeguard[i].doneAt, b.lifeguard[i].doneAt);
            }
            for (std::size_t i = 0; i < a.app.size(); ++i) {
                EXPECT_EQ(a.app[i].logFullStall, b.app[i].logFullStall);
                EXPECT_EQ(a.app[i].retired, b.app[i].retired);
            }
        }
    }
}

TEST(VersionStoreTest, ProduceConsume)
{
    VersionStore vs;
    VersionTag v{2, 42};
    EXPECT_FALSE(vs.available(v));
    vs.produce(v, VersionStore::Versioned{0x3, 0x100, 8});
    EXPECT_TRUE(vs.available(v));
    auto data = vs.consume(v);
    EXPECT_EQ(data.bits, 0x3u);
    EXPECT_FALSE(vs.available(v)); // consumed once
    EXPECT_EQ(vs.size(), 0u);
}

} // namespace
} // namespace paralog
