/** @file Unit tests for the memory hierarchy and dependence capture. */

#include <gtest/gtest.h>

#include "mem/memory_system.hpp"

namespace paralog {
namespace {

SimConfig
smallConfig()
{
    SimConfig cfg = SimConfig::forAppThreads(2);
    return cfg;
}

class MemTest : public ::testing::Test
{
  protected:
    MemTest() : cfg(smallConfig()), mem(cfg, 4)
    {
        for (CoreId c = 0; c < 4; ++c)
            mem.bindThread(c, c);
    }

    AccessTag
    tag(ThreadId t, RecordId r, Cycle cyc = 0)
    {
        return AccessTag{t, r, cyc};
    }

    SimConfig cfg;
    MemorySystem mem;
};

TEST_F(MemTest, MainMemoryReadWrite)
{
    MainMemory &m = mem.memory();
    m.write(0x1000, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788ULL);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344ULL);
    EXPECT_EQ(m.read(0x1007, 1), 0x11ULL);
}

TEST_F(MemTest, MainMemoryCrossPage)
{
    MainMemory &m = mem.memory();
    Addr a = MainMemory::kPageBytes - 4;
    m.write(a, 8, 0xAABBCCDDEEFF0011ULL);
    EXPECT_EQ(m.read(a, 8), 0xAABBCCDDEEFF0011ULL);
    EXPECT_GE(m.pageCount(), 2u);
}

TEST_F(MemTest, UnwrittenMemoryReadsZero)
{
    EXPECT_EQ(mem.memory().read(0xDEAD0000, 8), 0u);
}

TEST_F(MemTest, L1HitLatency)
{
    AccessResult r1 = mem.access(0, 0x1000, 8, false, tag(0, 0), true);
    EXPECT_GT(r1.latency, cfg.l1d.hitLatency); // cold miss
    AccessResult r2 = mem.access(0, 0x1000, 8, false, tag(0, 1), true);
    EXPECT_EQ(r2.latency, cfg.l1d.hitLatency); // warm hit
}

TEST_F(MemTest, ColdMissGoesToMemory)
{
    AccessResult r = mem.access(0, 0x2000, 8, false, tag(0, 0), true);
    EXPECT_GE(r.latency, cfg.memLatency);
}

TEST_F(MemTest, L2HitAfterRemoteFill)
{
    // Core 0 loads (fills L2); core 1's miss should hit in L2.
    mem.access(0, 0x3000, 8, false, tag(0, 0), true);
    AccessResult r = mem.access(1, 0x3000, 8, false, tag(1, 0), true);
    EXPECT_LT(r.latency, cfg.memLatency);
    EXPECT_GE(r.latency, cfg.l2.hitLatency);
}

TEST_F(MemTest, StatesFollowMesi)
{
    mem.access(0, 0x4000, 8, false, tag(0, 0), true);
    EXPECT_EQ(mem.l1State(0, 0x4000), LineState::kExclusive);

    mem.access(0, 0x4000, 8, true, tag(0, 1), true);
    EXPECT_EQ(mem.l1State(0, 0x4000), LineState::kModified);

    mem.access(1, 0x4000, 8, false, tag(1, 0), true);
    EXPECT_EQ(mem.l1State(0, 0x4000), LineState::kShared);
    EXPECT_EQ(mem.l1State(1, 0x4000), LineState::kShared);

    mem.access(1, 0x4000, 8, true, tag(1, 1), true);
    EXPECT_EQ(mem.l1State(0, 0x4000), LineState::kInvalid);
    EXPECT_EQ(mem.l1State(1, 0x4000), LineState::kModified);
}

TEST_F(MemTest, RawArcOnReadOfModified)
{
    // Core 0 (thread 0) writes; core 1 (thread 1) reads -> RAW arc.
    mem.access(0, 0x5000, 8, true, tag(0, 42), true);
    AccessResult r = mem.access(1, 0x5000, 8, false, tag(1, 7), true);
    ASSERT_EQ(r.arcs.size(), 1u);
    EXPECT_EQ(r.arcs[0].tid, 0u);
    EXPECT_EQ(r.arcs[0].rid, 42u);
}

TEST_F(MemTest, WarArcOnWriteInvalidatingReader)
{
    mem.access(0, 0x6000, 8, false, tag(0, 10), true); // reader
    AccessResult r = mem.access(1, 0x6000, 8, true, tag(1, 3), true);
    ASSERT_GE(r.arcs.size(), 1u);
    EXPECT_EQ(r.arcs[0].tid, 0u);
    EXPECT_EQ(r.arcs[0].rid, 10u);
    EXPECT_TRUE(r.arcs[0].fromRead);
}

TEST_F(MemTest, UpgradeCollectsArcsFromAllSharers)
{
    mem.access(0, 0x7000, 8, false, tag(0, 1), true);
    mem.access(1, 0x7000, 8, false, tag(1, 2), true);
    mem.access(2, 0x7000, 8, false, tag(2, 3), true);
    // Core 2 upgrades: arcs from threads 0 and 1 (not itself).
    AccessResult r = mem.access(2, 0x7000, 8, true, tag(2, 4), true);
    EXPECT_EQ(r.arcs.size(), 2u);
}

TEST_F(MemTest, NoArcWithinSameThread)
{
    mem.access(0, 0x8000, 8, true, tag(5, 1), true);
    AccessResult r = mem.access(0, 0x8000, 8, false, tag(5, 2), true);
    EXPECT_TRUE(r.arcs.empty());
}

TEST_F(MemTest, NoArcsWhenCaptureDisabled)
{
    mem.access(0, 0x9000, 8, true, tag(0, 1), true);
    AccessResult r = mem.access(1, 0x9000, 8, false, tag(1, 1), false);
    EXPECT_TRUE(r.arcs.empty());
}

TEST_F(MemTest, RawArcSurvivesL2Writeback)
{
    // Writer's line leaves its L1 via a flush; the directory preserves
    // the writer tag so a later reader is still ordered after it.
    mem.access(0, 0xA000, 8, true, tag(0, 99), true);
    mem.flushL1(0);
    AccessResult r = mem.access(1, 0xA000, 8, false, tag(1, 1), true);
    ASSERT_EQ(r.arcs.size(), 1u);
    EXPECT_EQ(r.arcs[0].tid, 0u);
    EXPECT_EQ(r.arcs[0].rid, 99u);
}

TEST_F(MemTest, KernelWriteInvalidatesWithoutArcs)
{
    mem.access(0, 0xB000, 8, true, tag(0, 5), true);
    mem.kernelWrite(0xB000, 8, 0x1234);
    EXPECT_EQ(mem.l1State(0, 0xB000), LineState::kInvalid);
    EXPECT_EQ(mem.memory().read(0xB000, 8), 0x1234u);
    // Reader after the kernel write: the OS activity left no tag, so
    // there is no arc — the gap ConflictAlert compensates for.
    AccessResult r = mem.access(1, 0xB000, 8, false, tag(1, 1), true);
    EXPECT_TRUE(r.arcs.empty());
}

TEST_F(MemTest, PerCoreTrackingUsesCurrentCounter)
{
    SimConfig cfg2 = smallConfig();
    cfg2.depTracking = DepTracking::kPerCore;
    MemorySystem m2(cfg2, 2);
    m2.bindThread(0, 0);
    m2.bindThread(1, 1);
    m2.access(0, 0x1000, 8, true, AccessTag{0, 10, 0}, true);
    m2.setCoreCounter(0, 500); // thread 0 has retired far past the write
    AccessResult r = m2.access(1, 0x1000, 8, false, AccessTag{1, 1, 0},
                               true);
    ASSERT_EQ(r.arcs.size(), 1u);
    // Limited reduction: conservative current counter (less one: the
    // producing access already retired), not the per-block rid.
    EXPECT_EQ(r.arcs[0].rid, 499u);
}

TEST_F(MemTest, TsoViolationProducesVersionRequest)
{
    SimConfig cfg2 = smallConfig();
    cfg2.memoryModel = MemoryModel::kTSO;
    MemorySystem m2(cfg2, 2);
    m2.bindThread(0, 0);
    m2.bindThread(1, 1);
    // Thread 0 reads at retire cycle 100; thread 1's store retired at
    // cycle 50 but drains later: non-SC R->W.
    m2.access(0, 0x1000, 8, false, AccessTag{0, 10, 100}, true);
    AccessResult r =
        m2.access(1, 0x1000, 8, true, AccessTag{1, 5, 50}, true);
    EXPECT_TRUE(r.arcs.empty());
    ASSERT_EQ(r.versionRequests.size(), 1u);
    EXPECT_EQ(r.versionRequests[0].readerTid, 0u);
    EXPECT_EQ(r.versionRequests[0].readerRid, 10u);
}

TEST_F(MemTest, ScOrderProducesWarArcNotVersion)
{
    SimConfig cfg2 = smallConfig();
    cfg2.memoryModel = MemoryModel::kTSO;
    MemorySystem m2(cfg2, 2);
    m2.bindThread(0, 0);
    m2.bindThread(1, 1);
    // Read retired *before* the store retired: plain WAR arc.
    m2.access(0, 0x1000, 8, false, AccessTag{0, 10, 30}, true);
    AccessResult r =
        m2.access(1, 0x1000, 8, true, AccessTag{1, 5, 50}, true);
    EXPECT_EQ(r.versionRequests.size(), 0u);
    ASSERT_EQ(r.arcs.size(), 1u);
    EXPECT_EQ(r.arcs[0].rid, 10u);
}

// Cache model basics.
TEST(Cache, LruEviction)
{
    CacheParams p{4 * 64, 64, 4, 1}; // one set, 4 ways
    Cache c(p, "t");
    Cache::Victim v;
    for (Addr a = 0; a < 4 * 64; a += 64)
        c.insert(a, LineState::kExclusive, &v);
    EXPECT_FALSE(v.valid);
    c.lookup(0); // make line 0 most recently used
    c.insert(4 * 64, LineState::kExclusive, &v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 64u); // line 1 was LRU
}

TEST(Cache, HitAndMissCounters)
{
    CacheParams p{64 * 1024, 64, 4, 2};
    Cache c(p, "t");
    EXPECT_EQ(c.lookup(0x100), nullptr);
    c.insert(0x100, LineState::kShared, nullptr);
    EXPECT_NE(c.lookup(0x100), nullptr);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
}

TEST(Cache, InvalidateAndFlush)
{
    CacheParams p{64 * 1024, 64, 4, 2};
    Cache c(p, "t");
    c.insert(0x100, LineState::kModified, nullptr);
    c.invalidate(0x100);
    EXPECT_EQ(c.lookup(0x100), nullptr);
    c.insert(0x200, LineState::kModified, nullptr);
    c.flushAll();
    EXPECT_EQ(c.lookup(0x200), nullptr);
}

TEST(Cache, SameSetDifferentTags)
{
    CacheParams p{2 * 64, 64, 2, 1}; // 1 set, 2 ways
    Cache c(p, "t");
    c.insert(0x0, LineState::kExclusive, nullptr);
    c.insert(0x1000, LineState::kExclusive, nullptr);
    EXPECT_NE(c.probe(0x0), nullptr);
    EXPECT_NE(c.probe(0x1000), nullptr);
}

} // namespace
} // namespace paralog
