/**
 * @file
 * Randomized differential suite for the word-wise ShadowMemory fast
 * paths: every operation is checked against a naive per-byte reference
 * model (the semantics of the original implementation) across all four
 * metadata ratios, unaligned ranges, chunk-boundary crossings and the
 * zero-write elision — and, for the sharded chunk table, against the
 * legacy single-shard layout (which must stay bit-identical for every
 * shard count, all the way up to whole-run lifeguard fingerprints).
 */

#include <map>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "harness/paralog_test.hpp"
#include "lifeguard/shadow_memory.hpp"

namespace paralog {
namespace {

/** Naive reference: one masked metadata value per app byte. */
class RefShadow
{
  public:
    explicit RefShadow(std::uint32_t bpb)
        : bpb_(bpb), mask_(static_cast<std::uint8_t>((1u << bpb) - 1))
    {
    }

    std::uint8_t
    read(Addr a) const
    {
        auto it = bytes_.find(a);
        return it == bytes_.end() ? 0 : it->second;
    }

    void write(Addr a, std::uint8_t v) { bytes_[a] = v & mask_; }

    std::uint64_t
    readPacked(Addr a, unsigned n) const
    {
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < n && i < 8; ++i)
            bits |= static_cast<std::uint64_t>(read(a + i)) << (i * bpb_);
        return bits;
    }

    void
    writePacked(Addr a, unsigned n, std::uint64_t bits)
    {
        for (unsigned i = 0; i < n && i < 8; ++i)
            write(a + i, static_cast<std::uint8_t>((bits >> (i * bpb_)) &
                                                   mask_));
    }

    void
    fill(const AddrRange &r, std::uint8_t v)
    {
        for (Addr a = r.begin; a < r.end; ++a)
            write(a, v);
    }

    Addr
    rangeFindNot(const AddrRange &r, std::uint8_t v) const
    {
        for (Addr a = r.begin; a < r.end; ++a) {
            if (read(a) != v)
                return a;
        }
        return kInvalidAddr;
    }

  private:
    std::uint32_t bpb_;
    std::uint8_t mask_;
    std::map<Addr, std::uint8_t> bytes_;
};

class ShadowFastPath : public ::testing::TestWithParam<std::uint32_t>
{
};

/// Address pool biased toward interesting spots: chunk boundaries,
/// byte-subgroup offsets, and plain interior addresses.
Addr
pickAddr(Rng &rng)
{
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;
    switch (rng.below(4)) {
      case 0: // near the first chunk boundary
        return kChunk - 16 + rng.below(32);
      case 1: // near a later chunk boundary
        return 3 * kChunk - 16 + rng.below(32);
      case 2: // small addresses (first chunk)
        return rng.below(512);
      default: // anywhere in a 4-chunk window
        return rng.below(4 * kChunk);
    }
}

TEST_P(ShadowFastPath, RandomizedDifferential)
{
    const std::uint32_t bpb = GetParam();
    ShadowMemory s(bpb);
    RefShadow ref(bpb);
    Rng rng(0xC0FFEE ^ bpb);

    for (int i = 0; i < 20000; ++i) {
        Addr a = pickAddr(rng);
        switch (rng.below(6)) {
          case 1: {
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(256));
            s.write(a, v);
            ref.write(a, v);
            break;
          }
          case 2: {
            unsigned n = static_cast<unsigned>(rng.range(1, 8));
            std::uint64_t bits = rng.next();
            s.writePacked(a, n, bits);
            ref.writePacked(a, n, bits);
            break;
          }
          case 3: {
            std::uint64_t len = rng.range(0, 300);
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(4));
            s.fill(AddrRange{a, a + len}, v);
            ref.fill(AddrRange{a, a + len}, v);
            break;
          }
          case 4: {
            unsigned n = static_cast<unsigned>(rng.range(1, 8));
            ASSERT_EQ(s.readPacked(a, n), ref.readPacked(a, n))
                << "readPacked @" << a << " n=" << n;
            break;
          }
          case 5: {
            std::uint64_t len = rng.range(0, 300);
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(4));
            AddrRange r{a, a + len};
            ASSERT_EQ(s.rangeFindNot(r, v), ref.rangeFindNot(r, v))
                << "rangeFindNot @" << a << " len=" << len;
            ASSERT_EQ(s.rangeAll(r, v),
                      ref.rangeFindNot(r, v) == kInvalidAddr);
            break;
          }
          default:
            ASSERT_EQ(s.read(a), ref.read(a)) << "read @" << a;
            break;
        }
    }

    // Full sweep at the end: every byte of the exercised window agrees.
    for (Addr a = 0; a < 600; ++a)
        ASSERT_EQ(s.read(a), ref.read(a)) << "sweep @" << a;
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;
    for (Addr a = kChunk - 64; a < kChunk + 64; ++a)
        ASSERT_EQ(s.read(a), ref.read(a)) << "boundary sweep @" << a;
}

TEST_P(ShadowFastPath, LargeFillMatchesReference)
{
    const std::uint32_t bpb = GetParam();
    ShadowMemory s(bpb);
    RefShadow ref(bpb);

    // A multi-chunk unaligned fill followed by unaligned re-fills.
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;
    AddrRange big{kChunk - 1000, 2 * kChunk + 1000};
    s.fill(big, 1);
    ref.fill(big, 1);
    AddrRange inner{kChunk - 3, kChunk + 5};
    s.fill(inner, 0);
    ref.fill(inner, 0);

    EXPECT_EQ(s.rangeFindNot(big, 1), ref.rangeFindNot(big, 1));
    for (Addr a = big.begin - 8; a < big.begin + 16; ++a)
        ASSERT_EQ(s.read(a), ref.read(a));
    for (Addr a = kChunk - 8; a < kChunk + 8; ++a)
        ASSERT_EQ(s.read(a), ref.read(a));
    for (Addr a = big.end - 16; a < big.end + 8; ++a)
        ASSERT_EQ(s.read(a), ref.read(a));
}

TEST_P(ShadowFastPath, ZeroWriteElision)
{
    ShadowMemory s(GetParam());
    EXPECT_EQ(s.bytesAllocated(), 0u);

    // Zero writes and zero fills over untouched space allocate nothing.
    s.write(0x5000, 0);
    s.writePacked(0x6000, 8, 0);
    s.fill(AddrRange{0, 4 * ShadowMemory::kChunkAppBytes}, 0);
    EXPECT_EQ(s.chunkCount(), 0u);
    EXPECT_EQ(s.bytesAllocated(), 0u);
    EXPECT_TRUE(s.rangeAll(AddrRange{0x5000, 0x7000}, 0));

    // A non-zero write allocates exactly one chunk...
    s.write(0x5000, 1);
    EXPECT_EQ(s.chunkCount(), 1u);
    std::uint64_t one = s.bytesAllocated();
    EXPECT_EQ(one, ShadowMemory::kChunkAppBytes * GetParam() / 8);

    // ...and zero writes into a *mapped* chunk really clear metadata.
    s.write(0x5000, 0);
    EXPECT_EQ(s.read(0x5000), 0u);
    EXPECT_EQ(s.bytesAllocated(), one);
}

TEST_P(ShadowFastPath, OutOfMaskComparisonNeverMatches)
{
    const std::uint32_t bpb = GetParam();
    if (bpb == 8)
        GTEST_SKIP() << "all 8-bit values are in-mask";
    ShadowMemory s(bpb);
    s.fill(AddrRange{0x100, 0x140}, 1);
    // Stored metadata is masked, so comparing against an out-of-range
    // value reports the first byte (legacy per-byte semantics).
    std::uint8_t big = static_cast<std::uint8_t>((1u << bpb));
    EXPECT_EQ(s.rangeFindNot(AddrRange{0x100, 0x140}, big), 0x100u);
    EXPECT_FALSE(s.rangeAll(AddrRange{0x100, 0x140}, big));
}

INSTANTIATE_TEST_SUITE_P(Ratios, ShadowFastPath,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ------------------------------------------------ sharded chunk table

/** (bits per byte, shard count). */
class ShadowSharding
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(ShadowSharding, DifferentialAgainstLegacyAndReference)
{
    const auto [bpb, shards] = GetParam();
    ShadowMemory sharded(bpb, shards);
    ShadowMemory legacy(bpb, 1); // the unsharded layout
    RefShadow ref(bpb);
    Rng rng(0xBEEF00 ^ (bpb << 8) ^ shards);

    EXPECT_EQ(sharded.shardCount(), shards);
    EXPECT_EQ(legacy.shardCount(), 1u);

    for (int i = 0; i < 12000; ++i) {
        Addr a = pickAddr(rng);
        switch (rng.below(6)) {
          case 1: {
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(256));
            sharded.write(a, v);
            legacy.write(a, v);
            ref.write(a, v);
            break;
          }
          case 2: {
            unsigned n = static_cast<unsigned>(rng.range(1, 8));
            std::uint64_t bits = rng.next();
            sharded.writePacked(a, n, bits);
            legacy.writePacked(a, n, bits);
            ref.writePacked(a, n, bits);
            break;
          }
          case 3: {
            std::uint64_t len = rng.range(0, 300);
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(4));
            sharded.fill(AddrRange{a, a + len}, v);
            legacy.fill(AddrRange{a, a + len}, v);
            ref.fill(AddrRange{a, a + len}, v);
            break;
          }
          case 4: {
            unsigned n = static_cast<unsigned>(rng.range(1, 8));
            std::uint64_t want = ref.readPacked(a, n);
            ASSERT_EQ(sharded.readPacked(a, n), want)
                << "sharded readPacked @" << a << " n=" << n;
            ASSERT_EQ(legacy.readPacked(a, n), want);
            break;
          }
          case 5: {
            std::uint64_t len = rng.range(0, 300);
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(4));
            AddrRange r{a, a + len};
            Addr want = ref.rangeFindNot(r, v);
            ASSERT_EQ(sharded.rangeFindNot(r, v), want)
                << "sharded rangeFindNot @" << a << " len=" << len;
            ASSERT_EQ(legacy.rangeFindNot(r, v), want);
            ASSERT_EQ(sharded.rangeAll(r, v), want == kInvalidAddr);
            break;
          }
          default:
            ASSERT_EQ(sharded.read(a), ref.read(a))
                << "sharded read @" << a;
            ASSERT_EQ(legacy.read(a), sharded.read(a));
            break;
        }
    }

    // The sharded layout allocates the same chunks (just distributed
    // over shard maps) and must fingerprint identically to the legacy
    // layout over the whole exercised window.
    EXPECT_EQ(sharded.chunkCount(), legacy.chunkCount());
    EXPECT_EQ(sharded.bytesAllocated(), legacy.bytesAllocated());
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;
    EXPECT_EQ(test::shadowFingerprint(sharded, 0, 1024),
              test::shadowFingerprint(legacy, 0, 1024));
    EXPECT_EQ(test::shadowFingerprint(sharded, kChunk - 256, 512),
              test::shadowFingerprint(legacy, kChunk - 256, 512));
    EXPECT_EQ(test::shadowFingerprint(sharded, 3 * kChunk - 256, 512),
              test::shadowFingerprint(legacy, 3 * kChunk - 256, 512));
}

TEST_P(ShadowSharding, ZeroWriteElisionPerShard)
{
    const auto [bpb, shards] = GetParam();
    ShadowMemory s(bpb, shards);
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;

    // Zero traffic over many chunks (landing in every shard) allocates
    // nothing, regardless of shard count.
    s.fill(AddrRange{0, 16 * kChunk}, 0);
    for (unsigned c = 0; c < 16; ++c)
        s.write(c * kChunk + 5, 0);
    EXPECT_EQ(s.chunkCount(), 0u);
    EXPECT_EQ(s.bytesAllocated(), 0u);

    // One non-zero write per chunk allocates exactly one chunk each,
    // and the totals aggregate correctly across shard maps.
    for (unsigned c = 0; c < 16; ++c)
        s.write(c * kChunk + 5, 1);
    EXPECT_EQ(s.chunkCount(), 16u);
    EXPECT_EQ(s.bytesAllocated(), 16u * kChunk * bpb / 8);
}

INSTANTIATE_TEST_SUITE_P(
    RatiosTimesShards, ShadowSharding,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

// ----------------------------- whole-run fingerprints, all lifeguards

/**
 * The end-to-end guarantee the tentpole rides on: a full platform run
 * reaches bit-identical analysis conclusions (shadow fingerprints) for
 * every shard count, for all four lifeguards.
 */
class ShardedLifeguardRuns
    : public test::QuietTestWithParam<LifeguardKind>
{
};

TEST_P(ShardedLifeguardRuns, FingerprintIdenticalAcrossShardCounts)
{
    const LifeguardKind lg = GetParam();
    std::uint64_t baseline_fp = 0;
    std::uint64_t baseline_cycles = 0;
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        ExperimentOptions opt = opts(1200);
        opt.shadowShards = shards;
        PlatformConfig cfg = makeConfig(WorkloadKind::kLu, lg,
                                        MonitorMode::kParallel, 2, opt);
        Platform p(cfg);
        RunResult r = p.run();
        ASSERT_EQ(p.lifeguard().shadow().shardCount(), shards);
        std::uint64_t fp =
            test::shadowFingerprint(p.lifeguard().shadow(),
                                    AddressLayout::kHeapBase, 1 << 20) ^
            test::shadowFingerprint(p.lifeguard().shadow(),
                                    AddressLayout::kGlobalBase, 1 << 16);
        if (shards == 1) {
            baseline_fp = fp;
            baseline_cycles = r.totalCycles;
        } else {
            EXPECT_EQ(fp, baseline_fp) << "shards=" << shards;
            EXPECT_EQ(r.totalCycles, baseline_cycles)
                << "shards=" << shards;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllLifeguards, ShardedLifeguardRuns,
                         ::testing::Values(LifeguardKind::kAddrCheck,
                                           LifeguardKind::kTaintCheck,
                                           LifeguardKind::kMemCheck,
                                           LifeguardKind::kLockSet));

} // namespace
} // namespace paralog
