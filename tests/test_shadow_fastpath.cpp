/**
 * @file
 * Randomized differential suite for the word-wise ShadowMemory fast
 * paths: every operation is checked against a naive per-byte reference
 * model (the semantics of the original implementation) across all four
 * metadata ratios, unaligned ranges, chunk-boundary crossings and the
 * zero-write elision.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lifeguard/shadow_memory.hpp"

namespace paralog {
namespace {

/** Naive reference: one masked metadata value per app byte. */
class RefShadow
{
  public:
    explicit RefShadow(std::uint32_t bpb)
        : bpb_(bpb), mask_(static_cast<std::uint8_t>((1u << bpb) - 1))
    {
    }

    std::uint8_t
    read(Addr a) const
    {
        auto it = bytes_.find(a);
        return it == bytes_.end() ? 0 : it->second;
    }

    void write(Addr a, std::uint8_t v) { bytes_[a] = v & mask_; }

    std::uint64_t
    readPacked(Addr a, unsigned n) const
    {
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < n && i < 8; ++i)
            bits |= static_cast<std::uint64_t>(read(a + i)) << (i * bpb_);
        return bits;
    }

    void
    writePacked(Addr a, unsigned n, std::uint64_t bits)
    {
        for (unsigned i = 0; i < n && i < 8; ++i)
            write(a + i, static_cast<std::uint8_t>((bits >> (i * bpb_)) &
                                                   mask_));
    }

    void
    fill(const AddrRange &r, std::uint8_t v)
    {
        for (Addr a = r.begin; a < r.end; ++a)
            write(a, v);
    }

    Addr
    rangeFindNot(const AddrRange &r, std::uint8_t v) const
    {
        for (Addr a = r.begin; a < r.end; ++a) {
            if (read(a) != v)
                return a;
        }
        return kInvalidAddr;
    }

  private:
    std::uint32_t bpb_;
    std::uint8_t mask_;
    std::map<Addr, std::uint8_t> bytes_;
};

class ShadowFastPath : public ::testing::TestWithParam<std::uint32_t>
{
};

/// Address pool biased toward interesting spots: chunk boundaries,
/// byte-subgroup offsets, and plain interior addresses.
Addr
pickAddr(Rng &rng)
{
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;
    switch (rng.below(4)) {
      case 0: // near the first chunk boundary
        return kChunk - 16 + rng.below(32);
      case 1: // near a later chunk boundary
        return 3 * kChunk - 16 + rng.below(32);
      case 2: // small addresses (first chunk)
        return rng.below(512);
      default: // anywhere in a 4-chunk window
        return rng.below(4 * kChunk);
    }
}

TEST_P(ShadowFastPath, RandomizedDifferential)
{
    const std::uint32_t bpb = GetParam();
    ShadowMemory s(bpb);
    RefShadow ref(bpb);
    Rng rng(0xC0FFEE ^ bpb);

    for (int i = 0; i < 20000; ++i) {
        Addr a = pickAddr(rng);
        switch (rng.below(6)) {
          case 1: {
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(256));
            s.write(a, v);
            ref.write(a, v);
            break;
          }
          case 2: {
            unsigned n = static_cast<unsigned>(rng.range(1, 8));
            std::uint64_t bits = rng.next();
            s.writePacked(a, n, bits);
            ref.writePacked(a, n, bits);
            break;
          }
          case 3: {
            std::uint64_t len = rng.range(0, 300);
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(4));
            s.fill(AddrRange{a, a + len}, v);
            ref.fill(AddrRange{a, a + len}, v);
            break;
          }
          case 4: {
            unsigned n = static_cast<unsigned>(rng.range(1, 8));
            ASSERT_EQ(s.readPacked(a, n), ref.readPacked(a, n))
                << "readPacked @" << a << " n=" << n;
            break;
          }
          case 5: {
            std::uint64_t len = rng.range(0, 300);
            std::uint8_t v = static_cast<std::uint8_t>(rng.below(4));
            AddrRange r{a, a + len};
            ASSERT_EQ(s.rangeFindNot(r, v), ref.rangeFindNot(r, v))
                << "rangeFindNot @" << a << " len=" << len;
            ASSERT_EQ(s.rangeAll(r, v),
                      ref.rangeFindNot(r, v) == kInvalidAddr);
            break;
          }
          default:
            ASSERT_EQ(s.read(a), ref.read(a)) << "read @" << a;
            break;
        }
    }

    // Full sweep at the end: every byte of the exercised window agrees.
    for (Addr a = 0; a < 600; ++a)
        ASSERT_EQ(s.read(a), ref.read(a)) << "sweep @" << a;
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;
    for (Addr a = kChunk - 64; a < kChunk + 64; ++a)
        ASSERT_EQ(s.read(a), ref.read(a)) << "boundary sweep @" << a;
}

TEST_P(ShadowFastPath, LargeFillMatchesReference)
{
    const std::uint32_t bpb = GetParam();
    ShadowMemory s(bpb);
    RefShadow ref(bpb);

    // A multi-chunk unaligned fill followed by unaligned re-fills.
    constexpr Addr kChunk = ShadowMemory::kChunkAppBytes;
    AddrRange big{kChunk - 1000, 2 * kChunk + 1000};
    s.fill(big, 1);
    ref.fill(big, 1);
    AddrRange inner{kChunk - 3, kChunk + 5};
    s.fill(inner, 0);
    ref.fill(inner, 0);

    EXPECT_EQ(s.rangeFindNot(big, 1), ref.rangeFindNot(big, 1));
    for (Addr a = big.begin - 8; a < big.begin + 16; ++a)
        ASSERT_EQ(s.read(a), ref.read(a));
    for (Addr a = kChunk - 8; a < kChunk + 8; ++a)
        ASSERT_EQ(s.read(a), ref.read(a));
    for (Addr a = big.end - 16; a < big.end + 8; ++a)
        ASSERT_EQ(s.read(a), ref.read(a));
}

TEST_P(ShadowFastPath, ZeroWriteElision)
{
    ShadowMemory s(GetParam());
    EXPECT_EQ(s.bytesAllocated(), 0u);

    // Zero writes and zero fills over untouched space allocate nothing.
    s.write(0x5000, 0);
    s.writePacked(0x6000, 8, 0);
    s.fill(AddrRange{0, 4 * ShadowMemory::kChunkAppBytes}, 0);
    EXPECT_EQ(s.chunkCount(), 0u);
    EXPECT_EQ(s.bytesAllocated(), 0u);
    EXPECT_TRUE(s.rangeAll(AddrRange{0x5000, 0x7000}, 0));

    // A non-zero write allocates exactly one chunk...
    s.write(0x5000, 1);
    EXPECT_EQ(s.chunkCount(), 1u);
    std::uint64_t one = s.bytesAllocated();
    EXPECT_EQ(one, ShadowMemory::kChunkAppBytes * GetParam() / 8);

    // ...and zero writes into a *mapped* chunk really clear metadata.
    s.write(0x5000, 0);
    EXPECT_EQ(s.read(0x5000), 0u);
    EXPECT_EQ(s.bytesAllocated(), one);
}

TEST_P(ShadowFastPath, OutOfMaskComparisonNeverMatches)
{
    const std::uint32_t bpb = GetParam();
    if (bpb == 8)
        GTEST_SKIP() << "all 8-bit values are in-mask";
    ShadowMemory s(bpb);
    s.fill(AddrRange{0x100, 0x140}, 1);
    // Stored metadata is masked, so comparing against an out-of-range
    // value reports the first byte (legacy per-byte semantics).
    std::uint8_t big = static_cast<std::uint8_t>((1u << bpb));
    EXPECT_EQ(s.rangeFindNot(AddrRange{0x100, 0x140}, big), 0x100u);
    EXPECT_FALSE(s.rangeAll(AddrRange{0x100, 0x140}, big));
}

INSTANTIATE_TEST_SUITE_P(Ratios, ShadowFastPath,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace paralog
