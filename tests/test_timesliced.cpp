/** @file Integration tests for the timesliced-monitoring baseline. */

#include <gtest/gtest.h>

#include "harness/paralog_test.hpp"
#include "lifeguard/taintcheck.hpp"

namespace paralog {
namespace {

class TimeslicedTest : public test::QuietTest
{
};

TEST_F(TimeslicedTest, CompletesAllThreads)
{
    RunResult r = runExperiment(WorkloadKind::kLu,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kTimesliced, 4, opts());
    EXPECT_GT(r.totalCycles, 0u);
    ASSERT_EQ(r.app.size(), 4u);
    for (const auto &a : r.app)
        EXPECT_GT(a.retired, 100u);
}

TEST_F(TimeslicedTest, SameAnalysisResultsAsParallel)
{
    PlatformConfig cfg =
        test::makeScaledConfig(WorkloadKind::kLu,
                               LifeguardKind::kTaintCheck,
                               MonitorMode::kTimesliced, 2);
    Timesliced ts(cfg);
    RunResult r = ts.run();
    EXPECT_EQ(r.violationCount, 0u);
    auto &taint = static_cast<TaintCheck &>(ts.lifeguard());
    EXPECT_TRUE(taint.isTainted(AddressLayout::kGlobalBase, 64));
}

TEST_F(TimeslicedTest, SlowerThanParallel)
{
    ExperimentOptions o = opts(20000);
    RunResult ts = runExperiment(WorkloadKind::kOcean,
                                 LifeguardKind::kTaintCheck,
                                 MonitorMode::kTimesliced, 4, o);
    RunResult par = runExperiment(WorkloadKind::kOcean,
                                  LifeguardKind::kTaintCheck,
                                  MonitorMode::kParallel, 4, o);
    EXPECT_GT(ts.totalCycles, par.totalCycles * 2);
}

TEST_F(TimeslicedTest, CostGrowsWithThreadCount)
{
    // Spin synchronization on one core makes timesliced execution grow
    // with the thread count even at constant total work (Figure 6).
    ExperimentOptions o = opts(20000);
    RunResult t1 = runExperiment(WorkloadKind::kOcean,
                                 LifeguardKind::kTaintCheck,
                                 MonitorMode::kTimesliced, 1, o);
    RunResult t8 = runExperiment(WorkloadKind::kOcean,
                                 LifeguardKind::kTaintCheck,
                                 MonitorMode::kTimesliced, 8, o);
    EXPECT_GT(t8.totalCycles, t1.totalCycles);
}

TEST_F(TimeslicedTest, BarrierWorkloadMakesProgress)
{
    // Barrier-heavy LU across 8 timesliced threads must not deadlock.
    RunResult r = runExperiment(WorkloadKind::kLu,
                                LifeguardKind::kAddrCheck,
                                MonitorMode::kTimesliced, 8, opts(4000));
    EXPECT_GT(r.totalCycles, 0u);
}

TEST_F(TimeslicedTest, LockWorkloadMakesProgress)
{
    RunResult r = runExperiment(WorkloadKind::kFluidanimate,
                                LifeguardKind::kAddrCheck,
                                MonitorMode::kTimesliced, 4, opts(4000));
    EXPECT_GT(r.totalCycles, 0u);
}

TEST_F(TimeslicedTest, MallocWorkloadCorrect)
{
    PlatformConfig cfg =
        test::makeScaledConfig(WorkloadKind::kSwaptions,
                               LifeguardKind::kAddrCheck,
                               MonitorMode::kTimesliced, 2);
    Timesliced ts(cfg);
    RunResult r = ts.run();
    EXPECT_EQ(r.violationCount, 0u);
}

TEST_F(TimeslicedTest, Deterministic)
{
    RunResult a = runExperiment(WorkloadKind::kFmm,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kTimesliced, 2, opts());
    RunResult b = runExperiment(WorkloadKind::kFmm,
                                LifeguardKind::kTaintCheck,
                                MonitorMode::kTimesliced, 2, opts());
    EXPECT_EQ(a.totalCycles, b.totalCycles);
}

} // namespace
} // namespace paralog
