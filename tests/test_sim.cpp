/** @file Unit tests for the simulation configuration (Table 1). */

#include <gtest/gtest.h>

#include "sim/config.hpp"

namespace paralog {
namespace {

TEST(SimConfig, Table1L2Sizing)
{
    // 2/4/8 MB L2 for 4/8/16 cores (Table 1).
    EXPECT_EQ(SimConfig::forAppThreads(1).l2.sizeBytes, 2ULL << 20);
    EXPECT_EQ(SimConfig::forAppThreads(2).l2.sizeBytes, 2ULL << 20);
    EXPECT_EQ(SimConfig::forAppThreads(4).l2.sizeBytes, 4ULL << 20);
    EXPECT_EQ(SimConfig::forAppThreads(8).l2.sizeBytes, 8ULL << 20);
}

TEST(SimConfig, Table1L1Parameters)
{
    SimConfig c = SimConfig::forAppThreads(4);
    EXPECT_EQ(c.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(c.l1d.lineBytes, 64u);
    EXPECT_EQ(c.l1d.assoc, 4u);
    EXPECT_EQ(c.l1d.hitLatency, 2u);
    EXPECT_EQ(c.memLatency, 90u);
    EXPECT_EQ(c.logBufferBytes, 64u * 1024);
}

TEST(SimConfig, CoreCountsByMode)
{
    SimConfig c = SimConfig::forAppThreads(4);
    c.mode = MonitorMode::kParallel;
    EXPECT_EQ(c.totalCores(), 8u);
    c.mode = MonitorMode::kTimesliced;
    EXPECT_EQ(c.totalCores(), 2u);
    c.mode = MonitorMode::kNoMonitoring;
    EXPECT_EQ(c.totalCores(), 4u);
}

TEST(SimConfig, DescribeMentionsKeyParameters)
{
    SimConfig c = SimConfig::forAppThreads(8);
    std::string d = c.describe();
    EXPECT_NE(d.find("64KB"), std::string::npos);
    EXPECT_NE(d.find("8MB"), std::string::npos);
    EXPECT_NE(d.find("90-cycle"), std::string::npos);
}

TEST(SimConfig, EffectiveShadowShards)
{
    SimConfig c;
    // Auto (0): one shard per lifeguard core, rounded up to a power of
    // two; at least 1.
    EXPECT_EQ(c.effectiveShadowShards(0), 1u);
    EXPECT_EQ(c.effectiveShadowShards(1), 1u);
    EXPECT_EQ(c.effectiveShadowShards(2), 2u);
    EXPECT_EQ(c.effectiveShadowShards(3), 4u);
    EXPECT_EQ(c.effectiveShadowShards(8), 8u);
    // An explicit knob wins.
    c.shadowShards = 16;
    EXPECT_EQ(c.effectiveShadowShards(2), 16u);
}

TEST(SimConfig, EnumNames)
{
    EXPECT_STREQ(toString(MemoryModel::kSC), "SC");
    EXPECT_STREQ(toString(MemoryModel::kTSO), "TSO");
    EXPECT_STREQ(toString(MonitorMode::kParallel), "parallel");
}

} // namespace
} // namespace paralog
