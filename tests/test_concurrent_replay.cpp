/**
 * @file
 * Differential tests for the host-parallel replay engine
 * (`--lg-threads`, core/replay_concurrent.cpp): for every lifeguard ×
 * memory model × core count × shard count, a recording replayed
 * concurrently must reach exactly the serial engine's analysis results
 * — shadow fingerprint, violations, records processed, versions
 * produced/consumed — while its simulated timing is relaxed. Also
 * covers failure containment: a panic on a producer/consumer worker
 * thread must surface on the cell-owning thread (and come back as a
 * failed cell through runMatrix), never escape a host thread.
 *
 * The whole suite runs under -fsanitize=thread in CI (`tsan` label):
 * the differential matrix doubles as the data-race proof for the
 * ring hand-off, the progress-table backbone, and the shared
 * delivery/analysis structures in concurrent mode.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "harness/paralog_test.hpp"

namespace paralog {
namespace {

using test::QuietTest;

class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
        : path_(::testing::TempDir() + "paralog_conc_" + tag + "_" +
                std::to_string(::getpid()) + ".trace")
    {
    }
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

RunSpec
makeSpec(WorkloadKind w, LifeguardKind lg, std::uint32_t cores,
         MemoryModel mm, std::uint64_t scale, const std::string &record,
         const std::string &replay = "")
{
    RunSpec spec;
    spec.workload = w;
    spec.lifeguard = lg;
    spec.mode = MonitorMode::kParallel;
    spec.cores = cores;
    spec.opt = test::makeOptions(scale);
    spec.opt.memoryModel = mm;
    spec.recordPath = record;
    spec.replayPath = replay;
    return spec;
}

/** The analysis-results equality the concurrent engine guarantees
 *  (timing columns are relaxed by design and not compared). Violation
 *  and event counts are compared at set granularity, not report
 *  granularity: the Idempotent Filters absorb *duplicate* checks, and
 *  how many duplicates they absorb depends on stall-flush timing,
 *  which free-running consumers do not reproduce — but a first
 *  occurrence can never be absorbed, so the distinct-violation
 *  fingerprint and found-any must match exactly. */
void
expectSameAnalysis(const RunResult &conc, const RunResult &serial)
{
    EXPECT_EQ(conc.shadowFingerprint, serial.shadowFingerprint);
    EXPECT_EQ(conc.violationFingerprint, serial.violationFingerprint);
    EXPECT_EQ(conc.violationCount == 0, serial.violationCount == 0);
    EXPECT_EQ(conc.versionsProduced, serial.versionsProduced);
    EXPECT_EQ(conc.versionsConsumed, serial.versionsConsumed);
    ASSERT_EQ(conc.lifeguard.size(), serial.lifeguard.size());
    for (std::size_t i = 0; i < serial.lifeguard.size(); ++i) {
        EXPECT_EQ(conc.lifeguard[i].recordsProcessed,
                  serial.lifeguard[i].recordsProcessed)
            << "lg " << i;
    }
}

// ------------------------------------------- differential matrix ----

struct ConcCell
{
    LifeguardKind lifeguard;
    MemoryModel memoryModel;
    std::uint32_t cores;
};

class ConcurrentMatchesSerial : public test::QuietTestWithParam<ConcCell>
{
};

TEST_P(ConcurrentMatchesSerial, FingerprintAndStatsIdentical)
{
    const ConcCell &cell = GetParam();
    TempTrace tmp("diff");
    RunSpec rec = makeSpec(WorkloadKind::kLu, cell.lifeguard, cell.cores,
                           cell.memoryModel, 400, tmp.path());
    RunResult live = recordExperiment(rec);
    ASSERT_NE(live.shadowFingerprint, 0u);

    RunSpec replay = makeSpec(WorkloadKind::kLu, cell.lifeguard,
                              cell.cores, cell.memoryModel, 400, "",
                              tmp.path());
    RunResult serial = replayExperiment(replay);
    expectSameAnalysis(serial, live); // sanity: serial matches live

    // The concurrent engine self-checks its results against the trace
    // footer (panics on divergence); the host-side comparison here is
    // the belt to that suspenders. lgThreads beyond the core count
    // exercises the min(lgThreads, k) clamp.
    for (std::uint32_t threads : {2u, 4u}) {
        RunSpec conc = replay;
        conc.opt.lgThreads = threads;
        RunResult result = replayExperiment(conc);
        expectSameAnalysis(result, serial);
    }
}

std::vector<ConcCell>
allConcCells()
{
    std::vector<ConcCell> cells;
    for (LifeguardKind lg :
         {LifeguardKind::kAddrCheck, LifeguardKind::kTaintCheck,
          LifeguardKind::kMemCheck, LifeguardKind::kLockSet}) {
        for (MemoryModel mm : {MemoryModel::kSC, MemoryModel::kTSO}) {
            for (std::uint32_t cores : {1u, 2u, 4u})
                cells.push_back(ConcCell{lg, mm, cores});
        }
    }
    return cells;
}

INSTANTIATE_TEST_SUITE_P(
    LifeguardsModelsCores, ConcurrentMatchesSerial,
    ::testing::ValuesIn(allConcCells()),
    [](const ::testing::TestParamInfo<ConcCell> &info) {
        return std::string(toString(info.param.lifeguard)) + "_" +
               toString(info.param.memoryModel) + "_" +
               std::to_string(info.param.cores) + "c";
    });

class ConcurrentModes : public QuietTest
{
};

TEST_F(ConcurrentModes, ShardCountInvariance)
{
    // The sharded shadow memory must reach the same fingerprint under
    // concurrent delivery for any shard count.
    TempTrace tmp("shards");
    RunSpec rec = makeSpec(WorkloadKind::kOcean,
                           LifeguardKind::kTaintCheck, 4,
                           MemoryModel::kSC, 400, tmp.path());
    RunResult live = recordExperiment(rec);

    for (std::uint32_t shards : {1u, 4u}) {
        ReplayConfig cfg;
        cfg.path = tmp.path();
        cfg.shadowShards = shards;
        cfg.lgThreads = 4;
        ReplayPlatform rp(std::move(cfg));
        ASSERT_TRUE(rp.concurrent());
        RunResult result = rp.run();
        expectSameAnalysis(result, live);
    }
}

TEST_F(ConcurrentModes, ZeroAndOneThreadSelectTheSerialEngine)
{
    TempTrace tmp("serialsel");
    RunSpec rec = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                           2, MemoryModel::kSC, 300, tmp.path());
    recordExperiment(rec);

    for (std::uint32_t threads : {0u, 1u}) {
        ReplayConfig cfg;
        cfg.path = tmp.path();
        cfg.lgThreads = threads;
        ReplayPlatform rp(std::move(cfg));
        EXPECT_FALSE(rp.concurrent());
        // The serial engine self-checks bit-identically (all timing
        // columns included) — run() panicking would fail the test.
        RunResult result = rp.run();
        EXPECT_NE(result.shadowFingerprint, 0u);
    }
}

TEST_F(ConcurrentModes, RepeatedConcurrentRunsAreStable)
{
    // Host-thread scheduling varies run to run; analysis results must
    // not. A handful of repeats under the most protocol-heavy cell
    // (TSO + ConflictAlerts + LockSet's read-side metadata writes).
    TempTrace tmp("stable");
    RunSpec rec = makeSpec(WorkloadKind::kLu, LifeguardKind::kLockSet, 4,
                           MemoryModel::kTSO, 400, tmp.path());
    recordExperiment(rec);

    RunSpec replay = makeSpec(WorkloadKind::kLu, LifeguardKind::kLockSet,
                              4, MemoryModel::kTSO, 400, "", tmp.path());
    RunResult serial = replayExperiment(replay);
    for (int i = 0; i < 3; ++i) {
        RunSpec conc = replay;
        conc.opt.lgThreads = 4;
        RunResult result = replayExperiment(conc);
        expectSameAnalysis(result, serial);
    }
}

// --------------------------------------------- failure containment ----

class ConcurrentFailures : public QuietTest
{
};

TEST_F(ConcurrentFailures, ConsumerThreadPanicSurfacesOnOwningThread)
{
    // PARALOG_FAIL_LG injects a panic on the consumer thread that owns
    // the named lifeguard stream. The engine must capture it, abort the
    // other workers, join everything, and rethrow at the join point on
    // the cell-owning thread — where panic-throw scoping catches it.
    TempTrace tmp("faillg");
    RunSpec rec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                           2, MemoryModel::kSC, 300, tmp.path());
    recordExperiment(rec);

    RunSpec conc = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, MemoryModel::kSC, 300, "", tmp.path());
    conc.opt.lgThreads = 2;

    ::setenv("PARALOG_FAIL_LG", "1", 1);
    bool prev = setPanicThrows(true);
    try {
        EXPECT_THROW(
            { replayExperiment(conc); }, SimPanicError);
    } catch (...) {
    }
    setPanicThrows(prev);
    ::unsetenv("PARALOG_FAIL_LG");

    // The injected failure must not wedge later runs: the same replay
    // without the injection still succeeds in this process.
    RunResult result = replayExperiment(conc);
    EXPECT_NE(result.shadowFingerprint, 0u);
}

TEST_F(ConcurrentFailures, FailedConcurrentCellIsContainedByRunMatrix)
{
    // runMatrix's panic-throw scope + the engine's capture-and-rethrow
    // at the join point: a cell whose worker thread panics comes back
    // `failed` with the message, and the remaining cells still run.
    TempTrace tmp("failcell");
    RunSpec rec = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                           2, MemoryModel::kSC, 300, tmp.path());
    recordExperiment(rec);

    std::vector<RunSpec> specs;
    for (int i = 0; i < 3; ++i) {
        RunSpec s = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                             2, MemoryModel::kSC, 300, "", tmp.path());
        s.opt.lgThreads = 2;
        specs.push_back(s);
    }

    ::setenv("PARALOG_FAIL_LG", "0", 1);
    std::vector<CellResult> cells = runMatrix(specs, 1);
    ::unsetenv("PARALOG_FAIL_LG");
    ASSERT_EQ(cells.size(), 3u);
    for (const CellResult &cell : cells) {
        EXPECT_TRUE(cell.failed);
        EXPECT_NE(cell.error.find("PARALOG_FAIL_LG"), std::string::npos)
            << cell.error;
    }

    // PARALOG_FAIL_CELL (the pre-existing injection hook) composes with
    // concurrent cells at jobs > 1: only the named cell fails.
    ::setenv("PARALOG_FAIL_CELL", "1", 1);
    cells = runMatrix(specs, 2);
    ::unsetenv("PARALOG_FAIL_CELL");
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_FALSE(cells[0].failed) << cells[0].error;
    EXPECT_TRUE(cells[1].failed);
    EXPECT_FALSE(cells[2].failed) << cells[2].error;
}

} // namespace
} // namespace paralog
