/**
 * @file
 * Tests for the happens-before completeness validator: hand-built
 * traces with known orderings, plus whole-run validation of real
 * workload captures (the soundness property of the paper's order
 * capture on this substrate).
 */

#include <gtest/gtest.h>

#include "capture/validator.hpp"
#include "common/logging.hpp"
#include "core/experiment.hpp"

namespace paralog {
namespace {

TracedRecord
access(std::uint64_t seq, ThreadId tid, RecordId rid, EventType type,
       Addr addr)
{
    TracedRecord tr;
    tr.globalSeq = seq;
    tr.rec.type = type;
    tr.rec.tid = tid;
    tr.rec.rid = rid;
    tr.rec.addr = addr;
    tr.rec.size = 8;
    tr.isWrite = (type == EventType::kStore);
    return tr;
}

TEST(Validator, OrderedPairAccepted)
{
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 0, 0, EventType::kStore, 0x1000));
    TracedRecord rd = access(1, 1, 0, EventType::kLoad, 0x1000);
    rd.rec.arcs.push_back(DepArc{0, 0}); // RAW arc recorded
    trace.push_back(rd);

    HappensBeforeValidator v(2);
    auto result = v.validate(trace);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.conflictingPairs, 1u);
    EXPECT_EQ(result.orderedByArcs, 1u);
}

TEST(Validator, MissingArcDetected)
{
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 0, 0, EventType::kStore, 0x1000));
    trace.push_back(access(1, 1, 0, EventType::kLoad, 0x1000)); // no arc

    HappensBeforeValidator v(2);
    auto result = v.validate(trace);
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.violations.size(), 1u);
    EXPECT_NE(result.violations[0].find("RAW"), std::string::npos);
}

TEST(Validator, TransitiveOrderingAccepted)
{
    // T0 writes A; T1 reads A (arc) then writes B; T2 reads B (arc to
    // T1 only) then reads A: ordered transitively through T1.
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 0, 0, EventType::kStore, 0x1000)); // A
    TracedRecord r1 = access(1, 1, 0, EventType::kLoad, 0x1000);
    r1.rec.arcs.push_back(DepArc{0, 0});
    trace.push_back(r1);
    trace.push_back(access(2, 1, 1, EventType::kStore, 0x2000)); // B
    TracedRecord r2 = access(3, 2, 0, EventType::kLoad, 0x2000);
    r2.rec.arcs.push_back(DepArc{1, 1});
    trace.push_back(r2);
    trace.push_back(access(4, 2, 1, EventType::kLoad, 0x1000)); // A again

    HappensBeforeValidator v(3);
    auto result = v.validate(trace);
    EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                     ? ""
                                     : result.violations[0]);
}

TEST(Validator, SameThreadNeverConflicts)
{
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 0, 0, EventType::kStore, 0x1000));
    trace.push_back(access(1, 0, 1, EventType::kLoad, 0x1000));
    trace.push_back(access(2, 0, 2, EventType::kStore, 0x1000));
    HappensBeforeValidator v(2);
    EXPECT_TRUE(v.validate(trace).ok());
}

TEST(Validator, ConcurrentReadsAllowed)
{
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 0, 0, EventType::kLoad, 0x1000));
    trace.push_back(access(1, 1, 0, EventType::kLoad, 0x1000));
    HappensBeforeValidator v(2);
    auto result = v.validate(trace);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.conflictingPairs, 0u);
}

TEST(Validator, ConflictAlertOrdersLogicalRace)
{
    // T0 frees a range with a CA broadcast; T1's later access to the
    // range is ordered by the alert even though no arc exists.
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 1, 0, EventType::kLoad, 0x5000));

    TracedRecord freeRec;
    freeRec.globalSeq = 1;
    freeRec.rec.type = EventType::kFreeBegin;
    freeRec.rec.tid = 0;
    freeRec.rec.rid = 0;
    freeRec.rec.range = AddrRange{0x5000, 0x5100};
    freeRec.rec.caSeq = 7;
    trace.push_back(freeRec);

    TracedRecord ca;
    ca.globalSeq = 2;
    ca.rec.type = EventType::kCaBegin;
    ca.rec.tid = 1;
    ca.rec.rid = 1;
    ca.rec.value = 7;
    ca.rec.caKind = HighLevelKind::kFreeBegin;
    ca.rec.range = AddrRange{0x5000, 0x5100};
    trace.push_back(ca);

    // T1's access after its CA record: ordered after the free.
    trace.push_back(access(3, 1, 2, EventType::kStore, 0x5000));

    HappensBeforeValidator v(2);
    auto result = v.validate(trace);
    EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                     ? ""
                                     : result.violations[0]);
    EXPECT_GT(result.orderedByAlerts, 0u);
}

TEST(Validator, FreeWithoutAlertFlagged)
{
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 1, 0, EventType::kStore, 0x5000));

    TracedRecord freeRec;
    freeRec.globalSeq = 1;
    freeRec.rec.type = EventType::kFreeBegin;
    freeRec.rec.tid = 0;
    freeRec.rec.rid = 0;
    freeRec.rec.range = AddrRange{0x5000, 0x5100};
    trace.push_back(freeRec); // no CA, no arc: logical race

    HappensBeforeValidator v(2);
    EXPECT_FALSE(v.validate(trace).ok());
}

TEST(Validator, SyscallRangeDirectionFollowsTheSharedClassifier)
{
    // A write()-style syscall reads the output buffer; its range must
    // not be treated as a kernel write. T1 wrote the buffer earlier
    // with no ordering to T0's SyscallEnd — a write classification
    // would flag a WAW race that does not exist; a read classification
    // needs the RAW pair ordered, which the arc provides.
    std::vector<TracedRecord> trace;
    trace.push_back(access(0, 1, 0, EventType::kStore, 0x5000));

    TracedRecord sys;
    sys.globalSeq = 1;
    sys.rec.type = EventType::kSyscallEnd;
    sys.rec.tid = 0;
    sys.rec.rid = 0;
    sys.rec.syscall = SyscallKind::kWrite;
    sys.rec.range = AddrRange{0x5000, 0x5040};
    sys.rec.arcs.push_back(DepArc{1, 0});
    sys.isWrite = traceIsWrite(sys.rec);
    EXPECT_FALSE(sys.isWrite);
    trace.push_back(sys);

    HappensBeforeValidator v(2);
    auto result = v.validate(trace);
    EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                     ? ""
                                     : result.violations[0]);

    // The same trace with a read()-style syscall is a kernel fill: a
    // write over the range, still ordered by the arc.
    trace[1].rec.syscall = SyscallKind::kRead;
    trace[1].isWrite = traceIsWrite(trace[1].rec);
    EXPECT_TRUE(trace[1].isWrite);
    EXPECT_TRUE(v.validate(trace).ok());
}

TEST(Validator, BarrierPhaseConventionMatchesTheInterpreter)
{
    // Derive the arrival/exit convention from a real capture: lu
    // passes phase barriers, so the trace must contain both phases —
    // arrivals (value 0, the RMW store) classified as writes and exits
    // (value 1, the release-observing read) as reads. If the
    // interpreter's encoding ever flips, this fails before the
    // classifier silently inverts the happens-before check.
    setQuiet(true);
    ExperimentOptions o;
    o.scale = 800;
    PlatformConfig cfg = makeConfig(WorkloadKind::kLu,
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 2, o);
    cfg.traceCapture = true;
    Platform p(cfg);
    p.run();

    std::size_t arrivals = 0, exits = 0;
    for (const TracedRecord &tr : p.trace().records()) {
        if (tr.rec.type != EventType::kBarrierPass)
            continue;
        ASSERT_LE(tr.rec.value, 1u);
        if (tr.rec.value == 0) {
            ++arrivals;
            EXPECT_TRUE(tr.isWrite);
        } else {
            ++exits;
            EXPECT_FALSE(tr.isWrite);
        }
    }
    EXPECT_GT(arrivals, 0u);
    EXPECT_GT(exits, 0u);
    EXPECT_EQ(arrivals, exits); // every arrival has its exit
}

// ---------- whole-run validation of real captures ----------

class WholeRunValidation
    : public ::testing::TestWithParam<WorkloadKind>
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }
};

TEST_P(WholeRunValidation, CapturedArcsAreComplete)
{
    ExperimentOptions o;
    o.scale = 5000;
    PlatformConfig cfg = makeConfig(GetParam(),
                                    LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, 4, o);
    cfg.traceCapture = true;
    Platform p(cfg);
    p.run();

    HappensBeforeValidator v(4, cfg.sim.l1d.lineBytes);
    auto result = v.validate(p.trace().records());
    EXPECT_TRUE(result.ok())
        << toString(GetParam()) << ": " << result.violations.size()
        << " unordered conflicting pairs, first: "
        << (result.violations.empty() ? "" : result.violations[0]);
    EXPECT_GT(result.conflictingPairs, 0u)
        << "workload produced no conflicts: test is vacuous";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WholeRunValidation,
    ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        std::string name = toString(info.param);
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace paralog
