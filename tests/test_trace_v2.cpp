/**
 * @file
 * Tests for the `paralog-trace-v2` container: the LZ entropy stage, the
 * columnar ops-block codec, end-to-end record/replay equivalence with
 * v1 (bit-identical fingerprints, serial and concurrent), v1<->v2
 * migration round trips, and the corruption/truncation surface — every
 * structural boundary ±1, CRC-valid-but-garbage compressed payloads,
 * and seeded random flips over the CRC-protected payload bytes, all of
 * which must map to the reader's stable error taxonomy. The streaming
 * validator (paralogd's ingest path) is covered against v2 bytes too.
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/lz.hpp"
#include "core/replay.hpp"
#include "harness/paralog_test.hpp"
#include "trace/migrate.hpp"
#include "trace/stream_ingest.hpp"
#include "trace/trace_reader.hpp"
#include "trace/v2_block.hpp"

namespace paralog {
namespace {

using test::QuietTest;

class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
        : path_(::testing::TempDir() + "paralog_v2_" + tag + "_" +
                std::to_string(::getpid()) + ".trace")
    {
    }
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

RunSpec
makeSpec(WorkloadKind w, LifeguardKind lg, std::uint32_t cores,
         MemoryModel mm, std::uint64_t scale, const std::string &record,
         std::uint32_t format = 1, const std::string &replay = "")
{
    RunSpec spec;
    spec.workload = w;
    spec.lifeguard = lg;
    spec.mode = MonitorMode::kParallel;
    spec.cores = cores;
    spec.opt = test::makeOptions(scale);
    spec.opt.memoryModel = mm;
    spec.recordPath = record;
    spec.recordFormat = format;
    spec.replayPath = replay;
    return spec;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.violationCount, b.violationCount);
    EXPECT_EQ(a.violationFingerprint, b.violationFingerprint);
    EXPECT_EQ(a.shadowFingerprint, b.shadowFingerprint);
    EXPECT_EQ(a.retiredTotal(), b.retiredTotal());
    EXPECT_EQ(a.versionsProduced, b.versionsProduced);
    EXPECT_EQ(a.versionsConsumed, b.versionsConsumed);
    ASSERT_EQ(a.lifeguard.size(), b.lifeguard.size());
    for (std::size_t i = 0; i < b.lifeguard.size(); ++i) {
        EXPECT_EQ(a.lifeguard[i].recordsProcessed,
                  b.lifeguard[i].recordsProcessed)
            << "lg " << i;
        EXPECT_EQ(a.lifeguard[i].eventsHandled,
                  b.lifeguard[i].eventsHandled)
            << "lg " << i;
    }
}

// --------------------------------------------------------- LZ codec

TEST(LzCodec, RoundTripsAllShapes)
{
    std::vector<std::vector<std::uint8_t>> inputs;
    inputs.push_back({});                    // empty
    inputs.push_back({0x42});                // single byte
    inputs.push_back({1, 2, 3});             // below min match
    inputs.push_back(std::vector<std::uint8_t>(10000, 0xAA)); // one run
    // Repeating 7-byte pattern: self-overlapping matches.
    std::vector<std::uint8_t> pattern;
    for (int i = 0; i < 3000; ++i)
        pattern.push_back(static_cast<std::uint8_t>(i % 7));
    inputs.push_back(pattern);
    // Incompressible-ish: deterministic pseudo-random bytes.
    std::vector<std::uint8_t> noise;
    std::uint64_t x = 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        noise.push_back(static_cast<std::uint8_t>(x >> 56));
    }
    inputs.push_back(noise);
    // Structured: literals interleaved with repeats (the op-column
    // shape the coder exists for).
    std::vector<std::uint8_t> mixed;
    for (int i = 0; i < 500; ++i) {
        mixed.insert(mixed.end(), {0, 1, 1, 0, 2, 1});
        mixed.push_back(static_cast<std::uint8_t>(i));
    }
    inputs.push_back(mixed);

    for (const auto &in : inputs) {
        std::vector<std::uint8_t> enc, dec;
        lzCompress(in.data(), in.size(), enc);
        ASSERT_TRUE(
            lzDecompress(enc.data(), enc.size(), dec, in.size() + 1))
            << "input size " << in.size();
        EXPECT_EQ(dec, in) << "input size " << in.size();
    }
}

TEST(LzCodec, CompressesRepetitiveData)
{
    std::vector<std::uint8_t> in(64 * 1024, 0x5C);
    std::vector<std::uint8_t> enc;
    lzCompress(in.data(), in.size(), enc);
    EXPECT_LT(enc.size(), in.size() / 100)
        << "a constant run must collapse";
}

TEST(LzCodec, RejectsTruncationAndHostileLengths)
{
    std::vector<std::uint8_t> in;
    for (int i = 0; i < 2000; ++i)
        in.push_back(static_cast<std::uint8_t>(i % 11));
    std::vector<std::uint8_t> enc, dec;
    lzCompress(in.data(), in.size(), enc);

    // Every proper prefix fails cleanly.
    for (std::size_t cut = 0; cut < enc.size(); cut += 7)
        EXPECT_FALSE(lzDecompress(enc.data(), cut, dec, in.size()))
            << "prefix of " << cut;

    // rawLen above the caller's ceiling is rejected before allocating.
    EXPECT_FALSE(
        lzDecompress(enc.data(), enc.size(), dec, in.size() - 1));

    // A flipped byte must never read or write out of bounds; outcomes
    // are either a clean failure or a differing (bounded) output.
    for (std::size_t i = 0; i < enc.size(); ++i) {
        std::vector<std::uint8_t> bad = enc;
        bad[i] ^= 0x80;
        if (lzDecompress(bad.data(), bad.size(), dec, in.size())) {
            EXPECT_LE(dec.size(), in.size());
        }
    }
}

// ----------------------------------------------------- v2 block codec

/** Collect every v1 ops-chunk payload of a real recording. */
std::vector<std::vector<std::uint8_t>>
recordedOpsPayloads(MemoryModel mm)
{
    TempTrace tmp(mm == MemoryModel::kSC ? "blk_sc" : "blk_tso");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, mm, 400, tmp.path());
    recordExperiment(spec);
    trace::TraceReader reader(tmp.path());
    EXPECT_TRUE(reader.ok()) << reader.error();
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < reader.chunkCount(); ++i) {
        if (reader.chunkKind(i) != trace::kChunkOps)
            continue;
        EXPECT_TRUE(reader.chunkPayload(i, payload)) << reader.error();
        payloads.push_back(payload);
    }
    EXPECT_FALSE(payloads.empty());
    return payloads;
}

class V2Block : public QuietTest
{
};

TEST_F(V2Block, RoundTripsRealOpStreams)
{
    for (MemoryModel mm : {MemoryModel::kSC, MemoryModel::kTSO}) {
        for (const auto &v1 : recordedOpsPayloads(mm)) {
            std::vector<std::uint8_t> v2, back;
            ASSERT_TRUE(
                trace::encodeOpsBlock(v1.data(), v1.size(), v2));
            ASSERT_TRUE(trace::decodeOpsBlock(v2.data(), v2.size(),
                                              back, v1.size()));
            EXPECT_EQ(back, v1);
        }
    }
}

TEST_F(V2Block, RejectsNonOpBytesAndCorruptBlocks)
{
    std::vector<std::uint8_t> junk = {0xFF, 0x01, 0x02}; // opcode 255
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(trace::encodeOpsBlock(junk.data(), junk.size(), out));
    EXPECT_TRUE(out.empty());

    std::vector<std::vector<std::uint8_t>> payloads =
        recordedOpsPayloads(MemoryModel::kSC);
    const std::vector<std::uint8_t> &v1 = payloads.front();
    std::vector<std::uint8_t> v2;
    ASSERT_TRUE(trace::encodeOpsBlock(v1.data(), v1.size(), v2));

    // Truncations at every offset fail cleanly.
    std::vector<std::uint8_t> dec;
    for (std::size_t cut = 0; cut < v2.size(); cut += 3)
        EXPECT_FALSE(
            trace::decodeOpsBlock(v2.data(), cut, dec, v1.size()))
            << "prefix of " << cut;

    // Undersized ceiling: the embedded v1Len must be rejected.
    EXPECT_FALSE(
        trace::decodeOpsBlock(v2.data(), v2.size(), dec, v1.size() - 1));

    // Any single-byte flip either fails, or still reconstructs v1
    // bytes of the recorded length (the CRC layer above catches the
    // rest; the decoder itself must just never misbehave).
    for (std::size_t i = 0; i < v2.size(); ++i) {
        std::vector<std::uint8_t> bad = v2;
        bad[i] ^= 0x10;
        if (trace::decodeOpsBlock(bad.data(), bad.size(), dec,
                                  v1.size())) {
            EXPECT_EQ(dec.size(), v1.size());
        }
    }
}

// --------------------------------------- v2 end-to-end record/replay

class TraceV2Format : public QuietTest
{
};

TEST_F(TraceV2Format, RecordsReadableV2AndShrinksTheFile)
{
    TempTrace v1("fmt_v1"), v2("fmt_v2");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, MemoryModel::kSC, 800, v1.path(), 1);
    RunResult live1 = recordExperiment(spec);
    spec.recordPath = v2.path();
    spec.recordFormat = 2;
    RunResult live2 = recordExperiment(spec);
    expectSameRun(live1, live2);

    trace::TraceReader r1(v1.path()), r2(v2.path());
    ASSERT_TRUE(r1.ok()) << r1.error();
    ASSERT_TRUE(r2.ok()) << r2.error();
    EXPECT_EQ(r1.formatVersion(), 1u);
    EXPECT_EQ(r2.formatVersion(), 2u);
    EXPECT_EQ(r1.configFingerprint(), r2.configFingerprint());
    EXPECT_EQ(r1.totalOps(), r2.totalOps());
    EXPECT_EQ(r1.footer().shadowFingerprint,
              r2.footer().shadowFingerprint);
    ASSERT_TRUE(r2.footer().hasViolationFingerprint);

    std::size_t s1 = slurp(v1.path()).size();
    std::size_t s2 = slurp(v2.path()).size();
    EXPECT_GE(s1, 2 * s2) << "v2 must compress the journal "
                          << "substantially (v1 " << s1 << " bytes, v2 "
                          << s2 << ")";
}

TEST_F(TraceV2Format, V2RecordingIsDeterministic)
{
    TempTrace a("det_a"), b("det_b");
    RunSpec spec = makeSpec(WorkloadKind::kFmm, LifeguardKind::kMemCheck,
                            2, MemoryModel::kSC, 300, a.path(), 2);
    recordExperiment(spec);
    spec.recordPath = b.path();
    recordExperiment(spec);
    EXPECT_EQ(slurp(a.path()), slurp(b.path()));
}

struct V2Cell
{
    LifeguardKind lifeguard;
    MemoryModel memoryModel;
};

class V2ReplayBitIdentical : public test::QuietTestWithParam<V2Cell>
{
};

TEST_P(V2ReplayBitIdentical, V2ReplayMatchesV1ReplayAndLive)
{
    const V2Cell &cell = GetParam();
    TempTrace v1("rep_v1"), v2("rep_v2");
    RunSpec spec = makeSpec(WorkloadKind::kLu, cell.lifeguard, 2,
                            cell.memoryModel, 400, v1.path(), 1);
    RunResult live = recordExperiment(spec);
    spec.recordPath = v2.path();
    spec.recordFormat = 2;
    recordExperiment(spec);

    // Serial replay of both containers: the footer self-check panics
    // on any divergence, and the assembled results must match the live
    // run and each other bit-identically.
    RunSpec rep1 = makeSpec(WorkloadKind::kLu, cell.lifeguard, 2,
                            cell.memoryModel, 400, "", 1, v1.path());
    RunSpec rep2 = rep1;
    rep2.replayPath = v2.path();
    RunResult from1 = replayExperiment(rep1);
    RunResult from2 = replayExperiment(rep2);
    expectSameRun(from1, live);
    expectSameRun(from2, from1);

    // Concurrent replay (lg-threads=4) and parallel chunk pre-decode:
    // analysis results stay identical.
    rep2.opt.lgThreads = 4;
    rep2.opt.decodeJobs = 4;
    RunResult conc = replayExperiment(rep2);
    EXPECT_EQ(conc.shadowFingerprint, live.shadowFingerprint);
    EXPECT_EQ(conc.violationFingerprint, live.violationFingerprint);
}

INSTANTIATE_TEST_SUITE_P(
    LifeguardsModels, V2ReplayBitIdentical,
    ::testing::Values(
        V2Cell{LifeguardKind::kAddrCheck, MemoryModel::kSC},
        V2Cell{LifeguardKind::kTaintCheck, MemoryModel::kTSO},
        V2Cell{LifeguardKind::kMemCheck, MemoryModel::kSC},
        V2Cell{LifeguardKind::kLockSet, MemoryModel::kTSO}),
    [](const ::testing::TestParamInfo<V2Cell> &info) {
        return std::string(toString(info.param.lifeguard)) + "_" +
               toString(info.param.memoryModel);
    });

TEST_F(TraceV2Format, MmapAndHeapReadsAgree)
{
    TempTrace tmp("mmap");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                            2, MemoryModel::kSC, 400, tmp.path(), 2);
    recordExperiment(spec);

    trace::TraceReader::Options mm, heap;
    heap.preferMmap = false;
    trace::TraceReader a(tmp.path(), mm), b(tmp.path(), heap);
    ASSERT_TRUE(a.ok()) << a.error();
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_TRUE(a.mapped());
    EXPECT_FALSE(b.mapped());

    trace::TraceOp opa, opb;
    for (ThreadId t = 0; t < a.config().appThreads; ++t) {
        auto sa = a.opStream(t), sb = b.opStream(t);
        while (true) {
            bool na = sa.next(opa), nb = sb.next(opb);
            ASSERT_EQ(na, nb);
            if (!na)
                break;
            EXPECT_EQ(opa.op, opb.op);
            EXPECT_EQ(opa.gseq, opb.gseq);
            EXPECT_EQ(opa.cycle, opb.cycle);
        }
    }
    EXPECT_TRUE(a.ok()) << a.error();
    EXPECT_TRUE(b.ok()) << b.error();
}

// ------------------------------------------------------- migration

class TraceMigrate : public QuietTest
{
};

TEST_F(TraceMigrate, V1ToV2ToV1IsByteIdentical)
{
    TempTrace orig("mig_orig"), v2("mig_v2"), back("mig_back");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck,
                            2, MemoryModel::kTSO, 400, orig.path(), 1);
    recordExperiment(spec);

    trace::MigrateResult up =
        trace::migrateTrace(orig.path(), v2.path(), 2);
    ASSERT_TRUE(up.ok) << up.error;
    EXPECT_EQ(up.srcFormat, 1u);
    EXPECT_EQ(up.dstFormat, 2u);
    EXPECT_GT(up.chunks, 0u);
    EXPECT_LT(up.dstBytes, up.srcBytes);

    trace::MigrateResult down =
        trace::migrateTrace(v2.path(), back.path(), 1);
    ASSERT_TRUE(down.ok) << down.error;
    EXPECT_EQ(slurp(back.path()), slurp(orig.path()))
        << "v1 -> v2 -> v1 must reproduce the original file";
}

TEST_F(TraceMigrate, MigratedTraceReplaysBitIdentically)
{
    TempTrace orig("mig_rep"), v2("mig_rep_v2");
    RunSpec spec = makeSpec(WorkloadKind::kOcean,
                            LifeguardKind::kMemCheck, 2, MemoryModel::kSC,
                            400, orig.path(), 1);
    RunResult live = recordExperiment(spec);
    ASSERT_TRUE(trace::migrateTrace(orig.path(), v2.path(), 2).ok);

    RunSpec rep = makeSpec(WorkloadKind::kOcean, LifeguardKind::kMemCheck,
                           2, MemoryModel::kSC, 400, "", 1, v2.path());
    RunResult replayed = replayExperiment(rep);
    expectSameRun(replayed, live);

    rep.opt.lgThreads = 4;
    RunResult conc = replayExperiment(rep);
    EXPECT_EQ(conc.shadowFingerprint, live.shadowFingerprint);
    EXPECT_EQ(conc.violationFingerprint, live.violationFingerprint);
}

TEST_F(TraceMigrate, RejectsBadInputs)
{
    TempTrace out("mig_bad_out");
    trace::MigrateResult res =
        trace::migrateTrace("/nonexistent/trace", out.path(), 2);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());

    TempTrace src("mig_bad_src");
    spit(src.path(), std::vector<std::uint8_t>(200, 0x00));
    res = trace::migrateTrace(src.path(), out.path(), 2);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("magic"), std::string::npos) << res.error;

    TempTrace good("mig_bad_fmt");
    RunSpec spec = makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck,
                            1, MemoryModel::kSC, 300, good.path(), 1);
    recordExperiment(spec);
    res = trace::migrateTrace(good.path(), out.path(), 3);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("format"), std::string::npos) << res.error;
}

// ------------------------------------------- corruption / truncation

/** One recorded v2 file + its bytes, shared across corruption tests. */
class V2Corruption : public QuietTest
{
  protected:
    void
    SetUp() override
    {
        tmp_ = std::make_unique<TempTrace>("corrupt");
        RunSpec spec =
            makeSpec(WorkloadKind::kLu, LifeguardKind::kTaintCheck, 2,
                     MemoryModel::kSC, 400, tmp_->path(), 2);
        recordExperiment(spec);
        good_ = slurp(tmp_->path());
        ASSERT_GT(good_.size(), trace::kHeaderBytes + 16u);
    }

    /** Walk the chunk framing; returns chunk (header offset, payload
     *  bytes) pairs. */
    std::vector<std::pair<std::size_t, std::uint32_t>>
    chunkFrames() const
    {
        std::vector<std::pair<std::size_t, std::uint32_t>> frames;
        std::size_t off = trace::kHeaderBytes;
        while (off + 16 <= good_.size()) {
            std::uint32_t payload = trace::get32le(good_.data() + off + 8);
            frames.emplace_back(off, payload);
            off += 16 + payload;
        }
        EXPECT_EQ(off, good_.size()) << "chunk walk out of sync";
        return frames;
    }

    /** Reader outcome on @p bytes: open failure, or failure while
     *  draining every op and latency stream (the lazy CRCs only fire
     *  when a chunk is actually consumed). Returns the final error
     *  text ("" if everything was accepted). */
    std::string
    consumeAll(const std::vector<std::uint8_t> &bytes)
    {
        spit(tmp_->path(), bytes);
        trace::TraceReader reader(tmp_->path());
        if (!reader.ok())
            return reader.error();
        trace::TraceOp op;
        Cycle latency;
        for (ThreadId t = 0; t < reader.config().appThreads; ++t) {
            auto stream = reader.opStream(t);
            while (stream.next(op)) {
            }
            if (!reader.ok())
                return reader.error();
            auto lat = reader.latencyStream(t);
            while (lat.next(latency)) {
            }
            if (!reader.ok())
                return reader.error();
        }
        return "";
    }

    std::unique_ptr<TempTrace> tmp_;
    std::vector<std::uint8_t> good_;
};

TEST_F(V2Corruption, TruncationAtEveryStructuralBoundary)
{
    std::vector<std::size_t> cuts{0, trace::kHeaderBytes / 2,
                                  trace::kHeaderBytes - 1,
                                  trace::kHeaderBytes};
    for (const auto &[off, payload] : chunkFrames()) {
        cuts.push_back(off);
        cuts.push_back(off + 1);
        cuts.push_back(off + 8);
        cuts.push_back(off + 15);
        cuts.push_back(off + 16);
        if (payload > 1) {
            cuts.push_back(off + 16 + 1);
            cuts.push_back(off + 16 + payload / 2);
            cuts.push_back(off + 16 + payload - 1);
        }
    }
    cuts.push_back(good_.size() - 1);

    for (std::size_t cut : cuts) {
        if (cut >= good_.size())
            continue;
        std::vector<std::uint8_t> bad = good_;
        bad.resize(cut);
        spit(tmp_->path(), bad);
        trace::TraceReader reader(tmp_->path());
        EXPECT_FALSE(reader.ok())
            << "cut at byte " << cut << " of " << good_.size();
        EXPECT_NE(reader.error().find("paralog-trace"),
                  std::string::npos)
            << "error must name the format: " << reader.error();
    }
}

TEST_F(V2Corruption, PayloadFlipsAreCaughtByTheCrc)
{
    // Flip the first byte, a middle byte and the last byte of every
    // data payload: open() succeeds (CRCs are lazy), consuming fails.
    for (const auto &[off, payload] : chunkFrames()) {
        std::uint32_t kind = trace::get32le(good_.data() + off);
        if (kind == trace::kChunkFooter)
            continue; // the footer is validated eagerly at open
        for (std::size_t at :
             {std::size_t(0), std::size_t(payload / 2),
              std::size_t(payload - 1)}) {
            std::vector<std::uint8_t> bad = good_;
            bad[off + 16 + at] ^= 0x20;
            std::string err = consumeAll(bad);
            ASSERT_FALSE(err.empty())
                << "flip in chunk at " << off << " offset " << at
                << " went unnoticed";
            EXPECT_NE(err.find("CRC mismatch"), std::string::npos)
                << err;
        }
    }
}

TEST_F(V2Corruption, FooterFlipFailsAtOpen)
{
    auto frames = chunkFrames();
    const auto &[off, payload] = frames.back();
    ASSERT_EQ(trace::get32le(good_.data() + off), trace::kChunkFooter);
    std::vector<std::uint8_t> bad = good_;
    bad[off + 16 + payload / 2] ^= 0x01;
    spit(tmp_->path(), bad);
    EXPECT_FALSE(trace::TraceReader(tmp_->path()).ok());
}

TEST_F(V2Corruption, CrcValidGarbageFailsTheBlockDecoder)
{
    // Corrupt a v2 ops payload *and* fix up the chunk CRC: the CRC
    // layer passes, so the failure must come from the block decoder's
    // own structural checks — with its taxonomy message.
    auto frames = chunkFrames();
    std::size_t target = frames.size();
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (trace::get32le(good_.data() + frames[i].first) ==
            trace::kChunkOps) {
            target = i;
            break;
        }
    }
    ASSERT_LT(target, frames.size());
    const auto &[off, payload] = frames[target];

    for (std::size_t at = 0; at < payload;
         at += 1 + payload / 37) { // ~37 positions across the payload
        std::vector<std::uint8_t> bad = good_;
        bad[off + 16 + at] ^= 0x44;
        std::uint32_t crc =
            trace::crc32(bad.data() + off + 16, payload);
        trace::put32le(bad.data() + off + 12, crc);
        std::string err = consumeAll(bad);
        if (err.empty())
            continue; // flip produced another valid block: fine
        EXPECT_TRUE(err.find("does not decode") != std::string::npos ||
                    err.find("malformed op stream") != std::string::npos)
            << "unexpected failure taxonomy: " << err;
    }
}

TEST_F(V2Corruption, SeededRandomPayloadFlipsNeverPassSilently)
{
    // 200 seeded random single-byte flips restricted to CRC-protected
    // payload bytes: every one must surface as a reader failure (open
    // or consume), never as a silently different decode.
    std::vector<std::pair<std::size_t, std::uint32_t>> frames =
        chunkFrames();
    std::vector<std::size_t> payload_bytes;
    for (const auto &[off, payload] : frames)
        for (std::size_t i = 0; i < payload; ++i)
            payload_bytes.push_back(off + 16 + i);
    ASSERT_FALSE(payload_bytes.empty());

    std::uint64_t rng = 0xC0FFEE123456789ULL; // fixed seed: reproducible
    for (int trial = 0; trial < 200; ++trial) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        std::size_t pos = payload_bytes[(rng >> 17) % payload_bytes.size()];
        std::uint8_t bit = static_cast<std::uint8_t>(1u << ((rng >> 9) % 8));
        std::vector<std::uint8_t> bad = good_;
        bad[pos] ^= bit;
        EXPECT_FALSE(consumeAll(bad).empty())
            << "flip of bit 0x" << std::hex << int(bit) << " at byte "
            << std::dec << pos << " (trial " << trial
            << ") went unnoticed";
    }
}

// ----------------------------------------- streaming ingest (paralogd)

class V2StreamIngest : public QuietTest
{
  protected:
    std::vector<std::uint8_t>
    makeV2Bytes()
    {
        TempTrace tmp("ingest");
        RunSpec spec =
            makeSpec(WorkloadKind::kLu, LifeguardKind::kAddrCheck, 2,
                     MemoryModel::kSC, 300, tmp.path(), 2);
        recordExperiment(spec);
        return slurp(tmp.path());
    }
};

TEST_F(V2StreamIngest, AcceptsV2Streams)
{
    std::vector<std::uint8_t> bytes = makeV2Bytes();
    trace::StreamIngest in;
    EXPECT_TRUE(in.feed(bytes.data(), bytes.size())) << in.error();
    EXPECT_TRUE(in.finish());
    EXPECT_TRUE(in.complete());
    EXPECT_EQ(in.header().formatVersion, 2u);
    EXPECT_EQ(in.bytesConsumed(), bytes.size());
}

TEST_F(V2StreamIngest, RefusesGarbageAtTheFirstBadChunk)
{
    std::vector<std::uint8_t> bytes = makeV2Bytes();

    // Payload flip: rejected the moment that chunk's CRC completes —
    // later bytes are never accepted.
    std::vector<std::uint8_t> bad = bytes;
    bad[trace::kHeaderBytes + 16 + 5] ^= 0x08;
    trace::StreamIngest in;
    EXPECT_FALSE(in.feed(bad.data(), bad.size()));
    EXPECT_EQ(in.errorCode(), trace::IngestError::kCrcMismatch);
    std::uint32_t first_payload =
        trace::get32le(bytes.data() + trace::kHeaderBytes + 8);
    EXPECT_LE(in.bytesConsumed(),
              trace::kHeaderBytes + 16u + first_payload)
        << "must stop at the first bad chunk, not keep consuming";

    // Version word vs magic mismatch.
    bad = bytes;
    trace::put32le(bad.data() + 8, 1); // v2 magic claiming version 1
    trace::StreamIngest in2;
    EXPECT_FALSE(in2.feed(bad.data(), bad.size()));
    EXPECT_EQ(in2.errorCode(), trace::IngestError::kBadVersion);

    // Truncation at any point in the tail.
    trace::StreamIngest in3;
    in3.feed(bytes.data(), bytes.size() - 9);
    EXPECT_FALSE(in3.finish());
    EXPECT_EQ(in3.errorCode(), trace::IngestError::kTruncated);
}

} // namespace
} // namespace paralog
