/**
 * @file
 * Microbenchmark of the trace subsystem hot paths: StreamCompressor
 * encode (model-only vs byte-emitting), RecordDecoder decode, full
 * record→file and file→replay round trips. Reports encode/decode
 * throughput in records/s and MB/s of payload, plus end-to-end replay
 * records/s (the lifeguard hot path with no application simulation —
 * the number the record-once/replay-many workflow buys).
 *
 * Scale with PARALOG_SCALE (records in the codec loops; default
 * 2000000), or pass --smoke for the seconds-long CTest tier2 run.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/replay.hpp"
#include "trace/codec.hpp"
#include "trace/trace_reader.hpp"

namespace {

using namespace paralog;
using Clock = std::chrono::steady_clock;

std::uint64_t gSink = 0;

double
perSecond(Clock::time_point t0, Clock::time_point t1, std::uint64_t ops)
{
    std::chrono::duration<double> d = t1 - t0;
    return d.count() > 0 ? static_cast<double>(ops) / d.count() : 0.0;
}

/** A realistic mixed stream: strided loads/stores, register ops, the
 *  occasional lock and malloc. */
std::vector<EventRecord>
makeStream(std::uint64_t n)
{
    std::vector<EventRecord> stream;
    stream.reserve(n);
    Rng rng(7);
    RecordId rid = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        EventRecord r;
        r.rid = rid++;
        switch (i % 8) {
          case 0:
          case 1:
          case 2:
            r.type = EventType::kLoad;
            r.addr = 0x0400'0000 + 8 * (i % 4096);
            r.size = 8;
            break;
          case 3:
          case 4:
            r.type = EventType::kStore;
            r.addr = 0x0410'0000 + 8 * (i % 4096);
            r.size = 8;
            break;
          case 5:
            r.type = EventType::kAlu;
            break;
          case 6:
            r.type = EventType::kLoad;
            r.addr = rng.next() & 0xFFFFF8; // predictor miss
            r.size = 4;
            if ((i & 31) == 0)
                r.arcs.push_back(DepArc{1, i});
            break;
          default:
            r.type = EventType::kMovRR;
            break;
        }
        stream.push_back(std::move(r));
    }
    return stream;
}

void
benchCodec(std::uint64_t records)
{
    std::vector<EventRecord> stream = makeStream(records);

    // Size model only (the live non-recording capture path).
    {
        StreamCompressor c;
        auto t0 = Clock::now();
        for (const EventRecord &r : stream)
            gSink += c.encode(r);
        auto t1 = Clock::now();
        std::printf("model-only encode:  %8.2f Mrec/s\n",
                    perSecond(t0, t1, records) / 1e6);
    }

    // Byte-emitting encode + sideband (the recording path).
    std::vector<std::uint8_t> bytes;
    bytes.reserve(records * 4);
    std::vector<std::uint32_t> sizes;
    sizes.reserve(records);
    {
        StreamCompressor c;
        RecordId last_rid = 0;
        auto t0 = Clock::now();
        for (const EventRecord &r : stream) {
            trace::encodeSideband(r, last_rid, bytes);
            sizes.push_back(c.encode(r, &bytes));
        }
        auto t1 = Clock::now();
        double mb = static_cast<double>(bytes.size()) / 1e6;
        std::printf("encode (bytes):     %8.2f Mrec/s  %8.2f MB/s "
                    "(%.2f B/rec)\n",
                    perSecond(t0, t1, records) / 1e6,
                    perSecond(t0, t1, bytes.size()) / 1e6,
                    mb * 1e6 / static_cast<double>(records));
    }

    // Decode back.
    {
        trace::RecordDecoder dec;
        ByteCursor cur(bytes.data(), bytes.size());
        EventRecord r;
        auto t0 = Clock::now();
        for (std::uint32_t payload : sizes) {
            if (!dec.decode(cur, payload, r)) {
                std::fprintf(stderr, "decode failed\n");
                std::exit(1);
            }
            gSink += r.addr;
        }
        auto t1 = Clock::now();
        std::printf("decode:             %8.2f Mrec/s  %8.2f MB/s\n",
                    perSecond(t0, t1, records) / 1e6,
                    perSecond(t0, t1, bytes.size()) / 1e6);
    }
}

void
benchReplay(std::uint64_t scale)
{
    std::string path = "/tmp/paralog_micro_trace.trace";
    RunSpec spec;
    spec.workload = WorkloadKind::kLu;
    spec.lifeguard = LifeguardKind::kTaintCheck;
    spec.mode = MonitorMode::kParallel;
    spec.cores = 4;
    spec.opt.scale = scale;
    spec.recordPath = path;

    auto t0 = Clock::now();
    RunResult live = recordExperiment(spec);
    auto t1 = Clock::now();

    std::uint64_t records = 0;
    for (const auto &l : live.lifeguard)
        records += l.recordsProcessed;

    ReplayConfig rcfg;
    rcfg.path = path;
    auto t2 = Clock::now();
    ReplayPlatform rp(std::move(rcfg));
    RunResult replayed = rp.run();
    auto t3 = Clock::now();
    gSink += replayed.totalCycles;

    // Concurrent replay (--lg-threads): same analysis results through
    // the host-parallel engine. Reported as a comparison only — the
    // speedup depends entirely on host core count (a 1-core host runs
    // it slower than serial, since the producer/consumer threads just
    // time-slice), so nothing here asserts on it.
    rcfg = ReplayConfig{};
    rcfg.path = path;
    rcfg.lgThreads = 4;
    auto t4 = Clock::now();
    ReplayPlatform rpc(std::move(rcfg));
    RunResult concurrent = rpc.run();
    auto t5 = Clock::now();
    gSink += concurrent.totalCycles;

    trace::TraceReader reader(path);
    std::printf("record (live run):  %8.2f Mrec/s  (%llu records, "
                "%llu journal ops)\n",
                perSecond(t0, t1, records) / 1e6,
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(reader.totalOps()));
    std::printf("replay (serial):    %8.2f Mrec/s  (bit-identical "
                "self-check passed)\n",
                perSecond(t2, t3, records) / 1e6);
    double serial_s = std::chrono::duration<double>(t3 - t2).count();
    double conc_s = std::chrono::duration<double>(t5 - t4).count();
    std::printf("replay (4 lg thr):  %8.2f Mrec/s  (footer self-check "
                "passed; %.2fx vs serial)\n",
                perSecond(t4, t5, records) / 1e6,
                conc_s > 0 ? serial_s / conc_s : 0.0);
    std::remove(path.c_str());
}

std::uint64_t
fileBytes(const std::string &path)
{
    trace::TraceReader reader(path);
    return reader.ok() ? reader.fileBytes() : 0;
}

/** v1-vs-v2 container comparison: file size, chunk decode throughput
 *  (serial and parallel), and mmap replay vs re-running the simulation.
 *  The replays are fingerprint-checked against each other and against
 *  the live run — a divergence is a hard failure, not a report line. */
void
benchTraceV2(std::uint64_t scale)
{
    std::string v1_path = "/tmp/paralog_micro_trace_v1.trace";
    std::string v2_path = "/tmp/paralog_micro_trace_v2.trace";
    RunSpec spec;
    spec.workload = WorkloadKind::kLu;
    spec.lifeguard = LifeguardKind::kTaintCheck;
    spec.mode = MonitorMode::kParallel;
    spec.cores = 4;
    spec.opt.scale = scale;
    spec.recordPath = v1_path;
    spec.recordFormat = 1;

    auto t0 = Clock::now();
    RunResult live = recordExperiment(spec);
    auto t1 = Clock::now();
    double live_s = std::chrono::duration<double>(t1 - t0).count();

    spec.recordPath = v2_path;
    spec.recordFormat = 2;
    recordExperiment(spec);

    std::uint64_t s1 = fileBytes(v1_path), s2 = fileBytes(v2_path);
    double ratio = s2 > 0 ? static_cast<double>(s1) /
                                static_cast<double>(s2)
                          : 0.0;
    std::printf("size: v1 %llu B, v2 %llu B  (%.2fx smaller)  %s\n",
                static_cast<unsigned long long>(s1),
                static_cast<unsigned long long>(s2), ratio,
                ratio >= 4.0 ? "[>=4x: ok]" : "[>=4x: MISS]");

    // Journal scan: drain every op stream (forces the columnar block
    // decode + CRC for every chunk), serial vs eager parallel
    // pre-decode. This is the part of replay the mmap container
    // governs — the ">=5x vs live" target applies here. (Full replay
    // below also re-runs the lifeguard analysis, which no container
    // format can skip.)
    std::uint64_t total_ops = 0;
    double scan_s = 0;
    for (int jobs : {1, 4}) {
        trace::TraceReader::Options ropts;
        ropts.decodeJobs = static_cast<std::uint32_t>(jobs);
        auto d0 = Clock::now();
        trace::TraceReader reader(v2_path, ropts);
        trace::TraceOp op;
        std::uint64_t n = 0;
        for (ThreadId t = 0; t < reader.config().appThreads; ++t) {
            auto stream = reader.opStream(t);
            while (stream.next(op))
                ++n;
        }
        auto d1 = Clock::now();
        if (!reader.ok()) {
            std::fprintf(stderr, "v2 decode failed: %s\n",
                         reader.error().c_str());
            std::exit(1);
        }
        total_ops = n;
        if (jobs == 1)
            scan_s = std::chrono::duration<double>(d1 - d0).count();
        std::printf("v2 scan (%d job%s): %8.2f Mop/s  (%llu ops, "
                    "mmap %s)\n",
                    jobs, jobs == 1 ? "" : "s",
                    perSecond(d0, d1, n) / 1e6,
                    static_cast<unsigned long long>(n),
                    reader.mapped() ? "yes" : "no");
    }
    gSink += total_ops;
    std::printf("v2 scan vs live:     %8.2fx faster  %s\n",
                scan_s > 0 ? live_s / scan_s : 0.0,
                scan_s > 0 && live_s / scan_s >= 5.0 ? "[>=5x: ok]"
                                                     : "[>=5x: MISS]");

    // Replay from the mapped v2 container vs re-running the simulation,
    // with the v1 replay alongside; all three must agree bit-for-bit.
    RunResult from_v1, from_v2;
    double v2_s = 0;
    for (int fmt : {1, 2}) {
        ReplayConfig rcfg;
        rcfg.path = fmt == 1 ? v1_path : v2_path;
        auto r0 = Clock::now();
        ReplayPlatform rp(std::move(rcfg));
        RunResult res = rp.run();
        auto r1 = Clock::now();
        double secs = std::chrono::duration<double>(r1 - r0).count();
        if (fmt == 1)
            from_v1 = res;
        else {
            from_v2 = res;
            v2_s = secs;
        }
        std::printf("replay v%d (serial): %8.3f s\n", fmt, secs);
    }
    std::printf("live sim:            %8.3f s  (full v2 replay %.2fx "
                "faster; replay re-runs the analysis, so this ratio "
                "tracks the app-sim share)\n",
                live_s, v2_s > 0 ? live_s / v2_s : 0.0);

    if (from_v1.shadowFingerprint != live.shadowFingerprint ||
        from_v2.shadowFingerprint != live.shadowFingerprint ||
        from_v1.violationFingerprint != live.violationFingerprint ||
        from_v2.violationFingerprint != live.violationFingerprint ||
        from_v1.totalCycles != live.totalCycles ||
        from_v2.totalCycles != live.totalCycles) {
        std::fprintf(stderr,
                     "v1/v2 replay fingerprints diverged from live\n");
        std::exit(1);
    }
    std::printf("fingerprints: live == v1 replay == v2 replay "
                "(0x%016llx)\n",
                static_cast<unsigned long long>(live.shadowFingerprint));
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    std::uint64_t records =
        ExperimentOptions::envScale(smoke ? 200'000 : 2'000'000);
    std::uint64_t scale = smoke ? 2'000 : 20'000;

    setQuiet(true);
    std::printf("=== micro_trace: codec (%llu records) ===\n",
                static_cast<unsigned long long>(records));
    benchCodec(records);
    std::printf("=== micro_trace: record/replay (lu, taintcheck, "
                "4 cores, scale %llu) ===\n",
                static_cast<unsigned long long>(scale));
    benchReplay(scale);
    std::printf("=== micro_trace: trace container v1 vs v2 (lu, "
                "taintcheck, 4 cores, scale %llu) ===\n",
                static_cast<unsigned long long>(scale));
    benchTraceV2(scale);
    if (gSink == 42)
        std::printf("\n"); // defeat dead-code elimination
    return 0;
}
