/**
 * @file
 * Section 7 text reproduction: SWAPTIONS allocation behaviour. The
 * paper measures ~450K malloc/free pairs, with 1/3 of allocations at
 * most one cache block (64 B), 2/3 at most 32 blocks, and none above
 * 128 blocks — every pair generating a ConflictAlert barrier.
 */

#include <cstdio>

#include "fig_common.hpp"

using namespace paralog;

int
main(int argc, char **argv)
{
    paralog_bench::initBench(argc, argv);
    ExperimentOptions opt;
    opt.scale = paralog_bench::benchScale(120000);

    PlatformConfig cfg = makeConfig(WorkloadKind::kSwaptions,
                                    LifeguardKind::kAddrCheck,
                                    MonitorMode::kParallel,
                                    paralog_bench::benchThreads(8), opt);
    Platform p(cfg);
    p.run();

    Heap &heap = p.heap();
    const Histogram &h = heap.stats.histogram("alloc_bytes");
    std::uint64_t allocs = heap.stats.get("allocs");
    std::uint64_t frees = heap.stats.get("frees");

    std::printf("=== SWAPTIONS allocation behaviour (section 7) ===\n\n");
    std::printf("malloc/free pairs: %llu / %llu (paper: ~450K, scaled)\n",
                (unsigned long long)allocs, (unsigned long long)frees);
    std::printf("ConflictAlert broadcasts: %llu\n",
                (unsigned long long)p.caManager().issued());

    // Cumulative size distribution at the paper's thresholds.
    std::uint64_t le_64 = 0, le_2048 = 0, le_8192 = 0;
    const auto &buckets = h.buckets();
    for (unsigned b = 0; b < buckets.size(); ++b) {
        std::uint64_t hi = (b == 0) ? 1 : ((1ULL << (b + 1)) - 1);
        if (hi <= 64)
            le_64 += buckets[b];
        if (hi <= 2048)
            le_2048 += buckets[b];
        if (hi <= 8192)
            le_8192 += buckets[b];
    }
    double n = static_cast<double>(h.count());
    std::printf("\nallocation size distribution (n=%llu):\n",
                (unsigned long long)h.count());
    std::printf("  <= 64 B   (1 cache block):   %5.1f%%  (paper: ~33%%)\n",
                100.0 * le_64 / n);
    std::printf("  <= 2 KB   (32 cache blocks): %5.1f%%  (paper: ~67%% cumulative)\n",
                100.0 * le_2048 / n);
    std::printf("  <= 8 KB   (128 cache blocks):%5.1f%%  (paper: 100%%)\n",
                100.0 * le_8192 / n);
    std::printf("  max allocation: %llu B\n", (unsigned long long)h.max());
    return 0;
}
