/**
 * @file
 * google-benchmark microbenches of the accelerator primitives and core
 * data structures (supports the Figure 8 analysis: these run on every
 * delivered record, so they must be cheap).
 */

#include <benchmark/benchmark.h>

#include "accel/idempotent_filter.hpp"
#include "accel/it_table.hpp"
#include "accel/mtlb.hpp"
#include "capture/log_buffer.hpp"
#include "capture/reduction.hpp"
#include "lifeguard/shadow_memory.hpp"

using namespace paralog;

namespace {

void
BM_ItLoadAbsorb(benchmark::State &state)
{
    ItTable it;
    std::vector<LgEvent> out;
    EventRecord rec;
    rec.type = EventType::kLoad;
    rec.tid = 0;
    rec.size = 8;
    RecordId rid = 0;
    for (auto _ : state) {
        rec.dst = static_cast<RegId>(rid % kNumRegs);
        rec.addr = 0x1000 + (rid % 64) * 8;
        rec.rid = rid++;
        benchmark::DoNotOptimize(it.process(rec, out));
        out.clear();
    }
}
BENCHMARK(BM_ItLoadAbsorb);

void
BM_ItStoreMemToMem(benchmark::State &state)
{
    ItTable it;
    std::vector<LgEvent> out;
    EventRecord load;
    load.type = EventType::kLoad;
    load.dst = 1;
    load.addr = 0x1000;
    load.size = 8;
    EventRecord store;
    store.type = EventType::kStore;
    store.src = 1;
    store.addr = 0x2000;
    store.size = 8;
    RecordId rid = 0;
    for (auto _ : state) {
        load.rid = rid++;
        it.process(load, out);
        store.rid = rid++;
        it.process(store, out);
        benchmark::DoNotOptimize(out.data());
        out.clear();
    }
}
BENCHMARK(BM_ItStoreMemToMem);

void
BM_ItMinRid(benchmark::State &state)
{
    ItTable it;
    std::vector<LgEvent> out;
    for (RegId r = 0; r < kNumRegs; ++r) {
        EventRecord rec;
        rec.type = EventType::kLoad;
        rec.dst = r;
        rec.addr = 0x1000 + r * 64;
        rec.size = 8;
        rec.rid = r;
        it.process(rec, out);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(it.minRid());
}
BENCHMARK(BM_ItMinRid);

void
BM_IdempotentFilterHit(benchmark::State &state)
{
    IdempotentFilter filt(64);
    filt.checkAndInsert(0x1000, 8, false, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            filt.checkAndInsert(0x1000, 8, false, 1));
}
BENCHMARK(BM_IdempotentFilterHit);

void
BM_IdempotentFilterMissEvict(benchmark::State &state)
{
    IdempotentFilter filt(64);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            filt.checkAndInsert(0x1000 + (a += 64), 8, false, 0));
    }
}
BENCHMARK(BM_IdempotentFilterMissEvict);

void
BM_MtlbHit(benchmark::State &state)
{
    MetadataTlb tlb(64, true);
    tlb.lookupCost(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookupCost(0x1000));
}
BENCHMARK(BM_MtlbHit);

void
BM_ArcReduction(benchmark::State &state)
{
    ArcReducer red;
    RawArc arc{1, 0, false};
    for (auto _ : state) {
        arc.rid += (arc.rid % 3 == 0) ? 1 : 0; // mostly redundant arcs
        benchmark::DoNotOptimize(red.shouldRecord(arc));
    }
}
BENCHMARK(BM_ArcReduction);

void
BM_LogBufferAppendPop(benchmark::State &state)
{
    LogBuffer buf(64 * 1024);
    EventRecord rec;
    rec.type = EventType::kLoad;
    rec.size = 8;
    RecordId rid = 0;
    for (auto _ : state) {
        rec.rid = rid++;
        buf.append(rec);
        benchmark::DoNotOptimize(buf.pop());
    }
}
BENCHMARK(BM_LogBufferAppendPop);

void
BM_ShadowReadPacked(benchmark::State &state)
{
    ShadowMemory shadow(2);
    shadow.fill(AddrRange{0x1000, 0x2000}, 1);
    Addr a = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(shadow.readPacked(a, 8));
        a = 0x1000 + ((a + 8) & 0xFFF);
    }
}
BENCHMARK(BM_ShadowReadPacked);

void
BM_ShadowFillRange(benchmark::State &state)
{
    ShadowMemory shadow(1);
    for (auto _ : state)
        shadow.fill(AddrRange{0x1000, 0x1000 + 4096}, 1);
}
BENCHMARK(BM_ShadowFillRange);

} // namespace

BENCHMARK_MAIN();
