/**
 * @file
 * Microbenchmark of the ShadowMemory hot paths — read / write /
 * readPacked / writePacked / fill / rangeFindNot — at all four metadata
 * ratios (1, 2, 4, 8 bits per application byte). Reports ns/op and the
 * effective fill bandwidth, plus the bytesAllocated() effect of the
 * zero-write elision (fill(range, 0) over untouched space allocates
 * nothing).
 *
 * Scale with PARALOG_SCALE (inner-loop operations; default 2000000), or
 * pass --smoke for the seconds-long CTest tier2 run.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "fig_common.hpp"
#include "lifeguard/shadow_memory.hpp"

namespace {

using namespace paralog;
using Clock = std::chrono::steady_clock;

/// Prevent the compiler from discarding benchmark results.
std::uint64_t gSink = 0;

double
nsPerOp(Clock::time_point t0, Clock::time_point t1, std::uint64_t ops)
{
    std::chrono::duration<double, std::nano> d = t1 - t0;
    return d.count() / static_cast<double>(ops ? ops : 1);
}

/// Working set: 8 MB of app address space starting inside the heap
/// arena, so multiple 1 MB chunks are exercised.
constexpr Addr kBase = 0x0400'0000;
constexpr std::uint64_t kSpan = 8ULL << 20;

void
benchRatio(std::uint32_t bpb, std::uint64_t ops)
{
    std::printf("--- ratio %u bit%s/byte ---\n", bpb, bpb == 1 ? "" : "s");

    // Sequential write / read (the per-access fast path + chunk cache).
    {
        ShadowMemory s(bpb);
        auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < ops; ++i)
            s.write(kBase + (i % kSpan), static_cast<std::uint8_t>(i));
        auto t1 = Clock::now();
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < ops; ++i)
            acc += s.read(kBase + (i % kSpan));
        auto t2 = Clock::now();
        gSink += acc;
        std::printf("  write           %8.2f ns/op\n", nsPerOp(t0, t1, ops));
        std::printf("  read            %8.2f ns/op\n", nsPerOp(t1, t2, ops));
    }

    // Random packed access (8-byte groups, the handler common case).
    {
        ShadowMemory s(bpb);
        Rng rng(42);
        std::vector<Addr> addrs(4096);
        for (Addr &a : addrs)
            a = kBase + rng.range(0, kSpan - 8);
        auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < ops; ++i)
            s.writePacked(addrs[i % addrs.size()], 8, i);
        auto t1 = Clock::now();
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < ops; ++i)
            acc += s.readPacked(addrs[i % addrs.size()], 8);
        auto t2 = Clock::now();
        gSink += acc;
        std::printf("  writePacked(8)  %8.2f ns/op\n", nsPerOp(t0, t1, ops));
        std::printf("  readPacked(8)   %8.2f ns/op\n", nsPerOp(t1, t2, ops));
    }

    // Range fill + scan over allocation-sized ranges (the AddrCheck /
    // MemCheck malloc-handler pattern).
    {
        ShadowMemory s(bpb);
        const std::uint64_t range_bytes = 4096;
        const std::uint64_t iters =
            std::max<std::uint64_t>(1, ops / range_bytes);
        auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < iters; ++i) {
            Addr a = kBase + (i * range_bytes) % kSpan;
            s.fill(AddrRange{a, a + range_bytes}, 1);
        }
        auto t1 = Clock::now();
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < iters; ++i) {
            Addr a = kBase + (i * range_bytes) % kSpan;
            acc += (s.rangeFindNot(AddrRange{a, a + range_bytes}, 1) ==
                    kInvalidAddr);
        }
        auto t2 = Clock::now();
        gSink += acc;
        double fill_gbs =
            static_cast<double>(iters * range_bytes) /
            std::max(1.0, nsPerOp(t0, t1, 1));
        std::printf("  fill(4K)        %8.2f ns/op  (%.2f app-GB/s)\n",
                    nsPerOp(t0, t1, iters), fill_gbs);
        std::printf("  rangeFindNot(4K)%8.2f ns/op\n", nsPerOp(t1, t2, iters));
    }

    // Zero-write elision: clearing untouched space allocates nothing.
    {
        ShadowMemory s(bpb);
        s.fill(AddrRange{kBase, kBase + kSpan}, 0);
        std::uint64_t zero_alloc = s.bytesAllocated();
        s.fill(AddrRange{kBase, kBase + kSpan}, 1);
        std::printf("  fill(8M, 0) allocated %llu bytes; fill(8M, 1) "
                    "allocated %llu bytes\n",
                    static_cast<unsigned long long>(zero_alloc),
                    static_cast<unsigned long long>(s.bytesAllocated()));
        PARALOG_ASSERT(zero_alloc == 0,
                       "zero-fill of untouched space must allocate nothing");
    }
}

/**
 * Sharded vs. unsharded chunk table: the same mixed workload (random
 * packed read/write plus allocation-sized fills across many chunks) at
 * shard counts 1..8, verifying the sharded layout costs nothing on the
 * single-threaded hot path (one extra mask per chunk lookup) while
 * distributing chunks over independent maps. Prints the final
 * chunk-table distribution as a sanity check.
 */
void
benchSharding(std::uint64_t ops)
{
    std::printf("--- sharded vs. unsharded chunk table (ratio 2, "
                "mixed ops) ---\n");
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        ShadowMemory s(2, shards);
        Rng rng(7);
        std::vector<Addr> addrs(4096);
        for (Addr &a : addrs)
            a = kBase + rng.range(0, kSpan - 8);
        auto t0 = Clock::now();
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
            Addr a = addrs[i % addrs.size()];
            switch (i & 3) {
              case 0: s.writePacked(a, 8, i); break;
              case 1: acc += s.readPacked(a, 8); break;
              case 2: s.fill(AddrRange{a, a + 256}, 1); break;
              default:
                acc += (s.rangeFindNot(AddrRange{a, a + 256}, 1) ==
                        kInvalidAddr);
                break;
            }
        }
        auto t1 = Clock::now();
        gSink += acc;
        std::printf("  shards=%u  %8.2f ns/op  (%zu chunks)\n", shards,
                    nsPerOp(t0, t1, ops), s.chunkCount());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    paralog_bench::initBench(argc, argv);
    std::uint64_t ops = paralog_bench::gSmoke
                            ? 200000
                            : ExperimentOptions::envScale(2000000);
    std::printf("=== ShadowMemory microbenchmark (ops=%llu) ===\n\n",
                static_cast<unsigned long long>(ops));
    for (std::uint32_t bpb : {1u, 2u, 4u, 8u})
        benchRatio(bpb, ops);
    benchSharding(ops);
    std::printf("\n(checksum %llu)\n",
                static_cast<unsigned long long>(gSink));
    return 0;
}
