/**
 * @file
 * Figure 8 (TaintCheck): 8-thread slowdown of PARALLEL monitoring,
 * normalized to NO MONITORING at 8 threads, for three designs:
 *   - Not Accelerated (aggressive per-block dependence reduction)
 *   - Accelerated (limited reduction: one per-core timestamp)
 *   - Accelerated (aggressive per-block reduction)
 */

#include "fig_common.hpp"

using namespace paralog_bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    ExperimentOptions opt = defaultOptions();
    const std::uint32_t threads = benchThreads(8);
    const LifeguardKind lg = LifeguardKind::kTaintCheck;

    std::printf("=== Figure 8 (TaintCheck): %u-thread slowdowns ===\n",
                threads);
    std::printf("(scale=%llu)\n\n",
                static_cast<unsigned long long>(opt.scale));
    std::printf("%-11s %12s %12s %12s  %s\n", "benchmark", "no-accel",
                "accel(lim)", "accel(aggr)", "accel speedup");

    std::vector<double> accel_speedups;
    for (WorkloadKind w : allWorkloads()) {
        RunResult none = runExperiment(w, lg, MonitorMode::kNoMonitoring,
                                       threads, opt);
        double base = static_cast<double>(none.totalCycles);

        ExperimentOptions no_acc = opt;
        no_acc.accelerators = false;
        RunResult r_no = runExperiment(w, lg, MonitorMode::kParallel,
                                       threads, no_acc);

        ExperimentOptions lim = opt;
        lim.depTracking = DepTracking::kPerCore;
        RunResult r_lim = runExperiment(w, lg, MonitorMode::kParallel,
                                        threads, lim);

        RunResult r_agg = runExperiment(w, lg, MonitorMode::kParallel,
                                        threads, opt);

        double s_no = r_no.totalCycles / base;
        double s_lim = r_lim.totalCycles / base;
        double s_agg = r_agg.totalCycles / base;
        std::printf("%-11s %11.2fx %11.2fx %11.2fx  %6.2fx\n",
                    toString(w), s_no, s_lim, s_agg, s_no / s_agg);
        accel_speedups.push_back(s_no / s_agg);
    }
    std::printf("\naccelerator speedup geomean: %.2fx "
                "(paper: 2x-10x for TaintCheck)\n",
                geomean(accel_speedups));
    return 0;
}
