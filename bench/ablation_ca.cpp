/**
 * @file
 * Ablation: the cost of ConflictAlert barriers (section 7's closing
 * discussion). Compares SWAPTIONS with the full mechanism against a
 * (unsound, measurement-only) run with broadcasts disabled — bounding
 * what the paper's suggested alternative (inducing dependence arcs by
 * touching allocated blocks in the wrapper) could recover.
 */

#include <cstdio>

#include "fig_common.hpp"

using namespace paralog;

int
main(int argc, char **argv)
{
    paralog_bench::initBench(argc, argv);
    std::uint64_t scale = paralog_bench::benchScale(60000);

    std::printf("=== Ablation: ConflictAlert barrier cost (AddrCheck on "
                "SWAPTIONS, scale=%llu) ===\n\n",
                (unsigned long long)scale);
    std::printf("%3s %12s %16s %12s\n", "thr", "with-CA",
                "without-CA(!)", "CA overhead");

    for (std::uint32_t threads : paralog_bench::threadCounts()) {
        ExperimentOptions opt;
        opt.scale = scale;
        RunResult base = runExperiment(WorkloadKind::kSwaptions,
                                       LifeguardKind::kAddrCheck,
                                       MonitorMode::kNoMonitoring,
                                       threads, opt);
        RunResult with = runExperiment(WorkloadKind::kSwaptions,
                                       LifeguardKind::kAddrCheck,
                                       MonitorMode::kParallel, threads,
                                       opt);
        ExperimentOptions nocaopt = opt;
        nocaopt.conflictAlerts = false;
        RunResult without = runExperiment(WorkloadKind::kSwaptions,
                                          LifeguardKind::kAddrCheck,
                                          MonitorMode::kParallel,
                                          threads, nocaopt);
        double s_with = static_cast<double>(with.totalCycles) /
                        static_cast<double>(base.totalCycles);
        double s_without = static_cast<double>(without.totalCycles) /
                           static_cast<double>(base.totalCycles);
        std::printf("%3u %11.2fx %15.2fx %11.1f%%\n", threads, s_with,
                    s_without, 100.0 * (s_with / s_without - 1.0));
    }
    std::printf("\n(!) disabling CA is unsound with accelerated "
                "lifeguards; the column only\nbounds the benefit of the "
                "paper's proposed arc-inducing alternative for\nsmall "
                "allocations.\n");
    return 0;
}
