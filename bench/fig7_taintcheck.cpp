/** @file Figure 7 (top): TaintCheck slowdown breakdown. */

#include "fig_common.hpp"

int
main()
{
    paralog_bench::runFig7(paralog::LifeguardKind::kTaintCheck);
    return 0;
}
