/** @file Figure 6 (top): TaintCheck normalized execution times. */

#include "fig_common.hpp"

int
main(int argc, char **argv)
{
    paralog_bench::initBench(argc, argv);
    paralog_bench::runFig6(paralog::LifeguardKind::kTaintCheck);
    return 0;
}
