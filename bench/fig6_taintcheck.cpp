/** @file Figure 6 (top): TaintCheck normalized execution times. */

#include "fig_common.hpp"

int
main()
{
    paralog_bench::runFig6(paralog::LifeguardKind::kTaintCheck);
    return 0;
}
