/**
 * @file
 * Bench baseline writer / regression checker, driven through the
 * `paralog --csv` CLI (env PARALOG_CLI, as in test_cli).
 *
 * A baseline (BENCH_<name>.json at the repo root) pins a figure grid to
 * a fixed scale/seed and records
 *  - the exact CSV rows every invocation must reproduce (simulated
 *    results are deterministic: any diff is a model change), and
 *  - the measured wall-clock, with the speedup over the pre-optimization
 *    build recorded at baseline time.
 *
 * `--check` re-runs the pinned grid, requires bit-identical CSV, and
 * enforces wall-clock <= headroom_factor x the recorded time — loose
 * enough for slower CI machines, tight enough to catch order-of-
 * magnitude perf regressions. `--write` re-baselines after an
 * intentional change (see README, "Performance methodology").
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

namespace {

struct Invocation
{
    std::string args;
    std::vector<std::string> csv;
};

struct Baseline
{
    std::string name;
    double headroomFactor = 4.0;
    std::uint64_t wallclockBeforeMs = 0; ///< pre-optimization build
    std::uint64_t wallclockMs = 0;       ///< at baseline time
    double speedupVsBefore = 0.0;
    std::vector<Invocation> invocations;
};

/** The pinned grids. Scales are chosen so a check stays in CTest-friendly
 *  time while still being dominated by steady-state simulation. */
std::vector<Invocation>
grid(const std::string &name)
{
    auto inv = [](std::string a) {
        return Invocation{std::move(a), {}};
    };
    const std::string pin = " --seed=1 --csv";
    if (name == "fig6_addrcheck") {
        return {inv("--workload=all --lifeguard=addrcheck --mode=all "
                    "--cores=1,2,4,8 --scale=300000" + pin)};
    }
    if (name == "fig6_taintcheck") {
        return {inv("--workload=all --lifeguard=taintcheck --mode=all "
                    "--cores=1,2,4,8 --scale=100000" + pin)};
    }
    if (name == "fig7_addrcheck") {
        return {inv("--workload=all --lifeguard=addrcheck "
                    "--mode=none,parallel --cores=1,2,4,8 "
                    "--scale=100000" + pin)};
    }
    if (name == "fig7_taintcheck") {
        return {inv("--workload=all --lifeguard=taintcheck "
                    "--mode=none,parallel --cores=1,2,4,8 "
                    "--scale=100000" + pin)};
    }
    if (name == "fig8_addrcheck") {
        return {inv("--workload=all --lifeguard=addrcheck "
                    "--mode=none,parallel --cores=8 --scale=100000" + pin),
                inv("--workload=all --lifeguard=addrcheck "
                    "--mode=parallel --cores=8 --accel=off "
                    "--scale=100000" + pin)};
    }
    if (name == "fig8_taintcheck") {
        return {inv("--workload=all --lifeguard=taintcheck "
                    "--mode=none,parallel --cores=8 --scale=100000" + pin),
                inv("--workload=all --lifeguard=taintcheck "
                    "--mode=parallel --cores=8 --accel=off "
                    "--scale=100000" + pin)};
    }
    return {};
}

std::string
cliPath()
{
    const char *cli = std::getenv("PARALOG_CLI");
    if (!cli || !*cli) {
        std::fprintf(stderr,
                     "bench_baseline: set PARALOG_CLI to the paralog "
                     "driver binary\n");
        std::exit(2);
    }
    return cli;
}

/** Run one CLI invocation, capture stdout lines; exits on failure. */
std::vector<std::string>
runCli(const std::string &cli, const std::string &args)
{
    // PID-unique temp name: several checks may run concurrently from
    // the same working directory under ctest -j.
    std::string tmp = "bench_baseline_out." +
                      std::to_string(static_cast<long>(getpid())) +
                      ".tmp";
    std::string cmd = cli + " " + args + " > " + tmp + " 2>/dev/null";
    int rc = std::system(cmd.c_str());
    if (rc != 0) {
        std::fprintf(stderr, "bench_baseline: '%s' exited with %d\n",
                     cmd.c_str(), rc);
        std::exit(1);
    }
    std::vector<std::string> lines;
    std::ifstream in(tmp);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    std::remove(tmp.c_str());
    return lines;
}

std::uint64_t
nowMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

// ---- minimal JSON I/O for the baseline shape this tool writes ----

void
writeBaseline(const Baseline &b, const std::string &path)
{
    std::ofstream out(path);
    out << "{\n";
    out << "  \"name\": \"" << b.name << "\",\n";
    out << "  \"headroom_factor\": " << b.headroomFactor << ",\n";
    out << "  \"wallclock_before_ms\": " << b.wallclockBeforeMs << ",\n";
    out << "  \"wallclock_ms\": " << b.wallclockMs << ",\n";
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2f", b.speedupVsBefore);
    out << "  \"speedup_vs_before\": " << speedup << ",\n";
    out << "  \"invocations\": [\n";
    for (std::size_t i = 0; i < b.invocations.size(); ++i) {
        const Invocation &inv = b.invocations[i];
        out << "    {\n      \"args\": \"" << inv.args << "\",\n";
        out << "      \"csv\": [\n";
        for (std::size_t r = 0; r < inv.csv.size(); ++r) {
            out << "        \"" << inv.csv[r] << "\""
                << (r + 1 < inv.csv.size() ? "," : "") << "\n";
        }
        out << "      ]\n    }"
            << (i + 1 < b.invocations.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_baseline: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Extract the (string or numeric) value following "key": . */
std::string
jsonValue(const std::string &doc, const std::string &key,
          std::size_t from = 0)
{
    std::string pat = "\"" + key + "\":";
    std::size_t p = doc.find(pat, from);
    if (p == std::string::npos) {
        std::fprintf(stderr, "bench_baseline: missing key %s\n",
                     key.c_str());
        std::exit(2);
    }
    p += pat.size();
    while (p < doc.size() && (doc[p] == ' ' || doc[p] == '\n'))
        ++p;
    if (doc[p] == '"') {
        std::size_t e = doc.find('"', p + 1);
        return doc.substr(p + 1, e - p - 1);
    }
    std::size_t e = p;
    while (e < doc.size() && doc[e] != ',' && doc[e] != '\n' &&
           doc[e] != '}')
        ++e;
    return doc.substr(p, e - p);
}

Baseline
parseBaseline(const std::string &path)
{
    std::string doc = readFile(path);
    Baseline b;
    b.name = jsonValue(doc, "name");
    b.headroomFactor = std::atof(jsonValue(doc, "headroom_factor").c_str());
    b.wallclockBeforeMs =
        std::strtoull(jsonValue(doc, "wallclock_before_ms").c_str(),
                      nullptr, 10);
    b.wallclockMs = std::strtoull(jsonValue(doc, "wallclock_ms").c_str(),
                                  nullptr, 10);
    b.speedupVsBefore =
        std::atof(jsonValue(doc, "speedup_vs_before").c_str());

    std::size_t pos = 0;
    for (;;) {
        std::size_t a = doc.find("\"args\":", pos);
        if (a == std::string::npos)
            break;
        Invocation inv;
        inv.args = jsonValue(doc, "args", pos);
        std::size_t c = doc.find("\"csv\":", a);
        std::size_t end = doc.find(']', c);
        std::size_t q = doc.find('"', doc.find('[', c));
        while (q != std::string::npos && q < end) {
            std::size_t e = doc.find('"', q + 1);
            inv.csv.push_back(doc.substr(q + 1, e - q - 1));
            q = doc.find('"', e + 1);
        }
        b.invocations.push_back(std::move(inv));
        pos = end;
    }
    return b;
}

int
writeMode(const std::string &name, const std::string &path,
          std::uint64_t before_ms)
{
    Baseline b;
    b.name = name;
    b.invocations = grid(name);
    if (b.invocations.empty()) {
        std::fprintf(stderr, "bench_baseline: unknown bench '%s'\n",
                     name.c_str());
        return 2;
    }
    std::string cli = cliPath();
    std::uint64_t t0 = nowMs();
    for (Invocation &inv : b.invocations)
        inv.csv = runCli(cli, inv.args);
    b.wallclockMs = nowMs() - t0;
    b.wallclockBeforeMs = before_ms;
    if (before_ms && b.wallclockMs)
        b.speedupVsBefore = static_cast<double>(before_ms) /
                            static_cast<double>(b.wallclockMs);
    writeBaseline(b, path);
    std::printf("%s: wrote %zu invocation(s), %llu ms", name.c_str(),
                b.invocations.size(),
                static_cast<unsigned long long>(b.wallclockMs));
    if (b.speedupVsBefore > 0)
        std::printf(" (%.2fx vs before)", b.speedupVsBefore);
    std::printf(" -> %s\n", path.c_str());
    return 0;
}

int
checkMode(const std::string &path)
{
    Baseline b = parseBaseline(path);
    std::string cli = cliPath();
    std::uint64_t t0 = nowMs();
    bool ok = true;
    for (const Invocation &inv : b.invocations) {
        std::vector<std::string> got = runCli(cli, inv.args);
        if (got != inv.csv) {
            ok = false;
            std::fprintf(stderr,
                         "%s: SIMULATED RESULTS CHANGED for '%s'\n",
                         b.name.c_str(), inv.args.c_str());
            std::size_t n = std::max(got.size(), inv.csv.size());
            for (std::size_t i = 0; i < n; ++i) {
                const char *want =
                    i < inv.csv.size() ? inv.csv[i].c_str() : "<none>";
                const char *have =
                    i < got.size() ? got[i].c_str() : "<none>";
                if (std::strcmp(want, have) != 0) {
                    std::fprintf(stderr, "  line %zu\n    want %s\n"
                                         "    have %s\n",
                                 i, want, have);
                }
            }
        }
    }
    std::uint64_t elapsed = nowMs() - t0;
    double limit = b.headroomFactor * static_cast<double>(b.wallclockMs);
    std::printf("%s: %llu ms (baseline %llu ms, limit %.0f ms, "
                "recorded speedup %.2fx over pre-optimization)\n",
                b.name.c_str(),
                static_cast<unsigned long long>(elapsed),
                static_cast<unsigned long long>(b.wallclockMs), limit,
                b.speedupVsBefore);
    if (static_cast<double>(elapsed) > limit) {
        std::fprintf(stderr,
                     "%s: WALL-CLOCK REGRESSION: %llu ms exceeds "
                     "%.1fx headroom over the %llu ms baseline — "
                     "optimize, or re-baseline with --write if the "
                     "slowdown is intended\n",
                     b.name.c_str(),
                     static_cast<unsigned long long>(elapsed),
                     b.headroomFactor,
                     static_cast<unsigned long long>(b.wallclockMs));
        ok = false;
    }
    if (ok)
        std::printf("%s: OK (simulated results bit-identical)\n",
                    b.name.c_str());
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    auto usage = [&] {
        std::fprintf(
            stderr,
            "usage: %s --write <bench-name> <out.json> [before-ms]\n"
            "       %s --check <baseline.json>\n"
            "(set PARALOG_CLI to the paralog driver binary)\n",
            argv[0], argv[0]);
        return 2;
    };
    if (argc >= 4 && std::strcmp(argv[1], "--write") == 0) {
        std::uint64_t before =
            (argc >= 5) ? std::strtoull(argv[4], nullptr, 10) : 0;
        return writeMode(argv[2], argv[3], before);
    }
    if (argc == 3 && std::strcmp(argv[1], "--check") == 0)
        return checkMode(argv[2]);
    return usage();
}
