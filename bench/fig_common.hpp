/**
 * @file
 * Shared helpers for the figure-reproduction benches: runs experiment
 * grids and prints the paper's rows/series. Scale with PARALOG_SCALE
 * (total application work units; default 60000), or pass --smoke for a
 * seconds-long short-iteration run (used by the CTest tier2 smoke
 * tests, which execute every bench binary rather than just building it).
 */

#ifndef PARALOG_BENCH_FIG_COMMON_HPP
#define PARALOG_BENCH_FIG_COMMON_HPP

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/logging.hpp"
#include "core/experiment.hpp"

namespace paralog_bench {

using namespace paralog;

/// Set by initBench() when --smoke is passed: shrink every grid to a
/// short-iteration run that still exercises the full code path.
inline bool gSmoke = false;

/** Common bench entry: silence the simulator, detect --smoke. */
inline void
initBench(int argc, char **argv)
{
    setQuiet(true);
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") {
            gSmoke = true;
        } else {
            // Fail fast: a typo'd --smoke silently running the
            // full-scale grid costs minutes, not an error message.
            std::fprintf(stderr,
                         "%s: unknown argument '%s' (only --smoke is "
                         "accepted; scale with PARALOG_SCALE)\n",
                         argv[0], argv[i]);
            std::exit(2);
        }
    }
    if (gSmoke)
        std::printf("[--smoke: short-iteration run, numbers are not "
                    "representative]\n");
}

/** Bench scale: PARALOG_SCALE wins, then smoke-mode shrink. */
inline std::uint64_t
benchScale(std::uint64_t fallback)
{
    return ExperimentOptions::envScale(gSmoke ? 1500 : fallback);
}

/** Fixed thread count for single-point benches (smoke shrinks it). */
inline std::uint32_t
benchThreads(std::uint32_t normal)
{
    return gSmoke ? std::min(normal, 2u) : normal;
}

/** Thread-count series for the figure grids. */
inline const std::vector<std::uint32_t> &
threadCounts()
{
    static const std::vector<std::uint32_t> full{1, 2, 4, 8};
    static const std::vector<std::uint32_t> smoke{1, 2};
    return gSmoke ? smoke : full;
}

inline ExperimentOptions
defaultOptions()
{
    ExperimentOptions opt;
    opt.scale = benchScale(60000);
    // Shadow-shard override for wall-clock A/B experiments
    // (PARALOG_SHADOW_SHARDS; default 0 = auto, one shard per lifeguard
    // core). Simulated results are bit-identical for any value, so the
    // pinned bench baselines hold across shard counts.
    opt.shadowShards = static_cast<std::uint32_t>(
        ExperimentOptions::envU64("PARALOG_SHADOW_SHARDS", 0));
    return opt;
}

/** Geometric-mean helper for "on average" claims. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/**
 * Figure 6 for one lifeguard: normalized execution time of
 * NO MONITORING / TIMESLICED / PARALLEL for 1-8 application threads,
 * normalized to the 1-thread unmonitored run of each benchmark.
 */
inline void
runFig6(LifeguardKind lg)
{
    setQuiet(true);
    ExperimentOptions opt = defaultOptions();
    std::printf("=== Figure 6 (%s): normalized execution time ===\n",
                toString(lg));
    std::printf("(normalized to 1-thread NO MONITORING per benchmark; "
                "scale=%llu)\n\n",
                static_cast<unsigned long long>(opt.scale));
    std::printf("%-11s %3s  %8s %11s %9s  %s\n", "benchmark", "thr",
                "no-mon", "timesliced", "parallel",
                "parallel-vs-timesliced speedup");

    const std::uint32_t max_thr = threadCounts().back();
    std::vector<double> speedups2, speedups_max;
    for (WorkloadKind w : allWorkloads()) {
        double base1 = 0.0;
        for (std::uint32_t threads : threadCounts()) {
            RunResult none = runExperiment(
                w, lg, MonitorMode::kNoMonitoring, threads, opt);
            RunResult ts = runExperiment(
                w, lg, MonitorMode::kTimesliced, threads, opt);
            RunResult par = runExperiment(
                w, lg, MonitorMode::kParallel, threads, opt);
            if (threads == 1)
                base1 = static_cast<double>(none.totalCycles);
            double n = none.totalCycles / base1;
            double t = ts.totalCycles / base1;
            double p = par.totalCycles / base1;
            double speedup = static_cast<double>(ts.totalCycles) /
                             static_cast<double>(par.totalCycles);
            std::printf("%-11s %3u  %8.3f %11.3f %9.3f  %6.2fx\n",
                        toString(w), threads, n, t, p, speedup);
            if (threads == 2)
                speedups2.push_back(speedup);
            if (threads == max_thr)
                speedups_max.push_back(speedup);
        }
    }
    std::printf("\nparallel-vs-timesliced speedup: geomean %.1fx at 2 "
                "threads, %.1fx at %u threads\n",
                geomean(speedups2), geomean(speedups_max), max_thr);
    std::printf("(paper: TaintCheck 1.5-4.1x @2t, 5.3-85x @8t; AddrCheck "
                "1.4-3.1x @2t, 5.7-126x @8t)\n");
}

/**
 * Figure 7 for one lifeguard: slowdown of PARALLEL monitoring versus
 * the same-thread-count unmonitored run, broken into useful work /
 * waiting-for-dependence / waiting-for-application.
 */
inline void
runFig7(LifeguardKind lg)
{
    setQuiet(true);
    ExperimentOptions opt = defaultOptions();
    std::printf("=== Figure 7 (%s): slowdown breakdown ===\n",
                toString(lg));
    std::printf("(slowdown vs same-thread-count NO MONITORING; lifeguard "
                "time split, scale=%llu)\n\n",
                static_cast<unsigned long long>(opt.scale));
    std::printf("%-11s %3s %9s  %7s %7s %7s\n", "benchmark", "thr",
                "slowdown", "useful", "dep", "app");

    const std::uint32_t max_thr = threadCounts().back();
    std::vector<double> slowdown_max;
    for (WorkloadKind w : allWorkloads()) {
        for (std::uint32_t threads : threadCounts()) {
            RunResult none = runExperiment(
                w, lg, MonitorMode::kNoMonitoring, threads, opt);
            RunResult par = runExperiment(
                w, lg, MonitorMode::kParallel, threads, opt);
            double slowdown = static_cast<double>(par.totalCycles) /
                              static_cast<double>(none.totalCycles);
            Cycle useful = 0, dep = 0, app = 0;
            for (const auto &l : par.lifeguard) {
                useful += l.usefulCycles;
                dep += l.depStallTotal();
                app += l.appStall;
            }
            double tot = static_cast<double>(useful + dep + app);
            if (tot == 0)
                tot = 1;
            std::printf("%-11s %3u %8.2fx  %6.1f%% %6.1f%% %6.1f%%\n",
                        toString(w), threads, slowdown,
                        100.0 * useful / tot, 100.0 * dep / tot,
                        100.0 * app / tot);
            if (threads == max_thr)
                slowdown_max.push_back(slowdown);
        }
    }
    std::printf("\naverage %u-thread overhead: %.0f%%\n", max_thr,
                100.0 * (geomean(slowdown_max) - 1.0));
    std::printf("(paper: 51%% TaintCheck, 28%% AddrCheck at 8 threads)\n");
}

} // namespace paralog_bench

#endif // PARALOG_BENCH_FIG_COMMON_HPP
