/**
 * @file
 * Figure 8 (AddrCheck): 8-thread slowdown of PARALLEL monitoring with
 * and without the accelerators, normalized to NO MONITORING at 8
 * threads.
 */

#include "fig_common.hpp"

using namespace paralog_bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    ExperimentOptions opt = defaultOptions();
    const std::uint32_t threads = benchThreads(8);
    const LifeguardKind lg = LifeguardKind::kAddrCheck;

    std::printf("=== Figure 8 (AddrCheck): %u-thread slowdowns ===\n",
                threads);
    std::printf("(scale=%llu)\n\n",
                static_cast<unsigned long long>(opt.scale));
    std::printf("%-11s %15s %12s  %s\n", "benchmark", "not-accelerated",
                "accelerated", "accel speedup");

    std::vector<double> accel_speedups;
    for (WorkloadKind w : allWorkloads()) {
        RunResult none = runExperiment(w, lg, MonitorMode::kNoMonitoring,
                                       threads, opt);
        double base = static_cast<double>(none.totalCycles);

        ExperimentOptions no_acc = opt;
        no_acc.accelerators = false;
        RunResult r_no = runExperiment(w, lg, MonitorMode::kParallel,
                                       threads, no_acc);
        RunResult r_acc = runExperiment(w, lg, MonitorMode::kParallel,
                                        threads, opt);

        double s_no = r_no.totalCycles / base;
        double s_acc = r_acc.totalCycles / base;
        std::printf("%-11s %14.2fx %11.2fx  %6.2fx\n", toString(w), s_no,
                    s_acc, s_no / s_acc);
        accel_speedups.push_back(s_no / s_acc);
    }
    std::printf("\naccelerator speedup geomean: %.2fx "
                "(paper: 1.13x-3.4x for AddrCheck)\n",
                geomean(accel_speedups));
    return 0;
}
