/**
 * @file
 * Ablation: the delayed-advertising flush threshold (section 4.2).
 * Too small forfeits IT absorption; too large lets stale accelerator
 * state pin the advertised progress and stall remote lifeguards.
 */

#include <cstdio>

#include "fig_common.hpp"

using namespace paralog;

int
main(int argc, char **argv)
{
    paralog_bench::initBench(argc, argv);
    std::uint64_t scale = paralog_bench::benchScale(60000);
    const std::uint32_t threads = paralog_bench::benchThreads(8);

    std::printf("=== Ablation: delayed-advertising threshold "
                "(TaintCheck, %u threads, scale=%llu) ===\n\n",
                threads, (unsigned long long)scale);
    std::printf("%-11s", "threshold");
    for (WorkloadKind w :
         {WorkloadKind::kLu, WorkloadKind::kBarnes,
          WorkloadKind::kRadiosity, WorkloadKind::kSwaptions})
        std::printf(" %11s", toString(w));
    std::printf("\n");

    for (std::uint64_t threshold : {0ULL, 16ULL, 64ULL, 256ULL, 4096ULL}) {
        std::printf("%-11llu", (unsigned long long)threshold);
        for (WorkloadKind w :
             {WorkloadKind::kLu, WorkloadKind::kBarnes,
              WorkloadKind::kRadiosity, WorkloadKind::kSwaptions}) {
            ExperimentOptions opt;
            opt.scale = scale;
            PlatformConfig cfg =
                makeConfig(w, LifeguardKind::kTaintCheck,
                           MonitorMode::kParallel, threads, opt);
            cfg.sim.accel.advertiseThreshold = threshold;
            Platform p(cfg);
            RunResult mon = p.run();
            RunResult base =
                runExperiment(w, LifeguardKind::kTaintCheck,
                              MonitorMode::kNoMonitoring, threads, opt);
            std::printf(" %10.2fx",
                        static_cast<double>(mon.totalCycles) /
                            static_cast<double>(base.totalCycles));
        }
        std::printf("\n");
    }
    std::printf("\n(the default threshold is 64)\n");
    return 0;
}
