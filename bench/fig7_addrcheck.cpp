/** @file Figure 7 (bottom): AddrCheck slowdown breakdown. */

#include "fig_common.hpp"

int
main(int argc, char **argv)
{
    paralog_bench::initBench(argc, argv);
    paralog_bench::runFig7(paralog::LifeguardKind::kAddrCheck);
    return 0;
}
