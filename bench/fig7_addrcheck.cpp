/** @file Figure 7 (bottom): AddrCheck slowdown breakdown. */

#include "fig_common.hpp"

int
main()
{
    paralog_bench::runFig7(paralog::LifeguardKind::kAddrCheck);
    return 0;
}
