/**
 * @file
 * Ablation: log buffer size. The paper's 64 KB buffer decouples
 * application and lifeguard; shrinking it converts lifeguard slowness
 * into application stalls.
 */

#include <cstdio>

#include "fig_common.hpp"

using namespace paralog;

int
main(int argc, char **argv)
{
    paralog_bench::initBench(argc, argv);
    std::uint64_t scale = paralog_bench::benchScale(60000);
    const std::uint32_t threads = paralog_bench::benchThreads(4);
    const WorkloadKind w = WorkloadKind::kBarnes;

    std::printf("=== Ablation: log buffer size (TaintCheck on BARNES, "
                "%u threads, scale=%llu) ===\n\n",
                threads, (unsigned long long)scale);
    std::printf("%-10s %10s %14s\n", "buffer", "slowdown",
                "app log-stall%");

    ExperimentOptions base_opt;
    base_opt.scale = scale;
    RunResult base = runExperiment(w, LifeguardKind::kTaintCheck,
                                   MonitorMode::kNoMonitoring, threads,
                                   base_opt);

    for (std::uint64_t kb : {1ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
        ExperimentOptions opt;
        opt.scale = scale;
        opt.logBufferBytes = kb * 1024;
        RunResult r = runExperiment(w, LifeguardKind::kTaintCheck,
                                    MonitorMode::kParallel, threads, opt);
        Cycle log_stall = 0, exec = 0;
        for (const auto &a : r.app) {
            log_stall += a.logFullStall;
            exec += a.execCycles + a.logFullStall;
        }
        std::printf("%6lluKB %9.2fx %13.1f%%\n", (unsigned long long)kb,
                    static_cast<double>(r.totalCycles) /
                        static_cast<double>(base.totalCycles),
                    exec ? 100.0 * log_stall / exec : 0.0);
    }
    std::printf("\n(the paper's configuration is 64KB)\n");
    return 0;
}
