/**
 * @file
 * Table 1 reproduction: prints the modelled simulation parameters for
 * every CMP configuration used in the evaluation (2/4/8/16 cores).
 */

#include <cstdio>

#include "sim/config.hpp"
#include "workloads/workload.hpp"

int
main()
{
    std::printf("=== Table 1: Experimental Setup (modelled) ===\n\n");
    std::printf("Simulator: ParaLog reproduction (cycle-stepped CMP "
                "model; see DESIGN.md)\n\n");
    for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
        paralog::SimConfig cfg = paralog::SimConfig::forAppThreads(threads);
        std::printf("--- %u application thread(s), %u cores ---\n",
                    threads, cfg.totalCores());
        std::printf("%s\n", cfg.describe().c_str());
    }
    std::printf("Benchmarks (scaled inputs; see DESIGN.md):\n");
    for (paralog::WorkloadKind w : paralog::allWorkloads())
        std::printf("  %s\n", paralog::toString(w));
    return 0;
}
