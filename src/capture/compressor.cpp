#include "capture/compressor.hpp"

#include "common/varint.hpp"

namespace paralog {

static_assert(static_cast<unsigned>(EventType::kProduceVersion) <= 0x1F,
              "EventType no longer fits the codec's 5-bit type field");

PredClass
predClassOf(EventType type)
{
    switch (type) {
      case EventType::kLoad:
        return PredClass::kLoad;
      case EventType::kStore:
        return PredClass::kStore;
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kBarrierPass:
      case EventType::kMallocEnd:
      case EventType::kFreeBegin:
      case EventType::kSyscallBegin:
      case EventType::kSyscallEnd:
      case EventType::kCaBegin:
      case EventType::kCaEnd:
      case EventType::kProduceVersion:
        return PredClass::kOther;
      default:
        return PredClass::kNone;
    }
}

std::uint32_t
StreamCompressor::addressBytes(StridePredictor &p, Addr addr,
                               std::vector<std::uint8_t> *out, bool &hit)
{
    std::uint32_t cost;
    if (p.hit(addr)) {
        // Stride hit: the address is implied; the 4-bit type code and
        // the hit flag fit in the common single byte.
        cost = 0;
        hit = true;
    } else if (p.valid) {
        std::uint64_t zigzag =
            zigzagEncode(static_cast<std::int64_t>(addr) -
                         static_cast<std::int64_t>(p.lastAddr));
        cost = out ? putVarint(*out, zigzag) : varintSize(zigzag);
    } else {
        cost = out ? putVarint(*out, addr) : varintSize(addr);
    }
    p.advance(addr);
    return cost;
}

std::uint32_t
StreamCompressor::encode(const EventRecord &rec,
                         std::vector<std::uint8_t> *out)
{
    // Every record carries a 1-byte header (4-bit type, register ids /
    // flags packed in the rest). Register-only records need nothing
    // more. The emitted header holds the type and the predictor-hit
    // flag; it is written last (the hit outcome is only known after the
    // address is encoded) into a slot reserved here.
    std::uint32_t bytes = 1;
    std::size_t header_at = 0;
    if (out) {
        header_at = out->size();
        out->push_back(0);
    }
    bool hit = false;

    switch (rec.type) {
      case EventType::kLoad:
        bytes += addressBytes(pred_[0], rec.addr, out, hit);
        break;
      case EventType::kStore:
        bytes += addressBytes(pred_[1], rec.addr, out, hit);
        break;
      case EventType::kMovRR:
      case EventType::kMovImm:
      case EventType::kAlu:
      case EventType::kJump:
        break; // header only
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kBarrierPass:
        bytes += addressBytes(pred_[2], rec.addr, out, hit);
        break;
      case EventType::kMallocEnd:
      case EventType::kFreeBegin:
      case EventType::kSyscallBegin:
      case EventType::kSyscallEnd:
      case EventType::kCaBegin:
      case EventType::kCaEnd:
        // Range begin + length, uncompressed-ish.
        bytes += addressBytes(pred_[2], rec.range.begin, out, hit);
        bytes += out ? putVarint(*out, rec.range.size())
                     : varintSize(rec.range.size());
        break;
      case EventType::kProduceVersion:
        bytes += addressBytes(pred_[2], rec.addr, out, hit) + 4;
        if (out)
            putFixed32(*out,
                       static_cast<std::uint32_t>(rec.version.rid));
        break;
      case EventType::kThreadDone:
      case EventType::kThreadSwitch:
      case EventType::kNone:
        break;
    }

    // Dependence arcs: (thread id, record id delta) per arc.
    for (const DepArc &arc : rec.arcs) {
        bytes += 1;
        if (out)
            out->push_back(static_cast<std::uint8_t>(arc.tid));
        bytes += out ? putVarint(*out, arc.rid) : varintSize(arc.rid);
    }
    if (rec.consumesVersion || rec.version.valid()) {
        bytes += 4;
        if (out)
            putFixed32(*out, static_cast<std::uint32_t>(rec.version.rid));
    }

    if (out)
        (*out)[header_at] =
            static_cast<std::uint8_t>(
                static_cast<unsigned>(rec.type) & kCodecTypeMask) |
            (hit ? kCodecHitBit : 0);

    bytes_ += bytes;
    ++records_;
    return bytes;
}

void
StreamCompressor::reset()
{
    pred_.fill(StridePredictor{});
    bytes_ = 0;
    records_ = 0;
}

} // namespace paralog
