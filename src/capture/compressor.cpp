#include "capture/compressor.hpp"

namespace paralog {

std::uint32_t
StreamCompressor::varintBytes(std::uint64_t v)
{
    std::uint32_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

std::uint32_t
StreamCompressor::addressBytes(Predictor &p, Addr addr)
{
    std::uint32_t cost;
    if (p.valid && addr == p.lastAddr + p.lastStride) {
        // Stride hit: the address is implied; the 4-bit type code and
        // the hit flag fit in the common single byte.
        cost = 0;
    } else if (p.valid) {
        std::int64_t delta =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(p.lastAddr);
        std::uint64_t zigzag =
            (static_cast<std::uint64_t>(delta) << 1) ^
            static_cast<std::uint64_t>(delta >> 63);
        cost = varintBytes(zigzag);
    } else {
        cost = varintBytes(addr);
    }
    if (p.valid)
        p.lastStride = static_cast<std::int64_t>(addr) -
                       static_cast<std::int64_t>(p.lastAddr);
    p.lastAddr = addr;
    p.valid = true;
    return cost;
}

std::uint32_t
StreamCompressor::encode(const EventRecord &rec)
{
    // Every record carries a 1-byte header (4-bit type, register ids /
    // flags packed in the rest). Register-only records need nothing
    // more.
    std::uint32_t bytes = 1;

    switch (rec.type) {
      case EventType::kLoad:
        bytes += addressBytes(pred_[0], rec.addr);
        break;
      case EventType::kStore:
        bytes += addressBytes(pred_[1], rec.addr);
        break;
      case EventType::kMovRR:
      case EventType::kMovImm:
      case EventType::kAlu:
      case EventType::kJump:
        break; // header only
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kBarrierPass:
        bytes += addressBytes(pred_[2], rec.addr);
        break;
      case EventType::kMallocEnd:
      case EventType::kFreeBegin:
      case EventType::kSyscallBegin:
      case EventType::kSyscallEnd:
      case EventType::kCaBegin:
      case EventType::kCaEnd:
        // Range begin + length, uncompressed-ish.
        bytes += addressBytes(pred_[2], rec.range.begin);
        bytes += varintBytes(rec.range.size());
        break;
      case EventType::kProduceVersion:
        bytes += addressBytes(pred_[2], rec.addr) + 4;
        break;
      case EventType::kThreadDone:
      case EventType::kThreadSwitch:
      case EventType::kNone:
        break;
    }

    // Dependence arcs: (thread id, record id delta) per arc.
    for (const DepArc &arc : rec.arcs)
        bytes += 1 + varintBytes(arc.rid);
    if (rec.consumesVersion || rec.version.valid())
        bytes += 4;

    bytes_ += bytes;
    ++records_;
    return bytes;
}

void
StreamCompressor::reset()
{
    pred_.fill(Predictor{});
    bytes_ = 0;
    records_ = 0;
}

} // namespace paralog
