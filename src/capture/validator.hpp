/**
 * @file
 * Happens-before completeness validator.
 *
 * The soundness claim underlying the paper's order capture (section
 * 5.1, inherited from FDR/RTR): every pair of *conflicting* accesses —
 * same address, at least one write, different threads — must be ordered
 * by the transitive closure of program order and the recorded
 * dependence arcs. If any conflicting pair is unordered, a lifeguard
 * could process the two accesses' metadata operations in either order
 * and diverge from the application.
 *
 * The validator replays a captured trace in global capture order,
 * maintaining per-thread vector clocks joined along arcs, and checks
 * the ordering of every conflicting pair (at cache-line granularity,
 * matching what the hardware can observe). ConflictAlert pairs count as
 * ordering for the ranges they cover (that is their purpose).
 *
 * Applies to SC captures (arcs final at append time); TSO captures
 * annotate pending records at store-drain time, which this offline
 * sweep does not model.
 */

#ifndef PARALOG_CAPTURE_VALIDATOR_HPP
#define PARALOG_CAPTURE_VALIDATOR_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "capture/trace.hpp"

namespace paralog {

class HappensBeforeValidator
{
  public:
    struct Result
    {
        std::uint64_t conflictingPairs = 0;
        std::uint64_t orderedByArcs = 0;
        std::uint64_t orderedByAlerts = 0;
        std::vector<std::string> violations; ///< unordered pairs found

        bool ok() const { return violations.empty(); }
    };

    explicit HappensBeforeValidator(std::uint32_t num_threads,
                                    std::uint32_t line_bytes = 64)
        : numThreads_(num_threads), lineBytes_(line_bytes)
    {
    }

    /** Validate a full-run trace. */
    Result validate(const std::vector<TracedRecord> &trace);

  private:
    using VectorClock = std::vector<RecordId>;

    struct LastAccess
    {
        ThreadId tid = kInvalidThread;
        RecordId rid = kInvalidRecord;
        VectorClock clock; ///< clock *after* the access
        bool isWrite = false;
        std::uint64_t seq = 0;
    };

    static bool
    dominates(const VectorClock &a, ThreadId tid, RecordId rid)
    {
        return a[tid] != kInvalidRecord && a[tid] >= rid;
    }

    std::uint32_t numThreads_;
    std::uint32_t lineBytes_;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_VALIDATOR_HPP
