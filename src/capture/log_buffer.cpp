#include "capture/log_buffer.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace paralog {

void
LogBuffer::append(EventRecord rec, std::uint32_t charged_bytes)
{
    rec.chargedBytes =
        charged_bytes ? charged_bytes : rec.compressedBytes();
    bytes_ += rec.chargedBytes;
    ++appended_;
    records_.push_back(std::move(rec));
}

const EventRecord *
LogBuffer::peek(RecordId vis_limit) const
{
    if (records_.empty())
        return nullptr;
    const EventRecord &front = records_.front();
    if (vis_limit != kInvalidRecord && front.rid >= vis_limit)
        return nullptr;
    return &front;
}

EventRecord
LogBuffer::pop()
{
    PARALOG_ASSERT(!records_.empty(), "pop from empty log buffer");
    EventRecord rec = std::move(records_.front());
    records_.pop_front();
    PARALOG_ASSERT(bytes_ >= rec.chargedBytes,
                   "log buffer byte accounting underflow");
    bytes_ -= rec.chargedBytes;
    return rec;
}

void
LogBuffer::dropFront()
{
    PARALOG_ASSERT(!records_.empty(), "dropFront from empty log buffer");
    const EventRecord &rec = records_.front();
    PARALOG_ASSERT(bytes_ >= rec.chargedBytes,
                   "log buffer byte accounting underflow");
    bytes_ -= rec.chargedBytes;
    records_.pop_front();
}

EventRecord *
LogBuffer::findByRid(RecordId rid)
{
    // Records are rid-ordered; binary search for the first >= rid.
    auto it = std::lower_bound(
        records_.begin(), records_.end(), rid,
        [](const EventRecord &r, RecordId v) { return r.rid < v; });
    if (it == records_.end() || it->rid != rid)
        return nullptr;
    return &*it;
}

void
LogBuffer::insertBefore(RecordId before_rid, EventRecord rec)
{
    auto it = std::lower_bound(
        records_.begin(), records_.end(), before_rid,
        [](const EventRecord &r, RecordId v) { return r.rid < v; });
    PARALOG_ASSERT(it != records_.end() && it->rid == before_rid,
                   "insertBefore: record %llu not pending",
                   static_cast<unsigned long long>(before_rid));
    rec.chargedBytes = rec.compressedBytes();
    bytes_ += rec.chargedBytes;
    ++appended_;
    records_.insert(it, std::move(rec));
}

} // namespace paralog
