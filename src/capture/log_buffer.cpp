#include "capture/log_buffer.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace paralog {

void
LogBuffer::append(EventRecord rec, std::uint32_t charged_bytes)
{
    rec.chargedBytes =
        charged_bytes ? charged_bytes : rec.compressedBytes();
    bytes_ += rec.chargedBytes;
    ++appended_;
    records_.push_back(std::move(rec));
}

const EventRecord *
LogBuffer::peek(RecordId vis_limit) const
{
    if (records_.empty())
        return nullptr;
    const EventRecord &front = records_.front();
    if (vis_limit != kInvalidRecord && front.rid >= vis_limit)
        return nullptr;
    return &front;
}

EventRecord
LogBuffer::pop()
{
    PARALOG_ASSERT(!records_.empty(), "pop from empty log buffer");
    EventRecord rec = std::move(records_.front());
    records_.pop_front();
    PARALOG_ASSERT(bytes_ >= rec.chargedBytes,
                   "log buffer byte accounting underflow");
    bytes_ -= rec.chargedBytes;
    return rec;
}

void
LogBuffer::dropFront()
{
    PARALOG_ASSERT(!records_.empty(), "dropFront from empty log buffer");
    const EventRecord &rec = records_.front();
    PARALOG_ASSERT(bytes_ >= rec.chargedBytes,
                   "log buffer byte accounting underflow");
    bytes_ -= rec.chargedBytes;
    records_.pop_front();
}

std::deque<EventRecord>::iterator
LogBuffer::firstAtOrAfter(RecordId rid)
{
    return std::lower_bound(
        records_.begin(), records_.end(), rid,
        [](const EventRecord &r, RecordId v) { return r.rid < v; });
}

EventRecord *
LogBuffer::findByRid(RecordId rid)
{
    auto it = firstAtOrAfter(rid);
    if (it == records_.end() || it->rid != rid)
        return nullptr;
    return &*it;
}

EventRecord *
LogBuffer::findByRidPreferMemAccess(RecordId rid)
{
    EventRecord *any = nullptr;
    for (auto it = firstAtOrAfter(rid);
         it != records_.end() && it->rid == rid; ++it) {
        if (it->isMemAccess())
            return &*it;
        if (!any)
            any = &*it;
    }
    return any;
}

EventRecord *
LogBuffer::findStoreByRid(RecordId rid)
{
    for (auto it = firstAtOrAfter(rid);
         it != records_.end() && it->rid == rid; ++it) {
        if (it->type == EventType::kStore)
            return &*it;
    }
    return nullptr;
}

void
LogBuffer::insertBefore(RecordId before_rid, EventRecord rec)
{
    auto pos = firstAtOrAfter(before_rid);
    // Prefer the exact store record so the snapshot is taken as late as
    // possible (after any same-rid CA record's accelerator flushes).
    for (auto it = pos; it != records_.end() && it->rid == before_rid;
         ++it) {
        if (it->type == EventType::kStore) {
            pos = it;
            break;
        }
    }
    rec.chargedBytes = rec.compressedBytes();
    bytes_ += rec.chargedBytes;
    ++appended_;
    records_.insert(pos, std::move(rec));
}

} // namespace paralog
