/**
 * @file
 * Stream compressor model. The LBA work reports that value/delta
 * prediction compresses event records to under a byte on average
 * (section 2: "Compression techniques can successfully reduce the
 * average size of an event record to less than 1 byte"). This model
 * reproduces that behaviour structurally: per-record-type last-address
 * registers predict the next address (stride prediction); a hit costs a
 * 4-bit type code, a miss pays a varint-coded delta. Dependence arcs
 * and high-level payloads are appended uncompressed.
 *
 * The compressor is per-thread state in the capture unit; its output
 * size drives the 64 KB log buffer occupancy.
 */

#ifndef PARALOG_CAPTURE_COMPRESSOR_HPP
#define PARALOG_CAPTURE_COMPRESSOR_HPP

#include <array>
#include <cstdint>

#include "app/event.hpp"
#include "common/stats.hpp"

namespace paralog {

class StreamCompressor
{
  public:
    /**
     * Model the compressed size of @p rec, updating predictor state.
     * Deterministic: identical record sequences produce identical
     * sizes.
     */
    std::uint32_t encode(const EventRecord &rec);

    /** Average compressed record size so far (bytes). */
    double
    averageBytes() const
    {
        return records_ ? static_cast<double>(bytes_) /
                              static_cast<double>(records_)
                        : 0.0;
    }

    std::uint64_t totalBytes() const { return bytes_; }
    std::uint64_t totalRecords() const { return records_; }

    void reset();

  private:
    struct Predictor
    {
        Addr lastAddr = 0;
        std::int64_t lastStride = 0;
        bool valid = false;
    };

    static std::uint32_t varintBytes(std::uint64_t v);
    std::uint32_t addressBytes(Predictor &p, Addr addr);

    // One address predictor per memory-referencing record class:
    // loads, stores, and "other" (locks/barriers/high-level).
    std::array<Predictor, 3> pred_{};
    std::uint64_t bytes_ = 0;
    std::uint64_t records_ = 0;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_COMPRESSOR_HPP
