/**
 * @file
 * Stream compressor. The LBA work reports that value/delta prediction
 * compresses event records to under a byte on average (section 2:
 * "Compression techniques can successfully reduce the average size of
 * an event record to less than 1 byte"). This reproduces that behaviour
 * structurally: per-record-type last-address registers predict the next
 * address (stride prediction); a hit costs a 4-bit type code, a miss
 * pays a varint-coded delta. Dependence arcs and high-level payloads
 * are appended uncompressed.
 *
 * The compressor is per-thread state in the capture unit; its output
 * size drives the 64 KB log buffer occupancy.
 *
 * encode() is both the size model and a real encoder: pass a byte sink
 * and the compressed payload is emitted as actual bytes, exactly as
 * many as the returned (modeled) size — one code path computes both, so
 * the stats/bench baselines and the on-disk `paralog-trace-v1` payloads
 * cannot drift apart. trace/codec.hpp holds the matching decoder.
 */

#ifndef PARALOG_CAPTURE_COMPRESSOR_HPP
#define PARALOG_CAPTURE_COMPRESSOR_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "app/event.hpp"
#include "common/stats.hpp"

namespace paralog {

/**
 * One last-address register with stride prediction. Shared between the
 * encoder (StreamCompressor) and the trace decoder, which must advance
 * an identical predictor to reconstruct hit addresses.
 */
struct StridePredictor
{
    Addr lastAddr = 0;
    std::int64_t lastStride = 0;
    bool valid = false;

    bool
    hit(Addr addr) const
    {
        return valid && addr == lastAddr + lastStride;
    }

    void
    advance(Addr addr)
    {
        if (valid)
            lastStride = static_cast<std::int64_t>(addr) -
                         static_cast<std::int64_t>(lastAddr);
        lastAddr = addr;
        valid = true;
    }
};

/** Which of the three predictors a record class uses (kPredNone for
 *  header-only records). Shared with the trace decoder. */
enum class PredClass : std::uint8_t
{
    kLoad = 0,
    kStore = 1,
    kOther = 2, ///< locks / barriers / high-level ranges
    kNone,
};

PredClass predClassOf(EventType type);

class StreamCompressor
{
  public:
    /**
     * Compress @p rec, updating predictor state, and return its size in
     * bytes. With @p out set, the compressed payload is appended to it:
     * exactly the returned number of bytes (layout documented in
     * trace/codec.hpp). Deterministic: identical record sequences
     * produce identical sizes and bytes.
     */
    std::uint32_t encode(const EventRecord &rec,
                         std::vector<std::uint8_t> *out = nullptr);

    /** Average compressed record size so far (bytes). */
    double
    averageBytes() const
    {
        return records_ ? static_cast<double>(bytes_) /
                              static_cast<double>(records_)
                        : 0.0;
    }

    std::uint64_t totalBytes() const { return bytes_; }
    std::uint64_t totalRecords() const { return records_; }

    void reset();

  private:
    std::uint32_t addressBytes(StridePredictor &p, Addr addr,
                               std::vector<std::uint8_t> *out, bool &hit);

    // One address predictor per memory-referencing record class:
    // loads, stores, and "other" (locks/barriers/high-level).
    std::array<StridePredictor, 3> pred_{};
    std::uint64_t bytes_ = 0;
    std::uint64_t records_ = 0;
};

// Payload header byte layout (see trace/codec.hpp for the decoder):
// bits [0..4] = EventType, bit 5 = address predictor hit, bits 6-7
// reserved. EventType must keep fitting those five bits.
inline constexpr std::uint8_t kCodecTypeMask = 0x1F;
inline constexpr std::uint8_t kCodecHitBit = 0x20;

} // namespace paralog

#endif // PARALOG_CAPTURE_COMPRESSOR_HPP
