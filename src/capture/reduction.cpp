#include "capture/reduction.hpp"

namespace paralog {

bool
ArcReducer::shouldRecord(const RawArc &arc)
{
    auto it = lastRecorded_.find(arc.tid);
    if (it != lastRecorded_.end() && it->second >= arc.rid) {
        ++dropped;
        return false;
    }
    lastRecorded_[arc.tid] = arc.rid;
    ++kept;
    return true;
}

} // namespace paralog
