/**
 * @file
 * Per-application-thread event capture + order capture component
 * (left half of Figure 2): assigns record IDs, filters events according
 * to the lifeguard's registered interests (the "event mux" of Figure 1),
 * applies transitive arc reduction, and manages the log buffer shared
 * with the lifeguard core.
 */

#ifndef PARALOG_CAPTURE_CAPTURE_UNIT_HPP
#define PARALOG_CAPTURE_CAPTURE_UNIT_HPP

#include <atomic>
#include <cstdint>
#include <deque>

#include "app/event.hpp"
#include "capture/compressor.hpp"
#include "capture/journal.hpp"
#include "capture/log_buffer.hpp"
#include "capture/reduction.hpp"
#include "capture/trace.hpp"
#include "common/spsc_ring.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"

namespace paralog {

/**
 * Which events the lifeguard registered for. Anything else is dropped at
 * capture time (it still retires and consumes a record ID).
 */
struct EventFilter
{
    bool regOps = true;    ///< kMovRR/kMovImm/kAlu (propagation lifeguards)
    bool loads = true;
    bool stores = true;
    bool jumps = true;
    bool heapOnly = false; ///< restrict loads/stores to the heap arena
    AddrRange heapArena{};

    bool wants(const EventRecord &rec) const;
};

class CaptureUnit
{
  public:
    CaptureUnit(ThreadId tid, const SimConfig &cfg, EventFilter filter)
        : tid_(tid), filter_(filter), buf_(cfg.logBufferBytes),
          filteredCtr_(stats.counter("filtered")),
          recordsCtr_(stats.counter("records")),
          recordsWithArcsCtr_(stats.counter("records_with_arcs"))
    {
    }

    ThreadId tid() const { return tid_; }

    /** True if there is room for the next record (producer may proceed). */
    bool canAppend() const { return !buf_.full(); }

    /**
     * Append a retired event. Applies the event filter and arc reduction;
     * returns true if a record was actually written to the stream.
     * Arc reduction runs even for filtered-out records (the hardware sees
     * all coherence traffic regardless of lifeguard interests).
     */
    bool append(const AppEvent &ev);

    /** Append a ConflictAlert record (broadcast insertion, never blocks). */
    void appendCa(EventRecord rec);

    /** Attach arcs discovered at TSO store-drain time to a pending record. */
    void attachArcs(RecordId rid, const std::vector<RawArc> &arcs);

    /** Annotate a pending load with a consume-version tag (TSO). Returns
     *  false if the record was already consumed (which is benign; see
     *  DESIGN.md). */
    bool annotateConsume(RecordId rid, const VersionTag &v);

    /** Insert a produce-version record before a pending store (TSO). */
    void insertProduceBefore(RecordId store_rid, const VersionTag &v,
                             Addr addr, std::uint8_t size);

    /** TSO visibility: records with rid >= limit are hidden from the
     *  consumer. kInvalidRecord = everything visible. */
    void
    setVisibilityLimit(RecordId limit)
    {
        visLimit_ = limit;
        if (journal_)
            journal_->onVisibilityLimit(tid_, limit);
    }
    RecordId visibilityLimit() const { return visLimit_; }

    /** Producer-side retire counter mirror (count of retired micro-ops). */
    void
    setRetired(RecordId retired)
    {
        retired_ = retired;
        if (journal_)
            journal_->onRetire(tid_, retired);
    }
    RecordId retired() const { return retired_; }

    // ---- consumer interface (order-enforcing component reads these) ----

    const EventRecord *
    peek() const
    {
        return ring_ ? ring_->front() : buf_.peek(visLimit_);
    }
    EventRecord
    pop()
    {
        if (ring_) {
            EventRecord rec = std::move(*ring_->front());
            ring_->pop();
            return rec;
        }
        return buf_.pop();
    }
    /** Discard the head after in-place processing (batch delivery). */
    void
    dropFront()
    {
        if (ring_)
            ring_->pop();
        else
            buf_.dropFront();
    }
    bool consumerEmpty() const { return peek() == nullptr; }

    /**
     * Largest "done count" the consumer may publish once it has drained
     * everything currently visible: all rids below this value either
     * never produced a record or have been consumed.
     */
    RecordId progressCeiling() const;

    /** The log-buffer-side ceiling (the serial progressCeiling
     *  formula), regardless of ring mode. In ring mode this is the
     *  producer-side input to setCeilingBound. */
    RecordId bufferCeiling() const;

    // ---- concurrent (ring) hand-off mode --------------------------------

    /**
     * Switch the consumer face to a cross-thread SPSC ring. The replay
     * producer thread moves fully-sealed records out of the log buffer
     * into the ring (publishing batches atomically) and advances the
     * ceiling bound; the consumer side of peek/pop/dropFront/
     * progressCeiling then reads the ring only. Producer-side mutators
     * (append/attachArcs/annotate/...) keep operating on the log
     * buffer and stay producer-thread-only.
     */
    void attachRing(SpscRing<EventRecord> *ring) { ring_ = ring; }
    SpscRing<EventRecord> *ring() { return ring_; }

    /**
     * Live-parallel online seal: move every sealed head record into the
     * ring and advance the ceiling bound. A record is sealed once (a)
     * it is visible under the TSO visibility limit (all annotations —
     * drain-time arcs, consume versions, produce insertions — land on
     * records the limit still hides) and (b) its append cycle is at or
     * below @p watermark, the minimum retire cycle over all buffered
     * TSO stores: MemorySystem::addArcFrom raises a version request
     * only against an access that retired strictly *after* the draining
     * store, so no future drain can target a record published under
     * this rule. Under SC (or with empty store buffers) the watermark
     * is Cycle max and the rule degenerates to the visibility limit.
     *
     * Records sealed while the ring is full spill to an unbounded
     * producer-side overflow queue (FIFO with the ring) so the seal
     * never blocks the application simulation. Producer-thread-only.
     */
    void publishSealed(Cycle watermark);

    /** True once every captured record has been handed to the ring
     *  (log buffer and overflow both empty). Producer-thread-only. */
    bool
    liveAllPublished() const
    {
        return buf_.empty() && liveOverflow_.empty();
    }

    /** Sealed-but-unpublished records waiting for ring space
     *  (producer-side; watchdog signature input). */
    std::size_t overflowSize() const { return liveOverflow_.size(); }

    /** Current publication frontier (acquire; either side may read). */
    RecordId
    ceilingBound() const
    {
        return ceilingBound_.load(std::memory_order_acquire);
    }

    /**
     * Producer-side "stream drained" test for syscall delayed
     * advertising: no *visible* record is still waiting in the log
     * buffer. In serial mode this equals consumerEmpty(); in ring mode
     * it deliberately ignores the ring and overflow (records there are
     * sealed — the syscall's consumer-side ordering is enforced by the
     * CA arc chain, not by producer-side draining) and never touches
     * consumer-face state, so the producer thread may call it freely.
     */
    bool drainedForSyscall() const { return buf_.peek(visLimit_) == nullptr; }

    /**
     * Ring-mode progress bound: a consumer that has drained the ring
     * may publish progress up to this value. The producer advances it
     * (release) only after publishing every ring record it covers, and
     * progressCeiling() reads it (acquire) *before* looking at the ring
     * head — so a bound observed together with an empty ring really
     * means every record below the bound was handed over.
     */
    void
    setCeilingBound(RecordId bound)
    {
        ceilingBound_.store(bound, std::memory_order_release);
    }

    LogBuffer &buffer() { return buf_; }
    ArcReducer &reducer() { return reducer_; }
    StreamCompressor &compressor() { return compressor_; }

    /** Tee every captured record into @p sink (offline validation). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    /** Journal every producer-side stream mutation (record/replay). */
    void setJournal(CaptureJournal *journal) { journal_ = journal; }

    // ---- replay interface (core/replay.cpp applies journal ops) ----

    /** Re-apply a journalled append: the record is final as of append
     *  time (filter and arc reduction already ran when it was
     *  recorded), so it goes straight into the log buffer. Counter
     *  bookkeeping mirrors the live append paths (@p is_ca selects the
     *  appendCa accounting). */
    void
    replayAppend(EventRecord rec, std::uint32_t charged_bytes,
                 bool is_ca = false)
    {
        if (is_ca) {
            stats.counter("ca_records").inc();
        } else {
            recordsCtr_.inc();
            if (!rec.arcs.empty())
                recordsWithArcsCtr_.inc();
        }
        buf_.append(std::move(rec), charged_bytes);
    }

    /** Re-apply journalled drain-time arcs. When the record was
     *  filtered out at capture, the arcs were carried into the next
     *  captured record — whose journalled append already contains them
     *  — so a missing record means nothing to do here. */
    void
    replayAttachArcs(RecordId rid, const std::vector<DepArc> &kept)
    {
        if (EventRecord *rec = buf_.findByRid(rid)) {
            for (const DepArc &a : kept)
                rec->arcs.push_back(a);
        }
    }

    StatSet stats{"capture"};

  private:
    ThreadId tid_;
    EventFilter filter_;
    LogBuffer buf_;
    ArcReducer reducer_;
    StreamCompressor compressor_;
    TraceSink *trace_ = nullptr;
    CaptureJournal *journal_ = nullptr;
    std::vector<std::uint8_t> codecScratch_; ///< journalled codec bytes
    RecordId retired_ = 0;
    RecordId visLimit_ = kInvalidRecord;
    /// Concurrent hand-off (attachRing): consumer face reads the ring.
    SpscRing<EventRecord> *ring_ = nullptr;
    /// Ring-mode progress bound, producer-published (release) and read
    /// by progressCeiling() (acquire) before the ring head.
    std::atomic<RecordId> ceilingBound_{0};
    /// Live-parallel: sealed records that found the ring full. Drained
    /// ahead of the log buffer on the next publishSealed so the ring
    /// stays FIFO by rid. Producer-thread-only.
    std::deque<EventRecord> liveOverflow_;
    /// Arcs that survived reduction but whose record was filtered out;
    /// re-attached to the next captured record (conservative ordering).
    std::vector<DepArc> pendingArcsCarry_;

    // Cached references into `stats` for the once-per-retired-event
    // sites (string-keyed map lookups are too slow there).
    Counter &filteredCtr_;
    Counter &recordsCtr_;
    Counter &recordsWithArcsCtr_;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_CAPTURE_UNIT_HPP
