/**
 * @file
 * Transitive reduction of dependence arcs (FDR/RTR style): an arc from
 * (t, i) need not be recorded if an arc from (t, i') with i' >= i was
 * already recorded earlier in this receiving thread's stream — the
 * earlier arc already orders everything up to i' (section 5.1).
 */

#ifndef PARALOG_CAPTURE_REDUCTION_HPP
#define PARALOG_CAPTURE_REDUCTION_HPP

#include <cstdint>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/memory_system.hpp"

namespace paralog {

class ArcReducer
{
  public:
    /**
     * Consider recording an arc from @p arc into this thread's stream.
     * Returns true if the arc is new information and must be recorded.
     */
    bool shouldRecord(const RawArc &arc);

    /** Forget everything (context switch of the receiving thread). */
    void reset() { lastRecorded_.clear(); }

    std::uint64_t kept = 0;
    std::uint64_t dropped = 0;

  private:
    std::unordered_map<ThreadId, RecordId> lastRecorded_;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_REDUCTION_HPP
