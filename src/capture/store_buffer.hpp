/**
 * @file
 * TSO data path: per-core FIFO store buffers with load forwarding.
 *
 * Stores retire into the buffer and drain to the coherent memory system
 * later. A drain that invalidates a remote block whose last access was a
 * read retiring *after* this store retired is a non-SC R->W conflict;
 * instead of recording an arc the version protocol of section 5.5 runs:
 * the writer's stream gains a produce-version record before its pending
 * store and the reader's pending load is annotated to consume it.
 *
 * A thread's records at or beyond its oldest undrained store are hidden
 * from the consumer so those annotations can always be inserted.
 */

#ifndef PARALOG_CAPTURE_STORE_BUFFER_HPP
#define PARALOG_CAPTURE_STORE_BUFFER_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "app/data_path.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"

namespace paralog {

/** Callbacks from the TSO data path into the capture layer. */
class TsoHooks
{
  public:
    virtual ~TsoHooks() = default;

    /** Arcs discovered at drain time belong to the pending store record. */
    virtual void attachArcsToPending(ThreadId tid, RecordId rid,
                                     const std::vector<RawArc> &arcs) = 0;

    /** Non-SC R->W conflict: run the produce/consume version protocol. */
    virtual void onScViolation(ThreadId writer_tid, RecordId writer_rid,
                               Addr addr, std::uint8_t size,
                               const VersionRequest &reader) = 0;

    /** Records with rid >= limit are not yet consumable for tid. */
    virtual void setVisibilityLimit(ThreadId tid, RecordId limit) = 0;
};

class TsoDataPath : public DataPath
{
  public:
    TsoDataPath(const SimConfig &cfg, MemorySystem &mem, TsoHooks &hooks,
                std::uint32_t num_cores);

    LoadResult load(CoreId core, Addr addr, unsigned size,
                    const AccessTag &tag) override;

    AccessResult store(CoreId core, Addr addr, unsigned size,
                       std::uint64_t value, const AccessTag &tag) override;

    bool storeSpace(CoreId core) const override;

    Cycle fence(CoreId core) override;

    /**
     * Drain at most one ready store for @p core (called once per core
     * step by the platform). Returns cycles consumed in the background
     * (not charged to the core).
     */
    void pump(CoreId core, Cycle now);

    /**
     * Earliest cycle at which pump() would drain a store for @p core,
     * or Cycle max if its buffer is empty. Feeds the platform's
     * solo-horizon batching rule: a pending drain is a simulated actor
     * the lifeguard batch window must not cross.
     */
    Cycle
    nextDrainReady(CoreId core) const
    {
        const auto &buf = buffers_[core];
        return buf.empty() ? ~Cycle{0} : buf.front().readyAt;
    }

    /** Buffered stores for a core (tests). */
    std::size_t depth(CoreId core) const { return buffers_[core].size(); }

    /**
     * Retire cycle of the oldest buffered store for @p core (Cycle max
     * when the buffer is empty). Stores retire in program order, so the
     * front entry carries the buffer's minimum. The global minimum over
     * all cores is the live-parallel publication watermark: a drain can
     * raise a consume-version annotation only against a load that
     * retired strictly *after* the draining store
     * (MemorySystem::addArcFrom), so any record appended at or before
     * every buffered store's retire cycle can never be targeted again
     * and is safe to hand to its consumer (CaptureUnit::publishSealed).
     */
    Cycle
    oldestStoreRetire(CoreId core) const
    {
        const auto &buf = buffers_[core];
        return buf.empty() ? ~Cycle{0} : buf.front().tag.retireCycle;
    }

    StatSet stats{"tso"};

  private:
    struct Entry
    {
        Addr addr;
        unsigned size;
        std::uint64_t value;
        AccessTag tag;
        Cycle readyAt;
    };

    void drainOne(CoreId core);
    void updateVisibility(CoreId core);

    const SimConfig &cfg_;
    MemorySystem &mem_;
    TsoHooks &hooks_;
    std::vector<std::deque<Entry>> buffers_;
    std::vector<ThreadId> lastTid_; ///< owning thread per core (visibility)
};

} // namespace paralog

#endif // PARALOG_CAPTURE_STORE_BUFFER_HPP
