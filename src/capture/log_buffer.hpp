/**
 * @file
 * Per-thread event stream buffer: the paper's circular log buffer held in
 * the last-level cache (64 KB, ~1 byte per compressed record). When the
 * buffer is full the application core stalls; when empty the lifeguard
 * core stalls.
 *
 * Under TSO a visibility limit hides records at or beyond the oldest
 * undrained store so produce-version annotations can still be inserted
 * in front of pending store records (section 5.5).
 */

#ifndef PARALOG_CAPTURE_LOG_BUFFER_HPP
#define PARALOG_CAPTURE_LOG_BUFFER_HPP

#include <cstdint>
#include <deque>

#include "app/event.hpp"
#include "common/types.hpp"

namespace paralog {

class LogBuffer
{
  public:
    explicit LogBuffer(std::uint64_t capacity_bytes)
        : capacityBytes_(capacity_bytes)
    {
    }

    /** Append at the tail. Always succeeds; producers must check full()
     *  first (ConflictAlert insertion may transiently overflow).
     *  @param charged_bytes modelled compressed size; 0 = use the
     *         record's static size table */
    void append(EventRecord rec, std::uint32_t charged_bytes = 0);

    bool full() const { return bytes_ >= capacityBytes_; }
    bool empty() const { return records_.empty(); }
    std::size_t size() const { return records_.size(); }
    std::uint64_t bytes() const { return bytes_; }

    /**
     * The oldest record whose rid is below @p vis_limit, or nullptr.
     * Pass kInvalidRecord for "everything visible".
     */
    const EventRecord *peek(RecordId vis_limit = kInvalidRecord) const;

    /** Remove and return the head (must be visible per caller's check). */
    EventRecord pop();

    /**
     * Batch-pop half of the delivery fast path: the consumer processes
     * the head in place via peek() and then discards it. Unlike pop()
     * no record is moved out, so draining N records costs N deque
     * bookkeeping updates and nothing else.
     */
    void dropFront();

    /** Find a pending record by rid (TSO consume-version annotation). */
    EventRecord *findByRid(RecordId rid);

    /**
     * Insert @p rec immediately before the pending record with id
     * @p before_rid (TSO produce-version annotation). Panics if absent.
     */
    void insertBefore(RecordId before_rid, EventRecord rec);

    /** Total records ever appended (stats). */
    std::uint64_t appended() const { return appended_; }

  private:
    std::deque<EventRecord> records_;
    std::uint64_t capacityBytes_;
    std::uint64_t bytes_ = 0;
    std::uint64_t appended_ = 0;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_LOG_BUFFER_HPP
