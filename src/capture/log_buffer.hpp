/**
 * @file
 * Per-thread event stream buffer: the paper's circular log buffer held in
 * the last-level cache (64 KB, ~1 byte per compressed record). When the
 * buffer is full the application core stalls; when empty the lifeguard
 * core stalls.
 *
 * Under TSO a visibility limit hides records at or beyond the oldest
 * undrained store so produce-version annotations can still be inserted
 * in front of pending store records (section 5.5).
 */

#ifndef PARALOG_CAPTURE_LOG_BUFFER_HPP
#define PARALOG_CAPTURE_LOG_BUFFER_HPP

#include <cstdint>
#include <deque>

#include "app/event.hpp"
#include "common/types.hpp"

namespace paralog {

class LogBuffer
{
  public:
    explicit LogBuffer(std::uint64_t capacity_bytes)
        : capacityBytes_(capacity_bytes)
    {
    }

    /** Append at the tail. Always succeeds; producers must check full()
     *  first (ConflictAlert insertion may transiently overflow).
     *  @param charged_bytes modelled compressed size; 0 = use the
     *         record's static size table */
    void append(EventRecord rec, std::uint32_t charged_bytes = 0);

    bool full() const { return bytes_ >= capacityBytes_; }
    bool empty() const { return records_.empty(); }
    std::size_t size() const { return records_.size(); }
    std::uint64_t bytes() const { return bytes_; }

    /**
     * The oldest record whose rid is below @p vis_limit, or nullptr.
     * Pass kInvalidRecord for "everything visible".
     */
    const EventRecord *peek(RecordId vis_limit = kInvalidRecord) const;

    /** Remove and return the head (must be visible per caller's check). */
    EventRecord pop();

    /**
     * Batch-pop half of the delivery fast path: the consumer processes
     * the head in place via peek() and then discards it. Unlike pop()
     * no record is moved out, so draining N records costs N deque
     * bookkeeping updates and nothing else.
     */
    void dropFront();

    /** Find a pending record by rid (TSO consume-version annotation). */
    EventRecord *findByRid(RecordId rid);

    /** Find the pending *store* record with exactly @p rid, skipping
     *  same-rid bookkeeping records (CA records reuse the retire
     *  counter as their rid). */
    EventRecord *findStoreByRid(RecordId rid);

    /** Find the pending record with exactly @p rid, preferring a
     *  memory-access record when several share the rid (consume-version
     *  annotations must land on the racing load, not on a CA record
     *  that borrowed its rid; a non-access match is still returned so
     *  sync/bookkeeping readers take the discard path). */
    EventRecord *findByRidPreferMemAccess(RecordId rid);

    /**
     * Insert @p rec as close as possible before the pending store with
     * id @p before_rid (TSO produce-version records): directly before
     * the exact store record when it is still pending, otherwise before
     * the first record with rid >= @p before_rid, otherwise at the tail
     * (the store was filtered out at capture and everything pending
     * precedes it — the tail still orders the insert before any record
     * the application appends later).
     */
    void insertBefore(RecordId before_rid, EventRecord rec);

    /** Total records ever appended (stats). */
    std::uint64_t appended() const { return appended_; }

  private:
    /** First pending record with rid >= @p rid (records are
     *  rid-sorted; every by-rid lookup starts here). */
    std::deque<EventRecord>::iterator firstAtOrAfter(RecordId rid);

    std::deque<EventRecord> records_;
    std::uint64_t capacityBytes_;
    std::uint64_t bytes_ = 0;
    std::uint64_t appended_ = 0;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_LOG_BUFFER_HPP
