#include "capture/store_buffer.hpp"

#include "common/logging.hpp"

namespace paralog {

TsoDataPath::TsoDataPath(const SimConfig &cfg, MemorySystem &mem,
                         TsoHooks &hooks, std::uint32_t num_cores)
    : cfg_(cfg), mem_(mem), hooks_(hooks), buffers_(num_cores),
      lastTid_(num_cores, kInvalidThread)
{
}

DataPath::LoadResult
TsoDataPath::load(CoreId core, Addr addr, unsigned size,
                  const AccessTag &tag)
{
    // Store-to-load forwarding: newest matching store wins.
    auto &buf = buffers_[core];
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
        const Entry &e = *it;
        Addr e_end = e.addr + e.size;
        if (addr >= e.addr && addr + size <= e_end) {
            LoadResult r;
            r.value = (e.value >> (8 * (addr - e.addr))) &
                      ((size >= 8) ? ~0ULL : ((1ULL << (8 * size)) - 1));
            r.access.latency = 1;
            stats.counter("forwards").inc();
            return r;
        }
        if (addr < e_end && e.addr < addr + size) {
            // Partial overlap: drain and fall through to memory.
            fence(core);
            break;
        }
    }
    LoadResult r;
    r.access = mem_.access(core, addr, size, false, tag, true);
    r.value = mem_.memory().read(addr, size);
    return r;
}

AccessResult
TsoDataPath::store(CoreId core, Addr addr, unsigned size,
                   std::uint64_t value, const AccessTag &tag)
{
    PARALOG_ASSERT(storeSpace(core), "store buffer overflow on core %u",
                   core);
    auto &buf = buffers_[core];
    Entry e{addr, size, value, tag, tag.retireCycle + cfg_.storeDrainDelay};
    buf.push_back(e);
    updateVisibility(core);
    stats.counter("buffered_stores").inc();
    // The store itself retires immediately under TSO; coherence cost is
    // paid in the background at drain time.
    AccessResult r;
    r.latency = 1;
    return r;
}

bool
TsoDataPath::storeSpace(CoreId core) const
{
    return buffers_[core].size() < cfg_.storeBufferEntries;
}

Cycle
TsoDataPath::fence(CoreId core)
{
    Cycle total = 0;
    while (!buffers_[core].empty()) {
        total += cfg_.storeDrainDelay;
        drainOne(core);
    }
    return total;
}

void
TsoDataPath::pump(CoreId core, Cycle now)
{
    auto &buf = buffers_[core];
    if (!buf.empty() && buf.front().readyAt <= now)
        drainOne(core);
}

void
TsoDataPath::drainOne(CoreId core)
{
    auto &buf = buffers_[core];
    PARALOG_ASSERT(!buf.empty(), "drain of empty store buffer");
    Entry e = buf.front();
    buf.pop_front();

    AccessResult ar = mem_.access(core, e.addr, e.size, true, e.tag, true);
    mem_.memory().write(e.addr, e.size, e.value);
    if (!ar.arcs.empty())
        hooks_.attachArcsToPending(e.tag.tid, e.tag.rid, ar.arcs);
    for (const VersionRequest &req : ar.versionRequests) {
        stats.counter("version_requests").inc();
        hooks_.onScViolation(e.tag.tid, e.tag.rid, e.addr,
                             static_cast<std::uint8_t>(e.size), req);
    }
    stats.counter("drains").inc();
    updateVisibility(core);
}

void
TsoDataPath::updateVisibility(CoreId core)
{
    auto &buf = buffers_[core];
    if (buf.empty()) {
        // No pending stores: everything this thread retired is visible.
        if (lastTid_[core] != kInvalidThread)
            hooks_.setVisibilityLimit(lastTid_[core], kInvalidRecord);
        return;
    }
    lastTid_[core] = buf.front().tag.tid;
    hooks_.setVisibilityLimit(buf.front().tag.tid, buf.front().tag.rid);
}

} // namespace paralog
