#include "capture/validator.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace paralog {

namespace {

/** Per-thread clock history: clock snapshot after each appended record,
 *  queryable by record id. */
struct ClockHistory
{
    std::vector<RecordId> rids;                       // ascending
    std::vector<std::vector<RecordId>> clocks;        // parallel

    void
    push(RecordId rid, const std::vector<RecordId> &clock)
    {
        rids.push_back(rid);
        clocks.push_back(clock);
    }

    /** Clock after the latest record with rid' <= rid (empty if none). */
    const std::vector<RecordId> *
    at(RecordId rid) const
    {
        auto it = std::upper_bound(rids.begin(), rids.end(), rid);
        if (it == rids.begin())
            return nullptr;
        return &clocks[static_cast<std::size_t>(
            std::distance(rids.begin(), it) - 1)];
    }
};

void
join(std::vector<RecordId> &dst, const std::vector<RecordId> &src)
{
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

} // namespace

HappensBeforeValidator::Result
HappensBeforeValidator::validate(const std::vector<TracedRecord> &trace)
{
    Result result;

    // Clocks hold "done counts": clock[u] = c means records of u with
    // rid < c happen-before this point.
    std::vector<std::vector<RecordId>> vc(
        numThreads_, std::vector<RecordId>(numThreads_, 0));
    std::vector<ClockHistory> history(numThreads_);

    struct Access
    {
        ThreadId tid;
        RecordId rid;
        bool viaAlert;
    };
    struct LineState
    {
        Access lastWrite{kInvalidThread, 0, false};
        std::vector<Access> readsSinceWrite;
        bool hasWrite = false;
    };
    std::unordered_map<Addr, LineState> lines;

    // ConflictAlert bookkeeping: issuer clock after the high-level
    // event, by sequence number.
    std::unordered_map<std::uint64_t, std::pair<ThreadId,
                                                std::vector<RecordId>>>
        caIssuerClock;

    auto ordered_after = [&](const std::vector<RecordId> &clock,
                             const Access &prior) {
        return clock[prior.tid] > prior.rid;
    };

    auto check_line = [&](Addr line, ThreadId tid, RecordId rid,
                          bool is_write,
                          const std::vector<RecordId> &clock,
                          bool via_alert) {
        LineState &ls = lines[line];
        auto report = [&](const Access &prior, const char *kind) {
            ++result.conflictingPairs;
            if (prior.tid == tid ||
                ordered_after(clock, prior)) {
                if (via_alert || prior.viaAlert)
                    ++result.orderedByAlerts;
                else
                    ++result.orderedByArcs;
                return;
            }
            result.violations.push_back(strprintf(
                "%s conflict on line %#llx: (%u,%llu) vs (%u,%llu) "
                "unordered",
                kind, static_cast<unsigned long long>(line), prior.tid,
                static_cast<unsigned long long>(prior.rid), tid,
                static_cast<unsigned long long>(rid)));
        };

        if (is_write) {
            if (ls.hasWrite)
                report(ls.lastWrite, "WAW");
            for (const Access &r : ls.readsSinceWrite)
                report(r, "WAR");
            ls.lastWrite = Access{tid, rid, via_alert};
            ls.hasWrite = true;
            ls.readsSinceWrite.clear();
        } else {
            if (ls.hasWrite)
                report(ls.lastWrite, "RAW");
            ls.readsSinceWrite.push_back(Access{tid, rid, via_alert});
        }
    };

    for (const TracedRecord &tr : trace) {
        const EventRecord &rec = tr.rec;
        ThreadId t = rec.tid;
        if (t >= numThreads_)
            continue;
        std::vector<RecordId> &clock = vc[t];

        // Join along recorded dependence arcs: the arc guarantees the
        // producer completed *through* rid, even across filtered
        // records.
        for (const DepArc &arc : rec.arcs) {
            if (arc.tid >= numThreads_)
                continue;
            if (const std::vector<RecordId> *pc =
                    history[arc.tid].at(arc.rid))
                join(clock, *pc);
            clock[arc.tid] = std::max(clock[arc.tid], arc.rid + 1);
        }

        bool via_alert = false;
        switch (rec.type) {
          case EventType::kCaBegin:
          case EventType::kCaEnd: {
            // Waiter half: everything after this record happens after
            // the issuer's high-level event...
            auto it = caIssuerClock.find(rec.value);
            if (it != caIssuerClock.end()) {
                join(clock, it->second.second);
                // ...and issuer half: the issuer's subsequent records
                // happen after everything before this arrival.
                join(vc[it->second.first], clock);
            }
            via_alert = true;
            break;
          }
          default:
            break;
        }

        // Own progress.
        clock[t] = std::max(clock[t], rec.rid + 1);

        // Issuer half of a ConflictAlert barrier: the high-level event
        // is ordered after everything every other thread has appended
        // up to the (atomic) broadcast instant, because the issuer's
        // lifeguard waits for all arrivals before processing it.
        if (rec.caSeq != kNoCaSeq) {
            for (ThreadId u = 0; u < numThreads_; ++u) {
                if (u != t)
                    join(clock, vc[u]);
            }
            caIssuerClock[rec.caSeq] = {t, clock};
            via_alert = true;
        }

        // Conflict checking at line granularity.
        switch (rec.type) {
          case EventType::kLoad:
          case EventType::kStore:
          case EventType::kLockAcquire:
          case EventType::kLockRelease:
          case EventType::kBarrierPass: {
            bool is_write = tr.isWrite;
            Addr first = rec.addr & ~static_cast<Addr>(lineBytes_ - 1);
            Addr last = (rec.addr + std::max<unsigned>(1, rec.size) - 1) &
                        ~static_cast<Addr>(lineBytes_ - 1);
            for (Addr line = first; line <= last; line += lineBytes_)
                check_line(line, t, rec.rid, is_write, clock, false);
            break;
          }
          case EventType::kMallocEnd:
          case EventType::kFreeBegin:
          case EventType::kSyscallEnd: {
            // Allocation / kernel-fill events act over their whole
            // range, ordered via ConflictAlert barriers. The shared
            // classifier decides the direction: malloc/free and
            // read()-style syscalls write the range, write()-style
            // syscalls only read the output buffer.
            if (rec.range.empty())
                break;
            Addr first =
                rec.range.begin & ~static_cast<Addr>(lineBytes_ - 1);
            Addr last =
                (rec.range.end - 1) & ~static_cast<Addr>(lineBytes_ - 1);
            for (Addr line = first; line <= last; line += lineBytes_)
                check_line(line, t, rec.rid, traceIsWrite(rec), clock,
                           via_alert);
            break;
          }
          default:
            break;
        }

        history[t].push(rec.rid, clock);
    }

    return result;
}

} // namespace paralog
