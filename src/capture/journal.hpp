/**
 * @file
 * Capture-side journal interface: every producer-side mutation of a
 * thread's event stream, in execution order. Implemented by the trace
 * recorder (trace/recorder.hpp) to persist a run for offline replay;
 * the capture unit invokes it with the *post-reduction* data it is
 * about to apply, so a journal consumer can reconstruct the stream
 * without re-running the arc reducer or the event filter.
 */

#ifndef PARALOG_CAPTURE_JOURNAL_HPP
#define PARALOG_CAPTURE_JOURNAL_HPP

#include <cstdint>
#include <vector>

#include "app/event.hpp"

namespace paralog {

class CaptureJournal
{
  public:
    virtual ~CaptureJournal() = default;

    /** Retire-counter tick (every retired micro-op, filtered or not). */
    virtual void onRetire(ThreadId tid, RecordId retired) = 0;

    /** A record entered the stream. @p rec is final as of append time
     *  (arcs merged); @p charged_bytes its modeled compressed size and
     *  @p payload the matching codec bytes. */
    virtual void onAppend(ThreadId tid, const EventRecord &rec,
                          std::uint32_t charged_bytes,
                          const std::vector<std::uint8_t> &payload) = 0;

    /** A broadcast ConflictAlert record was inserted. */
    virtual void onAppendCa(ThreadId tid, const EventRecord &rec,
                            std::uint32_t charged_bytes,
                            const std::vector<std::uint8_t> &payload) = 0;

    /** Post-reduction arcs attached to a pending record (TSO drain). */
    virtual void onAttachArcs(ThreadId tid, RecordId rid,
                              const std::vector<DepArc> &kept) = 0;

    /** Consume-version annotation attempt on a pending load (TSO). */
    virtual void onAnnotateConsume(ThreadId tid, RecordId rid,
                                   const VersionTag &v) = 0;

    /** Produce-version record insertion before a pending store (TSO). */
    virtual void onInsertProduce(ThreadId tid, RecordId store_rid,
                                 const VersionTag &v, Addr addr,
                                 std::uint8_t size) = 0;

    /** Visibility-limit move (TSO store buffer). */
    virtual void onVisibilityLimit(ThreadId tid, RecordId limit) = 0;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_JOURNAL_HPP
