#include "capture/capture_unit.hpp"

#include "common/logging.hpp"

namespace paralog {

bool
EventFilter::wants(const EventRecord &rec) const
{
    switch (rec.type) {
      case EventType::kNone:
        return false;
      case EventType::kMovRR:
      case EventType::kMovImm:
      case EventType::kAlu:
        return regOps;
      case EventType::kJump:
        return jumps;
      case EventType::kLoad:
      case EventType::kStore: {
        if (rec.wrapper)
            return false; // trusted allocator internals: never checked
        bool wanted = (rec.type == EventType::kLoad) ? loads : stores;
        if (!wanted)
            return false;
        if (heapOnly && !heapArena.contains(rec.addr))
            return false;
        return true;
      }
      default:
        return true; // high-level / bookkeeping records always captured
    }
}

bool
CaptureUnit::append(const AppEvent &ev)
{
    // Arc reduction state must advance even if the record is filtered:
    // the order-capturing hardware operates below the event mux. Arcs on
    // filtered records are then re-attached to the next captured record,
    // so no ordering information is lost.
    bool wanted = filter_.wants(ev.record);
    if (!wanted && ev.arcs.empty()) {
        // Common fast path (e.g. AddrCheck's heap-only filter): nothing
        // to capture and no arcs to carry — skip the record copy and
        // the arc-list staging entirely.
        filteredCtr_.inc();
        return false;
    }

    std::vector<DepArc> arcs = std::move(pendingArcsCarry_);
    pendingArcsCarry_.clear();
    for (const RawArc &raw : ev.arcs) {
        if (reducer_.shouldRecord(raw))
            arcs.push_back(DepArc{raw.tid, raw.rid});
    }

    if (!wanted) {
        // Carry surviving arcs forward so a later captured record
        // still enforces the ordering (conservative).
        pendingArcsCarry_ = std::move(arcs);
        filteredCtr_.inc();
        return false;
    }

    EventRecord rec = ev.record;
    rec.arcs = std::move(arcs);
    recordsCtr_.inc();
    if (!rec.arcs.empty())
        recordsWithArcsCtr_.inc();
    std::vector<std::uint8_t> *payload = nullptr;
    if (journal_) {
        codecScratch_.clear();
        payload = &codecScratch_;
    }
    std::uint32_t bytes = compressor_.encode(rec, payload);
    if (trace_)
        trace_->append(rec);
    if (journal_)
        journal_->onAppend(tid_, rec, bytes, codecScratch_);
    buf_.append(std::move(rec), bytes);
    return true;
}

void
CaptureUnit::appendCa(EventRecord rec)
{
    rec.tid = tid_;
    // CA records are injected by the broadcast mechanism between retired
    // records; they reuse the current retire counter as their rid (the
    // next retired micro-op will share it, which is harmless: progress
    // semantics only require monotonicity).
    rec.rid = retired_;
    stats.counter("ca_records").inc();
    std::vector<std::uint8_t> *payload = nullptr;
    if (journal_) {
        codecScratch_.clear();
        payload = &codecScratch_;
    }
    std::uint32_t bytes = compressor_.encode(rec, payload);
    if (trace_)
        trace_->append(rec);
    if (journal_)
        journal_->onAppendCa(tid_, rec, bytes, codecScratch_);
    buf_.append(std::move(rec), bytes);
}

void
CaptureUnit::attachArcs(RecordId rid, const std::vector<RawArc> &arcs)
{
    EventRecord *rec = buf_.findByRid(rid);
    std::vector<DepArc> kept;
    for (const RawArc &raw : arcs) {
        if (reducer_.shouldRecord(raw))
            kept.push_back(DepArc{raw.tid, raw.rid});
    }
    if (kept.empty())
        return;
    if (journal_)
        journal_->onAttachArcs(tid_, rid, kept);
    if (!rec) {
        // The store's record was filtered out at capture; carry the arcs
        // to the next captured record.
        for (const DepArc &a : kept)
            pendingArcsCarry_.push_back(a);
        return;
    }
    for (const DepArc &a : kept)
        rec->arcs.push_back(a);
}

bool
CaptureUnit::annotateConsume(RecordId rid, const VersionTag &v)
{
    // Journal the attempt, not the outcome: replay re-runs the same
    // duplicate/already-consumed checks against identical buffer state.
    if (journal_)
        journal_->onAnnotateConsume(tid_, rid, v);
    EventRecord *rec = buf_.findByRidPreferMemAccess(rid);
    if (!rec)
        return false; // already consumed: reader saw pre-write metadata
    if (rec->consumesVersion && rec->version == v) {
        // A line-crossing store racing a line-crossing load raises one
        // version request per cache line with the identical tag; a
        // second produce record for it would double-produce the entry.
        stats.counter("consume_duplicates").inc();
        return false;
    }
    rec->consumesVersion = true;
    rec->version = v;
    stats.counter("consume_versions").inc();
    return true;
}

void
CaptureUnit::insertProduceBefore(RecordId store_rid, const VersionTag &v,
                                 Addr addr, std::uint8_t size)
{
    if (journal_)
        journal_->onInsertProduce(tid_, store_rid, v, addr, size);
    EventRecord rec;
    rec.type = EventType::kProduceVersion;
    rec.tid = tid_;
    // The produce record shares the store's rid: it may be placed after
    // a same-rid CA record (CA records reuse the retire counter), and a
    // smaller rid there would break the sorted-by-rid invariant every
    // lower_bound-based buffer lookup depends on. Equal-rid sharing is
    // already the CA convention; findStoreByRid disambiguates by type.
    rec.rid = store_rid;
    rec.addr = addr;
    rec.size = size;
    rec.version = v;
    // The consuming lifeguard core matches this against the store's own
    // record to learn whether the writer's handler ran before the
    // consumer (read-side-writer rule).
    rec.value = store_rid;
    // The snapshot must observe every remote handler the store itself
    // is ordered after: the produce record inherits the store's
    // drain-time arcs (delivery is in order, so checking them one
    // record early enforces the same waits).
    if (EventRecord *store = buf_.findStoreByRid(store_rid)) {
        rec.arcs = std::move(store->arcs);
        store->arcs.clear();
    }
    buf_.insertBefore(store_rid, std::move(rec));
    stats.counter("produce_versions").inc();
}

void
CaptureUnit::publishSealed(Cycle watermark)
{
    // Overflowed records are already sealed — they only ever wait for
    // ring space, and must go first to keep the ring rid-ordered.
    while (!liveOverflow_.empty() &&
           ring_->tryPush(std::move(liveOverflow_.front()))) {
        liveOverflow_.pop_front();
    }
    while (const EventRecord *head = buf_.peek(visLimit_)) {
        // The watermark seals against future consume-version
        // annotations; the visibility limit (already applied by peek)
        // seals against everything else. CA-arrival and produce
        // insertions keep appendCycle 0 and pass trivially — version
        // requests can only name a memory access's own record.
        if (head->appendCycle > watermark)
            break;
        EventRecord rec = buf_.pop();
        if (!liveOverflow_.empty() || !ring_->tryPush(std::move(rec)))
            liveOverflow_.push_back(std::move(rec));
    }
    ring_->publish();
    // Publish records *before* raising the bound (release): a consumer
    // that acquires the new bound and finds the ring empty must be
    // guaranteed every record below it was really handed over.
    RecordId bound = bufferCeiling();
    if (!liveOverflow_.empty() && liveOverflow_.front().rid < bound)
        bound = liveOverflow_.front().rid;
    setCeilingBound(bound);
}

RecordId
CaptureUnit::progressCeiling() const
{
    if (ring_) {
        // Read order matters: load the bound *before* inspecting the
        // ring head. Records published after the bound load carry
        // rids >= the bound at the time it was computed, so a stale
        // (smaller) bound is always safe, never stale-large.
        RecordId bound = ceilingBound_.load(std::memory_order_acquire);
        const EventRecord *front = ring_->front();
        if (front && front->rid < bound)
            return front->rid;
        return bound;
    }
    return bufferCeiling();
}

RecordId
CaptureUnit::bufferCeiling() const
{
    if (const EventRecord *front = buf_.peek(kInvalidRecord)) {
        RecordId ceil = front->rid;
        if (visLimit_ != kInvalidRecord && visLimit_ < ceil)
            ceil = visLimit_;
        return ceil;
    }
    if (visLimit_ != kInvalidRecord)
        return std::min(visLimit_, retired_);
    return retired_;
}

} // namespace paralog
