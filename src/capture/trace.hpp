/**
 * @file
 * Optional whole-run trace: a tee of every captured record in global
 * capture order, consumed offline by the happens-before validator
 * (capture/validator.hpp). This corresponds to dumping the paper's
 * event streams to disk instead of consuming them online — the real
 * on-disk format and record/replay engine live in src/trace/.
 */

#ifndef PARALOG_CAPTURE_TRACE_HPP
#define PARALOG_CAPTURE_TRACE_HPP

#include <cstdint>
#include <vector>

#include "app/event.hpp"

namespace paralog {

/**
 * Is this record's application-visible effect store-like for conflict
 * analysis? The single classification table shared by the trace tee and
 * the happens-before validator (the two must agree, or the validator
 * checks a different machine than the one that ran).
 *
 * Derived from the interpreter's data-path operations:
 *  - kStore: plain store.
 *  - kLockAcquire / kLockRelease: RMW / store of the lock word.
 *  - kBarrierPass: the arrival phase (value == 0) RMWs the barrier
 *    word; the exit phase (value == 1) only reads it to observe the
 *    release (see Interpreter's Op::kBarrier expansion).
 *  - kMallocEnd / kFreeBegin: the allocator initializes / retires the
 *    range — a write over [range).
 *  - kSyscallEnd with SyscallKind::kRead: the kernel filled the buffer
 *    (a write over [range)); with SyscallKind::kWrite the kernel only
 *    *read* the output buffer, so the range effect is a read.
 *  - Everything else (loads, register ops, bookkeeping) is not a write.
 */
inline bool
traceIsWrite(const EventRecord &rec)
{
    switch (rec.type) {
      case EventType::kStore:
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kMallocEnd:
      case EventType::kFreeBegin:
        return true;
      case EventType::kBarrierPass:
        return rec.value == 0; // arrival RMW; exit (value 1) is a read
      case EventType::kSyscallEnd:
        return rec.syscall == SyscallKind::kRead; // kernel fill
      default:
        return false;
    }
}

struct TracedRecord
{
    std::uint64_t globalSeq = 0; ///< global capture order
    EventRecord rec;
    bool isWrite = false;        ///< store-like (for conflict analysis)
};

class TraceSink
{
  public:
    void
    append(const EventRecord &rec)
    {
        TracedRecord tr;
        tr.globalSeq = nextSeq_++;
        tr.rec = rec;
        tr.isWrite = traceIsWrite(rec);
        records_.push_back(std::move(tr));
    }

    const std::vector<TracedRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear()
    {
        records_.clear();
        nextSeq_ = 0;
    }

  private:
    std::vector<TracedRecord> records_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_TRACE_HPP
