/**
 * @file
 * Optional whole-run trace: a tee of every captured record in global
 * capture order, consumed offline by the happens-before validator
 * (capture/validator.hpp). This corresponds to dumping the paper's
 * event streams to disk instead of consuming them online.
 */

#ifndef PARALOG_CAPTURE_TRACE_HPP
#define PARALOG_CAPTURE_TRACE_HPP

#include <cstdint>
#include <vector>

#include "app/event.hpp"

namespace paralog {

struct TracedRecord
{
    std::uint64_t globalSeq = 0; ///< global capture order
    EventRecord rec;
    bool isWrite = false;        ///< store-like (for conflict analysis)
};

class TraceSink
{
  public:
    void
    append(const EventRecord &rec)
    {
        TracedRecord tr;
        tr.globalSeq = nextSeq_++;
        tr.rec = rec;
        tr.isWrite = (rec.type == EventType::kStore ||
                      rec.type == EventType::kLockAcquire ||
                      rec.type == EventType::kLockRelease ||
                      (rec.type == EventType::kBarrierPass &&
                       rec.value == 0)); // exit phase is a read
        records_.push_back(std::move(tr));
    }

    const std::vector<TracedRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear()
    {
        records_.clear();
        nextSeq_ = 0;
    }

  private:
    std::vector<TracedRecord> records_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace paralog

#endif // PARALOG_CAPTURE_TRACE_HPP
