/**
 * @file
 * paralogd: a long-running monitoring service. Clients upload
 * `paralog-trace-v1` recordings over a Unix-domain socket (protocol.hpp)
 * and get back re-monitoring results — the uploaded journal replayed
 * under the lifeguards they asked for, with shadow/violation
 * fingerprints and stats in the response.
 *
 * Robustness is the point of this component, so its structure is rigid:
 *
 *   - ONE event-loop thread owns every socket. It accepts, ingests,
 *     validates (stream_ingest.hpp), sends heartbeats and responses,
 *     and enforces idle timeouts. Workers never touch a socket.
 *   - A fixed pool of worker threads takes jobs from a bounded queue
 *     and runs them through runMatrix(.., 1) — the same panic-contained
 *     cell runner the CLI matrix uses, so a SimPanicError inside a job
 *     marks that job failed and nothing else.
 *   - Admission control rejects instead of blocking: over maxSessions,
 *     the connection is answered and closed; over maxQueuedJobs, the
 *     completed upload is shed with a reason. The accept loop never
 *     waits on a worker.
 *   - Everything is accounted in a MetricRegistry (stats request):
 *     jobs {accepted, completed, shed, failed}, queue depth, ingest
 *     bytes/failures by taxonomy, per-lifeguard latency percentiles.
 *   - requestStop() (async-signal-safe) drains: stop accepting, shed
 *     what is still queued, finish what is running, flush responses,
 *     then run() returns 0.
 *
 * Fault-injection points (common/fault_injection.hpp):
 *   daemon.drop-conn=N     close the Nth accepted connection unread
 *   daemon.corrupt-crc=N   flip one ingest byte of the Nth session
 *   daemon.stall-worker=MS sleep MS before each job (heartbeat tests)
 */

#ifndef PARALOG_DAEMON_DAEMON_HPP
#define PARALOG_DAEMON_DAEMON_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metric_registry.hpp"
#include "lifeguard/lifeguard.hpp"
#include "trace/stream_ingest.hpp"

namespace paralog::daemon {

struct DaemonConfig
{
    /// Unix-domain socket path to listen on (required; unlinked and
    /// rebound at start, unlinked again on clean exit).
    std::string socketPath;
    /// Worker threads running re-monitoring jobs.
    unsigned workers = 2;
    /// Admission: concurrent client sessions (accept + reject beyond).
    std::size_t maxSessions = 64;
    /// Admission: completed uploads waiting for a worker (shed beyond).
    std::size_t maxQueuedJobs = 8;
    /// Per-session ingest budget (StreamIngest kTooLarge beyond).
    std::uint64_t maxIngestBytes = 256ull << 20;
    std::uint32_t maxChunkBytes = 16u << 20;
    /// A session that sends nothing for this long is closed (slow-loris
    /// defense; only Ingest-state sessions are on this clock).
    int idleTimeoutMs = 5000;
    /// Heartbeat cadence towards queued/running sessions.
    int heartbeatMs = 500;
    /// Host lifeguard threads per replay job (ReplayConfig::lgThreads).
    std::uint32_t lgThreads = 0;
    /// Directory for spooled uploads (default: "<socketPath>.spool").
    std::string spoolDir;
    /// Suppress per-connection logging to stderr.
    bool quiet = false;
};

class Daemon
{
  public:
    explicit Daemon(const DaemonConfig &cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind, listen, spawn workers. False (with error()) on failure. */
    bool start();

    /**
     * Serve until requestStop(). Runs the event loop on the calling
     * thread; returns the process exit code (0 = clean drain).
     */
    int run();

    /**
     * Begin graceful drain. Async-signal-safe (atomic store + pipe
     * write) — call it from a SIGTERM/SIGINT handler or another thread.
     */
    void requestStop();

    const std::string &error() const { return error_; }
    MetricRegistry &metrics() { return metrics_; }

  private:
    struct Session;
    struct Job
    {
        std::uint64_t sessionId = 0;
        std::string spoolPath;
        std::vector<LifeguardKind> lifeguards;
        LifeguardKind recorded = LifeguardKind::kTaintCheck;
        std::uint32_t appThreads = 0;
        std::uint64_t totalRecords = 0;
    };
    struct Done
    {
        std::uint64_t sessionId = 0;
        std::string json;
        bool failed = false;
    };

    void eventLoop();
    void workerLoop();
    std::string runJob(const Job &job);

    void acceptClients(int listen_fd);
    void readSession(Session &s);
    bool handleRequestBytes(Session &s, const std::uint8_t *p,
                            std::size_t n);
    void ingestBytes(Session &s, const std::uint8_t *p, std::size_t n);
    void onUploadComplete(Session &s);
    void writeSession(Session &s);
    void respond(Session &s, const std::string &body);
    void respondError(Session &s, const std::string &status,
                      const std::string &reason);
    void closeSession(Session &s);
    void checkTimeouts();
    void drainDoneQueue();
    void shedQueuedJobs(const char *reason);
    Session *findSession(std::uint64_t id);

    DaemonConfig cfg_;
    MetricRegistry metrics_;
    std::string error_;

    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::atomic<bool> stopping_{false};

    std::vector<std::unique_ptr<Session>> sessions_;
    std::uint64_t nextSessionId_ = 0;
    std::uint64_t acceptedConns_ = 0;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> jobQueue_;
    bool workersQuit_ = false;
    std::vector<std::thread> workers_;

    std::mutex doneMutex_;
    std::deque<Done> doneQueue_;
    std::atomic<std::uint64_t> jobSeq_{0}; ///< job.fail fault cursor

    std::chrono::steady_clock::time_point startedAt_;
    bool panicThrowsPrev_ = false;
};

/** JSON string escaping for the response bodies (shared with client
 *  tests that assemble expected substrings). */
std::string jsonEscape(const std::string &s);

} // namespace paralog::daemon

#endif // PARALOG_DAEMON_DAEMON_HPP
