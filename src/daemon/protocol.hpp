/**
 * @file
 * The paralogd wire protocol, version 1. Byte-oriented and deliberately
 * dumb: a client connects, sends one request, reads one response, and
 * the connection closes. All integers little-endian.
 *
 * Submit request (re-monitor an uploaded recording):
 *
 *   "PLSUBMT1"                      8-byte request magic
 *   u32 flags                       reserved, must be 0
 *   u32 nLifeguards                 0 = re-monitor under the recorded
 *                                   lifeguard only
 *   u8  kind[nLifeguards]           LifeguardKind values to run
 *   <paralog-trace-v1 byte stream>  header, chunks, footer — exactly
 *                                   the on-disk format (format.hpp)
 *
 * The daemon validates the stream as it arrives (stream_ingest.hpp):
 * the upload is accepted the moment its footer chunk verifies. Anything
 * wrong — bad magic, chunk CRC mismatch, truncation, over-budget size —
 * fails only that session, with the reason in the response.
 *
 * Stats request: the 8 bytes "PLSTATS1", nothing else.
 *
 * Response (both request kinds): zero or more heartbeat lines "PLHB\n"
 * (sent while the job is queued/running so slow clients can tell a
 * long job from a dead daemon), then the line "PLRESP1\n", then a JSON
 * object (submit) or the metrics text dump (stats), then close. The
 * JSON is flat and grep-friendly; see README for the field glossary.
 */

#ifndef PARALOG_DAEMON_PROTOCOL_HPP
#define PARALOG_DAEMON_PROTOCOL_HPP

#include <array>
#include <cstdint>

namespace paralog::daemon {

inline constexpr std::array<char, 8> kSubmitMagic = {'P', 'L', 'S', 'U',
                                                     'B', 'M', 'T', '1'};
inline constexpr std::array<char, 8> kStatsMagic = {'P', 'L', 'S', 'T',
                                                    'A', 'T', 'S', '1'};
/** Bytes after the submit magic before the lifeguard kind list. */
inline constexpr std::size_t kSubmitHeaderBytes = 8;
/** Sanity cap on the requested lifeguard list. */
inline constexpr std::uint32_t kMaxRequestLifeguards = 16;

inline constexpr char kHeartbeatLine[] = "PLHB\n";
inline constexpr char kResponseLine[] = "PLRESP1\n";

} // namespace paralog::daemon

#endif // PARALOG_DAEMON_PROTOCOL_HPP
