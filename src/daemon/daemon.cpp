#include "daemon/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "daemon/protocol.hpp"

namespace paralog::daemon {

namespace {

using Clock = std::chrono::steady_clock;

int
msBetween(Clock::time_point a, Clock::time_point b)
{
    return static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(b - a)
            .count());
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string
hexU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// Byte offset of the first chunk-payload byte in a trace stream —
/// where the daemon.corrupt-crc fault flips a bit.
constexpr std::uint64_t kCorruptOffset = trace::kHeaderBytes + 16;

/// Per-session cap on buffered outgoing bytes. Responses are small;
/// only a client that stopped reading its heartbeats can hit this.
constexpr std::size_t kMaxOutBytes = 1u << 20;

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ------------------------------------------------------------ session

struct Daemon::Session
{
    enum class St
    {
        kMagic,        ///< reading the 8-byte request magic
        kSubmitHeader, ///< reading flags + lifeguard count
        kLifeguards,   ///< reading the lifeguard kind bytes
        kIngest,       ///< streaming the trace through StreamIngest
        kQueued,       ///< upload accepted, job waiting for a worker
        kRunning,      ///< a worker is re-monitoring the upload
        kRespond,      ///< response buffered; flush then close
    };

    std::uint64_t id = 0;
    int fd = -1;
    St state = St::kMagic;
    bool sawEof = false;
    bool closed = false;
    bool closeAfterOut = false;
    bool jobSubmitted = false; ///< the worker owns the spool file now

    std::vector<std::uint8_t> req; ///< magic/header/kind accumulation
    std::uint32_t nLifeguards = 0;
    std::vector<LifeguardKind> lifeguards;

    trace::StreamIngest ingest;
    std::FILE *spool = nullptr;
    std::string spoolPath;
    std::uint64_t ingestOffset = 0;
    bool corruptDone = false;

    std::string out;
    std::size_t outOff = 0;

    Clock::time_point lastActivity;
    Clock::time_point lastHeartbeat;
};

// ------------------------------------------------------- construction

Daemon::Daemon(const DaemonConfig &cfg) : cfg_(cfg)
{
    if (cfg_.spoolDir.empty())
        cfg_.spoolDir = cfg_.socketPath + ".spool";
    if (cfg_.workers == 0)
        cfg_.workers = 1;
}

Daemon::~Daemon()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            workersQuit_ = true;
        }
        queueCv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
        workers_.clear();
        setPanicThrows(panicThrowsPrev_);
    }
    for (auto &s : sessions_)
        if (s->fd >= 0)
            ::close(s->fd);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
    if (!cfg_.socketPath.empty())
        ::unlink(cfg_.socketPath.c_str());
}

bool
Daemon::start()
{
    if (cfg_.socketPath.empty()) {
        error_ = "no socket path configured";
        return false;
    }
    if (cfg_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
        error_ = "socket path too long for AF_UNIX";
        return false;
    }
    ::mkdir(cfg_.spoolDir.c_str(), 0700); // EEXIST is fine

    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        error_ = "pipe() failed";
        return false;
    }
    wakeRead_ = pipefd[0];
    wakeWrite_ = pipefd[1];
    setNonBlocking(wakeRead_);
    setNonBlocking(wakeWrite_);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error_ = "socket() failed";
        return false;
    }
    ::unlink(cfg_.socketPath.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error_ = "bind('" + cfg_.socketPath + "') failed: " +
                 std::strerror(errno);
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        error_ = "listen() failed";
        return false;
    }
    setNonBlocking(listenFd_);

    // Panic-throw mode stays on for the daemon's lifetime so job
    // panics become contained exceptions on worker threads; per-call
    // scopes (runMatrix) nest harmlessly on top.
    panicThrowsPrev_ = setPanicThrows(true);

    startedAt_ = Clock::now();
    workers_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });

    if (!cfg_.quiet)
        inform("paralogd: listening on %s (%u workers)",
                cfg_.socketPath.c_str(), cfg_.workers);
    return true;
}

void
Daemon::requestStop()
{
    stopping_.store(true, std::memory_order_release);
    if (wakeWrite_ >= 0) {
        char b = 's';
        [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &b, 1);
    }
}

// ------------------------------------------------------------ workers

void
Daemon::workerLoop()
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return workersQuit_ || !jobQueue_.empty();
            });
            if (jobQueue_.empty()) {
                if (workersQuit_)
                    return;
                continue;
            }
            job = std::move(jobQueue_.front());
            jobQueue_.pop_front();
        }

        std::string json;
        try {
            json = runJob(job);
        } catch (const std::exception &e) {
            // Containment of last resort: runMatrix already boxes
            // per-cell panics, but a panic before the matrix starts
            // (job.fail, spool I/O) must also cost only this job.
            metrics_.counter("daemon.jobs.failed").inc(1);
            json = "{\"status\":\"failed\",\"session\":" +
                   std::to_string(job.sessionId) + ",\"reason\":\"" +
                   jsonEscape(e.what()) + "\"}";
        }
        std::remove(job.spoolPath.c_str());

        {
            std::lock_guard<std::mutex> lock(doneMutex_);
            doneQueue_.push_back(
                Done{job.sessionId, std::move(json), false});
        }
        char b = 'd';
        [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &b, 1);
    }
}

std::string
Daemon::runJob(const Job &job)
{
    // Fault job.fail=N: the Nth job (across all workers) panics before
    // it runs — exercises the workerLoop containment of last resort.
    std::uint64_t seq = jobSeq_.fetch_add(1, std::memory_order_relaxed);
    if (faultHits("job.fail", seq))
        panic("injected failure: job.fail hit job %llu",
              static_cast<unsigned long long>(seq));

    if (std::optional<std::uint64_t> ms =
            faultValue("daemon.stall-worker"))
        std::this_thread::sleep_for(std::chrono::milliseconds(*ms));

    std::vector<LifeguardKind> kinds = job.lifeguards;
    if (kinds.empty())
        kinds.push_back(job.recorded);

    std::vector<RunSpec> specs;
    specs.reserve(kinds.size());
    for (LifeguardKind kind : kinds) {
        RunSpec spec{};
        spec.lifeguard = kind;
        spec.mode = MonitorMode::kParallel;
        spec.cores = job.appThreads;
        spec.opt.lgThreads = cfg_.lgThreads;
        spec.replayPath = job.spoolPath;
        specs.push_back(spec);
    }

    // Same contained cell runner as the CLI matrix: a panic inside one
    // replay marks that run failed and leaves the worker healthy.
    std::vector<CellResult> cells = runMatrix(specs, 1);

    bool any_failed = false;
    std::uint64_t records = 0;
    std::ostringstream runs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult &cell = cells[i];
        const char *lg_name = toString(kinds[i]);
        metrics_.meter(std::string("daemon.lg.") + lg_name + ".ms")
            .sample(static_cast<std::uint64_t>(cell.wallMs) + 1);
        if (i)
            runs << ',';
        runs << "{\"lifeguard\":\"" << lg_name << "\",\"selfCheck\":"
             << (kinds[i] == job.recorded ? "true" : "false");
        if (cell.failed) {
            any_failed = true;
            runs << ",\"failed\":true,\"error\":\""
                 << jsonEscape(cell.error) << "\"}";
            continue;
        }
        std::uint64_t run_records = 0;
        for (const LifeguardThreadStats &l : cell.result.lifeguard)
            run_records += l.recordsProcessed;
        records += run_records;
        runs << ",\"failed\":false,\"shadowFingerprint\":\""
             << hexU64(cell.result.shadowFingerprint)
             << "\",\"violationFingerprint\":\""
             << hexU64(cell.result.violationFingerprint)
             << "\",\"violations\":" << cell.result.violationCount
             << ",\"totalCycles\":" << cell.result.totalCycles
             << ",\"records\":" << run_records << ",\"wallMs\":"
             << static_cast<std::uint64_t>(cell.wallMs) << "}";
    }

    metrics_.counter("daemon.replay.records").inc(records);
    metrics_.counter(any_failed ? "daemon.jobs.failed"
                                : "daemon.jobs.completed")
        .inc(1);

    std::ostringstream body;
    body << "{\"status\":\"" << (any_failed ? "failed" : "ok")
         << "\",\"session\":" << job.sessionId
         << ",\"trace\":{\"appThreads\":" << job.appThreads
         << ",\"records\":" << job.totalRecords
         << ",\"recordedLifeguard\":\"" << toString(job.recorded)
         << "\"},\"runs\":[" << runs.str() << "]}";
    return body.str();
}

// --------------------------------------------------------- event loop

int
Daemon::run()
{
    eventLoop();

    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        workersQuit_ = true;
    }
    queueCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
    setPanicThrows(panicThrowsPrev_);

    drainDoneQueue(); // results for sessions that vanished mid-drain

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(cfg_.socketPath.c_str());

    if (!cfg_.quiet) {
        std::ostringstream text;
        metrics_.renderText(text);
        std::fprintf(stderr, "paralogd: final metrics\n%s",
                     text.str().c_str());
    }
    return 0;
}

void
Daemon::eventLoop()
{
    bool drain_started = false;
    const int tick_ms = std::max(
        10, std::min(250, std::min(cfg_.heartbeatMs, cfg_.idleTimeoutMs) /
                              4));

    while (true) {
        if (stopping_.load(std::memory_order_acquire) &&
            !drain_started) {
            drain_started = true;
            if (listenFd_ >= 0) {
                ::close(listenFd_);
                listenFd_ = -1;
            }
            shedQueuedJobs("draining");
            // In-progress uploads can never become jobs now.
            for (auto &sp : sessions_) {
                Session &s = *sp;
                if (s.state != Session::St::kQueued &&
                    s.state != Session::St::kRunning &&
                    s.state != Session::St::kRespond) {
                    if (s.state == Session::St::kIngest)
                        metrics_.counter("daemon.jobs.shed").inc(1);
                    respondError(s, "shed", "draining");
                }
            }
            if (!cfg_.quiet)
                inform("paralogd: draining (%zu sessions open)",
                        sessions_.size());
        }

        if (drain_started) {
            bool jobs_outstanding;
            {
                std::lock_guard<std::mutex> lock(queueMutex_);
                jobs_outstanding = !jobQueue_.empty();
            }
            bool results_pending;
            {
                std::lock_guard<std::mutex> lock(doneMutex_);
                results_pending = !doneQueue_.empty();
            }
            bool sessions_busy = false;
            for (auto &sp : sessions_)
                if (sp->state == Session::St::kQueued ||
                    sp->state == Session::St::kRunning ||
                    !sp->out.empty())
                    sessions_busy = true;
            if (!jobs_outstanding && !results_pending && !sessions_busy)
                break;
        }

        std::vector<pollfd> fds;
        fds.push_back(pollfd{wakeRead_, POLLIN, 0});
        if (listenFd_ >= 0)
            fds.push_back(pollfd{listenFd_, POLLIN, 0});
        std::vector<Session *> polled;
        for (auto &sp : sessions_) {
            Session &s = *sp;
            short events = 0;
            if (!s.sawEof && s.state != Session::St::kRespond)
                events |= POLLIN;
            if (s.outOff < s.out.size())
                events |= POLLOUT;
            if (events == 0)
                continue;
            fds.push_back(pollfd{s.fd, events, 0});
            polled.push_back(&s);
        }

        int rc = ::poll(fds.data(), fds.size(), tick_ms);
        if (rc < 0 && errno != EINTR)
            break;

        // Drain wakeups (worker completions, requestStop).
        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
            }
        }
        drainDoneQueue();

        std::size_t base = 1;
        if (listenFd_ >= 0) {
            if (fds[1].revents & POLLIN)
                acceptClients(listenFd_);
            base = 2;
        }
        for (std::size_t i = 0; i < polled.size(); ++i) {
            Session &s = *polled[i];
            short rev = fds[base + i].revents;
            if (s.closed)
                continue;
            if (rev & (POLLERR | POLLNVAL)) {
                closeSession(s);
                continue;
            }
            if (rev & POLLOUT)
                writeSession(s);
            if (!s.closed && (rev & (POLLIN | POLLHUP)))
                readSession(s);
        }

        checkTimeouts();

        // Heartbeats towards sessions waiting on a worker.
        Clock::time_point now = Clock::now();
        for (auto &sp : sessions_) {
            Session &s = *sp;
            if (s.closed)
                continue;
            if ((s.state == Session::St::kQueued ||
                 s.state == Session::St::kRunning) &&
                msBetween(s.lastHeartbeat, now) >= cfg_.heartbeatMs) {
                s.lastHeartbeat = now;
                if (s.out.size() < kMaxOutBytes)
                    s.out += kHeartbeatLine;
            }
        }

        sessions_.erase(
            std::remove_if(sessions_.begin(), sessions_.end(),
                           [](const std::unique_ptr<Session> &sp) {
                               return sp->closed;
                           }),
            sessions_.end());
        metrics_.gauge("daemon.sessions.open")
            .set(static_cast<std::int64_t>(sessions_.size()));
    }
}

void
Daemon::acceptClients(int listen_fd)
{
    while (true) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or transient error: back to poll
        std::uint64_t conn_index = acceptedConns_++;
        metrics_.counter("daemon.conns.accepted").inc(1);

        // Fault daemon.drop-conn=N: the Nth accepted connection is
        // dropped unanswered — clients must survive vanishing peers.
        if (faultHits("daemon.drop-conn", conn_index)) {
            metrics_.counter("daemon.conns.dropped").inc(1);
            ::close(fd);
            continue;
        }

        setNonBlocking(fd);
        auto s = std::make_unique<Session>();
        s->id = nextSessionId_++;
        s->fd = fd;
        s->lastActivity = s->lastHeartbeat = Clock::now();

        if (sessions_.size() >= cfg_.maxSessions) {
            metrics_.counter("daemon.sessions.rejected").inc(1);
            respondError(*s, "rejected", "too-many-sessions");
        }
        sessions_.push_back(std::move(s));
    }
}

void
Daemon::readSession(Session &s)
{
    while (!s.closed) {
        std::uint8_t buf[64 * 1024];
        ssize_t n = ::recv(s.fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            closeSession(s);
            return;
        }
        if (n == 0) {
            s.sawEof = true;
            if (s.state == Session::St::kIngest) {
                s.ingest.finish(); // marks kTruncated
                metrics_.counter("daemon.ingest.failed").inc(1);
                metrics_
                    .counter(std::string("daemon.ingest.failed.") +
                             trace::ingestErrorName(
                                 s.ingest.errorCode()))
                    .inc(1);
                metrics_.counter("daemon.jobs.failed").inc(1);
                respondError(s, "failed",
                             std::string(trace::ingestErrorName(
                                 s.ingest.errorCode())) +
                                 ": " + s.ingest.error());
            } else if (s.state == Session::St::kMagic ||
                       s.state == Session::St::kSubmitHeader ||
                       s.state == Session::St::kLifeguards) {
                metrics_.counter("daemon.conns.early-close").inc(1);
                closeSession(s);
            }
            // Queued/Running/Respond: half-close is the normal
            // "done sending, waiting for my answer" signal.
            return;
        }
        s.lastActivity = Clock::now();
        if (!handleRequestBytes(s, buf, static_cast<std::size_t>(n)))
            return;
    }
}

bool
Daemon::handleRequestBytes(Session &s, const std::uint8_t *p,
                           std::size_t n)
{
    while (n > 0 && !s.closed) {
        switch (s.state) {
        case Session::St::kMagic:
        case Session::St::kSubmitHeader: {
            std::size_t want = 8 - s.req.size();
            std::size_t take = std::min(n, want);
            s.req.insert(s.req.end(), p, p + take);
            p += take;
            n -= take;
            if (s.req.size() < 8)
                return true;
            if (s.state == Session::St::kMagic) {
                if (std::memcmp(s.req.data(), kStatsMagic.data(), 8) ==
                    0) {
                    metrics_.gauge("daemon.uptime-ms")
                        .set(msBetween(startedAt_, Clock::now()));
                    {
                        std::lock_guard<std::mutex> lock(queueMutex_);
                        metrics_.gauge("daemon.queue.depth")
                            .set(static_cast<std::int64_t>(
                                jobQueue_.size()));
                    }
                    std::ostringstream text;
                    metrics_.renderText(text);
                    respond(s, text.str());
                    return true;
                }
                if (std::memcmp(s.req.data(), kSubmitMagic.data(), 8) !=
                    0) {
                    metrics_.counter("daemon.sessions.rejected").inc(1);
                    respondError(s, "rejected", "bad-request-magic");
                    return true;
                }
                s.state = Session::St::kSubmitHeader;
                s.req.clear();
                break;
            }
            std::uint32_t flags = trace::get32le(s.req.data());
            s.nLifeguards = trace::get32le(s.req.data() + 4);
            s.req.clear();
            if (flags != 0 || s.nLifeguards > kMaxRequestLifeguards) {
                metrics_.counter("daemon.sessions.rejected").inc(1);
                respondError(s, "rejected", "bad-submit-header");
                return true;
            }
            s.state = s.nLifeguards == 0 ? Session::St::kIngest
                                         : Session::St::kLifeguards;
            break;
        }
        case Session::St::kLifeguards: {
            while (n > 0 && s.lifeguards.size() < s.nLifeguards) {
                if (*p > static_cast<std::uint8_t>(
                             LifeguardKind::kLockSet)) {
                    metrics_.counter("daemon.sessions.rejected").inc(1);
                    respondError(s, "rejected", "bad-lifeguard-kind");
                    return true;
                }
                s.lifeguards.push_back(
                    static_cast<LifeguardKind>(*p));
                ++p;
                --n;
            }
            if (s.lifeguards.size() == s.nLifeguards)
                s.state = Session::St::kIngest;
            break;
        }
        case Session::St::kIngest: {
            ingestBytes(s, p, n);
            return true; // ingestBytes consumed everything
        }
        case Session::St::kQueued:
        case Session::St::kRunning:
            // Bytes after a complete request: protocol violation.
            metrics_.counter("daemon.sessions.rejected").inc(1);
            respondError(s, "rejected", "trailing-data");
            return true;
        case Session::St::kRespond:
            // Already answered (shed/rejected mid-upload): discard the
            // tail the client had in flight.
            return true;
        }
    }
    return true;
}

void
Daemon::ingestBytes(Session &s, const std::uint8_t *p, std::size_t n)
{
    if (!s.spool) {
        trace::StreamIngest::Limits limits;
        limits.maxTotalBytes = cfg_.maxIngestBytes;
        limits.maxChunkBytes = cfg_.maxChunkBytes;
        s.ingest = trace::StreamIngest(limits);
        s.spoolPath = cfg_.spoolDir + "/job-" + std::to_string(s.id) +
                      ".trace";
        s.spool = std::fopen(s.spoolPath.c_str(), "wb");
        if (!s.spool) {
            metrics_.counter("daemon.jobs.failed").inc(1);
            respondError(s, "failed", "cannot-spool");
            return;
        }
    }

    // Fault daemon.corrupt-crc=N: flip one payload byte of session N's
    // upload — drives the CRC-poisons-only-this-session path without a
    // cooperating client.
    std::vector<std::uint8_t> mangled;
    if (!s.corruptDone && faultHits("daemon.corrupt-crc", s.id) &&
        s.ingestOffset + n > kCorruptOffset) {
        mangled.assign(p, p + n);
        std::size_t at = static_cast<std::size_t>(
            kCorruptOffset > s.ingestOffset
                ? kCorruptOffset - s.ingestOffset
                : 0);
        mangled[at] ^= 0x01;
        s.corruptDone = true;
        p = mangled.data();
    }
    s.ingestOffset += n;
    metrics_.counter("daemon.ingest.bytes").inc(n);

    if (std::fwrite(p, 1, n, s.spool) != n) {
        metrics_.counter("daemon.jobs.failed").inc(1);
        respondError(s, "failed", "spool-write-failed");
        return;
    }
    if (!s.ingest.feed(p, n)) {
        metrics_.counter("daemon.ingest.failed").inc(1);
        metrics_
            .counter(std::string("daemon.ingest.failed.") +
                     trace::ingestErrorName(s.ingest.errorCode()))
            .inc(1);
        metrics_.counter("daemon.jobs.failed").inc(1);
        respondError(s, "failed",
                     std::string(trace::ingestErrorName(
                         s.ingest.errorCode())) +
                         ": " + s.ingest.error());
        return;
    }
    if (s.ingest.complete())
        onUploadComplete(s);
}

void
Daemon::onUploadComplete(Session &s)
{
    std::fclose(s.spool);
    s.spool = nullptr;

    bool shed = stopping_.load(std::memory_order_acquire);
    std::size_t depth = 0;
    if (!shed) {
        std::lock_guard<std::mutex> lock(queueMutex_);
        depth = jobQueue_.size();
        shed = depth >= cfg_.maxQueuedJobs;
        if (!shed) {
            Job job;
            job.sessionId = s.id;
            job.spoolPath = s.spoolPath;
            job.lifeguards = s.lifeguards;
            job.recorded = s.ingest.header().cfg.lifeguard;
            job.appThreads = s.ingest.header().cfg.appThreads;
            job.totalRecords = s.ingest.header().totalRecords;
            jobQueue_.push_back(std::move(job));
            metrics_.gauge("daemon.queue.depth")
                .set(static_cast<std::int64_t>(jobQueue_.size()));
        }
    }
    if (shed) {
        metrics_.counter("daemon.jobs.shed").inc(1);
        std::remove(s.spoolPath.c_str());
        respondError(s, "shed",
                     stopping_.load(std::memory_order_acquire)
                         ? "draining"
                         : "queue-full");
        return;
    }
    metrics_.counter("daemon.jobs.accepted").inc(1);
    s.jobSubmitted = true;
    s.state = Session::St::kQueued;
    s.lastHeartbeat = Clock::now();
    queueCv_.notify_one();
}

void
Daemon::respond(Session &s, const std::string &body)
{
    s.out += kResponseLine;
    s.out += body;
    if (s.out.empty() || s.out.back() != '\n')
        s.out += '\n';
    s.closeAfterOut = true;
    s.state = Session::St::kRespond;
    s.lastActivity = Clock::now();
    writeSession(s); // optimistic flush; poll handles the rest
}

void
Daemon::respondError(Session &s, const std::string &status,
                     const std::string &reason)
{
    if (s.spool) {
        std::fclose(s.spool);
        s.spool = nullptr;
        std::remove(s.spoolPath.c_str());
    }
    respond(s, "{\"status\":\"" + status + "\",\"reason\":\"" +
                   jsonEscape(reason) + "\"}");
}

void
Daemon::writeSession(Session &s)
{
    while (s.outOff < s.out.size()) {
        ssize_t n = ::send(s.fd, s.out.data() + s.outOff,
                           s.out.size() - s.outOff, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            closeSession(s); // peer gone (EPIPE et al.)
            return;
        }
        s.outOff += static_cast<std::size_t>(n);
        s.lastActivity = Clock::now();
    }
    if (s.closeAfterOut) {
        closeSession(s);
        return;
    }
    // Flushed: reclaim the buffer (heartbeats accumulate here).
    s.out.clear();
    s.outOff = 0;
}

void
Daemon::closeSession(Session &s)
{
    if (s.closed)
        return;
    if (s.spool) {
        std::fclose(s.spool);
        s.spool = nullptr;
        if (!s.jobSubmitted)
            std::remove(s.spoolPath.c_str());
    }
    ::close(s.fd);
    s.fd = -1;
    s.closed = true;
}

void
Daemon::checkTimeouts()
{
    Clock::time_point now = Clock::now();
    for (auto &sp : sessions_) {
        Session &s = *sp;
        if (s.closed || s.state == Session::St::kQueued ||
            s.state == Session::St::kRunning)
            continue; // heartbeat path covers these
        if (msBetween(s.lastActivity, now) < cfg_.idleTimeoutMs)
            continue;
        metrics_.counter("daemon.idle-timeouts").inc(1);
        if (s.state == Session::St::kRespond) {
            closeSession(s); // not reading its response either
        } else {
            if (s.state == Session::St::kIngest)
                metrics_.counter("daemon.jobs.failed").inc(1);
            respondError(s, "failed", "idle-timeout");
        }
    }
}

void
Daemon::drainDoneQueue()
{
    std::deque<Done> done;
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        done.swap(doneQueue_);
    }
    for (Done &d : done) {
        Session *s = findSession(d.sessionId);
        if (!s || s->closed)
            continue; // client vanished; job already accounted
        respond(*s, d.json);
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        metrics_.gauge("daemon.queue.depth")
            .set(static_cast<std::int64_t>(jobQueue_.size()));
    }
}

void
Daemon::shedQueuedJobs(const char *reason)
{
    std::deque<Job> shed;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        shed.swap(jobQueue_);
    }
    for (Job &job : shed) {
        metrics_.counter("daemon.jobs.shed").inc(1);
        std::remove(job.spoolPath.c_str());
        if (Session *s = findSession(job.sessionId))
            if (!s->closed)
                respondError(*s, "shed", reason);
    }
}

Daemon::Session *
Daemon::findSession(std::uint64_t id)
{
    for (auto &sp : sessions_)
        if (sp->id == id)
            return sp.get();
    return nullptr;
}

} // namespace paralog::daemon
