#include "daemon/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "daemon/protocol.hpp"
#include "trace/format.hpp"

namespace paralog::daemon {

namespace {

int
connectTo(const std::string &socket_path, std::string &error)
{
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        error = "bad socket path";
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = "socket() failed";
        return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = "connect('" + socket_path +
                "') failed: " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::uint8_t *p, std::size_t n,
        std::string &error, int *errno_out = nullptr)
{
    while (n > 0) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno_out)
                *errno_out = errno;
            error = std::string("send() failed: ") +
                    std::strerror(errno);
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/**
 * Read the full response: heartbeat lines, the PLRESP1 marker, then
 * the body until EOF. Lines before the marker that are not heartbeats
 * fail the parse (protocol violation).
 */
bool
readResponse(int fd, int timeout_ms, std::string &body,
             int &heartbeats, std::string &error)
{
    std::string raw;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(
                        timeout_ms > 0 ? timeout_ms : 1 << 30);
    while (true) {
        int wait_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count());
        if (wait_ms <= 0) {
            error = "timed out waiting for response";
            return false;
        }
        pollfd pfd{fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, std::min(wait_ms, 1000));
        if (rc < 0 && errno != EINTR) {
            error = "poll() failed";
            return false;
        }
        if (rc <= 0)
            continue;
        char buf[64 * 1024];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            error = std::string("recv() failed: ") +
                    std::strerror(errno);
            return false;
        }
        if (n == 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }

    // Strip leading heartbeat lines, then expect the response marker.
    std::size_t off = 0;
    const std::string hb = kHeartbeatLine;
    const std::string marker = kResponseLine;
    while (raw.compare(off, hb.size(), hb) == 0) {
        ++heartbeats;
        off += hb.size();
    }
    if (raw.compare(off, marker.size(), marker) != 0) {
        error = raw.empty() ? "connection closed without a response"
                            : "malformed response";
        return false;
    }
    body = raw.substr(off + marker.size());
    while (!body.empty() && body.back() == '\n')
        body.pop_back();
    return true;
}

} // namespace

std::string
SubmitResult::status() const
{
    const std::string key = "\"status\":\"";
    std::size_t at = responseJson.find(key);
    if (at == std::string::npos)
        return "";
    at += key.size();
    std::size_t end = responseJson.find('"', at);
    return end == std::string::npos ? ""
                                    : responseJson.substr(at, end - at);
}

SubmitResult
submitTrace(const std::string &tracePath, const SubmitOptions &opt)
{
    SubmitResult res;

    std::FILE *f = std::fopen(tracePath.c_str(), "rb");
    if (!f) {
        res.error = "cannot open '" + tracePath + "'";
        return res;
    }
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> data(sz > 0 ? sz : 0);
    if (!data.empty() &&
        std::fread(data.data(), 1, data.size(), f) != data.size()) {
        std::fclose(f);
        res.error = "cannot read '" + tracePath + "'";
        return res;
    }
    std::fclose(f);

    if (opt.corruptByteOffset >= 0 &&
        static_cast<std::size_t>(opt.corruptByteOffset) < data.size())
        data[static_cast<std::size_t>(opt.corruptByteOffset)] ^= 0x01;

    int fd = connectTo(opt.socketPath, res.error);
    if (fd < 0)
        return res;

    std::vector<std::uint8_t> req(kSubmitMagic.begin(),
                                  kSubmitMagic.end());
    std::uint8_t hdr[kSubmitHeaderBytes];
    trace::put32le(hdr, 0); // flags
    trace::put32le(hdr + 4,
                   static_cast<std::uint32_t>(opt.lifeguards.size()));
    req.insert(req.end(), hdr, hdr + sizeof(hdr));
    for (LifeguardKind kind : opt.lifeguards)
        req.push_back(static_cast<std::uint8_t>(kind));

    // The daemon may answer (reject, shed, fail the ingest) and close
    // long before the upload is done; on a Unix socket that surfaces
    // here as EPIPE/ECONNRESET while the verdict sits readable in our
    // receive buffer. Stop sending and go read it — any other send
    // error is a real transport failure.
    bool early_close = false;
    int send_errno = 0;
    if (!sendAll(fd, req.data(), req.size(), res.error, &send_errno)) {
        if (send_errno != EPIPE && send_errno != ECONNRESET) {
            ::close(fd);
            return res;
        }
        early_close = true;
    }

    std::size_t cutoff = data.size();
    if (opt.disconnectAfterFraction >= 0.0)
        cutoff = static_cast<std::size_t>(
            static_cast<double>(data.size()) *
            std::min(opt.disconnectAfterFraction, 1.0));
    std::size_t chunk = std::max<std::size_t>(1, opt.chunkBytes);

    for (std::size_t off = 0; off < cutoff && !early_close;
         off += chunk) {
        std::size_t n = std::min(chunk, cutoff - off);
        if (!sendAll(fd, data.data() + off, n, res.error,
                     &send_errno)) {
            if (send_errno != EPIPE && send_errno != ECONNRESET) {
                ::close(fd);
                return res;
            }
            early_close = true;
            break;
        }
        if (opt.interChunkDelayMs > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opt.interChunkDelayMs));
    }

    if (!early_close && cutoff < data.size()) {
        // Chaos: vanish mid-upload.
        ::close(fd);
        res.error = "disconnected on purpose";
        return res;
    }

    res.error.clear();
    ::shutdown(fd, SHUT_WR); // done sending; await the verdict
    res.ok = readResponse(fd, opt.timeoutMs, res.responseJson,
                          res.heartbeats, res.error);
    ::close(fd);
    return res;
}

bool
fetchStats(const std::string &socketPath, std::string &out,
           std::string &error)
{
    int fd = connectTo(socketPath, error);
    if (fd < 0)
        return false;
    if (!sendAll(fd,
                 reinterpret_cast<const std::uint8_t *>(
                     kStatsMagic.data()),
                 kStatsMagic.size(), error)) {
        ::close(fd);
        return false;
    }
    ::shutdown(fd, SHUT_WR);
    int heartbeats = 0;
    bool ok = readResponse(fd, 30000, out, heartbeats, error);
    ::close(fd);
    return ok;
}

} // namespace paralog::daemon
