/**
 * @file
 * Client side of the paralogd protocol (protocol.hpp): upload a
 * recorded trace for re-monitoring, or fetch the stats dump. Used by
 * `paralog --submit` and by the chaos tests — hence the deliberately
 * exposed misbehavior knobs (tiny send chunks, inter-chunk stalls,
 * mid-upload disconnects, payload corruption). A well-behaved caller
 * leaves them at their defaults.
 */

#ifndef PARALOG_DAEMON_CLIENT_HPP
#define PARALOG_DAEMON_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "lifeguard/lifeguard.hpp"

namespace paralog::daemon {

struct SubmitOptions
{
    std::string socketPath;
    /// Lifeguards to re-monitor under; empty = the recorded one.
    std::vector<LifeguardKind> lifeguards;

    // -------- misbehavior knobs (chaos tests; defaults are benign)
    /// Send granularity in bytes (small values exercise split reads).
    std::size_t chunkBytes = 64 * 1024;
    /// Sleep between sent chunks (slow-loris client).
    int interChunkDelayMs = 0;
    /// Disconnect after sending this fraction of the stream ([0,1));
    /// negative = never.
    double disconnectAfterFraction = -1.0;
    /// XOR 0x01 into the byte at this stream offset (>= 0) before
    /// sending — a corrupt-CRC client. Negative = send faithfully.
    long corruptByteOffset = -1;
    /// Give up if no response arrives within this long (0 = forever).
    int timeoutMs = 120000;
};

struct SubmitResult
{
    bool ok = false;          ///< transport-level success
    std::string error;        ///< transport error when !ok
    std::string responseJson; ///< daemon's JSON (may report failure)
    int heartbeats = 0;       ///< "PLHB" lines seen before the response

    /// Convenience: the "status" field of responseJson ("ok",
    /// "failed", "shed", "rejected"), or "" when !ok.
    std::string status() const;
};

/** Upload @p tracePath per @p opt and wait for the verdict. */
SubmitResult submitTrace(const std::string &tracePath,
                         const SubmitOptions &opt);

/** Fetch the metrics dump. Returns false and sets @p error on
 *  transport failure; the text lands in @p out. */
bool fetchStats(const std::string &socketPath, std::string &out,
                std::string &error);

} // namespace paralog::daemon

#endif // PARALOG_DAEMON_CLIENT_HPP
