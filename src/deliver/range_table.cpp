#include "deliver/range_table.hpp"

// Header-only; this translation unit anchors the library target.
