/**
 * @file
 * Per-lifeguard-thread order-enforcing component (Figure 4(b)).
 *
 * Decides whether the next record in the thread's event stream may be
 * delivered: dependence arcs must be satisfied in the progress table,
 * ConflictAlert barriers must be respected (both the issuer-side and
 * waiter-side halves), and TSO consume-version records must have their
 * versioned metadata available.
 */

#ifndef PARALOG_DELIVER_ORDER_ENFORCE_HPP
#define PARALOG_DELIVER_ORDER_ENFORCE_HPP

#include <functional>

#include "capture/capture_unit.hpp"
#include "common/stats.hpp"
#include "deliver/ca_manager.hpp"
#include "deliver/progress_table.hpp"
#include "deliver/range_table.hpp"

namespace paralog {

enum class DeliverStatus : std::uint8_t
{
    kDelivered,    ///< out filled with a record
    kEmpty,        ///< stream empty: waiting for the application
    kDepStall,     ///< waiting for a dependence arc
    kCaStall,      ///< waiting at a ConflictAlert barrier
    kVersionStall, ///< waiting for versioned metadata (TSO)
};

const char *toString(DeliverStatus st);

class OrderEnforcer
{
  public:
    using VersionAvailable = std::function<bool(const VersionTag &)>;

    OrderEnforcer(ThreadId tid, CaptureUnit &unit, ProgressTable &progress,
                  CaManager &ca, VersionAvailable version_available);

    struct Delivery
    {
        EventRecord rec;
        bool racesSyscall = false;
    };

    DeliverStatus tryDeliver(Delivery &out);

    /** One record of a delivery batch, borrowed from the log buffer:
     *  process in place, then commitDelivered(). */
    struct BatchItem
    {
        const EventRecord *rec = nullptr;
        bool racesSyscall = false;
    };

    /**
     * Batch delivery fast path: deliver the next record *without*
     * removing it from the stream. The caller processes @p out.rec in
     * place, calls commitDelivered(), and keeps calling with
     * @p continuation = true to drain consecutive records in one
     * LifeguardCore::step, amortizing per-record step dispatch, retry
     * bookkeeping and progress publishes.
     *
     * The check logic is identical to tryDeliver in both modes;
     * @p continuation = true only suppresses stall accounting, because
     * a continuation stall is not a modelled stall: it merely ends the
     * batch, and the next step() re-runs the authoritative check at
     * exactly the simulated time the unbatched engine would have
     * reached the record. The caller guarantees (via the platform's
     * solo-horizon rule, see LifeguardCore::step) that no other
     * simulated actor runs inside the batch window, so every check
     * observes exactly the state the unbatched engine would have seen.
     */
    DeliverStatus tryDeliverBatch(BatchItem &out, bool continuation);

    /** Drop the record last delivered by tryDeliverBatch. */
    void commitDelivered();

    /** The thread's hardware range table (remote in-flight syscalls). */
    RangeTable &rangeTable() { return ranges_; }

    // Wait-state diagnostics for the platform's progress watchdog: the
    // last authoritative (non-continuation) delivery status, and how
    // many consecutive retries have stalled on the same front record.
    DeliverStatus lastStatus() const { return lastStatus_; }
    std::uint64_t sameRecordStallRetries() const { return stallRetries_; }

    StatSet stats{"enforce"};

  private:
    bool issuerBarrierSatisfied(const CaBroadcast &b) const;
    void noteWaiterPassed(std::uint64_t seq);
    void noteIssuerDelivered(std::uint64_t seq);

    ThreadId tid_;
    CaptureUnit &unit_;
    ProgressTable &progress_;
    CaManager &ca_;
    VersionAvailable versionAvailable_;
    RangeTable ranges_;

    // Cached references into `stats`: counter()/histogram() lookups are
    // string-keyed map walks, far too slow for once-per-record sites.
    Counter &deliveredCtr_;
    Counter &depStallsCtr_;
    Counter &caWaitCtr_;
    Counter &caIssuerCtr_;
    Counter &versionStallsCtr_;
    Counter &syscallRacesCtr_;
    Histogram &stallGapHist_;

    DeliverStatus lastStatus_ = DeliverStatus::kEmpty;
    RecordId stallRid_ = kInvalidRecord;
    std::uint64_t stallRetries_ = 0;

    /// After consuming a CA record we stall until the issuer's lifeguard
    /// processes the associated high-level event.
    bool waitingForIssuer_ = false;
    std::uint64_t waitSeq_ = 0;
    ThreadId waitIssuer_ = kInvalidThread;
    RecordId waitIssuerRid_ = kInvalidRecord;
};

} // namespace paralog

#endif // PARALOG_DELIVER_ORDER_ENFORCE_HPP
