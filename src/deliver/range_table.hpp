/**
 * @file
 * Hardware range table (section 5.4, "Memory Range Parameters"): one
 * entry per core, tracking the memory ranges of in-flight remote system
 * calls. The order-enforcing component checks event addresses against it
 * to detect races between application accesses and unmonitored kernel
 * activity, letting lifeguards apply conservative handling (e.g.
 * TaintCheck taints a load racing a read() buffer).
 */

#ifndef PARALOG_DELIVER_RANGE_TABLE_HPP
#define PARALOG_DELIVER_RANGE_TABLE_HPP

#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class RangeTable
{
  public:
    /** CA-Begin for a system call inserted issuer's range. */
    void
    insert(ThreadId issuer, const AddrRange &range)
    {
        entries_[issuer] = range;
    }

    /** CA-End removes it. */
    void remove(ThreadId issuer) { entries_.erase(issuer); }

    /** Does [addr, addr+size) race any in-flight remote system call? */
    bool
    races(Addr addr, unsigned size) const
    {
        AddrRange a{addr, addr + size};
        for (const auto &kv : entries_) {
            if (kv.second.overlaps(a))
                return true;
        }
        return false;
    }

    std::size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

  private:
    std::unordered_map<ThreadId, AddrRange> entries_;
};

} // namespace paralog

#endif // PARALOG_DELIVER_RANGE_TABLE_HPP
