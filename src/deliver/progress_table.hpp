/**
 * @file
 * Globally shared memory-mapped table of lifeguard progress counters
 * (Figure 4(b)): done(t) is the number of record IDs lifeguard t has
 * completed — every rid < done(t) is processed (or never produced a
 * record). A dependence arc (t, i) is satisfied when done(t) > i.
 *
 * Each entry conceptually lives on its own cache line; reads by remote
 * order-enforcing components cost a small fixed latency, modelled by the
 * consumer's retry interval.
 *
 * Concurrency: each entry has exactly one writer (lifeguard t publishes
 * only done(t)) and any number of cross-thread readers. Entries are
 * atomics — release on publish, acquire on read — so in concurrent
 * monitoring mode "done(t) > rid" is the happens-before edge that makes
 * the producing lifeguard's shadow-memory writes visible to the
 * dependent consumer before it runs its own handler.
 */

#ifndef PARALOG_DELIVER_PROGRESS_TABLE_HPP
#define PARALOG_DELIVER_PROGRESS_TABLE_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace paralog {

class ProgressTable
{
  public:
    explicit ProgressTable(std::uint32_t num_threads)
        : done_(num_threads)
    {
        for (auto &d : done_)
            d.value.store(0, std::memory_order_relaxed);
    }

    /** Advertise that all rids < @p done_count are complete for @p tid.
     *  Never moves backwards (delayed advertising may under-report).
     *  Single writer per tid: the owning lifeguard. */
    void
    publish(ThreadId tid, RecordId done_count)
    {
        std::atomic<RecordId> &d = done_[tid].value;
        if (done_count > d.load(std::memory_order_relaxed))
            d.store(done_count, std::memory_order_release);
    }

    /** Mark the lifeguard finished: progress becomes infinite. */
    void
    finish(ThreadId tid)
    {
        done_[tid].value.store(kInvalidRecord, std::memory_order_release);
    }

    RecordId
    done(ThreadId tid) const
    {
        return done_[tid].value.load(std::memory_order_acquire);
    }

    /** Arc (tid, rid) satisfied iff its producer completed past rid. */
    bool
    satisfied(const DepArc &arc) const
    {
        return done(arc.tid) > arc.rid;
    }

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(done_.size());
    }

  private:
    /// One entry per lifeguard, padded to its own cache line exactly as
    /// the modelled hardware table lays them out.
    struct alignas(64) Entry
    {
        std::atomic<RecordId> value;
    };
    std::vector<Entry> done_;
};

} // namespace paralog

#endif // PARALOG_DELIVER_PROGRESS_TABLE_HPP
