/**
 * @file
 * Globally shared memory-mapped table of lifeguard progress counters
 * (Figure 4(b)): done(t) is the number of record IDs lifeguard t has
 * completed — every rid < done(t) is processed (or never produced a
 * record). A dependence arc (t, i) is satisfied when done(t) > i.
 *
 * Each entry conceptually lives on its own cache line; reads by remote
 * order-enforcing components cost a small fixed latency, modelled by the
 * consumer's retry interval.
 */

#ifndef PARALOG_DELIVER_PROGRESS_TABLE_HPP
#define PARALOG_DELIVER_PROGRESS_TABLE_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace paralog {

class ProgressTable
{
  public:
    explicit ProgressTable(std::uint32_t num_threads)
        : done_(num_threads, 0)
    {
    }

    /** Advertise that all rids < @p done_count are complete for @p tid.
     *  Never moves backwards (delayed advertising may under-report). */
    void
    publish(ThreadId tid, RecordId done_count)
    {
        if (done_count > done_[tid])
            done_[tid] = done_count;
    }

    /** Mark the lifeguard finished: progress becomes infinite. */
    void finish(ThreadId tid) { done_[tid] = kInvalidRecord; }

    RecordId done(ThreadId tid) const { return done_[tid]; }

    /** Arc (tid, rid) satisfied iff its producer completed past rid. */
    bool
    satisfied(const DepArc &arc) const
    {
        return done_[arc.tid] > arc.rid;
    }

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(done_.size());
    }

  private:
    std::vector<RecordId> done_;
};

} // namespace paralog

#endif // PARALOG_DELIVER_PROGRESS_TABLE_HPP
