#include "deliver/progress_table.hpp"

// Header-only; this translation unit anchors the library target.
