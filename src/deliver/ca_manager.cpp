#include "deliver/ca_manager.hpp"

#include "common/logging.hpp"

namespace paralog {

Cycle
CaManager::broadcast(ThreadId issuer, RecordId issuer_event_rid,
                     HighLevelKind kind, const AddrRange &range,
                     const std::vector<CaptureUnit *> &units,
                     const std::vector<bool> &thread_alive)
{
    CaBroadcast b;
    b.seq = nextSeq_++;
    b.issuer = issuer;
    b.issuerEventRid = issuer_event_rid;
    b.kind = kind;
    b.range = range;
    b.arrivalRid.assign(numThreads_, kInvalidRecord);

    bool is_begin = (kind == HighLevelKind::kFreeBegin ||
                     kind == HighLevelKind::kSyscallBegin);

    for (ThreadId t = 0; t < numThreads_; ++t) {
        if (t == issuer || !thread_alive[t])
            continue;
        EventRecord rec;
        rec.type = is_begin ? EventType::kCaBegin : EventType::kCaEnd;
        rec.value = b.seq;
        rec.range = range;
        rec.caKind = kind;
        units[t]->appendCa(std::move(rec));
        b.arrivalRid[t] = units[t]->retired();
        ++b.waitersRemaining;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        live_.emplace(b.seq, std::move(b));
    }
    stats.counter("broadcasts").inc();

    // The issuing thread serializes: it waits for an acknowledgement
    // from the order-capturing component of every other core. Model a
    // round-trip proportional to the core count.
    return 4 + 2 * numThreads_;
}

void
CaManager::injectBroadcast(CaBroadcast b)
{
    if (b.seq >= nextSeq_)
        nextSeq_ = b.seq + 1;
    stats.counter("broadcasts").inc();
    std::lock_guard<std::mutex> lock(mutex_);
    live_.emplace(b.seq, std::move(b));
}

const CaBroadcast *
CaManager::find(std::uint64_t seq) const
{
    auto it = live_.find(seq);
    return it == live_.end() ? nullptr : &it->second;
}

bool
CaManager::lookup(std::uint64_t seq, CaBroadcast &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = live_.find(seq);
    if (it == live_.end())
        return false;
    out = it->second;
    return true;
}

void
CaManager::noteWaiterPassed(std::uint64_t seq)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = live_.find(seq);
    if (it == live_.end())
        return;
    if (it->second.waitersRemaining > 0)
        --it->second.waitersRemaining;
    if (it->second.waitersRemaining == 0 && it->second.issuerDone)
        live_.erase(it);
}

void
CaManager::noteIssuerDelivered(std::uint64_t seq)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = live_.find(seq);
    if (it == live_.end())
        return;
    it->second.issuerDone = true;
    if (it->second.waitersRemaining == 0)
        live_.erase(it);
}

} // namespace paralog
