#include "deliver/order_enforce.hpp"

#include "common/logging.hpp"

namespace paralog {

const char *
toString(DeliverStatus st)
{
    switch (st) {
      case DeliverStatus::kDelivered:    return "delivered";
      case DeliverStatus::kEmpty:        return "empty";
      case DeliverStatus::kDepStall:     return "dep-stall";
      case DeliverStatus::kCaStall:      return "ca-stall";
      case DeliverStatus::kVersionStall: return "version-stall";
    }
    return "?";
}

OrderEnforcer::OrderEnforcer(ThreadId tid, CaptureUnit &unit,
                             ProgressTable &progress, CaManager &ca,
                             VersionAvailable version_available)
    : tid_(tid), unit_(unit), progress_(progress), ca_(ca),
      versionAvailable_(std::move(version_available)),
      deliveredCtr_(stats.counter("delivered")),
      depStallsCtr_(stats.counter("dep_stalls")),
      caWaitCtr_(stats.counter("ca_wait_cycles")),
      caIssuerCtr_(stats.counter("ca_issuer_stalls")),
      versionStallsCtr_(stats.counter("version_stalls")),
      syscallRacesCtr_(stats.counter("syscall_races")),
      stallGapHist_(stats.histogram("stall_gap"))
{
}

bool
OrderEnforcer::issuerBarrierSatisfied(const CaBroadcast &b) const
{
    for (ThreadId t = 0; t < progress_.size(); ++t) {
        if (t == tid_)
            continue;
        RecordId arrival = (t < b.arrivalRid.size()) ? b.arrivalRid[t]
                                                     : kInvalidRecord;
        if (arrival == kInvalidRecord)
            continue; // thread was not running: nothing to wait for
        if (progress_.done(t) < arrival)
            return false;
    }
    return true;
}

DeliverStatus
OrderEnforcer::tryDeliverBatch(BatchItem &out, bool continuation)
{
    // Wait-state bookkeeping for the platform's progress watchdog.
    // Continuation checks are not authoritative (they merely end a
    // batch), so only the per-step check updates it.
    auto note = [this, continuation](DeliverStatus st,
                                     const EventRecord *r) {
        if (continuation)
            return st;
        lastStatus_ = st;
        if (st == DeliverStatus::kDelivered ||
            st == DeliverStatus::kEmpty) {
            stallRid_ = kInvalidRecord;
            stallRetries_ = 0;
        } else {
            RecordId rid = r ? r->rid : kInvalidRecord;
            if (rid == stallRid_) {
                ++stallRetries_;
            } else {
                stallRid_ = rid;
                stallRetries_ = 1;
            }
        }
        return st;
    };

    // Waiter half of a ConflictAlert barrier: after consuming the CA
    // record (accelerators flushed), stall until the issuing thread's
    // lifeguard has processed the high-level event itself.
    if (waitingForIssuer_) {
        if (progress_.done(waitIssuer_) <= waitIssuerRid_) {
            if (!continuation)
                caWaitCtr_.inc();
            return note(DeliverStatus::kCaStall, nullptr);
        }
        waitingForIssuer_ = false;
        noteWaiterPassed(waitSeq_);
    }

    const EventRecord *rec = unit_.peek();
    if (!rec)
        return note(DeliverStatus::kEmpty, nullptr);

    // Inter-thread dependence arcs (the core ordering mechanism).
    for (const DepArc &arc : rec->arcs) {
        if (!progress_.satisfied(arc)) {
            if (!continuation) {
                depStallsCtr_.inc();
                stallGapHist_.sample(arc.rid + 1 -
                                     progress_.done(arc.tid));
            }
            return note(DeliverStatus::kDepStall, rec);
        }
    }

    // TSO: a read annotated with a consume-version must wait until the
    // writer's lifeguard produced the versioned metadata. (Produce
    // records themselves never wait here: they carry the producing
    // store's arcs instead, checked above.)
    if (rec->consumesVersion && !versionAvailable_(rec->version)) {
        if (!continuation)
            versionStallsCtr_.inc();
        return note(DeliverStatus::kVersionStall, rec);
    }

    // Issuer half of a ConflictAlert barrier: the high-level event may
    // only be processed after every other lifeguard has consumed all
    // records preceding its CA record. Copy-out lookup: the live entry
    // can be retired concurrently by other lifeguards' barrier notes.
    if (rec->caSeq != kNoCaSeq) {
        CaBroadcast b;
        bool live = ca_.lookup(rec->caSeq, b);
        if (live && !issuerBarrierSatisfied(b)) {
            if (!continuation)
                caIssuerCtr_.inc();
            return note(DeliverStatus::kCaStall, rec);
        }
        if (live)
            noteIssuerDelivered(rec->caSeq);
    }

    note(DeliverStatus::kDelivered, rec);
    out.rec = rec;
    out.racesSyscall = false;

    if (rec->type == EventType::kCaBegin ||
        rec->type == EventType::kCaEnd) {
        CaBroadcast b;
        bool live = ca_.lookup(rec->value, b);
        ThreadId issuer = live ? b.issuer : kInvalidThread;
        // Maintain the hardware range table for remote syscalls.
        if (rec->caKind == HighLevelKind::kSyscallBegin &&
            issuer != kInvalidThread) {
            ranges_.insert(issuer, rec->range);
        } else if (rec->caKind == HighLevelKind::kSyscallEnd &&
                   issuer != kInvalidThread) {
            ranges_.remove(issuer);
        }
        if (live && progress_.done(b.issuer) <= b.issuerEventRid) {
            waitingForIssuer_ = true;
            waitSeq_ = b.seq;
            waitIssuer_ = b.issuer;
            waitIssuerRid_ = b.issuerEventRid;
        } else if (live) {
            noteWaiterPassed(b.seq);
        }
    } else if (rec->isMemAccess()) {
        out.racesSyscall = ranges_.races(rec->addr, rec->size);
        if (out.racesSyscall)
            syscallRacesCtr_.inc();
    }

    return DeliverStatus::kDelivered;
}

void
OrderEnforcer::commitDelivered()
{
    unit_.dropFront();
    deliveredCtr_.inc();
}

DeliverStatus
OrderEnforcer::tryDeliver(Delivery &out)
{
    BatchItem item;
    DeliverStatus st = tryDeliverBatch(item, false);
    if (st != DeliverStatus::kDelivered)
        return st;
    out.racesSyscall = item.racesSyscall;
    out.rec = unit_.pop();
    deliveredCtr_.inc();
    return st;
}

void
OrderEnforcer::noteWaiterPassed(std::uint64_t seq)
{
    ca_.noteWaiterPassed(seq);
}

void
OrderEnforcer::noteIssuerDelivered(std::uint64_t seq)
{
    ca_.noteIssuerDelivered(seq);
}

} // namespace paralog
