/**
 * @file
 * ConflictAlert broadcast mechanism (sections 4.3 and 5.4).
 *
 * The wrapper library (interpreter expansions) requests a broadcast for
 * configured high-level events. The manager inserts a CA record into the
 * event stream of every *other* running thread and serializes the issuer
 * (modelled ack latency). At the lifeguard side the pair acts as a
 * barrier:
 *   - the issuer's lifeguard may not process the high-level event until
 *     every other lifeguard has consumed all records preceding its CA
 *     record, and
 *   - the other lifeguards, after consuming the CA record (which flushes
 *     accelerator state), may not proceed until the issuer's lifeguard
 *     has processed the high-level event.
 */

#ifndef PARALOG_DELIVER_CA_MANAGER_HPP
#define PARALOG_DELIVER_CA_MANAGER_HPP

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "app/event.hpp"
#include "capture/capture_unit.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

struct CaBroadcast
{
    std::uint64_t seq = 0;
    ThreadId issuer = kInvalidThread;
    RecordId issuerEventRid = kInvalidRecord;
    HighLevelKind kind = HighLevelKind::kMallocEnd;
    AddrRange range{};
    /// Per-thread rid of the inserted CA record; kInvalidRecord for
    /// threads that had already exited (nothing to wait for).
    std::vector<RecordId> arrivalRid;

    // Retirement bookkeeping.
    std::uint32_t waitersRemaining = 0;
    bool issuerDone = false;
};

class CaManager
{
  public:
    explicit CaManager(std::uint32_t num_threads)
        : numThreads_(num_threads)
    {
    }

    /**
     * Broadcast a ConflictAlert for the high-level event with record id
     * @p issuer_event_rid just appended by @p issuer. Inserts CA records
     * into all other live threads' streams. Returns the modelled
     * acknowledgement latency charged to the issuing application thread.
     */
    Cycle broadcast(ThreadId issuer, RecordId issuer_event_rid,
                    HighLevelKind kind, const AddrRange &range,
                    const std::vector<CaptureUnit *> &units,
                    const std::vector<bool> &thread_alive);

    /**
     * Pointer into the live table; valid only until the next
     * noteWaiterPassed/noteIssuerDelivered (which may retire the
     * entry). Single-threaded callers only — concurrent monitoring
     * uses lookup().
     */
    const CaBroadcast *find(std::uint64_t seq) const;

    /** Copy-out lookup, safe against concurrent retirement. Returns
     *  false when @p seq is not (or no longer) live. */
    bool lookup(std::uint64_t seq, CaBroadcast &out) const;

    /**
     * Re-create a broadcast's barrier bookkeeping from a recorded
     * journal (trace replay). The CA records themselves arrive through
     * the replayed streams; this restores only the live_ entry the
     * order enforcers consult.
     */
    void injectBroadcast(CaBroadcast b);

    /** A waiter lifeguard finished its half of the barrier. */
    void noteWaiterPassed(std::uint64_t seq);

    /** The issuer's lifeguard processed the high-level event. */
    void noteIssuerDelivered(std::uint64_t seq);

    std::size_t
    liveBroadcasts() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return live_.size();
    }

    std::uint64_t issued() const { return nextSeq_; }

    StatSet stats{"ca"};

  private:
    std::uint32_t numThreads_;
    std::uint64_t nextSeq_ = 0;
    /// Guards live_ only: broadcasts are issued by the (single)
    /// application/producer side, but the barrier bookkeeping notes
    /// arrive from every lifeguard consumer thread in concurrent mode.
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, CaBroadcast> live_;
};

} // namespace paralog

#endif // PARALOG_DELIVER_CA_MANAGER_HPP
