/**
 * @file
 * The `paralog-trace-v1` on-disk format.
 *
 * A recording captures one monitored run as the journal of every
 * producer-side mutation of the per-thread event streams — appends
 * (compressed through the real StreamCompressor codec), ConflictAlert
 * insertions and broadcasts, TSO drain-time arc attachment,
 * produce/consume version annotations, visibility-limit moves and
 * retire-counter ticks — each stamped with its simulated cycle and the
 * global lifeguard-step count at which it happened. Replaying the
 * journal against live lifeguard cores reproduces the recorded run's
 * delivery order, lifeguard results, shadow fingerprints and stats
 * bit-identically (core/replay.hpp).
 *
 * Layout (all integers little-endian):
 *
 *   FileHeader (96 bytes, rewritten at finalize)
 *   Chunk*                          (any interleaving of kinds/threads)
 *   footer chunk                    (kind = kChunkFooter, last)
 *
 * Chunk = { u32 kind, u32 tid, u32 payloadBytes, u32 crc32(payload) }
 * followed by payloadBytes of payload. Per (kind, tid), chunk payloads
 * concatenate into one logical stream; a CRC mismatch fails the load.
 *
 * Versioning: the major format version is part of the magic; readers
 * reject anything else. Additive evolution (new op codes, new chunk
 * kinds, footer fields appended at the end) bumps nothing — readers
 * must reject unknown op codes and ignore unknown chunk kinds. Any
 * change to existing encodings is a new magic.
 *
 * `paralog-trace-v2` (magic "PLTRACE2") is exactly that: the header
 * layout, chunk framing, latency and footer payload encodings are
 * byte-identical to v1, but kChunkOps payloads hold a compressed
 * columnar re-blocking of the v1 op bytes (v2_block.hpp) instead of
 * the raw journal stream. Decoding a v2 ops chunk reproduces the v1
 * op bytes exactly, so every consumer above the chunk layer — the op
 * cursor, the record codec, replay — is format-agnostic.
 */

#ifndef PARALOG_TRACE_FORMAT_HPP
#define PARALOG_TRACE_FORMAT_HPP

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "core/run_stats.hpp"
#include "lifeguard/lifeguard.hpp"
#include "sim/config.hpp"
#include "workloads/workload.hpp"

namespace paralog::trace {

inline constexpr std::array<char, 8> kMagic = {'P', 'L', 'T', 'R',
                                               'A', 'C', 'E', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::array<char, 8> kMagicV2 = {'P', 'L', 'T', 'R',
                                                 'A', 'C', 'E', '2'};
inline constexpr std::uint32_t kFormatVersionV2 = 2;
inline constexpr std::uint32_t kHeaderBytes = 96;

/** Chunk kinds. Readers ignore unknown kinds (forward compatibility). */
inline constexpr std::uint32_t kChunkOps = 0;         ///< journal ops
inline constexpr std::uint32_t kChunkMetaLatency = 1; ///< RLE latencies
inline constexpr std::uint32_t kChunkFooter = 2;      ///< run results

/** tid field of thread-less chunks (the footer). */
inline constexpr std::uint32_t kNoThread = 0xFFFFFFFF;

/** Target payload size at which the writer flushes a chunk. */
inline constexpr std::uint32_t kChunkTargetBytes = 56 * 1024;

/** Journal op codes (see recorder.cpp for the encodings). */
enum class OpCode : std::uint8_t
{
    kRetire = 0,          ///< retire-counter tick
    kAppend = 1,          ///< captured record append
    kAppendCa = 2,        ///< ConflictAlert record insertion
    kAttachArcs = 3,      ///< TSO drain-time arcs onto a pending record
    kAnnotateConsume = 4, ///< consume-version annotation (TSO)
    kInsertProduce = 5,   ///< produce-version record insertion (TSO)
    kVisLimit = 6,        ///< TSO visibility-limit move
    kCaBroadcast = 7,     ///< ConflictAlert barrier bookkeeping
};
inline constexpr std::uint8_t kMaxOpCode = 7;

/** Config flag bits (header offset 29). */
inline constexpr std::uint8_t kCfgConflictAlerts = 1 << 0;
inline constexpr std::uint8_t kCfgAccelIT = 1 << 1;
inline constexpr std::uint8_t kCfgAccelIF = 1 << 2;
inline constexpr std::uint8_t kCfgAccelMTLB = 1 << 3;
/// Recorded by the host-parallel *live* engine (--lg-threads without
/// --replay): journal ops carry no lifeguard-step stamps (lgStep is 0
/// throughout) and there is no metadata-latency sideband, so replay
/// re-monitors the streams result-exact rather than schedule-exact
/// (core/replay.cpp relaxes timing columns against the footer).
inline constexpr std::uint8_t kCfgLiveParallel = 1 << 4;

/** Event-filter bits (header offset 30): which event classes the
 *  recorded lifeguard registered for. Replaying under a lifeguard that
 *  wants more than the recording captured is approximate. */
inline constexpr std::uint8_t kFilterRegOps = 1 << 0;
inline constexpr std::uint8_t kFilterLoads = 1 << 1;
inline constexpr std::uint8_t kFilterStores = 1 << 2;
inline constexpr std::uint8_t kFilterJumps = 1 << 3;
inline constexpr std::uint8_t kFilterHeapOnly = 1 << 4;

/** The recorded run's configuration, as stored in the file header. */
struct TraceConfig
{
    WorkloadKind workload = WorkloadKind::kLu;
    LifeguardKind lifeguard = LifeguardKind::kTaintCheck;
    MonitorMode mode = MonitorMode::kParallel;
    MemoryModel memoryModel = MemoryModel::kSC;
    DepTracking depTracking = DepTracking::kPerBlock;
    bool conflictAlerts = true;
    bool accelIT = true;
    bool accelIF = true;
    bool accelMTLB = true;
    /// Recorded by the live host-parallel engine (kCfgLiveParallel).
    bool liveParallel = false;
    std::uint8_t filterBits = 0;
    std::uint32_t appThreads = 1;
    std::uint32_t shadowShards = 0;
    std::uint64_t scale = 0;
    std::uint64_t seed = 1;
    std::uint64_t logBufferBytes = 64 * 1024;

    /** Rebuild the SimConfig the recorded Platform ran with. */
    SimConfig
    toSimConfig() const
    {
        SimConfig sim = SimConfig::forAppThreads(appThreads);
        sim.mode = mode;
        sim.memoryModel = memoryModel;
        sim.depTracking = depTracking;
        sim.conflictAlerts = conflictAlerts;
        sim.accel.inheritanceTracking = accelIT;
        sim.accel.idempotentFilter = accelIF;
        sim.accel.metadataTlb = accelMTLB;
        sim.seed = seed;
        sim.logBufferBytes = logBufferBytes;
        sim.shadowShards = shadowShards;
        return sim;
    }
};

/** Recorded run results: replay copies the application side verbatim
 *  and self-checks the recomputed lifeguard side against the rest. */
struct TraceFooter
{
    std::vector<AppThreadStats> app;
    std::vector<LifeguardThreadStats> lifeguard;
    std::vector<std::uint64_t> opCount;     ///< journal ops per thread
    std::vector<std::uint64_t> recordCount; ///< appended records per thread
    Cycle totalCycles = 0;
    std::uint64_t violations = 0;
    std::uint64_t versionsProduced = 0;
    std::uint64_t versionsConsumed = 0;
    std::uint64_t versionStallRetries = 0;
    std::uint64_t shadowFingerprint = 0;
    // Appended after the original fields (additive evolution): absent
    // in recordings made before it existed, so presence is tracked
    // explicitly rather than inferred from a sentinel value.
    std::uint64_t violationFingerprint = 0;
    bool hasViolationFingerprint = false;
};

namespace detail {

inline const std::array<std::uint32_t, 256> &
crc32Table()
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** FNV-1a over a byte span (the header's config fingerprint). */
inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/** CRC-32 (IEEE 802.3, reflected) over @p data. */
inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t n,
      std::uint32_t seed = 0xFFFFFFFFu)
{
    const auto &table = detail::crc32Table();
    std::uint32_t crc = seed;
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

/**
 * Incremental CRC-32 over a byte stream fed in arbitrary pieces —
 * value() after any update sequence equals crc32() over the
 * concatenation. The streaming-ingest path checks chunk payloads as
 * bytes arrive, without buffering the whole payload first.
 */
class Crc32
{
  public:
    void
    update(const std::uint8_t *data, std::size_t n)
    {
        const auto &table = detail::crc32Table();
        for (std::size_t i = 0; i < n; ++i)
            state_ = table[(state_ ^ data[i]) & 0xFF] ^ (state_ >> 8);
    }
    std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
    void reset() { state_ = 0xFFFFFFFFu; }

  private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

// Little-endian integer accessors shared by the writer, the reader and
// the streaming-ingest validator.
inline std::uint32_t
get32le(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

inline std::uint64_t
get64le(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(get32le(p)) |
           static_cast<std::uint64_t>(get32le(p + 4)) << 32;
}

inline void
put32le(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void
put64le(std::uint8_t *p, std::uint64_t v)
{
    put32le(p, static_cast<std::uint32_t>(v));
    put32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/** The fixed header fields, decoded. */
struct ParsedHeader
{
    TraceConfig cfg;
    std::uint32_t formatVersion = kFormatVersion; ///< 1 or 2
    std::uint64_t configFingerprint = 0;
    std::uint64_t totalOps = 0;
    std::uint64_t totalRecords = 0;
    std::uint64_t footerOffset = 0;
};

/**
 * Validate and decode the 96-byte file header (magic, version, header
 * size, config fingerprint, plausible thread count). Returns an empty
 * string on success, else the reason — shared by the file reader and
 * the streaming-ingest validator so the two paths cannot drift.
 * Finalization (footerOffset != 0) is *not* checked here: a stream
 * being ingested is judged complete by its footer chunk instead.
 */
inline std::string
parseTraceHeader(const std::uint8_t *h, ParsedHeader &out)
{
    if (std::memcmp(h, kMagic.data(), kMagic.size()) == 0)
        out.formatVersion = kFormatVersion;
    else if (std::memcmp(h, kMagicV2.data(), kMagicV2.size()) == 0)
        out.formatVersion = kFormatVersionV2;
    else
        return "bad magic (not a paralog trace)";
    // The version word must agree with the magic: the magic names the
    // format, the word exists so a mismatch is diagnosable.
    if (get32le(h + 8) != out.formatVersion)
        return "unsupported format version " +
               std::to_string(get32le(h + 8));
    if (get32le(h + 12) != kHeaderBytes)
        return "unexpected header size";
    out.configFingerprint = get64le(h + 16);
    if (out.configFingerprint != fnv1a(h + 24, 40))
        return "config fingerprint mismatch (corrupt header)";
    out.cfg.workload = static_cast<WorkloadKind>(h[24]);
    out.cfg.lifeguard = static_cast<LifeguardKind>(h[25]);
    out.cfg.mode = static_cast<MonitorMode>(h[26]);
    out.cfg.memoryModel = static_cast<MemoryModel>(h[27]);
    out.cfg.depTracking = static_cast<DepTracking>(h[28]);
    out.cfg.conflictAlerts = h[29] & kCfgConflictAlerts;
    out.cfg.accelIT = h[29] & kCfgAccelIT;
    out.cfg.accelIF = h[29] & kCfgAccelIF;
    out.cfg.accelMTLB = h[29] & kCfgAccelMTLB;
    out.cfg.liveParallel = h[29] & kCfgLiveParallel;
    out.cfg.filterBits = h[30];
    out.cfg.appThreads = get32le(h + 32);
    out.cfg.shadowShards = get32le(h + 36);
    out.cfg.scale = get64le(h + 40);
    out.cfg.seed = get64le(h + 48);
    out.cfg.logBufferBytes = get64le(h + 56);
    out.totalOps = get64le(h + 64);
    out.totalRecords = get64le(h + 72);
    out.footerOffset = get64le(h + 80);
    if (out.cfg.appThreads == 0 || out.cfg.appThreads > 1024)
        return "implausible thread count";
    return "";
}

} // namespace paralog::trace

#endif // PARALOG_TRACE_FORMAT_HPP
