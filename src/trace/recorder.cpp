#include "trace/recorder.hpp"

#include "common/varint.hpp"

namespace paralog::trace {

TraceRecorder::TraceRecorder(const std::string &path,
                             const TraceConfig &cfg,
                             std::uint32_t format)
    : writer_(path, cfg, format), threads_(cfg.appThreads)
{
}

void
TraceRecorder::beginOp(OpCode op, ThreadId tid)
{
    PerThread &t = threads_[tid];
    ++gseq_;
    scratch_.clear();
    scratch_.push_back(static_cast<std::uint8_t>(op));
    putVarint(scratch_, gseq_ - t.lastGseq);
    putVarint(scratch_, now_ - t.lastCycle);
    putVarint(scratch_, lgSteps_ - t.lastLgStep);
    t.lastGseq = gseq_;
    t.lastCycle = now_;
    t.lastLgStep = lgSteps_;
}

void
TraceRecorder::commitOp(ThreadId tid, bool is_record)
{
    writer_.appendOpBytes(tid, scratch_);
    writer_.noteOp(tid, is_record);
}

void
TraceRecorder::onRetire(ThreadId tid, RecordId retired)
{
    beginOp(OpCode::kRetire, tid);
    PerThread &t = threads_[tid];
    putVarint(scratch_, retired - t.lastRetired);
    t.lastRetired = retired;
    commitOp(tid);
}

void
TraceRecorder::onAppend(ThreadId tid, const EventRecord &rec,
                        std::uint32_t charged_bytes,
                        const std::vector<std::uint8_t> &payload)
{
    beginOp(OpCode::kAppend, tid);
    putVarint(scratch_, charged_bytes);
    encodeSideband(rec, threads_[tid].lastRid, scratch_);
    scratch_.insert(scratch_.end(), payload.begin(), payload.end());
    commitOp(tid, true);
}

void
TraceRecorder::onAppendCa(ThreadId tid, const EventRecord &rec,
                          std::uint32_t charged_bytes,
                          const std::vector<std::uint8_t> &payload)
{
    beginOp(OpCode::kAppendCa, tid);
    putVarint(scratch_, charged_bytes);
    encodeSideband(rec, threads_[tid].lastRid, scratch_);
    scratch_.insert(scratch_.end(), payload.begin(), payload.end());
    commitOp(tid, true);
}

void
TraceRecorder::onAttachArcs(ThreadId tid, RecordId rid,
                            const std::vector<DepArc> &kept)
{
    beginOp(OpCode::kAttachArcs, tid);
    putVarint(scratch_, rid);
    putVarint(scratch_, kept.size());
    for (const DepArc &a : kept) {
        scratch_.push_back(static_cast<std::uint8_t>(a.tid));
        putVarint(scratch_, a.rid);
    }
    commitOp(tid);
}

void
TraceRecorder::onAnnotateConsume(ThreadId tid, RecordId rid,
                                 const VersionTag &v)
{
    beginOp(OpCode::kAnnotateConsume, tid);
    putVarint(scratch_, rid);
    putVarint(scratch_, v.tid);
    putVarint(scratch_, v.rid);
    commitOp(tid);
}

void
TraceRecorder::onInsertProduce(ThreadId tid, RecordId store_rid,
                               const VersionTag &v, Addr addr,
                               std::uint8_t size)
{
    beginOp(OpCode::kInsertProduce, tid);
    putVarint(scratch_, store_rid);
    putVarint(scratch_, v.tid);
    putVarint(scratch_, v.rid);
    putVarint(scratch_, addr);
    scratch_.push_back(size);
    commitOp(tid);
}

void
TraceRecorder::onVisibilityLimit(ThreadId tid, RecordId limit)
{
    beginOp(OpCode::kVisLimit, tid);
    // kInvalidRecord ("everything visible") encodes as 0.
    putVarint(scratch_, limit == kInvalidRecord ? 0 : limit + 1);
    commitOp(tid);
}

void
TraceRecorder::onCaBroadcast(const CaBroadcast &b)
{
    beginOp(OpCode::kCaBroadcast, b.issuer);
    putVarint(scratch_, b.seq);
    putVarint(scratch_, b.issuerEventRid);
    scratch_.push_back(static_cast<std::uint8_t>(b.kind));
    putVarint(scratch_, b.range.begin);
    putVarint(scratch_, b.range.size());
    putVarint(scratch_, b.arrivalRid.size());
    for (RecordId r : b.arrivalRid)
        putVarint(scratch_, r == kInvalidRecord ? 0 : r + 1);
    commitOp(b.issuer);
}

bool
TraceRecorder::finalize(const RunResult &result,
                        std::uint64_t shadow_fingerprint)
{
    TraceFooter footer;
    footer.app = result.app;
    footer.lifeguard = result.lifeguard;
    footer.totalCycles = result.totalCycles;
    footer.violations = result.violationCount;
    footer.versionsProduced = result.versionsProduced;
    footer.versionsConsumed = result.versionsConsumed;
    footer.versionStallRetries = result.versionStallRetries;
    footer.shadowFingerprint = shadow_fingerprint;
    footer.violationFingerprint = result.violationFingerprint;
    footer.hasViolationFingerprint = true;
    return writer_.finalize(footer);
}

} // namespace paralog::trace
