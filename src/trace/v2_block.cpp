#include "trace/v2_block.hpp"

#include "common/lz.hpp"
#include "common/varint.hpp"
#include "trace/codec.hpp"
#include "trace/format.hpp"

namespace paralog::trace {

namespace {

/** Skip one varint; false on truncation or over-long encoding. */
bool
skipVarint(ByteCursor &c)
{
    std::uint64_t v = 0;
    return c.getVarint(v);
}

bool
skipBytes(ByteCursor &c, std::uint64_t n)
{
    if (c.remaining() < n)
        return false;
    c.pos += n;
    return true;
}

/** Skip an append body: charged-bytes varint, sideband, payload. The
 *  payload is exactly the charged size (codec.hpp invariant), so the
 *  scan needs no predictor state. */
bool
skipAppendBody(ByteCursor &c)
{
    std::uint64_t charged = 0, flags = 0;
    if (!c.getVarint(charged) || !c.getVarint(flags) || !skipVarint(c))
        return false; // charged, sideband flags, rid delta
    std::uint64_t fixed = 0;
    fixed += (flags & kSbDst) ? 1 : 0;
    fixed += (flags & kSbSrc) ? 1 : 0;
    fixed += (flags & kSbSize) ? 1 : 0;
    if (!skipBytes(c, fixed))
        return false;
    if ((flags & kSbValue) && !skipVarint(c))
        return false;
    if ((flags & kSbAddr) && !skipVarint(c))
        return false;
    if ((flags & kSbRange) && !(skipVarint(c) && skipVarint(c)))
        return false;
    if ((flags & kSbCaSeq) && !skipVarint(c))
        return false;
    if ((flags & kSbVersionTag) && !(skipVarint(c) && skipVarint(c)))
        return false;
    if (flags & kSbArcs) {
        std::uint64_t arcs = 0;
        if (!c.getVarint(arcs) || arcs > 4096)
            return false;
    }
    return skipBytes(c, charged);
}

bool
skipOpBody(OpCode op, ByteCursor &c)
{
    switch (op) {
      case OpCode::kRetire:
      case OpCode::kVisLimit:
        return skipVarint(c);
      case OpCode::kAppend:
      case OpCode::kAppendCa:
        return skipAppendBody(c);
      case OpCode::kAttachArcs: {
        std::uint64_t n = 0;
        if (!skipVarint(c) || !c.getVarint(n) || n > 4096)
            return false;
        for (std::uint64_t i = 0; i < n; ++i)
            if (!skipBytes(c, 1) || !skipVarint(c))
                return false;
        return true;
      }
      case OpCode::kAnnotateConsume:
        return skipVarint(c) && skipVarint(c) && skipVarint(c);
      case OpCode::kInsertProduce:
        return skipVarint(c) && skipVarint(c) && skipVarint(c) &&
               skipVarint(c) && skipBytes(c, 1);
      case OpCode::kCaBroadcast: {
        std::uint64_t n = 0;
        if (!(skipVarint(c) && skipVarint(c) && skipBytes(c, 1) &&
              skipVarint(c) && skipVarint(c)))
            return false;
        if (!c.getVarint(n) || n > 1024)
            return false;
        for (std::uint64_t i = 0; i < n; ++i)
            if (!skipVarint(c))
                return false;
        return true;
      }
    }
    return false;
}

/** Copy the next varint of @p src into @p dst; false on truncation. */
bool
copyVarint(ByteCursor &src, std::vector<std::uint8_t> &dst)
{
    const std::uint8_t *start = src.pos;
    if (!skipVarint(src))
        return false;
    dst.insert(dst.end(), start, src.pos);
    return true;
}

inline constexpr std::size_t kColumnCount = 6;

} // namespace

bool
scanOneOp(const std::uint8_t *&pos, const std::uint8_t *end,
          std::size_t &prelude_end)
{
    ByteCursor c(pos, static_cast<std::size_t>(end - pos));
    std::uint8_t opcode = 0;
    if (!c.getByte(opcode) || opcode > kMaxOpCode)
        return false;
    if (!skipVarint(c) || !skipVarint(c) || !skipVarint(c))
        return false; // d_gseq, d_cycle, d_lgStep
    prelude_end = static_cast<std::size_t>(c.pos - pos);
    if (!skipOpBody(static_cast<OpCode>(opcode), c))
        return false;
    pos = c.pos;
    return true;
}

bool
encodeOpsBlock(const std::uint8_t *v1, std::size_t n,
               std::vector<std::uint8_t> &out)
{
    std::vector<std::uint8_t> cols[kColumnCount];
    std::uint64_t op_count = 0;

    const std::uint8_t *p = v1;
    const std::uint8_t *end = v1 + n;
    while (p < end) {
        const std::uint8_t *op_start = p;
        std::size_t prelude_end = 0;
        if (!scanOneOp(p, end, prelude_end))
            return false;
        ++op_count;

        cols[0].push_back(op_start[0]);
        ByteCursor pre(op_start + 1, prelude_end - 1);
        if (!copyVarint(pre, cols[1]) || !copyVarint(pre, cols[2]) ||
            !copyVarint(pre, cols[3]))
            return false;
        std::size_t body_len =
            static_cast<std::size_t>(p - op_start) - prelude_end;
        putVarint(cols[4], body_len);
        cols[5].insert(cols[5].end(), op_start + prelude_end, p);
    }

    std::vector<std::uint8_t> section;
    section.reserve(n + op_count + 64);
    putVarint(section, op_count);
    for (const auto &col : cols) {
        putVarint(section, col.size());
        section.insert(section.end(), col.begin(), col.end());
    }
    putVarint(out, n);
    lzCompress(section.data(), section.size(), out);
    return true;
}

bool
decodeOpsBlock(const std::uint8_t *v2, std::size_t n,
               std::vector<std::uint8_t> &out,
               std::size_t max_v1_bytes)
{
    ByteCursor c(v2, n);
    std::uint64_t v1_len = 0;
    if (!c.getVarint(v1_len) || v1_len > max_v1_bytes)
        return false;

    // The column section is the v1 bytes plus one length varint per op
    // plus framing; 2x + slack is a generous structural ceiling that
    // still stops a hostile stream from forcing a huge allocation.
    std::vector<std::uint8_t> section;
    if (!lzDecompress(c.pos, c.remaining(), section,
                      2 * static_cast<std::size_t>(v1_len) + 1024))
        return false;

    ByteCursor s(section.data(), section.size());
    std::uint64_t op_count = 0;
    if (!s.getVarint(op_count) || op_count > v1_len)
        return false;
    ByteCursor col[kColumnCount];
    for (auto &cc : col) {
        std::uint64_t len = 0;
        if (!s.getVarint(len) || len > s.remaining())
            return false;
        cc = ByteCursor(s.pos, static_cast<std::size_t>(len));
        s.pos += len;
    }
    if (!s.atEnd())
        return false;

    out.clear();
    out.reserve(v1_len);
    for (std::uint64_t i = 0; i < op_count; ++i) {
        std::uint8_t opcode = 0;
        if (!col[0].getByte(opcode) || opcode > kMaxOpCode)
            return false;
        out.push_back(opcode);
        if (!copyVarint(col[1], out) || !copyVarint(col[2], out) ||
            !copyVarint(col[3], out))
            return false;
        std::uint64_t body_len = 0;
        if (!col[4].getVarint(body_len) ||
            body_len > col[5].remaining() ||
            out.size() + body_len > v1_len)
            return false;
        out.insert(out.end(), col[5].pos, col[5].pos + body_len);
        col[5].pos += body_len;
    }
    for (const auto &cc : col)
        if (!cc.atEnd())
            return false; // leftover column bytes: corrupt framing
    return out.size() == v1_len;
}

} // namespace paralog::trace
