/**
 * @file
 * Streaming writer for `paralog-trace-v1` and `paralog-trace-v2` files
 * (format.hpp). Journal op bytes are buffered per thread and flushed as
 * CRC-protected chunks once they reach the target chunk size, so memory
 * stays bounded while recording arbitrarily long runs; finalize()
 * flushes the tails, writes the footer chunk and rewrites the header
 * with the final counts and config fingerprint. A file without a footer
 * (crashed recording) is rejected by the reader.
 *
 * The two formats differ only in the ops-chunk payload: in v2 mode the
 * buffered v1 op bytes are re-blocked and compressed (v2_block.hpp) at
 * flush time — chunk boundaries, latency and footer encodings are
 * shared, so a v1 and a v2 recording of the same run have identical
 * chunk sequences.
 */

#ifndef PARALOG_TRACE_TRACE_WRITER_HPP
#define PARALOG_TRACE_TRACE_WRITER_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace paralog::trace {

class TraceWriter
{
  public:
    /** @p format is kFormatVersion (v1, the default) or
     *  kFormatVersionV2. */
    TraceWriter(const std::string &path, const TraceConfig &cfg,
                std::uint32_t format = kFormatVersion);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }

    /** The header config is rewritten at finalize; the recorder patches
     *  fields it only learns after construction (the event filter). */
    TraceConfig &config() { return cfg_; }

    /** Append raw op bytes to thread @p tid's journal stream. */
    void appendOpBytes(ThreadId tid, const std::vector<std::uint8_t> &op);

    /** Append one metadata-access latency for lifeguard thread @p tid
     *  (run-length encoded). */
    void appendMetaLatency(ThreadId tid, Cycle latency);

    // ---- migration support (trace/migrate.cpp): re-emit chunks from
    // an existing recording while preserving its chunk boundaries. ----

    /** Emit @p v1_ops (whole v1 op bytes) as exactly one ops chunk,
     *  bypassing the per-thread buffer (which must be empty). */
    void writeOpsChunk(ThreadId tid,
                       const std::vector<std::uint8_t> &v1_ops);

    /** Emit one latency chunk verbatim. */
    void writeLatencyChunk(ThreadId tid,
                           const std::vector<std::uint8_t> &payload);

    /** Override the header totals (migration copies them from the
     *  source header instead of counting ops via noteOp). */
    void
    setTotals(std::uint64_t total_ops, std::uint64_t total_records)
    {
        totalOps_ = total_ops;
        totalRecords_ = total_records;
    }

    /**
     * Flush everything, write the footer chunk and rewrite the header.
     * Returns ok(). The writer is unusable afterwards.
     */
    bool finalize(const TraceFooter &footer);

  private:
    void fail(const std::string &why);
    void writeHeader();
    void flushChunk(std::uint32_t kind, std::uint32_t tid,
                    std::vector<std::uint8_t> &payload);
    void flushLatencyRun(ThreadId tid);

    struct LatencyRun
    {
        Cycle latency = 0;
        std::uint64_t count = 0;
    };

    std::FILE *file_ = nullptr;
    TraceConfig cfg_;
    std::uint32_t format_ = kFormatVersion;
    std::string path_;    ///< final name, created only by finalize()
    std::string tmpPath_; ///< path_ + ".tmp": where writing happens
    bool ok_ = true;
    bool finalized_ = false;
    std::string error_;
    std::vector<std::vector<std::uint8_t>> opBuf_;   ///< per app thread
    std::vector<std::vector<std::uint8_t>> latBuf_;  ///< per lg thread
    std::vector<LatencyRun> latRun_;
    std::uint64_t totalOps_ = 0;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t footerOffset_ = 0;

  public:
    /// Op/record tallies for the footer (owned here so the recorder
    /// does not duplicate the bookkeeping).
    std::vector<std::uint64_t> opCount;
    std::vector<std::uint64_t> recordCount;
    void noteOp(ThreadId tid, bool is_record);
};

} // namespace paralog::trace

#endif // PARALOG_TRACE_TRACE_WRITER_HPP
