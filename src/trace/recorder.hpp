/**
 * @file
 * TraceRecorder: the live half of record/replay. Attached to a
 * Platform run (PlatformConfig::recorder), it implements the capture
 * journal — stamping every producer-side stream mutation with its
 * simulated cycle and the global lifeguard-step count, encoding it as a
 * `paralog-trace-v1` op and streaming it through the TraceWriter — and
 * additionally captures the platform-level ConflictAlert broadcast
 * bookkeeping plus the per-lifeguard-core metadata-access latency
 * sideband (the one consumer-side quantity that depends on application
 * cache interference, which replay has no application cores to
 * regenerate).
 */

#ifndef PARALOG_TRACE_RECORDER_HPP
#define PARALOG_TRACE_RECORDER_HPP

#include <memory>
#include <string>
#include <vector>

#include "capture/journal.hpp"
#include "deliver/ca_manager.hpp"
#include "trace/codec.hpp"
#include "trace/trace_writer.hpp"

namespace paralog::trace {

class TraceRecorder : public CaptureJournal
{
  public:
    /** @p format selects the container: kFormatVersion (v1, default)
     *  or kFormatVersionV2. The journal encoding is identical; only
     *  the on-disk ops-chunk layout differs. */
    TraceRecorder(const std::string &path, const TraceConfig &cfg,
                  std::uint32_t format = kFormatVersion);

    bool ok() const { return writer_.ok(); }
    const std::string &error() const { return writer_.error(); }

    /** Patch the event-filter bits the platform derives from the
     *  lifeguard policy (known only after construction). */
    void setFilterBits(std::uint8_t bits)
    {
        writer_.config().filterBits = bits;
    }

    // ---- phase bookkeeping (driven by the Platform scheduler loop) ----
    void setNow(Cycle now) { now_ = now; }
    void noteLgStep() { ++lgSteps_; }

    // ---- CaptureJournal ----
    void onRetire(ThreadId tid, RecordId retired) override;
    void onAppend(ThreadId tid, const EventRecord &rec,
                  std::uint32_t charged_bytes,
                  const std::vector<std::uint8_t> &payload) override;
    void onAppendCa(ThreadId tid, const EventRecord &rec,
                    std::uint32_t charged_bytes,
                    const std::vector<std::uint8_t> &payload) override;
    void onAttachArcs(ThreadId tid, RecordId rid,
                      const std::vector<DepArc> &kept) override;
    void onAnnotateConsume(ThreadId tid, RecordId rid,
                           const VersionTag &v) override;
    void onInsertProduce(ThreadId tid, RecordId store_rid,
                         const VersionTag &v, Addr addr,
                         std::uint8_t size) override;
    void onVisibilityLimit(ThreadId tid, RecordId limit) override;

    // ---- platform-level hooks ----
    void onCaBroadcast(const CaBroadcast &b);
    void onMetaLatency(ThreadId tid, Cycle latency)
    {
        writer_.appendMetaLatency(tid, latency);
    }

    /** Write the footer (recorded results + shadow fingerprint) and
     *  close the file. Returns false on I/O failure. */
    bool finalize(const RunResult &result,
                  std::uint64_t shadow_fingerprint);

  private:
    /** Start an op in the scratch buffer: opcode + (gseq, cycle,
     *  lifeguard-step) deltas against thread @p tid's previous op. */
    void beginOp(OpCode op, ThreadId tid);
    void commitOp(ThreadId tid, bool is_record = false);

    struct PerThread
    {
        std::uint64_t lastGseq = 0;
        Cycle lastCycle = 0;
        std::uint64_t lastLgStep = 0;
        RecordId lastRid = 0;     ///< sideband rid delta base
        RecordId lastRetired = 0; ///< kRetire delta base
    };

    TraceWriter writer_;
    std::vector<PerThread> threads_;
    std::vector<std::uint8_t> scratch_;
    Cycle now_ = 0;
    std::uint64_t lgSteps_ = 0;
    std::uint64_t gseq_ = 0;
};

} // namespace paralog::trace

#endif // PARALOG_TRACE_RECORDER_HPP
