/**
 * @file
 * Record codec for `paralog-trace-v1` appends.
 *
 * A recorded append is [sideband][payload]:
 *
 *  - The *payload* is the StreamCompressor's real output — the bytes a
 *    hardware log-compression unit would ship: 1-byte header (5-bit
 *    type, predictor-hit flag), stride-predicted / varint-delta
 *    addresses, varint range length, raw dependence arcs and the 4-byte
 *    version annotation. Its length is exactly the modeled compressed
 *    size (and the log-buffer charge).
 *
 *  - The *sideband* carries simulation-level fields the size model
 *    deliberately does not charge for, because real hardware either
 *    packs them into the header byte (register ids, access size), derives
 *    them from stream position (record ids) or does not need them at
 *    all (pre-resolved payload values): a presence bitmap followed by
 *    the present fields as varints.
 *
 * RecordDecoder mirrors the encoder's stride predictors and rid delta
 * state, so decode(encode(r)) == r for every record in stream order.
 */

#ifndef PARALOG_TRACE_CODEC_HPP
#define PARALOG_TRACE_CODEC_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "app/event.hpp"
#include "capture/compressor.hpp"
#include "common/varint.hpp"

namespace paralog::trace {

// Sideband presence bitmap.
inline constexpr std::uint32_t kSbWrapper = 1u << 0;
inline constexpr std::uint32_t kSbConsumesVersion = 1u << 1;
inline constexpr std::uint32_t kSbVersionTag = 1u << 2;
inline constexpr std::uint32_t kSbDst = 1u << 3;
inline constexpr std::uint32_t kSbSrc = 1u << 4;
inline constexpr std::uint32_t kSbSize = 1u << 5;
inline constexpr std::uint32_t kSbValue = 1u << 6;
inline constexpr std::uint32_t kSbAddr = 1u << 7;
inline constexpr std::uint32_t kSbRange = 1u << 8;
inline constexpr std::uint32_t kSbCaSeq = 1u << 9;
inline constexpr std::uint32_t kSbSyscallShift = 10; // 2 bits
inline constexpr std::uint32_t kSbCaKindShift = 12;  // 2 bits
inline constexpr std::uint32_t kSbArcs = 1u << 14;

/** True if the compressed payload itself carries rec.addr. */
bool payloadCarriesAddr(EventType type);

/** True if the compressed payload itself carries rec.range. */
bool payloadCarriesRange(EventType type);

/**
 * Append the sideband for @p rec. @p last_rid is the per-thread rid
 * delta base — the previous appended record's rid, updated in place.
 */
void encodeSideband(const EventRecord &rec, RecordId &last_rid,
                    std::vector<std::uint8_t> &out);

/**
 * Decodes one thread's append stream: sideband + payload pairs, in
 * append order. Holds the mirrored predictor and rid state.
 */
class RecordDecoder
{
  public:
    /**
     * Decode one record: reads the sideband, then exactly
     * @p payload_bytes of payload, reconstructing @p out. Returns false
     * on malformed input (including a payload length mismatch — the
     * decoder re-deriving a different size than the encoder charged).
     */
    bool decode(ByteCursor &c, std::uint32_t payload_bytes,
                EventRecord &out);

  private:
    Addr decodeAddr(StridePredictor &p, bool hit, ByteCursor &c,
                    bool &ok);

    std::array<StridePredictor, 3> pred_{};
    RecordId lastRid_ = 0;
};

} // namespace paralog::trace

#endif // PARALOG_TRACE_CODEC_HPP
