#include "trace/stream_ingest.hpp"

#include <algorithm>
#include <cstring>

namespace paralog::trace {

const char *
ingestErrorName(IngestError e)
{
    switch (e) {
    case IngestError::kNone:
        return "none";
    case IngestError::kBadMagic:
        return "bad-magic";
    case IngestError::kBadVersion:
        return "bad-version";
    case IngestError::kBadHeader:
        return "bad-header";
    case IngestError::kBadChunk:
        return "bad-chunk";
    case IngestError::kCrcMismatch:
        return "crc-mismatch";
    case IngestError::kTooLarge:
        return "too-large";
    case IngestError::kTrailingData:
        return "trailing-data";
    case IngestError::kTruncated:
        return "truncated";
    }
    return "unknown";
}

bool
StreamIngest::failWith(IngestError e, const std::string &why)
{
    if (error_ == IngestError::kNone) {
        error_ = e;
        errorText_ = why;
    }
    state_ = State::kFailed;
    return false;
}

bool
StreamIngest::consumeHeader(const std::uint8_t *&p, std::size_t &n)
{
    std::size_t take = std::min<std::size_t>(n, kHeaderBytes - accumFill_);
    std::memcpy(accum_ + accumFill_, p, take);
    accumFill_ += take;
    p += take;
    n -= take;
    if (accumFill_ < kHeaderBytes)
        return true;

    std::string why = parseTraceHeader(accum_, header_);
    if (!why.empty()) {
        IngestError e = IngestError::kBadHeader;
        if (why.find("magic") != std::string::npos)
            e = IngestError::kBadMagic;
        else if (why.find("version") != std::string::npos)
            e = IngestError::kBadVersion;
        return failWith(e, why);
    }
    state_ = State::kChunkHeader;
    accumFill_ = 0;
    return true;
}

bool
StreamIngest::consumeChunkHeader(const std::uint8_t *&p, std::size_t &n)
{
    constexpr std::size_t kChunkHeaderBytes = 16;
    std::size_t take =
        std::min<std::size_t>(n, kChunkHeaderBytes - accumFill_);
    std::memcpy(accum_ + accumFill_, p, take);
    accumFill_ += take;
    p += take;
    n -= take;
    if (accumFill_ < kChunkHeaderBytes)
        return true;

    chunkKind_ = get32le(accum_);
    std::uint32_t payload_bytes = get32le(accum_ + 8);
    chunkCrc_ = get32le(accum_ + 12);
    if (payload_bytes == 0)
        return failWith(IngestError::kBadChunk, "empty chunk payload");
    if (payload_bytes > limits_.maxChunkBytes)
        return failWith(IngestError::kBadChunk,
                        "chunk payload of " +
                            std::to_string(payload_bytes) +
                            " bytes exceeds the " +
                            std::to_string(limits_.maxChunkBytes) +
                            "-byte limit");
    payloadLeft_ = payload_bytes;
    crc_.reset();
    state_ = State::kPayload;
    accumFill_ = 0;
    return true;
}

bool
StreamIngest::consumePayload(const std::uint8_t *&p, std::size_t &n)
{
    std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, payloadLeft_));
    crc_.update(p, take);
    p += take;
    n -= take;
    payloadLeft_ -= take;
    if (payloadLeft_ > 0)
        return true;

    if (crc_.value() != chunkCrc_)
        return failWith(IngestError::kCrcMismatch,
                        "chunk CRC mismatch (kind " +
                            std::to_string(chunkKind_) + ")");
    ++chunksValidated_;
    if (chunkKind_ == kChunkFooter) {
        complete_ = true;
        state_ = State::kComplete;
    } else {
        state_ = State::kChunkHeader;
    }
    return true;
}

bool
StreamIngest::feed(const std::uint8_t *data, std::size_t n)
{
    if (state_ == State::kFailed)
        return false;
    if (n > 0 && state_ == State::kComplete)
        return failWith(IngestError::kTrailingData,
                        "bytes after the footer chunk");
    if (bytesConsumed_ + n > limits_.maxTotalBytes)
        return failWith(IngestError::kTooLarge,
                        "stream exceeds the " +
                            std::to_string(limits_.maxTotalBytes) +
                            "-byte limit");

    const std::uint8_t *p = data;
    while (n > 0) {
        // Account bytes as they are actually processed, so that on a
        // rejected chunk bytesConsumed() stops at the bad chunk rather
        // than covering everything the caller happened to hand us.
        std::size_t before = n;
        bool ok = true;
        switch (state_) {
        case State::kHeader:
            ok = consumeHeader(p, n);
            break;
        case State::kChunkHeader:
            ok = consumeChunkHeader(p, n);
            break;
        case State::kPayload:
            ok = consumePayload(p, n);
            break;
        case State::kComplete:
            ok = failWith(IngestError::kTrailingData,
                          "bytes after the footer chunk");
            break;
        case State::kFailed:
            ok = false;
            break;
        }
        bytesConsumed_ += before - n;
        if (!ok)
            return false;
    }
    return true;
}

bool
StreamIngest::finish()
{
    if (state_ == State::kFailed)
        return false;
    if (!complete_) {
        const char *what = "stream ended before the footer chunk";
        if (state_ == State::kHeader)
            what = "stream ended inside the file header";
        else if (state_ == State::kPayload)
            what = "stream ended inside a chunk payload";
        failWith(IngestError::kTruncated, what);
        return false;
    }
    return true;
}

} // namespace paralog::trace
