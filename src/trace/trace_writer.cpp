#include "trace/trace_writer.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/varint.hpp"
#include "trace/v2_block.hpp"

namespace paralog::trace {

TraceWriter::TraceWriter(const std::string &path, const TraceConfig &cfg,
                         std::uint32_t format)
    : cfg_(cfg), format_(format), path_(path), tmpPath_(path + ".tmp"),
      opBuf_(cfg.appThreads), latBuf_(cfg.appThreads),
      latRun_(cfg.appThreads), opCount(cfg.appThreads, 0),
      recordCount(cfg.appThreads, 0)
{
    if (format_ != kFormatVersion && format_ != kFormatVersionV2) {
        fail("unknown trace format version " + std::to_string(format_));
        return;
    }
    // Crash safety: all writing happens to `path.tmp`; only a
    // successful finalize() fsyncs and atomically renames it to `path`.
    // An interrupted recording therefore never leaves a
    // plausible-looking truncated trace at the requested name — at
    // worst a `.tmp` leftover, which the reader rejects (no footer).
    file_ = std::fopen(tmpPath_.c_str(), "wb");
    if (!file_) {
        fail("cannot open '" + tmpPath_ + "' for writing");
        return;
    }
    writeHeader();
}

TraceWriter::~TraceWriter()
{
    if (file_) {
        // Abandoned mid-recording (no finalize, or a failed one):
        // close and remove the partial temp file.
        std::fclose(file_);
        file_ = nullptr;
        std::remove(tmpPath_.c_str());
    }
}

void
TraceWriter::fail(const std::string &why)
{
    if (ok_)
        error_ = why;
    ok_ = false;
}

void
TraceWriter::writeHeader()
{
    std::uint8_t h[kHeaderBytes] = {};
    const auto &magic =
        format_ == kFormatVersionV2 ? kMagicV2 : kMagic;
    std::memcpy(h, magic.data(), magic.size());
    put32le(h + 8, format_);
    put32le(h + 12, kHeaderBytes);
    h[24] = static_cast<std::uint8_t>(cfg_.workload);
    h[25] = static_cast<std::uint8_t>(cfg_.lifeguard);
    h[26] = static_cast<std::uint8_t>(cfg_.mode);
    h[27] = static_cast<std::uint8_t>(cfg_.memoryModel);
    h[28] = static_cast<std::uint8_t>(cfg_.depTracking);
    h[29] = (cfg_.conflictAlerts ? kCfgConflictAlerts : 0) |
            (cfg_.accelIT ? kCfgAccelIT : 0) |
            (cfg_.accelIF ? kCfgAccelIF : 0) |
            (cfg_.accelMTLB ? kCfgAccelMTLB : 0) |
            (cfg_.liveParallel ? kCfgLiveParallel : 0);
    h[30] = cfg_.filterBits;
    put32le(h + 32, cfg_.appThreads);
    put32le(h + 36, cfg_.shadowShards);
    put64le(h + 40, cfg_.scale);
    put64le(h + 48, cfg_.seed);
    put64le(h + 56, cfg_.logBufferBytes);
    put64le(h + 64, totalOps_);
    put64le(h + 72, totalRecords_);
    put64le(h + 80, footerOffset_); // 0 until finalize rewrites the header
    put64le(h + 16, fnv1a(h + 24, 40));

    if (std::fwrite(h, 1, sizeof(h), file_) != sizeof(h))
        fail("short write (header)");
}

void
TraceWriter::flushChunk(std::uint32_t kind, std::uint32_t tid,
                        std::vector<std::uint8_t> &payload)
{
    if (!ok_ || payload.empty())
        return;
    if (kind == kChunkOps && format_ == kFormatVersionV2) {
        // v2: the chunk payload is the columnar re-blocking of the
        // buffered v1 op bytes. The buffer always holds whole ops
        // (appendOpBytes is called with one complete op at a time and
        // only flushes between calls), so the scan cannot legitimately
        // fail — a failure here means the recorder emitted bytes the
        // format grammar does not describe.
        std::vector<std::uint8_t> block;
        if (!encodeOpsBlock(payload.data(), payload.size(), block)) {
            fail("op stream does not scan as v1 ops (recorder bug)");
            return;
        }
        payload.swap(block);
    }
    std::uint8_t h[16];
    put32le(h, kind);
    put32le(h + 4, tid);
    put32le(h + 8, static_cast<std::uint32_t>(payload.size()));
    put32le(h + 12, crc32(payload.data(), payload.size()));
    if (std::fwrite(h, 1, sizeof(h), file_) != sizeof(h) ||
        std::fwrite(payload.data(), 1, payload.size(), file_) !=
            payload.size())
        fail("short write (chunk)");
    payload.clear();
}

void
TraceWriter::noteOp(ThreadId tid, bool is_record)
{
    ++opCount[tid];
    ++totalOps_;
    if (is_record) {
        ++recordCount[tid];
        ++totalRecords_;
    }
}

void
TraceWriter::appendOpBytes(ThreadId tid,
                           const std::vector<std::uint8_t> &op)
{
    if (!ok_)
        return;
    auto &buf = opBuf_[tid];
    buf.insert(buf.end(), op.begin(), op.end());
    if (buf.size() >= kChunkTargetBytes)
        flushChunk(kChunkOps, tid, buf);
}

void
TraceWriter::writeOpsChunk(ThreadId tid,
                           const std::vector<std::uint8_t> &v1_ops)
{
    if (!ok_)
        return;
    if (!opBuf_[tid].empty()) {
        fail("writeOpsChunk with buffered ops pending");
        return;
    }
    std::vector<std::uint8_t> payload = v1_ops;
    flushChunk(kChunkOps, tid, payload);
}

void
TraceWriter::writeLatencyChunk(ThreadId tid,
                               const std::vector<std::uint8_t> &payload)
{
    if (!ok_)
        return;
    std::vector<std::uint8_t> copy = payload;
    flushChunk(kChunkMetaLatency, tid, copy);
}

void
TraceWriter::flushLatencyRun(ThreadId tid)
{
    LatencyRun &run = latRun_[tid];
    if (run.count == 0)
        return;
    putVarint(latBuf_[tid], run.latency);
    putVarint(latBuf_[tid], run.count);
    run.count = 0;
    if (latBuf_[tid].size() >= kChunkTargetBytes)
        flushChunk(kChunkMetaLatency, tid, latBuf_[tid]);
}

void
TraceWriter::appendMetaLatency(ThreadId tid, Cycle latency)
{
    if (!ok_)
        return;
    LatencyRun &run = latRun_[tid];
    if (run.count > 0 && run.latency == latency) {
        ++run.count;
        return;
    }
    flushLatencyRun(tid);
    run.latency = latency;
    run.count = 1;
}

bool
TraceWriter::finalize(const TraceFooter &footer)
{
    if (!ok_ || finalized_)
        return ok_;
    for (ThreadId t = 0; t < opBuf_.size(); ++t)
        flushChunk(kChunkOps, t, opBuf_[t]);
    for (ThreadId t = 0; t < latBuf_.size(); ++t) {
        flushLatencyRun(t);
        flushChunk(kChunkMetaLatency, t, latBuf_[t]);
    }

    finalized_ = true; // writeHeader() now records the footer offset
    std::vector<std::uint8_t> f;
    putVarint(f, footer.app.size());
    for (const AppThreadStats &a : footer.app) {
        putVarint(f, a.execCycles);
        putVarint(f, a.logFullStall);
        putVarint(f, a.lockStall);
        putVarint(f, a.barrierStall);
        putVarint(f, a.drainStall);
        putVarint(f, a.caAckCycles);
        putVarint(f, a.storeBufStall);
        putVarint(f, a.retired);
        putVarint(f, a.programInsts);
        putVarint(f, a.doneAt);
    }
    for (ThreadId t = 0; t < cfg_.appThreads; ++t) {
        putVarint(f, t < opCount.size() ? opCount[t] : 0);
        putVarint(f, t < recordCount.size() ? recordCount[t] : 0);
    }
    putVarint(f, footer.lifeguard.size());
    for (const LifeguardThreadStats &l : footer.lifeguard) {
        putVarint(f, l.usefulCycles);
        putVarint(f, l.depStall);
        putVarint(f, l.caStall);
        putVarint(f, l.versionStall);
        putVarint(f, l.appStall);
        putVarint(f, l.recordsProcessed);
        putVarint(f, l.eventsHandled);
        putVarint(f, l.doneAt);
    }
    putVarint(f, footer.totalCycles);
    putVarint(f, footer.violations);
    putVarint(f, footer.versionsProduced);
    putVarint(f, footer.versionsConsumed);
    putVarint(f, footer.versionStallRetries);
    putVarint(f, footer.shadowFingerprint);
    // Additive field: old readers ignore trailing footer bytes, old
    // recordings simply lack it (migration preserves the absence).
    if (footer.hasViolationFingerprint)
        putVarint(f, footer.violationFingerprint);

    long footer_at = ok_ ? std::ftell(file_) : -1;
    flushChunk(kChunkFooter, kNoThread, f);

    if (ok_) {
        // Rewrite the header with the final totals and footer offset.
        footerOffset_ =
            footer_at < 0 ? 0 : static_cast<std::uint64_t>(footer_at);
        if (std::fseek(file_, 0, SEEK_SET) != 0)
            fail("seek to header failed");
        else
            writeHeader();
    }
    if (file_) {
        if (std::fflush(file_) != 0)
            fail("flush failed");
        // Durability before visibility: rename() must never publish a
        // file whose bytes the kernel has not accepted yet.
        if (ok_ && ::fsync(::fileno(file_)) != 0)
            fail("fsync failed");
        std::fclose(file_);
        file_ = nullptr;
    }
    if (ok_ && std::rename(tmpPath_.c_str(), path_.c_str()) != 0)
        fail("rename '" + tmpPath_ + "' -> '" + path_ + "' failed");
    if (!ok_)
        std::remove(tmpPath_.c_str());
    return ok_;
}

} // namespace paralog::trace
