#include "trace/migrate.hpp"

#include <sys/stat.h>

#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace paralog::trace {

MigrateResult
migrateTrace(const std::string &src, const std::string &dst,
             std::uint32_t dst_format)
{
    MigrateResult res;
    res.dstFormat = dst_format;
    if (dst_format != kFormatVersion && dst_format != kFormatVersionV2) {
        res.error =
            "unknown target format version " + std::to_string(dst_format);
        return res;
    }

    TraceReader reader(src);
    if (!reader.ok()) {
        res.error = reader.error();
        return res;
    }
    res.srcFormat = reader.formatVersion();
    res.srcBytes = reader.fileBytes();

    TraceWriter writer(dst, reader.config(), dst_format);
    writer.opCount = reader.footer().opCount;
    writer.recordCount = reader.footer().recordCount;
    writer.setTotals(reader.totalOps(), reader.totalRecords());

    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; writer.ok() && i < reader.chunkCount(); ++i) {
        std::uint32_t kind = reader.chunkKind(i);
        if (kind != kChunkOps && kind != kChunkMetaLatency)
            continue; // the footer is re-encoded below
        if (!reader.chunkPayload(i, payload)) {
            res.error = reader.error();
            return res;
        }
        if (kind == kChunkOps)
            writer.writeOpsChunk(reader.chunkTid(i), payload);
        else
            writer.writeLatencyChunk(reader.chunkTid(i), payload);
        ++res.chunks;
    }
    if (!writer.finalize(reader.footer())) {
        res.error = writer.error();
        return res;
    }

    struct stat st;
    if (::stat(dst.c_str(), &st) == 0 && st.st_size >= 0)
        res.dstBytes = static_cast<std::uint64_t>(st.st_size);
    res.ok = true;
    return res;
}

} // namespace paralog::trace
