#include "trace/codec.hpp"

namespace paralog::trace {

bool
payloadCarriesAddr(EventType type)
{
    switch (type) {
      case EventType::kLoad:
      case EventType::kStore:
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kBarrierPass:
      case EventType::kProduceVersion:
        return true;
      default:
        return false;
    }
}

bool
payloadCarriesRange(EventType type)
{
    switch (type) {
      case EventType::kMallocEnd:
      case EventType::kFreeBegin:
      case EventType::kSyscallBegin:
      case EventType::kSyscallEnd:
      case EventType::kCaBegin:
      case EventType::kCaEnd:
        return true;
      default:
        return false;
    }
}

void
encodeSideband(const EventRecord &rec, RecordId &last_rid,
               std::vector<std::uint8_t> &out)
{
    std::uint32_t flags = 0;
    if (rec.wrapper)
        flags |= kSbWrapper;
    if (rec.consumesVersion)
        flags |= kSbConsumesVersion;
    if (rec.version.valid())
        flags |= kSbVersionTag;
    if (rec.dst != 0)
        flags |= kSbDst;
    if (rec.src != 0)
        flags |= kSbSrc;
    if (rec.size != 0)
        flags |= kSbSize;
    if (rec.value != 0)
        flags |= kSbValue;
    if (!payloadCarriesAddr(rec.type) && rec.addr != 0)
        flags |= kSbAddr;
    // The payload reconstructs the range as [begin, begin + size());
    // ship it explicitly only when that would not round-trip.
    bool range_in_payload = payloadCarriesRange(rec.type) &&
                            rec.range.end >= rec.range.begin;
    if (!range_in_payload &&
        (rec.range.begin != 0 || rec.range.end != 0))
        flags |= kSbRange;
    if (rec.caSeq != kNoCaSeq)
        flags |= kSbCaSeq;
    flags |= static_cast<std::uint32_t>(rec.syscall) << kSbSyscallShift;
    flags |= static_cast<std::uint32_t>(rec.caKind) << kSbCaKindShift;
    if (!rec.arcs.empty())
        flags |= kSbArcs;

    putVarint(out, flags);
    putVarint(out, rec.rid - last_rid);
    last_rid = rec.rid;
    if (flags & kSbDst)
        out.push_back(rec.dst);
    if (flags & kSbSrc)
        out.push_back(rec.src);
    if (flags & kSbSize)
        out.push_back(rec.size);
    if (flags & kSbValue)
        putVarint(out, rec.value);
    if (flags & kSbAddr)
        putVarint(out, rec.addr);
    if (flags & kSbRange) {
        putVarint(out, rec.range.begin);
        putVarint(out, rec.range.end);
    }
    if (flags & kSbCaSeq)
        putVarint(out, rec.caSeq);
    if (flags & kSbVersionTag) {
        putVarint(out, rec.version.tid);
        putVarint(out, rec.version.rid);
    }
    if (flags & kSbArcs)
        putVarint(out, rec.arcs.size());
}

Addr
RecordDecoder::decodeAddr(StridePredictor &p, bool hit, ByteCursor &c,
                          bool &ok)
{
    Addr addr = 0;
    if (hit) {
        ok = ok && p.valid;
        addr = p.lastAddr + static_cast<Addr>(p.lastStride);
    } else if (p.valid) {
        std::uint64_t z = 0;
        ok = ok && c.getVarint(z);
        addr = p.lastAddr + static_cast<Addr>(zigzagDecode(z));
    } else {
        std::uint64_t raw = 0;
        ok = ok && c.getVarint(raw);
        addr = raw;
    }
    if (ok)
        p.advance(addr);
    return addr;
}

bool
RecordDecoder::decode(ByteCursor &c, std::uint32_t payload_bytes,
                      EventRecord &out)
{
    out.reset(); // in place: keeps arcs' capacity across calls

    // ---- sideband ----
    std::uint64_t flags = 0, rid_delta = 0;
    if (!c.getVarint(flags) || !c.getVarint(rid_delta))
        return false;
    out.rid = lastRid_ + rid_delta;
    lastRid_ = out.rid;
    out.wrapper = flags & kSbWrapper;
    out.consumesVersion = flags & kSbConsumesVersion;
    out.syscall =
        static_cast<SyscallKind>((flags >> kSbSyscallShift) & 0x3);
    out.caKind = static_cast<HighLevelKind>((flags >> kSbCaKindShift) & 0x3);
    std::uint8_t b = 0;
    if ((flags & kSbDst) && c.getByte(b))
        out.dst = b;
    if ((flags & kSbSrc) && c.getByte(b))
        out.src = b;
    if ((flags & kSbSize) && c.getByte(b))
        out.size = b;
    std::uint64_t v = 0;
    if (flags & kSbValue) {
        if (!c.getVarint(v))
            return false;
        out.value = v;
    }
    Addr sb_addr = 0;
    if (flags & kSbAddr) {
        if (!c.getVarint(sb_addr))
            return false;
    }
    AddrRange sb_range{};
    if (flags & kSbRange) {
        if (!c.getVarint(sb_range.begin) || !c.getVarint(sb_range.end))
            return false;
    }
    if (flags & kSbCaSeq) {
        if (!c.getVarint(v))
            return false;
        out.caSeq = v;
    }
    if (flags & kSbVersionTag) {
        std::uint64_t vtid = 0, vrid = 0;
        if (!c.getVarint(vtid) || !c.getVarint(vrid))
            return false;
        out.version = VersionTag{static_cast<ThreadId>(vtid), vrid};
    }
    std::uint64_t arc_count = 0;
    if (flags & kSbArcs) {
        if (!c.getVarint(arc_count) || arc_count > 4096)
            return false;
    }

    // ---- payload (exactly payload_bytes long) ----
    if (c.remaining() < payload_bytes)
        return false;
    ByteCursor pl(c.pos, payload_bytes);
    c.pos += payload_bytes;

    std::uint8_t header = 0;
    if (!pl.getByte(header))
        return false;
    out.type = static_cast<EventType>(header & kCodecTypeMask);
    if (static_cast<unsigned>(out.type) >
        static_cast<unsigned>(EventType::kProduceVersion))
        return false;
    bool hit = header & kCodecHitBit;
    bool ok = true;

    switch (out.type) {
      case EventType::kLoad:
        out.addr = decodeAddr(pred_[0], hit, pl, ok);
        break;
      case EventType::kStore:
        out.addr = decodeAddr(pred_[1], hit, pl, ok);
        break;
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kBarrierPass:
        out.addr = decodeAddr(pred_[2], hit, pl, ok);
        break;
      case EventType::kMallocEnd:
      case EventType::kFreeBegin:
      case EventType::kSyscallBegin:
      case EventType::kSyscallEnd:
      case EventType::kCaBegin:
      case EventType::kCaEnd: {
        Addr begin = decodeAddr(pred_[2], hit, pl, ok);
        std::uint64_t len = 0;
        ok = ok && pl.getVarint(len);
        out.range = AddrRange{begin, begin + len};
        break;
      }
      case EventType::kProduceVersion: {
        out.addr = decodeAddr(pred_[2], hit, pl, ok);
        std::uint32_t ignored = 0;
        ok = ok && pl.getFixed32(ignored);
        break;
      }
      default:
        break;
    }
    if (!ok)
        return false;

    if (flags & kSbAddr)
        out.addr = sb_addr;
    if (flags & kSbRange)
        out.range = sb_range;

    out.arcs.reserve(arc_count);
    for (std::uint64_t i = 0; i < arc_count; ++i) {
        std::uint8_t tid = 0;
        std::uint64_t rid = 0;
        if (!pl.getByte(tid) || !pl.getVarint(rid))
            return false;
        out.arcs.push_back(DepArc{tid, rid});
    }
    if (out.consumesVersion || out.version.valid()) {
        std::uint32_t ignored = 0;
        if (!pl.getFixed32(ignored))
            return false;
    }

    // The decoder must consume exactly what the encoder charged.
    return pl.atEnd();
}

} // namespace paralog::trace
