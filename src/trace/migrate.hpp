/**
 * @file
 * Offline trace migration between the v1 and v2 containers.
 *
 * Migration is chunk-by-chunk and order-preserving: every ops chunk is
 * decoded to its v1 op bytes and re-emitted in the target format,
 * latency chunks are copied verbatim, and the footer is re-encoded
 * from the parsed source footer (preserving the presence/absence of
 * appended fields). Because the two containers share header layout,
 * chunk framing and all payload encodings except the ops re-blocking,
 * a v1 → v2 → v1 round trip reproduces the original file
 * byte-for-byte. Unknown chunk kinds — which readers of either format
 * ignore — are not carried across.
 */

#ifndef PARALOG_TRACE_MIGRATE_HPP
#define PARALOG_TRACE_MIGRATE_HPP

#include <cstdint>
#include <string>

namespace paralog::trace {

struct MigrateResult
{
    bool ok = false;
    std::string error;
    std::uint32_t srcFormat = 0;
    std::uint32_t dstFormat = 0;
    std::uint64_t srcBytes = 0;
    std::uint64_t dstBytes = 0;
    std::uint64_t chunks = 0; ///< ops + latency chunks carried over
};

/** Rewrite the recording at @p src into @p dst using @p dst_format
 *  (kFormatVersion or kFormatVersionV2). Same-format migration is a
 *  valid (normalizing) copy. */
MigrateResult migrateTrace(const std::string &src, const std::string &dst,
                           std::uint32_t dst_format);

} // namespace paralog::trace

#endif // PARALOG_TRACE_MIGRATE_HPP
