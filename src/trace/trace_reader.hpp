/**
 * @file
 * Reader for `paralog-trace-v1` and `paralog-trace-v2` files.
 *
 * The whole file is mapped read-only (mmap; a heap read is the
 * fallback when mapping is unavailable) and open() validates the
 * header, indexes every chunk with one pass over the mapping, and
 * parses the footer. Chunk payload CRCs are checked lazily on first
 * access, preserving the streaming reader's corruption semantics:
 * opening a trace with a flipped payload byte succeeds, consuming the
 * poisoned chunk fails the reader.
 *
 * v1 ops chunks and latency chunks are consumed zero-copy — cursors
 * point straight into the mapping. v2 ops chunks decode back into
 * exact v1 op bytes (v2_block.hpp) either lazily per chunk, or — with
 * Options::decodeJobs > 1 — eagerly at open() on a transient worker
 * pool, after which every stream reads from the pre-decoded buffers.
 * Everything above the chunk layer is format-agnostic.
 *
 * Files without a footer (crashed recordings) are rejected, as is a
 * parallel-mode footer whose lifeguard stats list does not match the
 * recorded thread count (a structurally valid but self-inconsistent
 * footer would otherwise surface as an assertion deep inside replay).
 */

#ifndef PARALOG_TRACE_TRACE_READER_HPP
#define PARALOG_TRACE_TRACE_READER_HPP

#include <memory>
#include <string>
#include <vector>

#include "deliver/ca_manager.hpp"
#include "trace/codec.hpp"
#include "trace/format.hpp"

namespace paralog::trace {

/** One decoded journal op. Which fields are meaningful depends on
 *  `op` (see format.hpp). */
struct TraceOp
{
    OpCode op = OpCode::kRetire;
    std::uint64_t gseq = 0;  ///< global order across threads
    Cycle cycle = 0;         ///< simulated time it was applied
    std::uint64_t lgStep = 0;///< lifeguard steps completed before it

    RecordId retired = 0;          // kRetire
    EventRecord rec;               // kAppend / kAppendCa
    std::uint32_t chargedBytes = 0;
    RecordId rid = 0;              // kAttachArcs / kAnnotateConsume
    std::vector<DepArc> arcs;      // kAttachArcs
    VersionTag version;            // kAnnotateConsume / kInsertProduce
    Addr addr = 0;                 // kInsertProduce
    std::uint8_t size = 0;
    RecordId visLimit = kInvalidRecord; // kVisLimit
    CaBroadcast ca;                // kCaBroadcast

    /** Back to the default-constructed state, keeping the capacity of
     *  the three nested vectors (arcs, rec.arcs, ca.arrivalRid) — the
     *  op streams reuse one TraceOp per caller across the whole
     *  journal, and `*this = TraceOp{}` would free them every op. */
    void
    reset()
    {
        op = OpCode::kRetire;
        gseq = 0;
        cycle = 0;
        lgStep = 0;
        retired = 0;
        rec.reset();
        chargedBytes = 0;
        rid = 0;
        arcs.clear();
        version = VersionTag{};
        addr = 0;
        size = 0;
        visLimit = kInvalidRecord;
        ca.seq = 0;
        ca.issuer = kInvalidThread;
        ca.issuerEventRid = kInvalidRecord;
        ca.kind = HighLevelKind::kMallocEnd;
        ca.range = AddrRange{};
        ca.arrivalRid.clear();
    }
};

class TraceReader
{
  public:
    struct Options
    {
        /** Map the file instead of reading it onto the heap. The heap
         *  path exists for platforms/filesystems where mmap fails and
         *  so tests can cover both. */
        bool preferMmap = true;
        /** > 1: decode all v2 ops chunks eagerly at open() with this
         *  many worker threads (no effect on v1 files). 1 = decode
         *  lazily, chunk by chunk, as streams reach them. */
        unsigned decodeJobs = 1;
    };

    explicit TraceReader(const std::string &path)
        : TraceReader(path, Options{})
    {
    }
    TraceReader(const std::string &path, const Options &opts);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }

    const TraceConfig &config() const { return cfg_; }
    const TraceFooter &footer() const { return footer_; }
    std::uint64_t configFingerprint() const { return configFingerprint_; }
    std::uint64_t totalOps() const { return totalOps_; }
    std::uint64_t totalRecords() const { return totalRecords_; }
    /** kFormatVersion or kFormatVersionV2. */
    std::uint32_t formatVersion() const { return formatVersion_; }
    /** True when the file is mmap()ed (false on the heap fallback). */
    bool mapped() const { return map_ != nullptr; }
    std::uint64_t fileBytes() const { return size_; }

    // ---- chunk inventory (file order) for migration and the trace
    // inspector; payload access CRC-checks and, for v2 ops chunks,
    // decodes back to v1 op bytes. ----
    std::size_t chunkCount() const { return chunks_.size(); }
    std::uint32_t chunkKind(std::size_t i) const { return chunks_[i].kind; }
    std::uint32_t chunkTid(std::size_t i) const { return chunks_[i].tid; }
    std::uint32_t chunkBytes(std::size_t i) const
    {
        return chunks_[i].bytes;
    }
    bool chunkPayload(std::size_t i, std::vector<std::uint8_t> &out);

    /**
     * Sequential cursor over one thread's journal ops. Loads (and
     * CRC-checks) one chunk at a time. next() returns false at
     * end-of-stream; corruption fails the owning reader (ok() turns
     * false) and ends every stream.
     */
    class OpStream
    {
      public:
        bool next(TraceOp &out);

      private:
        friend class TraceReader;
        TraceReader *reader_ = nullptr;
        ThreadId tid_ = 0;
        std::size_t chunkIdx_ = 0; ///< next chunk (per-thread index)
        std::vector<std::uint8_t> buf_; ///< lazy v2 decode target
        ByteCursor cur_;
        RecordDecoder decoder_;
        std::uint64_t gseq_ = 0;
        Cycle cycle_ = 0;
        std::uint64_t lgStep_ = 0;
        RecordId retired_ = 0;
    };

    /** Cursor over one lifeguard thread's metadata-latency sideband. */
    class LatencyStream
    {
      public:
        /** False at end of stream. */
        bool next(Cycle &latency);
        bool exhausted() const;

      private:
        friend class TraceReader;
        TraceReader *reader_ = nullptr;
        ThreadId tid_ = 0;
        std::size_t chunkIdx_ = 0;
        std::vector<std::uint8_t> buf_; ///< unused (latency is never
                                        ///< re-coded); keeps the chunk
                                        ///< loader interface uniform
        ByteCursor cur_;
        Cycle runLatency_ = 0;
        std::uint64_t runLeft_ = 0;
    };

    OpStream opStream(ThreadId tid);
    LatencyStream latencyStream(ThreadId tid);

  private:
    struct ChunkRef
    {
        std::uint64_t offset = 0; ///< payload offset in the mapping
        std::uint32_t bytes = 0;
        std::uint32_t crc = 0;
        std::uint32_t kind = 0;
        std::uint32_t tid = 0;
    };

    void fail(const std::string &why);
    void openSpan(const std::string &path, const Options &opts);
    void parseHeader();
    void indexChunks();
    void parseFooter(const std::vector<std::uint8_t> &payload);
    void predecodeParallel(unsigned jobs);
    /** CRC-check chunk @p i; false (reader failed) on mismatch. */
    bool checkChunk(std::size_t i);
    /** Point @p cur at chunk @p i's v1 op/latency bytes, CRC-checking
     *  and (v2 ops) decoding as needed. @p buf backs lazy decodes. */
    bool cursorForChunk(std::size_t i, std::vector<std::uint8_t> &buf,
                       ByteCursor &cur);

    bool ok_ = true;
    std::string error_;
    TraceConfig cfg_;
    TraceFooter footer_;
    std::uint32_t formatVersion_ = kFormatVersion;
    std::uint64_t configFingerprint_ = 0;
    std::uint64_t totalOps_ = 0;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t footerOffset_ = 0;

    // The file span: mmap'ed (map_ owns it) or heap-read (fileBuf_).
    const std::uint8_t *data_ = nullptr;
    std::uint64_t size_ = 0;
    void *map_ = nullptr;
    std::size_t mapLen_ = 0;
    std::vector<std::uint8_t> fileBuf_;

    std::vector<ChunkRef> chunks_;        ///< every chunk, file order
    std::vector<char> chunkChecked_;      ///< CRC verified already
    std::vector<std::vector<std::size_t>> opChunks_;  ///< per-thread
    std::vector<std::vector<std::size_t>> latChunks_; ///< indices
    std::vector<std::vector<std::uint8_t>> decoded_;  ///< eager v2
};

} // namespace paralog::trace

#endif // PARALOG_TRACE_TRACE_READER_HPP
