/**
 * @file
 * Streaming reader for `paralog-trace-v1` files. open() validates the
 * magic, format version and header; chunks are indexed up front (one
 * sequential header scan) and their payloads loaded — and CRC-checked —
 * lazily, one chunk at a time per stream, so reading stays bounded in
 * memory like writing. Files without a footer (crashed recordings) are
 * rejected.
 */

#ifndef PARALOG_TRACE_TRACE_READER_HPP
#define PARALOG_TRACE_TRACE_READER_HPP

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "deliver/ca_manager.hpp"
#include "trace/codec.hpp"
#include "trace/format.hpp"

namespace paralog::trace {

/** One decoded journal op. Which fields are meaningful depends on
 *  `op` (see format.hpp). */
struct TraceOp
{
    OpCode op = OpCode::kRetire;
    std::uint64_t gseq = 0;  ///< global order across threads
    Cycle cycle = 0;         ///< simulated time it was applied
    std::uint64_t lgStep = 0;///< lifeguard steps completed before it

    RecordId retired = 0;          // kRetire
    EventRecord rec;               // kAppend / kAppendCa
    std::uint32_t chargedBytes = 0;
    RecordId rid = 0;              // kAttachArcs / kAnnotateConsume
    std::vector<DepArc> arcs;      // kAttachArcs
    VersionTag version;            // kAnnotateConsume / kInsertProduce
    Addr addr = 0;                 // kInsertProduce
    std::uint8_t size = 0;
    RecordId visLimit = kInvalidRecord; // kVisLimit
    CaBroadcast ca;                // kCaBroadcast
};

class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }

    const TraceConfig &config() const { return cfg_; }
    const TraceFooter &footer() const { return footer_; }
    std::uint64_t configFingerprint() const { return configFingerprint_; }
    std::uint64_t totalOps() const { return totalOps_; }
    std::uint64_t totalRecords() const { return totalRecords_; }

    /**
     * Sequential cursor over one thread's journal ops. Loads (and
     * CRC-checks) one chunk at a time. next() returns false at
     * end-of-stream; corruption fails the owning reader (ok() turns
     * false) and ends every stream.
     */
    class OpStream
    {
      public:
        bool next(TraceOp &out);

      private:
        friend class TraceReader;
        TraceReader *reader_ = nullptr;
        ThreadId tid_ = 0;
        std::size_t chunkIdx_ = 0; ///< next chunk to load
        std::vector<std::uint8_t> buf_;
        ByteCursor cur_;
        RecordDecoder decoder_;
        std::uint64_t gseq_ = 0;
        Cycle cycle_ = 0;
        std::uint64_t lgStep_ = 0;
        RecordId retired_ = 0;
    };

    /** Cursor over one lifeguard thread's metadata-latency sideband. */
    class LatencyStream
    {
      public:
        /** False at end of stream. */
        bool next(Cycle &latency);
        bool exhausted() const;

      private:
        friend class TraceReader;
        TraceReader *reader_ = nullptr;
        ThreadId tid_ = 0;
        std::size_t chunkIdx_ = 0;
        std::vector<std::uint8_t> buf_;
        ByteCursor cur_;
        Cycle runLatency_ = 0;
        std::uint64_t runLeft_ = 0;
    };

    OpStream opStream(ThreadId tid);
    LatencyStream latencyStream(ThreadId tid);

  private:
    struct ChunkRef
    {
        long offset = 0; ///< payload file offset
        std::uint32_t bytes = 0;
        std::uint32_t crc = 0;
    };

    void fail(const std::string &why);
    bool loadChunk(const ChunkRef &ref, std::vector<std::uint8_t> &out);
    bool nextChunk(std::uint32_t kind, ThreadId tid, std::size_t &idx,
                   std::vector<std::uint8_t> &buf, ByteCursor &cur);
    void parseHeader();
    void indexChunks();
    void parseFooter(const std::vector<std::uint8_t> &payload);

    std::FILE *file_ = nullptr;
    bool ok_ = true;
    std::string error_;
    TraceConfig cfg_;
    TraceFooter footer_;
    std::uint64_t configFingerprint_ = 0;
    std::uint64_t totalOps_ = 0;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t footerOffset_ = 0;
    std::vector<std::vector<ChunkRef>> opChunks_;  ///< per thread
    std::vector<std::vector<ChunkRef>> latChunks_; ///< per thread
};

} // namespace paralog::trace

#endif // PARALOG_TRACE_TRACE_READER_HPP
