/**
 * @file
 * The `paralog-trace-v2` ops-chunk payload: a compressed columnar
 * re-blocking of a span of v1 journal op bytes.
 *
 * The v1 op stream interleaves fields with very different statistics —
 * opcodes (a handful of values, long runs), per-thread gseq/cycle/
 * lgStep delta varints (small, highly repetitive), and op bodies
 * (sideband + compressed payload, structurally repetitive). v2 splits
 * one chunk's ops into six column streams so those statistics line up
 * as long exact byte repeats, then runs the whole column section
 * through the LZ coder (common/lz.hpp):
 *
 *   payload = varint v1Len, lz(columnSection)
 *   columnSection = varint opCount,
 *                   6 x { varint colLen, colLen bytes }
 *   columns: 0 opcode bytes          (1 per op)
 *            1 d_gseq varints        (copied verbatim)
 *            2 d_cycle varints
 *            3 d_lgStep varints
 *            4 body length varints   (1 per op)
 *            5 body bytes            (concatenated verbatim)
 *
 * Varint spans are copied, never re-coded: decoding re-interleaves the
 * columns and reproduces the original v1 bytes *exactly* (enforced
 * against v1Len), which is what keeps every higher layer — op cursor,
 * record codec, replay, fingerprints — format-agnostic, and makes
 * v1→v2→v1 migration byte-identical.
 *
 * Splitting needs op boundaries, so the encoder embeds a structural
 * scanner for the v1 op grammar (recorder.cpp is the source of truth;
 * the scanner only walks field sizes, it decodes nothing).
 */

#ifndef PARALOG_TRACE_V2_BLOCK_HPP
#define PARALOG_TRACE_V2_BLOCK_HPP

#include <cstdint>
#include <vector>

namespace paralog::trace {

/**
 * Structurally scan one whole v1 op at @p c (see recorder.cpp for the
 * grammar), advancing the cursor past it. Returns false on malformed
 * input, leaving the cursor wherever the scan stopped. On success
 * @p prelude_end receives the offset (relative to the op start) of the
 * first body byte.
 */
bool scanOneOp(const std::uint8_t *&pos, const std::uint8_t *end,
               std::size_t &prelude_end);

/**
 * Encode @p n bytes of whole v1 ops at @p v1 into a v2 ops-chunk
 * payload, appended to @p out. Returns false if the input does not
 * scan as a sequence of complete v1 ops (nothing is appended then).
 */
bool encodeOpsBlock(const std::uint8_t *v1, std::size_t n,
                    std::vector<std::uint8_t> &out);

/**
 * Decode a v2 ops-chunk payload back into the exact original v1 op
 * bytes (replacing @p out's contents). Returns false on any
 * structural violation: bad compression stream, column over/underrun,
 * an opcode above kMaxOpCode, or a reconstruction whose size differs
 * from the recorded v1Len. @p max_v1_bytes bounds the decoded size
 * (hostile length fields must not drive allocation).
 */
bool decodeOpsBlock(const std::uint8_t *v2, std::size_t n,
                    std::vector<std::uint8_t> &out,
                    std::size_t max_v1_bytes);

} // namespace paralog::trace

#endif // PARALOG_TRACE_V2_BLOCK_HPP
