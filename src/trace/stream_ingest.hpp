/**
 * @file
 * Incremental validator for a `paralog-trace-v1` byte stream arriving
 * in arbitrary pieces (a socket, a pipe, a file read in fragments).
 *
 * The file reader (trace_reader.hpp) validates a complete file it can
 * seek around in; a daemon ingesting an upload cannot wait for the
 * whole stream before judging it. StreamIngest checks everything that
 * can be checked as bytes arrive:
 *
 *   - the 96-byte header (magic, version, config fingerprint, thread
 *     count) as soon as 96 bytes have been fed — via the same
 *     parseTraceHeader() the file reader uses, so the paths can't drift;
 *   - every chunk header (known size limits) and every chunk payload's
 *     CRC-32, computed incrementally so payloads are never buffered;
 *   - completion: a stream is complete exactly when its footer chunk
 *     has been fully received and verified. Bytes after the footer are
 *     an error (kTrailingData), as is EOF before it (kTruncated).
 *
 * A StreamIngest validates one stream; errors are sticky (the first
 * failure wins and further feed() calls are ignored), so one corrupt
 * or truncated upload poisons only its own session — never the daemon.
 */

#ifndef PARALOG_TRACE_STREAM_INGEST_HPP
#define PARALOG_TRACE_STREAM_INGEST_HPP

#include <cstdint>
#include <string>

#include "trace/format.hpp"

namespace paralog::trace {

/** Why an ingest failed — stable taxonomy for accounting/metrics. */
enum class IngestError
{
    kNone = 0,
    kBadMagic,    ///< first 8 bytes are not "PLTRACE1"
    kBadVersion,  ///< unsupported format version
    kBadHeader,   ///< header decodes but is self-inconsistent
    kBadChunk,    ///< chunk header violates structural limits
    kCrcMismatch, ///< chunk payload CRC-32 check failed
    kTooLarge,    ///< stream exceeded Limits::maxTotalBytes
    kTrailingData,///< bytes arrived after the footer chunk
    kTruncated,   ///< EOF before the footer chunk completed
};

/** Short stable name for @p e ("crc-mismatch", "truncated", ...). */
const char *ingestErrorName(IngestError e);

class StreamIngest
{
  public:
    /** Structural bounds enforced during ingest (admission control
     *  applies stricter per-client budgets on top of these). */
    struct Limits
    {
        std::uint64_t maxTotalBytes = 256ull << 20;
        std::uint32_t maxChunkBytes = 16u << 20;
    };

    StreamIngest() = default;
    explicit StreamIngest(const Limits &limits) : limits_(limits) {}

    /**
     * Feed the next @p n stream bytes. Returns true while the stream
     * is still healthy; false once it has failed (sticky — subsequent
     * calls are no-ops). Feeding after complete() fails the stream
     * with kTrailingData.
     */
    bool feed(const std::uint8_t *data, std::size_t n);

    /**
     * Signal EOF. A stream that is not complete() becomes kTruncated.
     * Returns complete() && !failed().
     */
    bool finish();

    bool failed() const { return error_ != IngestError::kNone; }
    /** Footer chunk fully received and CRC-verified. */
    bool complete() const { return complete_; }
    IngestError errorCode() const { return error_; }
    const std::string &error() const { return errorText_; }

    /** True once the 96-byte header has been fed and validated. */
    bool headerDone() const { return state_ != State::kHeader; }
    /** Valid once headerDone(). */
    const ParsedHeader &header() const { return header_; }

    std::uint64_t bytesConsumed() const { return bytesConsumed_; }
    std::uint64_t chunksValidated() const { return chunksValidated_; }

  private:
    enum class State
    {
        kHeader,      ///< accumulating the 96-byte file header
        kChunkHeader, ///< accumulating a 16-byte chunk header
        kPayload,     ///< streaming a chunk payload through the CRC
        kComplete,    ///< footer verified; any further byte is an error
        kFailed,
    };

    bool failWith(IngestError e, const std::string &why);
    bool consumeHeader(const std::uint8_t *&p, std::size_t &n);
    bool consumeChunkHeader(const std::uint8_t *&p, std::size_t &n);
    bool consumePayload(const std::uint8_t *&p, std::size_t &n);

    Limits limits_;
    State state_ = State::kHeader;
    IngestError error_ = IngestError::kNone;
    std::string errorText_;
    bool complete_ = false;

    std::uint8_t accum_[kHeaderBytes] = {}; ///< header/chunk-header bytes
    std::size_t accumFill_ = 0;

    // Current chunk (valid in kPayload).
    std::uint32_t chunkKind_ = 0;
    std::uint32_t chunkCrc_ = 0;
    std::uint64_t payloadLeft_ = 0;
    Crc32 crc_;

    ParsedHeader header_;
    std::uint64_t bytesConsumed_ = 0;
    std::uint64_t chunksValidated_ = 0;
};

} // namespace paralog::trace

#endif // PARALOG_TRACE_STREAM_INGEST_HPP
