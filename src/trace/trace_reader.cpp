#include "trace/trace_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "trace/v2_block.hpp"

namespace paralog::trace {

namespace {

/** Structural ceiling on one decoded v2 ops chunk: the writer flushes
 *  at ~56 KB of v1 bytes, so anything near this limit is hostile. */
inline constexpr std::size_t kMaxDecodedChunkBytes = 16u << 20;

} // namespace

TraceReader::TraceReader(const std::string &path, const Options &opts)
{
    openSpan(path, opts);
    if (ok_)
        parseHeader();
    if (ok_)
        indexChunks();
    if (ok_ && formatVersion_ == kFormatVersionV2 && opts.decodeJobs > 1)
        predecodeParallel(opts.decodeJobs);
}

TraceReader::~TraceReader()
{
    if (map_)
        ::munmap(map_, mapLen_);
}

void
TraceReader::fail(const std::string &why)
{
    if (ok_)
        error_ = (formatVersion_ == kFormatVersionV2
                      ? "paralog-trace-v2: "
                      : "paralog-trace-v1: ") +
                 why;
    ok_ = false;
}

void
TraceReader::openSpan(const std::string &path, const Options &opts)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        fail("cannot open '" + path + "'");
        return;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        fail("cannot stat '" + path + "'");
        return;
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ > 0 && opts.preferMmap) {
        void *m = ::mmap(nullptr, static_cast<std::size_t>(size_),
                         PROT_READ, MAP_PRIVATE, fd, 0);
        if (m != MAP_FAILED) {
            map_ = m;
            mapLen_ = static_cast<std::size_t>(size_);
            data_ = static_cast<const std::uint8_t *>(m);
        }
    }
    if (!map_ && size_ > 0) {
        // Heap fallback: read the whole file once. Same span interface,
        // no lifetime differences for anything above this function.
        fileBuf_.resize(static_cast<std::size_t>(size_));
        std::uint64_t off = 0;
        while (off < size_) {
            ssize_t got = ::read(fd, fileBuf_.data() + off,
                                 static_cast<std::size_t>(size_ - off));
            if (got <= 0) {
                ::close(fd);
                fail("I/O error reading '" + path + "'");
                return;
            }
            off += static_cast<std::uint64_t>(got);
        }
        data_ = fileBuf_.data();
    }
    ::close(fd);
}

void
TraceReader::parseHeader()
{
    if (size_ < kHeaderBytes) {
        fail("file shorter than the header");
        return;
    }
    ParsedHeader parsed;
    std::string why = parseTraceHeader(data_, parsed);
    // Report under the right banner even when the header itself is the
    // problem — the magic decides which format we were reading.
    formatVersion_ = parsed.formatVersion;
    if (!why.empty()) {
        fail(why);
        return;
    }
    cfg_ = parsed.cfg;
    configFingerprint_ = parsed.configFingerprint;
    totalOps_ = parsed.totalOps;
    totalRecords_ = parsed.totalRecords;
    footerOffset_ = parsed.footerOffset;
    if (footerOffset_ == 0) {
        fail("recording was never finalized (no footer)");
        return;
    }
    opChunks_.resize(cfg_.appThreads);
    latChunks_.resize(cfg_.appThreads);
}

void
TraceReader::indexChunks()
{
    std::uint64_t pos = kHeaderBytes;
    bool footer_seen = false;
    while (pos < size_) {
        if (size_ - pos < 16) {
            fail("EOF in the middle of a chunk header (truncated "
                 "recording)");
            return;
        }
        const std::uint8_t *h = data_ + pos;
        ChunkRef ref;
        ref.kind = get32le(h);
        ref.tid = get32le(h + 4);
        ref.bytes = get32le(h + 8);
        ref.crc = get32le(h + 12);
        ref.offset = pos + 16;
        if (ref.bytes > size_ - ref.offset) {
            fail("chunk payload of " + std::to_string(ref.bytes) +
                 " bytes at offset " + std::to_string(ref.offset) +
                 " extends past end of file (truncated recording)");
            return;
        }
        pos = ref.offset + ref.bytes;

        std::size_t idx = chunks_.size();
        if (ref.kind == kChunkOps || ref.kind == kChunkMetaLatency) {
            if (ref.tid >= cfg_.appThreads) {
                fail("chunk for out-of-range thread");
                return;
            }
            (ref.kind == kChunkOps ? opChunks_ : latChunks_)[ref.tid]
                .push_back(idx);
        }
        chunks_.push_back(ref);
        if (ref.kind == kChunkFooter) {
            // The footer is validated eagerly (CRC included): replay
            // needs it before any stream is consumed, and a recording
            // whose results are unreadable is useless anyway.
            chunkChecked_.resize(chunks_.size(), 0);
            std::vector<std::uint8_t> payload;
            if (!chunkPayload(idx, payload))
                return;
            parseFooter(payload);
            if (!ok_)
                return;
            footer_seen = true;
        }
        // Unknown kinds are indexed but never consumed (forward
        // compatibility).
    }
    chunkChecked_.resize(chunks_.size(), 0);
    if (!footer_seen)
        fail("footer chunk missing");
}

bool
TraceReader::checkChunk(std::size_t i)
{
    if (!ok_)
        return false;
    if (i < chunkChecked_.size() && chunkChecked_[i])
        return true;
    const ChunkRef &ref = chunks_[i];
    if (crc32(data_ + ref.offset, ref.bytes) != ref.crc) {
        fail("chunk CRC mismatch (corrupt trace)");
        return false;
    }
    if (i < chunkChecked_.size())
        chunkChecked_[i] = 1;
    return true;
}

bool
TraceReader::chunkPayload(std::size_t i, std::vector<std::uint8_t> &out)
{
    out.clear();
    if (chunkChecked_.size() < chunks_.size())
        chunkChecked_.resize(chunks_.size(), 0);
    if (!checkChunk(i))
        return false;
    const ChunkRef &ref = chunks_[i];
    if (ref.kind == kChunkOps && formatVersion_ == kFormatVersionV2) {
        if (!decoded_.empty() && !decoded_[i].empty()) {
            out = decoded_[i];
            return true;
        }
        if (!decodeOpsBlock(data_ + ref.offset, ref.bytes, out,
                            kMaxDecodedChunkBytes)) {
            out.clear();
            fail("v2 ops chunk does not decode (corrupt trace)");
            return false;
        }
        return true;
    }
    out.assign(data_ + ref.offset, data_ + ref.offset + ref.bytes);
    return true;
}

void
TraceReader::predecodeParallel(unsigned jobs)
{
    std::vector<std::size_t> work;
    for (std::size_t i = 0; i < chunks_.size(); ++i)
        if (chunks_[i].kind == kChunkOps)
            work.push_back(i);
    if (work.empty())
        return;
    decoded_.resize(chunks_.size());

    // Transient worker pool over an atomic work index — the same shape
    // runMatrix uses. Chunks decode independently, so the result is
    // identical to the lazy path regardless of scheduling.
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::string first_error;
    auto worker = [&] {
        for (;;) {
            std::size_t w = next.fetch_add(1);
            if (w >= work.size())
                return;
            std::size_t i = work[w];
            const ChunkRef &ref = chunks_[i];
            std::string why;
            if (crc32(data_ + ref.offset, ref.bytes) != ref.crc)
                why = "chunk CRC mismatch (corrupt trace)";
            else if (!decodeOpsBlock(data_ + ref.offset, ref.bytes,
                                     decoded_[i],
                                     kMaxDecodedChunkBytes))
                why = "v2 ops chunk does not decode (corrupt trace)";
            if (!why.empty()) {
                std::lock_guard<std::mutex> lock(mu);
                if (first_error.empty())
                    first_error = why;
            }
        }
    };
    unsigned n = std::min<std::size_t>(jobs, work.size());
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    if (!first_error.empty()) {
        fail(first_error);
        return;
    }
    for (std::size_t i : work)
        chunkChecked_[i] = 1;
}

void
TraceReader::parseFooter(const std::vector<std::uint8_t> &payload)
{
    ByteCursor c(payload.data(), payload.size());
    std::uint64_t n = 0;
    bool good = c.getVarint(n) && n == cfg_.appThreads;
    footer_.app.resize(good ? n : 0);
    for (AppThreadStats &a : footer_.app) {
        good = good && c.getVarint(a.execCycles) &&
               c.getVarint(a.logFullStall) && c.getVarint(a.lockStall) &&
               c.getVarint(a.barrierStall) && c.getVarint(a.drainStall) &&
               c.getVarint(a.caAckCycles) && c.getVarint(a.storeBufStall) &&
               c.getVarint(a.retired) && c.getVarint(a.programInsts) &&
               c.getVarint(a.doneAt);
    }
    footer_.opCount.resize(cfg_.appThreads);
    footer_.recordCount.resize(cfg_.appThreads);
    for (ThreadId t = 0; good && t < cfg_.appThreads; ++t) {
        good = c.getVarint(footer_.opCount[t]) &&
               c.getVarint(footer_.recordCount[t]);
    }
    std::uint64_t nlg = 0;
    good = good && c.getVarint(nlg) && nlg <= 1024;
    footer_.lifeguard.resize(good ? nlg : 0);
    for (LifeguardThreadStats &l : footer_.lifeguard) {
        good = good && c.getVarint(l.usefulCycles) &&
               c.getVarint(l.depStall) && c.getVarint(l.caStall) &&
               c.getVarint(l.versionStall) && c.getVarint(l.appStall) &&
               c.getVarint(l.recordsProcessed) &&
               c.getVarint(l.eventsHandled) && c.getVarint(l.doneAt);
    }
    good = good && c.getVarint(footer_.totalCycles) &&
           c.getVarint(footer_.violations) &&
           c.getVarint(footer_.versionsProduced) &&
           c.getVarint(footer_.versionsConsumed) &&
           c.getVarint(footer_.versionStallRetries) &&
           c.getVarint(footer_.shadowFingerprint);
    if (!good) {
        fail("malformed footer");
        return;
    }
    // Appended-field region: absent in older recordings, ignored
    // beyond what this reader knows (additive evolution).
    if (!c.atEnd()) {
        if (!c.getVarint(footer_.violationFingerprint)) {
            fail("malformed footer");
            return;
        }
        footer_.hasViolationFingerprint = true;
    }
    // A parallel recording runs one lifeguard core per app core; a
    // footer disagreeing with the header's thread count (e.g. an empty
    // lifeguard list behind an intact config fingerprint — the header
    // checksum does not cover the footer) would otherwise surface as
    // an assertion failure deep inside replay's footer self-check.
    if (cfg_.mode == MonitorMode::kParallel &&
        footer_.lifeguard.size() != cfg_.appThreads)
        fail("footer has lifeguard stats for " +
             std::to_string(footer_.lifeguard.size()) +
             " cores in a " + std::to_string(cfg_.appThreads) +
             "-core parallel recording (corrupt or tampered footer)");
}

bool
TraceReader::cursorForChunk(std::size_t i, std::vector<std::uint8_t> &buf,
                            ByteCursor &cur)
{
    if (!checkChunk(i)) {
        buf.clear();
        cur = ByteCursor(buf.data(), 0);
        return false;
    }
    const ChunkRef &ref = chunks_[i];
    if (ref.kind == kChunkOps && formatVersion_ == kFormatVersionV2) {
        if (!decoded_.empty() && !decoded_[i].empty()) {
            // Eagerly decoded at open(): zero-copy from the shared
            // buffer (streams never mutate what they read).
            cur = ByteCursor(decoded_[i].data(), decoded_[i].size());
            return true;
        }
        if (!decodeOpsBlock(data_ + ref.offset, ref.bytes, buf,
                            kMaxDecodedChunkBytes)) {
            buf.clear();
            cur = ByteCursor(buf.data(), 0);
            fail("v2 ops chunk does not decode (corrupt trace)");
            return false;
        }
        cur = ByteCursor(buf.data(), buf.size());
        return true;
    }
    // v1 ops and latency chunks: read straight out of the mapping.
    cur = ByteCursor(data_ + ref.offset, ref.bytes);
    return true;
}

TraceReader::OpStream
TraceReader::opStream(ThreadId tid)
{
    OpStream s;
    s.reader_ = this;
    s.tid_ = tid;
    return s;
}

TraceReader::LatencyStream
TraceReader::latencyStream(ThreadId tid)
{
    LatencyStream s;
    s.reader_ = this;
    s.tid_ = tid;
    return s;
}

bool
TraceReader::OpStream::next(TraceOp &out)
{
    while (cur_.atEnd()) {
        const auto &order = reader_->opChunks_[tid_];
        if (!reader_->ok_ || chunkIdx_ >= order.size())
            return false;
        std::size_t i = order[chunkIdx_++];
        if (!reader_->cursorForChunk(i, buf_, cur_))
            return false;
    }

    auto bad = [this](const char *why) {
        reader_->fail(std::string("malformed op stream: ") + why);
        return false;
    };

    std::uint8_t opcode = 0;
    std::uint64_t d_gseq = 0, d_cycle = 0, d_lg = 0;
    if (!cur_.getByte(opcode) || opcode > kMaxOpCode)
        return bad("bad opcode");
    if (!cur_.getVarint(d_gseq) || !cur_.getVarint(d_cycle) ||
        !cur_.getVarint(d_lg))
        return bad("truncated op prelude");
    gseq_ += d_gseq;
    cycle_ += d_cycle;
    lgStep_ += d_lg;

    out.reset(); // in place: keeps the nested vectors' capacity
    out.op = static_cast<OpCode>(opcode);
    out.gseq = gseq_;
    out.cycle = cycle_;
    out.lgStep = lgStep_;

    std::uint64_t v = 0;
    switch (out.op) {
      case OpCode::kRetire:
        if (!cur_.getVarint(v))
            return bad("truncated retire");
        retired_ += v;
        out.retired = retired_;
        return true;

      case OpCode::kAppend:
      case OpCode::kAppendCa:
        if (!cur_.getVarint(v))
            return bad("truncated append");
        out.chargedBytes = static_cast<std::uint32_t>(v);
        if (!decoder_.decode(cur_, out.chargedBytes, out.rec))
            return bad("record decode failed");
        out.rec.tid = tid_;
        return true;

      case OpCode::kAttachArcs: {
        std::uint64_t n = 0;
        if (!cur_.getVarint(out.rid) || !cur_.getVarint(n) || n > 4096)
            return bad("truncated arcs");
        out.arcs.resize(n);
        for (DepArc &a : out.arcs) {
            std::uint8_t tid = 0;
            if (!cur_.getByte(tid) || !cur_.getVarint(a.rid))
                return bad("truncated arc");
            a.tid = tid;
        }
        return true;
      }

      case OpCode::kAnnotateConsume: {
        std::uint64_t vtid = 0;
        if (!cur_.getVarint(out.rid) || !cur_.getVarint(vtid) ||
            !cur_.getVarint(out.version.rid))
            return bad("truncated consume annotation");
        out.version.tid = static_cast<ThreadId>(vtid);
        return true;
      }

      case OpCode::kInsertProduce: {
        std::uint64_t vtid = 0;
        std::uint8_t size = 0;
        if (!cur_.getVarint(out.rid) || !cur_.getVarint(vtid) ||
            !cur_.getVarint(out.version.rid) ||
            !cur_.getVarint(out.addr) || !cur_.getByte(size))
            return bad("truncated produce insertion");
        out.version.tid = static_cast<ThreadId>(vtid);
        out.size = size;
        return true;
      }

      case OpCode::kVisLimit:
        if (!cur_.getVarint(v))
            return bad("truncated visibility limit");
        out.visLimit = (v == 0) ? kInvalidRecord : v - 1;
        return true;

      case OpCode::kCaBroadcast: {
        std::uint8_t kind = 0;
        std::uint64_t n = 0, begin = 0, len = 0;
        if (!cur_.getVarint(out.ca.seq) ||
            !cur_.getVarint(out.ca.issuerEventRid) ||
            !cur_.getByte(kind) || !cur_.getVarint(begin) ||
            !cur_.getVarint(len) || !cur_.getVarint(n) || n > 1024)
            return bad("truncated CA broadcast");
        out.ca.kind = static_cast<HighLevelKind>(kind);
        out.ca.range = AddrRange{begin, begin + len};
        out.ca.issuer = tid_;
        out.ca.arrivalRid.resize(n);
        out.ca.waitersRemaining = 0;
        for (RecordId &r : out.ca.arrivalRid) {
            if (!cur_.getVarint(v))
                return bad("truncated CA arrival");
            r = (v == 0) ? kInvalidRecord : v - 1;
            if (r != kInvalidRecord)
                ++out.ca.waitersRemaining;
        }
        return true;
      }
    }
    return bad("unreachable opcode");
}

bool
TraceReader::LatencyStream::next(Cycle &latency)
{
    while (runLeft_ == 0) {
        while (cur_.atEnd()) {
            const auto &order = reader_->latChunks_[tid_];
            if (!reader_->ok_ || chunkIdx_ >= order.size())
                return false;
            std::size_t i = order[chunkIdx_++];
            if (!reader_->cursorForChunk(i, buf_, cur_))
                return false;
        }
        if (!cur_.getVarint(runLatency_) || !cur_.getVarint(runLeft_)) {
            reader_->fail("malformed latency stream");
            return false;
        }
    }
    --runLeft_;
    latency = runLatency_;
    return true;
}

bool
TraceReader::LatencyStream::exhausted() const
{
    return runLeft_ == 0 && cur_.atEnd() &&
           chunkIdx_ >= reader_->latChunks_[tid_].size();
}

} // namespace paralog::trace
