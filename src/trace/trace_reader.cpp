#include "trace/trace_reader.hpp"

#include <cstring>

namespace paralog::trace {

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_) {
        fail("cannot open '" + path + "'");
        return;
    }
    parseHeader();
    if (ok_)
        indexChunks();
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

void
TraceReader::fail(const std::string &why)
{
    if (ok_)
        error_ = "paralog-trace-v1: " + why;
    ok_ = false;
}

void
TraceReader::parseHeader()
{
    std::uint8_t h[kHeaderBytes];
    if (std::fread(h, 1, sizeof(h), file_) != sizeof(h)) {
        fail("file shorter than the header");
        return;
    }
    ParsedHeader parsed;
    std::string why = parseTraceHeader(h, parsed);
    if (!why.empty()) {
        fail(why);
        return;
    }
    cfg_ = parsed.cfg;
    configFingerprint_ = parsed.configFingerprint;
    totalOps_ = parsed.totalOps;
    totalRecords_ = parsed.totalRecords;
    footerOffset_ = parsed.footerOffset;
    if (footerOffset_ == 0) {
        fail("recording was never finalized (no footer)");
        return;
    }
    opChunks_.resize(cfg_.appThreads);
    latChunks_.resize(cfg_.appThreads);
}

void
TraceReader::indexChunks()
{
    // Learn the file size first: a chunk header whose payload length
    // points past EOF is a truncated recording, and catching it here
    // gives one clear diagnosis instead of a confusing tail of
    // "footer chunk missing" after fseek() silently lands past the end.
    long data_start = std::ftell(file_);
    if (data_start < 0 || std::fseek(file_, 0, SEEK_END) != 0) {
        fail("cannot determine file size");
        return;
    }
    long file_size = std::ftell(file_);
    if (file_size < 0 || std::fseek(file_, data_start, SEEK_SET) != 0) {
        fail("cannot determine file size");
        return;
    }

    bool footer_seen = false;
    for (;;) {
        std::uint8_t h[16];
        std::size_t got = std::fread(h, 1, sizeof(h), file_);
        if (got == 0) {
            if (std::ferror(file_)) {
                fail("I/O error reading chunk header");
                return;
            }
            break; // clean EOF at a chunk boundary
        }
        if (got != sizeof(h)) {
            fail(std::ferror(file_)
                     ? "I/O error reading chunk header"
                     : "EOF in the middle of a chunk header (truncated "
                       "recording)");
            return;
        }
        std::uint32_t kind = get32le(h);
        std::uint32_t tid = get32le(h + 4);
        ChunkRef ref;
        ref.bytes = get32le(h + 8);
        ref.crc = get32le(h + 12);
        ref.offset = std::ftell(file_);
        if (ref.offset < 0) {
            fail("ftell failed");
            return;
        }
        if (ref.bytes >
            static_cast<std::uint64_t>(file_size - ref.offset)) {
            fail("chunk payload of " + std::to_string(ref.bytes) +
                 " bytes at offset " + std::to_string(ref.offset) +
                 " extends past end of file (truncated recording)");
            return;
        }

        if (kind == kChunkOps || kind == kChunkMetaLatency) {
            if (tid >= cfg_.appThreads) {
                fail("chunk for out-of-range thread");
                return;
            }
            (kind == kChunkOps ? opChunks_ : latChunks_)[tid].push_back(
                ref);
        } else if (kind == kChunkFooter) {
            std::vector<std::uint8_t> payload;
            if (!loadChunk(ref, payload))
                return;
            parseFooter(payload);
            footer_seen = true;
            continue; // loadChunk advanced the file position
        }
        // Unknown kinds are skipped (forward compatibility).
        if (std::fseek(file_, ref.offset + static_cast<long>(ref.bytes),
                       SEEK_SET) != 0) {
            fail("seek past chunk failed");
            return;
        }
    }
    if (!footer_seen)
        fail("footer chunk missing");
}

bool
TraceReader::loadChunk(const ChunkRef &ref, std::vector<std::uint8_t> &out)
{
    // On any failure the buffer is cleared before returning: a partial
    // fread leaves the tail of `out` holding stale bytes (from the
    // previous chunk, or zero-fill), and a decoder that keeps running
    // over them would misparse garbage instead of stopping at a clean
    // "truncated" diagnosis.
    out.resize(ref.bytes);
    if (std::fseek(file_, ref.offset, SEEK_SET) != 0) {
        out.clear();
        fail("seek to chunk payload failed");
        return false;
    }
    std::size_t got =
        ref.bytes > 0 ? std::fread(out.data(), 1, out.size(), file_) : 0;
    if (got != out.size()) {
        bool io_error = std::ferror(file_);
        out.clear();
        fail(io_error
                 ? "I/O error reading chunk payload"
                 : "EOF in the middle of a chunk payload (got " +
                       std::to_string(got) + " of " +
                       std::to_string(ref.bytes) + " bytes at offset " +
                       std::to_string(ref.offset) +
                       "; truncated recording)");
        return false;
    }
    if (crc32(out.data(), out.size()) != ref.crc) {
        out.clear();
        fail("chunk CRC mismatch (corrupt trace)");
        return false;
    }
    return true;
}

void
TraceReader::parseFooter(const std::vector<std::uint8_t> &payload)
{
    ByteCursor c(payload.data(), payload.size());
    std::uint64_t n = 0;
    bool good = c.getVarint(n) && n == cfg_.appThreads;
    footer_.app.resize(good ? n : 0);
    for (AppThreadStats &a : footer_.app) {
        good = good && c.getVarint(a.execCycles) &&
               c.getVarint(a.logFullStall) && c.getVarint(a.lockStall) &&
               c.getVarint(a.barrierStall) && c.getVarint(a.drainStall) &&
               c.getVarint(a.caAckCycles) && c.getVarint(a.storeBufStall) &&
               c.getVarint(a.retired) && c.getVarint(a.programInsts) &&
               c.getVarint(a.doneAt);
    }
    footer_.opCount.resize(cfg_.appThreads);
    footer_.recordCount.resize(cfg_.appThreads);
    for (ThreadId t = 0; good && t < cfg_.appThreads; ++t) {
        good = c.getVarint(footer_.opCount[t]) &&
               c.getVarint(footer_.recordCount[t]);
    }
    std::uint64_t nlg = 0;
    good = good && c.getVarint(nlg) && nlg <= 1024;
    footer_.lifeguard.resize(good ? nlg : 0);
    for (LifeguardThreadStats &l : footer_.lifeguard) {
        good = good && c.getVarint(l.usefulCycles) &&
               c.getVarint(l.depStall) && c.getVarint(l.caStall) &&
               c.getVarint(l.versionStall) && c.getVarint(l.appStall) &&
               c.getVarint(l.recordsProcessed) &&
               c.getVarint(l.eventsHandled) && c.getVarint(l.doneAt);
    }
    good = good && c.getVarint(footer_.totalCycles) &&
           c.getVarint(footer_.violations) &&
           c.getVarint(footer_.versionsProduced) &&
           c.getVarint(footer_.versionsConsumed) &&
           c.getVarint(footer_.versionStallRetries) &&
           c.getVarint(footer_.shadowFingerprint);
    if (!good)
        fail("malformed footer");
}

bool
TraceReader::nextChunk(std::uint32_t kind, ThreadId tid, std::size_t &idx,
                       std::vector<std::uint8_t> &buf, ByteCursor &cur)
{
    const auto &chunks =
        (kind == kChunkOps ? opChunks_ : latChunks_)[tid];
    if (!ok_ || idx >= chunks.size())
        return false;
    if (!loadChunk(chunks[idx], buf)) {
        // loadChunk cleared `buf` (possibly reallocating): re-anchor the
        // cursor so the stream never dangles into freed memory and every
        // later next() sees a clean at-end state, not stale bytes.
        cur = ByteCursor(buf.data(), buf.size());
        return false;
    }
    ++idx;
    cur = ByteCursor(buf.data(), buf.size());
    return true;
}

TraceReader::OpStream
TraceReader::opStream(ThreadId tid)
{
    OpStream s;
    s.reader_ = this;
    s.tid_ = tid;
    return s;
}

TraceReader::LatencyStream
TraceReader::latencyStream(ThreadId tid)
{
    LatencyStream s;
    s.reader_ = this;
    s.tid_ = tid;
    return s;
}

bool
TraceReader::OpStream::next(TraceOp &out)
{
    if (cur_.atEnd() &&
        !reader_->nextChunk(kChunkOps, tid_, chunkIdx_, buf_, cur_))
        return false;

    auto bad = [this](const char *why) {
        reader_->fail(std::string("malformed op stream: ") + why);
        return false;
    };

    std::uint8_t opcode = 0;
    std::uint64_t d_gseq = 0, d_cycle = 0, d_lg = 0;
    if (!cur_.getByte(opcode) || opcode > kMaxOpCode)
        return bad("bad opcode");
    if (!cur_.getVarint(d_gseq) || !cur_.getVarint(d_cycle) ||
        !cur_.getVarint(d_lg))
        return bad("truncated op prelude");
    gseq_ += d_gseq;
    cycle_ += d_cycle;
    lgStep_ += d_lg;

    out = TraceOp{};
    out.op = static_cast<OpCode>(opcode);
    out.gseq = gseq_;
    out.cycle = cycle_;
    out.lgStep = lgStep_;

    std::uint64_t v = 0;
    switch (out.op) {
      case OpCode::kRetire:
        if (!cur_.getVarint(v))
            return bad("truncated retire");
        retired_ += v;
        out.retired = retired_;
        return true;

      case OpCode::kAppend:
      case OpCode::kAppendCa:
        if (!cur_.getVarint(v))
            return bad("truncated append");
        out.chargedBytes = static_cast<std::uint32_t>(v);
        if (!decoder_.decode(cur_, out.chargedBytes, out.rec))
            return bad("record decode failed");
        out.rec.tid = tid_;
        return true;

      case OpCode::kAttachArcs: {
        std::uint64_t n = 0;
        if (!cur_.getVarint(out.rid) || !cur_.getVarint(n) || n > 4096)
            return bad("truncated arcs");
        out.arcs.resize(n);
        for (DepArc &a : out.arcs) {
            std::uint8_t tid = 0;
            if (!cur_.getByte(tid) || !cur_.getVarint(a.rid))
                return bad("truncated arc");
            a.tid = tid;
        }
        return true;
      }

      case OpCode::kAnnotateConsume: {
        std::uint64_t vtid = 0;
        if (!cur_.getVarint(out.rid) || !cur_.getVarint(vtid) ||
            !cur_.getVarint(out.version.rid))
            return bad("truncated consume annotation");
        out.version.tid = static_cast<ThreadId>(vtid);
        return true;
      }

      case OpCode::kInsertProduce: {
        std::uint64_t vtid = 0;
        std::uint8_t size = 0;
        if (!cur_.getVarint(out.rid) || !cur_.getVarint(vtid) ||
            !cur_.getVarint(out.version.rid) ||
            !cur_.getVarint(out.addr) || !cur_.getByte(size))
            return bad("truncated produce insertion");
        out.version.tid = static_cast<ThreadId>(vtid);
        out.size = size;
        return true;
      }

      case OpCode::kVisLimit:
        if (!cur_.getVarint(v))
            return bad("truncated visibility limit");
        out.visLimit = (v == 0) ? kInvalidRecord : v - 1;
        return true;

      case OpCode::kCaBroadcast: {
        std::uint8_t kind = 0;
        std::uint64_t n = 0, begin = 0, len = 0;
        if (!cur_.getVarint(out.ca.seq) ||
            !cur_.getVarint(out.ca.issuerEventRid) ||
            !cur_.getByte(kind) || !cur_.getVarint(begin) ||
            !cur_.getVarint(len) || !cur_.getVarint(n) || n > 1024)
            return bad("truncated CA broadcast");
        out.ca.kind = static_cast<HighLevelKind>(kind);
        out.ca.range = AddrRange{begin, begin + len};
        out.ca.issuer = tid_;
        out.ca.arrivalRid.resize(n);
        out.ca.waitersRemaining = 0;
        for (RecordId &r : out.ca.arrivalRid) {
            if (!cur_.getVarint(v))
                return bad("truncated CA arrival");
            r = (v == 0) ? kInvalidRecord : v - 1;
            if (r != kInvalidRecord)
                ++out.ca.waitersRemaining;
        }
        return true;
      }
    }
    return bad("unreachable opcode");
}

bool
TraceReader::LatencyStream::next(Cycle &latency)
{
    while (runLeft_ == 0) {
        if (cur_.atEnd() &&
            !reader_->nextChunk(kChunkMetaLatency, tid_, chunkIdx_, buf_,
                                cur_))
            return false;
        if (!cur_.getVarint(runLatency_) || !cur_.getVarint(runLeft_)) {
            reader_->fail("malformed latency stream");
            return false;
        }
    }
    --runLeft_;
    latency = runLatency_;
    return true;
}

bool
TraceReader::LatencyStream::exhausted() const
{
    return runLeft_ == 0 && cur_.atEnd() &&
           chunkIdx_ >= reader_->latChunks_[tid_].size();
}

} // namespace paralog::trace
