/**
 * @file
 * Small bit-manipulation helpers used by the cache and shadow-memory
 * models.
 */

#ifndef PARALOG_COMMON_BITOPS_HPP
#define PARALOG_COMMON_BITOPS_HPP

#include <cstdint>

#include "common/logging.hpp"

namespace paralog {

inline constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for v > 0. */
inline constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

inline constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

inline constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract a bit field [lo, lo+width) from v. */
inline constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    return (v >> lo) & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1));
}

} // namespace paralog

#endif // PARALOG_COMMON_BITOPS_HPP
