#include "common/fault_injection.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

namespace paralog {

namespace {

std::mutex &
armMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, std::uint64_t> &
armedFaults()
{
    static std::map<std::string, std::uint64_t> faults;
    return faults;
}

/** Parse "point=value;point=value" looking for @p point. A bare
 *  "point" (no '=') arms it with value 0. Separators: ';' or ','. */
std::optional<std::uint64_t>
lookupSpec(const char *spec, const std::string &point)
{
    std::string s(spec);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t end = s.find_first_of(";,", pos);
        if (end == std::string::npos)
            end = s.size();
        std::string entry = s.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        std::size_t eq = entry.find('=');
        std::string name = entry.substr(0, eq);
        if (name != point)
            continue;
        if (eq == std::string::npos)
            return 0;
        return std::strtoull(entry.c_str() + eq + 1, nullptr, 10);
    }
    return std::nullopt;
}

/** PR 4/6 environment hooks, kept as aliases for their new names. */
const char *
legacyAlias(const std::string &point)
{
    if (point == "cell.fail")
        return "PARALOG_FAIL_CELL";
    if (point == "lg.fail")
        return "PARALOG_FAIL_LG";
    return nullptr;
}

} // namespace

std::optional<std::uint64_t>
faultValue(const std::string &point)
{
    {
        std::lock_guard<std::mutex> lock(armMutex());
        auto it = armedFaults().find(point);
        if (it != armedFaults().end())
            return it->second;
    }
    if (const char *spec = std::getenv("PARALOG_FAULT")) {
        std::optional<std::uint64_t> v = lookupSpec(spec, point);
        if (v)
            return v;
    }
    if (const char *alias = legacyAlias(point)) {
        if (const char *s = std::getenv(alias))
            return std::strtoull(s, nullptr, 10);
    }
    return std::nullopt;
}

bool
faultHits(const std::string &point, std::uint64_t value)
{
    std::optional<std::uint64_t> v = faultValue(point);
    return v && *v == value;
}

void
armFault(const std::string &point, std::uint64_t value)
{
    std::lock_guard<std::mutex> lock(armMutex());
    armedFaults()[point] = value;
}

void
clearFault(const std::string &point)
{
    std::lock_guard<std::mutex> lock(armMutex());
    armedFaults().erase(point);
}

void
clearAllFaults()
{
    std::lock_guard<std::mutex> lock(armMutex());
    armedFaults().clear();
}

} // namespace paralog
