#include "common/interval_set.hpp"

namespace paralog {

void
IntervalSet::insert(Addr begin, Addr end)
{
    if (begin >= end)
        return;
    // Find the first range that could touch [begin, end).
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= begin) {
            // Overlapping or adjacent on the left: extend it.
            begin = prev->first;
            end = std::max(end, prev->second);
            it = ranges_.erase(prev);
        }
    }
    // Absorb everything overlapping or adjacent on the right.
    while (it != ranges_.end() && it->first <= end) {
        end = std::max(end, it->second);
        it = ranges_.erase(it);
    }
    ranges_.emplace(begin, end);
}

void
IntervalSet::erase(Addr begin, Addr end)
{
    if (begin >= end)
        return;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > begin)
            it = prev;
    }
    while (it != ranges_.end() && it->first < end) {
        Addr rb = it->first;
        Addr re = it->second;
        it = ranges_.erase(it);
        if (rb < begin)
            ranges_.emplace(rb, begin);
        if (re > end) {
            ranges_.emplace(end, re);
            break;
        }
    }
}

bool
IntervalSet::contains(Addr addr) const
{
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin())
        return false;
    --it;
    return addr < it->second;
}

bool
IntervalSet::overlaps(Addr begin, Addr end) const
{
    if (begin >= end)
        return false;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > begin)
            return true;
    }
    return it != ranges_.end() && it->first < end;
}

bool
IntervalSet::covers(Addr begin, Addr end) const
{
    if (begin >= end)
        return true;
    auto it = ranges_.upper_bound(begin);
    if (it == ranges_.begin())
        return false;
    --it;
    return begin >= it->first && end <= it->second;
}

std::uint64_t
IntervalSet::coveredBytes() const
{
    std::uint64_t total = 0;
    for (const auto &kv : ranges_)
        total += kv.second - kv.first;
    return total;
}

} // namespace paralog
