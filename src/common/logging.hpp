/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef PARALOG_COMMON_LOGGING_HPP
#define PARALOG_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace paralog {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort the simulation because of an internal invariant violation (a
 * simulator bug, never a user error). Calls std::abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate because the simulation cannot continue due to a user-visible
 * condition (bad configuration, invalid arguments). Calls std::exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; the simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; the simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benches for clean output). */
void setQuiet(bool quiet);

} // namespace paralog

#define PARALOG_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::paralog::panic("assertion '%s' failed at %s:%d: %s", #cond,   \
                             __FILE__, __LINE__,                            \
                             ::paralog::strprintf(__VA_ARGS__).c_str());    \
        }                                                                   \
    } while (0)

#endif // PARALOG_COMMON_LOGGING_HPP
