/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef PARALOG_COMMON_LOGGING_HPP
#define PARALOG_COMMON_LOGGING_HPP

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace paralog {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * What panic() carries when panic-throw mode is enabled: the simulation
 * is wedged or an invariant broke, but the *process* can carry on (the
 * matrix runner marks the cell failed and keeps draining its queue).
 */
class SimPanicError : public std::runtime_error
{
  public:
    explicit SimPanicError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Abort the simulation because of an internal invariant violation (a
 * simulator bug, never a user error). Calls std::abort() — unless
 * panic-throw mode is enabled, in which case it throws SimPanicError so
 * a harness running many independent simulations can contain the
 * failure to one of them.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Switch panic() between aborting (default; death tests and single-run
 * tools rely on it) and throwing SimPanicError. Returns the previous
 * setting so scoped users can restore it. Thread-safe: the flag is
 * atomic, and panics on any worker thread throw on that thread.
 */
bool setPanicThrows(bool throws);

/**
 * Terminate because the simulation cannot continue due to a user-visible
 * condition (bad configuration, invalid arguments). Calls std::exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; the simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; the simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benches for clean output). */
void setQuiet(bool quiet);

} // namespace paralog

#define PARALOG_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::paralog::panic("assertion '%s' failed at %s:%d: %s", #cond,   \
                             __FILE__, __LINE__,                            \
                             ::paralog::strprintf(__VA_ARGS__).c_str());    \
        }                                                                   \
    } while (0)

#endif // PARALOG_COMMON_LOGGING_HPP
