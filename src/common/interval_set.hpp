/**
 * @file
 * Ordered set of disjoint half-open address ranges. Used by the hardware
 * range table (ConflictAlert memory-range parameters, paper section 5.4)
 * and by lifeguard allocation bookkeeping.
 */

#ifndef PARALOG_COMMON_INTERVAL_SET_HPP
#define PARALOG_COMMON_INTERVAL_SET_HPP

#include <cstdint>
#include <map>

#include "common/types.hpp"

namespace paralog {

class IntervalSet
{
  public:
    /** Insert [begin, end), merging with any overlapping/adjacent ranges. */
    void insert(Addr begin, Addr end);
    void insert(const AddrRange &r) { insert(r.begin, r.end); }

    /** Remove [begin, end), splitting partially covered ranges. */
    void erase(Addr begin, Addr end);
    void erase(const AddrRange &r) { erase(r.begin, r.end); }

    /** True iff addr is covered by some range. */
    bool contains(Addr addr) const;

    /** True iff [begin, end) intersects any stored range. */
    bool overlaps(Addr begin, Addr end) const;
    bool overlaps(const AddrRange &r) const { return overlaps(r.begin, r.end); }

    /** True iff [begin, end) is entirely covered. */
    bool covers(Addr begin, Addr end) const;

    std::size_t size() const { return ranges_.size(); }
    bool empty() const { return ranges_.empty(); }
    void clear() { ranges_.clear(); }

    /** Total number of bytes covered. */
    std::uint64_t coveredBytes() const;

    const std::map<Addr, Addr> &ranges() const { return ranges_; }

  private:
    // Maps range begin -> range end, disjoint and non-adjacent.
    std::map<Addr, Addr> ranges_;
};

} // namespace paralog

#endif // PARALOG_COMMON_INTERVAL_SET_HPP
