/**
 * @file
 * Unified fault-injection registry.
 *
 * PR 4 and PR 6 grew ad-hoc failure seams (PARALOG_FAIL_CELL,
 * PARALOG_FAIL_LG) as the deterministic way to exercise containment
 * paths; the daemon adds several more (drop a connection, corrupt a
 * chunk CRC, stall a worker, fail a job). This registry gives them one
 * naming scheme and two arming mechanisms:
 *
 *  - Environment: PARALOG_FAULT="point=value;point=value" — e.g.
 *    PARALOG_FAULT="cell.fail=3;daemon.stall-worker=50". The legacy
 *    variables PARALOG_FAIL_CELL and PARALOG_FAIL_LG remain supported
 *    as aliases for cell.fail and lg.fail (explicit PARALOG_FAULT
 *    entries win over aliases).
 *
 *  - Programmatic: armFault()/clearFault() from tests that share the
 *    process with running daemon threads, where setenv() mid-flight
 *    would race getenv() callers. Programmatic arms win over both.
 *
 * Fault points (value semantics in parentheses):
 *
 *   cell.fail            matrix cell index that panics instead of running
 *   lg.fail              lifeguard thread id that panics in concurrent replay
 *   job.fail             daemon job sequence number that panics in its worker
 *   daemon.drop-conn     accepted-connection sequence number to drop on accept
 *   daemon.corrupt-crc   ingest session id whose next chunk CRC is flipped
 *   daemon.stall-worker  milliseconds each daemon job stalls before running
 *
 * Queries are cold-path (once per cell / connection / job), so they
 * re-read the environment every time: tests that setenv() between runs
 * keep working without an explicit reload hook.
 */

#ifndef PARALOG_COMMON_FAULT_INJECTION_HPP
#define PARALOG_COMMON_FAULT_INJECTION_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace paralog {

/**
 * The armed value of @p point, or nullopt when the point is not armed.
 * Precedence: programmatic arm, then a PARALOG_FAULT entry, then a
 * legacy alias variable.
 */
std::optional<std::uint64_t> faultValue(const std::string &point);

/** True iff faultValue(point) == value (the common "is it my turn to
 *  fail?" query). */
bool faultHits(const std::string &point, std::uint64_t value);

/** Arm @p point programmatically (thread-safe; wins over environment). */
void armFault(const std::string &point, std::uint64_t value);

/** Disarm a programmatic arm (environment arms are unaffected). */
void clearFault(const std::string &point);

/** Disarm every programmatic arm. */
void clearAllFaults();

} // namespace paralog

#endif // PARALOG_COMMON_FAULT_INJECTION_HPP
