#include "common/lz.hpp"

#include <cstring>

#include "common/varint.hpp"

namespace paralog {

namespace {

// Greedy hash-table matcher: one candidate position per 4-byte-prefix
// hash bucket, most recent wins. The columnar op streams this coder is
// pointed at are dominated by short repeating patterns, where the most
// recent occurrence is also the one giving self-overlapping run
// matches, so a single-entry table performs within a few percent of a
// chain while keeping compression O(n).
inline constexpr std::size_t kHashBits = 15;

inline std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

} // namespace

void
lzCompress(const std::uint8_t *data, std::size_t n,
           std::vector<std::uint8_t> &out)
{
    putVarint(out, n);
    if (n == 0)
        return;

    std::vector<std::size_t> table(std::size_t(1) << kHashBits,
                                   SIZE_MAX);
    std::size_t pos = 0;
    std::size_t lit_start = 0;

    auto flush = [&](std::size_t lit_end) {
        putVarint(out, lit_end - lit_start);
        out.insert(out.end(), data + lit_start, data + lit_end);
    };

    while (pos + kLzMinMatch <= n) {
        std::uint32_t h = hash4(data + pos);
        std::size_t cand = table[h];
        table[h] = pos;

        std::size_t len = 0;
        if (cand != SIZE_MAX &&
            std::memcmp(data + cand, data + pos, kLzMinMatch) == 0) {
            len = kLzMinMatch;
            while (pos + len < n && data[cand + len] == data[pos + len])
                ++len;
        }
        if (len < kLzMinMatch) {
            ++pos;
            continue;
        }
        flush(pos);
        putVarint(out, len - kLzMinMatch);
        putVarint(out, pos - cand);
        // Seed the table inside the match so the next repeat of this
        // region is found; sampling every other byte keeps long runs
        // cheap to skip over.
        std::size_t stop = pos + len;
        for (pos += 1; pos + kLzMinMatch <= stop; pos += 2)
            table[hash4(data + pos)] = pos;
        pos = stop;
        lit_start = pos;
    }
    // Trailing literals (none when the input ended exactly on a match —
    // the decoder stops at rawLen and expects no empty tail token).
    if (lit_start < n)
        flush(n);
}

bool
lzDecompress(const std::uint8_t *data, std::size_t n,
             std::vector<std::uint8_t> &out, std::size_t max_out)
{
    ByteCursor c(data, n);
    std::uint64_t raw_len = 0;
    if (!c.getVarint(raw_len) || raw_len > max_out)
        return false;
    out.clear();
    out.reserve(raw_len);

    while (out.size() < raw_len) {
        std::uint64_t lit = 0;
        if (!c.getVarint(lit) || lit > c.remaining() ||
            lit > raw_len - out.size())
            return false;
        out.insert(out.end(), c.pos, c.pos + lit);
        c.pos += lit;
        if (out.size() == raw_len)
            break;

        std::uint64_t len = 0, dist = 0;
        if (!c.getVarint(len) || !c.getVarint(dist))
            return false;
        len += kLzMinMatch;
        if (dist == 0 || dist > out.size() || len > raw_len - out.size())
            return false;
        // Matches may self-overlap (dist < len): copy byte-wise from
        // the already-reconstructed output.
        std::size_t from = out.size() - static_cast<std::size_t>(dist);
        for (std::uint64_t i = 0; i < len; ++i)
            out.push_back(out[from + i]);
    }
    return c.atEnd();
}

} // namespace paralog
