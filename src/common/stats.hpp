/**
 * @file
 * Lightweight named statistics: scalar counters and histograms, grouped
 * into a StatSet that can be dumped for benches and inspected by tests.
 */

#ifndef PARALOG_COMMON_STATS_HPP
#define PARALOG_COMMON_STATS_HPP

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace paralog {

/**
 * Order-invariant min / median / max summary of repeated samples (the
 * `--repeat` aggregation of the scenario-matrix runner). Samples are
 * sorted on demand, so the summary is identical no matter which order
 * concurrent repeats complete in. Median is the lower middle element —
 * exact and integer-valued for any repeat count.
 */
template <typename T>
class SampleSummaryT
{
  public:
    void
    add(T v)
    {
        samples_.push_back(v);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }
    T min() const { return samples_.empty() ? T{} : sorted().front(); }
    T max() const { return samples_.empty() ? T{} : sorted().back(); }

    T
    median() const
    {
        if (samples_.empty())
            return T{};
        return sorted()[(samples_.size() - 1) / 2];
    }

    /** True iff every sample equals every other (deterministic repeats
     *  of the same configuration must satisfy this). */
    bool
    allEqual() const
    {
        return samples_.empty() || sorted().front() == sorted().back();
    }

  private:
    const std::vector<T> &
    sorted() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
        return samples_;
    }

    mutable std::vector<T> samples_;
    mutable bool sorted_ = true;
};

using SampleSummary = SampleSummaryT<std::uint64_t>;
using WallClockSummary = SampleSummaryT<double>;

/**
 * Monotonic scalar counter. Backed by a relaxed atomic so that
 * monitor-side counters can be *sampled* from another host thread
 * (the concurrent-mode progress watchdog) without a data race.
 * Writers are still expected to be serialized per counter — each
 * counter has a single owning thread or is updated under its
 * component's mutex — the atomic only makes cross-thread sampling
 * well-defined, not concurrent increments contention-proof. inc()
 * uses an atomic RMW anyway so an accidental second writer degrades
 * to a benign ordering question instead of lost updates.
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &o)
        : value_(o.value_.load(std::memory_order_relaxed))
    {
    }
    Counter &
    operator=(const Counter &o)
    {
        value_.store(o.value_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        return *this;
    }

    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Power-of-two bucketed histogram: bucket k counts samples in
 * [2^k, 2^(k+1)) with bucket 0 holding samples of 0 and 1.
 */
class Histogram
{
  public:
    Histogram() : buckets_(64, 0) {}

    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /** Smallest sample value v such that >= frac of samples are <= v
     *  (approximated at bucket granularity). */
    std::uint64_t percentileApprox(double frac) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/**
 * A named group of counters and histograms. Lookup lazily creates the
 * entry so instrumentation sites stay one-liners.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name = "") : name_(std::move(name)) {}

    Counter &
    counter(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(initMutex_);
        return counters_[name];
    }
    Histogram &
    histogram(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(initMutex_);
        return histograms_[name];
    }

    /**
     * Fast-path overloads for string literals (every instrumentation
     * site): the literal's address is memoized, so the steady-state
     * cost is a short pointer scan instead of a std::string
     * construction plus a map walk — the difference matters at
     * once-per-simulated-event call sites.
     *
     * The memo is safe to use from several host threads (a shared
     * component's counters may be first-touched by any worker, and the
     * concurrent-mode watchdog samples them from the supervisor): slots
     * are fixed storage, each published exactly once with a release
     * store of its name after the entry is complete, and scanned with
     * acquire loads — first-use takes initMutex_, the steady state
     * stays lock-free. Counter increments were already relaxed
     * atomics; Histograms remain single-writer (see class comment).
     */
    Counter &
    counter(const char *name)
    {
        for (const MemoSlot<Counter> &e : counterMemo_) {
            const char *n = e.name.load(std::memory_order_acquire);
            if (n == nullptr)
                break;
            if (n == name)
                return *e.value;
        }
        return counterSlow(name);
    }

    Histogram &
    histogram(const char *name)
    {
        for (const MemoSlot<Histogram> &e : histogramMemo_) {
            const char *n = e.name.load(std::memory_order_acquire);
            if (n == nullptr)
                break;
            if (n == name)
                return *e.value;
        }
        return histogramSlow(name);
    }

    std::uint64_t get(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    void reset();
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    /// One memo entry: the literal's address doubles as the published
    /// flag (null = end of the populated prefix). Map node references
    /// are stable, so the cached pointers never dangle.
    template <typename T>
    struct MemoSlot
    {
        std::atomic<const char *> name{nullptr};
        T *value = nullptr;
    };

    static constexpr std::size_t kMemoSlots = 64;

    Counter &counterSlow(const char *name);
    Histogram &histogramSlow(const char *name);

    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::array<MemoSlot<Counter>, kMemoSlots> counterMemo_;
    std::array<MemoSlot<Histogram>, kMemoSlots> histogramMemo_;
    /// Guards first-use insertion into the maps and memo publication;
    /// never taken on a memo hit.
    std::mutex initMutex_;
};

} // namespace paralog

#endif // PARALOG_COMMON_STATS_HPP
