/**
 * @file
 * Lightweight named statistics: scalar counters and histograms, grouped
 * into a StatSet that can be dumped for benches and inspected by tests.
 */

#ifndef PARALOG_COMMON_STATS_HPP
#define PARALOG_COMMON_STATS_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace paralog {

/**
 * Order-invariant min / median / max summary of repeated samples (the
 * `--repeat` aggregation of the scenario-matrix runner). Samples are
 * sorted on demand, so the summary is identical no matter which order
 * concurrent repeats complete in. Median is the lower middle element —
 * exact and integer-valued for any repeat count.
 */
template <typename T>
class SampleSummaryT
{
  public:
    void
    add(T v)
    {
        samples_.push_back(v);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }
    T min() const { return samples_.empty() ? T{} : sorted().front(); }
    T max() const { return samples_.empty() ? T{} : sorted().back(); }

    T
    median() const
    {
        if (samples_.empty())
            return T{};
        return sorted()[(samples_.size() - 1) / 2];
    }

    /** True iff every sample equals every other (deterministic repeats
     *  of the same configuration must satisfy this). */
    bool
    allEqual() const
    {
        return samples_.empty() || sorted().front() == sorted().back();
    }

  private:
    const std::vector<T> &
    sorted() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
        return samples_;
    }

    mutable std::vector<T> samples_;
    mutable bool sorted_ = true;
};

using SampleSummary = SampleSummaryT<std::uint64_t>;
using WallClockSummary = SampleSummaryT<double>;

/** Monotonic scalar counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Power-of-two bucketed histogram: bucket k counts samples in
 * [2^k, 2^(k+1)) with bucket 0 holding samples of 0 and 1.
 */
class Histogram
{
  public:
    Histogram() : buckets_(64, 0) {}

    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /** Smallest sample value v such that >= frac of samples are <= v
     *  (approximated at bucket granularity). */
    std::uint64_t percentileApprox(double frac) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/**
 * A named group of counters and histograms. Lookup lazily creates the
 * entry so instrumentation sites stay one-liners.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name = "") : name_(std::move(name)) {}

    Counter &counter(const std::string &name) { return counters_[name]; }
    Histogram &histogram(const std::string &name) { return histograms_[name]; }

    /**
     * Fast-path overloads for string literals (every instrumentation
     * site): the literal's address is memoized, so the steady-state
     * cost is a short pointer scan instead of a std::string
     * construction plus a map walk — the difference matters at
     * once-per-simulated-event call sites.
     */
    Counter &
    counter(const char *name)
    {
        for (const auto &e : counterMemo_) {
            if (e.first == name)
                return *e.second;
        }
        Counter &c = counters_[name];
        counterMemo_.emplace_back(name, &c);
        return c;
    }

    Histogram &
    histogram(const char *name)
    {
        for (const auto &e : histogramMemo_) {
            if (e.first == name)
                return *e.second;
        }
        Histogram &h = histograms_[name];
        histogramMemo_.emplace_back(name, &h);
        return h;
    }

    std::uint64_t get(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    void reset();
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    /// Literal-address memo for the const char* fast paths. Map node
    /// references are stable, so the cached pointers never dangle.
    std::vector<std::pair<const char *, Counter *>> counterMemo_;
    std::vector<std::pair<const char *, Histogram *>> histogramMemo_;
};

} // namespace paralog

#endif // PARALOG_COMMON_STATS_HPP
