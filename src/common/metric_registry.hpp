/**
 * @file
 * Service-grade metric registry for long-running modes (`paralogd`).
 *
 * StatSet (common/stats.hpp) is built for per-run simulation counters:
 * single-writer, dumped once at the end. A daemon needs the opposite
 * shape — many writer threads (accept loop, sessions, job workers)
 * bumping shared counters and latency histograms for the lifetime of
 * the process, and a stats endpoint that renders a consistent snapshot
 * at any moment while traffic continues. MetricRegistry provides that:
 *
 *  - counters: monotonic, relaxed-atomic, safe for concurrent inc()
 *  - gauges:   set/add from any thread (queue depths, active sessions)
 *  - meters:   mutex-guarded latency/size histograms with approximate
 *              percentiles (power-of-two buckets, like Histogram) plus
 *              exact count/sum/min/max
 *
 * Lookup lazily creates the metric under the registry mutex; the
 * returned references are stable for the registry's lifetime (map
 * nodes), so call sites cache them. renderText() emits one
 * `name value` line per scalar and a `name{count,mean,p50,p90,p99,max}`
 * line per meter, in name order — the `paralogd` stats endpoint's wire
 * format, and what the ops runbook greps.
 */

#ifndef PARALOG_COMMON_METRIC_REGISTRY_HPP
#define PARALOG_COMMON_METRIC_REGISTRY_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace paralog {

/** Monotonic event counter (jobs accepted, bytes ingested, ...). */
class MetricCounter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous level (queue depth, active sessions, busy workers). */
class MetricGauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }
    void
    add(std::int64_t d)
    {
        value_.fetch_add(d, std::memory_order_relaxed);
    }
    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Concurrent latency/size distribution. Bucket k counts samples in
 * [2^k, 2^(k+1)) (bucket 0 holds 0 and 1), so percentiles are
 * approximate at power-of-two granularity — the right fidelity for an
 * ops dashboard, at a mutex-per-sample cost that is negligible at job
 * and session granularity.
 */
class MetricMeter
{
  public:
    void sample(std::uint64_t v);

    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p90 = 0;
        std::uint64_t p99 = 0;
        double
        mean() const
        {
            return count ? static_cast<double>(sum) /
                               static_cast<double>(count)
                         : 0.0;
        }
    };

    /** Consistent snapshot (taken under the meter's mutex). */
    Snapshot snapshot() const;

  private:
    std::uint64_t percentileLocked(double frac) const;

    mutable std::mutex mutex_;
    std::uint64_t buckets_[64] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

class MetricRegistry
{
  public:
    /** Lazily-created, stable references. Thread-safe. */
    MetricCounter &counter(const std::string &name);
    MetricGauge &gauge(const std::string &name);
    MetricMeter &meter(const std::string &name);

    /** Counter value, 0 when the counter was never touched. */
    std::uint64_t counterValue(const std::string &name) const;
    /** Gauge value, 0 when never touched. */
    std::int64_t gaugeValue(const std::string &name) const;
    /** Meter snapshot, all-zero when never touched. */
    MetricMeter::Snapshot meterSnapshot(const std::string &name) const;

    /**
     * Render every metric, sorted by name:
     *
     *   counter <name> <value>
     *   gauge <name> <value>
     *   meter <name> count=N sum=N mean=F min=N p50=N p90=N p99=N max=N
     *
     * Safe while other threads keep writing (counters/gauges are read
     * relaxed; meters snapshot under their mutex).
     */
    void renderText(std::ostream &os) const;

  private:
    mutable std::mutex mutex_; ///< guards map insertion/lookup only
    std::map<std::string, MetricCounter> counters_;
    std::map<std::string, MetricGauge> gauges_;
    std::map<std::string, MetricMeter> meters_;
};

} // namespace paralog

#endif // PARALOG_COMMON_METRIC_REGISTRY_HPP
