/**
 * @file
 * Small self-contained LZSS-style byte compressor used by the
 * `paralog-trace-v2` container (trace/v2_block.hpp). The v2 layout
 * re-blocks journal ops into per-column streams precisely so that a
 * plain match-based coder finds long exact repeats; this coder is the
 * entropy stage sitting behind that transform. No external
 * dependencies, deterministic output for identical input.
 *
 * Encoded stream:
 *
 *   varint rawLen
 *   token*            until rawLen output bytes are reconstructed
 *
 * token = varint litLen, litLen literal bytes,
 *         then — unless output is already complete —
 *         varint (matchLen - kLzMinMatch), varint dist   (1 <= dist)
 *
 * Matches may self-overlap (dist < matchLen), which is what turns a
 * run of identical bytes — or a repeating k-byte pattern — into a
 * couple of tokens. Decoding is bounds-checked everywhere: a
 * truncated or tampered stream returns false instead of reading or
 * writing out of bounds.
 */

#ifndef PARALOG_COMMON_LZ_HPP
#define PARALOG_COMMON_LZ_HPP

#include <cstdint>
#include <vector>

namespace paralog {

/** Matches shorter than this are emitted as literals. */
inline constexpr std::size_t kLzMinMatch = 4;

/** Compress @p n bytes at @p data, appending the encoded stream to
 *  @p out. Always succeeds; incompressible input degrades to one
 *  all-literal token (n + O(varint) bytes). */
void lzCompress(const std::uint8_t *data, std::size_t n,
                std::vector<std::uint8_t> &out);

/**
 * Decompress an lzCompress() stream of @p n bytes at @p data into
 * @p out (replacing its contents). Returns false on malformed input
 * or when the encoded rawLen exceeds @p max_out (a structural bound
 * that keeps a hostile length field from allocating unbounded
 * memory).
 */
bool lzDecompress(const std::uint8_t *data, std::size_t n,
                  std::vector<std::uint8_t> &out, std::size_t max_out);

} // namespace paralog

#endif // PARALOG_COMMON_LZ_HPP
