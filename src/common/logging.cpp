#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace paralog {

namespace {

bool quietFlag = false;
std::atomic<bool> panicThrows{false};

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    if (panicThrows.load(std::memory_order_relaxed))
        throw SimPanicError(s);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

bool
setPanicThrows(bool throws)
{
    return panicThrows.exchange(throws);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

} // namespace paralog
