#include "common/stats.hpp"

#include <algorithm>

#include "common/bitops.hpp"

namespace paralog {

void
Histogram::sample(std::uint64_t v)
{
    unsigned b = (v <= 1) ? 0 : floorLog2(v);
    if (b >= buckets_.size())
        b = static_cast<unsigned>(buckets_.size()) - 1;
    ++buckets_[b];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
Histogram::percentileApprox(double frac) const
{
    if (count_ == 0)
        return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(frac * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen > target)
            return (b == 0) ? 1 : (1ULL << (b + 1)) - 1;
    }
    return max_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatSet::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << "." << kv.first << " = " << kv.second.value() << "\n";
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << name_ << "." << kv.first << " = {n=" << h.count()
           << " mean=" << h.mean() << " min=" << h.min()
           << " max=" << h.max() << "}\n";
    }
}

} // namespace paralog
