#include "common/stats.hpp"

#include <algorithm>

#include "common/bitops.hpp"

namespace paralog {

void
Histogram::sample(std::uint64_t v)
{
    unsigned b = (v <= 1) ? 0 : floorLog2(v);
    if (b >= buckets_.size())
        b = static_cast<unsigned>(buckets_.size()) - 1;
    ++buckets_[b];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
Histogram::percentileApprox(double frac) const
{
    if (count_ == 0)
        return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(frac * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen > target)
            return (b == 0) ? 1 : (1ULL << (b + 1)) - 1;
    }
    return max_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

Counter &
StatSet::counterSlow(const char *name)
{
    std::lock_guard<std::mutex> lock(initMutex_);
    // Re-scan under the lock: another thread may have published this
    // name between our lock-free miss and acquiring initMutex_.
    std::size_t i = 0;
    for (; i < counterMemo_.size(); ++i) {
        const char *n = counterMemo_[i].name.load(std::memory_order_relaxed);
        if (n == nullptr)
            break;
        if (n == name)
            return *counterMemo_[i].value;
    }
    Counter &c = counters_[name];
    if (i < counterMemo_.size()) {
        // Publish value first, then the name with release: a reader
        // that acquires the name sees a complete slot. Overflow just
        // skips memoization — lookups fall through to this slow path.
        counterMemo_[i].value = &c;
        counterMemo_[i].name.store(name, std::memory_order_release);
    }
    return c;
}

Histogram &
StatSet::histogramSlow(const char *name)
{
    std::lock_guard<std::mutex> lock(initMutex_);
    std::size_t i = 0;
    for (; i < histogramMemo_.size(); ++i) {
        const char *n =
            histogramMemo_[i].name.load(std::memory_order_relaxed);
        if (n == nullptr)
            break;
        if (n == name)
            return *histogramMemo_[i].value;
    }
    Histogram &h = histograms_[name];
    if (i < histogramMemo_.size()) {
        histogramMemo_[i].value = &h;
        histogramMemo_[i].name.store(name, std::memory_order_release);
    }
    return h;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatSet::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << "." << kv.first << " = " << kv.second.value() << "\n";
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << name_ << "." << kv.first << " = {n=" << h.count()
           << " mean=" << h.mean() << " min=" << h.min()
           << " max=" << h.max() << "}\n";
    }
}

} // namespace paralog
