#include "common/metric_registry.hpp"

#include <iomanip>

#include "common/bitops.hpp"

namespace paralog {

namespace {

std::size_t
bucketOf(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v);
}

} // namespace

void
MetricMeter::sample(std::uint64_t v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++buckets_[bucketOf(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

std::uint64_t
MetricMeter::percentileLocked(double frac) const
{
    if (count_ == 0)
        return 0;
    // Smallest bucket upper bound covering >= frac of the samples;
    // clamped to the observed max so p99 of a tight distribution never
    // exceeds the largest value actually seen.
    std::uint64_t need =
        static_cast<std::uint64_t>(frac * static_cast<double>(count_));
    if (need == 0)
        need = 1;
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < 64; ++k) {
        seen += buckets_[k];
        if (seen >= need) {
            std::uint64_t upper =
                k >= 63 ? ~0ULL : (std::uint64_t{2} << k) - 1;
            return std::min(upper, max_);
        }
    }
    return max_;
}

MetricMeter::Snapshot
MetricMeter::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = count_ ? min_ : 0;
    s.max = max_;
    s.p50 = percentileLocked(0.50);
    s.p90 = percentileLocked(0.90);
    s.p99 = percentileLocked(0.99);
    return s;
}

MetricCounter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

MetricGauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[name];
}

MetricMeter &
MetricRegistry::meter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return meters_[name];
}

std::uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t
MetricRegistry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second.value();
}

MetricMeter::Snapshot
MetricRegistry::meterSnapshot(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = meters_.find(name);
    return it == meters_.end() ? MetricMeter::Snapshot{}
                               : it->second.snapshot();
}

void
MetricRegistry::renderText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        os << "counter " << name << ' ' << c.value() << '\n';
    for (const auto &[name, g] : gauges_)
        os << "gauge " << name << ' ' << g.value() << '\n';
    for (const auto &[name, m] : meters_) {
        MetricMeter::Snapshot s = m.snapshot();
        os << "meter " << name << " count=" << s.count
           << " sum=" << s.sum << " mean=" << std::fixed
           << std::setprecision(1) << s.mean() << " min=" << s.min
           << " p50=" << s.p50 << " p90=" << s.p90 << " p99=" << s.p99
           << " max=" << s.max << '\n';
        os.unsetf(std::ios::fixed);
    }
}

} // namespace paralog
