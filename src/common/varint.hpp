/**
 * @file
 * LEB128-style varint and zigzag helpers shared by the stream
 * compressor's size model, its byte-emitting codec path, and the
 * on-disk trace format (src/trace/). Keeping the size function and the
 * emitters next to each other guarantees the modeled byte counts and
 * the bytes actually written can never drift apart.
 */

#ifndef PARALOG_COMMON_VARINT_HPP
#define PARALOG_COMMON_VARINT_HPP

#include <cstdint>
#include <vector>

namespace paralog {

/** Encoded size of @p v as a base-128 varint (1..10 bytes). */
inline std::uint32_t
varintSize(std::uint64_t v)
{
    std::uint32_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

/** Append @p v as a varint; returns the number of bytes appended. */
inline std::uint32_t
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    std::uint32_t n = 1;
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
        ++n;
    }
    out.push_back(static_cast<std::uint8_t>(v));
    return n;
}

/** Append @p v as a 4-byte little-endian word. */
inline void
putFixed32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t z)
{
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

/**
 * Bounds-checked forward read cursor over an encoded byte span. All
 * reads return false on truncated input instead of walking off the end
 * (the trace reader treats that as file corruption).
 */
struct ByteCursor
{
    const std::uint8_t *pos = nullptr;
    const std::uint8_t *end = nullptr;

    ByteCursor() = default;
    ByteCursor(const std::uint8_t *p, std::size_t n) : pos(p), end(p + n) {}

    bool atEnd() const { return pos >= end; }
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - pos);
    }

    bool
    getByte(std::uint8_t &out)
    {
        if (atEnd())
            return false;
        out = *pos++;
        return true;
    }

    bool
    getVarint(std::uint64_t &out)
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            std::uint8_t b;
            if (!getByte(b))
                return false;
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80)) {
                out = v;
                return true;
            }
        }
        return false; // over-long encoding
    }

    bool
    getFixed32(std::uint32_t &out)
    {
        if (remaining() < 4)
            return false;
        out = static_cast<std::uint32_t>(pos[0]) |
              static_cast<std::uint32_t>(pos[1]) << 8 |
              static_cast<std::uint32_t>(pos[2]) << 16 |
              static_cast<std::uint32_t>(pos[3]) << 24;
        pos += 4;
        return true;
    }
};

} // namespace paralog

#endif // PARALOG_COMMON_VARINT_HPP
