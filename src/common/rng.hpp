/**
 * @file
 * Deterministic pseudo-random number generator (SplitMix64 seeded
 * xorshift128+). Every workload gets its own seeded instance so all
 * simulations are exactly reproducible.
 */

#ifndef PARALOG_COMMON_RNG_HPP
#define PARALOG_COMMON_RNG_HPP

#include <cstdint>

namespace paralog {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the xorshift state.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace paralog

#endif // PARALOG_COMMON_RNG_HPP
