/**
 * @file
 * Fundamental scalar types shared by every ParaLog subsystem.
 */

#ifndef PARALOG_COMMON_TYPES_HPP
#define PARALOG_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace paralog {

/** Byte address in the simulated flat address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle. */
using Cycle = std::uint64_t;

/** Application/lifeguard thread identifier (0-based). */
using ThreadId = std::uint32_t;

/** Simulated core identifier (0-based). */
using CoreId = std::uint32_t;

/**
 * Per-thread event record identifier. Incremented by one for every record
 * appended to the thread's event stream (the paper's per-core retire
 * counter used as "RID").
 */
using RecordId = std::uint64_t;

/** Architectural register index in the micro-ISA. */
using RegId = std::uint8_t;

/** Number of general-purpose registers in the micro-ISA. */
inline constexpr unsigned kNumRegs = 16;

inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();
inline constexpr ThreadId kInvalidThread =
    std::numeric_limits<ThreadId>::max();
inline constexpr RecordId kInvalidRecord =
    std::numeric_limits<RecordId>::max();

/**
 * Inter-thread dependence arc. Stored at the *receiving* end: the event
 * carrying this arc may only be processed once lifeguard thread @c tid has
 * advertised progress strictly beyond @c rid.
 */
struct DepArc
{
    ThreadId tid = kInvalidThread;
    RecordId rid = kInvalidRecord;

    bool valid() const { return tid != kInvalidThread; }
    bool operator==(const DepArc &) const = default;
};

/**
 * Version tag for TSO versioned metadata (paper section 5.5). A version is
 * named by the (thread, record id) of the *consuming* load.
 */
struct VersionTag
{
    ThreadId tid = kInvalidThread;
    RecordId rid = kInvalidRecord;

    bool valid() const { return tid != kInvalidThread; }
    bool operator==(const VersionTag &) const = default;
};

/** Half-open byte range [begin, end) in the application address space. */
struct AddrRange
{
    Addr begin = 0;
    Addr end = 0;

    bool empty() const { return begin >= end; }
    std::uint64_t size() const { return empty() ? 0 : end - begin; }

    bool contains(Addr a) const { return a >= begin && a < end; }

    bool
    overlaps(const AddrRange &o) const
    {
        return !empty() && !o.empty() && begin < o.end && o.begin < end;
    }

    bool operator==(const AddrRange &) const = default;
};

} // namespace paralog

#endif // PARALOG_COMMON_TYPES_HPP
