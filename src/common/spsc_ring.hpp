/**
 * @file
 * Single-producer / single-consumer lock-free ring used as the
 * cross-thread event-stream hand-off in concurrent monitoring mode
 * (core/replay.hpp). The design separates *staging* from *publishing*:
 * the producer stages any number of pushes privately and then makes
 * them visible with one release-store (`publish()`), so a batch of
 * records — e.g. everything sealed by one journal op, including a
 * ConflictAlert arrival together with its broadcast bookkeeping —
 * appears to the consumer atomically. That batch horizon is what the
 * delivery-order proofs in the replay engine lean on.
 *
 * Write-minimizing by construction (one shared-cacheline store per
 * publish / per pop, never per push): indices are monotonically
 * increasing 64-bit sequence numbers, slot = seq & (capacity - 1).
 * Each side caches the other side's index and refreshes it only when
 * the cached value would block progress.
 *
 * Thread contract: tryPush/publish/pushed/freeSpace are
 * producer-only; front/pop/consumerEmpty are consumer-only; popped()
 * and published() may be read from either side.
 */

#ifndef PARALOG_COMMON_SPSC_RING_HPP
#define PARALOG_COMMON_SPSC_RING_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace paralog {

template <typename T>
class SpscRing
{
  public:
    /** @p capacity must be a power of two >= 2. */
    explicit SpscRing(std::size_t capacity)
        : slots_(capacity), mask_(capacity - 1)
    {
        static_assert(std::is_nothrow_move_assignable_v<T> ||
                          std::is_move_assignable_v<T>,
                      "ring payload must be move-assignable");
    }

    std::size_t capacity() const { return slots_.size(); }

    // ----------------------------------------------------- producer

    /** Stage @p v into the next slot. Returns false when the ring is
     *  full (the consumer has not yet popped the slot's previous
     *  occupant). Staged pushes are invisible until publish(). */
    bool
    tryPush(T &&v)
    {
        if (head_ - cachedTail_ >= slots_.size()) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            if (head_ - cachedTail_ >= slots_.size())
                return false;
        }
        slots_[head_ & mask_] = std::move(v);
        ++head_;
        return true;
    }

    /** Make every staged push visible to the consumer at once. */
    void
    publish()
    {
        published_.store(head_, std::memory_order_release);
    }

    /** Staged pushes (published or not). Producer-side view. */
    std::uint64_t pushed() const { return head_; }

    /** Slots the producer could still stage without a consumer pop. */
    std::size_t
    freeSpace()
    {
        cachedTail_ = tail_.load(std::memory_order_acquire);
        return slots_.size() - static_cast<std::size_t>(head_ - cachedTail_);
    }

    // ----------------------------------------------------- consumer

    /** Oldest published element, or nullptr when none is visible. The
     *  pointer stays valid until pop(). */
    T *
    front()
    {
        if (tailLocal_ == cachedPublished_) {
            cachedPublished_ = published_.load(std::memory_order_acquire);
            if (tailLocal_ == cachedPublished_)
                return nullptr;
        }
        return &slots_[tailLocal_ & mask_];
    }

    /** Drop the element front() returned. Undefined if empty. */
    void
    pop()
    {
        tail_.store(++tailLocal_, std::memory_order_release);
    }

    bool consumerEmpty() { return front() == nullptr; }

    // --------------------------------------------------- either side

    /** Total elements consumed so far (acquire: a reader that sees
     *  popped() > i also sees every side effect the consumer performed
     *  before popping element i). */
    std::uint64_t
    popped() const
    {
        return tail_.load(std::memory_order_acquire);
    }

    /** Total elements published so far. */
    std::uint64_t
    published() const
    {
        return published_.load(std::memory_order_acquire);
    }

  private:
    std::vector<T> slots_;
    const std::size_t mask_;

    // Producer-owned line: private head plus the cached consumer tail.
    alignas(64) std::uint64_t head_ = 0;
    std::uint64_t cachedTail_ = 0;

    // Consumer-owned line: private tail cursor plus cached publish mark.
    alignas(64) std::uint64_t tailLocal_ = 0;
    std::uint64_t cachedPublished_ = 0;

    // Shared lines, one atomic each.
    alignas(64) std::atomic<std::uint64_t> published_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

} // namespace paralog

#endif // PARALOG_COMMON_SPSC_RING_HPP
