/**
 * @file
 * Open-addressing hash map for the simulator's hottest lookup tables
 * (coherence directory, main-memory page table, shadow-memory chunk
 * table). All of them key by a 64-bit address-derived index, never
 * erase, and live on paths executed once per simulated memory access —
 * where std::unordered_map's chained buckets and per-node allocations
 * dominate. Linear probing over a flat slot array with a multiplicative
 * hash is 2-4x faster there and keeps values stable *indirectly*: a
 * rehash moves the V objects themselves, so callers that cache raw
 * pointers must store indirection (e.g. std::unique_ptr values), which
 * is exactly how the three users are structured.
 *
 * Key ~0 is reserved as the empty-slot sentinel; all users key by
 * (address >> shift) or line addresses, which never reach it.
 */

#ifndef PARALOG_COMMON_FLAT_MAP_HPP
#define PARALOG_COMMON_FLAT_MAP_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace paralog {

template <typename V>
class FlatAddrMap
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~0ULL;

    FlatAddrMap() { grow(kInitialSlots); }

    std::size_t size() const { return size_; }

    V *
    find(std::uint64_t key)
    {
        Slot *s = probe(key);
        return s->key == key ? &s->value : nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        const Slot *s = const_cast<FlatAddrMap *>(this)->probe(key);
        return s->key == key ? &s->value : nullptr;
    }

    /** Value for @p key, default-constructing it on first use. */
    V &
    operator[](std::uint64_t key)
    {
        PARALOG_ASSERT(key != kEmptyKey, "reserved flat-map key");
        Slot *s = probe(key);
        if (s->key == key)
            return s->value;
        if ((size_ + 1) * 8 >= slots_.size() * 7) {
            grow(slots_.size() * 2);
            s = probe(key);
        }
        s->key = key;
        ++size_;
        return s->value;
    }

    /** Visit every occupied slot (order unspecified). */
    template <typename F>
    void
    forEach(F &&f)
    {
        for (Slot &s : slots_) {
            if (s.key != kEmptyKey)
                f(s.key, s.value);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = kEmptyKey;
        V value{};
    };

    static constexpr std::size_t kInitialSlots = 256;

    Slot *
    probe(std::uint64_t key)
    {
        std::size_t idx =
            (key * 0x9E3779B97F4A7C15ULL) >> shift_;
        for (;;) {
            Slot &s = slots_[idx];
            if (s.key == key || s.key == kEmptyKey)
                return &s;
            idx = (idx + 1) & (slots_.size() - 1);
        }
    }

    void
    grow(std::size_t new_cap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(new_cap); // value-init: all slots empty
        shift_ = 64;
        for (std::size_t c = new_cap; c > 1; c >>= 1)
            --shift_;
        for (Slot &s : old) {
            if (s.key == kEmptyKey)
                continue;
            Slot *dst = probe(s.key);
            dst->key = s.key;
            dst->value = std::move(s.value);
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    unsigned shift_ = 64;
};

} // namespace paralog

#endif // PARALOG_COMMON_FLAT_MAP_HPP
