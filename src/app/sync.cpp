#include "app/sync.hpp"

#include "common/logging.hpp"

namespace paralog {

bool
LockManager::tryAcquire(Addr addr, ThreadId tid)
{
    auto it = owners_.find(addr);
    if (it != owners_.end())
        return false;
    owners_.emplace(addr, tid);
    return true;
}

void
LockManager::release(Addr addr, ThreadId tid)
{
    auto it = owners_.find(addr);
    PARALOG_ASSERT(it != owners_.end() && it->second == tid,
                   "thread %u releasing lock %#llx it does not hold", tid,
                   static_cast<unsigned long long>(addr));
    owners_.erase(it);
}

bool
LockManager::isHeld(Addr addr) const
{
    return owners_.count(addr) > 0;
}

ThreadId
LockManager::owner(Addr addr) const
{
    auto it = owners_.find(addr);
    return it == owners_.end() ? kInvalidThread : it->second;
}

bool
BarrierManager::arrive(Addr addr, ThreadId tid, std::uint32_t participants)
{
    State &s = barriers_[addr];
    s.arrivedIn[tid] = s.generation;
    ++s.waiting;
    if (s.waiting >= participants) {
        // Last arriver: release this generation.
        ++s.generation;
        s.waiting = 0;
        return true;
    }
    return false;
}

bool
BarrierManager::isReleased(Addr addr, ThreadId tid) const
{
    auto bit = barriers_.find(addr);
    if (bit == barriers_.end())
        return true;
    const State &s = bit->second;
    auto it = s.arrivedIn.find(tid);
    if (it == s.arrivedIn.end())
        return true;
    return it->second < s.generation;
}

void
BarrierManager::depart(Addr addr, ThreadId tid)
{
    auto bit = barriers_.find(addr);
    if (bit != barriers_.end())
        bit->second.arrivedIn.erase(tid);
}

} // namespace paralog
