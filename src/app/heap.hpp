/**
 * @file
 * Shared heap allocator for the simulated application, with per-thread
 * arenas like a modern malloc: each thread allocates from its own arena
 * under that arena's lock, so unrelated allocations do not serialize.
 *
 * The allocator is deliberately realistic about *where it writes*: it
 * only touches 16-byte block headers adjacent to each payload. A free()
 * racing a load of the payload interior therefore produces no coherence
 * traffic linking the two — the paper's "logical race" (section 4.3) —
 * making the ConflictAlert mechanism load-bearing in this reproduction.
 */

#ifndef PARALOG_APP_HEAP_HPP
#define PARALOG_APP_HEAP_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class Heap
{
  public:
    static constexpr std::uint64_t kHeaderBytes = 16;
    static constexpr std::uint64_t kMinBlockBytes = 32;

    Heap(Addr base, std::uint64_t bytes, std::uint32_t arenas = 1);

    /**
     * Allocate @p bytes from @p tid's arena (falling back to other
     * arenas on exhaustion); returns the payload address or 0.
     */
    Addr allocate(std::uint64_t bytes, ThreadId tid = 0);

    /** Release a payload address returned by allocate(). */
    void release(Addr payload);

    /** Payload size of a live block (0 if not a live block). */
    std::uint64_t blockSize(Addr payload) const;

    bool isLive(Addr payload) const { return blockSize(payload) != 0; }

    /** Header address for a payload (what the wrapper library touches). */
    static Addr headerAddr(Addr payload) { return payload - kHeaderBytes; }

    Addr base() const { return base_; }
    Addr end() const { return base_ + bytes_; }
    AddrRange arena() const { return AddrRange{base_, base_ + bytes_}; }

    std::uint64_t liveBlocks() const { return allocated_.size(); }
    std::uint64_t liveBytes() const;

    std::uint32_t arenaCount() const
    {
        return static_cast<std::uint32_t>(arenas_.size());
    }

    /** Arena that owns @p addr. */
    std::uint32_t arenaOf(Addr addr) const;

    /** Address of an arena's allocator lock word. */
    Addr lockAddr(std::uint32_t arena_idx = 0) const
    {
        return base_ - 64 * (1 + arena_idx);
    }

    StatSet stats{"heap"};

  private:
    struct Arena
    {
        Addr begin = 0;
        Addr end = 0;
        std::map<Addr, std::uint64_t> freeBlocks; ///< header -> total size
    };

    Addr allocateFrom(Arena &arena, std::uint64_t bytes);
    void coalesce(Arena &arena, Addr header, std::uint64_t total);

    Addr base_;
    std::uint64_t bytes_;
    std::vector<Arena> arenas_;
    std::map<Addr, std::uint64_t> allocated_; ///< payload -> payload size
};

} // namespace paralog

#endif // PARALOG_APP_HEAP_HPP
