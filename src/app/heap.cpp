#include "app/heap.hpp"

#include "common/bitops.hpp"
#include "common/logging.hpp"

namespace paralog {

Heap::Heap(Addr base, std::uint64_t bytes, std::uint32_t arenas)
    : base_(base), bytes_(bytes)
{
    PARALOG_ASSERT(arenas >= 1, "need at least one arena");
    PARALOG_ASSERT(bytes / arenas >= kMinBlockBytes, "heap too small");
    std::uint64_t per = alignDown(bytes / arenas, 64);
    for (std::uint32_t a = 0; a < arenas; ++a) {
        Arena ar;
        ar.begin = base + a * per;
        ar.end = (a + 1 == arenas) ? base + bytes : ar.begin + per;
        ar.freeBlocks.emplace(ar.begin, ar.end - ar.begin);
        arenas_.push_back(std::move(ar));
    }
}

std::uint32_t
Heap::arenaOf(Addr addr) const
{
    for (std::uint32_t a = 0; a < arenas_.size(); ++a) {
        if (addr >= arenas_[a].begin && addr < arenas_[a].end)
            return a;
    }
    return 0;
}

Addr
Heap::allocateFrom(Arena &arena, std::uint64_t bytes)
{
    std::uint64_t payload = alignUp(std::max<std::uint64_t>(bytes, 8), 8);
    std::uint64_t total = std::max(payload + kHeaderBytes, kMinBlockBytes);

    for (auto it = arena.freeBlocks.begin(); it != arena.freeBlocks.end();
         ++it) {
        if (it->second < total)
            continue;
        Addr header = it->first;
        std::uint64_t block_size = it->second;
        arena.freeBlocks.erase(it);
        std::uint64_t rest = block_size - total;
        if (rest >= kMinBlockBytes)
            arena.freeBlocks.emplace(header + total, rest);
        else
            total = block_size; // absorb the sliver
        Addr pay = header + kHeaderBytes;
        allocated_.emplace(pay, total - kHeaderBytes);
        return pay;
    }
    return 0;
}

Addr
Heap::allocate(std::uint64_t bytes, ThreadId tid)
{
    std::uint32_t home = tid % arenas_.size();
    for (std::uint32_t i = 0; i < arenas_.size(); ++i) {
        std::uint32_t a = (home + i) % arenas_.size();
        Addr pay = allocateFrom(arenas_[a], bytes);
        if (pay != 0) {
            stats.counter("allocs").inc();
            stats.histogram("alloc_bytes").sample(bytes);
            if (i != 0)
                stats.counter("arena_fallbacks").inc();
            return pay;
        }
    }
    stats.counter("alloc_failures").inc();
    return 0;
}

void
Heap::release(Addr payload)
{
    auto it = allocated_.find(payload);
    PARALOG_ASSERT(it != allocated_.end(),
                   "free of non-live block %#llx",
                   static_cast<unsigned long long>(payload));
    std::uint64_t total = it->second + kHeaderBytes;
    allocated_.erase(it);
    stats.counter("frees").inc();
    Arena &arena = arenas_[arenaOf(payload)];
    coalesce(arena, headerAddr(payload), total);
}

void
Heap::coalesce(Arena &arena, Addr header, std::uint64_t total)
{
    auto next = arena.freeBlocks.lower_bound(header);
    if (next != arena.freeBlocks.end() && header + total == next->first) {
        total += next->second;
        next = arena.freeBlocks.erase(next);
    }
    if (next != arena.freeBlocks.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == header) {
            prev->second += total;
            return;
        }
    }
    arena.freeBlocks.emplace(header, total);
}

std::uint64_t
Heap::blockSize(Addr payload) const
{
    auto it = allocated_.find(payload);
    return it == allocated_.end() ? 0 : it->second;
}

std::uint64_t
Heap::liveBytes() const
{
    std::uint64_t sum = 0;
    for (const auto &kv : allocated_)
        sum += kv.second;
    return sum;
}

} // namespace paralog
