/**
 * @file
 * Simulated pthread-style synchronization: spin locks and phase barriers.
 * Acquire/release operations perform *real* read-modify-write accesses on
 * the lock/barrier words, so coherence dependence arcs naturally order
 * critical sections across lifeguard threads.
 */

#ifndef PARALOG_APP_SYNC_HPP
#define PARALOG_APP_SYNC_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"

namespace paralog {

class LockManager
{
  public:
    /** Try to acquire the lock word at @p addr for @p tid. */
    bool tryAcquire(Addr addr, ThreadId tid);

    /** Release; panics if @p tid is not the owner. */
    void release(Addr addr, ThreadId tid);

    bool isHeld(Addr addr) const;
    ThreadId owner(Addr addr) const;

  private:
    std::unordered_map<Addr, ThreadId> owners_;
};

class BarrierManager
{
  public:
    /**
     * Thread @p tid arrives at the barrier word @p addr expecting
     * @p participants total arrivals. Returns true if this arrival
     * releases the barrier (last arriver).
     */
    bool arrive(Addr addr, ThreadId tid, std::uint32_t participants);

    /** True once the generation @p tid arrived in has been released. */
    bool isReleased(Addr addr, ThreadId tid) const;

    /** Forget the thread's participation (after it passes). */
    void depart(Addr addr, ThreadId tid);

  private:
    struct State
    {
        std::uint64_t generation = 0;
        std::unordered_map<ThreadId, std::uint64_t> arrivedIn;
        std::uint32_t waiting = 0;
    };

    std::unordered_map<Addr, State> barriers_;
};

} // namespace paralog

#endif // PARALOG_APP_SYNC_HPP
