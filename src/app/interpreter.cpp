#include "app/interpreter.hpp"

#include "common/logging.hpp"

namespace paralog {

namespace {

/** Internal micro-op builders for wrapper-library expansions. */
Inst
microHighLevel(HighLevelKind kind, const AddrRange &range, bool ca)
{
    Inst i;
    i.op = Op::kHighLevel;
    i.hlKind = static_cast<std::uint8_t>(kind);
    i.range = range;
    i.ca = ca;
    return i;
}

Inst
microSimple(Op op)
{
    Inst i;
    i.op = op;
    return i;
}

/** Header-touch micro-op; imm selects pendingAlloc (0) or pendingFree (1). */
Inst
microHeader(Op op, std::uint64_t which)
{
    Inst i;
    i.op = op;
    i.imm = which;
    return i;
}

} // namespace

Interpreter::Interpreter(const SimConfig &cfg, DataPath &dp,
                         MemorySystem &mem, Heap &heap, LockManager &locks,
                         BarrierManager &barriers, PlatformHooks &hooks)
    : cfg_(cfg),
      emitRecords_(cfg.mode != MonitorMode::kNoMonitoring), dp_(dp),
      mem_(mem), heap_(heap), locks_(locks), barriers_(barriers),
      hooks_(hooks)
{
}

namespace {

/** Field-wise EventRecord reset, equivalent to a fresh default-
 *  constructed record but reusing the arcs vector's storage. */
void
resetRecord(EventRecord &r)
{
    r.type = EventType::kNone;
    r.tid = kInvalidThread;
    r.rid = kInvalidRecord;
    r.dst = 0;
    r.src = 0;
    r.size = 0;
    r.addr = 0;
    r.value = 0;
    r.range = AddrRange{};
    r.syscall = SyscallKind::kNone;
    r.caKind = HighLevelKind::kMallocEnd;
    r.caSeq = kNoCaSeq;
    r.arcs.clear();
    r.version = VersionTag{};
    r.consumesVersion = false;
    r.wrapper = false;
    r.chargedBytes = 0;
}

} // namespace

AccessTag
Interpreter::tagFor(const ThreadContext &tc, Cycle now) const
{
    return AccessTag{tc.tid(), tc.retired, now};
}

Addr
Interpreter::effectiveAddr(const ThreadContext &tc, const Inst &inst)
{
    return (inst.addrReg == kNoReg) ? inst.addr
                                    : tc.regs[inst.addrReg] + inst.addr;
}

void
Interpreter::blocked(ThreadContext &tc, const Inst &inst, BlockReason reason,
                     StepOutcome &out)
{
    tc.retry(inst);
    tc.blockReason = reason;
    out.kind = StepOutcome::Kind::kBlocked;
    out.latency = cfg_.retryInterval;
}

void
Interpreter::step(ThreadContext &tc, CoreId core, Cycle now,
                  StepOutcome &out)
{
    tc.blockReason = BlockReason::kNone;
    Inst inst;
    if (tc.done() || !tc.fetch(inst)) {
        out.kind = StepOutcome::Kind::kDone;
        out.latency = 0;
        return;
    }
    execute(tc, core, now, inst, out);
}

void
Interpreter::expandMalloc(ThreadContext &tc, const Inst &inst)
{
    // Mirrors a locked wrapper around malloc(): the allocator mutates
    // only its free-list/header lines under the *owning arena's* lock
    // (per-thread arenas, like a modern malloc), then announces the
    // allocation as a high-level event (CA-End semantics: lifeguards
    // care about the *end* of malloc).
    Addr lock = heap_.lockAddr(tc.tid() % heap_.arenaCount());
    Inst core_op = inst;
    core_op.op = Op::kMallocCore;
    tc.pushMicroOps({
        Inst::lock(lock),
        core_op,
        microHeader(Op::kHeaderLoad, 0),
        microHeader(Op::kHeaderStore, 0),
        microHighLevel(HighLevelKind::kMallocEnd, AddrRange{},
                       cfg_.conflictAlerts),
        Inst::unlock(lock),
    });
}

void
Interpreter::expandFree(ThreadContext &tc, const Inst &inst)
{
    // CA-Begin semantics: the alert precedes the metadata mutation so
    // remote accelerator state is flushed before blocks are recycled.
    // The freed block's owning arena is locked (usually the caller's).
    Addr payload = (inst.src == 0xff) ? inst.addr : tc.regs[inst.src];
    Addr lock = heap_.lockAddr(heap_.arenaOf(payload));
    Inst core_op = inst;
    core_op.op = Op::kFreeCore;
    tc.pushMicroOps({
        Inst::lock(lock),
        core_op,
        microHighLevel(HighLevelKind::kFreeBegin, AddrRange{},
                       cfg_.conflictAlerts),
        microHeader(Op::kHeaderLoad, 1),
        microHeader(Op::kHeaderStore, 1),
        Inst::unlock(lock),
    });
}

void
Interpreter::expandSyscall(ThreadContext &tc, const Inst &inst)
{
    AddrRange range{inst.addr, inst.addr + inst.size};
    Inst copy;
    copy.op = Op::kKernelCopy;
    copy.addr = inst.addr;
    copy.size = inst.size;
    copy.imm = (inst.op == Op::kSyscallRead) ? 1 : 0;

    if (cfg_.stallAppAtSyscalls)
        tc.pushMicroOp(microSimple(Op::kDrainWait));
    Inst begin = microHighLevel(HighLevelKind::kSyscallBegin, range,
                                cfg_.conflictAlerts);
    begin.imm = (inst.op == Op::kSyscallRead) ? 1 : 2;
    Inst end = microHighLevel(HighLevelKind::kSyscallEnd, range,
                              cfg_.conflictAlerts);
    end.imm = begin.imm;
    tc.pushMicroOp(begin);
    tc.pushMicroOp(copy);
    tc.pushMicroOp(end);
}

void
Interpreter::execute(ThreadContext &tc, CoreId core, Cycle now,
                     const Inst &inst, StepOutcome &out)
{
    out.kind = StepOutcome::Kind::kRetired;
    out.latency = 1;
    out.event.arcs.clear();
    out.event.versionRequests.clear();
    out.event.caBroadcast = false;
    out.event.caKind = HighLevelKind::kMallocEnd;
    EventRecord &rec = out.event.record;
    if (emitRecords_)
        resetRecord(rec);
    rec.tid = tc.tid();
    rec.rid = tc.retired;
    AccessTag tag = tagFor(tc, now);

    switch (inst.op) {
      case Op::kNop:
        break;

      case Op::kLoad: {
        Addr ea = effectiveAddr(tc, inst);
        auto lr = dp_.load(core, ea, inst.size, tag);
        tc.regs[inst.dst] = lr.value;
        out.latency = std::max<Cycle>(1, lr.access.latency);
        out.event.arcs = std::move(lr.access.arcs);
        rec.type = EventType::kLoad;
        rec.dst = inst.dst;
        rec.addr = ea;
        rec.size = static_cast<std::uint8_t>(inst.size);
        break;
      }

      case Op::kStore: {
        Addr ea = effectiveAddr(tc, inst);
        if (!dp_.storeSpace(core))
            return blocked(tc, inst, BlockReason::kStoreBuffer, out);
        auto ar = dp_.store(core, ea, inst.size, tc.regs[inst.src], tag);
        out.latency = std::max<Cycle>(1, ar.latency);
        out.event.arcs = std::move(ar.arcs);
        out.event.versionRequests = std::move(ar.versionRequests);
        rec.type = EventType::kStore;
        rec.src = inst.src;
        rec.addr = ea;
        rec.size = static_cast<std::uint8_t>(inst.size);
        break;
      }

      case Op::kMovRR:
        tc.regs[inst.dst] = tc.regs[inst.src];
        rec.type = EventType::kMovRR;
        rec.dst = inst.dst;
        rec.src = inst.src;
        break;

      case Op::kMovImm:
        tc.regs[inst.dst] = inst.imm;
        rec.type = EventType::kMovImm;
        rec.dst = inst.dst;
        rec.value = inst.imm;
        break;

      case Op::kAlu:
        tc.regs[inst.dst] = tc.regs[inst.dst] + tc.regs[inst.src];
        rec.type = EventType::kAlu;
        rec.dst = inst.dst;
        rec.src = inst.src;
        out.latency = cfg_.aluLatency;
        break;

      case Op::kAluImm:
        tc.regs[inst.dst] += inst.imm;
        // Metadata of dst is unchanged by an immediate operand; no event
        // is needed for propagation-style lifeguards.
        break;

      case Op::kJumpReg:
        rec.type = EventType::kJump;
        rec.src = inst.src;
        rec.value = tc.regs[inst.src];
        break;

      case Op::kMalloc:
        expandMalloc(tc, inst);
        out.latency = 1;
        break;

      case Op::kFree:
        expandFree(tc, inst);
        out.latency = 1;
        break;

      case Op::kSyscallRead:
      case Op::kSyscallWrite:
        expandSyscall(tc, inst);
        out.latency = 1;
        break;

      case Op::kLock: {
        // A fence first: acquiring a lock drains the TSO store buffer.
        Cycle drain = dp_.fence(core);
        if (!locks_.tryAcquire(inst.addr, tc.tid())) {
            blocked(tc, inst, BlockReason::kLock, out);
            out.latency += drain;
            stats.counter("lock_spins").inc();
            return;
        }
        auto ar = dp_.store(core, inst.addr, 8, tc.tid() + 1, tag);
        out.latency = std::max<Cycle>(1, ar.latency) + drain;
        out.event.arcs = std::move(ar.arcs);
        rec.type = EventType::kLockAcquire;
        rec.addr = inst.addr;
        stats.counter("lock_acquires").inc();
        break;
      }

      case Op::kUnlock: {
        Cycle drain = dp_.fence(core);
        locks_.release(inst.addr, tc.tid());
        auto ar = dp_.store(core, inst.addr, 8, 0, tag);
        out.latency = std::max<Cycle>(1, ar.latency) + drain;
        out.event.arcs = std::move(ar.arcs);
        rec.type = EventType::kLockRelease;
        rec.addr = inst.addr;
        break;
      }

      case Op::kBarrier: {
        const bool wait_phase = (inst.imm >> 32) != 0;
        if (!wait_phase) {
            // Arrival: fence, then RMW the barrier word so later
            // arrivals (and the eventual release read) are ordered
            // after us by coherence arcs.
            Cycle drain = dp_.fence(core);
            barriers_.arrive(inst.addr, tc.tid(),
                             static_cast<std::uint32_t>(inst.imm));
            auto ar = dp_.store(core, inst.addr, 8, tc.tid() + 1, tag);
            out.latency = std::max<Cycle>(1, ar.latency) + drain;
            out.event.arcs = std::move(ar.arcs);
            rec.type = EventType::kBarrierPass;
            rec.addr = inst.addr;
            Inst wait = inst;
            wait.imm |= 1ULL << 32;
            tc.pushMicroOp(wait);
            stats.counter("barrier_arrivals").inc();
        } else {
            if (!barriers_.isReleased(inst.addr, tc.tid()))
                return blocked(tc, inst, BlockReason::kBarrier, out);
            barriers_.depart(inst.addr, tc.tid());
            // Read the barrier word: the coherence arc from the last
            // arriver's store orders every lifeguard after the release.
            auto lr = dp_.load(core, inst.addr, 8, tag);
            out.latency = std::max<Cycle>(1, lr.access.latency);
            out.event.arcs = std::move(lr.access.arcs);
            rec.type = EventType::kBarrierPass;
            rec.addr = inst.addr;
            rec.value = 1; // exit phase: a read of the barrier word
        }
        break;
      }

      case Op::kDone: {
        Cycle drain = dp_.fence(core);
        out.latency = 1 + drain;
        rec.type = EventType::kThreadDone;
        tc.markDone();
        break;
      }

      // ------- internal micro-ops -------

      case Op::kMallocCore: {
        Addr payload = heap_.allocate(inst.imm, tc.tid());
        if (payload == 0)
            fatal("simulated heap exhausted (alloc of %llu bytes)",
                  static_cast<unsigned long long>(inst.imm));
        tc.regs[inst.dst] = payload;
        tc.pendingAlloc = AddrRange{payload, payload + inst.imm};
        // The pointer write into dst clears its metadata (like mov imm).
        rec.type = EventType::kMovImm;
        rec.dst = inst.dst;
        rec.value = payload;
        break;
      }

      case Op::kFreeCore: {
        Addr payload =
            (inst.src == 0xff) ? inst.addr : tc.regs[inst.src];
        std::uint64_t size = heap_.blockSize(payload);
        if (size == 0) {
            warn("application double-free/invalid free of %#llx",
                 static_cast<unsigned long long>(payload));
            tc.pendingFree = AddrRange{};
        } else {
            tc.pendingFree = AddrRange{payload, payload + size};
            heap_.release(payload);
        }
        break;
      }

      case Op::kHeaderLoad: {
        AddrRange r = (inst.imm == 0) ? tc.pendingAlloc : tc.pendingFree;
        if (r.empty())
            break;
        auto lr = dp_.load(core, Heap::headerAddr(r.begin), 8, tag);
        out.latency = std::max<Cycle>(1, lr.access.latency);
        out.event.arcs = std::move(lr.access.arcs);
        rec.type = EventType::kLoad;
        rec.dst = kNumRegs - 1; // scratch register
        rec.addr = Heap::headerAddr(r.begin);
        rec.size = 8;
        rec.wrapper = true;
        break;
      }

      case Op::kHeaderStore: {
        AddrRange r = (inst.imm == 0) ? tc.pendingAlloc : tc.pendingFree;
        if (r.empty())
            break;
        if (!dp_.storeSpace(core))
            return blocked(tc, inst, BlockReason::kStoreBuffer, out);
        auto ar = dp_.store(core, Heap::headerAddr(r.begin), 8,
                            r.size(), tag);
        out.latency = std::max<Cycle>(1, ar.latency);
        out.event.arcs = std::move(ar.arcs);
        out.event.versionRequests = std::move(ar.versionRequests);
        rec.type = EventType::kStore;
        rec.src = kNumRegs - 1;
        rec.addr = Heap::headerAddr(r.begin);
        rec.size = 8;
        rec.wrapper = true;
        break;
      }

      case Op::kHighLevel: {
        auto kind = static_cast<HighLevelKind>(inst.hlKind);
        AddrRange range = inst.range;
        switch (kind) {
          case HighLevelKind::kMallocEnd:
            range = tc.pendingAlloc;
            rec.type = EventType::kMallocEnd;
            break;
          case HighLevelKind::kFreeBegin:
            range = tc.pendingFree;
            rec.type = EventType::kFreeBegin;
            break;
          case HighLevelKind::kSyscallBegin:
            rec.type = EventType::kSyscallBegin;
            rec.syscall = (inst.imm == 1) ? SyscallKind::kRead
                                          : SyscallKind::kWrite;
            break;
          case HighLevelKind::kSyscallEnd:
            rec.type = EventType::kSyscallEnd;
            rec.syscall = (inst.imm == 1) ? SyscallKind::kRead
                                          : SyscallKind::kWrite;
            break;
        }
        rec.range = range;
        out.event.caBroadcast = inst.ca;
        out.event.caKind = kind;
        break;
      }

      case Op::kDrainWait:
        if (!hooks_.lifeguardDrained(tc.tid())) {
            stats.counter("drain_stalls").inc();
            return blocked(tc, inst, BlockReason::kDrain, out);
        }
        break;

      case Op::kKernelCopy: {
        // The OS writes the buffer without producing events or arcs.
        if (inst.imm == 1) {
            for (std::uint32_t off = 0; off < inst.size; off += 8) {
                unsigned n = std::min<std::uint32_t>(8, inst.size - off);
                std::uint64_t v = (inst.addr + off) ^ 0x5ca1ab1e5ca1ab1eULL;
                mem_.kernelWrite(inst.addr + off, n, v);
            }
        }
        out.latency = 200 + inst.size / 8; // syscall cost model
        break;
      }

      default:
        panic("unhandled op %d", static_cast<int>(inst.op));
    }

    retiredCtr_.inc();
}

} // namespace paralog
