#include "app/event.hpp"

namespace paralog {

std::uint32_t
EventRecord::compressedBytes() const
{
    // Compression model from the LBA work: common instruction records
    // average ~1 byte; dependence arcs, versions and high-level records
    // carry extra payload.
    std::uint32_t bytes;
    switch (type) {
      case EventType::kLoad:
      case EventType::kStore:
      case EventType::kMovRR:
      case EventType::kMovImm:
      case EventType::kAlu:
      case EventType::kJump:
        bytes = 1;
        break;
      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kBarrierPass:
        bytes = 2;
        break;
      default:
        bytes = 8; // high-level / CA / version records
        break;
    }
    bytes += 4 * static_cast<std::uint32_t>(arcs.size());
    if (version.valid() || consumesVersion)
        bytes += 4;
    return bytes;
}

const char *
toString(EventType t)
{
    switch (t) {
      case EventType::kNone: return "none";
      case EventType::kLoad: return "load";
      case EventType::kStore: return "store";
      case EventType::kMovRR: return "mov_rr";
      case EventType::kMovImm: return "mov_imm";
      case EventType::kAlu: return "alu";
      case EventType::kJump: return "jump";
      case EventType::kMallocEnd: return "malloc_end";
      case EventType::kFreeBegin: return "free_begin";
      case EventType::kSyscallBegin: return "syscall_begin";
      case EventType::kSyscallEnd: return "syscall_end";
      case EventType::kLockAcquire: return "lock_acquire";
      case EventType::kLockRelease: return "lock_release";
      case EventType::kBarrierPass: return "barrier_pass";
      case EventType::kThreadDone: return "thread_done";
      case EventType::kThreadSwitch: return "thread_switch";
      case EventType::kCaBegin: return "ca_begin";
      case EventType::kCaEnd: return "ca_end";
      case EventType::kProduceVersion: return "produce_version";
    }
    return "?";
}

} // namespace paralog
