#include "app/thread_context.hpp"

#include "common/logging.hpp"

namespace paralog {

bool
ThreadContext::fetch(Inst &out)
{
    if (!microOps_.empty()) {
        out = microOps_.front();
        microOps_.pop_front();
        return true;
    }
    if (programExhausted_ || done_)
        return false;
    std::optional<Inst> inst = program_ ? program_->next(*this)
                                        : std::nullopt;
    if (!inst) {
        programExhausted_ = true;
        out = Inst::done();
        return true;
    }
    PARALOG_ASSERT(!isInternalOp(inst->op),
                   "program emitted internal micro-op");
    ++programInsts;
    out = *inst;
    return true;
}

void
ThreadContext::pushMicroOps(std::initializer_list<Inst> ops)
{
    for (const Inst &op : ops)
        microOps_.push_back(op);
}

} // namespace paralog
