#include "app/thread_context.hpp"

#include "common/logging.hpp"

namespace paralog {

bool
ThreadContext::fetch(Inst &out)
{
    if (microHead_ < microOps_.size()) {
        out = microOps_[microHead_++];
        if (microHead_ == microOps_.size()) {
            microOps_.clear();
            microHead_ = 0;
        }
        return true;
    }
    if (programExhausted_ || done_)
        return false;
    if (progHead_ >= progBuf_.size()) {
        progBuf_.clear();
        progHead_ = 0;
        if (program_)
            program_->take(progBuf_, *this);
        if (progBuf_.empty()) {
            programExhausted_ = true;
            out = Inst::done();
            return true;
        }
    }
    const Inst &inst = progBuf_[progHead_++];
    PARALOG_ASSERT(!isInternalOp(inst.op),
                   "program emitted internal micro-op");
    ++programInsts;
    out = inst;
    return true;
}

void
ThreadContext::pushMicroOps(std::initializer_list<Inst> ops)
{
    for (const Inst &op : ops)
        microOps_.push_back(op);
}

} // namespace paralog
