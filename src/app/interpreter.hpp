/**
 * @file
 * Executes micro-ISA instructions for one thread at a time, performing
 * real data movement through the coherent memory system and expanding
 * high-level operations (malloc/free/lock/syscall) into the micro-op
 * sequences a wrapper library would produce (paper section 5.4).
 */

#ifndef PARALOG_APP_INTERPRETER_HPP
#define PARALOG_APP_INTERPRETER_HPP

#include "app/data_path.hpp"
#include "app/event.hpp"
#include "app/heap.hpp"
#include "app/sync.hpp"
#include "app/thread_context.hpp"
#include "common/stats.hpp"
#include "sim/config.hpp"

namespace paralog {

/** Queries the interpreter needs answered by the monitoring platform. */
class PlatformHooks
{
  public:
    virtual ~PlatformHooks() = default;

    /** Damage containment: has tid's lifeguard consumed every pending
     *  record? (Always true when monitoring is off.) */
    virtual bool lifeguardDrained(ThreadId tid) = 0;
};

class Interpreter
{
  public:
    struct StepOutcome
    {
        enum class Kind : std::uint8_t
        {
            kRetired, ///< one micro-op retired; event may carry a record
            kBlocked, ///< could not make progress; see tc.blockReason
            kDone,    ///< thread has exited
        };

        Kind kind = Kind::kRetired;
        Cycle latency = 1;
        AppEvent event;
    };

    Interpreter(const SimConfig &cfg, DataPath &dp, MemorySystem &mem,
                Heap &heap, LockManager &locks, BarrierManager &barriers,
                PlatformHooks &hooks);

    /**
     * Execute the next micro-op of @p tc on @p core at cycle @p now.
     * On kRetired the caller must append event.record (if type != kNone)
     * to the thread's stream and advance tc.retired.
     *
     * @p out is a caller-owned scratch reused across steps (this is the
     * per-instruction fast path: reuse avoids a StepOutcome construct /
     * destruct pair per micro-op). Only the fields defined for the
     * returned kind are valid; in no-monitoring runs the event payload
     * is not populated at all.
     */
    void step(ThreadContext &tc, CoreId core, Cycle now, StepOutcome &out);

    /** Convenience by-value wrapper (tests). */
    StepOutcome
    step(ThreadContext &tc, CoreId core, Cycle now)
    {
        StepOutcome out;
        step(tc, core, now, out);
        return out;
    }

    StatSet stats{"interp"};

  private:
    void execute(ThreadContext &tc, CoreId core, Cycle now,
                 const Inst &inst, StepOutcome &out);
    void blocked(ThreadContext &tc, const Inst &inst, BlockReason reason,
                 StepOutcome &out);

    AccessTag tagFor(const ThreadContext &tc, Cycle now) const;
    static Addr effectiveAddr(const ThreadContext &tc, const Inst &inst);
    void expandMalloc(ThreadContext &tc, const Inst &inst);
    void expandFree(ThreadContext &tc, const Inst &inst);
    void expandSyscall(ThreadContext &tc, const Inst &inst);

    const SimConfig &cfg_;
    /// Record payloads are only populated when someone consumes them
    /// (capture enabled); no-monitoring runs skip the per-instruction
    /// event reset entirely.
    bool emitRecords_;
    Counter &retiredCtr_{stats.counter("retired")};
    DataPath &dp_;
    MemorySystem &mem_;
    Heap &heap_;
    LockManager &locks_;
    BarrierManager &barriers_;
    PlatformHooks &hooks_;
};

} // namespace paralog

#endif // PARALOG_APP_INTERPRETER_HPP
