/**
 * @file
 * Event record types: the unit of communication between the monitored
 * application (event capture) and the lifeguard (event delivery). This is
 * the paper's per-thread "event stream" (Figures 1, 2 and 4).
 */

#ifndef PARALOG_APP_EVENT_HPP
#define PARALOG_APP_EVENT_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/memory_system.hpp"

namespace paralog {

enum class HighLevelKind : std::uint8_t
{
    kMallocEnd,
    kFreeBegin,
    kSyscallBegin,
    kSyscallEnd,
};

enum class EventType : std::uint8_t
{
    kNone,
    // Instruction-level events.
    kLoad,   ///< dst <- mem[addr]
    kStore,  ///< mem[addr] <- src
    kMovRR,  ///< dst <- src
    kMovImm, ///< dst <- constant (clears metadata)
    kAlu,    ///< dst <- dst op src (metadata union)
    kJump,   ///< indirect jump through src (critical use)
    // High-level (wrapper library / OS) events.
    kMallocEnd,    ///< allocation completed, range = [begin, end)
    kFreeBegin,    ///< deallocation starting, range = [begin, end)
    kSyscallBegin, ///< entering a system call touching range
    kSyscallEnd,   ///< returned from a system call touching range
    kLockAcquire,  ///< lock word at addr acquired
    kLockRelease,  ///< lock word at addr released
    kBarrierPass,  ///< passed a phase barrier at addr
    kThreadDone,   ///< thread exited; progress becomes infinite
    kThreadSwitch, ///< timesliced mode: subsequent records belong to tid
                   ///< given in 'value'
    // Order-capture bookkeeping records.
    kCaBegin, ///< ConflictAlert begin (value = CA sequence number)
    kCaEnd,   ///< ConflictAlert end   (value = CA sequence number)
    kProduceVersion, ///< TSO: snapshot metadata(addr) under 'version'
};

/** Sentinel: record did not broadcast a ConflictAlert. */
inline constexpr std::uint64_t kNoCaSeq = ~0ULL;

/** Which syscall a kSyscall{Begin,End} record refers to. */
enum class SyscallKind : std::uint8_t
{
    kNone,
    kRead,  ///< fills [range): untrusted data (TaintCheck taints it)
    kWrite, ///< reads [range): output (TaintCheck checks for leaks)
};

/**
 * One record in a thread's event stream.
 *
 * The dependence arc (if any) is stored at the receiving end per the
 * paper's order-capturing design; 'version' implements the TSO
 * produce/consume annotations of section 5.5.
 */
struct EventRecord
{
    EventType type = EventType::kNone;
    ThreadId tid = kInvalidThread;
    RecordId rid = kInvalidRecord;
    RegId dst = 0;
    RegId src = 0;
    std::uint8_t size = 0;
    Addr addr = 0;
    std::uint64_t value = 0; ///< imm / CA seq / switch target
    AddrRange range{};
    SyscallKind syscall = SyscallKind::kNone;
    HighLevelKind caKind = HighLevelKind::kMallocEnd; ///< for CA records
    /// ConflictAlert sequence this high-level event broadcast (issuer
    /// side); kNoCaSeq if none.
    std::uint64_t caSeq = kNoCaSeq;
    std::vector<DepArc> arcs; ///< inter-thread dependences (post-reduction)
    VersionTag version{};///< produce/consume version (invalid if none)
    bool consumesVersion = false; ///< read annotated with a version
    /// Access performed by the trusted wrapper library (allocator
    /// headers): captured for ordering but not checked by lifeguards.
    bool wrapper = false;
    /// Bytes charged against the log buffer at append time (annotations
    /// added later — TSO arcs, versions — must not skew accounting).
    std::uint32_t chargedBytes = 0;
    /// Simulated cycle at which the application core appended this
    /// record (equal to the retiring access's AccessTag::retireCycle).
    /// Transient capture-side state for the live-parallel publication
    /// seal (CaptureUnit::publishSealed): a record may leave the
    /// producer's log buffer only once no buffered TSO store can still
    /// target it with a consume-version annotation. Never serialized;
    /// CA-arrival and produce-version insertions keep 0 (they are never
    /// the target of a version request — those name a memory access's
    /// AccessTag rid, whose own record carries the real append cycle).
    Cycle appendCycle = 0;

    bool isMemAccess() const
    {
        return type == EventType::kLoad || type == EventType::kStore;
    }

    bool isHighLevel() const
    {
        return type >= EventType::kMallocEnd &&
               type <= EventType::kThreadSwitch;
    }

    /** Modelled compressed size in the log buffer (~1 B per record). */
    std::uint32_t compressedBytes() const;

    /** Back to the default-constructed state, but keeping `arcs`'
     *  capacity: decode hot paths reuse one record across millions of
     *  calls, and `*this = EventRecord{}` would free the vector's
     *  buffer every time. */
    void
    reset()
    {
        type = EventType::kNone;
        tid = kInvalidThread;
        rid = kInvalidRecord;
        dst = 0;
        src = 0;
        size = 0;
        addr = 0;
        value = 0;
        range = AddrRange{};
        syscall = SyscallKind::kNone;
        caKind = HighLevelKind::kMallocEnd;
        caSeq = kNoCaSeq;
        arcs.clear();
        version = VersionTag{};
        consumesVersion = false;
        wrapper = false;
        chargedBytes = 0;
        appendCycle = 0;
    }
};

/**
 * What the interpreter hands the capture unit after retiring one
 * micro-op: the record to append plus raw dependence information from
 * the coherence fabric.
 */
struct AppEvent
{
    EventRecord record;
    std::vector<RawArc> arcs;
    std::vector<VersionRequest> versionRequests;
    bool caBroadcast = false; ///< platform must broadcast a ConflictAlert
    HighLevelKind caKind = HighLevelKind::kMallocEnd;
};

const char *toString(EventType t);

} // namespace paralog

#endif // PARALOG_APP_EVENT_HPP
