/**
 * @file
 * Interface implemented by workloads: a per-thread instruction generator.
 */

#ifndef PARALOG_APP_PROGRAM_HPP
#define PARALOG_APP_PROGRAM_HPP

#include <memory>
#include <optional>

#include "isa/inst.hpp"

namespace paralog {

class ThreadContext;

/**
 * One simulated application thread's instruction source.
 *
 * next() is called when the previous instruction retired; the generator
 * may read register values from the context (set by earlier loads), which
 * is how pointer-chasing workloads are expressed.
 */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /** Produce the next instruction; std::nullopt terminates the thread. */
    virtual std::optional<Inst> next(ThreadContext &tc) = 0;
};

using ThreadProgramPtr = std::unique_ptr<ThreadProgram>;

} // namespace paralog

#endif // PARALOG_APP_PROGRAM_HPP
