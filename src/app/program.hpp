/**
 * @file
 * Interface implemented by workloads: a per-thread instruction generator.
 */

#ifndef PARALOG_APP_PROGRAM_HPP
#define PARALOG_APP_PROGRAM_HPP

#include <memory>
#include <optional>
#include <vector>

#include "isa/inst.hpp"

namespace paralog {

class ThreadContext;

/**
 * One simulated application thread's instruction source.
 *
 * next() is called when the previous instruction retired; the generator
 * may read register values from the context (set by earlier loads), which
 * is how pointer-chasing workloads are expressed.
 */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /** Produce the next instruction; std::nullopt terminates the thread. */
    virtual std::optional<Inst> next(ThreadContext &tc) = 0;

    /**
     * Bulk variant of next() used by the fetch fast path: append the
     * next batch of instructions to @p out; appending nothing
     * terminates the thread. The default forwards to next() one
     * instruction at a time (identical cadence for simple generators);
     * ScriptProgram overrides it to hand over a whole refill at once,
     * skipping the per-instruction virtual call and copies.
     */
    virtual std::size_t
    take(std::vector<Inst> &out, ThreadContext &tc)
    {
        if (std::optional<Inst> inst = next(tc)) {
            out.push_back(*inst);
            return 1;
        }
        return 0;
    }
};

using ThreadProgramPtr = std::unique_ptr<ThreadProgram>;

} // namespace paralog

#endif // PARALOG_APP_PROGRAM_HPP
