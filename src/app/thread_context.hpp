/**
 * @file
 * Architectural state of one simulated application thread: register file,
 * micro-op queue (wrapper-library expansions), and blocking status.
 */

#ifndef PARALOG_APP_THREAD_CONTEXT_HPP
#define PARALOG_APP_THREAD_CONTEXT_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "app/program.hpp"
#include "common/types.hpp"
#include "isa/inst.hpp"

namespace paralog {

enum class BlockReason : std::uint8_t
{
    kNone,
    kLogFull,     ///< event stream buffer is full
    kLock,        ///< spinning on a held lock
    kBarrier,     ///< waiting at a phase barrier
    kDrain,       ///< damage containment: lifeguard draining before syscall
    kCaAck,       ///< waiting for ConflictAlert acknowledgements
    kStoreBuffer, ///< TSO store buffer full
};

class ThreadContext
{
  public:
    ThreadContext(ThreadId tid, ThreadProgramPtr program)
        : tid_(tid), program_(std::move(program))
    {
        regs.fill(0);
    }

    ThreadId tid() const { return tid_; }

    /** Register file, readable/writable by programs between steps. */
    std::array<std::uint64_t, kNumRegs> regs;

    /** Fetch the next micro-op (expansion queue first, then program). */
    bool fetch(Inst &out);

    /** Push expansion micro-ops (executed before the next program inst). */
    void pushMicroOps(std::initializer_list<Inst> ops);
    void pushMicroOp(const Inst &op) { microOps_.push_back(op); }

    /** Re-execute the current op later (blocked). */
    void
    retry(const Inst &op)
    {
        // The op was just fetched: if it came off the queue, the slot in
        // front of the cursor is free again; otherwise prepend (rare,
        // and the queue is empty or tiny then).
        if (microHead_ > 0)
            microOps_[--microHead_] = op;
        else
            microOps_.insert(microOps_.begin(), op);
    }

    bool done() const { return done_; }
    void markDone() { done_ = true; }

    BlockReason blockReason = BlockReason::kNone;

    /** Retired micro-op count == next record id. */
    RecordId retired = 0;

    /** In-flight allocation/free bound by kMallocCore / kFreeCore. */
    AddrRange pendingAlloc{};
    AddrRange pendingFree{};

    std::uint64_t programInsts = 0; ///< program-visible instructions

  private:
    ThreadId tid_;
    ThreadProgramPtr program_;
    /// Micro-op queue as a flat vector + cursor (per-instruction fetch
    /// fast path); recycled in place whenever it drains.
    std::vector<Inst> microOps_;
    std::size_t microHead_ = 0;
    /// Program-instruction buffer filled in bulk via
    /// ThreadProgram::take(), consumed with one copy per fetch.
    std::vector<Inst> progBuf_;
    std::size_t progHead_ = 0;
    bool done_ = false;
    bool programExhausted_ = false;
};

} // namespace paralog

#endif // PARALOG_APP_THREAD_CONTEXT_HPP
