/**
 * @file
 * Abstraction over how application loads/stores reach the coherent memory
 * system. The SC data path issues accesses immediately at retirement; the
 * TSO data path (capture/store_buffer.hpp) buffers stores and drains them
 * later, which is where non-SC behaviour and metadata versioning arise.
 */

#ifndef PARALOG_APP_DATA_PATH_HPP
#define PARALOG_APP_DATA_PATH_HPP

#include <cstdint>

#include "common/types.hpp"
#include "mem/memory_system.hpp"

namespace paralog {

class DataPath
{
  public:
    struct LoadResult
    {
        std::uint64_t value = 0;
        AccessResult access;
    };

    virtual ~DataPath() = default;

    virtual LoadResult load(CoreId core, Addr addr, unsigned size,
                            const AccessTag &tag) = 0;

    virtual AccessResult store(CoreId core, Addr addr, unsigned size,
                               std::uint64_t value, const AccessTag &tag) = 0;

    /** True if a store can be accepted right now (TSO buffer space). */
    virtual bool storeSpace(CoreId core) const { (void)core; return true; }

    /** Drain all buffered stores (lock/barrier/syscall fence). Returns
     *  the cycles spent draining. */
    virtual Cycle fence(CoreId core) { (void)core; return 0; }
};

/** Sequentially consistent data path: accesses complete at retirement.
 *  Arc capture is disabled for the timesliced baseline (its merged
 *  stream is already totally ordered). */
class ScDataPath : public DataPath
{
  public:
    explicit ScDataPath(MemorySystem &mem, bool capture_arcs = true)
        : mem_(mem), captureArcs_(capture_arcs)
    {
    }

    LoadResult
    load(CoreId core, Addr addr, unsigned size,
         const AccessTag &tag) override
    {
        LoadResult r;
        r.access = mem_.access(core, addr, size, false, tag, captureArcs_);
        r.value = mem_.memory().read(addr, size);
        return r;
    }

    AccessResult
    store(CoreId core, Addr addr, unsigned size, std::uint64_t value,
          const AccessTag &tag) override
    {
        AccessResult a =
            mem_.access(core, addr, size, true, tag, captureArcs_);
        mem_.memory().write(addr, size, value);
        return a;
    }

  private:
    MemorySystem &mem_;
    bool captureArcs_;
};

} // namespace paralog

#endif // PARALOG_APP_DATA_PATH_HPP
