#include "mem/main_memory.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace paralog {

MainMemory::Page &
MainMemory::pageFor(Addr addr)
{
    std::uint64_t pn = addr >> kPageShift;
    auto it = pages_.find(pn);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(pn, std::move(page)).first;
    }
    return *it->second;
}

const MainMemory::Page *
MainMemory::pageForConst(Addr addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    PARALOG_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        const Page *p = pageForConst(a);
        std::uint8_t byte = p ? (*p)[a & (kPageBytes - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
MainMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    PARALOG_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        pageFor(a)[a & (kPageBytes - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

} // namespace paralog
