#include "mem/main_memory.hpp"

#include <bit>
#include <cstring>

#include "common/logging.hpp"

namespace paralog {

// The single-page fast paths memcpy raw host bytes; the cross-page slow
// paths assemble values with little-endian shifts. Both must agree.
static_assert(std::endian::native == std::endian::little,
              "MainMemory fast paths assume a little-endian host");

MainMemory::Page &
MainMemory::pageFor(Addr addr)
{
    std::uint64_t pn = addr >> kPageShift;
    if (pn == cachedPn_)
        return *cachedPage_;
    std::unique_ptr<Page> &slot = pages_[pn];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    cachedPn_ = pn;
    cachedPage_ = slot.get();
    return *cachedPage_;
}

const MainMemory::Page *
MainMemory::pageForConst(Addr addr) const
{
    std::uint64_t pn = addr >> kPageShift;
    if (pn == cachedPn_)
        return cachedPage_;
    const std::unique_ptr<Page> *slot = pages_.find(pn);
    if (!slot)
        return nullptr;
    cachedPn_ = pn;
    cachedPage_ = slot->get();
    return cachedPage_;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    PARALOG_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    std::uint64_t in_page = addr & (kPageBytes - 1);
    if (in_page + size <= kPageBytes) {
        // Common case: the access stays on one page — resolve it once.
        const Page *p = pageForConst(addr);
        if (!p)
            return 0;
        std::uint64_t value = 0;
        std::memcpy(&value, p->data() + in_page, size);
        return value;
    }
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        const Page *p = pageForConst(a);
        std::uint8_t byte = p ? (*p)[a & (kPageBytes - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
MainMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    PARALOG_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    std::uint64_t in_page = addr & (kPageBytes - 1);
    if (in_page + size <= kPageBytes) {
        std::memcpy(pageFor(addr).data() + in_page, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        pageFor(a)[a & (kPageBytes - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

} // namespace paralog
