/**
 * @file
 * Coherent two-level memory hierarchy: per-core private L1-D caches and a
 * shared inclusive L2, with MESI-style invalidation coherence.
 *
 * This is the substrate the paper's order-capturing hardware taps: every
 * coherence transition that transfers or invalidates a block carries the
 * remote block's last-access (thread, record-id) tag, which the caller
 * records as a happened-before dependence arc (section 5.1). In per-core
 * ("limited reduction") mode the producing core's current retire counter
 * is sent instead of the per-block tag.
 *
 * Under TSO, a write that invalidates a block whose last access was a
 * *read* that retired after the write retired is an SC violation: instead
 * of an (un-enforceable) R->W arc the caller receives a version request,
 * triggering the versioned-metadata protocol of section 5.5.
 */

#ifndef PARALOG_MEM_MEMORY_SYSTEM_HPP
#define PARALOG_MEM_MEMORY_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "sim/config.hpp"

namespace paralog {

/** Raw dependence information produced by one access (pre-reduction). */
struct RawArc
{
    ThreadId tid = kInvalidThread; ///< producing thread
    RecordId rid = kInvalidRecord; ///< its record id (or current counter)
    bool fromRead = false;         ///< producer's last access was a read
};

/** TSO version request: the remote reader that violates SC. */
struct VersionRequest
{
    ThreadId readerTid = kInvalidThread;
    RecordId readerRid = kInvalidRecord;
};

/** Outcome of one timed memory access. */
struct AccessResult
{
    Cycle latency = 0;
    std::vector<RawArc> arcs;
    std::vector<VersionRequest> versionRequests;
};

/** Identity of the access for dependence tagging. */
struct AccessTag
{
    ThreadId tid = kInvalidThread;
    RecordId rid = kInvalidRecord;
    Cycle retireCycle = 0;
};

class MemorySystem
{
  public:
    MemorySystem(const SimConfig &cfg, std::uint32_t num_cores);

    /**
     * Perform a timed, coherent data access by @p core.
     *
     * @param tag identity used for per-block dependence tags; pass an
     *            invalid tag for unmonitored accesses (lifeguard metadata)
     * @param capture_arcs collect dependence arcs / version requests
     */
    AccessResult access(CoreId core, Addr addr, unsigned size, bool is_write,
                        const AccessTag &tag, bool capture_arcs);

    /**
     * Unmonitored OS-kernel write (e.g. a read() system call filling a
     * user buffer): updates memory and invalidates cached copies but
     * produces *no* dependence arcs — the visibility gap that
     * ConflictAlert messages compensate for (section 5.4).
     */
    void kernelWrite(Addr addr, unsigned size, std::uint64_t value);

    /** Data-side read/write helpers (values live in MainMemory). */
    MainMemory &memory() { return memory_; }

    /**
     * Advance the per-core retire counter used by per-core ("limited")
     * dependence tracking.
     */
    void setCoreCounter(CoreId core, RecordId rid);

    /** Flush one core's L1 (context switch in timesliced mode). */
    void flushL1(CoreId core);

    /** Current MESI state of @p addr in @p core's L1 (for tests). */
    LineState l1State(CoreId core, Addr addr) const;

    Cache &l1(CoreId core) { return *l1s_[core]; }
    Cache &l2() { return *l2_; }

    StatSet stats{"mem"};

  private:
    struct DirEntry
    {
        std::uint32_t sharers = 0; ///< bitmask of cores with the line
        BlockTag lastWriter;       ///< tag preserved across L1 eviction
    };

    void accessLine(CoreId core, Addr line_addr, bool is_write,
                    const AccessTag &tag, bool capture_arcs,
                    AccessResult &result);
    void addArcFrom(const BlockTag &tag, CoreId producer_core,
                    const AccessTag &self, bool is_write,
                    AccessResult &result, bool capture_arcs);
    Cycle fillFromBelow(Addr line_addr);

    const SimConfig &cfg_;
    std::uint32_t numCores_;
    Counter &readsCtr_{stats.counter("reads")};
    Counter &writesCtr_{stats.counter("writes")};
    MainMemory memory_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    FlatAddrMap<DirEntry> directory_;
    std::vector<RecordId> coreCounter_;
    std::vector<ThreadId> coreThread_;

  public:
    /** Bind the thread currently running on @p core (per-core arcs name
     *  threads, not cores). */
    void bindThread(CoreId core, ThreadId tid);
};

} // namespace paralog

#endif // PARALOG_MEM_MEMORY_SYSTEM_HPP
