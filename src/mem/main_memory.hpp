/**
 * @file
 * Flat, sparse backing store for the simulated address space. Values are
 * real: loads return what stores wrote, so lifeguard analyses (taint
 * propagation, allocation checks) operate on genuine data flow.
 */

#ifndef PARALOG_MEM_MAIN_MEMORY_HPP
#define PARALOG_MEM_MAIN_MEMORY_HPP

#include <array>
#include <cstdint>
#include <memory>

#include "common/flat_map.hpp"
#include "common/types.hpp"

namespace paralog {

class MainMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::uint64_t kPageBytes = 1ULL << kPageShift;

    /** Read @p size bytes (1..8) at @p addr as a little-endian integer. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes (1..8) of @p value at @p addr. */
    void write(Addr addr, unsigned size, std::uint64_t value);

    std::uint64_t read64(Addr addr) const { return read(addr, 8); }
    void write64(Addr addr, std::uint64_t v) { write(addr, 8, v); }

    /** Number of distinct pages touched (for tests/stats). */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    FlatAddrMap<std::unique_ptr<Page>> pages_;

    /// Last-page cache (the simulator's access streams are strongly
    /// page-local). Page storage is stable, so the pointer stays valid;
    /// mutable so const readers share the fast path.
    mutable std::uint64_t cachedPn_ = ~0ULL;
    mutable Page *cachedPage_ = nullptr;
};

} // namespace paralog

#endif // PARALOG_MEM_MAIN_MEMORY_HPP
