#include "mem/memory_system.hpp"

#include "common/logging.hpp"

namespace paralog {

MemorySystem::MemorySystem(const SimConfig &cfg, std::uint32_t num_cores)
    : cfg_(cfg), numCores_(num_cores),
      coreCounter_(num_cores, 0), coreThread_(num_cores, kInvalidThread)
{
    PARALOG_ASSERT(num_cores >= 1 && num_cores <= 32,
                   "unsupported core count %u", num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        l1s_.push_back(std::make_unique<Cache>(
            cfg.l1d, strprintf("l1d.%u", c)));
    }
    l2_ = std::make_unique<Cache>(cfg.l2, "l2");
}

void
MemorySystem::bindThread(CoreId core, ThreadId tid)
{
    coreThread_[core] = tid;
}

void
MemorySystem::setCoreCounter(CoreId core, RecordId rid)
{
    coreCounter_[core] = rid;
}

AccessResult
MemorySystem::access(CoreId core, Addr addr, unsigned size, bool is_write,
                     const AccessTag &tag, bool capture_arcs)
{
    AccessResult result;
    Addr first_line = l1s_[core]->lineAddr(addr);
    Addr last_line = l1s_[core]->lineAddr(addr + size - 1);
    for (Addr la = first_line; la <= last_line;
         la += l1s_[core]->lineBytes()) {
        accessLine(core, la, is_write, tag, capture_arcs, result);
    }
    (is_write ? writesCtr_ : readsCtr_).inc();
    return result;
}

void
MemorySystem::addArcFrom(const BlockTag &block, CoreId producer_core,
                         const AccessTag &self, bool is_write,
                         AccessResult &result, bool capture_arcs)
{
    if (!capture_arcs || !block.valid())
        return;
    if (block.tid == self.tid)
        return; // same thread: program order already covers it

    // TSO (section 5.5): a write invalidating a block whose last access
    // was a read that retired *after* this write retired is a non-SC
    // R->W conflict. Reverse it into a W->R arc by requesting versioned
    // metadata instead of recording the (cycle-forming) arc.
    if (cfg_.memoryModel == MemoryModel::kTSO && is_write &&
        !block.wasWrite && block.retireCycle > self.retireCycle) {
        result.versionRequests.push_back(
            VersionRequest{block.tid, block.rid});
        stats.counter("sc_violations").inc();
        return;
    }

    RawArc arc;
    arc.tid = block.tid;
    arc.fromRead = !block.wasWrite;
    if (cfg_.depTracking == DepTracking::kPerBlock) {
        arc.rid = block.rid;
    } else {
        // Limited reduction: the producer core's current counter is
        // sent, a conservative over-approximation of the block tag.
        // The producing access retired strictly before the counter's
        // next value, so counter-1 covers it; using the raw counter
        // would demand a retirement that may never come (a thread
        // parked at a barrier), deadlocking the consumer.
        ThreadId t = coreThread_[producer_core];
        RecordId ctr = coreCounter_[producer_core];
        arc.rid = (t == block.tid && ctr > 0)
                      ? std::max(block.rid, ctr - 1)
                      : block.rid;
    }
    result.arcs.push_back(arc);
    stats.counter("arcs_raw").inc();
}

Cycle
MemorySystem::fillFromBelow(Addr line_addr)
{
    if (l2_->lookup(line_addr))
        return l2_->hitLatency();
    // L2 miss: fetch from memory, install in L2 (inclusive).
    Cache::Victim victim;
    l2_->insert(line_addr, LineState::kExclusive, &victim);
    if (victim.valid) {
        // Back-invalidate all L1 copies of the evicted L2 line. The
        // last-writer tag is preserved: losing it would silently drop
        // dependence arcs for long-lived communication lines (the
        // happens-before validator catches exactly this).
        if (DirEntry *de = directory_.find(victim.lineAddr)) {
            for (std::uint32_t c = 0; c < numCores_; ++c) {
                if (de->sharers & (1u << c))
                    l1s_[c]->invalidate(victim.lineAddr);
            }
            de->sharers = 0;
        }
    }
    return cfg_.memLatency;
}

void
MemorySystem::accessLine(CoreId core, Addr line_addr, bool is_write,
                         const AccessTag &tag, bool capture_arcs,
                         AccessResult &result)
{
    Cache &l1 = *l1s_[core];
    DirEntry &dir = directory_[line_addr];
    CacheLine *line = l1.lookup(line_addr);
    Cycle latency = l1.hitLatency();

    if (line) {
        if (is_write && line->state == LineState::kShared) {
            // Upgrade: invalidate all other sharers, collecting arcs.
            latency += l2_->hitLatency();
            for (std::uint32_t c = 0; c < numCores_; ++c) {
                if (c == core || !(dir.sharers & (1u << c)))
                    continue;
                if (CacheLine *remote = l1s_[c]->probe(line_addr)) {
                    addArcFrom(remote->lastAccess, c, tag, is_write,
                               result, capture_arcs);
                    remote->state = LineState::kInvalid;
                }
                dir.sharers &= ~(1u << c);
            }
            line->state = LineState::kModified;
            stats.counter("upgrades").inc();
        } else if (is_write && line->state == LineState::kExclusive) {
            line->state = LineState::kModified;
        }
    } else {
        // L1 miss: consult the directory for remote copies.
        bool remote_modified = false;
        for (std::uint32_t c = 0; c < numCores_; ++c) {
            if (c == core || !(dir.sharers & (1u << c)))
                continue;
            CacheLine *remote = l1s_[c]->probe(line_addr);
            if (!remote) {
                dir.sharers &= ~(1u << c);
                continue;
            }
            addArcFrom(remote->lastAccess, c, tag, is_write, result,
                       capture_arcs);
            if (remote->state == LineState::kModified) {
                remote_modified = true;
                // Write-back into L2; remember the writer's tag.
                dir.lastWriter = remote->lastAccess;
                l2_->insert(line_addr, LineState::kModified, nullptr);
            }
            if (is_write) {
                remote->state = LineState::kInvalid;
                dir.sharers &= ~(1u << c);
            } else if (remote->state != LineState::kShared) {
                remote->state = LineState::kShared;
            }
        }

        if (remote_modified) {
            // Cache-to-cache transfer through the shared L2.
            latency += l2_->hitLatency();
            stats.counter("c2c_transfers").inc();
        } else {
            if (dir.sharers == 0 && dir.lastWriter.valid()) {
                // The last writer's copy left the L1s; order after it via
                // the tag preserved in the directory (conservative).
                addArcFrom(dir.lastWriter, core, tag, is_write, result,
                           capture_arcs);
                if (is_write)
                    dir.lastWriter = BlockTag{};
            }
            latency += fillFromBelow(line_addr);
        }

        Cache::Victim victim;
        LineState fill_state;
        if (is_write)
            fill_state = LineState::kModified;
        else if (dir.sharers == 0)
            fill_state = LineState::kExclusive;
        else
            fill_state = LineState::kShared;
        line = &l1.insert(line_addr, fill_state, &victim);
        if (victim.valid) {
            if (DirEntry *de = directory_.find(victim.lineAddr))
                de->sharers &= ~(1u << core);
        }
        dir.sharers |= (1u << core);
    }

    // Refresh the per-block dependence tag (FDR-style).
    if (tag.tid != kInvalidThread) {
        line->lastAccess.tid = tag.tid;
        line->lastAccess.rid = tag.rid;
        line->lastAccess.retireCycle = tag.retireCycle;
        // A later read does not clear "written" status for WAW purposes;
        // but the *latest* access wins for arc generation (conservative
        // either way since same-thread order subsumes it).
        line->lastAccess.wasWrite = is_write;
        if (is_write)
            dir.lastWriter = line->lastAccess;
    }

    result.latency += latency;
}

void
MemorySystem::kernelWrite(Addr addr, unsigned size, std::uint64_t value)
{
    memory_.write(addr, size, value);
    Addr first_line = l2_->lineAddr(addr);
    Addr last_line = l2_->lineAddr(addr + size - 1);
    for (Addr la = first_line; la <= last_line; la += l2_->lineBytes()) {
        if (DirEntry *de = directory_.find(la)) {
            for (std::uint32_t c = 0; c < numCores_; ++c) {
                if (de->sharers & (1u << c))
                    l1s_[c]->invalidate(la);
            }
            de->sharers = 0;
            de->lastWriter = BlockTag{}; // OS writes carry no tag
        }
        l2_->invalidate(la);
    }
    stats.counter("kernel_writes").inc();
}

void
MemorySystem::flushL1(CoreId core)
{
    l1s_[core]->flushAll();
    directory_.forEach([core](std::uint64_t, DirEntry &de) {
        de.sharers &= ~(1u << core);
    });
}

LineState
MemorySystem::l1State(CoreId core, Addr addr) const
{
    const CacheLine *line = l1s_[core]->probe(addr);
    return line ? line->state : LineState::kInvalid;
}

} // namespace paralog
