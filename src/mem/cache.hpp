/**
 * @file
 * Set-associative cache tag model with LRU replacement.
 *
 * Each L1 line additionally carries the (thread id, record id, was-write,
 * retire-cycle) tag of its last access — the paper's FDR-style per-block
 * timestamp that is piggy-backed on coherence messages to produce
 * dependence arcs (section 5.1).
 */

#ifndef PARALOG_MEM_CACHE_HPP
#define PARALOG_MEM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"

namespace paralog {

/** MESI-style line state (we never need to distinguish E from S for
 *  dependence purposes, but keep both for fidelity). */
enum class LineState : std::uint8_t
{
    kInvalid,
    kShared,
    kExclusive,
    kModified,
};

/** Last-access tag recorded per L1 block (FDR-style). */
struct BlockTag
{
    ThreadId tid = kInvalidThread;
    RecordId rid = kInvalidRecord;
    Cycle retireCycle = 0;
    bool wasWrite = false;

    bool valid() const { return tid != kInvalidThread; }
};

struct CacheLine
{
    Addr tag = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t lruStamp = 0;
    BlockTag lastAccess; ///< per-block dependence timestamp

    bool valid() const { return state != LineState::kInvalid; }
};

/**
 * Tag-only cache model. Data lives in MainMemory; this class tracks
 * presence, coherence state and LRU victims.
 */
class Cache
{
  public:
    Cache(const CacheParams &params, std::string name);

    /** Result of a lookup/fill operation. */
    struct Victim
    {
        bool valid = false;        ///< a line was evicted
        Addr lineAddr = 0;         ///< base address of the evicted line
        LineState state = LineState::kInvalid;
    };

    /** Find the line containing @p addr, or nullptr. Updates LRU. */
    CacheLine *lookup(Addr addr);

    /** Find without touching LRU (for coherence probes). */
    CacheLine *probe(Addr addr);
    const CacheLine *probe(Addr addr) const;

    /**
     * Insert the line containing @p addr with @p state, evicting the LRU
     * way if needed. Returns the victim (if any) so the caller can
     * maintain inclusion/dirty write-back.
     */
    CacheLine &insert(Addr addr, LineState state, Victim *victim);

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Invalidate everything (context switch / barrier flush). */
    void flushAll();

    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }
    std::uint32_t lineBytes() const { return params_.lineBytes; }
    Cycle hitLatency() const { return params_.hitLatency; }
    std::uint32_t numSets() const { return numSets_; }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

  private:
    std::uint32_t setIndex(Addr addr) const;

    CacheParams params_;
    std::string name_;
    std::uint32_t numSets_;
    unsigned lineShift_; ///< log2(lineBytes): setIndex must not divide
    Addr lineMask_;
    std::uint64_t lruClock_ = 0;
    std::vector<CacheLine> lines_; // numSets_ * assoc, set-major
};

} // namespace paralog

#endif // PARALOG_MEM_CACHE_HPP
