#include "mem/cache.hpp"

#include "common/bitops.hpp"
#include "common/logging.hpp"

namespace paralog {

Cache::Cache(const CacheParams &params, std::string name)
    : params_(params), name_(std::move(name))
{
    PARALOG_ASSERT(isPowerOf2(params_.lineBytes), "line size must be 2^k");
    std::uint64_t lines_total = params_.sizeBytes / params_.lineBytes;
    PARALOG_ASSERT(lines_total % params_.assoc == 0,
                   "size/assoc mismatch in cache %s", name_.c_str());
    numSets_ = static_cast<std::uint32_t>(lines_total / params_.assoc);
    PARALOG_ASSERT(isPowerOf2(numSets_), "set count must be 2^k");
    lineShift_ = floorLog2(params_.lineBytes);
    lineMask_ = params_.lineBytes - 1;
    lines_.resize(lines_total);
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr >> lineShift_) & (numSets_ - 1));
}

CacheLine *
Cache::lookup(Addr addr)
{
    CacheLine *line = probe(addr);
    if (line) {
        line->lruStamp = ++lruClock_;
        ++hits;
    } else {
        ++misses;
    }
    return line;
}

CacheLine *
Cache::probe(Addr addr)
{
    Addr la = lineAddr(addr);
    std::uint32_t set = setIndex(addr);
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid() && base[w].tag == la)
            return &base[w];
    }
    return nullptr;
}

const CacheLine *
Cache::probe(Addr addr) const
{
    return const_cast<Cache *>(this)->probe(addr);
}

CacheLine &
Cache::insert(Addr addr, LineState state, Victim *victim)
{
    if (victim)
        victim->valid = false;
    Addr la = lineAddr(addr);
    std::uint32_t set = setIndex(addr);
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    CacheLine *slot = nullptr;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid()) {
            slot = &base[w];
            break;
        }
    }
    if (!slot) {
        // Evict the LRU way.
        slot = &base[0];
        for (std::uint32_t w = 1; w < params_.assoc; ++w) {
            if (base[w].lruStamp < slot->lruStamp)
                slot = &base[w];
        }
        if (victim) {
            victim->valid = true;
            victim->lineAddr = slot->tag;
            victim->state = slot->state;
        }
        ++evictions;
    }
    slot->tag = la;
    slot->state = state;
    slot->lruStamp = ++lruClock_;
    slot->lastAccess = BlockTag{};
    return *slot;
}

void
Cache::invalidate(Addr addr)
{
    if (CacheLine *line = probe(addr))
        line->state = LineState::kInvalid;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.state = LineState::kInvalid;
}

} // namespace paralog
