/**
 * @file
 * Replay execution mode: re-monitor a recorded run from its
 * `paralog-trace-v1` journal, with no application cores.
 *
 * One ReplayCore per recorded application thread re-applies the
 * journalled producer-side stream mutations (appends, CA insertions,
 * TSO annotations, visibility-limit moves, retire ticks) at their
 * recorded simulated cycles — and, within a cycle, only after the
 * recorded number of global lifeguard steps, which reproduces the live
 * scheduler's producer/consumer interleaving exactly. The lifeguard
 * cores, order enforcers, accelerators, progress table, ConflictAlert
 * barriers and version store are the real ones, so when the recorded
 * lifeguard is replayed the delivery order, lifeguard results, shadow
 * fingerprint and every stats column reproduce the live run
 * bit-identically (self-checked against the trace footer).
 *
 * Replaying under a *different* lifeguard re-monitors the same event
 * streams: results are genuine analysis output, but the recording only
 * contains what the recorded lifeguard's event filter captured, and
 * metadata-access timing uses a fresh memory hierarchy (no application
 * interference), so cross-lifeguard replays are approximate in timing
 * and in any events the recorded filter dropped.
 */

#ifndef PARALOG_CORE_REPLAY_HPP
#define PARALOG_CORE_REPLAY_HPP

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/lifeguard_core.hpp"
#include "core/platform.hpp"
#include "trace/trace_reader.hpp"

namespace paralog {

struct ReplayConfig
{
    std::string path;
    /// Replay under this lifeguard instead of the recorded one.
    bool lifeguardOverride = false;
    LifeguardKind lifeguard = LifeguardKind::kTaintCheck;
    /// Shadow shard override (results are shard-count invariant);
    /// kKeepRecorded leaves the recorded value.
    static constexpr std::uint32_t kKeepRecorded = 0xFFFFFFFFu;
    std::uint32_t shadowShards = kKeepRecorded;
    std::uint64_t maxCycles = 1ULL << 36;
    std::uint64_t stallWatchdogIters = 2'000'000;
    /// Skip the footer self-check (divergence diagnosis tooling).
    bool verify = true;
    /**
     * Host lifeguard threads. 0 and 1 select the serial engine
     * (bit-identical, footer-verified). >= 2 selects the concurrent
     * engine: one producer thread re-applies the journal while
     * min(lgThreads, k) consumer threads run the lifeguard cores,
     * fed through lock-free SPSC rings. Analysis results (shadow
     * fingerprint, violations, records processed, versions) stay
     * identical to the serial engine; simulated *timing* is relaxed
     * (see runConcurrent).
     */
    std::uint32_t lgThreads = 0;
    /**
     * Worker threads for decoding v2 ops chunks at open (> 1 decodes
     * every chunk eagerly in parallel; 0/1 decodes lazily as replay
     * reaches each chunk). No effect on v1 recordings. Results are
     * identical either way — this is purely a wall-clock knob.
     */
    std::uint32_t decodeJobs = 1;
};

/** Feeds one recorded thread's journal into its capture unit. */
class ReplayCore
{
  public:
    /** @p filter re-filters replayed appends for a lifeguard other
     *  than the recorded one (null = replay verbatim). Carried arcs of
     *  dropped records move to the next surviving record, like the
     *  live capture unit's conservative carry. */
    ReplayCore(ThreadId tid, trace::TraceReader &reader,
               CaptureUnit &unit, CaManager &ca,
               const EventFilter *filter = nullptr);

    /** The next journal op not yet applied, or nullptr at stream end. */
    const trace::TraceOp *peek();

    /** Apply the pending op to the capture unit / CA manager. */
    void apply();

    bool done() { return peek() == nullptr; }

  private:
    ThreadId tid_;
    CaptureUnit &unit_;
    CaManager &ca_;
    const EventFilter *filter_;
    std::vector<DepArc> arcsCarry_; ///< arcs of re-filtered records
    /// Rids this replay's re-filter dropped: a later kAttachArcs to one
    /// of them must carry its arcs (live capture would), while arcs to
    /// records the *recording* never held are already carried inside a
    /// later journalled append.
    std::unordered_set<RecordId> droppedRids_;
    trace::TraceReader::OpStream stream_;
    trace::TraceOp pending_;
    bool hasPending_ = false;
    bool exhausted_ = false;
};

class ReplayPlatform
{
  public:
    explicit ReplayPlatform(ReplayConfig cfg);
    ~ReplayPlatform();

    /** Replay to completion. Same-lifeguard replays self-check against
     *  the recorded footer and panic on any divergence. */
    RunResult run();

    const trace::TraceReader &reader() const { return reader_; }
    const trace::TraceConfig &recordedConfig() const
    {
        return reader_.config();
    }
    LifeguardKind lifeguardKind() const { return lifeguardKind_; }
    bool replaysRecordedLifeguard() const { return sameLifeguard_; }
    Lifeguard &lifeguard() { return *lifeguard_; }

    /** True when run() will use the host-parallel engine. Besides the
     *  explicit --lg-threads opt-in, recordings made by the live
     *  host-parallel engine select it implicitly (same-lifeguard
     *  replays only): their journals carry no lifeguard-step stamps,
     *  so the serial scheduler has no interleaving to reproduce — the
     *  protocol-enforced engine re-monitors them result-exact. */
    bool concurrent() const { return concurrent_; }

    /** The recording was made by the live host-parallel engine
     *  (trace::kCfgLiveParallel). */
    bool recordedLiveParallel() const { return liveParallelRec_; }

    /** Heap + global segment fingerprint (as the footer records it). */
    std::uint64_t shadowFingerprint() const;

  private:
    RunResult runSerial();
    /// Implemented in replay_concurrent.cpp.
    RunResult runConcurrent();
    void verifyAgainstFooter(const RunResult &result) const;
    /// Result-only footer check for the concurrent engine (timing
    /// columns are relaxed there). Implemented in replay_concurrent.cpp.
    void verifyResultsAgainstFooter(const RunResult &result) const;
    void dumpStuckState(Cycle now, std::uint64_t lg_steps);

    ReplayConfig cfg_;
    trace::TraceReader reader_;
    SimConfig sim_;
    std::uint32_t k_ = 0;
    LifeguardKind lifeguardKind_;
    bool sameLifeguard_ = true;
    bool liveParallelRec_ = false; ///< header kCfgLiveParallel bit
    bool concurrent_ = false;      ///< resolved engine choice (ctor)

    std::unique_ptr<Lifeguard> lifeguard_;
    std::unique_ptr<ProgressTable> progress_;
    std::unique_ptr<CaManager> caMgr_;
    VersionStore versions_;
    /// Fresh metadata memory hierarchy for cross-lifeguard replays
    /// (same-lifeguard replays consume the recorded latency sideband).
    std::unique_ptr<MemorySystem> mem_;

    EventFilter filter_; ///< cross-lifeguard re-filtering
    std::vector<std::unique_ptr<CaptureUnit>> captures_;
    std::vector<std::unique_ptr<LifeguardCore>> lgCores_;
    std::vector<std::unique_ptr<ReplayCore>> replayCores_;
    std::vector<trace::TraceReader::LatencyStream> latStreams_;
};

} // namespace paralog

#endif // PARALOG_CORE_REPLAY_HPP
