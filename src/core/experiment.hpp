/**
 * @file
 * Bench/test harness helpers: run one (workload, lifeguard, mode,
 * threads) configuration and derive the normalized metrics the paper
 * plots (Figures 6-8).
 */

#ifndef PARALOG_CORE_EXPERIMENT_HPP
#define PARALOG_CORE_EXPERIMENT_HPP

#include <cstdint>
#include <string>

#include "core/platform.hpp"
#include "core/run_stats.hpp"
#include "core/timesliced.hpp"

namespace paralog {

struct ExperimentOptions
{
    std::uint64_t scale = 4000; ///< per-thread work units
    bool accelerators = true;
    DepTracking depTracking = DepTracking::kPerBlock;
    MemoryModel memoryModel = MemoryModel::kSC;
    bool conflictAlerts = true;
    std::uint64_t seed = 1;
    std::uint64_t logBufferBytes = 64 * 1024;

    /** Scale override from the environment (PARALOG_SCALE), if set. */
    static std::uint64_t envScale(std::uint64_t fallback);
};

/** Run one configuration to completion. */
RunResult runExperiment(WorkloadKind workload, LifeguardKind lifeguard,
                        MonitorMode mode, std::uint32_t threads,
                        const ExperimentOptions &opt = {});

/** Build the PlatformConfig runExperiment would use (for tests). */
PlatformConfig makeConfig(WorkloadKind workload, LifeguardKind lifeguard,
                          MonitorMode mode, std::uint32_t threads,
                          const ExperimentOptions &opt = {});

} // namespace paralog

#endif // PARALOG_CORE_EXPERIMENT_HPP
