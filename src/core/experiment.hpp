/**
 * @file
 * Bench/test harness helpers: run one (workload, lifeguard, mode,
 * threads) configuration and derive the normalized metrics the paper
 * plots (Figures 6-8) — plus the multi-threaded scenario-matrix runner
 * that fans fully-specified run configs across host threads.
 *
 * Determinism contract: each cell owns its Platform (and therefore its
 * RNG, caches and shadow memory), so a cell's RunResult depends only on
 * its RunSpec — never on the job count or on which host thread executed
 * it. `runMatrix(specs, 1)` and `runMatrix(specs, N)` return identical
 * simulated results, cell for cell.
 */

#ifndef PARALOG_CORE_EXPERIMENT_HPP
#define PARALOG_CORE_EXPERIMENT_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/run_stats.hpp"
#include "core/timesliced.hpp"

namespace paralog {

struct ExperimentOptions
{
    std::uint64_t scale = 4000; ///< per-thread work units
    bool accelerators = true;
    DepTracking depTracking = DepTracking::kPerBlock;
    MemoryModel memoryModel = MemoryModel::kSC;
    bool conflictAlerts = true;
    std::uint64_t seed = 1;
    std::uint64_t logBufferBytes = 64 * 1024;
    /// Shadow-memory shard count (0 = auto, see SimConfig::shadowShards).
    std::uint32_t shadowShards = 0;
    /// Simulated-time watchdog override (0 = PlatformConfig default).
    std::uint64_t maxCycles = 0;
    /// Host lifeguard threads (ReplayConfig::lgThreads for replay
    /// runs, PlatformConfig::lgThreads for live ones): 0/1 = serial
    /// engine, >= 2 = concurrent engine. Live concurrent runs keep
    /// analysis fingerprints identical to serial but relax timing
    /// columns; composed with recording, the journal replays
    /// result-exact (see PlatformConfig::lgThreads).
    std::uint32_t lgThreads = 0;
    /// v2-chunk decode workers for replay runs
    /// (ReplayConfig::decodeJobs). Ignored live and for v1 traces.
    std::uint32_t decodeJobs = 1;

    /** Scale override from the environment (PARALOG_SCALE), if set. */
    static std::uint64_t envScale(std::uint64_t fallback);

    /** Generic positive-integer environment override. */
    static std::uint64_t envU64(const char *name, std::uint64_t fallback);
};

/** Run one configuration to completion. */
RunResult runExperiment(WorkloadKind workload, LifeguardKind lifeguard,
                        MonitorMode mode, std::uint32_t threads,
                        const ExperimentOptions &opt = {});

/** Build the PlatformConfig runExperiment would use (for tests). */
PlatformConfig makeConfig(WorkloadKind workload, LifeguardKind lifeguard,
                          MonitorMode mode, std::uint32_t threads,
                          const ExperimentOptions &opt = {});

// --------------------------------------------- scenario-matrix runner

/** One fully-specified cell run of the scenario matrix: everything
 *  runExperiment() needs, including the resolved seed. */
struct RunSpec
{
    WorkloadKind workload;
    LifeguardKind lifeguard;
    MonitorMode mode;
    std::uint32_t cores;
    ExperimentOptions opt;
    /// Record the run as a trace file (parallel mode only).
    std::string recordPath;
    /// Container for recordPath: trace::kFormatVersion (v1) or
    /// trace::kFormatVersionV2.
    std::uint32_t recordFormat = 1;
    /// Replay this recording instead of running live: the scenario
    /// axes come from the file; `lifeguard` still selects the monitor
    /// (a kind different from the recorded one re-monitors the
    /// recorded streams).
    std::string replayPath;
};

/**
 * Run one spec: live, recording, or replaying per its path fields.
 * Same-lifeguard replays self-check against the recorded footer and
 * panic on divergence; trace I/O errors panic too (contained per cell
 * by runMatrix's panic-throw scope).
 */
RunResult runSpecExperiment(const RunSpec &spec);

/** Record one live run (spec.mode must be kParallel). */
RunResult recordExperiment(const RunSpec &spec);

/** Replay a recording under @p spec.lifeguard (see RunSpec::replayPath);
 *  opt.shadowShards/opt.maxCycles of 0 keep the defaults. */
RunResult replayExperiment(const RunSpec &spec);

/** Outcome of one RunSpec: the result, or a captured failure. */
struct CellResult
{
    RunResult result;
    bool failed = false;
    bool skipped = false; ///< never ran: the matrix was cancelled first
    std::string error; ///< panic/exception message, set iff failed
    double wallMs = 0; ///< host wall-clock of this run
};

/**
 * Execute every spec on a pool of @p jobs host threads (inline on the
 * calling thread when jobs == 1) and return results indexed by spec
 * order. Panics and exceptions inside a run are contained to that cell
 * (panic-throw mode is enabled for the duration and restored after):
 * the cell comes back `failed` with the message, and the remaining
 * specs still run.
 *
 * @p on_cell, when set, is invoked once per spec *in spec order* as
 * results become available (under an internal lock — keep it cheap),
 * so callers can stream output while later cells are still running.
 *
 * Cooperative cancellation: when @p cancel is non-null and becomes
 * true, cells that have not started yet come back `skipped` (their
 * on_cell still fires, preserving in-order streaming); cells already
 * running finish normally. Setting it from a signal handler is fine —
 * the flag is only ever loaded here.
 *
 * Test hook: when the fault-injection point "cell.fail" (see
 * common/fault_injection.hpp; legacy alias PARALOG_FAIL_CELL) names a
 * spec index, that cell panics instead of running — the deterministic
 * way to exercise mid-matrix failure handling at any jobs count.
 */
std::vector<CellResult>
runMatrix(const std::vector<RunSpec> &specs, unsigned jobs,
          const std::function<void(std::size_t, const CellResult &)>
              &on_cell = {},
          const std::atomic<bool> *cancel = nullptr);

} // namespace paralog

#endif // PARALOG_CORE_EXPERIMENT_HPP
