#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "core/replay.hpp"
#include "trace/recorder.hpp"

namespace paralog {

std::uint64_t
ExperimentOptions::envU64(const char *name, std::uint64_t fallback)
{
    const char *s = std::getenv(name);
    if (!s)
        return fallback;
    std::uint64_t v = std::strtoull(s, nullptr, 10);
    return v > 0 ? v : fallback;
}

std::uint64_t
ExperimentOptions::envScale(std::uint64_t fallback)
{
    return envU64("PARALOG_SCALE", fallback);
}

PlatformConfig
makeConfig(WorkloadKind workload, LifeguardKind lifeguard, MonitorMode mode,
           std::uint32_t threads, const ExperimentOptions &opt)
{
    PlatformConfig cfg;
    cfg.sim = SimConfig::forAppThreads(threads);
    cfg.sim.mode = mode;
    cfg.sim.depTracking = opt.depTracking;
    cfg.sim.memoryModel = opt.memoryModel;
    cfg.sim.conflictAlerts = opt.conflictAlerts;
    cfg.sim.seed = opt.seed;
    cfg.sim.logBufferBytes = opt.logBufferBytes;
    cfg.sim.shadowShards = opt.shadowShards;
    if (!opt.accelerators) {
        cfg.sim.accel.inheritanceTracking = false;
        cfg.sim.accel.idempotentFilter = false;
        cfg.sim.accel.metadataTlb = false;
    }
    cfg.lifeguard = lifeguard;
    cfg.workload = workload;
    cfg.scale = opt.scale;
    cfg.lgThreads = opt.lgThreads;
    if (opt.maxCycles > 0)
        cfg.maxCycles = opt.maxCycles;
    // Host-side delivery batch override (wall-clock A/B experiments;
    // results are identical for any value >= 1).
    if (const char *b = std::getenv("PARALOG_DELIVER_BATCH")) {
        std::uint64_t v = std::strtoull(b, nullptr, 10);
        if (v > 0)
            cfg.sim.deliverBatchMax = static_cast<std::uint32_t>(v);
    }
    return cfg;
}

RunResult
runExperiment(WorkloadKind workload, LifeguardKind lifeguard,
              MonitorMode mode, std::uint32_t threads,
              const ExperimentOptions &opt)
{
    PlatformConfig cfg = makeConfig(workload, lifeguard, mode, threads, opt);
    if (mode == MonitorMode::kTimesliced) {
        Timesliced ts(cfg);
        return ts.run();
    }
    Platform p(cfg);
    return p.run();
}

RunResult
recordExperiment(const RunSpec &spec)
{
    PARALOG_ASSERT(spec.mode == MonitorMode::kParallel,
                   "--record requires parallel monitoring mode");
    PlatformConfig cfg = makeConfig(spec.workload, spec.lifeguard,
                                    spec.mode, spec.cores, spec.opt);
    // Canonical single-pop delivery: the journal stamps producer ops
    // with the global lifeguard-step count, so the step-call structure
    // must be reproducible without the application cores. Batching is
    // simulated-result-invariant (the host wall-clock knob), but its
    // batch boundaries depend on the application-side horizon; batch
    // size 1 removes that dependence. Replay forces the same value.
    //
    // Live-parallel recordings carry no lifeguard-step stamps at all
    // (the consumers run on host threads the journal never sees), so
    // the pin is meaningless there: replay re-monitors them through
    // the protocol-enforced engine, result-exact rather than
    // schedule-exact, and may batch freely.
    const bool liveParallel = cfg.lgThreads >= 2;
    if (!liveParallel)
        cfg.sim.deliverBatchMax = 1;

    trace::TraceConfig tc;
    tc.workload = spec.workload;
    tc.lifeguard = spec.lifeguard;
    tc.mode = spec.mode;
    tc.memoryModel = cfg.sim.memoryModel;
    tc.depTracking = cfg.sim.depTracking;
    tc.conflictAlerts = cfg.sim.conflictAlerts;
    tc.accelIT = cfg.sim.accel.inheritanceTracking;
    tc.accelIF = cfg.sim.accel.idempotentFilter;
    tc.accelMTLB = cfg.sim.accel.metadataTlb;
    tc.appThreads = spec.cores;
    tc.shadowShards = cfg.sim.shadowShards;
    tc.scale = spec.opt.scale;
    tc.seed = cfg.sim.seed;
    tc.logBufferBytes = cfg.sim.logBufferBytes;
    tc.liveParallel = liveParallel;

    trace::TraceRecorder recorder(spec.recordPath, tc,
                                  spec.recordFormat);
    if (!recorder.ok())
        panic("record: %s", recorder.error().c_str());
    cfg.recorder = &recorder;

    Platform p(cfg);
    RunResult result = p.run();
    const ShadowMemory &shadow = p.lifeguard().shadow();
    result.shadowFingerprint =
        shadowFingerprint(shadow, AddressLayout::kHeapBase, 1 << 20) ^
        shadowFingerprint(shadow, AddressLayout::kGlobalBase, 1 << 16);
    if (!recorder.finalize(result, result.shadowFingerprint))
        panic("record: %s", recorder.error().c_str());
    return result;
}

RunResult
replayExperiment(const RunSpec &spec)
{
    ReplayConfig cfg;
    cfg.path = spec.replayPath;
    cfg.lifeguardOverride = true; // spec.lifeguard is already resolved
    cfg.lifeguard = spec.lifeguard;
    if (spec.opt.shadowShards != 0)
        cfg.shadowShards = spec.opt.shadowShards;
    if (spec.opt.maxCycles != 0)
        cfg.maxCycles = spec.opt.maxCycles;
    cfg.lgThreads = spec.opt.lgThreads;
    cfg.decodeJobs = spec.opt.decodeJobs;
    ReplayPlatform rp(std::move(cfg));
    return rp.run();
}

RunResult
runSpecExperiment(const RunSpec &spec)
{
    if (!spec.replayPath.empty())
        return replayExperiment(spec);
    if (!spec.recordPath.empty())
        return recordExperiment(spec);
    return runExperiment(spec.workload, spec.lifeguard, spec.mode,
                         spec.cores, spec.opt);
}

namespace {

/** Scoped panic-throw mode: restored even if a callback throws. */
class PanicThrowScope
{
  public:
    PanicThrowScope() : prev_(setPanicThrows(true)) {}
    ~PanicThrowScope() { setPanicThrows(prev_); }
    PanicThrowScope(const PanicThrowScope &) = delete;
    PanicThrowScope &operator=(const PanicThrowScope &) = delete;

  private:
    bool prev_;
};

/** Run one spec, containing any failure to the returned cell. */
CellResult
runCell(const RunSpec &spec, bool inject_failure)
{
    CellResult cell;
    auto t0 = std::chrono::steady_clock::now();
    try {
        if (inject_failure)
            panic("injected failure (cell.fail)");
        cell.result = runSpecExperiment(spec);
    } catch (const std::exception &e) {
        cell.failed = true;
        cell.error = e.what();
    } catch (...) {
        cell.failed = true;
        cell.error = "unknown error";
    }
    auto t1 = std::chrono::steady_clock::now();
    cell.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return cell;
}

} // namespace

std::vector<CellResult>
runMatrix(const std::vector<RunSpec> &specs, unsigned jobs,
          const std::function<void(std::size_t, const CellResult &)>
              &on_cell,
          const std::atomic<bool> *cancel)
{
    const std::size_t n = specs.size();
    std::vector<CellResult> results(n);
    if (n == 0)
        return results;

    // Contain panics to their cell for the whole matrix; the scope
    // restores the previous behavior even if a callback throws. (With
    // jobs > 1 the callback runs on worker threads, where a throw
    // would std::terminate — keep callbacks non-throwing.)
    PanicThrowScope panic_scope;

    // Fault-injection point "cell.fail" (legacy: PARALOG_FAIL_CELL).
    std::size_t fail_cell = n; // out of range: no injection
    if (std::optional<std::uint64_t> v = faultValue("cell.fail"))
        fail_cell = static_cast<std::size_t>(*v);

    std::atomic<std::size_t> next{0};
    std::mutex emit_mutex;
    std::vector<bool> done(n, false);
    std::size_t next_emit = 0;

    auto worker = [&]() {
        while (true) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            CellResult cell;
            if (cancel && cancel->load(std::memory_order_relaxed))
                cell.skipped = true; // cancelled before this cell began
            else
                cell = runCell(specs[i], i == fail_cell);
            std::lock_guard<std::mutex> lock(emit_mutex);
            results[i] = std::move(cell);
            done[i] = true;
            while (next_emit < n && done[next_emit]) {
                if (on_cell)
                    on_cell(next_emit, results[next_emit]);
                ++next_emit;
            }
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        unsigned spawned =
            static_cast<unsigned>(std::min<std::size_t>(jobs, n));
        pool.reserve(spawned);
        for (unsigned t = 0; t < spawned; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    return results;
}

} // namespace paralog
