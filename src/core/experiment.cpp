#include "core/experiment.hpp"

#include <cstdlib>

namespace paralog {

std::uint64_t
ExperimentOptions::envScale(std::uint64_t fallback)
{
    const char *s = std::getenv("PARALOG_SCALE");
    if (!s)
        return fallback;
    std::uint64_t v = std::strtoull(s, nullptr, 10);
    return v > 0 ? v : fallback;
}

PlatformConfig
makeConfig(WorkloadKind workload, LifeguardKind lifeguard, MonitorMode mode,
           std::uint32_t threads, const ExperimentOptions &opt)
{
    PlatformConfig cfg;
    cfg.sim = SimConfig::forAppThreads(threads);
    cfg.sim.mode = mode;
    cfg.sim.depTracking = opt.depTracking;
    cfg.sim.memoryModel = opt.memoryModel;
    cfg.sim.conflictAlerts = opt.conflictAlerts;
    cfg.sim.seed = opt.seed;
    cfg.sim.logBufferBytes = opt.logBufferBytes;
    if (!opt.accelerators) {
        cfg.sim.accel.inheritanceTracking = false;
        cfg.sim.accel.idempotentFilter = false;
        cfg.sim.accel.metadataTlb = false;
    }
    cfg.lifeguard = lifeguard;
    cfg.workload = workload;
    cfg.scale = opt.scale;
    // Host-side delivery batch override (wall-clock A/B experiments;
    // results are identical for any value >= 1).
    if (const char *b = std::getenv("PARALOG_DELIVER_BATCH")) {
        std::uint64_t v = std::strtoull(b, nullptr, 10);
        if (v > 0)
            cfg.sim.deliverBatchMax = static_cast<std::uint32_t>(v);
    }
    return cfg;
}

RunResult
runExperiment(WorkloadKind workload, LifeguardKind lifeguard,
              MonitorMode mode, std::uint32_t threads,
              const ExperimentOptions &opt)
{
    PlatformConfig cfg = makeConfig(workload, lifeguard, mode, threads, opt);
    if (mode == MonitorMode::kTimesliced) {
        Timesliced ts(cfg);
        return ts.run();
    }
    Platform p(cfg);
    return p.run();
}

} // namespace paralog
