#include "core/lifeguard_core.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace paralog {

LifeguardCore::LifeguardCore(CoreId core, ThreadId tid, const SimConfig &cfg,
                             CaptureUnit &capture, ProgressTable &progress,
                             CaManager &ca, Lifeguard &lifeguard,
                             MemorySystem *mem, VersionStore &versions,
                             std::uint32_t done_records_needed)
    : core_(core), tid_(tid), cfg_(cfg), capture_(capture),
      progress_(progress), lifeguard_(lifeguard),
      accel_(cfg, lifeguard.policy()),
      enforcer_(tid, capture, progress, ca,
                [&versions](const VersionTag &v) {
                    return versions.available(v);
                }),
      ctx_(lifeguard.shadow(), accel_.mtlb(), versions, mem, core),
      doneNeeded_(done_records_needed)
{
}

Cycle
LifeguardCore::runHandlers(std::vector<LgEvent> &events)
{
    Cycle cost = 0;
    for (LgEvent &ev : events) {
        if (ev.tid == kInvalidThread) {
            // Accelerator stall-flush events carry no record identity.
            ThreadId owner = accel_.regOwner();
            ev.tid = (owner != kInvalidThread) ? owner : tid_;
            ev.rid = lastProcessed_;
        }
        ctx_.beginEvent();
        lifeguard_.handle(ev, ctx_);
        // One handler dispatch (event decode + jump) plus the handler
        // body: instructions at 1 IPC plus metadata cache stalls.
        cost += 2 + ctx_.instrs() + ctx_.memCycles();
        ++stats.eventsHandled;
        if (ev.type == LgEventType::kThreadDone)
            ++doneSeen_;
    }
    return cost;
}

void
LifeguardCore::publishProgress()
{
    RecordId ceiling = capture_.progressCeiling();
    RecordId held = accel_.delayedMinRid();
    // Delayed advertising (section 4.2): never advertise past the
    // oldest record whose metadata effect is still pending inside an
    // accelerator.
    RecordId done = (held != kInvalidRecord && held < ceiling) ? held
                                                               : ceiling;
    progress_.publish(tid_, done);
}

Cycle
LifeguardCore::maybeStallFlush(Cycle now)
{
    // The section 4.2 stall-flush exists to break wait cycles by
    // publishing accurate progress. Brief stalls resolve on their own;
    // only a persistent stall forfeits accelerator state.
    ++stallStreak_;
    if (stallStreak_ < cfg_.stallFlushAfterRetries) {
        publishProgress();
        return 0;
    }
    return handleStallFlush(now);
}

Cycle
LifeguardCore::handleStallFlush(Cycle now)
{
    // Deadlock-avoidance rule of section 4.2: while stalled, flush the
    // accelerators (delivering their pending state to the lifeguard)
    // and publish an accurate progress.
    events_.clear();
    accel_.onStall(events_);
    Cycle cost = 0;
    if (!events_.empty())
        cost = runHandlers(events_);
    publishProgress();
    (void)now;
    return cost;
}

void
LifeguardCore::enforceVersionProtocol(const EventRecord &rec)
{
    VersionStore &vs = ctx_.versions();

    if (rec.type == EventType::kProduceVersion) {
        // Liveness backstop: a lifeguard that does not implement the
        // produce handler (it never writes application metadata, or it
        // is a user lifeguard written against the porting contract)
        // must still satisfy the consumer's version wait. The snapshot
        // is exactly the current shadow contents.
        if (!vs.available(rec.version)) {
            std::uint64_t bits =
                lifeguard_.shadow().readPacked(rec.addr, rec.size);
            if (vs.produce(rec.version,
                           VersionStore::Versioned{bits, rec.addr,
                                                   rec.size, false}))
                vs.stats.counter("produced_backstop").inc();
        }
        // Opportunistic prune: entries whose version was already
        // consumed can never be marked (the consumer ran first).
        if (pendingWriterStores_.size() >= 16) {
            pendingWriterStores_.erase(
                std::remove_if(pendingWriterStores_.begin(),
                               pendingWriterStores_.end(),
                               [&vs](const auto &p) {
                                   return !vs.available(p.first);
                               }),
                pendingWriterStores_.end());
        }
        if (vs.available(rec.version))
            pendingWriterStores_.emplace_back(rec.version, rec.value);
        return;
    }

    // The producing store's own handler just ran: a consumer arriving
    // later must not clobber its metadata (read-side-writer rule).
    if (rec.type == EventType::kStore && !pendingWriterStores_.empty()) {
        auto match = [&rec](const std::pair<VersionTag, RecordId> &p) {
            return p.second == rec.rid;
        };
        for (const auto &p : pendingWriterStores_) {
            if (match(p))
                vs.markWriterDone(p.first);
        }
        pendingWriterStores_.erase(
            std::remove_if(pendingWriterStores_.begin(),
                           pendingWriterStores_.end(), match),
            pendingWriterStores_.end());
    }

    // Versioned reads of metadata-irrelevant words (lock/barrier
    // records) leave their snapshot unconsumed by any handler; discard
    // it so the version store drains.
    if (rec.consumesVersion && vs.available(rec.version))
        vs.consume(rec.version);
}

void
LifeguardCore::step(Cycle now, Cycle batch_horizon)
{
    if (finished())
        return;

    OrderEnforcer::BatchItem d;
    DeliverStatus st = enforcer_.tryDeliverBatch(d, false);

    switch (st) {
      case DeliverStatus::kEmpty:
        stats.appStall += cfg_.retryInterval;
        // A drained stream means every captured record is processed; if
        // delayed advertising still caps our progress, remote lifeguards
        // stall on state we are not even using. A momentary drain (the
        // producer refills within a retry or two) keeps its absorption;
        // genuine idleness flushes so progress becomes accurate.
        ++emptyStreak_;
        if (emptyStreak_ > 3 &&
            accel_.delayedMinRid() != kInvalidRecord) {
            busyUntil = now + cfg_.retryInterval + handleStallFlush(now);
        } else {
            publishProgress();
            busyUntil = now + cfg_.retryInterval;
        }
        return;

      case DeliverStatus::kDepStall:
        stats.depStall += cfg_.depRetryInterval;
        busyUntil = now + cfg_.depRetryInterval + maybeStallFlush(now);
        return;

      case DeliverStatus::kCaStall:
        stats.caStall += cfg_.depRetryInterval;
        busyUntil = now + cfg_.depRetryInterval + maybeStallFlush(now);
        return;

      case DeliverStatus::kVersionStall:
        stats.versionStall += cfg_.depRetryInterval;
        busyUntil = now + cfg_.depRetryInterval + maybeStallFlush(now);
        return;

      case DeliverStatus::kDelivered:
        break;
    }

    emptyStreak_ = 0;
    stallStreak_ = 0;

    // Batched delivery: drain consecutive no-stall records in one step,
    // processing each borrowed record in place. Per-record costs
    // accumulate exactly as single-pop delivery would (record i starts
    // at the running total, which is where busyUntil would have landed
    // after i-1 single-pop steps), and the batch extends only while
    // that start time stays strictly below batch_horizon — the earliest
    // time any other actor runs. Inside that window this core is the
    // only actor, so delivery checks see exactly the state the
    // unbatched engine would have seen, and the deferred progress
    // publish is in place before anyone can read it: simulated results
    // are bit-identical, only host wall-clock changes.
    Cycle cost = 0;
    std::uint32_t delivered = 0;
    for (;;) {
        ++delivered;
        ++stats.recordsProcessed;
        lastProcessed_ = d.rec->rid;

        events_.clear();
        accel_.maybeThresholdFlush(lastProcessed_, events_);
        accel_.process(*d.rec, d.racesSyscall, events_);

        Cycle c;
        if (events_.empty()) {
            // Fully absorbed in hardware: the delivery engine retires
            // compressed ~1-byte records at two per cycle.
            c = (++absorbedTick_ & 1) ? 0 : 1;
        } else {
            c = 1 + runHandlers(events_);
        }

        enforceVersionProtocol(*d.rec);

        bool was_done = (d.rec->type == EventType::kThreadDone);
        enforcer_.commitDelivered();
        cost += c;
        stats.usefulCycles += c;

        if (was_done && finished()) {
            progress_.finish(tid_);
            stats.doneAt = now + cost;
            busyUntil = now + cost;
            return;
        }
        if (delivered >= cfg_.deliverBatchMax ||
            now + cost >= batch_horizon)
            break;
        if (enforcer_.tryDeliverBatch(d, true) != DeliverStatus::kDelivered)
            break;
        // The ThreadDone that finishes this core must start its own
        // step: the run's reported cycle count is the time that step
        // begins, so batching it would compress the simulated total.
        // (Delivery without commit has no side effects; the next step
        // re-delivers it at exactly this batch's end time.)
        if (d.rec->type == EventType::kThreadDone &&
            doneSeen_ + 1 >= doneNeeded_)
            break;
    }
    publishProgress();
    busyUntil = now + cost;
}

} // namespace paralog
