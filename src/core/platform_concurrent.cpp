/**
 * @file
 * Host-parallel *live* monitoring engine: the application cores and the
 * whole capture pipeline run on the calling thread while each lifeguard
 * core runs on a consumer host thread, fed through a lock-free SPSC
 * ring (the live-path counterpart of core/replay_concurrent.cpp).
 *
 * The serial scheduler interleaves application steps and lifeguard
 * steps under one clock, so producer-side stream mutations (drain-time
 * arc attachment, TSO consume/produce annotations, visibility-limit
 * moves, CA-sequence stamping) always land on records the consumer has
 * not reached yet. Decoupling the two sides needs the same *publication
 * seal* idea as concurrent replay — a record may be handed to its
 * consumer only once nothing can still mutate it — but computed
 * *online*, with no journal pre-pass to consult. Two producer-side
 * facts make an online seal possible:
 *
 *  1. Every mutation except TSO consume-version annotation targets a
 *     record the visibility limit still hides (drain-time arcs and
 *     produce insertions go to store-buffer-hidden stores; CA stamping
 *     happens within the issuing step, before any publication runs).
 *     `LogBuffer::peek(visLimit_)` already enforces this bound.
 *
 *  2. A consume-version annotation targets a *load* that retired
 *     strictly after the store whose drain raises it
 *     (MemorySystem::addArcFrom compares AccessTag retire cycles). So
 *     once every store currently buffered retired at or after a
 *     record's append cycle, no present or future drain can annotate
 *     it. The watermark W = min over cores of the oldest buffered
 *     store's retire cycle therefore seals everything appended at or
 *     before W (TsoDataPath::oldestStoreRetire; under SC, W is +inf).
 *
 * CaptureUnit::publishSealed applies both bounds and prefix-maxes them
 * into the per-stream publication frontier (the ceiling bound). The
 * producer pumps publication after every simulation iteration; because
 * publication, back-pressure (canAppend) and syscall draining are pure
 * functions of producer-side state, the producer's simulation is
 * bit-deterministic regardless of consumer timing.
 *
 * Delivery *order* on the consumer side is protocol-enforced (arcs
 * against the progress table, two-sided CA barriers, TSO version
 * waits), never schedule-reproduced. Analysis results — the shadow
 * fingerprint and the distinct-violation set — are identical to a
 * serial live run; simulated timing, stall breakdowns, per-stream
 * record counts and version counts are relaxed (application timing
 * feedback differs: the serial app waits for *consumption* at drain
 * points, the parallel app for *publication*).
 */

#include "core/platform.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "common/spsc_ring.hpp"
#include "trace/recorder.hpp"

namespace paralog {

RunResult
Platform::runConcurrentLive()
{
    const std::uint32_t k = cfg_.sim.appThreads;

    // Ring capacity trades hand-off slack against footprint; sealed
    // records overflow to a producer-side queue when a consumer lags,
    // so the seal never blocks the application simulation.
    constexpr std::size_t kRingSlots = 4096;
    std::deque<SpscRing<EventRecord>> rings;
    for (ThreadId t = 0; t < k; ++t) {
        rings.emplace_back(kRingSlots);
        captures_[t]->attachRing(&rings[t]);
    }

    std::atomic<bool> abortFlag{false};
    std::atomic<std::uint32_t> liveConsumers{0};
    std::mutex errMutex;
    std::exception_ptr firstError;
    auto noteFailure = [&] {
        {
            std::lock_guard<std::mutex> g(errMutex);
            if (!firstError)
                firstError = std::current_exception();
        }
        abortFlag.store(true, std::memory_order_release);
    };

    // Failure-containment hook (fault point "lg.fail", legacy
    // PARALOG_FAIL_LG): panic on the consumer thread that owns the
    // named lifeguard stream.
    ThreadId failTid = kInvalidThread;
    if (std::optional<std::uint64_t> v = faultValue("lg.fail"))
        failTid = static_cast<ThreadId>(*v);
    // Seal-protocol stall rig (fault point "seal.stall"): never publish
    // the named stream, so its consumer starves and the watchdog must
    // catch the stall and dump per-stream frontier state.
    ThreadId stallStream = kInvalidThread;
    if (std::optional<std::uint64_t> v = faultValue("seal.stall"))
        stallStream = static_cast<ThreadId>(*v);

    // ---- consumers -----------------------------------------------------
    const std::uint32_t nConsumers =
        std::min<std::uint32_t>(cfg_.lgThreads, k);

    // LockSet writes metadata from application-*read* handlers (it
    // violates condition 2 of section 5.3), so unordered cross-thread
    // read pairs may touch the same granule state: serialize whole
    // steps (the delivery protocol still orders everything else).
    // User-defined lifeguards get the same conservative treatment —
    // there is no policy bit declaring their handlers read-only.
    std::mutex stepMutex;
    const bool serializeSteps =
        cfg_.customLifeguard != nullptr ||
        cfg_.lifeguard == LifeguardKind::kLockSet;

    auto consumerBody = [&](std::uint32_t slot) {
        std::vector<std::pair<ThreadId, LifeguardCore *>> mine;
        std::vector<Cycle> nows;
        for (ThreadId t = slot; t < k; t += nConsumers) {
            mine.emplace_back(t, lgCores_[t].get());
            nows.push_back(0);
        }
        for (;;) {
            if (abortFlag.load(std::memory_order_acquire))
                return;
            bool all_done = true;
            bool progressed = false;
            for (std::size_t i = 0; i < mine.size(); ++i) {
                LifeguardCore *core = mine[i].second;
                if (core->finished())
                    continue;
                all_done = false;
                if (mine[i].first == failTid)
                    panic("lg.fail (PARALOG_FAIL_LG): injected failure on "
                          "live lifeguard thread %u",
                          mine[i].first);
                std::uint64_t before = core->stats.recordsProcessed;
                if (serializeSteps) {
                    std::lock_guard<std::mutex> g(stepMutex);
                    core->step(nows[i], ~Cycle{0});
                } else {
                    core->step(nows[i], ~Cycle{0});
                }
                nows[i] = std::max(nows[i], core->busyUntil);
                progressed |= (core->stats.recordsProcessed != before);
            }
            if (all_done)
                return;
            if (!progressed)
                std::this_thread::yield();
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(nConsumers);
    liveConsumers.store(nConsumers, std::memory_order_relaxed);
    for (std::uint32_t slot = 0; slot < nConsumers; ++slot) {
        workers.emplace_back([&, slot] {
            try {
                consumerBody(slot);
            } catch (...) {
                noteFailure();
            }
            liveConsumers.fetch_sub(1, std::memory_order_release);
        });
    }

    // ---- producer (this thread) ----------------------------------------
    std::vector<AppCore *> apps;
    apps.reserve(appCores_.size());
    for (auto &c : appCores_)
        apps.push_back(c.get());

    auto apps_done = [&apps] {
        for (const AppCore *c : apps) {
            if (c->active())
                return false;
        }
        return true;
    };

    // Publication pump: compute the TSO watermark (min retire cycle of
    // any buffered store, +inf under SC / empty buffers) once per call
    // and advance every stream's frontier.
    auto publishAll = [&] {
        Cycle watermark = ~Cycle{0};
        if (tsoPath_) {
            for (CoreId core = 0; core < k; ++core) {
                watermark = std::min(watermark,
                                     tsoPath_->oldestStoreRetire(core));
            }
        }
        for (ThreadId t = 0; t < k; ++t) {
            if (t == stallStream)
                continue;
            captures_[t]->publishSealed(watermark);
        }
    };

    // Live stall signature. Two-phase threading contract: while the
    // producer loop runs, this is polled on the producer thread, so all
    // producer-side plain state (retired counters, capture appends,
    // visibility limits, overflow sizes) is same-thread readable; once
    // the producer is done, the same thread becomes the supervisor and
    // producer-side state is stable. Consumer-side inputs are atomics
    // only: ring pop counts, the progress table, version counters.
    // (The serial signature also samples lifeguard stats — plain
    // members, host-racy here, deliberately excluded.)
    // Folded FNV-style rather than summed: the producer moving a record
    // from overflow to ring changes two terms in opposite directions,
    // which a plain sum would cancel to "no progress".
    Counter &produced_ctr = versions_.stats.counter("produced");
    Counter &consumed_ctr = versions_.stats.counter("consumed");
    auto signature = [&] {
        std::uint64_t sig = 1469598103934665603ULL;
        auto fold = [&sig](std::uint64_t v) {
            sig = (sig ^ v) * 1099511628211ULL;
        };
        fold(produced_ctr.value());
        fold(consumed_ctr.value());
        for (const AppCore *c : apps)
            fold(c->tc().retired);
        for (ThreadId t = 0; t < k; ++t) {
            fold(captures_[t]->buffer().appended()); // capture appends
            fold(captures_[t]->overflowSize());
            fold(captures_[t]->ceilingBound()); // frontier advance
            fold(rings[t].published());         // ring push
            fold(rings[t].popped());            // ring pop
            fold(progress_->done(t));
        }
        return sig;
    };

    // Per-stream frontier dump for seal-protocol stalls (the live
    // counterpart of dumpStuckState, which samples lifeguard-side
    // state this engine must not touch from the producer thread).
    auto dumpFrontiers = [&] {
        std::fprintf(stderr, "=== live-parallel watchdog state dump ===\n");
        Cycle watermark = ~Cycle{0};
        if (tsoPath_) {
            for (CoreId core = 0; core < k; ++core) {
                watermark = std::min(watermark,
                                     tsoPath_->oldestStoreRetire(core));
            }
        }
        std::fprintf(stderr, "watermark=%llu\n",
                     static_cast<unsigned long long>(watermark));
        for (ThreadId t = 0; t < k; ++t) {
            const AppCore &ac = *appCores_[t];
            std::fprintf(
                stderr,
                "stream %u: app active=%d retired=%llu reason=%d | "
                "appended=%llu bufSize=%zu visLimit=%llu frontier=%llu "
                "overflow=%zu | ring pub=%llu pop=%llu | done=%llu "
                "lgFinished=%d",
                t, ac.active() ? 1 : 0,
                static_cast<unsigned long long>(ac.tc().retired),
                static_cast<int>(ac.tc().blockReason),
                static_cast<unsigned long long>(
                    captures_[t]->buffer().appended()),
                captures_[t]->buffer().size(),
                static_cast<unsigned long long>(
                    captures_[t]->visibilityLimit()),
                static_cast<unsigned long long>(
                    captures_[t]->ceilingBound()),
                captures_[t]->overflowSize(),
                static_cast<unsigned long long>(rings[t].published()),
                static_cast<unsigned long long>(rings[t].popped()),
                static_cast<unsigned long long>(progress_->done(t)),
                lgCores_[t]->finished() ? 1 : 0);
            if (tsoPath_) {
                std::fprintf(
                    stderr, " | storeBuf=%zu oldestRetire=%llu",
                    tsoPath_->depth(static_cast<CoreId>(t)),
                    static_cast<unsigned long long>(
                        tsoPath_->oldestStoreRetire(
                            static_cast<CoreId>(t))));
            }
            std::fprintf(stderr, "\n");
        }
    };

    // Any producer-side fatality must stop and join the consumers
    // before panicking: panic may throw (matrix containment mode), and
    // an exception flying past live threads touching this frame's
    // state would be undefined behavior.
    auto shutdownPanic = [&](const std::string &why) {
        abortFlag.store(true, std::memory_order_release);
        for (std::thread &w : workers)
            w.join();
        dumpFrontiers();
        panic("%s", why.c_str());
    };

    // Same cadence as the serial scheduler: sampled every 64
    // iterations so the signature stays off the hot loop's profile.
    ProgressWatchdog stall_watchdog(cfg_.stallWatchdogIters / 64 + 1);
    std::uint64_t watchdog_tick = 0;
    auto poll_watchdog = [&] {
        if ((++watchdog_tick & 63) == 0 &&
            stall_watchdog.poll(signature())) {
            shutdownPanic(strprintf(
                "live-parallel watchdog: no forward progress in %llu "
                "scheduler iterations (seal-protocol or hand-off "
                "stall)",
                static_cast<unsigned long long>(
                    cfg_.stallWatchdogIters)));
        }
    };

    Cycle now = 0;
    Cycle last_now = 0;
    std::uint64_t same_now_iters = 0;

    while (!apps_done()) {
        if (abortFlag.load(std::memory_order_acquire))
            break;
        if (now == last_now) {
            if (++same_now_iters > 20'000'000) {
                shutdownPanic(strprintf(
                    "livelock: cycle %llu never advances",
                    static_cast<unsigned long long>(now)));
            }
        } else {
            last_now = now;
            same_now_iters = 0;
        }
        poll_watchdog();
        // Event-driven advance: the application cores are the only
        // simulated actors on this thread (lifeguard timing is
        // relaxed), so the next event is the earliest ready app core.
        Cycle next = kInvalidRecord;
        for (AppCore *c : apps) {
            if (c->active())
                next = std::min(next, c->busyUntil);
        }
        if (next > now)
            now = next;
        if (cfg_.recorder)
            cfg_.recorder->setNow(now);
        if (now > cfg_.maxCycles) {
            shutdownPanic(strprintf(
                "simulation watchdog: no completion after %llu cycles "
                "(deadlock or runaway workload)",
                static_cast<unsigned long long>(cfg_.maxCycles)));
        }

        for (AppCore *c : apps) {
            if (c->active() && c->busyUntil <= now)
                c->step(now);
        }
        if (tsoPath_) {
            for (CoreId core = 0; core < k; ++core)
                tsoPath_->pump(core, now);
        }
        publishAll();
    }

    // Post-application TSO drain: the serial scheduler keeps advancing
    // time through the lifeguard cores until the store buffers empty;
    // here the producer must advance it itself so visibility limits
    // lift and the watermark reaches +inf.
    if (tsoPath_) {
        for (;;) {
            if (abortFlag.load(std::memory_order_acquire))
                break;
            Cycle next_ready = ~Cycle{0};
            for (CoreId core = 0; core < k; ++core)
                next_ready = std::min(next_ready,
                                      tsoPath_->nextDrainReady(core));
            if (next_ready == ~Cycle{0})
                break; // every buffer empty
            if (next_ready > now)
                now = next_ready;
            if (cfg_.recorder)
                cfg_.recorder->setNow(now);
            for (CoreId core = 0; core < k; ++core)
                tsoPath_->pump(core, now);
            publishAll();
            poll_watchdog();
        }
    }

    // Tail flush: everything is sealed now; drain the log buffers and
    // overflow queues into the rings as the consumers make space.
    for (;;) {
        if (abortFlag.load(std::memory_order_acquire))
            break;
        publishAll();
        bool pending = false;
        for (ThreadId t = 0; t < k; ++t)
            pending |= !captures_[t]->liveAllPublished();
        if (!pending)
            break;
        poll_watchdog();
        std::this_thread::yield();
    }

    // ---- supervisor (same thread, consumers finishing) -----------------
    ProgressWatchdog tail_watchdog(
        std::max<std::uint64_t>(1000, cfg_.stallWatchdogIters / 1000));
    bool stalled = false;
    while (liveConsumers.load(std::memory_order_acquire) > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (!stalled && tail_watchdog.poll(signature())) {
            stalled = true;
            abortFlag.store(true, std::memory_order_release);
        }
    }
    for (std::thread &w : workers)
        w.join();

    if (stalled) {
        dumpFrontiers();
        panic("live-parallel watchdog: consumers made no forward "
              "progress after the producer finished (delivery "
              "deadlock)");
    }
    if (firstError)
        std::rethrow_exception(firstError);

    Cycle total = now;
    for (auto &c : lgCores_)
        total = std::max(total, c->busyUntil);
    return collectResult(total);
}

} // namespace paralog
