/**
 * @file
 * The ParaLog online parallel monitoring platform (Figure 2): k
 * application cores each paired with a lifeguard core, sharing a
 * coherent memory hierarchy, per-thread event streams with captured
 * dependence arcs, a global progress table, ConflictAlert broadcasting,
 * and (under TSO) the versioned-metadata protocol.
 *
 * Also runs the NO-MONITORING baseline (application alone on k cores).
 * The TIMESLICED baseline lives in core/timesliced.hpp.
 */

#ifndef PARALOG_CORE_PLATFORM_HPP
#define PARALOG_CORE_PLATFORM_HPP

#include <functional>
#include <memory>
#include <vector>

#include "app/data_path.hpp"
#include "app/heap.hpp"
#include "app/interpreter.hpp"
#include "app/sync.hpp"
#include "capture/store_buffer.hpp"
#include "core/app_core.hpp"
#include "core/lifeguard_core.hpp"
#include "core/run_stats.hpp"
#include "deliver/ca_manager.hpp"
#include "deliver/progress_table.hpp"
#include "lifeguard/version_store.hpp"
#include "workloads/workload.hpp"

namespace paralog {

namespace trace {
class TraceRecorder;
} // namespace trace

struct PlatformConfig
{
    SimConfig sim;
    LifeguardKind lifeguard = LifeguardKind::kTaintCheck;
    WorkloadKind workload = WorkloadKind::kLu;
    /// When set, overrides `workload` (custom applications: examples,
    /// failure-injection tests).
    std::shared_ptr<Workload> customWorkload;
    /// When set, overrides `lifeguard` (user-defined lifeguards written
    /// against the Lifeguard API).
    std::function<LifeguardPtr(std::uint32_t)> customLifeguard;
    std::uint64_t scale = 10000;          ///< total work units
    std::uint64_t maxCycles = 1ULL << 36; ///< simulated-time watchdog
    /// Progress watchdog: scheduler iterations without any global
    /// progress (no retirement, no record delivered, no published
    /// progress, no version activity) before the run is declared stuck
    /// and panics with a full wait-state dump. Unlike `maxCycles` this
    /// catches retry loops that keep simulated time advancing; the
    /// default is far above any legitimate stall (a retry is >= 4
    /// simulated cycles, so 2M idle iterations is ~8M cycles in which
    /// no actor did anything).
    std::uint64_t stallWatchdogIters = 2'000'000;
    /// Tee all captured records into Platform::trace() for offline
    /// happens-before validation (SC runs).
    bool traceCapture = false;
    /// Record the run as a `paralog-trace-v1` journal for offline
    /// replay (core/replay.hpp). Parallel monitoring mode only; the
    /// recorder outlives the platform (the caller finalizes it with
    /// the run's results and shadow fingerprint).
    trace::TraceRecorder *recorder = nullptr;
    /**
     * Host lifeguard threads for *live* runs. 0 and 1 select the serial
     * scheduler (bit-identical, the reference). >= 2 selects the
     * concurrent engine (core/platform_concurrent.cpp): the application
     * cores and the whole capture pipeline stay on the calling thread
     * while min(lgThreads, appThreads) consumer threads run the
     * lifeguard cores round-robin behind lock-free SPSC rings, gated by
     * the online publication seal (CaptureUnit::publishSealed).
     * Analysis results (shadow fingerprint, violation set) stay
     * identical to serial; simulated timing and delivery-schedule
     * columns are relaxed (no global clock across host threads).
     * Requires parallel monitoring mode with ConflictAlerts enabled.
     */
    std::uint32_t lgThreads = 0;
};

/**
 * Detects a wedged simulation: feed a cheap signature of global
 * progress every scheduler iteration; fires once the signature has not
 * changed for `limit` consecutive polls. Pure bookkeeping (no time
 * source), so runs stay deterministic.
 */
class ProgressWatchdog
{
  public:
    explicit ProgressWatchdog(std::uint64_t limit) : limit_(limit) {}

    bool
    poll(std::uint64_t signature)
    {
        if (signature != last_) {
            last_ = signature;
            same_ = 0;
            return false;
        }
        return ++same_ >= limit_;
    }

    std::uint64_t idlePolls() const { return same_; }

  private:
    std::uint64_t limit_;
    std::uint64_t last_ = ~0ULL;
    std::uint64_t same_ = 0;
};

/** Default simulated address layout. */
struct AddressLayout
{
    static constexpr Addr kGlobalBase = 0x0100'0000;
    static constexpr Addr kLockBase = 0x0300'0000;
    static constexpr Addr kBarrierBase = 0x0310'0000;
    static constexpr Addr kHeapBase = 0x0400'0000;
    static constexpr std::uint64_t kHeapBytes = 48ULL << 20;
};

class Platform : public PlatformHooks, public TsoHooks
{
  public:
    explicit Platform(PlatformConfig cfg);
    ~Platform() override;

    /** Run to completion; returns the collected statistics. */
    RunResult run();

    /** True when run() will use the host-parallel live engine. */
    bool
    concurrentLive() const
    {
        return cfg_.lgThreads >= 2 &&
               cfg_.sim.mode == MonitorMode::kParallel;
    }

    // --- PlatformHooks ---
    bool lifeguardDrained(ThreadId tid) override;

    // --- TsoHooks ---
    void attachArcsToPending(ThreadId tid, RecordId rid,
                             const std::vector<RawArc> &arcs) override;
    void onScViolation(ThreadId writer_tid, RecordId writer_rid, Addr addr,
                       std::uint8_t size,
                       const VersionRequest &reader) override;
    void setVisibilityLimit(ThreadId tid, RecordId limit) override;

    Lifeguard &lifeguard() { return *lifeguard_; }
    Heap &heap() { return *heap_; }
    MemorySystem &memory() { return *mem_; }
    CaManager &caManager() { return *caMgr_; }
    VersionStore &versions() { return versions_; }
    CaptureUnit &capture(ThreadId tid) { return *captures_[tid]; }
    LifeguardCore &lifeguardCore(ThreadId tid) { return *lgCores_[tid]; }
    AppCore &appCore(ThreadId tid) { return *appCores_[tid]; }
    TraceSink &trace() { return trace_; }
    const WorkloadEnv &env() const { return env_; }
    const PlatformConfig &config() const { return cfg_; }

  private:
    Cycle caBroadcast(ThreadId tid, RecordId rid, HighLevelKind kind,
                      const AddrRange &range);
    bool allDone() const;
    void dumpStuckState() const;
    RunResult runSerial();
    /// Implemented in core/platform_concurrent.cpp.
    RunResult runConcurrentLive();
    /// Shared result assembly (per-core stats, version counters,
    /// violation fingerprint).
    RunResult collectResult(Cycle total_cycles);

    PlatformConfig cfg_;
    LifeguardPolicy policy_;
    WorkloadEnv env_;

    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<Heap> heap_;
    LockManager locks_;
    BarrierManager barriers_;
    std::unique_ptr<DataPath> dataPath_;
    TsoDataPath *tsoPath_ = nullptr; ///< non-null iff TSO
    std::unique_ptr<Interpreter> interp_;

    std::unique_ptr<Lifeguard> lifeguard_;
    std::unique_ptr<ProgressTable> progress_;
    std::unique_ptr<CaManager> caMgr_;
    VersionStore versions_;

    std::vector<std::unique_ptr<CaptureUnit>> captures_;
    std::vector<std::unique_ptr<AppCore>> appCores_;
    std::vector<std::unique_ptr<LifeguardCore>> lgCores_;
    TraceSink trace_;
};

} // namespace paralog

#endif // PARALOG_CORE_PLATFORM_HPP
