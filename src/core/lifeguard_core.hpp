/**
 * @file
 * One simulated lifeguard core: the right half of Figure 2. Pulls
 * records through the order-enforcing component, runs them through the
 * accelerators, executes lifeguard handlers for delivered events, and
 * publishes progress (with delayed advertising) to the shared progress
 * table.
 */

#ifndef PARALOG_CORE_LIFEGUARD_CORE_HPP
#define PARALOG_CORE_LIFEGUARD_CORE_HPP

#include <memory>
#include <vector>

#include "accel/accel_unit.hpp"
#include "core/run_stats.hpp"
#include "deliver/order_enforce.hpp"
#include "lifeguard/lifeguard.hpp"

namespace paralog {

class LifeguardCore
{
  public:
    LifeguardCore(CoreId core, ThreadId tid, const SimConfig &cfg,
                  CaptureUnit &capture, ProgressTable &progress,
                  CaManager &ca, Lifeguard &lifeguard, MemorySystem *mem,
                  VersionStore &versions, std::uint32_t done_records_needed);

    /**
     * Pull and process records. @p batch_horizon is the earliest
     * simulated time any *other* actor (application core, other
     * lifeguard core, pending TSO store drain) can run: the batched
     * delivery fast path keeps draining records only while the running
     * cost stays strictly inside that window, so batching is invisible
     * — every batched record is processed, and every side effect
     * published, in an interval no other core observes. Pass
     * @p batch_horizon = now to disable batching (single-pop step).
     */
    void step(Cycle now, Cycle batch_horizon);

    /** All kThreadDone records consumed (timesliced needs several). */
    bool finished() const { return doneSeen_ >= doneNeeded_; }

    Cycle busyUntil = 0;
    LifeguardThreadStats stats;

    AccelUnit &accel() { return accel_; }
    OrderEnforcer &enforcer() { return enforcer_; }
    LgContext &ctx() { return ctx_; }

  private:
    /** Run handlers for a batch of delivered events; returns cycles. */
    Cycle runHandlers(std::vector<LgEvent> &events);
    void publishProgress();
    Cycle maybeStallFlush(Cycle now);
    Cycle handleStallFlush(Cycle now);
    /** Platform-owned halves of the TSO versioning protocol (section
     *  5.5 + read-side-writer rule): guarantee the snapshot exists after
     *  a produce record, discard unconsumed snapshots, and mark
     *  writer-handler completion on the producing store. */
    void enforceVersionProtocol(const EventRecord &rec);

    CoreId core_;
    ThreadId tid_;
    const SimConfig &cfg_;
    CaptureUnit &capture_;
    ProgressTable &progress_;
    Lifeguard &lifeguard_;
    AccelUnit accel_;
    OrderEnforcer enforcer_;
    LgContext ctx_;
    std::uint32_t doneNeeded_;
    std::uint32_t doneSeen_ = 0;
    RecordId lastProcessed_ = 0;
    std::uint64_t emptyStreak_ = 0;
    std::uint64_t stallStreak_ = 0;
    std::uint64_t absorbedTick_ = 0;
    std::vector<LgEvent> events_; ///< scratch, reused across steps
    /// Versions produced by this stream whose producing store record
    /// (identified by rid) has not been processed yet; used to mark
    /// VersionStore entries writerDone (read-side-writer rule).
    std::vector<std::pair<VersionTag, RecordId>> pendingWriterStores_;
};

} // namespace paralog

#endif // PARALOG_CORE_LIFEGUARD_CORE_HPP
