#include "core/app_core.hpp"

#include "common/logging.hpp"

namespace paralog {

AppCore::AppCore(CoreId core, std::unique_ptr<ThreadContext> tc,
                 CaptureUnit *capture, Interpreter &interp,
                 MemorySystem &mem, const SimConfig &cfg,
                 bool monitoring_enabled, CaBroadcastFn ca_broadcast)
    : core_(core), tc_(std::move(tc)), capture_(capture), interp_(interp),
      mem_(mem), cfg_(cfg), monitoringEnabled_(monitoring_enabled),
      caBroadcast_(std::move(ca_broadcast))
{
}

void
AppCore::step(Cycle now)
{
    if (finished_)
        return;

    // Back-pressure: the log buffer is full, the application core
    // stalls (section 2: "if the log buffer is full, then the
    // application core stalls").
    if (monitoringEnabled_ && capture_ && !capture_->canAppend()) {
        stats.logFullStall += cfg_.retryInterval;
        busyUntil = now + cfg_.retryInterval;
        return;
    }

    interp_.step(*tc_, core_, now, out_);
    Interpreter::StepOutcome &out = out_;

    switch (out.kind) {
      case Interpreter::StepOutcome::Kind::kDone:
        finished_ = true;
        stats.doneAt = now;
        return;

      case Interpreter::StepOutcome::Kind::kBlocked:
        switch (tc_->blockReason) {
          case BlockReason::kLock:
            stats.lockStall += out.latency;
            break;
          case BlockReason::kBarrier:
            stats.barrierStall += out.latency;
            break;
          case BlockReason::kDrain:
            stats.drainStall += out.latency;
            break;
          case BlockReason::kStoreBuffer:
            stats.storeBufStall += out.latency;
            break;
          default:
            stats.execCycles += out.latency;
            break;
        }
        busyUntil = now + out.latency;
        return;

      case Interpreter::StepOutcome::Kind::kRetired:
        break;
    }

    Cycle latency = out.latency;
    RecordId rid = out.event.record.rid;

    ++tc_->retired;
    ++stats.retired;
    mem_.setCoreCounter(core_, tc_->retired);

    if (monitoringEnabled_ && capture_) {
        capture_->setRetired(tc_->retired);
        // Live-parallel publication seal input: the record's append
        // cycle equals the retiring access's AccessTag::retireCycle
        // (Interpreter::tagFor stamps the same `now`), which is what
        // MemorySystem::addArcFrom compares store-buffer entries
        // against when it raises a version request.
        out.event.record.appendCycle = now;
        bool appended = capture_->append(out.event);
        if (appended && out.event.caBroadcast && caBroadcast_) {
            latency += caBroadcast_(tc_->tid(), rid, out.event.caKind,
                                    out.event.record.range);
            stats.caAckCycles += latency - out.latency;
        }
    }

    stats.execCycles += out.latency;
    busyUntil = now + std::max<Cycle>(1, latency);
}

} // namespace paralog
