#include "core/replay.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace paralog {

using trace::OpCode;
using trace::TraceOp;

ReplayCore::ReplayCore(ThreadId tid, trace::TraceReader &reader,
                       CaptureUnit &unit, CaManager &ca,
                       const EventFilter *filter)
    : tid_(tid), unit_(unit), ca_(ca), filter_(filter),
      stream_(reader.opStream(tid))
{
}

const TraceOp *
ReplayCore::peek()
{
    if (!hasPending_ && !exhausted_) {
        if (stream_.next(pending_))
            hasPending_ = true;
        else
            exhausted_ = true;
    }
    return hasPending_ ? &pending_ : nullptr;
}

void
ReplayCore::apply()
{
    PARALOG_ASSERT(hasPending_, "replay apply without a pending op");
    TraceOp &op = pending_;
    switch (op.op) {
      case OpCode::kRetire:
        unit_.setRetired(op.retired);
        break;
      case OpCode::kAppend:
      case OpCode::kAppendCa:
        // Cross-lifeguard replays re-filter the recorded stream for the
        // new monitor's registered interests, mirroring the live
        // capture unit: dropped records' arcs carry forward to the next
        // surviving record so ordering stays conservative.
        if (filter_ && !filter_->wants(op.rec)) {
            for (const DepArc &a : op.rec.arcs)
                arcsCarry_.push_back(a);
            droppedRids_.insert(op.rec.rid);
            break;
        }
        if (filter_ && !arcsCarry_.empty()) {
            op.rec.arcs.insert(op.rec.arcs.begin(), arcsCarry_.begin(),
                               arcsCarry_.end());
            arcsCarry_.clear();
        }
        unit_.replayAppend(std::move(op.rec), op.chargedBytes,
                           op.op == OpCode::kAppendCa);
        break;
      case OpCode::kAttachArcs:
        // Three cases for the target record: still pending (attach, the
        // common one), dropped by *this replay's* re-filter (carry the
        // arcs forward, as a live capture of the new lifeguard would),
        // or absent from the recorded stream too (the recording's own
        // filter dropped it — the arcs were live-carried and already
        // sit inside a later journalled append; adding them again would
        // double-count).
        if (filter_ && !unit_.buffer().findByRid(op.rid) &&
            droppedRids_.count(op.rid)) {
            for (const DepArc &a : op.arcs)
                arcsCarry_.push_back(a);
            break;
        }
        unit_.replayAttachArcs(op.rid, op.arcs);
        break;
      case OpCode::kAnnotateConsume:
        unit_.annotateConsume(op.rid, op.version);
        break;
      case OpCode::kInsertProduce:
        unit_.insertProduceBefore(op.rid, op.version, op.addr, op.size);
        break;
      case OpCode::kVisLimit:
        unit_.setVisibilityLimit(op.visLimit);
        break;
      case OpCode::kCaBroadcast:
        // Mirrors Platform::caBroadcast: restore the barrier entry and
        // annotate the issuer's pending high-level record.
        if (EventRecord *rec =
                unit_.buffer().findByRid(op.ca.issuerEventRid))
            rec->caSeq = op.ca.seq;
        ca_.injectBroadcast(std::move(op.ca));
        break;
    }
    hasPending_ = false;
}

ReplayPlatform::ReplayPlatform(ReplayConfig cfg)
    : cfg_(std::move(cfg)),
      reader_(cfg_.path,
              trace::TraceReader::Options{
                  true, cfg_.decodeJobs > 1 ? cfg_.decodeJobs : 1}),
      lifeguardKind_(cfg_.lifeguard)
{
    if (!reader_.ok())
        panic("replay: %s", reader_.error().c_str());
    const trace::TraceConfig &tc = reader_.config();
    PARALOG_ASSERT(tc.mode == MonitorMode::kParallel,
                   "replay requires a parallel-monitoring recording");

    sim_ = tc.toSimConfig();
    if (cfg_.shadowShards != ReplayConfig::kKeepRecorded)
        sim_.shadowShards = cfg_.shadowShards;
    k_ = tc.appThreads;
    if (!cfg_.lifeguardOverride)
        lifeguardKind_ = tc.lifeguard;
    sameLifeguard_ = (lifeguardKind_ == tc.lifeguard);
    liveParallelRec_ = tc.liveParallel;
    // Live-parallel recordings carry no lifeguard-step stamps (the
    // consumers ran on host threads the journal never saw), so the
    // serial scheduler has no recorded interleaving to reproduce:
    // same-lifeguard replays of them always go through the
    // protocol-enforced concurrent engine (possibly with a single
    // consumer thread). Cross-lifeguard replays of any recording stay
    // on the serial engine (approximate, unverified).
    concurrent_ = cfg_.lgThreads >= 2 ||
                  (liveParallelRec_ && sameLifeguard_);
    // Recordings use canonical single-pop delivery (see
    // recordExperiment): the journal's lifeguard-step stamps only line
    // up when replay steps the same way. The concurrent engine ignores
    // the step stamps entirely (delivery order is protocol-enforced,
    // not schedule-reproduced), so it may batch freely.
    sim_.deliverBatchMax = concurrent() ? 16 : 1;

    if (concurrent()) {
        // Cross-lifeguard replays re-filter streams and use a fresh
        // timed memory hierarchy; both are engineered for the serial
        // scheduler. Restrict the host-parallel engine to the recorded
        // lifeguard, where delivery is fully protocol-enforced.
        PARALOG_ASSERT(sameLifeguard_,
                       "concurrent replay (--lg-threads) requires "
                       "replaying the recorded lifeguard");
        // High-level handlers (allocation fills, range checks) touch
        // metadata of whole ranges non-atomically; their exclusivity
        // rests on the two-sided ConflictAlert barriers. A recording
        // made without them cannot be monitored concurrently.
        PARALOG_ASSERT(sim_.conflictAlerts,
                       "concurrent replay requires a recording made "
                       "with ConflictAlert broadcasts enabled");
    }

    lifeguard_ = makeLifeguard(lifeguardKind_, k_,
                               sim_.effectiveShadowShards(k_));
    if (concurrent())
        lifeguard_->shadow().setConcurrent(true);
    progress_ = std::make_unique<ProgressTable>(k_);
    caMgr_ = std::make_unique<CaManager>(k_);

    if (!sameLifeguard_) {
        // Fresh metadata hierarchy: plausible timing, no recorded
        // latencies to consume (the recording's latency sideband
        // matches the recorded lifeguard's access sequence only).
        mem_ = std::make_unique<MemorySystem>(sim_, sim_.totalCores());

        const LifeguardPolicy policy = lifeguard_->policy();
        std::uint8_t bits = tc.filterBits;
        if ((policy.wantsRegOps && !(bits & trace::kFilterRegOps)) ||
            (policy.wantsJumps && !(bits & trace::kFilterJumps)) ||
            (!policy.heapOnly && (bits & trace::kFilterHeapOnly))) {
            warn("replay: the recording's event filter (%s) captured "
                 "fewer event classes than %s registers for; results "
                 "are approximate",
                 toString(tc.lifeguard), toString(lifeguardKind_));
        }
    }

    if (!sameLifeguard_) {
        const LifeguardPolicy policy = lifeguard_->policy();
        filter_.regOps = policy.wantsRegOps;
        filter_.jumps = policy.wantsJumps;
        filter_.heapOnly = policy.heapOnly;
        filter_.heapArena =
            AddrRange{AddressLayout::kHeapBase,
                      AddressLayout::kHeapBase + AddressLayout::kHeapBytes};
    }

    captures_.reserve(k_);
    lgCores_.reserve(k_);
    replayCores_.reserve(k_);
    latStreams_.reserve(k_);
    for (ThreadId t = 0; t < k_; ++t) {
        // The capture units carry no filter of their own: same-monitor
        // replays feed the journal verbatim (it already holds the
        // recorded post-filter records); cross-monitor replays
        // re-filter in the ReplayCore.
        captures_.push_back(
            std::make_unique<CaptureUnit>(t, sim_, EventFilter{}));
        replayCores_.push_back(std::make_unique<ReplayCore>(
            t, reader_, *captures_[t], *caMgr_,
            sameLifeguard_ ? nullptr : &filter_));
    }
    for (ThreadId t = 0; t < k_; ++t) {
        lgCores_.push_back(std::make_unique<LifeguardCore>(
            k_ + t, t, sim_, *captures_[t], *progress_, *caMgr_,
            *lifeguard_, sameLifeguard_ ? nullptr : mem_.get(),
            versions_, 1));
        // The concurrent engine relaxes timing: no latency oracle (and
        // no memory system), so metadata accesses are untimed — the
        // recorded latency sideband describes the serial schedule's
        // access sequence, which concurrent delivery does not reproduce.
        if (sameLifeguard_ && !concurrent()) {
            latStreams_.push_back(reader_.latencyStream(t));
            lgCores_.back()->ctx().setMetaLatencyOracle(
                [this, t]() -> Cycle {
                    Cycle latency = 0;
                    if (!latStreams_[t].next(latency))
                        panic("replay diverged: lifeguard %u performed "
                              "more metadata accesses than recorded",
                              t);
                    return latency;
                });
        }
    }
}

ReplayPlatform::~ReplayPlatform() = default;

void
ReplayPlatform::dumpStuckState(Cycle now, std::uint64_t lg_steps)
{
    std::fprintf(stderr,
                 "=== replay watchdog state dump (now=%llu lg_steps="
                 "%llu) ===\n",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(lg_steps));
    for (ThreadId t = 0; t < k_; ++t) {
        const TraceOp *op = replayCores_[t]->peek();
        if (op) {
            std::fprintf(stderr,
                         "replay %u: next op=%u gseq=%llu cycle=%llu "
                         "lgStep=%llu\n",
                         t, static_cast<unsigned>(op->op),
                         static_cast<unsigned long long>(op->gseq),
                         static_cast<unsigned long long>(op->cycle),
                         static_cast<unsigned long long>(op->lgStep));
        } else {
            std::fprintf(stderr, "replay %u: journal exhausted\n", t);
        }
        std::fprintf(stderr,
                     "  stream: size=%zu visLimit=%llu done=%llu\n",
                     captures_[t]->buffer().size(),
                     static_cast<unsigned long long>(
                         captures_[t]->visibilityLimit()),
                     static_cast<unsigned long long>(progress_->done(t)));
        const OrderEnforcer &oe = lgCores_[t]->enforcer();
        std::fprintf(stderr,
                     "  lg: finished=%d busyUntil=%llu wait=%s "
                     "sameRecordRetries=%llu processed=%llu\n",
                     lgCores_[t]->finished() ? 1 : 0,
                     static_cast<unsigned long long>(
                         lgCores_[t]->busyUntil),
                     toString(oe.lastStatus()),
                     static_cast<unsigned long long>(
                         oe.sameRecordStallRetries()),
                     static_cast<unsigned long long>(
                         lgCores_[t]->stats.recordsProcessed));
        if (const EventRecord *front = captures_[t]->buffer().peek()) {
            std::fprintf(stderr, "  front: type=%s rid=%llu arcs=[",
                         toString(front->type),
                         static_cast<unsigned long long>(front->rid));
            for (const DepArc &a : front->arcs)
                std::fprintf(stderr, "(%u,%llu)", a.tid,
                             static_cast<unsigned long long>(a.rid));
            std::fprintf(stderr, "] caSeq=%llu consumesV=%d\n",
                         static_cast<unsigned long long>(front->caSeq),
                         front->consumesVersion ? 1 : 0);
        }
    }
}

std::uint64_t
ReplayPlatform::shadowFingerprint() const
{
    const ShadowMemory &s = lifeguard_->shadow();
    return paralog::shadowFingerprint(s, AddressLayout::kHeapBase,
                                      1 << 20) ^
           paralog::shadowFingerprint(s, AddressLayout::kGlobalBase,
                                      1 << 16);
}

RunResult
ReplayPlatform::run()
{
    return concurrent() ? runConcurrent() : runSerial();
}

RunResult
ReplayPlatform::runSerial()
{
    Cycle now = 0;
    Cycle last_now = 0;
    std::uint64_t same_now_iters = 0;
    std::uint64_t lg_steps = 0;

    std::vector<ReplayCore *> producers;
    std::vector<LifeguardCore *> lgs;
    for (auto &c : replayCores_)
        producers.push_back(c.get());
    for (auto &c : lgCores_)
        lgs.push_back(c.get());

    auto all_done = [&producers, &lgs] {
        for (ReplayCore *p : producers) {
            if (!p->done())
                return false;
        }
        for (const LifeguardCore *c : lgs) {
            if (!c->finished())
                return false;
        }
        return true;
    };

    ProgressWatchdog stall_watchdog(cfg_.stallWatchdogIters / 64 + 1);
    std::uint64_t watchdog_tick = 0;
    Counter &produced_ctr = versions_.stats.counter("produced");
    Counter &consumed_ctr = versions_.stats.counter("consumed");
    auto progress_signature = [&] {
        std::uint64_t sig = produced_ctr.value() + consumed_ctr.value() +
                            lg_steps;
        for (const LifeguardCore *c : lgs)
            sig += c->stats.recordsProcessed;
        for (ThreadId t = 0; t < progress_->size(); ++t)
            sig += progress_->done(t);
        return sig;
    };

    while (!all_done()) {
        if (now == last_now) {
            if (++same_now_iters > 20'000'000) {
                dumpStuckState(now, lg_steps);
                panic("replay livelock: cycle %llu never advances "
                      "(journal/lifeguard divergence)",
                      static_cast<unsigned long long>(now));
            }
        } else {
            last_now = now;
            same_now_iters = 0;
        }
        if ((++watchdog_tick & 63) == 0 &&
            stall_watchdog.poll(progress_signature())) {
            dumpStuckState(now, lg_steps);
            panic("replay watchdog: no forward progress in %llu "
                  "scheduler iterations at cycle %llu (journal/"
                  "lifeguard divergence)",
                  static_cast<unsigned long long>(
                      cfg_.stallWatchdogIters),
                  static_cast<unsigned long long>(now));
        }

        // Event-driven advance: the next producer op or lifeguard core.
        Cycle next = kInvalidRecord;
        for (ReplayCore *p : producers) {
            if (const TraceOp *op = p->peek())
                next = std::min(next, op->cycle);
        }
        for (LifeguardCore *c : lgs) {
            if (!c->finished())
                next = std::min(next, c->busyUntil);
        }
        if (next > now)
            now = next;

        if (now > cfg_.maxCycles)
            panic("replay watchdog: no completion after %llu cycles",
                  static_cast<unsigned long long>(cfg_.maxCycles));

        // Producer phase: apply every journal op due at `now` whose
        // recorded lifeguard-step stamp has been reached, in global
        // journal order. Ops stamped with a later lifeguard-step count
        // wait — they were recorded in a later scheduler iteration at
        // this same cycle, after lifeguard steps that have not run yet.
        // (The step stamps describe the *recorded* lifeguard's cadence;
        // replaying a different lifeguard ignores them and applies ops
        // purely by cycle — its interleaving has no recording to match.)
        for (;;) {
            ReplayCore *best = nullptr;
            std::uint64_t best_gseq = ~0ULL;
            for (ReplayCore *p : producers) {
                const TraceOp *op = p->peek();
                if (op && op->cycle <= now &&
                    (!sameLifeguard_ || op->lgStep <= lg_steps) &&
                    op->gseq < best_gseq) {
                    best = p;
                    best_gseq = op->gseq;
                }
            }
            if (!best)
                break;
            best->apply();
        }

        // Lifeguard phase: identical to Platform::run, with the
        // producers' next-op cycles as the application side of the
        // solo-batching horizon. (A pending op gated on a future
        // lifeguard step has cycle <= now, pinning the horizon to now —
        // conservative, and batching is result-invariant.)
        Cycle actor_horizon = 0;
        bool horizon_valid = false;
        for (std::size_t i = 0; i < lgs.size(); ++i) {
            LifeguardCore *c = lgs[i];
            if (c->finished() || c->busyUntil > now)
                continue;
            if (!horizon_valid) {
                actor_horizon = ~Cycle{0};
                for (ReplayCore *p : producers) {
                    if (const TraceOp *op = p->peek())
                        actor_horizon =
                            std::min(actor_horizon, op->cycle);
                }
                horizon_valid = true;
            }
            Cycle horizon = actor_horizon;
            for (std::size_t j = 0; j < lgs.size(); ++j) {
                if (j != i && !lgs[j]->finished())
                    horizon = std::min(horizon, lgs[j]->busyUntil);
            }
            c->step(now, horizon);
            ++lg_steps;
        }
    }

    RunResult result;
    result.totalCycles = now;
    result.app = reader_.footer().app; // no application ran: recorded
    for (auto &c : lgCores_) {
        result.lifeguard.push_back(c->stats);
        result.versionStallRetries +=
            c->enforcer().stats.get("version_stalls");
    }
    result.versionsProduced = produced_ctr.value();
    result.versionsConsumed = consumed_ctr.value();
    result.violationCount = lifeguard_->violations.count();
    result.violationFingerprint = lifeguard_->violations.setFingerprint();
    result.shadowFingerprint = shadowFingerprint();

    // The oracle panics when a lifeguard performs *more* metadata
    // accesses than recorded; the opposite divergence — recorded
    // latencies left unconsumed — is checked here (a warning in
    // diagnosis mode, where the run is allowed to finish).
    for (ThreadId t = 0; t < latStreams_.size(); ++t) {
        if (latStreams_[t].exhausted())
            continue;
        if (cfg_.verify)
            panic("replay diverged: lifeguard %u performed fewer "
                  "metadata accesses than recorded",
                  t);
        warn("replay: lifeguard %u left recorded metadata-access "
             "latencies unconsumed (divergence)",
             t);
    }

    if (sameLifeguard_ && cfg_.verify)
        verifyAgainstFooter(result);
    return result;
}

void
ReplayPlatform::verifyAgainstFooter(const RunResult &result) const
{
    const trace::TraceFooter &f = reader_.footer();
    auto mismatch = [](const char *what, std::uint64_t got,
                       std::uint64_t want) {
        panic("replay diverged from the recording: %s = %llu, recorded "
              "%llu",
              what, static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(want));
    };
    if (result.shadowFingerprint != f.shadowFingerprint)
        mismatch("shadow fingerprint", result.shadowFingerprint,
                 f.shadowFingerprint);
    if (result.totalCycles != f.totalCycles)
        mismatch("total cycles", result.totalCycles, f.totalCycles);
    if (result.violationCount != f.violations)
        mismatch("violations", result.violationCount, f.violations);
    // Older recordings predate the footer's violation fingerprint.
    if (f.hasViolationFingerprint &&
        result.violationFingerprint != f.violationFingerprint)
        mismatch("violation fingerprint", result.violationFingerprint,
                 f.violationFingerprint);
    if (result.versionsProduced != f.versionsProduced)
        mismatch("versions produced", result.versionsProduced,
                 f.versionsProduced);
    if (result.versionsConsumed != f.versionsConsumed)
        mismatch("versions consumed", result.versionsConsumed,
                 f.versionsConsumed);
    if (result.versionStallRetries != f.versionStallRetries)
        mismatch("version stall retries", result.versionStallRetries,
                 f.versionStallRetries);
    PARALOG_ASSERT(result.lifeguard.size() == f.lifeguard.size(),
                   "recorded lifeguard thread count mismatch");
    for (std::size_t i = 0; i < f.lifeguard.size(); ++i) {
        const LifeguardThreadStats &got = result.lifeguard[i];
        const LifeguardThreadStats &want = f.lifeguard[i];
        if (got.usefulCycles != want.usefulCycles)
            mismatch("lifeguard useful cycles", got.usefulCycles,
                     want.usefulCycles);
        if (got.depStall != want.depStall)
            mismatch("lifeguard dep stall", got.depStall, want.depStall);
        if (got.caStall != want.caStall)
            mismatch("lifeguard CA stall", got.caStall, want.caStall);
        if (got.versionStall != want.versionStall)
            mismatch("lifeguard version stall", got.versionStall,
                     want.versionStall);
        if (got.appStall != want.appStall)
            mismatch("lifeguard app stall", got.appStall, want.appStall);
        if (got.recordsProcessed != want.recordsProcessed)
            mismatch("records processed", got.recordsProcessed,
                     want.recordsProcessed);
        if (got.eventsHandled != want.eventsHandled)
            mismatch("events handled", got.eventsHandled,
                     want.eventsHandled);
        if (got.doneAt != want.doneAt)
            mismatch("lifeguard done cycle", got.doneAt, want.doneAt);
    }
}

} // namespace paralog
