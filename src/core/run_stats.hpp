/**
 * @file
 * Per-run statistics: the time breakdown reported in Figure 7 (useful
 * work / waiting for dependence / waiting for the application) plus
 * application-side stall accounting.
 */

#ifndef PARALOG_CORE_RUN_STATS_HPP
#define PARALOG_CORE_RUN_STATS_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace paralog {

struct AppThreadStats
{
    Cycle execCycles = 0;        ///< busy executing instructions
    Cycle logFullStall = 0;      ///< log buffer full
    Cycle lockStall = 0;         ///< spinning on application locks
    Cycle barrierStall = 0;      ///< waiting at application barriers
    Cycle drainStall = 0;        ///< damage containment before syscalls
    Cycle caAckCycles = 0;       ///< ConflictAlert serialization
    Cycle storeBufStall = 0;     ///< TSO store buffer full
    std::uint64_t retired = 0;   ///< retired micro-ops
    std::uint64_t programInsts = 0;
    Cycle doneAt = 0;            ///< cycle the thread exited
};

struct LifeguardThreadStats
{
    Cycle usefulCycles = 0;   ///< running handlers (Figure 7 "useful")
    Cycle depStall = 0;       ///< "waiting for dependence"
    Cycle caStall = 0;        ///< ConflictAlert barrier waits
    Cycle versionStall = 0;   ///< TSO version waits
    Cycle appStall = 0;       ///< "waiting for application" (empty log)
    std::uint64_t recordsProcessed = 0;
    std::uint64_t eventsHandled = 0; ///< post-accelerator deliveries
    Cycle doneAt = 0;

    Cycle
    depStallTotal() const
    {
        return depStall + caStall + versionStall;
    }
};

struct RunResult
{
    Cycle totalCycles = 0;
    std::vector<AppThreadStats> app;
    std::vector<LifeguardThreadStats> lifeguard;
    std::uint64_t violationCount = 0;

    // TSO versioning protocol counters (zero under SC): snapshots
    // produced / consumed through the VersionStore and the number of
    // delivery retries spent waiting for a version. A hang diagnosis
    // starts here: produced != consumed means a leaked snapshot,
    // exploding version_stalls means a starved consumer.
    std::uint64_t versionsProduced = 0;
    std::uint64_t versionsConsumed = 0;
    std::uint64_t versionStallRetries = 0;

    /// Shadow-metadata fingerprint (heap + global segments), filled by
    /// runs that compute it (trace record/replay); 0 otherwise. Not a
    /// CSV stat column — the legacy schema stays frozen.
    std::uint64_t shadowFingerprint = 0;

    /// Hash of the set of *distinct* (kind, tid, addr) violations
    /// (ViolationLog::setFingerprint). violationCount is a
    /// report-granularity quantity — duplicate reports absorbed by the
    /// Idempotent Filters vary with stall-flush timing — while the
    /// distinct set is invariant across serial and host-parallel
    /// monitoring; the concurrent-replay differential compares this.
    std::uint64_t violationFingerprint = 0;

    Cycle
    appExecTotal() const
    {
        Cycle sum = 0;
        for (const auto &a : app)
            sum += a.execCycles;
        return sum;
    }

    std::uint64_t
    retiredTotal() const
    {
        std::uint64_t sum = 0;
        for (const auto &a : app)
            sum += a.retired;
        return sum;
    }

    std::uint64_t
    eventsHandledTotal() const
    {
        std::uint64_t sum = 0;
        for (const auto &l : lifeguard)
            sum += l.eventsHandled;
        return sum;
    }
};

} // namespace paralog

#endif // PARALOG_CORE_RUN_STATS_HPP
