/**
 * @file
 * One simulated application core: executes its thread via the
 * interpreter, appends retired events to the thread's capture unit, and
 * triggers ConflictAlert broadcasts for subscribed high-level events.
 */

#ifndef PARALOG_CORE_APP_CORE_HPP
#define PARALOG_CORE_APP_CORE_HPP

#include <functional>
#include <memory>

#include "app/interpreter.hpp"
#include "app/thread_context.hpp"
#include "capture/capture_unit.hpp"
#include "core/run_stats.hpp"

namespace paralog {

class AppCore
{
  public:
    /**
     * ConflictAlert broadcast callback (implemented by the platform):
     * inserts CA records into the other threads' streams, annotates the
     * issuer's high-level record with the broadcast sequence, and
     * returns the ack latency charged to this core.
     */
    using CaBroadcastFn = std::function<Cycle(
        ThreadId tid, RecordId rid, HighLevelKind kind,
        const AddrRange &range)>;

    AppCore(CoreId core, std::unique_ptr<ThreadContext> tc,
            CaptureUnit *capture, Interpreter &interp, MemorySystem &mem,
            const SimConfig &cfg, bool monitoring_enabled,
            CaBroadcastFn ca_broadcast);

    /** Execute one step at @p now; updates busyUntil and stats. */
    void step(Cycle now);

    bool active() const { return !finished_; }
    Cycle busyUntil = 0;

    ThreadContext &tc() { return *tc_; }
    const ThreadContext &tc() const { return *tc_; }
    CaptureUnit *capture() { return capture_; }
    CoreId core() const { return core_; }

    AppThreadStats stats;

  private:
    CoreId core_;
    std::unique_ptr<ThreadContext> tc_;
    CaptureUnit *capture_; ///< may be shared (timesliced) or null
    Interpreter &interp_;
    Interpreter::StepOutcome out_; ///< scratch, reused across steps
    MemorySystem &mem_;
    const SimConfig &cfg_;
    bool monitoringEnabled_;
    CaBroadcastFn caBroadcast_;
    bool finished_ = false;
};

} // namespace paralog

#endif // PARALOG_CORE_APP_CORE_HPP
