/**
 * @file
 * Host-parallel replay engine: each lifeguard core runs on its own host
 * thread, consuming its event stream through a lock-free SPSC ring,
 * while one producer thread re-applies the recorded journal.
 *
 * The serial replay engine interleaves producer ops and lifeguard steps
 * under one scheduler, so producer-side stream mutations (drain-time
 * arc attachment, TSO annotations, visibility-limit moves, CA-sequence
 * stamping) always target records the consumer has not reached yet. The
 * concurrent engine decouples the two sides; its safety hinges on one
 * idea, the *publication seal*:
 *
 *   A record may be handed to its consumer only after every journal op
 *   that still mutates it (or gates its visibility) has been applied.
 *
 * A pre-pass over the journal computes, per stream, the final record
 * sequence and each record's seal — the greatest gseq among its append,
 * the visibility-limit move that exposes it, arc attachments, effective
 * consume-version annotations, and the ConflictAlert broadcast that
 * stamps or targets it. Prefix-maxing the seals (publication is in
 * stream order) yields a publication schedule that is a pure function
 * of the journal: the producer applies ops in global gseq order and,
 * after each op, moves every newly-sealed record out of the log buffer
 * into the stream's ring. Because records leave the log buffer exactly
 * at publication, by-rid lookups from later ops ("is this record still
 * pending?") are deterministic — independent of consumer timing — and
 * resolve exactly as they did in the recorded run.
 *
 * Delivery *order* then needs no schedule reproduction at all: the
 * order-enforcing components run the real protocol (dependence arcs
 * against the release/acquire progress table, two-sided ConflictAlert
 * barriers, TSO version waits), which is what orders same-line metadata
 * accesses. Analysis results — shadow fingerprint, violations, records
 * processed, versions produced/consumed — are therefore identical to
 * the serial engine (checked against the trace footer and by the
 * differential test matrix). Simulated *timing* (cycle counts, stall
 * breakdowns) is relaxed: there is no global clock across host threads.
 */

#include "core/replay.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "common/spsc_ring.hpp"

namespace paralog {
namespace {

using trace::OpCode;
using trace::TraceOp;

/** One record of a stream's final (post-insert) shape. */
struct SealEntry
{
    RecordId rid = 0;
    EventType type = EventType::kNone;
    /// Greatest gseq of any journal op that mutates or exposes this
    /// record; it may be handed to the consumer once that op applied.
    std::uint64_t seal = 0;
};

struct StreamPlan
{
    std::vector<SealEntry> seq;
    /// Prefix-max of seals: publication is in stream order, so a
    /// record's effective seal includes every predecessor's.
    std::vector<std::uint64_t> pubSeal;
};

struct TagHash
{
    std::size_t
    operator()(const VersionTag &t) const
    {
        return std::hash<std::uint64_t>()(
            (static_cast<std::uint64_t>(t.tid) << 48) ^ t.rid);
    }
};

std::uint64_t
issuerKey(ThreadId tid, RecordId rid)
{
    return (static_cast<std::uint64_t>(tid) << 48) ^ rid;
}

/**
 * Two linear scans of the journal (through a second, pre-pass reader).
 *
 * Pass A collects the cross-op facts seals depend on: per version tag,
 * the last kInsertProduce gseq (an annotation is applied-to-pending iff
 * a produce follows it — a later annotation targets an already-consumed
 * record, which by publication-order is already out of the log buffer
 * when the producer reaches it, making the live "already consumed"
 * no-op deterministic); per CA broadcast, the gseq that must seal its
 * arrival records and the issuer's high-level record (the broadcast op
 * injects the barrier entry and stamps the issuer record — a consumer
 * reaching either record earlier would sail through the barrier).
 *
 * Pass B replays each stream's shape: appends in order, produce records
 * inserted before their store (mirroring LogBuffer::insertBefore), and
 * visibility tracked so a record hidden behind the TSO store buffer is
 * sealed by the kVisLimit op that exposes it. Where several records
 * share a rid (CA records borrow the retire counter), by-rid seals are
 * applied to all of them — over-sealing only delays publication, never
 * breaks it.
 */
std::vector<StreamPlan>
buildPublicationPlans(const std::string &path, std::uint32_t k)
{
    trace::TraceReader reader(path);
    PARALOG_ASSERT(reader.ok(), "concurrent replay pre-pass: %s",
                   reader.error().c_str());

    std::unordered_map<VersionTag, std::uint64_t, TagHash> lastProduce;
    std::unordered_map<std::uint64_t, std::uint64_t> caGseq; // seq
    std::unordered_map<std::uint64_t, std::uint64_t> issuerGseq;
    for (ThreadId t = 0; t < k; ++t) {
        trace::TraceReader::OpStream s = reader.opStream(t);
        TraceOp op;
        while (s.next(op)) {
            if (op.op == OpCode::kInsertProduce) {
                std::uint64_t &g = lastProduce[op.version];
                g = std::max(g, op.gseq);
            } else if (op.op == OpCode::kCaBroadcast) {
                std::uint64_t &g = caGseq[op.ca.seq];
                g = std::max(g, op.gseq);
                std::uint64_t &ig = issuerGseq[issuerKey(
                    op.ca.issuer, op.ca.issuerEventRid)];
                ig = std::max(ig, op.gseq);
            }
        }
        PARALOG_ASSERT(reader.ok(), "concurrent replay pre-pass: %s",
                       reader.error().c_str());
    }

    std::vector<StreamPlan> plans(k);
    for (ThreadId t = 0; t < k; ++t) {
        StreamPlan &plan = plans[t];
        std::vector<SealEntry> &seq = plan.seq;
        RecordId visLimit = kInvalidRecord;
        std::vector<std::size_t> pendingVis;

        auto lower = [&seq](RecordId rid) {
            return std::lower_bound(
                seq.begin(), seq.end(), rid,
                [](const SealEntry &e, RecordId r) { return e.rid < r; });
        };
        auto sealRange = [&seq, &lower](RecordId rid, std::uint64_t g) {
            for (auto it = lower(rid); it != seq.end() && it->rid == rid;
                 ++it)
                it->seal = std::max(it->seal, g);
        };
        auto trackVisibility = [&](std::size_t idx, RecordId rid) {
            if (visLimit != kInvalidRecord && rid >= visLimit)
                pendingVis.push_back(idx);
        };

        trace::TraceReader::OpStream s = reader.opStream(t);
        TraceOp op;
        while (s.next(op)) {
            switch (op.op) {
              case OpCode::kAppend:
              case OpCode::kAppendCa: {
                SealEntry e{op.rec.rid, op.rec.type, op.gseq};
                if (e.type == EventType::kCaBegin ||
                    e.type == EventType::kCaEnd) {
                    auto it = caGseq.find(op.rec.value);
                    if (it != caGseq.end())
                        e.seal = std::max(e.seal, it->second);
                }
                auto it = issuerGseq.find(issuerKey(t, e.rid));
                if (it != issuerGseq.end())
                    e.seal = std::max(e.seal, it->second);
                seq.push_back(e);
                trackVisibility(seq.size() - 1, e.rid);
                break;
              }
              case OpCode::kInsertProduce: {
                // Mirror LogBuffer::insertBefore: directly before the
                // same-rid store when present, else before the first
                // record with rid >= store rid, else at the tail.
                auto pos = lower(op.rid);
                auto ins = pos;
                for (auto it = pos;
                     it != seq.end() && it->rid == op.rid; ++it) {
                    if (it->type == EventType::kStore) {
                        ins = it;
                        break;
                    }
                }
                std::size_t idx =
                    static_cast<std::size_t>(ins - seq.begin());
                seq.insert(ins, SealEntry{op.rid,
                                          EventType::kProduceVersion,
                                          op.gseq});
                for (std::size_t &p : pendingVis)
                    if (p >= idx)
                        ++p;
                // The produce shares the (store-buffer-hidden) store's
                // rid, so it is exposed by the same kVisLimit move.
                trackVisibility(idx, op.rid);
                break;
              }
              case OpCode::kVisLimit: {
                RecordId lim = op.visLimit;
                for (std::size_t i = 0; i < pendingVis.size();) {
                    SealEntry &e = seq[pendingVis[i]];
                    if (lim == kInvalidRecord || e.rid < lim) {
                        e.seal = std::max(e.seal, op.gseq);
                        pendingVis[i] = pendingVis.back();
                        pendingVis.pop_back();
                    } else {
                        ++i;
                    }
                }
                visLimit = lim;
                break;
              }
              case OpCode::kAttachArcs:
                sealRange(op.rid, op.gseq);
                break;
              case OpCode::kAnnotateConsume: {
                auto it = lastProduce.find(op.version);
                if (it != lastProduce.end() && op.gseq < it->second)
                    sealRange(op.rid, op.gseq);
                break;
              }
              case OpCode::kCaBroadcast: // sealed via the pass-A maps
              case OpCode::kRetire:
                break;
            }
        }
        PARALOG_ASSERT(reader.ok(), "concurrent replay pre-pass: %s",
                       reader.error().c_str());
        PARALOG_ASSERT(pendingVis.empty(),
                       "concurrent replay pre-pass: stream %u ends with "
                       "%zu records never made visible",
                       t, pendingVis.size());

        plan.pubSeal.resize(seq.size());
        std::uint64_t run = 0;
        for (std::size_t i = 0; i < seq.size(); ++i) {
            run = std::max(run, seq[i].seal);
            plan.pubSeal[i] = run;
        }
    }
    return plans;
}

} // namespace

RunResult
ReplayPlatform::runConcurrent()
{
    std::vector<StreamPlan> plans = buildPublicationPlans(cfg_.path, k_);

    // Ring capacity trades hand-off slack against footprint; overflow
    // below keeps the producer non-blocking when a consumer lags.
    constexpr std::size_t kRingSlots = 4096;
    std::deque<SpscRing<EventRecord>> rings;
    for (ThreadId t = 0; t < k_; ++t) {
        rings.emplace_back(kRingSlots);
        captures_[t]->attachRing(&rings[t]);
    }

    std::atomic<bool> abortFlag{false};
    std::atomic<std::uint64_t> appliedOps{0};
    std::atomic<std::uint32_t> liveWorkers{0};
    std::mutex errMutex;
    std::exception_ptr firstError;
    auto noteFailure = [&] {
        {
            std::lock_guard<std::mutex> g(errMutex);
            if (!firstError)
                firstError = std::current_exception();
        }
        abortFlag.store(true, std::memory_order_release);
    };

    // ---- producer ------------------------------------------------------
    struct ProdStream
    {
        std::size_t cursor = 0; ///< next plan entry to publish
        /// Records popped at publication while the ring was full; FIFO
        /// into the ring ahead of anything newer.
        std::deque<EventRecord> overflow;
    };
    std::vector<ProdStream> prod(k_);

    // Move every newly-sealed record out of the log buffer into the
    // ring, make the batch visible with one publish, then advance the
    // consumer's progress bound. Publish-before-bound is load-bearing:
    // the bound promises "everything below is in the ring".
    auto drainStream = [&](ThreadId t, std::uint64_t applied_gseq) {
        ProdStream &ps = prod[t];
        SpscRing<EventRecord> &ring = rings[t];
        const StreamPlan &plan = plans[t];
        while (!ps.overflow.empty() &&
               ring.tryPush(std::move(ps.overflow.front())))
            ps.overflow.pop_front();
        LogBuffer &buf = captures_[t]->buffer();
        while (ps.cursor < plan.seq.size() &&
               plan.pubSeal[ps.cursor] <= applied_gseq) {
            const SealEntry &e = plan.seq[ps.cursor];
            const EventRecord *head = buf.peek(kInvalidRecord);
            PARALOG_ASSERT(
                head && head->rid == e.rid && head->type == e.type,
                "concurrent replay: stream %u diverged from its "
                "publication plan at entry %zu (expected rid %llu)",
                t, ps.cursor, static_cast<unsigned long long>(e.rid));
            EventRecord rec = buf.pop();
            if (!ps.overflow.empty() ||
                !ring.tryPush(std::move(rec)))
                ps.overflow.push_back(std::move(rec));
            ++ps.cursor;
        }
        ring.publish();
        RecordId bound = captures_[t]->bufferCeiling();
        if (!ps.overflow.empty() && ps.overflow.front().rid < bound)
            bound = ps.overflow.front().rid;
        captures_[t]->setCeilingBound(bound);
    };

    auto producerBody = [&] {
        std::vector<ReplayCore *> cores;
        cores.reserve(k_);
        for (auto &c : replayCores_)
            cores.push_back(c.get());
        while (!abortFlag.load(std::memory_order_acquire)) {
            // Global journal order: the op with the smallest gseq.
            ReplayCore *best = nullptr;
            std::uint64_t best_gseq = ~0ULL;
            for (ReplayCore *p : cores) {
                if (const TraceOp *op = p->peek()) {
                    if (op->gseq < best_gseq) {
                        best = p;
                        best_gseq = op->gseq;
                    }
                }
            }
            if (!best)
                break;
            best->apply();
            appliedOps.fetch_add(1, std::memory_order_relaxed);
            for (ThreadId t = 0; t < k_; ++t)
                drainStream(t, best_gseq);
        }
        // Tail flush: the exhausted journal seals everything; overflow
        // may still be waiting on ring space.
        for (;;) {
            if (abortFlag.load(std::memory_order_acquire))
                return;
            bool pending = false;
            for (ThreadId t = 0; t < k_; ++t) {
                drainStream(t, ~0ULL);
                pending |= prod[t].cursor < plans[t].seq.size() ||
                           !prod[t].overflow.empty();
            }
            if (!pending)
                return;
            std::this_thread::yield();
        }
    };

    // ---- consumers -----------------------------------------------------
    // At least one: live-parallel recordings select this engine even
    // when no --lg-threads was requested (see ReplayPlatform ctor).
    const std::uint32_t nConsumers = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(cfg_.lgThreads, k_));

    // Failure-containment test hook (fault point "lg.fail", legacy
    // PARALOG_FAIL_LG): panic on the consumer thread that owns the
    // named lifeguard stream.
    ThreadId failTid = kInvalidThread;
    if (std::optional<std::uint64_t> v = faultValue("lg.fail"))
        failTid = static_cast<ThreadId>(*v);

    // LockSet writes metadata from application-*read* handlers (it
    // violates condition 2 of section 5.3), so unordered cross-thread
    // read pairs may touch the same granule state. Serialize whole
    // steps; the delivery protocol still orders everything with arcs.
    std::mutex stepMutex;
    const bool serializeSteps =
        (lifeguardKind_ == LifeguardKind::kLockSet);

    auto consumerBody = [&](std::uint32_t slot) {
        std::vector<std::pair<ThreadId, LifeguardCore *>> mine;
        std::vector<Cycle> nows;
        for (ThreadId t = slot; t < k_; t += nConsumers) {
            mine.emplace_back(t, lgCores_[t].get());
            nows.push_back(0);
        }
        for (;;) {
            if (abortFlag.load(std::memory_order_acquire))
                return;
            bool all_done = true;
            bool progressed = false;
            for (std::size_t i = 0; i < mine.size(); ++i) {
                LifeguardCore *core = mine[i].second;
                if (core->finished())
                    continue;
                all_done = false;
                if (mine[i].first == failTid)
                    panic("lg.fail (PARALOG_FAIL_LG): injected failure on "
                          "lifeguard thread %u",
                          mine[i].first);
                std::uint64_t before = core->stats.recordsProcessed;
                if (serializeSteps) {
                    std::lock_guard<std::mutex> g(stepMutex);
                    core->step(nows[i], ~Cycle{0});
                } else {
                    core->step(nows[i], ~Cycle{0});
                }
                nows[i] = std::max(nows[i], core->busyUntil);
                progressed |=
                    (core->stats.recordsProcessed != before);
            }
            if (all_done)
                return;
            if (!progressed)
                std::this_thread::yield();
        }
    };

    // ---- supervisor ----------------------------------------------------
    std::vector<std::thread> workers;
    workers.reserve(1 + nConsumers);
    liveWorkers.store(1 + nConsumers, std::memory_order_relaxed);
    workers.emplace_back([&] {
        try {
            producerBody();
        } catch (...) {
            noteFailure();
        }
        liveWorkers.fetch_sub(1, std::memory_order_release);
    });
    for (std::uint32_t slot = 0; slot < nConsumers; ++slot) {
        workers.emplace_back([&, slot] {
            try {
                consumerBody(slot);
            } catch (...) {
                noteFailure();
            }
            liveWorkers.fetch_sub(1, std::memory_order_release);
        });
    }

    // The serial watchdog samples per-core stats; those are host-racy
    // here, so the concurrent signature uses only atomics: applied ops,
    // ring publish/pop counts, the progress table, version counters.
    auto signature = [&] {
        std::uint64_t sig = appliedOps.load(std::memory_order_relaxed);
        for (ThreadId t = 0; t < k_; ++t) {
            sig += rings[t].published();
            sig += rings[t].popped();
            sig += progress_->done(t);
        }
        sig += versions_.stats.counter("produced").value();
        sig += versions_.stats.counter("consumed").value();
        return sig;
    };
    ProgressWatchdog watchdog(
        std::max<std::uint64_t>(1000, cfg_.stallWatchdogIters / 1000));
    bool stalled = false;
    while (liveWorkers.load(std::memory_order_acquire) > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (!stalled && watchdog.poll(signature())) {
            stalled = true;
            abortFlag.store(true, std::memory_order_release);
        }
    }
    for (std::thread &w : workers)
        w.join();

    if (stalled) {
        std::fprintf(stderr,
                     "=== concurrent replay watchdog state dump ===\n"
                     "applied ops: %llu\n",
                     static_cast<unsigned long long>(
                         appliedOps.load(std::memory_order_relaxed)));
        for (ThreadId t = 0; t < k_; ++t) {
            std::fprintf(
                stderr,
                "stream %u: plan %zu/%zu published=%llu popped=%llu "
                "overflow=%zu done=%llu finished=%d\n",
                t, prod[t].cursor, plans[t].seq.size(),
                static_cast<unsigned long long>(rings[t].published()),
                static_cast<unsigned long long>(rings[t].popped()),
                prod[t].overflow.size(),
                static_cast<unsigned long long>(progress_->done(t)),
                lgCores_[t]->finished() ? 1 : 0);
        }
        panic("concurrent replay watchdog: no forward progress "
              "(journal/lifeguard divergence or hand-off bug)");
    }
    if (firstError)
        std::rethrow_exception(firstError);

    RunResult result;
    Cycle total = 0;
    result.app = reader_.footer().app; // no application ran: recorded
    for (auto &c : lgCores_) {
        result.lifeguard.push_back(c->stats);
        result.versionStallRetries +=
            c->enforcer().stats.get("version_stalls");
        total = std::max(total, c->busyUntil);
    }
    result.totalCycles = total;
    result.versionsProduced = versions_.stats.counter("produced").value();
    result.versionsConsumed = versions_.stats.counter("consumed").value();
    result.violationCount = lifeguard_->violations.count();
    result.violationFingerprint = lifeguard_->violations.setFingerprint();
    result.shadowFingerprint = shadowFingerprint();

    if (cfg_.verify)
        verifyResultsAgainstFooter(result);
    return result;
}

void
ReplayPlatform::verifyResultsAgainstFooter(const RunResult &result) const
{
    const trace::TraceFooter &f = reader_.footer();
    auto mismatch = [](const char *what, std::uint64_t got,
                       std::uint64_t want) {
        panic("concurrent replay diverged from the recording: %s = "
              "%llu, recorded %llu",
              what, static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(want));
    };
    if (result.shadowFingerprint != f.shadowFingerprint)
        mismatch("shadow fingerprint", result.shadowFingerprint,
                 f.shadowFingerprint);
    // Violation *reports* are a delivery-schedule quantity: the
    // Idempotent Filters absorb repeated checks, and how many repeats
    // they absorb depends on stall-flush timing, which free-running
    // consumers cannot reproduce. A first occurrence can never be
    // absorbed, though, so found-any must agree (the distinct-set
    // fingerprint is compared serial-vs-concurrent by the differential
    // matrix; the footer only records the count).
    if ((result.violationCount == 0) != (f.violations == 0))
        mismatch("violations (found-any)", result.violationCount,
                 f.violations);
    // The distinct-set fingerprint *is* schedule-invariant (unlike the
    // report count), so footers that carry one pin it exactly.
    if (f.hasViolationFingerprint &&
        result.violationFingerprint != f.violationFingerprint)
        mismatch("violation fingerprint", result.violationFingerprint,
                 f.violationFingerprint);
    if (result.versionsProduced != f.versionsProduced)
        mismatch("versions produced", result.versionsProduced,
                 f.versionsProduced);
    if (result.versionsConsumed != f.versionsConsumed)
        mismatch("versions consumed", result.versionsConsumed,
                 f.versionsConsumed);
    PARALOG_ASSERT(result.lifeguard.size() == f.lifeguard.size(),
                   "recorded lifeguard thread count mismatch");
    for (std::size_t i = 0; i < f.lifeguard.size(); ++i) {
        if (result.lifeguard[i].recordsProcessed !=
            f.lifeguard[i].recordsProcessed)
            mismatch("records processed",
                     result.lifeguard[i].recordsProcessed,
                     f.lifeguard[i].recordsProcessed);
    }
}

} // namespace paralog
