/**
 * @file
 * The TIMESLICED MONITORING baseline of Figure 6: the state of the art
 * before ParaLog. All application threads are timesliced onto a single
 * core and the resulting *sequentially interleaved* event stream is
 * analyzed by one lifeguard core running the sequential accelerators.
 * No dependence arcs or ConflictAlerts are needed — the merged stream is
 * already totally ordered — but neither the application nor the
 * lifeguard enjoys any parallel speedup.
 */

#ifndef PARALOG_CORE_TIMESLICED_HPP
#define PARALOG_CORE_TIMESLICED_HPP

#include <memory>
#include <vector>

#include "app/data_path.hpp"
#include "app/heap.hpp"
#include "app/interpreter.hpp"
#include "app/sync.hpp"
#include "core/lifeguard_core.hpp"
#include "core/platform.hpp"
#include "core/run_stats.hpp"

namespace paralog {

class Timesliced : public PlatformHooks
{
  public:
    explicit Timesliced(PlatformConfig cfg);
    ~Timesliced() override;

    RunResult run();

    bool lifeguardDrained(ThreadId tid) override;

    Lifeguard &lifeguard() { return *lifeguard_; }

  private:
    void stepApp(Cycle now);
    void switchTo(std::uint32_t next, Cycle now);
    std::uint32_t pickNext() const;
    bool appAllDone() const;

    PlatformConfig cfg_;
    WorkloadEnv env_;

    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<Heap> heap_;
    LockManager locks_;
    BarrierManager barriers_;
    std::unique_ptr<DataPath> dataPath_;
    std::unique_ptr<Interpreter> interp_;
    Interpreter::StepOutcome stepScratch_; ///< reused across stepApp calls

    std::unique_ptr<Lifeguard> lifeguard_;
    std::unique_ptr<ProgressTable> progress_;
    std::unique_ptr<CaManager> caMgr_;
    VersionStore versions_;
    std::unique_ptr<CaptureUnit> capture_; ///< merged stream
    std::unique_ptr<LifeguardCore> lgCore_;

    std::vector<std::unique_ptr<ThreadContext>> tcs_;
    std::vector<AppThreadStats> appStats_;
    std::vector<bool> finished_;
    std::uint32_t current_ = 0;
    std::uint64_t quantumLeft_ = 0;
    Cycle appBusyUntil_ = 0;
};

} // namespace paralog

#endif // PARALOG_CORE_TIMESLICED_HPP
