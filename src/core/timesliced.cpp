#include "core/timesliced.hpp"

#include "common/logging.hpp"

namespace paralog {

Timesliced::Timesliced(PlatformConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.sim.mode = MonitorMode::kTimesliced;
    // A sequential lifeguard consumes a totally ordered stream: it needs
    // neither dependence arcs nor ConflictAlert broadcasts.
    cfg_.sim.conflictAlerts = false;
    PARALOG_ASSERT(cfg_.sim.memoryModel == MemoryModel::kSC,
                   "timesliced baseline models a single-core app: SC only");

    const std::uint32_t k = cfg_.sim.appThreads;
    mem_ = std::make_unique<MemorySystem>(cfg_.sim, 2);
    heap_ = std::make_unique<Heap>(AddressLayout::kHeapBase,
                                   AddressLayout::kHeapBytes, k);

    env_.heapBase = AddressLayout::kHeapBase;
    env_.heapBytes = AddressLayout::kHeapBytes;
    env_.globalBase = AddressLayout::kGlobalBase;
    env_.lockBase = AddressLayout::kLockBase;
    env_.barrierBase = AddressLayout::kBarrierBase;
    env_.numThreads = k;
    env_.scale = cfg_.scale;
    env_.seed = cfg_.sim.seed;

    // One sequential lifeguard core: auto-sharding resolves to 1.
    lifeguard_ = makeLifeguard(cfg_.lifeguard, k,
                               cfg_.sim.effectiveShadowShards(1));
    LifeguardPolicy policy = lifeguard_->policy();

    // Arc capture off: the merged stream is already ordered.
    dataPath_ = std::make_unique<ScDataPath>(*mem_, false);
    interp_ = std::make_unique<Interpreter>(cfg_.sim, *dataPath_, *mem_,
                                            *heap_, locks_, barriers_,
                                            *this);

    progress_ = std::make_unique<ProgressTable>(k);
    caMgr_ = std::make_unique<CaManager>(k);

    EventFilter filter;
    filter.regOps = policy.wantsRegOps;
    filter.jumps = policy.wantsJumps;
    filter.heapOnly = policy.heapOnly;
    filter.heapArena = heap_->arena();
    capture_ = std::make_unique<CaptureUnit>(0, cfg_.sim, filter);

    std::shared_ptr<Workload> workload = cfg_.customWorkload;
    if (!workload)
        workload = makeWorkload(cfg_.workload);
    for (ThreadId t = 0; t < k; ++t) {
        tcs_.push_back(std::make_unique<ThreadContext>(
            t, workload->makeThread(t, env_)));
    }
    appStats_.resize(k);
    finished_.assign(k, false);
    quantumLeft_ = cfg_.sim.timesliceQuantum;
    mem_->bindThread(0, 0);

    lgCore_ = std::make_unique<LifeguardCore>(
        1, 0, cfg_.sim, *capture_, *progress_, *caMgr_, *lifeguard_,
        mem_.get(), versions_, k);
}

Timesliced::~Timesliced() = default;

bool
Timesliced::lifeguardDrained(ThreadId tid)
{
    (void)tid;
    return capture_->consumerEmpty();
}

std::uint32_t
Timesliced::pickNext() const
{
    const std::uint32_t k = static_cast<std::uint32_t>(tcs_.size());
    for (std::uint32_t i = 1; i <= k; ++i) {
        std::uint32_t cand = (current_ + i) % k;
        if (!finished_[cand])
            return cand;
    }
    return current_;
}

void
Timesliced::switchTo(std::uint32_t next, Cycle now)
{
    if (next == current_)
        return;
    current_ = next;
    quantumLeft_ = cfg_.sim.timesliceQuantum;
    mem_->bindThread(0, tcs_[current_]->tid());

    // The OS saves/restores the (thread id, counter) tuple on context
    // switches (section 5.1); the lifeguard sees a thread-switch record
    // and flushes IT (the register file changed hands).
    EventRecord rec;
    rec.type = EventType::kThreadSwitch;
    rec.tid = tcs_[current_]->tid();
    rec.rid = tcs_[current_]->retired;
    rec.value = tcs_[current_]->tid();
    capture_->buffer().append(std::move(rec));

    appBusyUntil_ = now + cfg_.sim.contextSwitchCost;
}

void
Timesliced::stepApp(Cycle now)
{
    ThreadContext &tc = *tcs_[current_];
    AppThreadStats &st = appStats_[current_];

    if (finished_[current_]) {
        switchTo(pickNext(), now);
        return;
    }

    if (!capture_->canAppend()) {
        st.logFullStall += cfg_.sim.retryInterval;
        appBusyUntil_ = now + cfg_.sim.retryInterval;
        return;
    }

    interp_->step(tc, 0, now, stepScratch_);
    Interpreter::StepOutcome &out = stepScratch_;

    switch (out.kind) {
      case Interpreter::StepOutcome::Kind::kDone:
        finished_[current_] = true;
        st.doneAt = now;
        switchTo(pickNext(), now);
        return;

      case Interpreter::StepOutcome::Kind::kBlocked: {
        // Spin synchronization: the blocked thread burns cycles on the
        // only core before the scheduler preempts it, so every lock
        // hand-off and barrier costs a scheduling round trip.
        Cycle spin = out.latency;
        switch (tc.blockReason) {
          case BlockReason::kLock:
            spin = cfg_.sim.timesliceSpinOnBlock;
            st.lockStall += spin;
            break;
          case BlockReason::kBarrier:
            spin = cfg_.sim.timesliceSpinOnBlock;
            st.barrierStall += spin;
            break;
          case BlockReason::kDrain:
            st.drainStall += spin;
            break;
          default:
            break;
        }
        appBusyUntil_ = now + spin;
        switchTo(pickNext(), now + spin);
        return;
      }

      case Interpreter::StepOutcome::Kind::kRetired:
        break;
    }

    ++tc.retired;
    ++st.retired;
    st.execCycles += out.latency;
    capture_->setRetired(tc.retired);
    capture_->append(out.event);
    appBusyUntil_ = now + std::max<Cycle>(1, out.latency);

    if (quantumLeft_ == 0 || --quantumLeft_ == 0)
        switchTo(pickNext(), now);
}

bool
Timesliced::appAllDone() const
{
    for (bool f : finished_) {
        if (!f)
            return false;
    }
    return true;
}

RunResult
Timesliced::run()
{
    Cycle now = 0;
    while (!(appAllDone() && lgCore_->finished())) {
        Cycle next = kInvalidRecord;
        if (!appAllDone())
            next = std::min(next, appBusyUntil_);
        if (!lgCore_->finished())
            next = std::min(next, lgCore_->busyUntil);
        if (next > now)
            now = next;

        if (now > cfg_.maxCycles) {
            panic("timesliced watchdog: no completion after %llu cycles",
                  static_cast<unsigned long long>(cfg_.maxCycles));
        }

        if (!appAllDone() && appBusyUntil_ <= now)
            stepApp(now);
        if (!lgCore_->finished() && lgCore_->busyUntil <= now) {
            // Solo-horizon batching: the timesliced application core is
            // the only other actor (no TSO, one lifeguard).
            lgCore_->step(now,
                          appAllDone() ? ~Cycle{0} : appBusyUntil_);
        }
    }

    RunResult result;
    result.totalCycles = now;
    result.app = appStats_;
    result.lifeguard.push_back(lgCore_->stats);
    result.violationCount = lifeguard_->violations.count();
    for (auto &tc : tcs_) {
        result.app[tc->tid()].programInsts = tc->programInsts;
    }
    return result;
}

} // namespace paralog
