#include "core/platform.hpp"

#include "common/logging.hpp"
#include "trace/recorder.hpp"

namespace paralog {

namespace {

std::uint8_t
packFilterBits(const EventFilter &f)
{
    using namespace trace;
    return (f.regOps ? kFilterRegOps : 0) |
           (f.loads ? kFilterLoads : 0) |
           (f.stores ? kFilterStores : 0) |
           (f.jumps ? kFilterJumps : 0) |
           (f.heapOnly ? kFilterHeapOnly : 0);
}

} // namespace

Platform::Platform(PlatformConfig cfg) : cfg_(std::move(cfg))
{
    PARALOG_ASSERT(cfg_.sim.mode != MonitorMode::kTimesliced,
                   "use Timesliced for the timesliced baseline");
    const bool monitoring = cfg_.sim.mode == MonitorMode::kParallel;
    const std::uint32_t k = cfg_.sim.appThreads;
    const std::uint32_t cores = cfg_.sim.totalCores();

    mem_ = std::make_unique<MemorySystem>(cfg_.sim, cores);
    heap_ = std::make_unique<Heap>(AddressLayout::kHeapBase,
                                   AddressLayout::kHeapBytes, k);

    env_.heapBase = AddressLayout::kHeapBase;
    env_.heapBytes = AddressLayout::kHeapBytes;
    env_.globalBase = AddressLayout::kGlobalBase;
    env_.lockBase = AddressLayout::kLockBase;
    env_.barrierBase = AddressLayout::kBarrierBase;
    env_.numThreads = k;
    env_.scale = cfg_.scale;
    env_.seed = cfg_.sim.seed;

    if (monitoring) {
        lifeguard_ = cfg_.customLifeguard
                         ? cfg_.customLifeguard(k)
                         : makeLifeguard(cfg_.lifeguard, k,
                                         cfg_.sim.effectiveShadowShards(k));
        policy_ = lifeguard_->policy();
        if (concurrentLive()) {
            // The host-parallel live engine relies on the CA barriers
            // to order cross-stream delivery (it cannot fall back to
            // the serial scheduler's interleaving), and on sharded
            // shadow-memory locking for cross-thread metadata.
            PARALOG_ASSERT(cfg_.sim.conflictAlerts,
                           "live --lg-threads requires ConflictAlert "
                           "broadcasts enabled");
            lifeguard_->shadow().setConcurrent(true);
        }
    }

    if (cfg_.sim.memoryModel == MemoryModel::kTSO) {
        auto tso = std::make_unique<TsoDataPath>(cfg_.sim, *mem_, *this,
                                                 cores);
        tsoPath_ = tso.get();
        dataPath_ = std::move(tso);
    } else {
        dataPath_ = std::make_unique<ScDataPath>(*mem_);
    }

    interp_ = std::make_unique<Interpreter>(cfg_.sim, *dataPath_, *mem_,
                                            *heap_, locks_, barriers_,
                                            *this);

    progress_ = std::make_unique<ProgressTable>(k);
    caMgr_ = std::make_unique<CaManager>(k);

    std::shared_ptr<Workload> workload = cfg_.customWorkload;
    if (!workload)
        workload = makeWorkload(cfg_.workload);

    EventFilter filter;
    if (monitoring) {
        filter.regOps = policy_.wantsRegOps;
        filter.jumps = policy_.wantsJumps;
        filter.heapOnly = policy_.heapOnly;
        filter.heapArena = heap_->arena();
    }

    if (cfg_.recorder) {
        PARALOG_ASSERT(monitoring,
                       "trace recording requires parallel monitoring");
        cfg_.recorder->setFilterBits(packFilterBits(filter));
    }

    for (ThreadId t = 0; t < k; ++t) {
        if (monitoring) {
            captures_.push_back(
                std::make_unique<CaptureUnit>(t, cfg_.sim, filter));
            if (cfg_.traceCapture)
                captures_.back()->setTraceSink(&trace_);
            if (cfg_.recorder)
                captures_.back()->setJournal(cfg_.recorder);
        } else {
            captures_.push_back(nullptr);
        }

        auto tc = std::make_unique<ThreadContext>(
            t, workload->makeThread(t, env_));
        mem_->bindThread(t, t);

        AppCore::CaBroadcastFn ca_fn;
        if (monitoring) {
            ca_fn = [this](ThreadId tid, RecordId rid, HighLevelKind kind,
                           const AddrRange &range) {
                return caBroadcast(tid, rid, kind, range);
            };
        }
        appCores_.push_back(std::make_unique<AppCore>(
            t, std::move(tc), captures_[t].get(), *interp_, *mem_,
            cfg_.sim, monitoring, std::move(ca_fn)));
    }

    if (monitoring) {
        for (ThreadId t = 0; t < k; ++t) {
            // The concurrent live engine relaxes lifeguard timing: the
            // timed memory hierarchy is single-threaded simulation
            // state, so host-parallel lifeguard cores run with untimed
            // metadata accesses (exactly like concurrent replay).
            lgCores_.push_back(std::make_unique<LifeguardCore>(
                k + t, t, cfg_.sim, *captures_[t], *progress_, *caMgr_,
                *lifeguard_, concurrentLive() ? nullptr : mem_.get(),
                versions_, 1));
            if (trace::TraceRecorder *rec = cfg_.recorder;
                rec && !concurrentLive()) {
                // The latency sideband describes the serial schedule's
                // metadata access sequence; live-parallel recordings
                // carry none (replay re-monitors them result-only).
                lgCores_.back()->ctx().setMetaLatencyTee(
                    [rec, t](Cycle latency) {
                        rec->onMetaLatency(t, latency);
                    });
            }
        }
    }
}

Platform::~Platform() = default;

Cycle
Platform::caBroadcast(ThreadId tid, RecordId rid, HighLevelKind kind,
                      const AddrRange &range)
{
    bool subscribed = false;
    switch (kind) {
      case HighLevelKind::kMallocEnd:
        subscribed = policy_.caOnMalloc;
        break;
      case HighLevelKind::kFreeBegin:
        subscribed = policy_.caOnFree;
        break;
      case HighLevelKind::kSyscallBegin:
      case HighLevelKind::kSyscallEnd:
        subscribed = policy_.caOnSyscall;
        break;
    }
    if (!subscribed)
        return 0;

    std::vector<CaptureUnit *> units;
    std::vector<bool> alive;
    units.reserve(captures_.size());
    for (ThreadId t = 0; t < captures_.size(); ++t) {
        units.push_back(captures_[t].get());
        alive.push_back(appCores_[t]->active());
    }
    Cycle lat = caMgr_->broadcast(tid, rid, kind, range, units, alive);
    std::uint64_t seq = caMgr_->issued() - 1;

    // Annotate the issuer's high-level record so its lifeguard enforces
    // the issuer half of the barrier.
    if (EventRecord *rec = captures_[tid]->buffer().findByRid(rid))
        rec->caSeq = seq;
    // Journal the barrier bookkeeping (the arrival records themselves
    // were journalled by the appendCa calls above). Copy-out lookup:
    // in concurrent live mode consumer threads retire barrier entries
    // (noteWaiterPassed/noteIssuerDelivered) concurrently with this
    // producer-side hook, so a find() pointer could be invalidated
    // mid-read.
    if (cfg_.recorder) {
        CaBroadcast b;
        // Always live here: the CA records that let consumers retire
        // the entry are still unpublished in the issuing step.
        PARALOG_ASSERT(caMgr_->lookup(seq, b),
                       "CA broadcast %llu retired before journaling",
                       static_cast<unsigned long long>(seq));
        cfg_.recorder->onCaBroadcast(b);
    }
    return lat;
}

bool
Platform::lifeguardDrained(ThreadId tid)
{
    if (cfg_.sim.mode == MonitorMode::kNoMonitoring)
        return true;
    // Producer-side drain test. Identical to consumerEmpty() in serial
    // mode (no ring attached), but safe for the concurrent live engine,
    // where this hook runs on the producer thread and must not touch
    // the ring's consumer face.
    return captures_[tid]->drainedForSyscall();
}

void
Platform::attachArcsToPending(ThreadId tid, RecordId rid,
                              const std::vector<RawArc> &arcs)
{
    if (captures_[tid])
        captures_[tid]->attachArcs(rid, arcs);
}

void
Platform::onScViolation(ThreadId writer_tid, RecordId writer_rid, Addr addr,
                        std::uint8_t size, const VersionRequest &reader)
{
    if (!captures_[writer_tid] || !captures_[reader.readerTid])
        return;
    VersionTag v{reader.readerTid, reader.readerRid};
    // Annotate the reader's pending load first; if it was already
    // consumed the reader's lifeguard read the pre-overwrite metadata,
    // which is exactly the versioned value — nothing to do.
    if (!captures_[reader.readerTid]->annotateConsume(reader.readerRid, v))
        return;
    captures_[writer_tid]->insertProduceBefore(writer_rid, v, addr, size);
}

void
Platform::setVisibilityLimit(ThreadId tid, RecordId limit)
{
    if (tid < captures_.size() && captures_[tid])
        captures_[tid]->setVisibilityLimit(limit);
}

void
Platform::dumpStuckState() const
{
    std::fprintf(stderr, "=== watchdog state dump ===\n");
    for (ThreadId t = 0; t < captures_.size(); ++t) {
        const AppCore &ac = *appCores_[t];
        std::fprintf(stderr,
                     "app %u: active=%d retired=%llu reason=%d "
                     "busyUntil=%llu",
                     t, ac.active() ? 1 : 0,
                     static_cast<unsigned long long>(
                         appCores_[t]->tc().retired),
                     static_cast<int>(appCores_[t]->tc().blockReason),
                     static_cast<unsigned long long>(ac.busyUntil));
        if (tsoPath_) {
            std::fprintf(stderr, " storeBuf=%zu",
                         tsoPath_->depth(static_cast<CoreId>(t)));
        }
        std::fprintf(stderr, "\n");
        if (!captures_[t])
            continue;
        std::fprintf(stderr,
                     "  stream: size=%zu visLimit=%llu done=%llu\n",
                     captures_[t]->buffer().size(),
                     static_cast<unsigned long long>(
                         captures_[t]->visibilityLimit()),
                     static_cast<unsigned long long>(progress_->done(t)));
        if (t < lgCores_.size() && lgCores_[t]) {
            const OrderEnforcer &oe = lgCores_[t]->enforcer();
            std::fprintf(
                stderr, "  wait: %s sameRecordRetries=%llu busyUntil=%llu\n",
                toString(oe.lastStatus()),
                static_cast<unsigned long long>(
                    oe.sameRecordStallRetries()),
                static_cast<unsigned long long>(lgCores_[t]->busyUntil));
        }
        const EventRecord *front = captures_[t]->buffer().peek();
        if (front) {
            std::fprintf(stderr, "  front: type=%s rid=%llu arcs=[",
                         toString(front->type),
                         static_cast<unsigned long long>(front->rid));
            for (const DepArc &a : front->arcs) {
                std::fprintf(stderr, "(%u,%llu)", a.tid,
                             static_cast<unsigned long long>(a.rid));
            }
            std::fprintf(stderr, "] caSeq=%llu consumesV=%d\n",
                         static_cast<unsigned long long>(front->caSeq),
                         front->consumesVersion ? 1 : 0);
        }
    }
    std::fprintf(stderr, "version store: %zu live entr%s\n",
                 versions_.size(), versions_.size() == 1 ? "y" : "ies");
    versions_.forEach([](const VersionTag &tag,
                         const VersionStore::Versioned &v) {
        std::fprintf(stderr,
                     "  (tid=%u rid=%llu): addr=0x%llx size=%u "
                     "writerDone=%d bits=0x%llx\n",
                     tag.tid, static_cast<unsigned long long>(tag.rid),
                     static_cast<unsigned long long>(v.addr), v.size,
                     v.writerDone ? 1 : 0,
                     static_cast<unsigned long long>(v.bits));
    });
}

bool
Platform::allDone() const
{
    for (const auto &core : appCores_) {
        if (core->active())
            return false;
    }
    for (const auto &core : lgCores_) {
        if (!core->finished())
            return false;
    }
    return true;
}

RunResult
Platform::run()
{
    return concurrentLive() ? runConcurrentLive() : runSerial();
}

RunResult
Platform::collectResult(Cycle total_cycles)
{
    RunResult result;
    result.totalCycles = total_cycles;
    for (auto &c : appCores_) {
        c->stats.programInsts = c->tc().programInsts;
        result.app.push_back(c->stats);
    }
    for (auto &c : lgCores_) {
        result.lifeguard.push_back(c->stats);
        result.versionStallRetries +=
            c->enforcer().stats.get("version_stalls");
    }
    result.versionsProduced = versions_.stats.counter("produced").value();
    result.versionsConsumed = versions_.stats.counter("consumed").value();
    if (lifeguard_) {
        result.violationCount = lifeguard_->violations.count();
        result.violationFingerprint =
            lifeguard_->violations.setFingerprint();
    }
    return result;
}

RunResult
Platform::runSerial()
{
    Cycle now = 0;
    Cycle last_now = 0;
    std::uint64_t same_now_iters = 0;

    // The scheduler loop runs once per simulated event; keep its scans
    // over flat raw-pointer arrays.
    std::vector<AppCore *> apps;
    std::vector<LifeguardCore *> lgs;
    apps.reserve(appCores_.size());
    lgs.reserve(lgCores_.size());
    for (auto &c : appCores_)
        apps.push_back(c.get());
    for (auto &c : lgCores_)
        lgs.push_back(c.get());

    auto all_done = [&apps, &lgs] {
        for (const AppCore *c : apps) {
            if (c->active())
                return false;
        }
        for (const LifeguardCore *c : lgs) {
            if (!c->finished())
                return false;
        }
        return true;
    };

    // Progress watchdog: a deadlocked versioning/ordering protocol shows
    // up as a retry loop that keeps simulated time advancing forever, so
    // neither the livelock detector nor maxCycles catches it in useful
    // time. Hash global forward progress every iteration; if nothing
    // moves for stallWatchdogIters iterations, panic with the full
    // wait-state dump instead of grinding toward maxCycles.
    // Sampled every 64 iterations so the signature never shows up in
    // the scheduler loop's profile.
    ProgressWatchdog stall_watchdog(cfg_.stallWatchdogIters / 64 + 1);
    std::uint64_t watchdog_tick = 0;
    Counter &produced_ctr = versions_.stats.counter("produced");
    Counter &consumed_ctr = versions_.stats.counter("consumed");
    auto progress_signature = [&] {
        std::uint64_t sig = produced_ctr.value() + consumed_ctr.value();
        for (const AppCore *c : apps)
            sig += c->tc().retired;
        for (const LifeguardCore *c : lgs)
            sig += c->stats.recordsProcessed;
        for (ThreadId t = 0; t < progress_->size(); ++t)
            sig += progress_->done(t);
        return sig;
    };

    while (!all_done()) {
        // Livelock detector: simulated time must advance.
        if (now == last_now) {
            if (++same_now_iters > 20'000'000) {
                dumpStuckState();
                panic("livelock: cycle %llu never advances",
                      static_cast<unsigned long long>(now));
            }
        } else {
            last_now = now;
            same_now_iters = 0;
        }
        if ((++watchdog_tick & 63) == 0 &&
            stall_watchdog.poll(progress_signature())) {
            dumpStuckState();
            panic("progress watchdog: no forward progress in %llu "
                  "scheduler iterations at cycle %llu (protocol "
                  "deadlock)",
                  static_cast<unsigned long long>(
                      cfg_.stallWatchdogIters),
                  static_cast<unsigned long long>(now));
        }
        // Event-driven advance: jump to the earliest ready core.
        Cycle next = kInvalidRecord;
        for (AppCore *c : apps) {
            if (c->active())
                next = std::min(next, c->busyUntil);
        }
        for (LifeguardCore *c : lgs) {
            if (!c->finished())
                next = std::min(next, c->busyUntil);
        }
        if (next > now)
            now = next;
        // Journal phase stamp: every producer-side op recorded during
        // this iteration's application/pump phase carries (now, count
        // of lifeguard steps so far), which is exactly what the replay
        // scheduler needs to interleave ops and lifeguard steps in the
        // recorded order (core/replay.cpp).
        if (cfg_.recorder)
            cfg_.recorder->setNow(now);

        if (now > cfg_.maxCycles) {
            dumpStuckState();
            panic("simulation watchdog: no completion after %llu cycles "
                  "(deadlock or runaway workload)",
                  static_cast<unsigned long long>(cfg_.maxCycles));
        }

        for (AppCore *c : apps) {
            if (c->active() && c->busyUntil <= now)
                c->step(now);
        }
        if (tsoPath_) {
            for (CoreId core = 0; core < cfg_.sim.appThreads; ++core)
                tsoPath_->pump(core, now);
        }

        // Solo-horizon for lifeguard delivery batching: the earliest
        // time any application core or pending TSO store drain can act.
        // (One drain retires per loop iteration, so a ready drain pins
        // the horizon to `now` and keeps the iteration cadence exact.)
        // Computed lazily: most iterations step no lifeguard core.
        Cycle actor_horizon = 0;
        bool horizon_valid = false;
        for (std::size_t i = 0; i < lgs.size(); ++i) {
            LifeguardCore *c = lgs[i];
            if (c->finished() || c->busyUntil > now)
                continue;
            if (!horizon_valid) {
                actor_horizon = ~Cycle{0};
                for (const AppCore *a : apps) {
                    if (a->active())
                        actor_horizon =
                            std::min(actor_horizon, a->busyUntil);
                }
                if (tsoPath_) {
                    for (CoreId core = 0; core < cfg_.sim.appThreads;
                         ++core) {
                        actor_horizon = std::min(
                            actor_horizon, tsoPath_->nextDrainReady(core));
                    }
                }
                horizon_valid = true;
            }
            // Other lifeguard cores are actors too: a peer that is
            // ready (or becomes ready inside the window) bounds the
            // batch so same-cycle interleaving stays exact.
            Cycle horizon = actor_horizon;
            for (std::size_t j = 0; j < lgs.size(); ++j) {
                if (j != i && !lgs[j]->finished())
                    horizon = std::min(horizon, lgs[j]->busyUntil);
            }
            c->step(now, horizon);
            if (cfg_.recorder)
                cfg_.recorder->noteLgStep();
        }
    }

    return collectResult(now);
}

} // namespace paralog
