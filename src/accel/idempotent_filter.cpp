#include "accel/idempotent_filter.hpp"

#include "common/logging.hpp"

namespace paralog {

IdempotentFilter::IdempotentFilter(std::uint32_t entries)
    : capacity_(entries), addrs_(entries, 0), sideKeys_(entries, 0),
      rids_(entries, 0), prev_(entries, kNil), next_(entries, kNil)
{
    PARALOG_ASSERT(entries >= 1 && entries < kNil,
                   "bad IF entry count %u", entries);
    for (std::uint16_t i = 0; i + 1u < entries; ++i)
        next_[i] = i + 1;
    free_ = 0;
}

void
IdempotentFilter::unlink(std::uint16_t i)
{
    if (prev_[i] != kNil)
        next_[prev_[i]] = next_[i];
    else
        head_ = next_[i];
    if (next_[i] != kNil)
        prev_[next_[i]] = prev_[i];
    else
        tail_ = prev_[i];
}

void
IdempotentFilter::linkFront(std::uint16_t i)
{
    prev_[i] = kNil;
    next_[i] = head_;
    if (head_ != kNil)
        prev_[head_] = i;
    head_ = i;
    if (tail_ == kNil)
        tail_ = i;
}

void
IdempotentFilter::release(std::uint16_t i)
{
    sideKeys_[i] = 0;
    next_[i] = free_;
    free_ = i;
    --used_;
}

bool
IdempotentFilter::checkAndInsert(Addr addr, unsigned size, bool is_write,
                                 RecordId rid)
{
    const std::uint64_t side = sideKey(size, is_write);
    for (std::uint32_t i = 0; i < capacity_; ++i) {
        if (addrs_[i] == addr && sideKeys_[i] == side) {
            // Hit: refresh LRU position; keep the *older* rid so
            // delayed advertising stays conservative for the absorbed
            // event.
            std::uint16_t n = static_cast<std::uint16_t>(i);
            unlink(n);
            linkFront(n);
            stats.counter("hits").inc();
            return true;
        }
    }
    if (used_ >= capacity_) {
        // Evict the LRU entry.
        std::uint16_t victim = tail_;
        unlink(victim);
        release(victim);
        stats.counter("evictions").inc();
    }
    std::uint16_t i = free_;
    free_ = next_[i];
    addrs_[i] = addr;
    sideKeys_[i] = side;
    rids_[i] = rid;
    ++used_;
    linkFront(i);
    stats.counter("misses").inc();
    return false;
}

void
IdempotentFilter::invalidateAll()
{
    for (std::uint16_t i = 0; i < capacity_; ++i) {
        sideKeys_[i] = 0;
        next_[i] = (i + 1u < capacity_) ? i + 1 : kNil;
    }
    free_ = 0;
    head_ = tail_ = kNil;
    used_ = 0;
    stats.counter("full_invalidations").inc();
}

void
IdempotentFilter::invalidateOverlapping(Addr addr, unsigned size)
{
    for (std::uint16_t i = head_; i != kNil;) {
        std::uint16_t nxt = next_[i];
        std::uint64_t esize = sideKeys_[i] >> 2;
        if (addrs_[i] < addr + size && addr < addrs_[i] + esize) {
            unlink(i);
            release(i);
            stats.counter("entry_invalidations").inc();
        }
        i = nxt;
    }
}

void
IdempotentFilter::invalidateRange(const AddrRange &range)
{
    if (!range.empty())
        invalidateOverlapping(range.begin,
                              static_cast<unsigned>(range.size()));
}

void
IdempotentFilter::invalidateVersioned(Addr addr, unsigned size)
{
    stats.counter("version_invalidations").inc();
    invalidateOverlapping(addr, size);
}

RecordId
IdempotentFilter::minRid() const
{
    RecordId min = kInvalidRecord;
    for (std::uint16_t i = head_; i != kNil; i = next_[i])
        min = rids_[i] < min ? rids_[i] : min;
    return min;
}

} // namespace paralog
