#include "accel/idempotent_filter.hpp"

namespace paralog {

bool
IdempotentFilter::checkAndInsert(Addr addr, unsigned size, bool is_write,
                                 RecordId rid)
{
    Key key{addr, size, is_write};
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Hit: refresh LRU position; keep the *older* rid so delayed
        // advertising stays conservative for the absorbed event.
        lru_.erase(it->second.lruIt);
        lru_.push_front(key);
        it->second.lruIt = lru_.begin();
        stats.counter("hits").inc();
        return true;
    }
    if (entries_.size() >= capacity_) {
        // Evict the LRU entry.
        entries_.erase(lru_.back());
        lru_.pop_back();
        stats.counter("evictions").inc();
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{rid, lru_.begin()});
    stats.counter("misses").inc();
    return false;
}

void
IdempotentFilter::invalidateAll()
{
    entries_.clear();
    lru_.clear();
    stats.counter("full_invalidations").inc();
}

void
IdempotentFilter::invalidateOverlapping(Addr addr, unsigned size)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        const Key &k = it->first;
        if (k.addr < addr + size && addr < k.addr + k.size) {
            lru_.erase(it->second.lruIt);
            it = entries_.erase(it);
            stats.counter("entry_invalidations").inc();
        } else {
            ++it;
        }
    }
}

void
IdempotentFilter::invalidateRange(const AddrRange &range)
{
    if (!range.empty())
        invalidateOverlapping(range.begin,
                              static_cast<unsigned>(range.size()));
}

RecordId
IdempotentFilter::minRid() const
{
    RecordId min = kInvalidRecord;
    for (const auto &kv : entries_) {
        if (kv.second.rid < min)
            min = kv.second.rid;
    }
    return min;
}

} // namespace paralog
