/**
 * @file
 * Metadata TLB (M-TLB) accelerator (section 2): a small LRU lookup table
 * from application virtual pages to metadata virtual pages. A hit turns
 * the two-level metadata address computation (~6 handler instructions)
 * into a single lookup; misses pay the full software walk and install
 * the mapping.
 */

#ifndef PARALOG_ACCEL_MTLB_HPP
#define PARALOG_ACCEL_MTLB_HPP

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class MetadataTlb
{
  public:
    static constexpr unsigned kPageShift = 12;

    /** Handler-instruction cost of a metadata address computation. */
    static constexpr std::uint32_t kHitCost = 1;
    static constexpr std::uint32_t kMissCost = 6;

    explicit MetadataTlb(std::uint32_t entries, bool enabled)
        : capacity_(entries), enabled_(enabled)
    {
    }

    /**
     * Look up the metadata page for @p app_addr; returns the handler
     * instruction cost of the address computation and installs the
     * mapping on a miss.
     */
    std::uint32_t lookupCost(Addr app_addr);

    void flushAll();

    /** Drop mappings covering the given application range (metadata
     *  page deallocation after free, section 4.1). */
    void flushRange(const AddrRange &range);

    bool enabled() const { return enabled_; }
    std::size_t size() const { return pages_.size(); }

    StatSet stats{"mtlb"};

  private:
    struct Entry
    {
        std::list<std::uint64_t>::iterator lruIt;
    };

    std::uint32_t capacity_;
    bool enabled_;
    std::unordered_map<std::uint64_t, Entry> pages_;
    std::list<std::uint64_t> lru_;
};

} // namespace paralog

#endif // PARALOG_ACCEL_MTLB_HPP
