/**
 * @file
 * Metadata TLB (M-TLB) accelerator (section 2): a small LRU lookup table
 * from application virtual pages to metadata virtual pages. A hit turns
 * the two-level metadata address computation (~6 handler instructions)
 * into a single lookup; misses pay the full software walk and install
 * the mapping.
 *
 * Modelled as an exact-LRU table over a fixed node array with an
 * intrusive LRU list and linear key search (the entry count is
 * hardware-small), mirroring IdempotentFilter: this sits on the
 * per-handler metadata-touch path, where node-based containers pay an
 * allocation per miss.
 */

#ifndef PARALOG_ACCEL_MTLB_HPP
#define PARALOG_ACCEL_MTLB_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class MetadataTlb
{
  public:
    static constexpr unsigned kPageShift = 12;

    /** Handler-instruction cost of a metadata address computation. */
    static constexpr std::uint32_t kHitCost = 1;
    static constexpr std::uint32_t kMissCost = 6;

    explicit MetadataTlb(std::uint32_t entries, bool enabled);

    /**
     * Look up the metadata page for @p app_addr; returns the handler
     * instruction cost of the address computation and installs the
     * mapping on a miss.
     */
    std::uint32_t lookupCost(Addr app_addr);

    void flushAll();

    /** Drop mappings covering the given application range (metadata
     *  page deallocation after free, section 4.1). */
    void flushRange(const AddrRange &range);

    bool enabled() const { return enabled_; }
    std::size_t size() const { return used_; }

    StatSet stats{"mtlb"};

  private:
    static constexpr std::uint16_t kNil = 0xFFFF;

    struct Node
    {
        std::uint64_t page = 0;
        bool used = false;
        std::uint16_t prev = kNil;
        std::uint16_t next = kNil; ///< LRU order / free list
    };

    void unlink(std::uint16_t i);
    void linkFront(std::uint16_t i);
    void release(std::uint16_t i);

    std::uint32_t capacity_;
    bool enabled_;
    std::vector<Node> nodes_;
    std::uint16_t head_ = kNil;
    std::uint16_t tail_ = kNil;
    std::uint16_t free_ = kNil;
    std::size_t used_ = 0;
};

} // namespace paralog

#endif // PARALOG_ACCEL_MTLB_HPP
